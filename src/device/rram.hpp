// Statistical RRAM model (Sec. II-A / Sec. IV of the paper).
//
// Sec. IV describes a statistical array model built from measured Ta/TaOx/Pt
// devices, capturing: (1) state-dependent conductance variation — there is a
// conductance band where programming variation is substantially larger;
// (2) conductance relaxation over time (drift that can flip marginal hash
// bits); (3) stochastic programming exploited for LSH (random HRS-state
// conductances); and (4) program-and-verify convergence.  This model encodes
// those phenomena with an analytic sigma(g) profile so the crossbar and CAM
// simulators above it reproduce the paper's co-optimisation levers (e.g.
// "map conductance states away from the high-variation region").
#pragma once

#include "util/rng.hpp"

namespace xlds::device {

struct RramParams {
  double g_min = 0.5e-6;   ///< HRS-end conductance, S (2 MOhm)
  double g_max = 50.0e-6;  ///< LRS-end conductance, S (20 kOhm)
  int bits = 2;            ///< bits per cell for discrete-level use

  // State-dependent cycle-to-cycle programming variation sigma(g):
  //   sigma(g) = sigma_floor + sigma_rel * g + sigma_peak * exp(-((g-g_peak_centre)/g_peak_width)^2)
  // The Gaussian bump models the empirically observed high-variation band.
  double sigma_floor = 0.05e-6;       ///< S
  double sigma_rel = 0.02;            ///< unitless fraction of g
  double sigma_peak = 1.2e-6;         ///< S, height of the high-variation bump
  double g_peak_centre = 12.0e-6;     ///< S, centre of the high-variation band
  double g_peak_width = 5.0e-6;       ///< S, width of the band

  // Conductance relaxation: random-walk drift growing ~sqrt(ln(1 + t/t0))
  // plus a weak pull toward the band centre (filament re-equilibration).
  // Drift amplitude is *state-proportional* (a filament loses a fraction of
  // its conductance, not an absolute amount), with a small floor for deep
  // HRS states.
  double relax_sigma_rel = 0.05;    ///< fraction of g at the unit scale
  double relax_sigma_floor = 0.02e-6;  ///< S, minimum drift at the unit scale
  double relax_t0 = 1.0;            ///< s, reference time
  double relax_pull = 0.02;         ///< centre-pull fraction at the unit scale

  // Program-and-verify settings.
  double verify_tolerance = 0.5e-6;  ///< S, acceptance window around the target
  int max_program_iterations = 16;

  int levels() const { return 1 << bits; }
};

class RramModel {
 public:
  explicit RramModel(RramParams params);

  const RramParams& params() const noexcept { return params_; }

  /// Nominal conductance of discrete level (0 = HRS .. levels-1 = LRS),
  /// evenly spaced in [g_min, g_max].
  double level_conductance(int level) const;

  /// State-dependent programming sigma at target conductance g.
  double sigma_at(double g) const;

  /// One open-loop programming event: target + N(0, sigma_at(target)),
  /// clamped to the physical conductance range.
  double program_once(double target_g, Rng& rng) const;

  /// Closed-loop program-and-verify: repeat program_once until within the
  /// verify tolerance or the iteration budget is exhausted.  Returns the
  /// final achieved conductance (which may still be out of tolerance — real
  /// arrays have stuck cells; callers can check).
  double program_verify(double target_g, Rng& rng) const;

  /// Conductance relaxation over `dt` seconds: random walk with sqrt(dt/t0)
  /// amplitude plus weak recovery toward the band centre.
  double relax(double g, double dt, Rng& rng) const;

  /// Draw a random conductance from the HRS population (lognormal around the
  /// HRS mean) — the intrinsic-stochasticity source used to realise LSH
  /// projection matrices in Sec. IV (HRS chosen because its device-to-device
  /// spread is the largest).
  double sample_hrs(Rng& rng) const;

  /// The paper's co-optimisation: remap a requested level set away from the
  /// high-variation band.  Returns a conductance for `level` out of `levels`
  /// placed in the low-variation regions while preserving monotonicity.
  double variation_aware_level_conductance(int level, int levels) const;

 private:
  RramParams params_;
};

}  // namespace xlds::device
