// Common device abstractions for the XLDS framework (Fig. 1A/E of the paper).
//
// Two views of a device coexist:
//  * DeviceTraits — the figures of merit a designer compares technologies by
//    (cell area in F^2, write voltage/latency/energy, endurance, on/off
//    ratio, number of storable levels).  These feed the analytical models
//    (Eva-CAM, NVSim-lane) and the top-level triage.
//  * Behavioural models (FeFetModel, RramModel, ...) — sampled, stochastic
//    conductance models that feed the functional CAM / crossbar simulators.
#pragma once

#include <string>
#include <vector>

namespace xlds::device {

enum class DeviceKind {
  kSram,
  kFeFet,
  kRram,
  kPcm,
  kMram,
  kFlash,
};

std::string to_string(DeviceKind kind);

/// Figures of merit used for technology comparison and analytical modelling.
/// All values are per-cell/per-device and in SI units.
struct DeviceTraits {
  DeviceKind kind = DeviceKind::kSram;
  int terminals = 2;          ///< 2 (RRAM/PCM/MRAM) or 3 (FeFET/flash/SRAM access)
  bool nonvolatile = false;
  double cell_area_f2 = 0.0;  ///< storage-cell area in F^2 (excl. peripherals)
  int max_bits_per_cell = 1;  ///< achievable multi-level capability
  double read_voltage = 0.0;  ///< V
  double write_voltage = 0.0; ///< V
  double write_latency = 0.0; ///< s (per programming pulse sequence)
  double write_energy = 0.0;  ///< J per cell write
  double read_latency = 0.0;  ///< s intrinsic cell read component
  double on_resistance = 0.0;   ///< ohm, low-resistance / on state
  double off_resistance = 0.0;  ///< ohm, high-resistance / off state
  double endurance_cycles = 0.0;  ///< write endurance
  double retention_s = 0.0;       ///< retention time

  double on_off_ratio() const { return off_resistance / on_resistance; }
};

/// Canonical trait presets.  Values follow the survey numbers the paper's
/// background section relies on (NVSim/Eva-CAM-class technology files):
///  - SRAM: fast, volatile, ~150 F^2 with 6T cell.
///  - FeFET: 3-terminal, multi-level (the paper demonstrates 3-bit cells),
///    high write voltage (~4 V for silicon FeFET), limited endurance.
///  - RRAM: 2-terminal, LRS ~10-100 kOhm, moderate endurance.
///  - PCM: 2-terminal, slower/energy-hungrier SET, good endurance.
///  - MRAM: 2-terminal, small on/off ratio (TMR ~ 2-3x), very high endurance.
///  - Flash: dense, very high write voltage, low endurance, slow writes.
const DeviceTraits& traits(DeviceKind kind);

/// All device kinds, for design-space enumeration.
const std::vector<DeviceKind>& all_device_kinds();

/// Device-to-device + cycle-to-cycle variation description used by the
/// behavioural models.  Sigmas are expressed in the native state variable of
/// the device (volts of V_th for FeFET, siemens of conductance for RRAM).
struct VariationSpec {
  double d2d_sigma = 0.0;  ///< device-to-device (fixed per device instance)
  double c2c_sigma = 0.0;  ///< cycle-to-cycle (fresh per programming event)

  double total_sigma() const;
};

}  // namespace xlds::device
