#include "device/resistive.hpp"

#include <cmath>

#include "util/error.hpp"

namespace xlds::device {

ResistiveParams resistive_params_for(DeviceKind kind) {
  const DeviceTraits& t = traits(kind);
  ResistiveParams p;
  p.kind = kind;
  p.r_on = t.on_resistance;
  p.r_off = t.off_resistance;
  switch (kind) {
    case DeviceKind::kMram:
      // MTJ resistances are tightly controlled; variation is small but the
      // on/off ratio is also small, which is what limits MRAM CAM arrays.
      p.sigma_on_rel = 0.03;
      p.sigma_off_rel = 0.03;
      break;
    case DeviceKind::kPcm:
      p.sigma_on_rel = 0.08;
      p.sigma_off_rel = 0.25;  // amorphous-state spread
      // Amorphous-phase structural relaxation: R(t) ~ t^0.1; the crystalline
      // (SET) state barely drifts.
      p.drift_nu_on = 0.005;
      p.drift_nu_off = 0.10;
      break;
    default:
      p.sigma_on_rel = 0.05;
      p.sigma_off_rel = 0.15;
      break;
  }
  return p;
}

ResistiveModel::ResistiveModel(ResistiveParams params) : params_(params) {
  XLDS_REQUIRE(params_.r_on > 0.0);
  XLDS_REQUIRE(params_.r_off > params_.r_on);
  XLDS_REQUIRE(params_.sigma_on_rel >= 0.0 && params_.sigma_off_rel >= 0.0);
}

double ResistiveModel::nominal_resistance(bool on) const {
  return on ? params_.r_on : params_.r_off;
}

double ResistiveModel::sample_resistance(bool on, Rng& rng) const {
  const double nominal = nominal_resistance(on);
  const double sigma = on ? params_.sigma_on_rel : params_.sigma_off_rel;
  if (sigma == 0.0) return nominal;
  // Lognormal with matched median keeps resistances strictly positive.
  return nominal * rng.lognormal(0.0, sigma);
}

double ResistiveModel::drifted_resistance(double r, bool on, double age_s) const {
  XLDS_REQUIRE(r > 0.0);
  XLDS_REQUIRE(age_s >= 0.0);
  const double nu = on ? params_.drift_nu_on : params_.drift_nu_off;
  if (nu == 0.0) return r;
  const double t = std::max(age_s, params_.drift_t0);
  return r * std::pow(t / params_.drift_t0, nu);
}

double ResistiveModel::on_off_ratio() const { return params_.r_off / params_.r_on; }

}  // namespace xlds::device
