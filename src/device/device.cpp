#include "device/device.hpp"

#include <cmath>

#include "util/error.hpp"
#include "util/units.hpp"

namespace xlds::device {

std::string to_string(DeviceKind kind) {
  switch (kind) {
    case DeviceKind::kSram: return "SRAM";
    case DeviceKind::kFeFet: return "FeFET";
    case DeviceKind::kRram: return "RRAM";
    case DeviceKind::kPcm: return "PCM";
    case DeviceKind::kMram: return "MRAM";
    case DeviceKind::kFlash: return "Flash";
  }
  XLDS_ASSERT(false);
}

double VariationSpec::total_sigma() const {
  return std::sqrt(d2d_sigma * d2d_sigma + c2c_sigma * c2c_sigma);
}

namespace {

DeviceTraits sram_traits() {
  DeviceTraits t;
  t.kind = DeviceKind::kSram;
  t.terminals = 3;
  t.nonvolatile = false;
  t.cell_area_f2 = 150.0;  // 6T cell
  t.max_bits_per_cell = 1;
  t.read_voltage = 1.0;
  t.write_voltage = 1.0;
  t.write_latency = 0.2e-9;
  t.write_energy = 1.0e-15;
  t.read_latency = 0.2e-9;
  t.on_resistance = 5.0e3;   // access path
  t.off_resistance = 1.0e9;  // leakage-limited
  t.endurance_cycles = 1e16;
  t.retention_s = 0.0;  // volatile
  return t;
}

DeviceTraits fefet_traits() {
  DeviceTraits t;
  t.kind = DeviceKind::kFeFet;
  t.terminals = 3;
  t.nonvolatile = true;
  t.cell_area_f2 = 40.0;  // 1FeFET storage footprint incl. contacts
  t.max_bits_per_cell = 3;  // 8-state cells demonstrated (Fig. 3D)
  t.read_voltage = 0.8;
  t.write_voltage = 4.0;  // silicon FeFET program pulse
  t.write_latency = 100e-9;
  t.write_energy = 5.0e-13;
  t.read_latency = 0.5e-9;
  t.on_resistance = 2.0e4;
  t.off_resistance = 2.0e9;  // high Ion/Ioff is the FeFET selling point
  t.endurance_cycles = 1e10;
  t.retention_s = 10.0 * 365 * 24 * 3600;
  return t;
}

DeviceTraits rram_traits() {
  DeviceTraits t;
  t.kind = DeviceKind::kRram;
  t.terminals = 2;
  t.nonvolatile = true;
  t.cell_area_f2 = 4.0;  // crosspoint-limited; 1T1R cells are larger
  t.max_bits_per_cell = 2;
  t.read_voltage = 0.2;
  t.write_voltage = 2.0;
  t.write_latency = 50e-9;
  t.write_energy = 2.0e-12;
  t.read_latency = 1.0e-9;
  t.on_resistance = 2.0e4;   // LRS ~ 20 kOhm
  t.off_resistance = 2.0e6;  // HRS ~ 2 MOhm
  t.endurance_cycles = 1e8;
  t.retention_s = 10.0 * 365 * 24 * 3600;
  return t;
}

DeviceTraits pcm_traits() {
  DeviceTraits t;
  t.kind = DeviceKind::kPcm;
  t.terminals = 2;
  t.nonvolatile = true;
  t.cell_area_f2 = 6.0;
  t.max_bits_per_cell = 2;
  t.read_voltage = 0.2;
  t.write_voltage = 1.8;
  t.write_latency = 150e-9;  // SET crystallisation dominates
  t.write_energy = 10.0e-12;
  t.read_latency = 1.2e-9;
  t.on_resistance = 1.0e4;
  t.off_resistance = 1.0e6;
  t.endurance_cycles = 1e9;
  t.retention_s = 10.0 * 365 * 24 * 3600;
  return t;
}

DeviceTraits mram_traits() {
  DeviceTraits t;
  t.kind = DeviceKind::kMram;
  t.terminals = 2;
  t.nonvolatile = true;
  t.cell_area_f2 = 30.0;  // 1T1MTJ
  t.max_bits_per_cell = 1;
  t.read_voltage = 0.1;
  t.write_voltage = 1.2;
  t.write_latency = 5e-9;
  t.write_energy = 0.5e-12;
  t.read_latency = 0.5e-9;
  t.on_resistance = 3.0e3;   // parallel MTJ state
  t.off_resistance = 7.5e3;  // TMR ~ 150 % — the small ratio limits sense margin
  t.endurance_cycles = 1e15;
  t.retention_s = 10.0 * 365 * 24 * 3600;
  return t;
}

DeviceTraits flash_traits() {
  DeviceTraits t;
  t.kind = DeviceKind::kFlash;
  t.terminals = 3;
  t.nonvolatile = true;
  t.cell_area_f2 = 10.0;  // NOR-ish planar cell
  t.max_bits_per_cell = 3;
  t.read_voltage = 1.0;
  t.write_voltage = 12.0;  // the paper notes high write voltage / low endurance
  t.write_latency = 10e-6;
  t.write_energy = 1.0e-10;
  t.read_latency = 10e-9;
  t.on_resistance = 5.0e4;
  t.off_resistance = 5.0e9;
  t.endurance_cycles = 1e5;
  t.retention_s = 10.0 * 365 * 24 * 3600;
  return t;
}

}  // namespace

const DeviceTraits& traits(DeviceKind kind) {
  static const DeviceTraits sram = sram_traits();
  static const DeviceTraits fefet = fefet_traits();
  static const DeviceTraits rram = rram_traits();
  static const DeviceTraits pcm = pcm_traits();
  static const DeviceTraits mram = mram_traits();
  static const DeviceTraits flash = flash_traits();
  switch (kind) {
    case DeviceKind::kSram: return sram;
    case DeviceKind::kFeFet: return fefet;
    case DeviceKind::kRram: return rram;
    case DeviceKind::kPcm: return pcm;
    case DeviceKind::kMram: return mram;
    case DeviceKind::kFlash: return flash;
  }
  XLDS_ASSERT(false);
}

const std::vector<DeviceKind>& all_device_kinds() {
  static const std::vector<DeviceKind> kinds = {DeviceKind::kSram, DeviceKind::kFeFet,
                                                DeviceKind::kRram, DeviceKind::kPcm,
                                                DeviceKind::kMram, DeviceKind::kFlash};
  return kinds;
}

}  // namespace xlds::device
