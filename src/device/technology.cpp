#include "device/technology.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace xlds::device {

double TechNode::tx_on_resistance(double width_um) const {
  XLDS_REQUIRE(width_um > 0.0);
  return vdd / (nmos_ion_per_um * width_um);
}

double TechNode::tx_gate_cap(double width_um) const {
  XLDS_REQUIRE(width_um > 0.0);
  return gate_c_per_um * width_um;
}

double TechNode::tx_drain_cap(double width_um) const {
  // Junction + overlap capacitance is roughly half the gate capacitance at
  // these nodes; adequate for matchline loading estimates.
  return 0.5 * tx_gate_cap(width_um);
}

namespace {

// First-order scaling: wire resistance grows ~1/F^2 with the minimum-pitch
// cross-section; capacitance per length is nearly node-independent (~0.2
// fF/um); drive current per um improves slowly; Vdd saturates near 0.8-1.2 V.
std::vector<TechNode> make_nodes() {
  auto node = [](const char* name, double f_nm, double vdd, double r_per_um, double c_ff_per_um,
                 double ion_ua_per_um, double cg_ff_per_um, double wmin_um) {
    TechNode n;
    n.name = name;
    n.feature_m = f_nm * 1e-9;
    n.vdd = vdd;
    n.wire_r_per_m = r_per_um / 1e-6;
    n.wire_c_per_m = c_ff_per_um * 1e-15 / 1e-6;
    n.nmos_ion_per_um = ion_ua_per_um * 1e-6;
    n.gate_c_per_um = cg_ff_per_um * 1e-15;
    n.min_tx_width_um = wmin_um;
    return n;
  };
  return {
      node("130nm", 130.0, 1.30, 0.30, 0.24, 500.0, 1.20, 0.20),
      node("90nm", 90.0, 1.20, 0.55, 0.22, 600.0, 1.00, 0.14),
      node("65nm", 65.0, 1.10, 1.10, 0.21, 700.0, 0.90, 0.10),
      node("45nm", 45.0, 1.00, 2.20, 0.20, 800.0, 0.80, 0.07),
      node("40nm", 40.0, 1.00, 2.80, 0.20, 850.0, 0.75, 0.06),
      node("32nm", 32.0, 0.95, 4.40, 0.19, 900.0, 0.70, 0.05),
      node("28nm", 28.0, 0.90, 5.70, 0.19, 950.0, 0.65, 0.045),
      node("22nm", 22.0, 0.85, 9.20, 0.18, 1000.0, 0.60, 0.035),
      node("16nm", 16.0, 0.80, 17.50, 0.18, 1100.0, 0.55, 0.025),
  };
}

}  // namespace

const std::vector<TechNode>& all_tech_nodes() {
  static const std::vector<TechNode> nodes = make_nodes();
  return nodes;
}

const TechNode& tech_node(const std::string& name) {
  const auto& nodes = all_tech_nodes();
  const auto it =
      std::find_if(nodes.begin(), nodes.end(), [&](const TechNode& n) { return n.name == name; });
  XLDS_REQUIRE_MSG(it != nodes.end(), "unknown technology node '" << name << "'");
  return *it;
}

}  // namespace xlds::device
