#include "device/fefet.hpp"

#include <algorithm>
#include <cmath>

#include "kernels/sampler.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"

namespace xlds::device {

double FeFetParams::level_window() const {
  return (vth_high - vth_low) / static_cast<double>(levels() - 1);
}

FeFetModel::FeFetModel(FeFetParams params) : params_(params) {
  XLDS_REQUIRE(params_.vth_high > params_.vth_low);
  XLDS_REQUIRE(params_.bits >= 1 && params_.bits <= 6);
  XLDS_REQUIRE(params_.sigma_program >= 0.0);
  XLDS_REQUIRE(params_.k_sat > 0.0);
  XLDS_REQUIRE(params_.vds_read > 0.0);
  XLDS_REQUIRE(params_.retention_drift_sigma >= 0.0);
  XLDS_REQUIRE(params_.retention_depol >= 0.0);
  XLDS_REQUIRE(params_.retention_t0 > 0.0);
}

double FeFetModel::level_vth(int level) const {
  XLDS_REQUIRE_MSG(level >= 0 && level < params_.levels(),
                   "level " << level << " out of range for " << params_.bits << "-bit cell");
  return params_.vth_low + static_cast<double>(level) * params_.level_window();
}

double FeFetModel::program_vth(int level, Rng& rng) const {
  return rng.normal(level_vth(level), params_.sigma_program);
}

int FeFetModel::readback_level(double vth) const {
  const double idx = (vth - params_.vth_low) / params_.level_window();
  const int level = static_cast<int>(std::lround(idx));
  return std::clamp(level, 0, params_.levels() - 1);
}

std::size_t FeFetModel::readback_errors(int level, const double* vth, std::size_t n) const {
  // Same division and the same rounding decision as readback_level: lround
  // rounds half away from zero, the kernel rounds half up via trunc(x + 0.5),
  // and the two only disagree for values that clamp to level 0 either way
  // (see kernels::count_quantize_errors); the vectorised loop lives in the
  // kernel layer so it compiles at -O3.
  return kernels::count_quantize_errors(vth, n, params_.vth_low, params_.level_window(), level,
                                        params_.levels() - 1);
}

double FeFetModel::drain_current(double vgs, double vth) const {
  // Monotone, continuous piecewise model: an exponential subthreshold branch
  // below V_th that meets a near-threshold plateau i0 at overdrive 0; above
  // threshold the square law takes over once it exceeds the plateau.  i0 is
  // the square-law current ~20 mV above threshold, the classic moderate-
  // inversion handoff point.
  const double overdrive = vgs - vth;
  const double i0 = 0.5 * params_.k_sat * (0.02 * 0.02);
  if (overdrive <= 0.0) {
    const double i_sub = i0 * std::pow(10.0, overdrive / params_.subthreshold_swing);
    return std::max(i_sub, params_.ioff);
  }
  return std::max(std::max(0.5 * params_.k_sat * overdrive * overdrive, i0), params_.ioff);
}

double FeFetModel::conductance(double vgs, double vth) const {
  return drain_current(vgs, vth) / params_.vds_read;
}

double FeFetModel::search_voltage(int level) const {
  // Searching level L drives the gate to just below the nominal V_th of L, so
  // a matching device stays off while any device storing a lower V_th (i.e. a
  // mismatch toward smaller stored level) turns on with overdrive that grows
  // linearly with the level distance — squaring through the device law.  The
  // off-margin scales with the level window so that denser multi-level cells
  // keep a proportional (if shrinking) sub-threshold suppression — exactly
  // the "window between states decreases" effect of Fig. 3B/G.
  return level_vth(level) - search_margin();
}

double FeFetModel::search_margin() const { return 0.5 * params_.level_window(); }

double FeFetModel::level_error_probability(int level) const {
  XLDS_REQUIRE(level >= 0 && level < params_.levels());
  const double sigma = params_.sigma_program;
  if (sigma == 0.0) return 0.0;
  const double half_window = params_.level_window() / 2.0;
  const double z = half_window / sigma;
  // Interior levels can err in both directions; edge levels only inward.
  const bool interior = level > 0 && level < params_.levels() - 1;
  const double one_side = 1.0 - phi(z);
  return interior ? 2.0 * one_side : one_side;
}

double FeFetModel::retain(double vth, double dt, Rng& rng) const {
  XLDS_REQUIRE(dt >= 0.0);
  if (dt == 0.0) return vth;
  const double scale = std::sqrt(std::log1p(dt / params_.retention_t0));
  const double centre = 0.5 * (params_.vth_low + params_.vth_high);
  const double drift = rng.normal(0.0, params_.retention_drift_sigma * scale);
  // Depolarisation pulls proportionally to the distance from the window
  // centre, normalised by the half window: deep states decay fastest.
  const double half_window = 0.5 * (params_.vth_high - params_.vth_low);
  const double pull = params_.retention_depol * scale * (centre - vth) / half_window;
  return vth + drift + pull;
}

}  // namespace xlds::device
