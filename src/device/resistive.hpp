// Simple two-state resistive models for PCM, MRAM and generic binary NVM
// cells.  These back the Eva-CAM circuit model for the Fig. 5 validation
// chips (PCM 2T2R at 90 nm, MRAM 4T2R at 90 nm) where only LRS/HRS behaviour
// and its variation matter.
#pragma once

#include "device/device.hpp"
#include "util/rng.hpp"

namespace xlds::device {

struct ResistiveParams {
  DeviceKind kind = DeviceKind::kRram;
  double r_on = 1.0e4;       ///< LRS resistance, ohm
  double r_off = 1.0e6;      ///< HRS resistance, ohm
  double sigma_on_rel = 0.05;   ///< relative (lognormal) sigma of LRS
  double sigma_off_rel = 0.15;  ///< relative sigma of HRS (usually larger)
  /// Resistance drift R(t) = R0 (t/t0)^nu — the PCM amorphous-state
  /// phenomenon (structural relaxation); nearly zero for the crystalline
  /// state and for RRAM/MRAM.
  double drift_nu_on = 0.0;
  double drift_nu_off = 0.0;
  double drift_t0 = 1.0;  ///< s, reference time
};

/// Build resistive parameters from the canonical DeviceTraits presets.
ResistiveParams resistive_params_for(DeviceKind kind);

class ResistiveModel {
 public:
  explicit ResistiveModel(ResistiveParams params);

  const ResistiveParams& params() const noexcept { return params_; }

  /// Nominal resistance of the on (true) / off (false) state.
  double nominal_resistance(bool on) const;

  /// Sampled resistance: lognormal disorder around the nominal value.
  double sample_resistance(bool on, Rng& rng) const;

  /// Resistance after `age_s` seconds of drift: r * (max(age, t0)/t0)^nu.
  /// Identity for devices with zero drift exponents.
  double drifted_resistance(double r, bool on, double age_s) const;

  double on_off_ratio() const;

 private:
  ResistiveParams params_;
};

}  // namespace xlds::device
