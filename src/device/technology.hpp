// CMOS technology-node presets used by the circuit and array models.
//
// The numbers are first-order ITRS-style scaling values: what matters for the
// framework is that wire parasitics, device drive and supply voltage scale
// consistently across nodes so that cross-node comparisons (e.g. the 40 nm
// RRAM vs 90 nm PCM CAM chips of Fig. 5) are made on a common basis.
#pragma once

#include <string>
#include <vector>

namespace xlds::device {

struct TechNode {
  std::string name;           ///< e.g. "40nm"
  double feature_m = 0.0;     ///< feature size F in metres
  double vdd = 0.0;           ///< nominal supply voltage (V)
  double wire_r_per_m = 0.0;  ///< wire resistance per metre (ohm/m), minimum pitch
  double wire_c_per_m = 0.0;  ///< wire capacitance per metre (F/m), minimum pitch
  double nmos_ion_per_um = 0.0;  ///< NMOS on-current per um width (A/um)
  double gate_c_per_um = 0.0;    ///< gate capacitance per um width (F/um)
  double min_tx_width_um = 0.0;  ///< minimum transistor width (um)

  /// Resistance of an on transistor of `width_um` (first order: Vdd / Ion).
  double tx_on_resistance(double width_um) const;
  /// Gate capacitance of a transistor of `width_um`.
  double tx_gate_cap(double width_um) const;
  /// Drain junction capacitance approximation (fraction of gate cap).
  double tx_drain_cap(double width_um) const;
};

/// Preset lookup by node name.  Supported: 130nm, 90nm, 65nm, 45nm, 40nm,
/// 32nm, 28nm, 22nm, 16nm.  Throws PreconditionError for unknown names.
const TechNode& tech_node(const std::string& name);

/// All supported nodes, largest feature size first.
const std::vector<TechNode>& all_tech_nodes();

}  // namespace xlds::device
