// Behavioural FeFET model (Sec. II-A / Fig. 3B,D,G of the paper).
//
// An FeFET stores state as a threshold-voltage shift produced by partial
// polarisation switching of the ferroelectric gate layer.  The model captures
// the three behaviours the paper's HDC case study depends on:
//   1. multi-level storage — n evenly spaced V_th levels inside the memory
//      window (3-bit / 8-state cells were demonstrated);
//   2. programming variation — each program event lands a Gaussian-distributed
//      V_th around the target level (the paper quotes sigma = 94 mV measured);
//   3. square-law conduction — above threshold the drain current grows
//      quadratically with gate overdrive, which is what lets a 2-FeFET CAM
//      cell mimic a squared-Euclidean distance (Fig. 3D).
#pragma once

#include "util/rng.hpp"

namespace xlds::device {

struct FeFetParams {
  // A ~2.1 V memory window: what BEOL/thick-FE FeFET demonstrations report,
  // and what makes 8 states compatible with the 94 mV programming sigma the
  // paper measures (300 mV windows at 3 bits).
  double vth_low = 0.3;    ///< V_th of the fully "erased" (low) state, V
  double vth_high = 2.4;   ///< V_th of the fully "programmed" (high) state, V
  int bits = 3;            ///< bits per cell; levels = 2^bits
  double sigma_program = 0.094;  ///< programming variation sigma, V (paper: 94 mV)
  double k_sat = 1.0e-4;   ///< saturation transconductance factor, A/V^2
  double vds_read = 0.1;   ///< drain bias used when reading conductance, V
  double ioff = 1.0e-10;   ///< off-state leakage floor, A
  double subthreshold_swing = 0.060;  ///< V/decade

  // Retention: the programmed polarisation decays by depolarisation-field
  // creep, seen as a V_th random walk growing ~sqrt(ln(1 + t/t0)) plus a
  // slow drift of both states toward the window centre (partial
  // depolarisation) — the FeFET analogue of RRAM conductance relaxation.
  double retention_drift_sigma = 0.015;  ///< V_th walk amplitude at the unit scale, V
  double retention_depol = 0.004;        ///< centre-pull fraction at the unit scale
  double retention_t0 = 1.0;             ///< s, reference time

  int levels() const { return 1 << bits; }
  /// V_th separation between adjacent levels ("memory window" per level).
  double level_window() const;
};

class FeFetModel {
 public:
  explicit FeFetModel(FeFetParams params);

  const FeFetParams& params() const noexcept { return params_; }

  /// Nominal threshold voltage of stored level (0 .. levels-1), evenly spaced
  /// in [vth_low, vth_high].  Precondition: level in range.
  double level_vth(int level) const;

  /// Sample the programmed V_th for a target level: nominal + N(0, sigma).
  double program_vth(int level, Rng& rng) const;

  /// Level that a measured V_th would be read back as (nearest nominal level,
  /// midpoint thresholds) — models a program-verify readout.
  int readback_level(double vth) const;

  /// Batched readback over a block of measured V_th values: the number that
  /// would NOT read back as `level`.  Decision-identical to calling
  /// readback_level per element (floor(idx + 0.5) equals lround once the
  /// result is clamped to [0, levels-1]), but restructured as one pass over a
  /// contiguous block so Monte-Carlo trial loops vectorise.
  std::size_t readback_errors(int level, const double* vth, std::size_t n) const;

  /// Drain current at gate-source voltage `vgs` for a device with threshold
  /// `vth`: subthreshold exponential below, square-law saturation above, with
  /// a leakage floor.  Monotonic in (vgs - vth).
  double drain_current(double vgs, double vth) const;

  /// Effective read conductance: drain_current / vds_read.
  double conductance(double vgs, double vth) const;

  /// Gate voltage used to *search* for a stored level (CAM query encoding).
  /// Chosen so that a query equal to the stored level leaves both transistors
  /// of the 2-FeFET cell off: v_search(level) = level_vth(level) minus an
  /// off-margin of half a level window.
  double search_voltage(int level) const;

  /// The sub-threshold off-margin used by search_voltage (V).
  double search_margin() const;

  /// Analytical probability that a cell programmed to `level` is read back as
  /// a *different* level, given programming sigma (state-overlap metric of
  /// Fig. 3G-i).  Exact for the Gaussian model.
  double level_error_probability(int level) const;

  /// V_th after `dt` seconds of retention loss: random-walk drift with
  /// sqrt(ln(1 + dt/t0)) amplitude plus weak depolarisation toward the
  /// window centre.  dt == 0 returns `vth` unchanged without consuming RNG.
  double retain(double vth, double dt, Rng& rng) const;

 private:
  FeFetParams params_;
};

}  // namespace xlds::device
