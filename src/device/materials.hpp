// Materials-level levers (Fig. 6, the three leftmost columns).
//
// The paper's closing argument: top-down profiling should identify which
// *materials* innovation moves the application-level needle, and bottom-up
// materials work should bound what the upper layers may assume.  A lever is
// a multiplicative what-if on the device figures of merit; applying it to a
// trait preset yields the hypothetical device the architecture lanes can
// re-evaluate.
#pragma once

#include <string>
#include <vector>

#include "device/device.hpp"

namespace xlds::device {

struct MaterialsLever {
  std::string name;
  std::string mechanism;  ///< one-line physics note
  // Multipliers on the affected figures of merit (1.0 = unchanged).
  double write_energy_x = 1.0;
  double write_latency_x = 1.0;
  double write_voltage_x = 1.0;
  double on_off_ratio_x = 1.0;   ///< applied to off_resistance
  double endurance_x = 1.0;
  double retention_x = 1.0;
  double cell_area_x = 1.0;
};

/// Apply a lever to a trait set (returns the hypothetical device).
DeviceTraits apply_lever(const DeviceTraits& base, const MaterialsLever& lever);

/// The spin-device levers sketched in Fig. 6 — representative, not exhaustive.
const std::vector<MaterialsLever>& spin_device_levers();

/// Ferroelectric levers for the FeFET path (BEOL interlayer engineering).
const std::vector<MaterialsLever>& ferroelectric_levers();

}  // namespace xlds::device
