#include "device/materials.hpp"

#include "util/error.hpp"

namespace xlds::device {

DeviceTraits apply_lever(const DeviceTraits& base, const MaterialsLever& lever) {
  XLDS_REQUIRE(lever.write_energy_x > 0.0 && lever.write_latency_x > 0.0 &&
               lever.on_off_ratio_x > 0.0 && lever.endurance_x > 0.0 &&
               lever.retention_x > 0.0 && lever.cell_area_x > 0.0);
  DeviceTraits t = base;
  t.write_energy *= lever.write_energy_x;
  t.write_latency *= lever.write_latency_x;
  t.write_voltage *= lever.write_voltage_x;
  t.off_resistance *= lever.on_off_ratio_x;
  t.endurance_cycles *= lever.endurance_x;
  t.retention_s *= lever.retention_x;
  t.cell_area_f2 *= lever.cell_area_x;
  return t;
}

const std::vector<MaterialsLever>& spin_device_levers() {
  static const std::vector<MaterialsLever> levers = [] {
    std::vector<MaterialsLever> v;
    {
      MaterialsLever l;
      l.name = "SOT switching";
      l.mechanism = "spin-orbit-torque write path decouples read/write";
      l.write_energy_x = 0.2;
      l.write_latency_x = 0.2;
      l.endurance_x = 10.0;
      v.push_back(l);
    }
    {
      MaterialsLever l;
      l.name = "high-TMR stack";
      l.mechanism = "improved MgO barrier / interface crystallinity";
      l.on_off_ratio_x = 3.0;
      v.push_back(l);
    }
    {
      MaterialsLever l;
      l.name = "VCMA assist";
      l.mechanism = "voltage-controlled anisotropy lowers the write barrier";
      l.write_energy_x = 0.1;
      l.write_voltage_x = 0.8;
      l.retention_x = 0.5;  // the assist trades retention
      v.push_back(l);
    }
    {
      MaterialsLever l;
      l.name = "shape-anisotropy scaling";
      l.mechanism = "tall free layer keeps the barrier at small diameters";
      l.cell_area_x = 0.5;
      l.retention_x = 2.0;
      l.write_latency_x = 1.5;  // larger volume switches slower
      v.push_back(l);
    }
    return v;
  }();
  return levers;
}

const std::vector<MaterialsLever>& ferroelectric_levers() {
  static const std::vector<MaterialsLever> levers = [] {
    std::vector<MaterialsLever> v;
    {
      MaterialsLever l;
      l.name = "BEOL interlayer removal";
      l.mechanism = "eliminating the defective FE/channel interlayer";
      l.write_voltage_x = 0.4;
      l.write_energy_x = 0.3;
      l.endurance_x = 100.0;
      v.push_back(l);
    }
    {
      MaterialsLever l;
      l.name = "domain engineering";
      l.mechanism = "uniform polarisation domains tighten V_th distributions";
      l.on_off_ratio_x = 2.0;
      v.push_back(l);
    }
    return v;
  }();
  return levers;
}

}  // namespace xlds::device
