#include "device/rram.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/error.hpp"

namespace xlds::device {

RramModel::RramModel(RramParams params) : params_(params) {
  XLDS_REQUIRE(params_.g_max > params_.g_min);
  XLDS_REQUIRE(params_.g_min > 0.0);
  XLDS_REQUIRE(params_.bits >= 1 && params_.bits <= 4);
  XLDS_REQUIRE(params_.sigma_floor >= 0.0 && params_.sigma_peak >= 0.0);
  XLDS_REQUIRE(params_.max_program_iterations >= 1);
}

double RramModel::level_conductance(int level) const {
  XLDS_REQUIRE_MSG(level >= 0 && level < params_.levels(),
                   "level " << level << " out of range for " << params_.bits << "-bit cell");
  const double step = (params_.g_max - params_.g_min) / static_cast<double>(params_.levels() - 1);
  return params_.g_min + static_cast<double>(level) * step;
}

double RramModel::sigma_at(double g) const {
  const double d = (g - params_.g_peak_centre) / params_.g_peak_width;
  return params_.sigma_floor + params_.sigma_rel * g + params_.sigma_peak * std::exp(-d * d);
}

double RramModel::program_once(double target_g, Rng& rng) const {
  XLDS_REQUIRE(target_g >= 0.0);
  const double g = rng.normal(target_g, sigma_at(target_g));
  return std::clamp(g, params_.g_min, params_.g_max);
}

double RramModel::program_verify(double target_g, Rng& rng) const {
  double g = program_once(target_g, rng);
  for (int i = 1; i < params_.max_program_iterations; ++i) {
    if (std::abs(g - target_g) <= params_.verify_tolerance) break;
    g = program_once(target_g, rng);
  }
  return g;
}

double RramModel::relax(double g, double dt, Rng& rng) const {
  XLDS_REQUIRE(dt >= 0.0);
  if (dt == 0.0) return g;
  // Conductance relaxation is logarithmic in time (filament re-equilibration
  // slows as traps fill): the random-walk amplitude grows like
  // sqrt(ln(1 + t/t0)) rather than sqrt(t).
  const double scale = std::sqrt(std::log1p(dt / params_.relax_t0));
  const double centre = 0.5 * (params_.g_min + params_.g_max);
  const double pull = std::min(1.0, params_.relax_pull * scale);
  const double sigma =
      std::max(params_.relax_sigma_rel * g, params_.relax_sigma_floor) * scale;
  const double drifted = g + rng.normal(0.0, sigma) + pull * (centre - g);
  return std::clamp(drifted, params_.g_min, params_.g_max);
}

double RramModel::sample_hrs(Rng& rng) const {
  // Lognormal spread around the HRS conductance: multiplicative disorder is
  // the natural model for filament-gap tunnelling conductance.
  const double mu = std::log(params_.g_min * 2.0);
  const double sigma = 0.8;
  const double g = rng.lognormal(mu, sigma);
  return std::clamp(g, params_.g_min, params_.g_max);
}

double RramModel::variation_aware_level_conductance(int level, int levels) const {
  XLDS_REQUIRE(levels >= 2);
  XLDS_REQUIRE(level >= 0 && level < levels);
  // Greedily pick `levels` conductances minimising total sigma while keeping
  // at least 60 % of the uniform spacing between neighbours.  Deterministic:
  // evaluated once per (level, levels) query over a fixed candidate grid.
  constexpr int kGrid = 256;
  std::vector<double> grid(kGrid);
  for (int i = 0; i < kGrid; ++i) {
    grid[i] = params_.g_min +
              (params_.g_max - params_.g_min) * static_cast<double>(i) / (kGrid - 1);
  }
  const double min_gap =
      0.6 * (params_.g_max - params_.g_min) / static_cast<double>(levels - 1);
  // Endpoints are pinned (they are the lowest-variation states); interior
  // levels slide within their uniform-slot neighbourhood to dodge the bump.
  std::vector<double> chosen(static_cast<std::size_t>(levels));
  chosen.front() = params_.g_min;
  chosen.back() = params_.g_max;
  for (int l = 1; l < levels - 1; ++l) {
    const double nominal = level_conductance(0) +
                           (params_.g_max - params_.g_min) * static_cast<double>(l) /
                               static_cast<double>(levels - 1);
    double best_g = nominal;
    double best_cost = sigma_at(nominal);
    for (double g : grid) {
      if (std::abs(g - nominal) > 0.4 * min_gap / 0.6) continue;  // stay near the slot
      if (g - chosen[static_cast<std::size_t>(l - 1)] < min_gap) continue;
      const double cost = sigma_at(g);
      if (cost < best_cost) {
        best_cost = cost;
        best_g = g;
      }
    }
    chosen[static_cast<std::size_t>(l)] = best_g;
  }
  return chosen[static_cast<std::size_t>(level)];
}

}  // namespace xlds::device
