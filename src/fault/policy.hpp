// Graceful-degradation policies over defect maps.
//
// Three standard mitigations, each toggleable so its cost shows up in the
// evaluator / Eva-CAM figures of merit:
//   * spare row/column remapping — the array is fabricated with spare lines;
//     faulty logical lines are steered onto clean spares (laser-fuse style),
//     paying area for yield;
//   * match-line majority re-query — a search is repeated an odd number of
//     times and the majority winner taken, paying latency/energy to average
//     out sensing noise on marginal (partially faulty) rows;
//   * subarray exclusion — a partitioned array drops segments whose residual
//     fault fraction exceeds a threshold, paying capacity/aggregation signal.
//
// `plan_spare_remap` produces a logical->physical line assignment from a
// physical FaultMap; `residual_fault_map` projects the physical defects the
// plan could not hide into the logical array's coordinate frame, which is
// what the array simulators actually consume.  `estimate_yield` Monte-Carlo
// samples arrays from a FaultSpec and reports the fraction usable under the
// policies — the array-yield axis of the resilience sweeps.
#pragma once

#include <cstddef>
#include <vector>

#include "fault/fault_map.hpp"
#include "util/rng.hpp"

namespace xlds::fault {

struct GracefulPolicies {
  std::size_t spare_rows = 0;
  std::size_t spare_cols = 0;
  /// Odd number of repeated searches per query; 1 disables re-query.
  std::size_t requery_votes = 1;
  /// Drop partitioned-CAM segments whose residual faulty-cell fraction
  /// exceeds `exclusion_threshold` (at least one segment always stays).
  bool exclude_subarrays = false;
  double exclusion_threshold = 0.05;
};

/// Logical->physical line assignment chosen by the spare allocator.
struct RemapPlan {
  std::vector<std::size_t> row_of;  ///< physical row of each logical row
  std::vector<std::size_t> col_of;  ///< physical column of each logical column
  std::size_t remapped_rows = 0;
  std::size_t remapped_cols = 0;
  /// Effective cell faults + dead sensing chains left inside the logical
  /// window after remapping.
  std::size_t residual_faults = 0;
};

/// Greedy spare allocation on a physical map whose geometry includes the
/// spares (physical.rows() >= logical_rows, physical.cols() >= logical_cols).
/// Rows are repaired first (a logical row moves to a clean spare row when its
/// own line, sense amp, or any of its cells is faulty), then columns over the
/// selected rows.  Faulty lines beyond the spare budget stay in place.
RemapPlan plan_spare_remap(const FaultMap& physical, std::size_t logical_rows,
                           std::size_t logical_cols);

/// The logical-frame defect map left after applying `plan`: per-cell faults
/// are physical.effective() at the remapped coordinates (line faults folded
/// in), and sensing-chain states follow the selected lines.
FaultMap residual_fault_map(const FaultMap& physical, const RemapPlan& plan);

/// Convenience bundle: sample a physical map (geometry grown by the policy's
/// spares), plan the remap, and return the logical residual map.
struct RemapOutcome {
  FaultMap residual;
  RemapPlan plan;
  /// Effective cell faults in the unremapped logical window (what the array
  /// would have suffered with no spares).
  std::size_t unrepaired_faults = 0;
};

RemapOutcome remapped_fault_map(std::size_t rows, std::size_t cols, const FaultSpec& spec,
                                const GracefulPolicies& policies, Rng& rng);

/// What a fault-injection pass over a (possibly partitioned) array did.
struct FaultInjectionStats {
  std::size_t injected_cells = 0;  ///< effective cell faults before remapping
  std::size_t residual_cells = 0;  ///< faults the spare remap could not hide
  std::size_t remapped_rows = 0;
  std::size_t remapped_cols = 0;
  std::size_t excluded_segments = 0;
};

/// Multiplicative figure-of-merit overheads of the enabled policies, for
/// folding into Eva-CAM style array FOMs.
struct PolicyCost {
  double area_factor = 1.0;     ///< spare lines enlarge the array
  double latency_factor = 1.0;  ///< serial re-queries
  double energy_factor = 1.0;   ///< re-query energy per effective search
};

PolicyCost policy_cost(const GracefulPolicies& policies, std::size_t rows, std::size_t cols);

struct YieldEstimate {
  double yield = 0.0;  ///< usable arrays / sampled arrays
  double mean_residual_fraction = 0.0;  ///< residual faults / logical cells, mean
  std::size_t arrays = 0;
};

/// Monte-Carlo array yield at a fault spec: sample `n_arrays` physical maps
/// (with the policy's spares), remap, and count arrays whose residual fault
/// fraction is at most `max_residual_fraction`.  Parallelised with the
/// deterministic chunked streams: identical at any XLDS_THREADS.
YieldEstimate estimate_yield(std::size_t rows, std::size_t cols, const FaultSpec& spec,
                             const GracefulPolicies& policies, double max_residual_fraction,
                             std::size_t n_arrays, Rng& rng);

}  // namespace xlds::fault
