// Application-layer fault injection for networks stored in NVM: the single
// bit-flip / stuck-weight implementation the repo's memory lanes share
// (nvsim::inject_weight_faults is a thin wrapper over these primitives).
// Injection goes through nn::Layer::visit_weights, so every layer kind —
// dense, convolutional, whatever is added later — is covered by one hook.
#pragma once

#include <cstddef>

#include "nn/network.hpp"
#include "util/rng.hpp"

namespace xlds::fault {

/// Raw-bit-error-rate wear model: a programming-error floor compounded by
/// retention loss and endurance wear, each growing exponentially as the
/// respective fraction-of-spec approaches 1.  Mirrors the NVMExplorer-style
/// lifetime model; capped at 0.5 (a fully scrambled bit).
struct WearoutBer {
  double base_ber = 1e-9;
  double retention_alpha = 12.0;  ///< ber multiplies by ~e^alpha at age == retention spec
  double endurance_beta = 12.0;   ///< ...and by ~e^beta at writes == endurance spec

  /// BER at `age_fraction` = age / retention spec and `wear_fraction` =
  /// writes / endurance spec (pass 0 for mechanisms without a spec).
  double at(double age_fraction, double wear_fraction) const;
};

/// Int8-quantise every weight (symmetric [-max|w|, max|w|] scale), flip each
/// stored bit with probability `ber`, dequantise back.  Returns the number of
/// flipped bits; the caller restores weights from a snapshot if needed.
std::size_t flip_quantised_weight_bits(nn::Network& net, double ber, Rng& rng);

struct WeightFaultCounts {
  std::size_t stuck_on = 0;   ///< weights pinned at full magnitude
  std::size_t stuck_off = 0;  ///< weights pinned at zero
};

/// Stuck-cell faults at the weight level: a stuck-on cell pins the weight at
/// the array's full-scale magnitude (sign preserved — the differential pair's
/// healthy half still sets polarity), a stuck-off/open cell zeroes it.
WeightFaultCounts pin_stuck_weights(nn::Network& net, double stuck_on_rate,
                                    double stuck_off_rate, Rng& rng);

}  // namespace xlds::fault
