#include "fault/policy.hpp"

#include <algorithm>
#include <numeric>

#include "util/error.hpp"
#include "util/parallel.hpp"

namespace xlds::fault {

namespace {

constexpr std::uint64_t kYieldStreamTag = 0x11E1DFA7;

/// Row-local badness: the row line, its sensing chain, or any of its cells.
/// Column problems are the column pass's job, so raw cell states are used
/// (folding column-line faults in here would mark every row bad at once).
bool row_bad(const FaultMap& map, std::size_t r) {
  if (map.row_fault(r) != LineFault::kNone || map.row_sense_dead(r)) return true;
  for (std::size_t c = 0; c < map.cols(); ++c)
    if (map.cell(r, c) != CellFault::kNone) return true;
  return false;
}

bool col_bad(const FaultMap& map, std::size_t c, const std::vector<std::size_t>& selected_rows) {
  if (map.col_fault(c) != LineFault::kNone || map.col_sense_dead(c)) return true;
  for (std::size_t pr : selected_rows) {
    if (map.cell(pr, c) != CellFault::kNone) return true;
    // A row-line open reaching this column is a per-(row, col) disconnect the
    // row pass may have accepted (spares exhausted); swapping the column
    // cannot fix it, so it does not make the column bad.
  }
  return false;
}

}  // namespace

RemapPlan plan_spare_remap(const FaultMap& physical, std::size_t logical_rows,
                           std::size_t logical_cols) {
  XLDS_REQUIRE(logical_rows >= 1 && logical_cols >= 1);
  XLDS_REQUIRE_MSG(physical.rows() >= logical_rows && physical.cols() >= logical_cols,
                   "physical map " << physical.rows() << 'x' << physical.cols()
                                   << " smaller than logical " << logical_rows << 'x'
                                   << logical_cols);
  RemapPlan plan;
  plan.row_of.resize(logical_rows);
  plan.col_of.resize(logical_cols);

  // Row pass: steer bad logical rows onto clean spare rows, in index order.
  std::vector<std::size_t> spare_rows;
  for (std::size_t r = logical_rows; r < physical.rows(); ++r)
    if (!row_bad(physical, r)) spare_rows.push_back(r);
  std::size_t next_spare_row = 0;
  for (std::size_t lr = 0; lr < logical_rows; ++lr) {
    if (row_bad(physical, lr) && next_spare_row < spare_rows.size()) {
      plan.row_of[lr] = spare_rows[next_spare_row++];
      ++plan.remapped_rows;
    } else {
      plan.row_of[lr] = lr;
    }
  }

  // Column pass over the selected rows.
  std::vector<std::size_t> spare_cols;
  for (std::size_t c = logical_cols; c < physical.cols(); ++c)
    if (!col_bad(physical, c, plan.row_of)) spare_cols.push_back(c);
  std::size_t next_spare_col = 0;
  for (std::size_t lc = 0; lc < logical_cols; ++lc) {
    if (col_bad(physical, lc, plan.row_of) && next_spare_col < spare_cols.size()) {
      plan.col_of[lc] = spare_cols[next_spare_col++];
      ++plan.remapped_cols;
    } else {
      plan.col_of[lc] = lc;
    }
  }

  for (std::size_t lr = 0; lr < logical_rows; ++lr)
    for (std::size_t lc = 0; lc < logical_cols; ++lc)
      if (physical.effective(plan.row_of[lr], plan.col_of[lc]) != CellFault::kNone)
        ++plan.residual_faults;
  for (std::size_t lr = 0; lr < logical_rows; ++lr)
    if (physical.row_sense_dead(plan.row_of[lr])) ++plan.residual_faults;
  for (std::size_t lc = 0; lc < logical_cols; ++lc)
    if (physical.col_sense_dead(plan.col_of[lc])) ++plan.residual_faults;
  return plan;
}

FaultMap residual_fault_map(const FaultMap& physical, const RemapPlan& plan) {
  XLDS_REQUIRE(!plan.row_of.empty() && !plan.col_of.empty());
  FaultMap logical(plan.row_of.size(), plan.col_of.size());
  for (std::size_t lr = 0; lr < plan.row_of.size(); ++lr) {
    for (std::size_t lc = 0; lc < plan.col_of.size(); ++lc) {
      // Line faults fold into per-cell states here: a column permutation has
      // no meaningful "break position" in the logical frame.
      const CellFault f = physical.effective(plan.row_of[lr], plan.col_of[lc]);
      if (f != CellFault::kNone) logical.set_cell(lr, lc, f);
    }
    logical.set_row_sense_dead(lr, physical.row_sense_dead(plan.row_of[lr]));
  }
  for (std::size_t lc = 0; lc < plan.col_of.size(); ++lc)
    logical.set_col_sense_dead(lc, physical.col_sense_dead(plan.col_of[lc]));
  return logical;
}

RemapOutcome remapped_fault_map(std::size_t rows, std::size_t cols, const FaultSpec& spec,
                                const GracefulPolicies& policies, Rng& rng) {
  const FaultMap physical =
      FaultMap::generate(rows + policies.spare_rows, cols + policies.spare_cols, spec, rng);
  RemapOutcome out;
  out.unrepaired_faults = physical.fault_count_in(rows, cols);
  out.plan = plan_spare_remap(physical, rows, cols);
  out.residual = residual_fault_map(physical, out.plan);
  return out;
}

PolicyCost policy_cost(const GracefulPolicies& policies, std::size_t rows, std::size_t cols) {
  XLDS_REQUIRE(rows >= 1 && cols >= 1);
  XLDS_REQUIRE_MSG(policies.requery_votes >= 1 && policies.requery_votes % 2 == 1,
                   "requery_votes must be odd and >= 1, got " << policies.requery_votes);
  PolicyCost cost;
  cost.area_factor = static_cast<double>((rows + policies.spare_rows) *
                                         (cols + policies.spare_cols)) /
                     static_cast<double>(rows * cols);
  cost.latency_factor = static_cast<double>(policies.requery_votes);
  cost.energy_factor = static_cast<double>(policies.requery_votes);
  return cost;
}

YieldEstimate estimate_yield(std::size_t rows, std::size_t cols, const FaultSpec& spec,
                             const GracefulPolicies& policies, double max_residual_fraction,
                             std::size_t n_arrays, Rng& rng) {
  XLDS_REQUIRE(n_arrays >= 1);
  XLDS_REQUIRE(max_residual_fraction >= 0.0);
  Rng yield_rng = rng.fork(kYieldStreamTag);
  const std::size_t chunk = default_parallel_chunk(n_arrays);
  const std::size_t n_chunks = (n_arrays + chunk - 1) / chunk;
  std::vector<std::size_t> usable(n_chunks, 0);
  std::vector<double> frac_sum(n_chunks, 0.0);
  const double logical_cells = static_cast<double>(rows * cols);
  parallel_for_rng(yield_rng, n_arrays, chunk,
                   [&](Rng& chunk_rng, std::size_t begin, std::size_t end, std::size_t ci) {
                     for (std::size_t i = begin; i < end; ++i) {
                       const RemapOutcome out =
                           remapped_fault_map(rows, cols, spec, policies, chunk_rng);
                       const double frac =
                           static_cast<double>(out.plan.residual_faults) / logical_cells;
                       frac_sum[ci] += frac;
                       if (frac <= max_residual_fraction) ++usable[ci];
                     }
                   });
  YieldEstimate est;
  est.arrays = n_arrays;
  const auto n_usable = std::accumulate(usable.begin(), usable.end(), std::size_t{0});
  est.yield = static_cast<double>(n_usable) / static_cast<double>(n_arrays);
  est.mean_residual_fraction =
      std::accumulate(frac_sum.begin(), frac_sum.end(), 0.0) / static_cast<double>(n_arrays);
  return est;
}

}  // namespace xlds::fault
