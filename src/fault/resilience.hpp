// Cross-layer resilience sweeps: fault rate x time -> application accuracy.
//
// The paper's predictive-assessment loop judges a technology by propagating
// device behaviour to application figures of merit.  This evaluator closes
// that loop for *hard faults and aging*: it sweeps a defect-mechanism mix
// along a fault-rate axis and a retention/relaxation time axis, and reports
//   * HDC-CAM inference accuracy (the Sec. III case study) on the FeFET
//     partitioned MCAM,
//   * few-shot MANN accuracy (the Sec. IV case study) on the RRAM-LSH +
//     2T2R TCAM pipeline,
//   * Monte-Carlo array yield under the configured graceful-degradation
//     policies, and the policies' FOM overheads.
//
// The expensive seed-level artifacts (trained HDC model + test set, trained
// CNN feature extractor reduced to per-episode feature vectors) are memoized
// in process-wide caches — repeated sweeps at different policies or rates
// rebuild nothing.  The (rate, time, seed) grid itself runs under
// parallel_for_rng with one forked stream per point, so every number is
// bit-identical at any XLDS_THREADS.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "cam/fefet_cam.hpp"
#include "cam/rram_tcam.hpp"
#include "fault/policy.hpp"
#include "hdc/model.hpp"
#include "workload/dataset.hpp"
#include "workload/fewshot.hpp"
#include "xbar/crossbar.hpp"

namespace xlds::fault {

/// HDC-CAM case-study knobs (kept small: the sweep multiplies them by
/// rates x times x seeds).
struct ResilienceHdcConfig {
  workload::GaussianClustersSpec data;
  hdc::HdcConfig model;
  cam::FeFetCamConfig subarray;  ///< per-segment geometry; rows follow n_classes
  std::size_t max_test_samples = 48;

  ResilienceHdcConfig() {
    data.n_classes = 8;
    data.dim = 32;
    data.train_per_class = 20;
    data.test_per_class = 8;
    model.hv_dim = 256;
    model.element_bits = 3;
    model.retrain_epochs = 1;
    subarray.cols = 64;
  }
};

/// Few-shot MANN case-study knobs.  The CNN runs only at context-build time;
/// sweep points consume precomputed L2-normalised feature vectors.
struct ResilienceMannConfig {
  workload::FewShotSpec fewshot;
  std::size_t embedding = 32;
  std::size_t signature_bits = 48;
  std::size_t episodes = 2;
  std::size_t n_way = 4;
  std::size_t k_shot = 2;
  std::size_t queries_per_class = 2;
  /// Fixed don't-care fraction of each stored TLSH signature.
  double dont_care_fraction = 0.15;
  std::size_t pretrain_classes = 8;
  std::size_t pretrain_per_class = 12;
  /// Enough epochs that the extractor separates classes (the MANN tests use
  /// 12); with fewer the sweep measures noise, not fault response.
  std::size_t pretrain_epochs = 12;
  double pretrain_lr = 0.001;
  xbar::CrossbarConfig hash_xbar;  ///< rows/cols overridden from embedding/bits
  cam::RramTcamConfig am;          ///< cols overridden from signature_bits

  ResilienceMannConfig() { fewshot.image_side = 16; }
};

struct ResilienceConfig {
  std::vector<double> fault_rates{0.0, 0.01, 0.05, 0.1};
  std::vector<double> time_points_s{0.0, 1.0e4, 1.0e7};
  std::size_t seeds = 3;
  std::uint64_t base_seed = 1234;
  /// Mechanism mix scaled along the fault-rate axis (rate r applies
  /// mechanism_mix.scaled(r)).
  FaultSpec mechanism_mix = FaultSpec::mixed(1.0);
  GracefulPolicies policies;
  ResilienceHdcConfig hdc;
  ResilienceMannConfig mann;
  std::size_t yield_trials = 200;
  double yield_max_residual_fraction = 0.02;
};

/// One (fault rate, time) grid point, averaged over seeds.
struct ResiliencePoint {
  double fault_rate = 0.0;
  double time_s = 0.0;
  double hdc_accuracy = 0.0;
  double mann_accuracy = 0.0;
  /// Residual (post-remap) faulty-cell fraction of the HDC CAM, seed mean.
  double residual_fraction = 0.0;
};

struct ResilienceReport {
  /// Rate-major x time grid, each point seed-averaged.
  std::vector<ResiliencePoint> points;
  /// Array yield at each fault rate (aligned with config.fault_rates), at
  /// the HDC subarray geometry under the configured policies.
  std::vector<YieldEstimate> yield;
  PolicyCost cost;  ///< FOM overhead of the enabled policies

  const ResiliencePoint& at(std::size_t rate_index, std::size_t time_index,
                            std::size_t n_times) const {
    return points[rate_index * n_times + time_index];
  }
};

class ResilienceEvaluator {
 public:
  explicit ResilienceEvaluator(ResilienceConfig config);

  const ResilienceConfig& config() const noexcept { return config_; }

  /// Run the full sweep.  Deterministic in the config (including at any
  /// XLDS_THREADS); seed-level model training is served from the memo cache
  /// when a compatible context was already built this process.
  ResilienceReport run() const;

 private:
  ResilienceConfig config_;
};

/// Fidelity-ladder adapter (DSE Monte-Carlo tier): a minimal two-rate,
/// two-time probe grid — {0, fault_rate} x {0, age_s} at one seed — sized so
/// a search can afford one run per shortlisted point.  The ladder uses the
/// accuracy *ratio* between the faulty corner and the clean corner, so the
/// tiny synthetic tasks' absolute accuracy never leaks into the FOMs.  Every
/// probe at the same (rate, age) shares the process-wide context caches.
ResilienceConfig dse_probe_config(double fault_rate, double age_s, std::uint64_t seed);

/// Hit counters of the process-wide resilience context caches.
struct ResilienceCacheStats {
  std::size_t lookups = 0;
  std::size_t hits = 0;
};

ResilienceCacheStats resilience_cache_stats();
void clear_resilience_caches();

}  // namespace xlds::fault
