#include "fault/resilience.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "hdc/cam_inference.hpp"
#include "mann/lsh.hpp"
#include "nn/network.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"

namespace xlds::fault {

namespace {

constexpr std::uint64_t kGridStreamTag = 0x5E5111E4CE;
constexpr std::uint64_t kYieldSweepTag = 0x11E1D5EED;

// ---------------------------------------------------------------------------
// Context cache keys: FNV-1a over the fields that determine the artifact.

struct KeyHasher {
  std::uint64_t h = 1469598103934665603ull;

  void bytes(const void* p, std::size_t n) {
    const auto* b = static_cast<const unsigned char*>(p);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= b[i];
      h *= 1099511628211ull;
    }
  }
  void mix(std::uint64_t v) { bytes(&v, sizeof v); }
  void mix(double v) {
    std::uint64_t u;
    std::memcpy(&u, &v, sizeof u);
    mix(u);
  }
};

std::uint64_t hdc_context_key(const ResilienceConfig& cfg, std::size_t seed_index) {
  KeyHasher k;
  k.mix(cfg.base_seed);
  k.mix(static_cast<std::uint64_t>(seed_index));
  const auto& d = cfg.hdc.data;
  k.bytes(d.name.data(), d.name.size());
  k.mix(static_cast<std::uint64_t>(d.n_classes));
  k.mix(static_cast<std::uint64_t>(d.dim));
  k.mix(static_cast<std::uint64_t>(d.train_per_class));
  k.mix(static_cast<std::uint64_t>(d.test_per_class));
  k.mix(d.separation);
  k.mix(d.within_sigma);
  const auto& m = cfg.hdc.model;
  k.mix(static_cast<std::uint64_t>(m.hv_dim));
  k.mix(static_cast<std::uint64_t>(m.element_bits));
  k.mix(static_cast<std::uint64_t>(m.retrain_epochs));
  k.mix(m.retrain_rate);
  k.mix(static_cast<std::uint64_t>(m.similarity));
  k.mix(static_cast<std::uint64_t>(m.encoder));
  k.mix(static_cast<std::uint64_t>(m.id_level_quant));
  k.mix(static_cast<std::uint64_t>(cfg.hdc.max_test_samples));
  return k.h;
}

std::uint64_t mann_context_key(const ResilienceConfig& cfg, std::size_t seed_index) {
  KeyHasher k;
  k.mix(cfg.base_seed + 0xA5A5);
  k.mix(static_cast<std::uint64_t>(seed_index));
  const auto& f = cfg.mann.fewshot;
  k.mix(static_cast<std::uint64_t>(f.image_side));
  k.mix(static_cast<std::uint64_t>(f.n_classes));
  k.mix(f.pixel_noise);
  k.mix(static_cast<std::uint64_t>(f.max_shift));
  k.mix(static_cast<std::uint64_t>(f.prototype_waves));
  const auto& m = cfg.mann;
  k.mix(static_cast<std::uint64_t>(m.embedding));
  k.mix(static_cast<std::uint64_t>(m.episodes));
  k.mix(static_cast<std::uint64_t>(m.n_way));
  k.mix(static_cast<std::uint64_t>(m.k_shot));
  k.mix(static_cast<std::uint64_t>(m.queries_per_class));
  k.mix(static_cast<std::uint64_t>(m.pretrain_classes));
  k.mix(static_cast<std::uint64_t>(m.pretrain_per_class));
  k.mix(static_cast<std::uint64_t>(m.pretrain_epochs));
  k.mix(m.pretrain_lr);
  return k.h;
}

// ---------------------------------------------------------------------------
// Seed-level contexts.

struct HdcContext {
  explicit HdcContext(hdc::HdcModel m) : model(std::move(m)) {}
  hdc::HdcModel model;
  std::vector<std::vector<double>> test_x;
  std::vector<std::size_t> test_y;
};

struct EpisodeFeatures {
  std::vector<std::vector<double>> support_fv;
  std::vector<std::size_t> support_y;
  std::vector<std::vector<double>> query_fv;
  std::vector<std::size_t> query_y;
};

struct MannContext {
  std::vector<EpisodeFeatures> episodes;
};

// Memo caches (see core/evaluate.cpp for the idiom): pure functions of their
// key, mutex guards only the map, work happens outside the lock.
std::mutex g_hdc_cache_mutex;
std::unordered_map<std::uint64_t, std::shared_ptr<const HdcContext>> g_hdc_cache;
std::mutex g_mann_cache_mutex;
std::unordered_map<std::uint64_t, std::shared_ptr<const MannContext>> g_mann_cache;
std::atomic<std::size_t> g_ctx_lookups{0};
std::atomic<std::size_t> g_ctx_hits{0};

std::shared_ptr<const HdcContext> build_hdc_context(const ResilienceConfig& cfg,
                                                    std::size_t seed_index) {
  const std::uint64_t seed =
      cfg.base_seed + 0x9E3779B97F4A7C15ull * (static_cast<std::uint64_t>(seed_index) + 1);
  const workload::Dataset ds = workload::make_gaussian_clusters(cfg.hdc.data, seed);
  Rng rng(seed ^ 0x8DC);
  hdc::HdcModel model(cfg.hdc.model, ds.dim, ds.n_classes, rng);
  model.train(ds.train_x, ds.train_y);
  auto ctx = std::make_shared<HdcContext>(std::move(model));
  const std::size_t n = std::min(cfg.hdc.max_test_samples, ds.test_x.size());
  XLDS_REQUIRE_MSG(n > 0, "HDC resilience context has no test samples");
  ctx->test_x.assign(ds.test_x.begin(), ds.test_x.begin() + static_cast<std::ptrdiff_t>(n));
  ctx->test_y.assign(ds.test_y.begin(), ds.test_y.begin() + static_cast<std::ptrdiff_t>(n));
  return ctx;
}

std::vector<double> l2_normalised_embedding(nn::Network& cnn, const std::vector<double>& image) {
  std::vector<double> fv = cnn.forward_until(image, 1);
  double norm = 0.0;
  for (double v : fv) norm += v * v;
  norm = std::sqrt(norm);
  if (norm > 0.0)
    for (double& v : fv) v /= norm;
  return fv;
}

std::shared_ptr<const MannContext> build_mann_context(const ResilienceConfig& cfg,
                                                      std::size_t seed_index) {
  const auto& m = cfg.mann;
  const std::uint64_t seed =
      cfg.base_seed + 0xC0FFEEull + 0x9E3779B97F4A7C15ull * static_cast<std::uint64_t>(seed_index);
  Rng rng(seed);
  nn::Network cnn =
      nn::make_small_cnn(m.fewshot.image_side, /*classes=*/16, m.embedding, rng);
  workload::FewShotGenerator gen(m.fewshot, seed ^ 0xFE37);
  std::vector<std::vector<double>> xs;
  std::vector<std::size_t> ys;
  gen.sample_flat(m.pretrain_classes, m.pretrain_per_class, xs, ys);
  for (std::size_t e = 0; e < m.pretrain_epochs; ++e)
    cnn.train_epoch(xs, ys, m.pretrain_lr, rng);

  auto ctx = std::make_shared<MannContext>();
  ctx->episodes.reserve(m.episodes);
  for (std::size_t e = 0; e < m.episodes; ++e) {
    const workload::Episode ep = gen.sample_episode(m.n_way, m.k_shot, m.queries_per_class);
    EpisodeFeatures ef;
    ef.support_y = ep.support_y;
    ef.query_y = ep.query_y;
    ef.support_fv.reserve(ep.support_x.size());
    for (const auto& x : ep.support_x) ef.support_fv.push_back(l2_normalised_embedding(cnn, x));
    ef.query_fv.reserve(ep.query_x.size());
    for (const auto& x : ep.query_x) ef.query_fv.push_back(l2_normalised_embedding(cnn, x));
    ctx->episodes.push_back(std::move(ef));
  }
  return ctx;
}

template <typename Context, typename Build>
std::shared_ptr<const Context> cached_context(
    std::mutex& mutex, std::unordered_map<std::uint64_t, std::shared_ptr<const Context>>& cache,
    std::uint64_t key, Build&& build) {
  g_ctx_lookups.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lk(mutex);
    const auto it = cache.find(key);
    if (it != cache.end()) {
      g_ctx_hits.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }
  std::shared_ptr<const Context> ctx = build();
  std::lock_guard<std::mutex> lk(mutex);
  return cache.emplace(key, std::move(ctx)).first->second;
}

// ---------------------------------------------------------------------------
// Per-point evaluation.

std::size_t majority_best_row(const cam::RramTcamArray& am, const mann::Signature& query,
                              std::size_t votes) {
  if (votes <= 1) return am.search(query).best_row;
  std::vector<std::size_t> tally(am.rows(), 0);
  for (std::size_t v = 0; v < votes; ++v) ++tally[am.search(query).best_row];
  std::size_t best = 0;
  for (std::size_t r = 1; r < tally.size(); ++r)
    if (tally[r] > tally[best]) best = r;
  return best;
}

double evaluate_mann_point(const MannContext& ctx, const ResilienceConfig& cfg,
                           const FaultSpec& spec, double rate, double time_s, Rng& rng) {
  const auto& m = cfg.mann;
  const auto k_dc = static_cast<std::size_t>(m.dont_care_fraction *
                                             static_cast<double>(m.signature_bits));
  double acc_sum = 0.0;
  for (const EpisodeFeatures& ep : ctx.episodes) {
    // Fresh devices per episode, mirroring the MANN pipeline: redraw the
    // stochastic projection, apply this point's defects, re-calibrate.
    xbar::CrossbarConfig xc = m.hash_xbar;
    xc.rows = m.embedding;
    xc.cols = 2 * m.signature_bits;
    mann::CrossbarLsh lsh(xc, m.signature_bits, rng);
    lsh.crossbar().program_stochastic_hrs();
    if (rate > 0.0) {
      const RemapOutcome out = remapped_fault_map(xc.rows, xc.cols, spec, cfg.policies, rng);
      lsh.crossbar().apply_fault_map(out.residual);
    }
    lsh.calibrate_centering();

    std::vector<mann::Signature> stored(ep.support_fv.size());
    for (std::size_t s = 0; s < stored.size(); ++s)
      stored[s] = lsh.hash_ternary_fixed(ep.support_fv[s], k_dc);

    cam::RramTcamConfig ac = m.am;
    ac.cols = m.signature_bits;
    ac.rows = stored.size();
    cam::RramTcamArray am(ac, rng);
    if (rate > 0.0) {
      const RemapOutcome out = remapped_fault_map(ac.rows, ac.cols, spec, cfg.policies, rng);
      am.apply_fault_map(out.residual);
    }
    for (std::size_t s = 0; s < stored.size(); ++s) am.write_word(s, stored[s]);
    if (time_s > 0.0) {
      am.age(time_s);
      lsh.age(time_s);
    }

    std::size_t correct = 0;
    for (std::size_t q = 0; q < ep.query_fv.size(); ++q) {
      const mann::Signature qs = lsh.hash(ep.query_fv[q]);
      const std::size_t best = majority_best_row(am, qs, cfg.policies.requery_votes);
      if (ep.support_y[best] == ep.query_y[q]) ++correct;
    }
    acc_sum += static_cast<double>(correct) / static_cast<double>(ep.query_fv.size());
  }
  return acc_sum / static_cast<double>(ctx.episodes.size());
}

}  // namespace

ResilienceEvaluator::ResilienceEvaluator(ResilienceConfig config) : config_(std::move(config)) {
  XLDS_REQUIRE(!config_.fault_rates.empty());
  XLDS_REQUIRE(!config_.time_points_s.empty());
  XLDS_REQUIRE(config_.seeds >= 1);
  for (double r : config_.fault_rates) XLDS_REQUIRE(r >= 0.0 && r <= 1.0);
  for (double t : config_.time_points_s) XLDS_REQUIRE(t >= 0.0);
  XLDS_REQUIRE(config_.mann.episodes >= 1);
  XLDS_REQUIRE(config_.mann.dont_care_fraction >= 0.0 &&
               config_.mann.dont_care_fraction < 1.0);
  XLDS_REQUIRE_MSG(config_.policies.requery_votes >= 1 &&
                       config_.policies.requery_votes % 2 == 1,
                   "requery_votes must be odd");
}

ResilienceReport ResilienceEvaluator::run() const {
  const std::size_t n_rates = config_.fault_rates.size();
  const std::size_t n_times = config_.time_points_s.size();
  const std::size_t n_seeds = config_.seeds;

  // Seed contexts, built (or cache-served) before the grid fans out.
  std::vector<std::shared_ptr<const HdcContext>> hdc_ctx(n_seeds);
  std::vector<std::shared_ptr<const MannContext>> mann_ctx(n_seeds);
  for (std::size_t s = 0; s < n_seeds; ++s) {
    hdc_ctx[s] = cached_context<HdcContext>(
        g_hdc_cache_mutex, g_hdc_cache, hdc_context_key(config_, s),
        [&] { return build_hdc_context(config_, s); });
    mann_ctx[s] = cached_context<MannContext>(
        g_mann_cache_mutex, g_mann_cache, mann_context_key(config_, s),
        [&] { return build_mann_context(config_, s); });
  }

  const std::size_t n_points = n_rates * n_times * n_seeds;
  std::vector<double> hdc_acc(n_points, 0.0);
  std::vector<double> mann_acc(n_points, 0.0);
  std::vector<double> residual(n_points, 0.0);

  Rng grid_rng(config_.base_seed ^ kGridStreamTag);
  // Chunk of 1: each grid point owns a forked stream, so assignment of
  // points to threads never changes a draw.
  parallel_for_rng(grid_rng, n_points, 1,
                   [&](Rng& point_rng, std::size_t begin, std::size_t end, std::size_t) {
                     for (std::size_t i = begin; i < end; ++i) {
                       const std::size_t si = i % n_seeds;
                       const std::size_t ti = (i / n_seeds) % n_times;
                       const std::size_t ri = i / (n_seeds * n_times);
                       const double rate = config_.fault_rates[ri];
                       const double time_s = config_.time_points_s[ti];
                       const FaultSpec spec = config_.mechanism_mix.scaled(rate);

                       const HdcContext& hc = *hdc_ctx[si];
                       hdc::CamInferenceConfig cic;
                       cic.subarray = config_.hdc.subarray;
                       hdc::HdcCamInference infer(hc.model, cic, point_rng);
                       FaultInjectionStats stats;
                       if (rate > 0.0)
                         stats = infer.inject_faults(spec, config_.policies, point_rng);
                       if (time_s > 0.0) infer.age(time_s);
                       hdc_acc[i] = infer.accuracy(hc.test_x, hc.test_y,
                                                   config_.policies.requery_votes);
                       const double logical_cells =
                           static_cast<double>(infer.segments() * hc.model.n_classes() *
                                               config_.hdc.subarray.cols);
                       residual[i] = static_cast<double>(stats.residual_cells) / logical_cells;

                       mann_acc[i] = evaluate_mann_point(*mann_ctx[si], config_, spec, rate,
                                                         time_s, point_rng);
                     }
                   });

  ResilienceReport report;
  report.points.reserve(n_rates * n_times);
  const double inv_seeds = 1.0 / static_cast<double>(n_seeds);
  for (std::size_t ri = 0; ri < n_rates; ++ri) {
    for (std::size_t ti = 0; ti < n_times; ++ti) {
      ResiliencePoint p;
      p.fault_rate = config_.fault_rates[ri];
      p.time_s = config_.time_points_s[ti];
      for (std::size_t si = 0; si < n_seeds; ++si) {
        const std::size_t i = (ri * n_times + ti) * n_seeds + si;
        p.hdc_accuracy += hdc_acc[i] * inv_seeds;
        p.mann_accuracy += mann_acc[i] * inv_seeds;
        p.residual_fraction += residual[i] * inv_seeds;
      }
      report.points.push_back(p);
    }
  }

  // Yield sweep: one serial fork per rate (estimate_yield parallelises
  // internally with its own deterministic chunked streams).
  Rng yield_rng(config_.base_seed ^ kYieldSweepTag);
  report.yield.reserve(n_rates);
  for (std::size_t ri = 0; ri < n_rates; ++ri) {
    Rng rate_rng = yield_rng.fork(ri + 1);
    report.yield.push_back(estimate_yield(
        config_.hdc.subarray.rows, config_.hdc.subarray.cols,
        config_.mechanism_mix.scaled(config_.fault_rates[ri]), config_.policies,
        config_.yield_max_residual_fraction, config_.yield_trials, rate_rng));
  }

  report.cost =
      policy_cost(config_.policies, config_.hdc.subarray.rows, config_.hdc.subarray.cols);
  return report;
}

ResilienceConfig dse_probe_config(double fault_rate, double age_s, std::uint64_t seed) {
  XLDS_REQUIRE(fault_rate >= 0.0 && fault_rate <= 1.0 && age_s >= 0.0);
  ResilienceConfig cfg;
  cfg.fault_rates = {0.0, fault_rate};
  cfg.time_points_s = {0.0, age_s};
  cfg.seeds = 1;
  cfg.base_seed = seed;
  // Shrink the per-point work below the sweep defaults: the ladder runs one
  // probe per shortlisted point, not one sweep per figure.
  cfg.hdc.max_test_samples = 32;
  cfg.mann.episodes = 1;
  cfg.yield_trials = 1;  // estimate_yield requires >= 1; the ladder ignores yield
  return cfg;
}

ResilienceCacheStats resilience_cache_stats() {
  ResilienceCacheStats stats;
  stats.lookups = g_ctx_lookups.load(std::memory_order_relaxed);
  stats.hits = g_ctx_hits.load(std::memory_order_relaxed);
  return stats;
}

void clear_resilience_caches() {
  {
    std::lock_guard<std::mutex> lk(g_hdc_cache_mutex);
    g_hdc_cache.clear();
  }
  {
    std::lock_guard<std::mutex> lk(g_mann_cache_mutex);
    g_mann_cache.clear();
  }
  g_ctx_lookups.store(0, std::memory_order_relaxed);
  g_ctx_hits.store(0, std::memory_order_relaxed);
}

}  // namespace xlds::fault
