// Cross-layer hard-fault model (robustness axis of the paper's assessment).
//
// The paper's predictive-assessment argument is that device-level
// non-idealities must be propagated to application accuracy before a
// technology can be judged.  Variation and relaxation already flow end-to-end
// through the device models; this module adds the *hard* failure mechanisms a
// fabricated array exhibits:
//   * stuck-at cells — a crosspoint pinned at G_on (always conducts) or
//     G_off (never conducts), immune to programming and relaxation;
//   * open / shorted word- and bit-lines — a broken line disconnects every
//     cell beyond the break, a shorted line disables the whole row/column;
//   * dead sense amplifiers — a matchline sensing chain (CAM rows) or ADC
//     lane (crossbar columns) that never resolves.
//
// A `FaultMap` is a pure description of one array's defects, generated from a
// `FaultSpec` (per-mechanism rates) with the deterministic forked-RNG streams
// of util/parallel.hpp: the map is bit-identical at any XLDS_THREADS.  The
// array simulators (xbar::Crossbar, the cam:: arrays) consume maps through
// their `apply_fault_map` hooks; policies (spare remapping, re-query,
// subarray exclusion) live in fault/policy.hpp.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/matrix.hpp"
#include "util/rng.hpp"

namespace xlds::fault {

/// Defect state of one crosspoint / CAM cell.
enum class CellFault : std::uint8_t {
  kNone = 0,
  kStuckOn,   ///< pinned fully conducting (stuck-at-G_on / stuck-LRS)
  kStuckOff,  ///< pinned non-conducting at the device's off state (stuck-HRS)
  kOpen,      ///< electrically disconnected (zero conductance)
};

/// Defect state of a word- or bit-line.
enum class LineFault : std::uint8_t {
  kNone = 0,
  kOpen,   ///< line broken at a position; cells beyond it are disconnected
  kShort,  ///< line shorted to a neighbour/supply; the whole line is unusable
};

std::string to_string(CellFault f);
std::string to_string(LineFault f);

/// Per-mechanism defect rates.  Cell rates are per crosspoint, line rates per
/// line, sense-amp rates per sensing chain.  All rates are probabilities in
/// [0, 1] and stuck_on_rate + stuck_off_rate must not exceed 1.
struct FaultSpec {
  double stuck_on_rate = 0.0;
  double stuck_off_rate = 0.0;
  double wordline_open_rate = 0.0;
  double wordline_short_rate = 0.0;
  double bitline_open_rate = 0.0;
  double bitline_short_rate = 0.0;
  double senseamp_dead_rate = 0.0;

  double cell_fault_rate() const { return stuck_on_rate + stuck_off_rate; }

  /// Every rate multiplied by `factor` and clamped to [0, 1] — the sweep
  /// helper: a mechanism *mix* scaled along a single fault-rate axis.
  FaultSpec scaled(double factor) const;

  /// Pure stuck-cell population at the given rate, split evenly between
  /// stuck-on and stuck-off (no line or sense-amp faults).
  static FaultSpec uniform_stuck(double rate);

  /// A representative foundry mix, normalised so the *cell* fault rate equals
  /// `cell_rate`: 45/45 stuck-on/off, with line opens/shorts and dead sense
  /// amps at a few percent of the cell rate each.
  static FaultSpec mixed(double cell_rate);
};

/// Immutable-after-generation defect map of one rows x cols array.
class FaultMap {
 public:
  FaultMap() = default;

  /// A fault-free map of the given geometry.
  FaultMap(std::size_t rows, std::size_t cols);

  /// Sample a map from the spec.  Line and sense-amp draws come from streams
  /// forked off `rng` on the calling thread; per-cell draws run under
  /// parallel_for_rng with row-chunked streams — the result is a pure
  /// function of (rows, cols, spec, rng state), never the thread count.
  static FaultMap generate(std::size_t rows, std::size_t cols, const FaultSpec& spec, Rng& rng);

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  bool empty() const noexcept { return rows_ == 0 || cols_ == 0; }

  /// Raw per-cell defect (line faults not folded in).
  CellFault cell(std::size_t r, std::size_t c) const;

  /// Defect seen by the cell once line faults are folded in: a shorted line
  /// disables every cell on it, an open line disconnects cells at or beyond
  /// the break position.  Line-level disconnection overrides the cell state.
  CellFault effective(std::size_t r, std::size_t c) const;

  LineFault row_fault(std::size_t r) const;
  LineFault col_fault(std::size_t c) const;
  /// Break position of an open line (first disconnected cell index).
  std::size_t row_break(std::size_t r) const;
  std::size_t col_break(std::size_t c) const;

  /// Dead matchline sensing chain of a row (CAM orientation).
  bool row_sense_dead(std::size_t r) const;
  /// Dead ADC/sensing lane of a column (crossbar orientation).
  bool col_sense_dead(std::size_t c) const;

  // Builders for hand-constructed and remapped (residual) maps.
  void set_cell(std::size_t r, std::size_t c, CellFault f);
  void set_row_fault(std::size_t r, LineFault f, std::size_t break_at = 0);
  void set_col_fault(std::size_t c, LineFault f, std::size_t break_at = 0);
  void set_row_sense_dead(std::size_t r, bool dead);
  void set_col_sense_dead(std::size_t c, bool dead);

  /// Crosspoints whose effective() state is not kNone.
  std::size_t fault_count() const;
  /// Same, restricted to the top-left rows x cols window.
  std::size_t fault_count_in(std::size_t rows, std::size_t cols) const;
  std::size_t dead_row_sense_count() const;
  std::size_t dead_col_sense_count() const;
  /// No effective cell faults and no dead sensing chains anywhere.
  bool fault_free() const;

  friend bool operator==(const FaultMap& a, const FaultMap& b);

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  Matrix<std::uint8_t> cell_;
  std::vector<std::uint8_t> row_line_;
  std::vector<std::uint8_t> col_line_;
  std::vector<std::uint32_t> row_break_;
  std::vector<std::uint32_t> col_break_;
  std::vector<std::uint8_t> row_sa_dead_;
  std::vector<std::uint8_t> col_sa_dead_;
};

}  // namespace xlds::fault
