#include "fault/weight_faults.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace xlds::fault {

double WearoutBer::at(double age_fraction, double wear_fraction) const {
  XLDS_REQUIRE(age_fraction >= 0.0 && wear_fraction >= 0.0);
  double ber = base_ber;
  if (age_fraction > 0.0) ber += base_ber * std::expm1(retention_alpha * age_fraction);
  if (wear_fraction > 0.0) ber += base_ber * std::expm1(endurance_beta * wear_fraction);
  return std::min(ber, 0.5);
}

std::size_t flip_quantised_weight_bits(nn::Network& net, double ber, Rng& rng) {
  XLDS_REQUIRE(ber >= 0.0 && ber <= 0.5);
  if (ber == 0.0) return 0;
  // Weights stored as int8 over a symmetric [-max|w|, +max|w|] scale.
  double w_max = 0.0;
  net.visit_weights([&](double& w) { w_max = std::max(w_max, std::abs(w)); });
  if (w_max == 0.0) return 0;
  const double scale = w_max / 127.0;

  std::size_t flipped = 0;
  net.visit_weights([&](double& w) {
    auto code = static_cast<std::int8_t>(
        std::clamp(std::lround(w / scale), long{-127}, long{127}));
    auto bits = static_cast<std::uint8_t>(code);
    for (int b = 0; b < 8; ++b) {
      if (rng.bernoulli(ber)) {
        bits ^= static_cast<std::uint8_t>(1u << b);
        ++flipped;
      }
    }
    w = static_cast<double>(static_cast<std::int8_t>(bits)) * scale;
  });
  return flipped;
}

WeightFaultCounts pin_stuck_weights(nn::Network& net, double stuck_on_rate,
                                    double stuck_off_rate, Rng& rng) {
  XLDS_REQUIRE(stuck_on_rate >= 0.0 && stuck_off_rate >= 0.0);
  XLDS_REQUIRE(stuck_on_rate + stuck_off_rate <= 1.0);
  double w_max = 0.0;
  net.visit_weights([&](double& w) { w_max = std::max(w_max, std::abs(w)); });

  WeightFaultCounts counts;
  net.visit_weights([&](double& w) {
    const double u = rng.uniform();
    if (u < stuck_on_rate) {
      w = std::copysign(w_max, w);
      ++counts.stuck_on;
    } else if (u < stuck_on_rate + stuck_off_rate) {
      w = 0.0;
      ++counts.stuck_off;
    }
  });
  return counts;
}

}  // namespace xlds::fault
