#include "fault/fault_map.hpp"

#include <algorithm>

#include "kernels/sampler.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"

namespace xlds::fault {

namespace {

constexpr std::uint64_t kLineStreamTag = 0xFA017111E;
constexpr std::uint64_t kSenseStreamTag = 0xFA0175A;

void require_rate(double rate, const char* name) {
  XLDS_REQUIRE_MSG(rate >= 0.0 && rate <= 1.0, name << " rate " << rate << " not in [0, 1]");
}

}  // namespace

std::string to_string(CellFault f) {
  switch (f) {
    case CellFault::kNone: return "none";
    case CellFault::kStuckOn: return "stuck-on";
    case CellFault::kStuckOff: return "stuck-off";
    case CellFault::kOpen: return "open";
  }
  return "?";
}

std::string to_string(LineFault f) {
  switch (f) {
    case LineFault::kNone: return "none";
    case LineFault::kOpen: return "open";
    case LineFault::kShort: return "short";
  }
  return "?";
}

FaultSpec FaultSpec::scaled(double factor) const {
  XLDS_REQUIRE(factor >= 0.0);
  const auto clamp01 = [](double r) { return std::min(r, 1.0); };
  FaultSpec s;
  s.stuck_on_rate = clamp01(stuck_on_rate * factor);
  s.stuck_off_rate = clamp01(stuck_off_rate * factor);
  // Keep the cell-mechanism split valid even when clamping bites.
  if (s.stuck_on_rate + s.stuck_off_rate > 1.0) {
    const double total = s.stuck_on_rate + s.stuck_off_rate;
    s.stuck_on_rate /= total;
    s.stuck_off_rate /= total;
  }
  s.wordline_open_rate = clamp01(wordline_open_rate * factor);
  s.wordline_short_rate = clamp01(wordline_short_rate * factor);
  if (s.wordline_open_rate + s.wordline_short_rate > 1.0) {
    const double total = s.wordline_open_rate + s.wordline_short_rate;
    s.wordline_open_rate /= total;
    s.wordline_short_rate /= total;
  }
  s.bitline_open_rate = clamp01(bitline_open_rate * factor);
  s.bitline_short_rate = clamp01(bitline_short_rate * factor);
  if (s.bitline_open_rate + s.bitline_short_rate > 1.0) {
    const double total = s.bitline_open_rate + s.bitline_short_rate;
    s.bitline_open_rate /= total;
    s.bitline_short_rate /= total;
  }
  s.senseamp_dead_rate = clamp01(senseamp_dead_rate * factor);
  return s;
}

FaultSpec FaultSpec::uniform_stuck(double rate) {
  require_rate(rate, "stuck-cell");
  FaultSpec s;
  s.stuck_on_rate = rate / 2.0;
  s.stuck_off_rate = rate / 2.0;
  return s;
}

FaultSpec FaultSpec::mixed(double cell_rate) {
  require_rate(cell_rate, "cell-fault");
  FaultSpec s;
  s.stuck_on_rate = 0.5 * cell_rate;
  s.stuck_off_rate = 0.5 * cell_rate;
  s.wordline_open_rate = 0.04 * cell_rate;
  s.wordline_short_rate = 0.01 * cell_rate;
  s.bitline_open_rate = 0.04 * cell_rate;
  s.bitline_short_rate = 0.01 * cell_rate;
  s.senseamp_dead_rate = 0.03 * cell_rate;
  return s;
}

FaultMap::FaultMap(std::size_t rows, std::size_t cols)
    : rows_(rows),
      cols_(cols),
      cell_(rows, cols, static_cast<std::uint8_t>(CellFault::kNone)),
      row_line_(rows, static_cast<std::uint8_t>(LineFault::kNone)),
      col_line_(cols, static_cast<std::uint8_t>(LineFault::kNone)),
      row_break_(rows, 0),
      col_break_(cols, 0),
      row_sa_dead_(rows, 0),
      col_sa_dead_(cols, 0) {
  XLDS_REQUIRE(rows >= 1 && cols >= 1);
}

FaultMap FaultMap::generate(std::size_t rows, std::size_t cols, const FaultSpec& spec, Rng& rng) {
  require_rate(spec.stuck_on_rate, "stuck-on");
  require_rate(spec.stuck_off_rate, "stuck-off");
  XLDS_REQUIRE_MSG(spec.cell_fault_rate() <= 1.0,
                   "stuck-on + stuck-off rate " << spec.cell_fault_rate() << " exceeds 1");
  require_rate(spec.wordline_open_rate, "wordline-open");
  require_rate(spec.wordline_short_rate, "wordline-short");
  require_rate(spec.bitline_open_rate, "bitline-open");
  require_rate(spec.bitline_short_rate, "bitline-short");
  require_rate(spec.senseamp_dead_rate, "senseamp-dead");

  FaultMap map(rows, cols);

  // Line and sense-amp populations are O(R + C): drawn sequentially on the
  // calling thread from dedicated forked streams.
  Rng line_rng = rng.fork(kLineStreamTag);
  for (std::size_t r = 0; r < rows; ++r) {
    const double u = line_rng.uniform();
    if (u < spec.wordline_open_rate) {
      map.row_line_[r] = static_cast<std::uint8_t>(LineFault::kOpen);
      map.row_break_[r] = line_rng.uniform_u32(static_cast<std::uint32_t>(cols));
    } else if (u < spec.wordline_open_rate + spec.wordline_short_rate) {
      map.row_line_[r] = static_cast<std::uint8_t>(LineFault::kShort);
    }
  }
  for (std::size_t c = 0; c < cols; ++c) {
    const double u = line_rng.uniform();
    if (u < spec.bitline_open_rate) {
      map.col_line_[c] = static_cast<std::uint8_t>(LineFault::kOpen);
      map.col_break_[c] = line_rng.uniform_u32(static_cast<std::uint32_t>(rows));
    } else if (u < spec.bitline_open_rate + spec.bitline_short_rate) {
      map.col_line_[c] = static_cast<std::uint8_t>(LineFault::kShort);
    }
  }
  // Block Bernoulli fills: the same draws in the same order as the old
  // per-element loops, so generated maps are unchanged.
  Rng sense_rng = rng.fork(kSenseStreamTag);
  kernels::fill_bernoulli(sense_rng, map.row_sa_dead_.data(), rows, spec.senseamp_dead_rate);
  kernels::fill_bernoulli(sense_rng, map.col_sa_dead_.data(), cols, spec.senseamp_dead_rate);

  // Per-cell population is O(R*C): row-chunked with one uniform per cell so
  // every chunk's draws are a pure function of its chunk index.
  const double p_on = spec.stuck_on_rate;
  const double p_any = spec.stuck_on_rate + spec.stuck_off_rate;
  if (p_any > 0.0) {
    parallel_for_rng(rng, rows, 0,
                     [&](Rng& chunk_rng, std::size_t begin, std::size_t end, std::size_t) {
                       // One uniform per cell, same order as before; the block
                       // fill just separates the draws from the thresholding.
                       std::vector<double> u(cols);
                       for (std::size_t r = begin; r < end; ++r) {
                         auto* row = map.cell_.row_data(r);
                         kernels::fill_uniform(chunk_rng, u.data(), cols);
                         for (std::size_t c = 0; c < cols; ++c) {
                           if (u[c] < p_on)
                             row[c] = static_cast<std::uint8_t>(CellFault::kStuckOn);
                           else if (u[c] < p_any)
                             row[c] = static_cast<std::uint8_t>(CellFault::kStuckOff);
                         }
                       }
                     });
  }
  return map;
}

CellFault FaultMap::cell(std::size_t r, std::size_t c) const {
  XLDS_REQUIRE(r < rows_ && c < cols_);
  return static_cast<CellFault>(cell_(r, c));
}

CellFault FaultMap::effective(std::size_t r, std::size_t c) const {
  XLDS_REQUIRE(r < rows_ && c < cols_);
  const auto rf = static_cast<LineFault>(row_line_[r]);
  if (rf == LineFault::kShort || (rf == LineFault::kOpen && c >= row_break_[r]))
    return CellFault::kOpen;
  const auto cf = static_cast<LineFault>(col_line_[c]);
  if (cf == LineFault::kShort || (cf == LineFault::kOpen && r >= col_break_[c]))
    return CellFault::kOpen;
  return static_cast<CellFault>(cell_(r, c));
}

LineFault FaultMap::row_fault(std::size_t r) const {
  XLDS_REQUIRE(r < rows_);
  return static_cast<LineFault>(row_line_[r]);
}

LineFault FaultMap::col_fault(std::size_t c) const {
  XLDS_REQUIRE(c < cols_);
  return static_cast<LineFault>(col_line_[c]);
}

std::size_t FaultMap::row_break(std::size_t r) const {
  XLDS_REQUIRE(r < rows_);
  return row_break_[r];
}

std::size_t FaultMap::col_break(std::size_t c) const {
  XLDS_REQUIRE(c < cols_);
  return col_break_[c];
}

bool FaultMap::row_sense_dead(std::size_t r) const {
  XLDS_REQUIRE(r < rows_);
  return row_sa_dead_[r] != 0;
}

bool FaultMap::col_sense_dead(std::size_t c) const {
  XLDS_REQUIRE(c < cols_);
  return col_sa_dead_[c] != 0;
}

void FaultMap::set_cell(std::size_t r, std::size_t c, CellFault f) {
  XLDS_REQUIRE(r < rows_ && c < cols_);
  cell_(r, c) = static_cast<std::uint8_t>(f);
}

void FaultMap::set_row_fault(std::size_t r, LineFault f, std::size_t break_at) {
  XLDS_REQUIRE(r < rows_);
  XLDS_REQUIRE(f != LineFault::kOpen || break_at < cols_);
  row_line_[r] = static_cast<std::uint8_t>(f);
  row_break_[r] = static_cast<std::uint32_t>(f == LineFault::kOpen ? break_at : 0);
}

void FaultMap::set_col_fault(std::size_t c, LineFault f, std::size_t break_at) {
  XLDS_REQUIRE(c < cols_);
  XLDS_REQUIRE(f != LineFault::kOpen || break_at < rows_);
  col_line_[c] = static_cast<std::uint8_t>(f);
  col_break_[c] = static_cast<std::uint32_t>(f == LineFault::kOpen ? break_at : 0);
}

void FaultMap::set_row_sense_dead(std::size_t r, bool dead) {
  XLDS_REQUIRE(r < rows_);
  row_sa_dead_[r] = dead ? 1 : 0;
}

void FaultMap::set_col_sense_dead(std::size_t c, bool dead) {
  XLDS_REQUIRE(c < cols_);
  col_sa_dead_[c] = dead ? 1 : 0;
}

std::size_t FaultMap::fault_count() const { return fault_count_in(rows_, cols_); }

std::size_t FaultMap::fault_count_in(std::size_t rows, std::size_t cols) const {
  XLDS_REQUIRE(rows <= rows_ && cols <= cols_);
  std::size_t n = 0;
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c)
      if (effective(r, c) != CellFault::kNone) ++n;
  return n;
}

std::size_t FaultMap::dead_row_sense_count() const {
  std::size_t n = 0;
  for (std::uint8_t d : row_sa_dead_) n += d;
  return n;
}

std::size_t FaultMap::dead_col_sense_count() const {
  std::size_t n = 0;
  for (std::uint8_t d : col_sa_dead_) n += d;
  return n;
}

bool FaultMap::fault_free() const {
  return fault_count() == 0 && dead_row_sense_count() == 0 && dead_col_sense_count() == 0;
}

bool operator==(const FaultMap& a, const FaultMap& b) {
  return a.rows_ == b.rows_ && a.cols_ == b.cols_ && a.cell_.data() == b.cell_.data() &&
         a.row_line_ == b.row_line_ && a.col_line_ == b.col_line_ &&
         a.row_break_ == b.row_break_ && a.col_break_ == b.col_break_ &&
         a.row_sa_dead_ == b.row_sa_dead_ && a.col_sa_dead_ == b.col_sa_dead_;
}

}  // namespace xlds::fault
