// Synthetic classification datasets.
//
// The paper's accuracy experiments (Figs. 3C/E/F/G) use public datasets we
// do not ship; what those experiments measure, though, is *relative*
// degradation under precision loss, device variation and subarray
// aggregation — behaviour governed by class separability and dimensionality,
// which a Gaussian-cluster generator controls exactly.  Presets mirror the
// shape (dimensionality / class count) of the datasets the HDC literature
// uses, and every dataset is fully determined by its seed.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace xlds::workload {

struct Dataset {
  std::string name;
  std::size_t n_classes = 0;
  std::size_t dim = 0;
  std::vector<std::vector<double>> train_x;  ///< features in [0, 1]
  std::vector<std::size_t> train_y;
  std::vector<std::vector<double>> test_x;
  std::vector<std::size_t> test_y;
};

struct GaussianClustersSpec {
  std::string name = "synthetic";
  std::size_t n_classes = 10;
  std::size_t dim = 64;
  std::size_t train_per_class = 30;
  std::size_t test_per_class = 20;
  /// Expected Euclidean distance between class means, in units of the
  /// within-class sigma (a Mahalanobis-style distance, *not* per-dimension:
  /// the pairwise Bayes error is roughly Phi(-separation/2) independent of
  /// dimensionality).  ~5-6 gives high-but-not-perfect separability, the
  /// regime where the paper's degradation studies are informative.
  double separation = 5.0;
  double within_sigma = 0.08;
};

/// Generate a dataset from the spec; deterministic in `seed`.
Dataset make_gaussian_clusters(const GaussianClustersSpec& spec, std::uint64_t seed);

/// Presets shaped like the datasets named in the HDC literature the paper
/// builds on.  Supported names: "isolet-like" (617-d, 26 classes),
/// "ucihar-like" (561-d, 6 classes), "mnist-like" (784-d, 10 classes),
/// "face-like" (608-d, 2 classes), "language-like" (128-d, 21 classes).
Dataset make_named_dataset(const std::string& name, std::uint64_t seed);

/// All preset names (for sweeps over "different datasets", Fig. 3E).
const std::vector<std::string>& named_dataset_presets();

/// Per-dimension z-scoring fitted on a training set.  Gradient-based models
/// (the MLP/CNN baselines) need it: the raw features carry a large common
/// offset that swamps the class signal and stalls training.
class Standardiser {
 public:
  static Standardiser fit(const std::vector<std::vector<double>>& xs);

  std::vector<double> apply(const std::vector<double>& x) const;
  std::vector<std::vector<double>> apply_all(const std::vector<std::vector<double>>& xs) const;

 private:
  std::vector<double> mean_;
  std::vector<double> inv_std_;
};

/// Convenience: a copy of the dataset with train statistics applied to both
/// splits.
Dataset standardised(const Dataset& ds);

}  // namespace xlds::workload
