// Episodic few-shot image workload (Sec. IV).
//
// Stands in for Omniglot/miniImageNet: each "character class" is a smooth
// random prototype image (sum of random 2-D sinusoids); samples are the
// prototype plus pixel noise and a small random translation.  Episodes are
// the standard N-way k-shot protocol MANN papers evaluate with: a support
// set written into the associative memory, then queries classified by
// nearest stored entry.
#pragma once

#include <cstddef>
#include <vector>

#include "util/rng.hpp"

namespace xlds::workload {

struct FewShotSpec {
  std::size_t image_side = 20;
  std::size_t n_classes = 100;   ///< size of the class universe
  double pixel_noise = 0.06;
  std::size_t max_shift = 1;     ///< translation jitter, pixels
  std::size_t prototype_waves = 6;  ///< sinusoid components per prototype
};

/// One episode: support set (written to memory) and query set (classified).
/// Labels are episode-local, in [0, n_way).
struct Episode {
  std::vector<std::vector<double>> support_x;
  std::vector<std::size_t> support_y;
  std::vector<std::vector<double>> query_x;
  std::vector<std::size_t> query_y;
  std::size_t n_way = 0;
  std::size_t k_shot = 0;
};

class FewShotGenerator {
 public:
  FewShotGenerator(FewShotSpec spec, std::uint64_t seed);

  const FewShotSpec& spec() const noexcept { return spec_; }
  std::size_t image_size() const noexcept { return spec_.image_side * spec_.image_side; }

  /// Draw one N-way k-shot episode with `queries_per_class` queries.
  Episode sample_episode(std::size_t n_way, std::size_t k_shot, std::size_t queries_per_class);

  /// A labelled flat dataset drawn from the class universe — used to
  /// pre-train the CNN feature extractor on "background" classes.
  void sample_flat(std::size_t classes, std::size_t per_class,
                   std::vector<std::vector<double>>& xs, std::vector<std::size_t>& ys);

  /// Direct sample of a given universe class (for tests).
  std::vector<double> sample_image(std::size_t universe_class);

 private:
  struct Wave {
    double fx, fy, phase, amp;
  };

  double prototype_pixel(std::size_t cls, double x, double y) const;

  FewShotSpec spec_;
  Rng rng_;
  std::vector<std::vector<Wave>> prototypes_;
};

}  // namespace xlds::workload
