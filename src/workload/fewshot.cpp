#include "workload/fewshot.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/error.hpp"

namespace xlds::workload {

FewShotGenerator::FewShotGenerator(FewShotSpec spec, std::uint64_t seed)
    : spec_(spec), rng_(seed, 0xF357) {
  XLDS_REQUIRE(spec_.image_side >= 8);
  XLDS_REQUIRE(spec_.n_classes >= 2);
  prototypes_.resize(spec_.n_classes);
  for (auto& waves : prototypes_) {
    waves.resize(spec_.prototype_waves);
    for (Wave& w : waves) {
      w.fx = rng_.uniform(0.5, 3.0);
      w.fy = rng_.uniform(0.5, 3.0);
      w.phase = rng_.uniform(0.0, 2.0 * std::numbers::pi);
      w.amp = rng_.uniform(0.3, 1.0);
    }
  }
}

double FewShotGenerator::prototype_pixel(std::size_t cls, double x, double y) const {
  double v = 0.0;
  double amp_sum = 0.0;
  for (const Wave& w : prototypes_[cls]) {
    v += w.amp * std::sin(2.0 * std::numbers::pi * (w.fx * x + w.fy * y) + w.phase);
    amp_sum += w.amp;
  }
  // Normalise into [0, 1].
  return 0.5 + 0.5 * v / amp_sum;
}

std::vector<double> FewShotGenerator::sample_image(std::size_t universe_class) {
  XLDS_REQUIRE(universe_class < spec_.n_classes);
  const std::size_t side = spec_.image_side;
  const auto shift_range = static_cast<int>(spec_.max_shift);
  const int dx = shift_range == 0 ? 0 : static_cast<int>(rng_.uniform_u32(2 * shift_range + 1)) -
                                            shift_range;
  const int dy = shift_range == 0 ? 0 : static_cast<int>(rng_.uniform_u32(2 * shift_range + 1)) -
                                            shift_range;
  std::vector<double> img(side * side);
  for (std::size_t py = 0; py < side; ++py) {
    for (std::size_t px = 0; px < side; ++px) {
      const double x = (static_cast<double>(px) + dx) / static_cast<double>(side);
      const double y = (static_cast<double>(py) + dy) / static_cast<double>(side);
      const double v = prototype_pixel(universe_class, x, y) +
                       rng_.normal(0.0, spec_.pixel_noise);
      img[py * side + px] = std::clamp(v, 0.0, 1.0);
    }
  }
  return img;
}

Episode FewShotGenerator::sample_episode(std::size_t n_way, std::size_t k_shot,
                                         std::size_t queries_per_class) {
  XLDS_REQUIRE(n_way >= 2 && n_way <= spec_.n_classes);
  XLDS_REQUIRE(k_shot >= 1 && queries_per_class >= 1);
  Episode ep;
  ep.n_way = n_way;
  ep.k_shot = k_shot;
  const std::vector<std::size_t> classes = rng_.sample_without_replacement(spec_.n_classes, n_way);
  for (std::size_t local = 0; local < n_way; ++local) {
    for (std::size_t s = 0; s < k_shot; ++s) {
      ep.support_x.push_back(sample_image(classes[local]));
      ep.support_y.push_back(local);
    }
    for (std::size_t q = 0; q < queries_per_class; ++q) {
      ep.query_x.push_back(sample_image(classes[local]));
      ep.query_y.push_back(local);
    }
  }
  return ep;
}

void FewShotGenerator::sample_flat(std::size_t classes, std::size_t per_class,
                                   std::vector<std::vector<double>>& xs,
                                   std::vector<std::size_t>& ys) {
  XLDS_REQUIRE(classes >= 2 && classes <= spec_.n_classes);
  for (std::size_t cls = 0; cls < classes; ++cls) {
    for (std::size_t i = 0; i < per_class; ++i) {
      xs.push_back(sample_image(cls));
      ys.push_back(cls);
    }
  }
}

}  // namespace xlds::workload
