#include "workload/dataset.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace xlds::workload {

Dataset make_gaussian_clusters(const GaussianClustersSpec& spec, std::uint64_t seed) {
  XLDS_REQUIRE(spec.n_classes >= 2);
  XLDS_REQUIRE(spec.dim >= 2);
  XLDS_REQUIRE(spec.train_per_class >= 1 && spec.test_per_class >= 1);
  XLDS_REQUIRE(spec.within_sigma > 0.0);

  Rng rng(seed, 0xDA7A);
  Dataset ds;
  ds.name = spec.name;
  ds.n_classes = spec.n_classes;
  ds.dim = spec.dim;

  // Class means: random directions scaled so the expected pairwise mean
  // distance is `separation * within_sigma` (dimension-independent task
  // difficulty).  Random directions at radius r have expected pairwise
  // distance r*sqrt(2); solve for r.
  const double radius = spec.separation * spec.within_sigma / std::sqrt(2.0);
  std::vector<std::vector<double>> means(spec.n_classes, std::vector<double>(spec.dim));
  for (auto& mean : means) {
    double norm = 0.0;
    for (double& m : mean) {
      m = rng.normal();
      norm += m * m;
    }
    norm = std::sqrt(norm);
    for (double& m : mean) m = 0.5 + m / norm * radius;
  }

  auto emit = [&](std::size_t cls, std::vector<std::vector<double>>& xs,
                  std::vector<std::size_t>& ys) {
    std::vector<double> x(spec.dim);
    for (std::size_t d = 0; d < spec.dim; ++d)
      x[d] = std::clamp(rng.normal(means[cls][d], spec.within_sigma), 0.0, 1.0);
    xs.push_back(std::move(x));
    ys.push_back(cls);
  };

  for (std::size_t cls = 0; cls < spec.n_classes; ++cls) {
    for (std::size_t i = 0; i < spec.train_per_class; ++i) emit(cls, ds.train_x, ds.train_y);
    for (std::size_t i = 0; i < spec.test_per_class; ++i) emit(cls, ds.test_x, ds.test_y);
  }
  return ds;
}

namespace {

GaussianClustersSpec preset_spec(const std::string& name) {
  GaussianClustersSpec s;
  s.name = name;
  if (name == "isolet-like") {
    s.n_classes = 26;
    s.dim = 617;
    s.train_per_class = 20;
    s.test_per_class = 12;
    s.separation = 9.0;
  } else if (name == "ucihar-like") {
    s.n_classes = 6;
    s.dim = 561;
    s.train_per_class = 30;
    s.test_per_class = 20;
    s.separation = 8.5;
  } else if (name == "mnist-like") {
    s.n_classes = 10;
    s.dim = 784;
    s.train_per_class = 25;
    s.test_per_class = 15;
    s.separation = 8.5;
  } else if (name == "face-like") {
    s.n_classes = 2;
    s.dim = 608;
    s.train_per_class = 40;
    s.test_per_class = 30;
    s.separation = 8.0;
  } else if (name == "language-like") {
    s.n_classes = 21;
    s.dim = 128;
    s.train_per_class = 25;
    s.test_per_class = 15;
    s.separation = 9.0;
  } else {
    XLDS_REQUIRE_MSG(false, "unknown dataset preset '" << name << "'");
  }
  return s;
}

}  // namespace

Dataset make_named_dataset(const std::string& name, std::uint64_t seed) {
  return make_gaussian_clusters(preset_spec(name), seed);
}

const std::vector<std::string>& named_dataset_presets() {
  static const std::vector<std::string> names = {"isolet-like", "ucihar-like", "mnist-like",
                                                 "face-like", "language-like"};
  return names;
}

Standardiser Standardiser::fit(const std::vector<std::vector<double>>& xs) {
  XLDS_REQUIRE(!xs.empty());
  const std::size_t dim = xs.front().size();
  Standardiser s;
  s.mean_.assign(dim, 0.0);
  s.inv_std_.assign(dim, 1.0);
  for (const auto& x : xs) {
    XLDS_REQUIRE(x.size() == dim);
    for (std::size_t d = 0; d < dim; ++d) s.mean_[d] += x[d];
  }
  for (double& m : s.mean_) m /= static_cast<double>(xs.size());
  std::vector<double> var(dim, 0.0);
  for (const auto& x : xs)
    for (std::size_t d = 0; d < dim; ++d) {
      const double delta = x[d] - s.mean_[d];
      var[d] += delta * delta;
    }
  for (std::size_t d = 0; d < dim; ++d) {
    const double sd = std::sqrt(var[d] / static_cast<double>(xs.size()));
    s.inv_std_[d] = sd > 1e-12 ? 1.0 / sd : 1.0;
  }
  return s;
}

std::vector<double> Standardiser::apply(const std::vector<double>& x) const {
  XLDS_REQUIRE(x.size() == mean_.size());
  std::vector<double> out(x.size());
  for (std::size_t d = 0; d < x.size(); ++d) out[d] = (x[d] - mean_[d]) * inv_std_[d];
  return out;
}

std::vector<std::vector<double>> Standardiser::apply_all(
    const std::vector<std::vector<double>>& xs) const {
  std::vector<std::vector<double>> out;
  out.reserve(xs.size());
  for (const auto& x : xs) out.push_back(apply(x));
  return out;
}

Dataset standardised(const Dataset& ds) {
  const Standardiser s = Standardiser::fit(ds.train_x);
  Dataset out = ds;
  out.train_x = s.apply_all(ds.train_x);
  out.test_x = s.apply_all(ds.test_x);
  return out;
}

}  // namespace xlds::workload
