// Report rendering for triage results: one canonical shortlist format shared
// by the benches, the examples and any downstream tooling.
#pragma once

#include <string>
#include <vector>

#include "core/pareto.hpp"
#include "util/table.hpp"

namespace xlds::core {

struct ShortlistOptions {
  std::size_t max_rows = 12;
  bool include_note = true;
};

/// Render the ranked shortlist (with Pareto markers) as a Table.
Table format_shortlist(const std::vector<ScoredPoint>& scored,
                       const std::vector<std::size_t>& ranking,
                       const std::vector<std::size_t>& front,
                       const ShortlistOptions& options = {});

/// One-call convenience: enumerate, evaluate, rank and render for an
/// application.  Returns the rendered table; optionally exposes the scored
/// points for further inspection.
Table triage_report(const std::string& application, const Evaluator& evaluator,
                    const TriageWeights& weights = {},
                    std::vector<ScoredPoint>* scored_out = nullptr);

}  // namespace xlds::core
