#include "core/profiler.hpp"

#include <chrono>

#include "hdc/model.hpp"
#include "util/error.hpp"
#include "workload/dataset.hpp"

namespace xlds::core {

namespace {
double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}
}  // namespace

MeasuredProfile profile_hdc_application(const std::string& preset, std::size_t hv_dim,
                                        std::uint64_t seed) {
  const workload::Dataset ds = workload::make_named_dataset(preset, seed);

  Rng rng(seed + 1);
  hdc::HdcConfig cfg;
  cfg.hv_dim = hv_dim;
  cfg.element_bits = 4;
  hdc::HdcModel model(cfg, ds.dim, ds.n_classes, rng);
  model.train(ds.train_x, ds.train_y);

  MeasuredProfile profile;
  profile.application = preset;
  profile.input_dim = ds.dim;
  profile.n_classes = ds.n_classes;
  profile.hv_dim = hv_dim;
  profile.am_entries = ds.train_x.size();  // per-sample AM (online-HD style)
  profile.encode_macs = model.encoder().macs();
  profile.search_macs = profile.am_entries * hv_dim;
  profile.software_accuracy = model.accuracy(ds.test_x, ds.test_y);

  // Measured wall-clock split: encode vs per-sample associative search.
  std::vector<std::vector<int>> am;
  am.reserve(ds.train_x.size());
  for (const auto& x : ds.train_x) am.push_back(model.query_digits(x));

  double encode_time = 0.0, search_time = 0.0;
  volatile double sink = 0.0;
  for (const auto& x : ds.test_x) {
    auto t0 = std::chrono::steady_clock::now();
    const std::vector<int> q = model.query_digits(x);
    encode_time += seconds_since(t0);

    t0 = std::chrono::steady_clock::now();
    double best = 1e300;
    for (const auto& entry : am) {
      double d = 0.0;
      for (std::size_t i = 0; i < q.size(); ++i) {
        const double delta = q[i] - entry[i];
        d += delta * delta;
      }
      if (d < best) best = d;
    }
    sink = sink + best;
    search_time += seconds_since(t0);
  }
  profile.measured_search_fraction =
      encode_time + search_time > 0.0 ? search_time / (encode_time + search_time) : 0.0;
  return profile;
}

AppProfile to_app_profile(const MeasuredProfile& measured, std::size_t batch) {
  XLDS_REQUIRE(batch >= 1);
  XLDS_REQUIRE_MSG(measured.input_dim > 0 && measured.n_classes > 1,
                   "profile is empty; run a profiler first");
  AppProfile profile;
  profile.name = measured.application;
  profile.input_dim = measured.input_dim;
  profile.n_classes = measured.n_classes;
  profile.hv_dim = measured.hv_dim;
  profile.am_entries = measured.am_entries;
  // MLP/CNN alternatives sized off the measured dimensionality, as the
  // hand-written presets were.
  profile.mlp_macs = measured.input_dim * 256 + 256 * measured.n_classes;
  profile.cnn_macs = profile.mlp_macs * 5;
  profile.writes_per_inference = measured.writes_per_inference;
  profile.batch = batch;
  return profile;
}

}  // namespace xlds::core
