// Analytical FOM evaluation of surviving design points (the "triage" stage
// the paper argues for in Secs. VI/VII): fast enough to score the whole
// space, calibrated enough to rank it.  Deep dives then go to the functional
// simulators (cam/xbar/hdc/mann) and the system simulator (sim).
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/design_space.hpp"
#include "evacam/evacam.hpp"

namespace xlds::core {

/// Coarse application profile (the Fig. 6 inset: profile the workload first).
struct AppProfile {
  std::string name = "isolet-like";
  std::size_t input_dim = 617;
  std::size_t n_classes = 26;
  std::size_t am_entries = 512;     ///< prototypes stored for search-based algos
  std::size_t hv_dim = 2048;        ///< HDC hypervector length
  std::size_t mlp_macs = 400'000;   ///< per-inference MACs of the MLP solution
  std::size_t cnn_macs = 2'000'000; ///< per-inference MACs of the CNN solution
  double writes_per_inference = 0.0;  ///< AM/weight updates (online learning)
  std::size_t batch = 1;
};

/// Profiles for the named workload presets.
AppProfile profile_for(const std::string& application);

/// Evaluated figures of merit for one design point.
struct Fom {
  double latency = 0.0;   ///< s per inference (at the profile's batch)
  double energy = 0.0;    ///< J per inference
  double area_mm2 = 0.0;  ///< accelerator silicon (0 for rented platforms)
  double accuracy = 0.0;  ///< estimated task accuracy in [0, 1]
  bool feasible = true;
  std::string note;
};

/// Accuracy oracle: maps a design point to estimated accuracy.  The default
/// oracle is a calibrated heuristic; benches substitute measured values from
/// the functional simulators.
using AccuracyOracle = std::function<double(const DesignPoint&, const AppProfile&)>;

double default_accuracy_oracle(const DesignPoint& p, const AppProfile& profile);

/// Hit counters of the process-wide evaluation memo caches: the canonical
/// crossbar tile cost (keyed by device kind) and Eva-CAM projections (keyed
/// by the full CamDesignSpec).  Both caches are shared by every Evaluator
/// and thread-safe; entries are pure functions of their key, so caching
/// never changes results — only the sweep's wall clock.
struct EvalCacheStats {
  std::size_t tile_cost_lookups = 0;
  std::size_t tile_cost_hits = 0;
  std::size_t cam_fom_lookups = 0;
  std::size_t cam_fom_hits = 0;
};

EvalCacheStats evaluation_cache_stats();
void clear_evaluation_caches();

/// The canonical CAM macro a design point's associative-search stage maps to
/// (capacity from the profile, cell topology from the device).  Shared with
/// the DSE fidelity ladder so higher-fidelity refinements analyse the same
/// macro the analytic tier costed.
evacam::CamDesignSpec cam_spec_for_point(const DesignPoint& p, const AppProfile& profile);

class Evaluator {
 public:
  explicit Evaluator(AccuracyOracle oracle = default_accuracy_oracle);

  /// Score one point.  Points that fail workload-dependent feasibility
  /// (e.g. endurance vs write traffic) come back with feasible = false.
  Fom evaluate(const DesignPoint& p, const AppProfile& profile) const;

  /// Score every enumerated point in parallel (the triage sweep hot path).
  /// Returns one Fom per input index; culled points come back infeasible
  /// with the cull reason as the note.  Results are bit-identical at any
  /// XLDS_THREADS as long as the oracle is a pure function (the default is).
  std::vector<Fom> evaluate_all(const std::vector<EnumeratedPoint>& points,
                                const AppProfile& profile) const;

 private:
  Fom evaluate_digital(const DesignPoint& p, const AppProfile& profile) const;
  Fom evaluate_in_memory(const DesignPoint& p, const AppProfile& profile) const;

  AccuracyOracle oracle_;
};

}  // namespace xlds::core
