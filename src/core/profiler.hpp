// Measured workload profiling (the Fig. 6 inset: "profile existing
// algorithms to identify the most significant aspects of computational
// workloads") — the top-down entry point of the Sec. VII flow.
//
// Instead of hand-written profiles, run the *actual software implementation*
// of the algorithm on the named workload, instrumented: operation counts per
// stage, measured wall-clock shares, and memory traffic.  The result
// converts into the evaluator's AppProfile, so the triage runs on measured
// numbers.
#pragma once

#include <string>

#include "core/counters.hpp"
#include "core/evaluate.hpp"

namespace xlds::core {

/// Counts and timings from an instrumented software run.
struct MeasuredProfile {
  std::string application;
  std::size_t input_dim = 0;
  std::size_t n_classes = 0;
  std::size_t hv_dim = 0;
  std::size_t am_entries = 0;      ///< prototypes held for associative search
  std::size_t encode_macs = 0;     ///< per inference
  std::size_t search_macs = 0;     ///< per inference
  double measured_search_fraction = 0.0;  ///< wall-clock share of search
  double software_accuracy = 0.0;  ///< the iso-accuracy anchor
  double writes_per_inference = 0.0;
};

/// Profile the software HDC pipeline on a named dataset preset: trains the
/// model, times encode vs per-sample associative search over the test split,
/// and reports the measured counts.  Deterministic in `seed` except for the
/// wall-clock fraction (which is a measurement).
MeasuredProfile profile_hdc_application(const std::string& preset, std::size_t hv_dim,
                                        std::uint64_t seed);

/// Convert a measured profile into the analytical evaluator's AppProfile.
AppProfile to_app_profile(const MeasuredProfile& measured, std::size_t batch = 1);

}  // namespace xlds::core
