// Pareto-front extraction and triage ranking over evaluated design points
// (the "identify the most promising options for deep dives" step of Sec. VI).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/design_space.hpp"
#include "core/evaluate.hpp"

namespace xlds::core {

struct ScoredPoint {
  DesignPoint point;
  Fom fom;
};

/// Indices of the Pareto-optimal points: minimise latency, energy and area,
/// maximise accuracy.  Infeasible points never make the front, and a point
/// with a NaN objective is treated as infeasible (a NaN would otherwise be
/// incomparable, so it could never be dominated and would pollute the front).
/// A point is dominated if another is no worse on every objective and
/// strictly better on at least one.
///
/// Exact duplicates do not dominate each other, so every copy of a
/// non-dominated point lands on the front — callers feeding stochastic
/// search output should dedup_points() first.
std::vector<std::size_t> pareto_front(const std::vector<ScoredPoint>& points);

/// Indices of the first occurrence of each distinct DesignPoint (device,
/// arch, algo, application), in input order.  Stochastic search revisits
/// points; duplicates bloat the Pareto front with copies and multiply-count
/// designs in any downstream aggregation, so dedup before front extraction
/// and ranking.
std::vector<std::size_t> dedup_points(const std::vector<ScoredPoint>& points);

/// Triage weights for scalarised ranking (all >= 0).  Latency/energy/area
/// enter as log-ratios to the cohort's best feasible value, accuracy as a
/// linear loss from the cohort's best — so the score is scale-free.
struct TriageWeights {
  double latency = 1.0;
  double energy = 1.0;
  double area = 0.25;
  double accuracy = 30.0;
};

/// Rank feasible points by ascending triage score (best first).  Returns
/// indices into `points`.  NaN objectives are treated as infeasible, both
/// for ranking and for the cohort-best normalisation.
std::vector<std::size_t> triage_ranking(const std::vector<ScoredPoint>& points,
                                        const TriageWeights& weights = {});

}  // namespace xlds::core
