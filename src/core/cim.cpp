#include "core/cim.hpp"

#include "util/error.hpp"

namespace xlds::core {

CimFavorability evaluate_cim_favorability(const sim::Program& program,
                                          const sim::CoreConfig& core,
                                          const sim::CacheConfig& l1, const sim::CacheConfig& l2,
                                          const sim::DramConfig& dram,
                                          const sim::AcceleratorConfig& accel,
                                          const sim::EnergyConfig& energy,
                                          const CimThresholds& thresholds) {
  XLDS_REQUIRE(!program.empty());
  CimFavorability result;

  sim::Machine baseline(core, l1, l2, dram, sim::AcceleratorConfig{}, energy);
  result.baseline = baseline.run(program);

  sim::AcceleratorConfig with = accel;
  with.present = true;
  sim::Machine accelerated(core, l1, l2, dram, with, energy);
  result.accelerated = accelerated.run(program);

  XLDS_ASSERT(result.accelerated.total_time > 0.0);
  result.speedup = result.baseline.total_time / result.accelerated.total_time;
  const double e1 = result.accelerated.total_energy();
  result.energy_ratio = e1 > 0.0 ? result.baseline.total_energy() / e1 : 1.0;
  result.offloadable_fraction =
      result.baseline.total_time > 0.0
          ? result.baseline.mvm_core_time / result.baseline.total_time
          : 0.0;
  result.favourable = result.speedup >= thresholds.min_speedup &&
                      result.energy_ratio >= thresholds.min_energy_ratio;
  return result;
}

}  // namespace xlds::core
