#include "core/evaluate.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <mutex>
#include <unordered_map>

#include "arch/hdc_mapping.hpp"
#include "arch/mann_mapping.hpp"
#include "arch/platform.hpp"
#include "evacam/evacam.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"
#include "util/units.hpp"
#include "xbar/crossbar.hpp"

namespace xlds::core {

namespace {

// Canonical in-memory macro assumptions for triage-level estimates.
constexpr std::size_t kTileRows = 64;
constexpr std::size_t kTileLogicalCols = 32;  // 64 physical, differential
constexpr std::size_t kParallelTiles = 32;
constexpr double kLifetimeInferences = 1e9;  // deployment horizon for endurance

// Memo caches.  Both cached computations are pure functions of their key, so
// a miss computed concurrently by two threads produces the same value — the
// mutex only protects the map structure, and work is done outside it.
std::mutex g_tile_cache_mutex;
std::unordered_map<int, xbar::MvmCost> g_tile_cache;
std::atomic<std::size_t> g_tile_lookups{0};
std::atomic<std::size_t> g_tile_hits{0};

std::mutex g_cam_cache_mutex;
std::unordered_map<evacam::CamDesignSpec, evacam::CamFom, evacam::CamSpecHash> g_cam_cache;
std::atomic<std::size_t> g_cam_lookups{0};
std::atomic<std::size_t> g_cam_hits{0};

xbar::MvmCost compute_tile_cost(device::DeviceKind dev) {
  xbar::CrossbarConfig cfg;
  cfg.rows = kTileRows;
  cfg.cols = 2 * kTileLogicalCols;
  cfg.apply_variation = false;
  cfg.read_noise_rel = 0.0;
  // PCM/FeFET tiles behave like RRAM tiles to first order for cost purposes;
  // the device distinction shows up in accuracy and endurance instead.
  (void)dev;
  Rng rng(1);
  return xbar::Crossbar(cfg, rng).mvm_cost();
}

xbar::MvmCost canonical_tile_cost(device::DeviceKind dev) {
  const int key = static_cast<int>(dev);
  g_tile_lookups.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lk(g_tile_cache_mutex);
    const auto it = g_tile_cache.find(key);
    if (it != g_tile_cache.end()) {
      g_tile_hits.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }
  const xbar::MvmCost cost = compute_tile_cost(dev);
  std::lock_guard<std::mutex> lk(g_tile_cache_mutex);
  g_tile_cache.emplace(key, cost);
  return cost;
}

evacam::CamFom cached_cam_fom(const evacam::CamDesignSpec& spec) {
  g_cam_lookups.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lk(g_cam_cache_mutex);
    const auto it = g_cam_cache.find(spec);
    if (it != g_cam_cache.end()) {
      g_cam_hits.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }
  const evacam::CamFom fom = evacam::EvaCam(spec).evaluate();  // expensive; outside the lock
  std::lock_guard<std::mutex> lk(g_cam_cache_mutex);
  g_cam_cache.emplace(spec, fom);
  return fom;
}

/// Latency/energy of `macs` worth of MVM work on tiled crossbars.
xbar::MvmCost tiled_mvm_cost(device::DeviceKind dev, double macs) {
  const xbar::MvmCost tile = canonical_tile_cost(dev);
  const double macs_per_tile = static_cast<double>(kTileRows * kTileLogicalCols);
  const double tile_ops = std::ceil(macs / macs_per_tile);
  xbar::MvmCost cost;
  cost.latency = std::ceil(tile_ops / static_cast<double>(kParallelTiles)) * tile.latency;
  cost.energy = tile_ops * tile.energy;
  return cost;
}

const arch::Platform& platform_for(ArchKind arch) {
  switch (arch) {
    case ArchKind::kCpu: return arch::cpu();
    case ArchKind::kGpu: return arch::gpu();
    case ArchKind::kTpu: return arch::tpu();
    default: return arch::gpu();
  }
}

}  // namespace

evacam::CamDesignSpec cam_spec_for_point(const DesignPoint& p, const AppProfile& profile) {
  evacam::CamDesignSpec spec;
  spec.device = p.device;
  spec.cell = device::traits(p.device).terminals == 3 ? evacam::CellType::k2FeFET
                                                      : evacam::CellType::k2T2R;
  if (p.device == device::DeviceKind::kSram) spec.cell = evacam::CellType::k16T;
  if (p.device == device::DeviceKind::kMram) spec.cell = evacam::CellType::k4T2R;
  spec.match = cam::MatchType::kBest;
  spec.tech = "40nm";
  spec.words = std::max<std::size_t>(profile.am_entries, 16);
  spec.bits = 128;
  spec.subarray_rows = std::min<std::size_t>(spec.words, 256);
  spec.subarray_cols = 128;
  spec.min_distinguishable_steps = 4;
  return spec;
}

AppProfile profile_for(const std::string& application) {
  AppProfile p;
  p.name = application;
  if (application == "isolet-like") {
    p.input_dim = 617;
    p.n_classes = 26;
    p.am_entries = 520;
    p.mlp_macs = 617 * 256 + 256 * 26;
  } else if (application == "ucihar-like") {
    p.input_dim = 561;
    p.n_classes = 6;
    p.am_entries = 180;
    p.mlp_macs = 561 * 128 + 128 * 6;
  } else if (application == "mnist-like") {
    p.input_dim = 784;
    p.n_classes = 10;
    p.am_entries = 250;
    p.mlp_macs = 784 * 256 + 256 * 10;
  } else if (application == "face-like") {
    p.input_dim = 608;
    p.n_classes = 2;
    p.am_entries = 80;
    p.mlp_macs = 608 * 64 + 64 * 2;
  } else if (application == "language-like") {
    p.input_dim = 128;
    p.n_classes = 21;
    p.am_entries = 525;
    p.mlp_macs = 128 * 128 + 128 * 21;
  } else if (application == "omniglot-like") {
    p.input_dim = 400;
    p.n_classes = 5;
    p.am_entries = 25;
    p.hv_dim = 512;
    p.mlp_macs = 400 * 128 + 128 * 5;
    p.writes_per_inference = 0.2;  // support-set rewrites per query (episodic)
  } else {
    XLDS_REQUIRE_MSG(false, "no profile for application '" << application << "'");
  }
  return p;
}

double default_accuracy_oracle(const DesignPoint& p, const AppProfile& profile) {
  (void)profile;
  // Calibrated heuristic: software baselines from the case-study narrative;
  // penalties follow the measured degradations (precision, analog noise,
  // sense margin).  Benches replace this with simulator measurements.
  double acc = 0.0;
  switch (p.algo) {
    case AlgoKind::kMlp: acc = 0.94; break;
    case AlgoKind::kCnn: acc = 0.95; break;
    case AlgoKind::kHdc: acc = 0.93; break;
    case AlgoKind::kMann: acc = 0.91; break;
  }
  const auto& dev = device::traits(p.device);
  const bool in_memory = p.arch == ArchKind::kCamAccelerator ||
                         p.arch == ArchKind::kCrossbarAccelerator ||
                         p.arch == ArchKind::kCamXbarHybrid;
  if (in_memory) {
    const int bits = std::min(dev.max_bits_per_cell, 3);
    if (bits == 2) acc -= 0.015;
    if (bits == 1) acc -= 0.05;
    if (p.arch != ArchKind::kCamAccelerator) acc -= 0.01;  // analog MVM noise
    if (p.device == device::DeviceKind::kMram) acc -= 0.03;  // tiny sense margin
  }
  return acc;
}

Evaluator::Evaluator(AccuracyOracle oracle) : oracle_(std::move(oracle)) {
  XLDS_REQUIRE(oracle_ != nullptr);
}

Fom Evaluator::evaluate_digital(const DesignPoint& p, const AppProfile& profile) const {
  const arch::Platform& plat = platform_for(p.arch);
  arch::KernelCost cost;
  switch (p.algo) {
    case AlgoKind::kHdc: {
      arch::HdcWorkload w;
      w.input_dim = profile.input_dim;
      w.hv_dim = profile.hv_dim;
      w.am_entries = profile.am_entries;
      w.elem_bytes = 4;
      cost = p.arch == ArchKind::kTpuGpuHybrid
                 ? arch::hdc_hybrid_inference(arch::tpu(), arch::gpu(), w, profile.batch)
                 : arch::hdc_gpu_inference(plat, w, profile.batch);
      break;
    }
    case AlgoKind::kMlp:
      cost = arch::mlp_gpu_inference(plat, profile.mlp_macs, profile.mlp_macs, profile.batch);
      break;
    case AlgoKind::kCnn:
      cost = arch::mlp_gpu_inference(plat, profile.cnn_macs, profile.cnn_macs / 4,
                                     profile.batch);
      break;
    case AlgoKind::kMann: {
      arch::MannWorkload w;
      w.cnn_macs = profile.cnn_macs;
      w.cnn_param_bytes = profile.cnn_macs / 4;
      w.am_entries = profile.am_entries;
      cost = arch::mann_gpu_inference(plat, w, profile.batch);
      break;
    }
  }
  Fom fom;
  fom.latency = cost.latency / static_cast<double>(profile.batch);
  fom.energy = cost.energy / static_cast<double>(profile.batch);
  fom.area_mm2 = 0.0;
  fom.accuracy = oracle_(p, profile);
  fom.note = "software platform (" + plat.name + ")";
  return fom;
}

Fom Evaluator::evaluate_in_memory(const DesignPoint& p, const AppProfile& profile) const {
  const auto& dev = device::traits(p.device);
  Fom fom;
  fom.accuracy = oracle_(p, profile);

  // CAM stage (search-based algorithms).
  evacam::CamFom cam_fom{};
  const bool needs_cam =
      p.arch == ArchKind::kCamAccelerator || p.arch == ArchKind::kCamXbarHybrid;
  if (needs_cam) {
    cam_fom = cached_cam_fom(cam_spec_for_point(p, profile));
    if (cam_fom.max_ml_columns < 16) {
      fom.feasible = false;
      fom.note = "sense margin limits matchline to " +
                 std::to_string(cam_fom.max_ml_columns) + " columns";
    }
  }

  // Crossbar stage (MVM-based work).
  xbar::MvmCost mvm{};
  double xbar_macs = 0.0;
  switch (p.algo) {
    case AlgoKind::kHdc:
      xbar_macs = static_cast<double>(profile.input_dim * profile.hv_dim);
      break;
    case AlgoKind::kMlp: xbar_macs = static_cast<double>(profile.mlp_macs); break;
    case AlgoKind::kCnn: xbar_macs = static_cast<double>(profile.cnn_macs); break;
    case AlgoKind::kMann:
      xbar_macs = static_cast<double>(profile.cnn_macs) + 64.0 * 256.0;  // CNN + hashing
      break;
  }
  const bool needs_xbar = p.arch != ArchKind::kCamAccelerator;
  if (needs_xbar) mvm = tiled_mvm_cost(p.device, xbar_macs);

  fom.latency = mvm.latency + cam_fom.search_latency;
  fom.energy = mvm.energy + cam_fom.search_energy;

  // Online writes: endurance feasibility and write cost.
  if (profile.writes_per_inference > 0.0) {
    const double lifetime_writes = profile.writes_per_inference * kLifetimeInferences;
    if (lifetime_writes > dev.endurance_cycles) {
      fom.feasible = false;
      fom.note = device::to_string(p.device) + " endurance " +
                 si_format(dev.endurance_cycles, "cycles", 0) + " < " +
                 si_format(lifetime_writes, " lifetime writes", 0);
    }
    fom.latency += profile.writes_per_inference * dev.write_latency;
    fom.energy += profile.writes_per_inference * dev.write_energy * 128.0;
  }

  // Area: CAM macro + crossbar tiles (cells + per-column converters).
  double area = cam_fom.area_m2;
  if (needs_xbar) {
    const double tiles = std::ceil(xbar_macs / static_cast<double>(kTileRows * kTileLogicalCols));
    const double resident_tiles = std::min(tiles, static_cast<double>(kParallelTiles));
    const double f = device::tech_node("40nm").feature_m;
    const double tile_area = static_cast<double>(kTileRows * 2 * kTileLogicalCols) * 4.0 * f * f +
                             8.0 * 50e-12;  // cells + shared ADCs
    area += resident_tiles * tile_area;
  }
  fom.area_mm2 = area / 1e-6;
  if (fom.note.empty())
    fom.note = "in-memory macro (" + device::to_string(p.device) + ")";
  return fom;
}

Fom Evaluator::evaluate(const DesignPoint& p, const AppProfile& profile) const {
  XLDS_REQUIRE(profile.batch >= 1);
  const bool in_memory = p.arch == ArchKind::kCamAccelerator ||
                         p.arch == ArchKind::kCrossbarAccelerator ||
                         p.arch == ArchKind::kCamXbarHybrid;
  return in_memory ? evaluate_in_memory(p, profile) : evaluate_digital(p, profile);
}

std::vector<Fom> Evaluator::evaluate_all(const std::vector<EnumeratedPoint>& points,
                                         const AppProfile& profile) const {
  return parallel_map<Fom>(points.size(), [&](std::size_t i) {
    const EnumeratedPoint& ep = points[i];
    if (ep.culled_because) {
      Fom fom;
      fom.feasible = false;
      fom.note = *ep.culled_because;
      return fom;
    }
    return evaluate(ep.point, profile);
  });
}

EvalCacheStats evaluation_cache_stats() {
  EvalCacheStats s;
  s.tile_cost_lookups = g_tile_lookups.load(std::memory_order_relaxed);
  s.tile_cost_hits = g_tile_hits.load(std::memory_order_relaxed);
  s.cam_fom_lookups = g_cam_lookups.load(std::memory_order_relaxed);
  s.cam_fom_hits = g_cam_hits.load(std::memory_order_relaxed);
  return s;
}

void clear_evaluation_caches() {
  {
    std::lock_guard<std::mutex> lk(g_tile_cache_mutex);
    g_tile_cache.clear();
  }
  {
    std::lock_guard<std::mutex> lk(g_cam_cache_mutex);
    g_cam_cache.clear();
  }
  g_tile_lookups.store(0, std::memory_order_relaxed);
  g_tile_hits.store(0, std::memory_order_relaxed);
  g_cam_lookups.store(0, std::memory_order_relaxed);
  g_cam_hits.store(0, std::memory_order_relaxed);
}

}  // namespace xlds::core
