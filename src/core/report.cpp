#include "core/report.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/units.hpp"

namespace xlds::core {

Table format_shortlist(const std::vector<ScoredPoint>& scored,
                       const std::vector<std::size_t>& ranking,
                       const std::vector<std::size_t>& front,
                       const ShortlistOptions& options) {
  std::vector<std::string> headers = {"rank", "design point", "latency/query",
                                      "energy/query", "area (mm^2)", "est. accuracy",
                                      "Pareto"};
  if (options.include_note) headers.push_back("note");
  Table table(headers);
  for (std::size_t i = 0; i < std::min(ranking.size(), options.max_rows); ++i) {
    XLDS_REQUIRE(ranking[i] < scored.size());
    const ScoredPoint& sp = scored[ranking[i]];
    const bool on_front = std::find(front.begin(), front.end(), ranking[i]) != front.end();
    std::vector<std::string> row = {std::to_string(i + 1),
                                    sp.point.to_string(),
                                    si_format(sp.fom.latency, "s", 2),
                                    si_format(sp.fom.energy, "J", 2),
                                    Table::num(sp.fom.area_mm2, 3),
                                    Table::num(sp.fom.accuracy, 3),
                                    on_front ? "*" : ""};
    if (options.include_note) row.push_back(sp.fom.note);
    table.add_row(row);
  }
  return table;
}

Table triage_report(const std::string& application, const Evaluator& evaluator,
                    const TriageWeights& weights, std::vector<ScoredPoint>* scored_out) {
  const AppProfile profile = profile_for(application);
  const auto enumerated = enumerate_design_space(application);
  const auto foms = evaluator.evaluate_all(enumerated, profile);
  std::vector<ScoredPoint> scored;
  scored.reserve(enumerated.size());
  for (std::size_t i = 0; i < enumerated.size(); ++i) {
    ScoredPoint sp;
    sp.point = enumerated[i].point;
    sp.fom = foms[i];
    scored.push_back(std::move(sp));
  }
  const auto front = pareto_front(scored);
  const auto ranking = triage_ranking(scored, weights);
  Table table = format_shortlist(scored, ranking, front);
  if (scored_out != nullptr) *scored_out = std::move(scored);
  return table;
}

}  // namespace xlds::core
