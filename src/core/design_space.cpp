#include "core/design_space.hpp"

#include <sstream>

#include "util/error.hpp"

namespace xlds::core {

std::string to_string(ArchKind a) {
  switch (a) {
    case ArchKind::kCpu: return "CPU";
    case ArchKind::kGpu: return "GPU";
    case ArchKind::kTpu: return "TPU";
    case ArchKind::kTpuGpuHybrid: return "TPU+GPU";
    case ArchKind::kCamAccelerator: return "CAM-accel";
    case ArchKind::kCrossbarAccelerator: return "XBar-accel";
    case ArchKind::kCamXbarHybrid: return "XBar+CAM";
  }
  return "?";
}

std::string to_string(AlgoKind a) {
  switch (a) {
    case AlgoKind::kMlp: return "MLP";
    case AlgoKind::kCnn: return "CNN";
    case AlgoKind::kHdc: return "HDC";
    case AlgoKind::kMann: return "MANN";
  }
  return "?";
}

const std::vector<ArchKind>& all_arch_kinds() {
  static const std::vector<ArchKind> kinds = {
      ArchKind::kCpu,          ArchKind::kGpu,
      ArchKind::kTpu,          ArchKind::kTpuGpuHybrid,
      ArchKind::kCamAccelerator, ArchKind::kCrossbarAccelerator,
      ArchKind::kCamXbarHybrid};
  return kinds;
}

const std::vector<AlgoKind>& all_algo_kinds() {
  static const std::vector<AlgoKind> kinds = {AlgoKind::kMlp, AlgoKind::kCnn, AlgoKind::kHdc,
                                              AlgoKind::kMann};
  return kinds;
}

std::string DesignPoint::to_string() const {
  std::ostringstream os;
  os << device::to_string(device) << '/' << core::to_string(arch) << '/' << core::to_string(algo)
     << '/' << application;
  return os.str();
}

namespace {

bool is_in_memory_arch(ArchKind a) {
  return a == ArchKind::kCamAccelerator || a == ArchKind::kCrossbarAccelerator ||
         a == ArchKind::kCamXbarHybrid;
}

bool uses_crossbar(ArchKind a) {
  return a == ArchKind::kCrossbarAccelerator || a == ArchKind::kCamXbarHybrid;
}

bool uses_cam(ArchKind a) {
  return a == ArchKind::kCamAccelerator || a == ArchKind::kCamXbarHybrid;
}

}  // namespace

std::optional<std::string> incompatibility(const DesignPoint& p) {
  const auto& dev = device::traits(p.device);

  // Digital platforms do not expose the storage device at all — the device
  // axis only matters for in-memory architectures (a conventional platform
  // with any device reduces to the same point; keep only the SRAM pairing to
  // avoid duplicates).
  if (!is_in_memory_arch(p.arch)) {
    if (p.device != device::DeviceKind::kSram)
      return "digital platform: device axis collapses to the SRAM baseline";
    return std::nullopt;
  }

  // In-memory architectures.
  if (uses_crossbar(p.arch)) {
    if (dev.max_bits_per_cell < 2)
      return device::to_string(p.device) + " stores <2 bits/cell: no analog MAC weights";
    if (!dev.nonvolatile)
      return device::to_string(p.device) + " is volatile: crossbar weights would not persist";
    if (dev.kind == device::DeviceKind::kFlash)
      return "flash write path (high voltage, 10us pulses) cannot program crossbar weights in situ";
  }
  if (uses_cam(p.arch)) {
    if (dev.on_off_ratio() < 5.0)
      return device::to_string(p.device) + " on/off ratio " +
             std::to_string(dev.on_off_ratio()) + " too small for matchline sensing";
  }
  // Algorithm/architecture fit.
  if (p.algo == AlgoKind::kHdc && p.arch == ArchKind::kCrossbarAccelerator)
    return "HDC needs an associative-search stage; a crossbar alone only encodes";
  if ((p.algo == AlgoKind::kMlp || p.algo == AlgoKind::kCnn) && uses_cam(p.arch) &&
      !uses_crossbar(p.arch))
    return "MLP/CNN have no search kernel for a CAM to accelerate";
  if (p.algo == AlgoKind::kMann && p.arch == ArchKind::kCamAccelerator)
    return "MANN needs MVM (CNN + hashing) next to the AM; pick the XBar+CAM hybrid";
  return std::nullopt;
}

std::vector<EnumeratedPoint> enumerate_design_space(const std::string& application,
                                                    bool include_culled) {
  XLDS_REQUIRE(!application.empty());
  std::vector<EnumeratedPoint> points;
  for (device::DeviceKind dev : device::all_device_kinds()) {
    for (ArchKind arch : all_arch_kinds()) {
      for (AlgoKind algo : all_algo_kinds()) {
        DesignPoint p;
        p.device = dev;
        p.arch = arch;
        p.algo = algo;
        p.application = application;
        auto reason = incompatibility(p);
        if (reason.has_value() && !include_culled) continue;
        points.push_back(EnumeratedPoint{p, std::move(reason)});
      }
    }
  }
  return points;
}

}  // namespace xlds::core
