#include "core/design_space.hpp"

#include <sstream>

#include "util/error.hpp"

namespace xlds::core {

std::string to_string(ArchKind a) {
  switch (a) {
    case ArchKind::kCpu: return "CPU";
    case ArchKind::kGpu: return "GPU";
    case ArchKind::kTpu: return "TPU";
    case ArchKind::kTpuGpuHybrid: return "TPU+GPU";
    case ArchKind::kCamAccelerator: return "CAM-accel";
    case ArchKind::kCrossbarAccelerator: return "XBar-accel";
    case ArchKind::kCamXbarHybrid: return "XBar+CAM";
  }
  return "?";
}

std::string to_string(AlgoKind a) {
  switch (a) {
    case AlgoKind::kMlp: return "MLP";
    case AlgoKind::kCnn: return "CNN";
    case AlgoKind::kHdc: return "HDC";
    case AlgoKind::kMann: return "MANN";
  }
  return "?";
}

const std::vector<ArchKind>& all_arch_kinds() {
  static const std::vector<ArchKind> kinds = {
      ArchKind::kCpu,          ArchKind::kGpu,
      ArchKind::kTpu,          ArchKind::kTpuGpuHybrid,
      ArchKind::kCamAccelerator, ArchKind::kCrossbarAccelerator,
      ArchKind::kCamXbarHybrid};
  return kinds;
}

const std::vector<AlgoKind>& all_algo_kinds() {
  static const std::vector<AlgoKind> kinds = {AlgoKind::kMlp, AlgoKind::kCnn, AlgoKind::kHdc,
                                              AlgoKind::kMann};
  return kinds;
}

std::string DesignPoint::to_string() const {
  std::ostringstream os;
  os << device::to_string(device) << '/' << core::to_string(arch) << '/' << core::to_string(algo)
     << '/' << application;
  return os.str();
}

namespace {

bool is_in_memory_arch(ArchKind a) {
  return a == ArchKind::kCamAccelerator || a == ArchKind::kCrossbarAccelerator ||
         a == ArchKind::kCamXbarHybrid;
}

bool uses_crossbar(ArchKind a) {
  return a == ArchKind::kCrossbarAccelerator || a == ArchKind::kCamXbarHybrid;
}

bool uses_cam(ArchKind a) {
  return a == ArchKind::kCamAccelerator || a == ArchKind::kCamXbarHybrid;
}

}  // namespace

std::optional<std::string> incompatibility(const DesignPoint& p) {
  const auto& dev = device::traits(p.device);

  // Digital platforms do not expose the storage device at all — the device
  // axis only matters for in-memory architectures (a conventional platform
  // with any device reduces to the same point; keep only the SRAM pairing to
  // avoid duplicates).
  if (!is_in_memory_arch(p.arch)) {
    if (p.device != device::DeviceKind::kSram)
      return "digital platform: device axis collapses to the SRAM baseline";
    return std::nullopt;
  }

  // In-memory architectures.
  if (uses_crossbar(p.arch)) {
    if (dev.max_bits_per_cell < 2)
      return device::to_string(p.device) + " stores <2 bits/cell: no analog MAC weights";
    if (!dev.nonvolatile)
      return device::to_string(p.device) + " is volatile: crossbar weights would not persist";
    if (dev.kind == device::DeviceKind::kFlash)
      return "flash write path (high voltage, 10us pulses) cannot program crossbar weights in situ";
  }
  if (uses_cam(p.arch)) {
    if (dev.on_off_ratio() < 5.0)
      return device::to_string(p.device) + " on/off ratio " +
             std::to_string(dev.on_off_ratio()) + " too small for matchline sensing";
  }
  // Algorithm/architecture fit.
  if (p.algo == AlgoKind::kHdc && p.arch == ArchKind::kCrossbarAccelerator)
    return "HDC needs an associative-search stage; a crossbar alone only encodes";
  if ((p.algo == AlgoKind::kMlp || p.algo == AlgoKind::kCnn) && uses_cam(p.arch) &&
      !uses_crossbar(p.arch))
    return "MLP/CNN have no search kernel for a CAM to accelerate";
  if (p.algo == AlgoKind::kMann && p.arch == ArchKind::kCamAccelerator)
    return "MANN needs MVM (CNN + hashing) next to the AM; pick the XBar+CAM hybrid";
  return std::nullopt;
}

std::vector<EnumeratedPoint> enumerate_design_space(const std::string& application,
                                                    bool include_culled) {
  return enumerate_space(SpaceAxes{}, application, include_culled);
}

namespace {

template <class T>
std::size_t value_index(const std::vector<T>& axis, T value) {
  for (std::size_t i = 0; i < axis.size(); ++i)
    if (axis[i] == value) return i;
  return static_cast<std::size_t>(-1);
}

}  // namespace

SpaceAxes SpaceAxes::resolved() const {
  SpaceAxes r = *this;
  if (r.devices.empty()) r.devices = device::all_device_kinds();
  if (r.archs.empty()) r.archs = all_arch_kinds();
  if (r.algos.empty()) r.algos = all_algo_kinds();
  return r;
}

std::size_t space_size(const SpaceAxes& axes) {
  const SpaceAxes r = axes.resolved();
  XLDS_REQUIRE(!r.devices.empty() && !r.archs.empty() && !r.algos.empty());
  return r.devices.size() * r.archs.size() * r.algos.size();
}

std::size_t point_index(const SpaceAxes& axes, const DesignPoint& p) {
  const SpaceAxes r = axes.resolved();
  const std::size_t di = value_index(r.devices, p.device);
  const std::size_t ai = value_index(r.archs, p.arch);
  const std::size_t gi = value_index(r.algos, p.algo);
  if (di == static_cast<std::size_t>(-1) || ai == static_cast<std::size_t>(-1) ||
      gi == static_cast<std::size_t>(-1))
    return static_cast<std::size_t>(-1);
  return (di * r.archs.size() + ai) * r.algos.size() + gi;
}

DesignPoint point_at(const SpaceAxes& axes, std::size_t index, const std::string& application) {
  const SpaceAxes r = axes.resolved();
  XLDS_REQUIRE(index < space_size(r));
  DesignPoint p;
  p.algo = r.algos[index % r.algos.size()];
  index /= r.algos.size();
  p.arch = r.archs[index % r.archs.size()];
  p.device = r.devices[index / r.archs.size()];
  p.application = application;
  return p;
}

DesignPoint sample_point(const SpaceAxes& axes, const std::string& application, Rng& rng) {
  const SpaceAxes r = axes.resolved();
  const std::size_t n = space_size(r);
  return point_at(r, rng.uniform_u32(static_cast<std::uint32_t>(n)), application);
}

DesignPoint mutate_point(const SpaceAxes& axes, const DesignPoint& p, Rng& rng) {
  const SpaceAxes r = axes.resolved();
  DesignPoint m = p;
  // A different value on a singleton axis does not exist; draw the axis first
  // so the choice distribution is independent of which axes are mutable (a
  // fixed consumption pattern keeps forked-stream replay stable).
  const std::uint32_t axis = rng.uniform_u32(3);
  const auto reassign = [&rng](auto& field, const auto& values) {
    if (values.size() < 2) return;
    const std::size_t i = value_index(values, field);
    if (i == static_cast<std::size_t>(-1)) {  // off-axis: every value differs
      field = values[rng.uniform_u32(static_cast<std::uint32_t>(values.size()))];
      return;
    }
    const std::size_t j = rng.uniform_u32(static_cast<std::uint32_t>(values.size() - 1));
    field = values[j + (j >= i ? 1 : 0)];
  };
  switch (axis) {
    case 0: reassign(m.device, r.devices); break;
    case 1: reassign(m.arch, r.archs); break;
    default: reassign(m.algo, r.algos); break;
  }
  return m;
}

DesignPoint crossover_points(const DesignPoint& a, const DesignPoint& b, Rng& rng) {
  DesignPoint c = a;
  if (rng.bernoulli(0.5)) c.device = b.device;
  if (rng.bernoulli(0.5)) c.arch = b.arch;
  if (rng.bernoulli(0.5)) c.algo = b.algo;
  return c;
}

std::vector<EnumeratedPoint> enumerate_space(const SpaceAxes& axes,
                                             const std::string& application,
                                             bool include_culled) {
  XLDS_REQUIRE(!application.empty());
  const SpaceAxes r = axes.resolved();
  std::vector<EnumeratedPoint> points;
  for (device::DeviceKind dev : r.devices) {
    for (ArchKind arch : r.archs) {
      for (AlgoKind algo : r.algos) {
        DesignPoint p;
        p.device = dev;
        p.arch = arch;
        p.algo = algo;
        p.application = application;
        auto reason = incompatibility(p);
        if (reason.has_value() && !include_culled) continue;
        points.push_back(EnumeratedPoint{p, std::move(reason)});
      }
    }
  }
  return points;
}

}  // namespace xlds::core
