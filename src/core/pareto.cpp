#include "core/pareto.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "util/error.hpp"

namespace xlds::core {

namespace {

/// NaN in any objective makes a point incomparable; treat it as infeasible
/// everywhere (front, ranking, cohort bests) rather than letting the NaN's
/// always-false comparisons smuggle it onto the front.
bool comparable(const Fom& f) {
  return !(std::isnan(f.latency) || std::isnan(f.energy) || std::isnan(f.area_mm2) ||
           std::isnan(f.accuracy));
}

bool usable(const Fom& f) { return f.feasible && comparable(f); }

bool dominates(const Fom& a, const Fom& b) {
  const bool no_worse = a.latency <= b.latency && a.energy <= b.energy &&
                        a.area_mm2 <= b.area_mm2 && a.accuracy >= b.accuracy;
  const bool better = a.latency < b.latency || a.energy < b.energy ||
                      a.area_mm2 < b.area_mm2 || a.accuracy > b.accuracy;
  return no_worse && better;
}

}  // namespace

std::vector<std::size_t> pareto_front(const std::vector<ScoredPoint>& points) {
  std::vector<std::size_t> front;
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (!usable(points[i].fom)) continue;
    bool dominated = false;
    for (std::size_t j = 0; j < points.size(); ++j) {
      if (i == j || !usable(points[j].fom)) continue;
      if (dominates(points[j].fom, points[i].fom)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) front.push_back(i);
  }
  return front;
}

std::vector<std::size_t> dedup_points(const std::vector<ScoredPoint>& points) {
  std::unordered_set<std::string> seen;
  seen.reserve(points.size());
  std::vector<std::size_t> kept;
  kept.reserve(points.size());
  for (std::size_t i = 0; i < points.size(); ++i)
    if (seen.insert(points[i].point.to_string()).second) kept.push_back(i);
  return kept;
}

std::vector<std::size_t> triage_ranking(const std::vector<ScoredPoint>& points,
                                        const TriageWeights& weights) {
  XLDS_REQUIRE(weights.latency >= 0.0 && weights.energy >= 0.0 && weights.area >= 0.0 &&
               weights.accuracy >= 0.0);
  // Cohort bests (feasible only).
  double best_lat = HUGE_VAL, best_en = HUGE_VAL, best_area = HUGE_VAL, best_acc = 0.0;
  for (const ScoredPoint& sp : points) {
    if (!usable(sp.fom)) continue;
    best_lat = std::min(best_lat, sp.fom.latency);
    best_en = std::min(best_en, sp.fom.energy);
    best_area = std::min(best_area, sp.fom.area_mm2);
    best_acc = std::max(best_acc, sp.fom.accuracy);
  }

  auto score = [&](const Fom& f) {
    // Area can legitimately be 0 (rented platform); shift by a small epsilon
    // so the log-ratio stays defined.
    constexpr double kEps = 1e-12;
    const double lat = std::log((f.latency + kEps) / (best_lat + kEps));
    const double en = std::log((f.energy + kEps) / (best_en + kEps));
    const double ar = std::log((f.area_mm2 + kEps) / (best_area + kEps));
    const double acc = best_acc - f.accuracy;
    return weights.latency * lat + weights.energy * en + weights.area * ar +
           weights.accuracy * acc;
  };

  std::vector<std::size_t> order;
  for (std::size_t i = 0; i < points.size(); ++i)
    if (usable(points[i].fom)) order.push_back(i);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return score(points[a].fom) < score(points[b].fom);
  });
  return order;
}

}  // namespace xlds::core
