// Process-wide event counters for the hot solver paths (relaxed atomics;
// header-only so low-level libraries — the nodal solver lives below
// xlds_core in the link order — can bump them without a dependency edge).
// Benches and the DSE engine snapshot these to report how often the
// incremental factorization-update path is taken versus falling back to a
// full refactorization; they are diagnostics, never inputs, so reading or
// resetting them cannot change any result.
#pragma once

#include <atomic>
#include <cstdint>

namespace xlds::core {

class Profiler {
 public:
  /// Snapshot of the nodal-solver counters (monotonic since process start or
  /// the last reset_nodal()).
  struct NodalCounts {
    std::uint64_t factorizations = 0;     ///< full envelope LDL^T builds
    std::uint64_t direct_solves = 0;      ///< substitutions against a cached factor
    std::uint64_t gs_solves = 0;          ///< iterative Gauss-Seidel solves
    std::uint64_t incremental_updates = 0;///< update_cells() batches applied
    std::uint64_t updated_cells = 0;      ///< rank-1 corrections in those batches
    std::uint64_t update_declines = 0;    ///< batches refused (too large / cap / breakdown)
    std::uint64_t drift_refactorizations = 0;  ///< residual check forced a rebuild
  };

  static void count_factorization() noexcept { nodal_factorizations_.fetch_add(1, kOrder); }
  static void count_direct_solve() noexcept { nodal_direct_solves_.fetch_add(1, kOrder); }
  static void count_gs_solve() noexcept { nodal_gs_solves_.fetch_add(1, kOrder); }
  static void count_incremental_update(std::uint64_t cells) noexcept {
    nodal_updates_.fetch_add(1, kOrder);
    nodal_updated_cells_.fetch_add(cells, kOrder);
  }
  static void count_update_decline() noexcept { nodal_update_declines_.fetch_add(1, kOrder); }
  static void count_drift_refactorization() noexcept {
    nodal_drift_refactorizations_.fetch_add(1, kOrder);
  }

  /// Snapshot of the serving-loop counters (monotonic since process start or
  /// the last reset_serve()); bumped by src/serve/ as requests flow.
  struct ServeCounts {
    std::uint64_t requests_served = 0;     ///< classified and answered
    std::uint64_t requests_shed = 0;       ///< refused by admission control
    std::uint64_t requests_degraded = 0;   ///< answered in degraded mode
    std::uint64_t recalibrations = 0;      ///< refresh/reprogram events
    std::uint64_t cells_reprogrammed = 0;  ///< CAM + crossbar cells rewritten
  };

  static void count_request_served() noexcept { serve_served_.fetch_add(1, kOrder); }
  static void count_request_shed() noexcept { serve_shed_.fetch_add(1, kOrder); }
  static void count_request_degraded() noexcept { serve_degraded_.fetch_add(1, kOrder); }
  static void count_recalibration(std::uint64_t cells) noexcept {
    serve_recals_.fetch_add(1, kOrder);
    serve_cells_.fetch_add(cells, kOrder);
  }

  static ServeCounts serve() noexcept {
    ServeCounts c;
    c.requests_served = serve_served_.load(kOrder);
    c.requests_shed = serve_shed_.load(kOrder);
    c.requests_degraded = serve_degraded_.load(kOrder);
    c.recalibrations = serve_recals_.load(kOrder);
    c.cells_reprogrammed = serve_cells_.load(kOrder);
    return c;
  }

  static void reset_serve() noexcept {
    serve_served_.store(0, kOrder);
    serve_shed_.store(0, kOrder);
    serve_degraded_.store(0, kOrder);
    serve_recals_.store(0, kOrder);
    serve_cells_.store(0, kOrder);
  }

  /// Snapshot of the task-scheduler counters (monotonic since process start
  /// or the last reset_sched()); bumped by util::parallel as jobs dispatch.
  struct SchedCounts {
    std::uint64_t jobs = 0;            ///< batches dispatched to the pool
    std::uint64_t inline_jobs = 0;     ///< batches run inline (below the work floor / no lanes)
    std::uint64_t tasks = 0;           ///< tasks executed by their submitting lane
    std::uint64_t stolen_tasks = 0;    ///< tasks executed by a different lane
    std::uint64_t steal_failures = 0;  ///< full deque scans that found nothing
    std::uint64_t nested_cooperative = 0;  ///< nested jobs run via shared deques
    std::uint64_t nested_inlined = 0;      ///< nested jobs degraded to inline serial
  };

  static void count_sched_job() noexcept { sched_jobs_.fetch_add(1, kOrder); }
  static void count_sched_inline_job() noexcept { sched_inline_jobs_.fetch_add(1, kOrder); }
  static void count_sched_task(bool stolen) noexcept {
    (stolen ? sched_stolen_tasks_ : sched_tasks_).fetch_add(1, kOrder);
  }
  static void count_steal_failure() noexcept { sched_steal_failures_.fetch_add(1, kOrder); }
  static void count_sched_nested(bool cooperative) noexcept {
    (cooperative ? sched_nested_coop_ : sched_nested_inline_).fetch_add(1, kOrder);
  }

  static SchedCounts sched() noexcept {
    SchedCounts c;
    c.jobs = sched_jobs_.load(kOrder);
    c.inline_jobs = sched_inline_jobs_.load(kOrder);
    c.tasks = sched_tasks_.load(kOrder);
    c.stolen_tasks = sched_stolen_tasks_.load(kOrder);
    c.steal_failures = sched_steal_failures_.load(kOrder);
    c.nested_cooperative = sched_nested_coop_.load(kOrder);
    c.nested_inlined = sched_nested_inline_.load(kOrder);
    return c;
  }

  static void reset_sched() noexcept {
    sched_jobs_.store(0, kOrder);
    sched_inline_jobs_.store(0, kOrder);
    sched_tasks_.store(0, kOrder);
    sched_stolen_tasks_.store(0, kOrder);
    sched_steal_failures_.store(0, kOrder);
    sched_nested_coop_.store(0, kOrder);
    sched_nested_inline_.store(0, kOrder);
  }

  /// Fold an externally measured delta into the counters — the shard pool
  /// uses this to credit the parent process with the nodal/scheduler work
  /// its forked workers reported over the wire, so per-run deltas keep
  /// meaning "work done on behalf of this run" at any shard count.
  static void add_nodal(const NodalCounts& d) noexcept {
    nodal_factorizations_.fetch_add(d.factorizations, kOrder);
    nodal_direct_solves_.fetch_add(d.direct_solves, kOrder);
    nodal_gs_solves_.fetch_add(d.gs_solves, kOrder);
    nodal_updates_.fetch_add(d.incremental_updates, kOrder);
    nodal_updated_cells_.fetch_add(d.updated_cells, kOrder);
    nodal_update_declines_.fetch_add(d.update_declines, kOrder);
    nodal_drift_refactorizations_.fetch_add(d.drift_refactorizations, kOrder);
  }

  static void add_sched(const SchedCounts& d) noexcept {
    sched_jobs_.fetch_add(d.jobs, kOrder);
    sched_inline_jobs_.fetch_add(d.inline_jobs, kOrder);
    sched_tasks_.fetch_add(d.tasks, kOrder);
    sched_stolen_tasks_.fetch_add(d.stolen_tasks, kOrder);
    sched_steal_failures_.fetch_add(d.steal_failures, kOrder);
    sched_nested_coop_.fetch_add(d.nested_cooperative, kOrder);
    sched_nested_inline_.fetch_add(d.nested_inlined, kOrder);
  }

  static NodalCounts nodal() noexcept {
    NodalCounts c;
    c.factorizations = nodal_factorizations_.load(kOrder);
    c.direct_solves = nodal_direct_solves_.load(kOrder);
    c.gs_solves = nodal_gs_solves_.load(kOrder);
    c.incremental_updates = nodal_updates_.load(kOrder);
    c.updated_cells = nodal_updated_cells_.load(kOrder);
    c.update_declines = nodal_update_declines_.load(kOrder);
    c.drift_refactorizations = nodal_drift_refactorizations_.load(kOrder);
    return c;
  }

  static void reset_nodal() noexcept {
    nodal_factorizations_.store(0, kOrder);
    nodal_direct_solves_.store(0, kOrder);
    nodal_gs_solves_.store(0, kOrder);
    nodal_updates_.store(0, kOrder);
    nodal_updated_cells_.store(0, kOrder);
    nodal_update_declines_.store(0, kOrder);
    nodal_drift_refactorizations_.store(0, kOrder);
  }

 private:
  static constexpr std::memory_order kOrder = std::memory_order_relaxed;
  inline static std::atomic<std::uint64_t> nodal_factorizations_{0};
  inline static std::atomic<std::uint64_t> nodal_direct_solves_{0};
  inline static std::atomic<std::uint64_t> nodal_gs_solves_{0};
  inline static std::atomic<std::uint64_t> nodal_updates_{0};
  inline static std::atomic<std::uint64_t> nodal_updated_cells_{0};
  inline static std::atomic<std::uint64_t> nodal_update_declines_{0};
  inline static std::atomic<std::uint64_t> nodal_drift_refactorizations_{0};
  inline static std::atomic<std::uint64_t> serve_served_{0};
  inline static std::atomic<std::uint64_t> serve_shed_{0};
  inline static std::atomic<std::uint64_t> serve_degraded_{0};
  inline static std::atomic<std::uint64_t> serve_recals_{0};
  inline static std::atomic<std::uint64_t> serve_cells_{0};
  inline static std::atomic<std::uint64_t> sched_jobs_{0};
  inline static std::atomic<std::uint64_t> sched_inline_jobs_{0};
  inline static std::atomic<std::uint64_t> sched_tasks_{0};
  inline static std::atomic<std::uint64_t> sched_stolen_tasks_{0};
  inline static std::atomic<std::uint64_t> sched_steal_failures_{0};
  inline static std::atomic<std::uint64_t> sched_nested_coop_{0};
  inline static std::atomic<std::uint64_t> sched_nested_inline_{0};
};

}  // namespace xlds::core
