// The design space of Fig. 1: device x architecture x algorithm x
// application, with the static compatibility culls the paper gives as
// examples ("flash is dense, but high write latencies make it ill-suited as
// main memory for a CPU or GPU", "GPUs may be a better baseline for MVM
// workloads than a CPU", ...).  Enumeration produces every candidate point;
// compatibility rules prune the obviously-broken ones *with recorded
// reasons*, and the evaluator (evaluate.hpp) scores the survivors.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "device/device.hpp"

namespace xlds::core {

enum class ArchKind {
  kCpu,
  kGpu,
  kTpu,
  kTpuGpuHybrid,
  kCamAccelerator,       ///< AM search in an NV-CAM, encode in digital
  kCrossbarAccelerator,  ///< MVM in analog crossbars
  kCamXbarHybrid,        ///< crossbar encode + CAM search (the Sec.-III design)
};

enum class AlgoKind {
  kMlp,
  kCnn,
  kHdc,
  kMann,
};

std::string to_string(ArchKind a);
std::string to_string(AlgoKind a);

const std::vector<ArchKind>& all_arch_kinds();
const std::vector<AlgoKind>& all_algo_kinds();

struct DesignPoint {
  device::DeviceKind device = device::DeviceKind::kSram;
  ArchKind arch = ArchKind::kGpu;
  AlgoKind algo = AlgoKind::kHdc;
  std::string application = "isolet-like";

  std::string to_string() const;
};

/// Static compatibility: returns nullopt when the combination is viable, or
/// the cull reason otherwise.  These rules are *technology-structural* (a
/// volatile device cannot be the NVM of a CAM accelerator); workload-
/// dependent culls (write-heaviness vs endurance) live in the evaluator,
/// which knows the application profile.
std::optional<std::string> incompatibility(const DesignPoint& p);

/// Cross product over devices, architectures and algorithms for one
/// application; `include_culled` keeps incompatible points (with reasons)
/// for reporting.
struct EnumeratedPoint {
  DesignPoint point;
  std::optional<std::string> culled_because;
};

std::vector<EnumeratedPoint> enumerate_design_space(const std::string& application,
                                                    bool include_culled = false);

}  // namespace xlds::core
