// The design space of Fig. 1: device x architecture x algorithm x
// application, with the static compatibility culls the paper gives as
// examples ("flash is dense, but high write latencies make it ill-suited as
// main memory for a CPU or GPU", "GPUs may be a better baseline for MVM
// workloads than a CPU", ...).  Enumeration produces every candidate point;
// compatibility rules prune the obviously-broken ones *with recorded
// reasons*, and the evaluator (evaluate.hpp) scores the survivors.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "device/device.hpp"
#include "util/rng.hpp"

namespace xlds::core {

enum class ArchKind {
  kCpu,
  kGpu,
  kTpu,
  kTpuGpuHybrid,
  kCamAccelerator,       ///< AM search in an NV-CAM, encode in digital
  kCrossbarAccelerator,  ///< MVM in analog crossbars
  kCamXbarHybrid,        ///< crossbar encode + CAM search (the Sec.-III design)
};

enum class AlgoKind {
  kMlp,
  kCnn,
  kHdc,
  kMann,
};

std::string to_string(ArchKind a);
std::string to_string(AlgoKind a);

const std::vector<ArchKind>& all_arch_kinds();
const std::vector<AlgoKind>& all_algo_kinds();

struct DesignPoint {
  device::DeviceKind device = device::DeviceKind::kSram;
  ArchKind arch = ArchKind::kGpu;
  AlgoKind algo = AlgoKind::kHdc;
  std::string application = "isolet-like";

  std::string to_string() const;
};

/// Static compatibility: returns nullopt when the combination is viable, or
/// the cull reason otherwise.  These rules are *technology-structural* (a
/// volatile device cannot be the NVM of a CAM accelerator); workload-
/// dependent culls (write-heaviness vs endurance) live in the evaluator,
/// which knows the application profile.
std::optional<std::string> incompatibility(const DesignPoint& p);

/// Cross product over devices, architectures and algorithms for one
/// application; `include_culled` keeps incompatible points (with reasons)
/// for reporting.
struct EnumeratedPoint {
  DesignPoint point;
  std::optional<std::string> culled_because;
};

std::vector<EnumeratedPoint> enumerate_design_space(const std::string& application,
                                                    bool include_culled = false);

/// Axis subsets for guided search (the DSE layer's sampling/mutation hooks).
/// An empty vector means "every value of that axis"; resolve() normalises.
/// Points are indexed device-major over the resolved axes, so an index is a
/// stable identity for journaling and deduplication.
struct SpaceAxes {
  std::vector<device::DeviceKind> devices;
  std::vector<ArchKind> archs;
  std::vector<AlgoKind> algos;

  /// Copy with empty axes replaced by the full value lists.
  SpaceAxes resolved() const;
};

/// Number of raw combinations in the (resolved) axes — the "full enumeration"
/// a search budget is measured against.  Requires non-empty resolved axes.
std::size_t space_size(const SpaceAxes& axes);

/// Device-major index of a point within the axes, or SIZE_MAX when any of
/// its coordinates is not on the corresponding axis.
std::size_t point_index(const SpaceAxes& axes, const DesignPoint& p);

/// Inverse of point_index.  Requires index < space_size(axes).
DesignPoint point_at(const SpaceAxes& axes, std::size_t index, const std::string& application);

/// Uniform random point over the axes (culled points included — callers that
/// want viable points filter through incompatibility(), which is free).
DesignPoint sample_point(const SpaceAxes& axes, const std::string& application, Rng& rng);

/// Reassign one uniformly chosen axis to a *different* value on that axis
/// (identity when every axis is singleton) — the evolutionary-search
/// mutation hook.
DesignPoint mutate_point(const SpaceAxes& axes, const DesignPoint& p, Rng& rng);

/// Uniform per-axis crossover: each coordinate comes from parent a or b with
/// equal probability; the application is inherited from a.
DesignPoint crossover_points(const DesignPoint& a, const DesignPoint& b, Rng& rng);

/// enumerate_design_space restricted to the axes, in point_index order.
std::vector<EnumeratedPoint> enumerate_space(const SpaceAxes& axes,
                                             const std::string& application,
                                             bool include_culled = false);

}  // namespace xlds::core
