// Eva-CiM-lane analysis (Sec. VI): "assess whether a program is IMC-
// favourable (i.e., can benefit from an IMC architecture)".
//
// Couples the event-driven system simulator (the gem5 axis) with its energy
// accounting (the McPAT axis) and the crossbar tile costs (the DESTINY/
// array axis) to answer, per program: how much faster, how much less energy,
// and is the offloadable fraction large enough to justify the IMC macro.
#pragma once

#include "sim/machine.hpp"

namespace xlds::core {

struct CimThresholds {
  double min_speedup = 1.5;
  double min_energy_ratio = 1.2;  ///< baseline / accelerated energy
};

struct CimFavorability {
  double speedup = 1.0;
  double energy_ratio = 1.0;        ///< baseline / accelerated total energy
  double offloadable_fraction = 0;  ///< share of baseline time in offloadable MVMs
  bool favourable = false;
  sim::RunStats baseline;
  sim::RunStats accelerated;
};

/// Run `program` on the machine with and without the IMC accelerator and
/// derive the favourability verdict.
CimFavorability evaluate_cim_favorability(const sim::Program& program,
                                          const sim::CoreConfig& core,
                                          const sim::CacheConfig& l1, const sim::CacheConfig& l2,
                                          const sim::DramConfig& dram,
                                          const sim::AcceleratorConfig& accel,
                                          const sim::EnergyConfig& energy = {},
                                          const CimThresholds& thresholds = {});

}  // namespace xlds::core
