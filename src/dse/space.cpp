#include "dse/space.hpp"

#include "util/error.hpp"
#include "util/hash.hpp"

namespace xlds::dse {

// Alias of the framework-wide hash (util/hash.hpp) kept for the existing
// dse-layer call sites; both must agree byte-for-byte or the result cache
// could never be shared with journal-compatible jobs.
std::uint64_t fnv1a64(const void* data, std::size_t n, std::uint64_t h) {
  return util::fnv1a64(data, n, h);
}

namespace {

std::uint64_t hash_axes(const core::SpaceAxes& axes, const std::string& application) {
  std::uint64_t h = fnv1a64("xlds-space-v1", 13);
  const auto mix_int = [&h](std::uint32_t v) { h = fnv1a64(&v, sizeof v, h); };
  mix_int(static_cast<std::uint32_t>(axes.devices.size()));
  for (const auto d : axes.devices) mix_int(static_cast<std::uint32_t>(d));
  mix_int(static_cast<std::uint32_t>(axes.archs.size()));
  for (const auto a : axes.archs) mix_int(static_cast<std::uint32_t>(a));
  mix_int(static_cast<std::uint32_t>(axes.algos.size()));
  for (const auto g : axes.algos) mix_int(static_cast<std::uint32_t>(g));
  return fnv1a64(application.data(), application.size(), h);
}

}  // namespace

SearchSpace::SearchSpace(core::SpaceAxes axes, std::string application)
    : axes_(axes.resolved()), application_(std::move(application)) {
  XLDS_REQUIRE(!application_.empty());
  size_ = core::space_size(axes_);
  for (std::size_t i = 0; i < size_; ++i)
    if (!culled(i)) ++viable_;
  hash_ = hash_axes(axes_, application_);
}

core::DesignPoint SearchSpace::at(std::size_t index) const {
  return core::point_at(axes_, index, application_);
}

std::size_t SearchSpace::index_of(const core::DesignPoint& p) const {
  return core::point_index(axes_, p);
}

bool SearchSpace::culled(std::size_t index) const {
  return core::incompatibility(at(index)).has_value();
}

}  // namespace xlds::dse
