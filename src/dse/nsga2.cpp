// NSGA-II-style multi-objective evolutionary search over the design grid.
//
// Classic shape — non-dominated sorting (rank), crowding distance, binary
// tournament, uniform crossover plus single-axis mutation — specialised to a
// small categorical space: children that hit a structural cull are re-mutated
// a few times (culls are free) before falling back to their parent, and every
// tie anywhere is broken by point index so the trajectory is a pure function
// of the seed.  Ranking reuses core::pareto_front as the peeling primitive,
// so the driver's notion of domination is identical to the brute-force
// enumeration it is benchmarked against.
#include <algorithm>
#include <cmath>
#include <limits>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/pareto.hpp"
#include "dse/driver.hpp"
#include "dse/driver_util.hpp"

namespace xlds::dse {

namespace {

struct Ranked {
  std::size_t index = 0;      ///< point index in the SearchSpace
  core::Fom fom;
  std::size_t rank = 0;       ///< 0 = best front; infeasible points rank last
  double crowding = 0.0;
};

// Non-dominated sorting by repeated pareto_front peeling, then crowding
// distance within each front.  Infeasible/NaN points (which can never enter
// a front) share a final rank with zero crowding.
void rank_and_crowd(std::vector<Ranked>& pop) {
  std::vector<std::size_t> remaining(pop.size());
  for (std::size_t i = 0; i < pop.size(); ++i) remaining[i] = i;

  std::size_t rank = 0;
  std::vector<std::vector<std::size_t>> fronts;
  while (!remaining.empty()) {
    std::vector<core::ScoredPoint> pts;
    pts.reserve(remaining.size());
    for (const std::size_t i : remaining)
      pts.push_back({core::DesignPoint{}, pop[i].fom});
    const std::vector<std::size_t> front = core::pareto_front(pts);
    if (front.empty()) break;  // only infeasible points left

    std::vector<std::size_t> members;
    std::vector<bool> in_front(remaining.size(), false);
    for (const std::size_t f : front) {
      in_front[f] = true;
      members.push_back(remaining[f]);
    }
    std::vector<std::size_t> next;
    for (std::size_t i = 0; i < remaining.size(); ++i)
      if (!in_front[i]) next.push_back(remaining[i]);
    for (const std::size_t m : members) pop[m].rank = rank;
    fronts.push_back(std::move(members));
    remaining = std::move(next);
    ++rank;
  }
  for (const std::size_t i : remaining) {
    pop[i].rank = rank;
    pop[i].crowding = 0.0;
  }

  const auto objective = [](const core::Fom& f, int k) {
    switch (k) {
      case 0: return f.latency;
      case 1: return f.energy;
      case 2: return f.area_mm2;
      default: return -f.accuracy;
    }
  };
  for (const auto& front : fronts) {
    for (const std::size_t m : front) pop[m].crowding = 0.0;
    for (int k = 0; k < 4; ++k) {
      std::vector<std::size_t> order = front;
      std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        const double va = objective(pop[a].fom, k), vb = objective(pop[b].fom, k);
        if (va != vb) return va < vb;
        return pop[a].index < pop[b].index;
      });
      const double lo = objective(pop[order.front()].fom, k);
      const double hi = objective(pop[order.back()].fom, k);
      pop[order.front()].crowding = std::numeric_limits<double>::infinity();
      pop[order.back()].crowding = std::numeric_limits<double>::infinity();
      if (hi <= lo) continue;
      for (std::size_t j = 1; j + 1 < order.size(); ++j)
        pop[order[j]].crowding += (objective(pop[order[j + 1]].fom, k) -
                                   objective(pop[order[j - 1]].fom, k)) /
                                  (hi - lo);
    }
  }
}

/// Every point one axis reassignment away, in deterministic axis/value order.
std::vector<core::DesignPoint> axis_neighbours(const core::SpaceAxes& axes,
                                               const core::DesignPoint& p) {
  std::vector<core::DesignPoint> out;
  for (const auto d : axes.devices)
    if (d != p.device) {
      core::DesignPoint n = p;
      n.device = d;
      out.push_back(n);
    }
  for (const auto a : axes.archs)
    if (a != p.arch) {
      core::DesignPoint n = p;
      n.arch = a;
      out.push_back(n);
    }
  for (const auto g : axes.algos)
    if (g != p.algo) {
      core::DesignPoint n = p;
      n.algo = g;
      out.push_back(n);
    }
  return out;
}

/// (rank asc, crowding desc, index asc) — the NSGA-II preference order with
/// a deterministic final tie-break.
bool preferred(const Ranked& a, const Ranked& b) {
  if (a.rank != b.rank) return a.rank < b.rank;
  if (a.crowding != b.crowding) return a.crowding > b.crowding;
  return a.index < b.index;
}

class Nsga2Driver final : public SearchDriver {
 public:
  explicit Nsga2Driver(const DriverParams& params) : params_(params) {}
  std::string name() const override { return "nsga2"; }

  void run(EvaluationBackend& backend, Rng& rng) override {
    const SearchSpace& space = backend.space();
    const Fidelity tier = backend.max_fidelity();
    // A small population is deliberate: on a tight budget every init sample
    // competes with the neighbourhood sweeps below, and the sweeps are what
    // actually close out the front.  Clamp to a quarter of the budget so a
    // generous default population cannot eat the whole allowance on init.
    const std::size_t pop_size = std::max<std::size_t>(
        2, std::min({params_.population, space.viable_count(),
                     std::max<std::size_t>(2, backend.remaining_budget() / 4)}));

    // archive: every real-tier FOM this driver has seen, keyed by point index.
    std::unordered_map<std::size_t, core::Fom> archive;

    // Real FOMs currently on the archive front, in ascending-index order —
    // the anchors a surrogate prediction must beat to promote on merit.
    const auto archive_front = [&]() {
      std::vector<std::size_t> keys;
      keys.reserve(archive.size());
      for (const auto& [index, fom] : archive) keys.push_back(index);
      std::sort(keys.begin(), keys.end());
      std::vector<core::ScoredPoint> pts;
      pts.reserve(keys.size());
      for (const std::size_t i : keys) pts.push_back({core::DesignPoint{}, archive.at(i)});
      std::vector<core::ScoredPoint> anchors;
      for (const std::size_t f : core::pareto_front(pts))
        anchors.push_back({space.at(keys[f]), archive.at(keys[f])});
      return anchors;
    };

    const auto request = [&](const std::vector<std::size_t>& candidates) {
      // With a usable surrogate, candidates pass through the learned model
      // first: only uncertain predictions and predicted-front points go on
      // to pay real physics.  The screen itself consumes query capacity, not
      // ladder budget, so the generation loop explores the same proposal
      // stream while charging a fraction of it.
      std::vector<std::size_t> screened;
      const SurrogateStatus st = backend.surrogate_status();
      if (st.enabled && st.ready)
        screened = detail::surrogate_screen(backend, tier, candidates, archive_front());
      const auto fresh = detail::fresh_for_budget(
          backend, tier, st.enabled && st.ready ? screened : candidates);
      if (!fresh.empty())
        for (const Evaluation& e : backend.evaluate(fresh, tier)) archive[e.index] = e.fom;
      return fresh.size();
    };

    // One-shot space pricing: the first time the surrogate is usable, push
    // every still-unseen viable point through the screen.  Queries cost
    // 1/queries_per_charge of a ladder charge, so pricing the whole space is
    // cheaper than a single physics evaluation — and from then on the model
    // (not sampling luck) decides which corners deserve real budget.  The
    // screen promotes only predicted-front and high-uncertainty points, so
    // this floods query capacity, not the ladder ledger.
    bool space_priced = false;
    const auto price_space_once = [&]() {
      const SurrogateStatus st = backend.surrogate_status();
      if (space_priced || !st.enabled || !st.ready) return;
      space_priced = true;
      std::vector<std::size_t> unseen;
      for (std::size_t i = 0; i < space.size(); ++i)
        if (!space.culled(i) && !backend.requested(i, tier)) unseen.push_back(i);
      if (!unseen.empty()) request(unseen);
    };

    // Unseen viable single-axis neighbours of the current archive front, in
    // deterministic (front member, axis, value) order.  Front points of a
    // categorical grid cluster under single-axis moves, so each discovered
    // member cascades along its whole axis-connected front component — and
    // because already-requested neighbours are filtered out, re-sweeping an
    // unchanged front is free.
    const auto front_proposals = [&]() {
      std::vector<std::size_t> keys;
      keys.reserve(archive.size());
      for (const auto& [index, fom] : archive) keys.push_back(index);
      std::sort(keys.begin(), keys.end());
      std::vector<core::ScoredPoint> pts;
      pts.reserve(keys.size());
      for (const std::size_t i : keys) pts.push_back({core::DesignPoint{}, archive.at(i)});
      std::vector<std::size_t> proposals;
      for (const std::size_t f : core::pareto_front(pts))
        for (const core::DesignPoint& n : axis_neighbours(space.axes(), space.at(keys[f]))) {
          if (core::incompatibility(n)) continue;
          const std::size_t index = space.index_of(n);
          if (!backend.requested(index, tier)) proposals.push_back(index);
        }
      return proposals;
    };

    request(detail::lhs_indices(space, pop_size, rng));
    std::vector<Ranked> pop;
    for (const auto& [index, fom] : archive) pop.push_back({index, fom, 0, 0.0});
    std::sort(pop.begin(), pop.end(),
              [](const Ranked& a, const Ranked& b) { return a.index < b.index; });
    if (pop.empty()) return;

    std::size_t stall = 0;
    while (backend.remaining_budget() > 0 && stall < params_.stall_generations) {
      price_space_once();
      rank_and_crowd(pop);

      // Candidate order is priority order — fresh_for_budget truncates from
      // the back when the budget runs short, so sweeps outrank offspring,
      // which outrank immigrants.
      //
      // 1. One neighbourhood-sweep pass over the archive front.  One pass
      //    per generation (rather than closure-to-fixpoint) keeps the broad
      //    mediocre front of the first samples from fanning out and burning
      //    the budget before any selection pressure exists.
      std::vector<std::size_t> offspring = front_proposals();
      offspring.reserve(offspring.size() + pop_size + pop_size / 4);

      // 2. Genetic offspring: binary tournament, crossover, mutation.
      for (std::size_t c = 0; c < pop_size; ++c) {
        const Ranked& pa = tournament(pop, rng);
        const Ranked& pb = tournament(pop, rng);
        core::DesignPoint child =
            rng.bernoulli(params_.crossover_prob)
                ? core::crossover_points(space.at(pa.index), space.at(pb.index), rng)
                : space.at(pa.index);
        child = core::mutate_point(space.axes(), child, rng);
        // Culls are free, so spend a few retries steering back into the
        // viable region before giving up and re-submitting the parent.
        for (int attempt = 0; attempt < 8 && core::incompatibility(child); ++attempt)
          child = core::mutate_point(space.axes(), space.at(pa.index), rng);
        const std::size_t index =
            core::incompatibility(child) ? pa.index : space.index_of(child);
        offspring.push_back(index);
      }

      // 3. Random immigrants: a quarter of each generation samples uniformly
      //    from the not-yet-requested viable points.  Pure recombination of a
      //    categorical grid can wall off corners of the space (a lineage that
      //    never contains, say, a TPU parent can only reach TPU designs by a
      //    lucky single-axis mutation); immigrants guarantee the whole grid
      //    stays reachable, and crowding keeps any extreme point they find.
      {
        std::vector<std::size_t> unseen;
        for (std::size_t i = 0; i < space.size(); ++i)
          if (!space.culled(i) && !backend.requested(i, tier)) unseen.push_back(i);
        const std::size_t count =
            std::min(unseen.size(), std::max<std::size_t>(1, pop_size / 4));
        if (count > 0)
          for (const std::size_t j : rng.sample_without_replacement(unseen.size(), count))
            offspring.push_back(unseen[j]);
      }

      stall = request(offspring) == 0 ? stall + 1 : 0;

      // Environmental selection over parents + evaluated offspring.
      std::vector<Ranked> merged = pop;
      {
        std::unordered_map<std::size_t, bool> have;
        for (const Ranked& r : pop) have[r.index] = true;
        std::vector<std::size_t> added;
        for (const std::size_t i : offspring)
          if (archive.count(i) && !have[i]) {
            have[i] = true;
            added.push_back(i);
          }
        std::sort(added.begin(), added.end());
        for (const std::size_t i : added) merged.push_back({i, archive.at(i), 0, 0.0});
      }
      rank_and_crowd(merged);
      std::sort(merged.begin(), merged.end(), preferred);
      if (merged.size() > pop_size) merged.resize(pop_size);
      pop = std::move(merged);
    }

    // Endgame — Pareto closure to fixpoint over the archive front (the
    // archive, not the population: a small population truncates true front
    // members by crowding before their neighbourhoods get explored), then
    // spend whatever is left on uniform samples of still-unseen points,
    // which can seed a new front component and restart the sweep.
    while (backend.remaining_budget() > 0) {
      price_space_once();  // the model may only now have enough history
      if (request(front_proposals()) > 0) continue;

      std::vector<std::size_t> unseen;
      for (std::size_t i = 0; i < space.size(); ++i)
        if (!space.culled(i) && !backend.requested(i, tier)) unseen.push_back(i);
      if (unseen.empty()) break;
      // With a usable surrogate the fill proposes *every* unseen point — the
      // screen prices the whole remainder of the space in queries and only
      // promotes what the model cannot dismiss.  Without one, uniform
      // samples sized to the population keep the fill from dumping the
      // whole budget into one undirected batch.
      const SurrogateStatus st = backend.surrogate_status();
      const std::size_t count =
          st.enabled && st.ready
              ? unseen.size()
              : std::min({unseen.size(), backend.remaining_budget(),
                          std::max<std::size_t>(1, pop_size / 2)});
      std::vector<std::size_t> fill;
      for (const std::size_t j : rng.sample_without_replacement(unseen.size(), count))
        fill.push_back(unseen[j]);
      if (request(fill) == 0) break;
    }
  }

 private:
  const Ranked& tournament(const std::vector<Ranked>& pop, Rng& rng) const {
    const std::size_t a = rng.uniform_u32(static_cast<std::uint32_t>(pop.size()));
    const std::size_t b = rng.uniform_u32(static_cast<std::uint32_t>(pop.size()));
    return preferred(pop[a], pop[b]) ? pop[a] : pop[b];
  }

  DriverParams params_;
};

}  // namespace

namespace detail {

std::unique_ptr<SearchDriver> make_nsga2_driver(const DriverParams& params) {
  return std::make_unique<Nsga2Driver>(params);
}

}  // namespace detail

}  // namespace xlds::dse
