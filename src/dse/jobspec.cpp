#include "dse/jobspec.hpp"

#include <cstdio>
#include <unordered_set>

#include "util/error.hpp"
#include "util/parallel.hpp"

namespace xlds::dse {

namespace {

// Reverse-lookup an enum by the name its to_string() prints.
template <class Kind>
Kind kind_from_name(const std::vector<Kind>& all, const std::string& name,
                    const char* axis) {
  for (const Kind k : all)
    if (to_string(k) == name) return k;
  std::string valid;
  for (const Kind k : all) valid += (valid.empty() ? "" : ", ") + to_string(k);
  XLDS_REQUIRE_MSG(false, "unknown " << axis << " '" << name << "' (valid: " << valid << ")");
  return all.front();
}

template <class Kind>
std::vector<Kind> axis_from_json(const util::Json& arr, const std::vector<Kind>& all,
                                 const char* axis) {
  std::vector<Kind> out;
  for (const util::Json& v : arr.as_array())
    out.push_back(kind_from_name(all, v.as_string(), axis));
  return out;
}

void reject_unknown_keys(const util::Json& obj, std::initializer_list<const char*> known,
                         const char* where) {
  const std::unordered_set<std::string> allowed(known.begin(), known.end());
  for (const auto& [key, value] : obj.as_object())
    XLDS_REQUIRE_MSG(allowed.count(key) != 0,
                     "unknown key '" << key << "' in " << where << " of the job spec");
}

std::size_t size_or(const util::Json& obj, const std::string& key, std::size_t fallback) {
  const util::Json* v = obj.find(key);
  if (v == nullptr) return fallback;
  const double n = v->as_number();
  XLDS_REQUIRE_MSG(n >= 0.0 && n == static_cast<double>(static_cast<std::size_t>(n)),
                   "'" << key << "' must be a non-negative integer");
  return static_cast<std::size_t>(n);
}

std::string format_g(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

std::string format_hex64(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

util::Json fom_to_json(const core::Fom& fom) {
  util::Json j = util::Json::object();
  j.set("feasible", fom.feasible);
  j.set("latency_s", fom.latency);
  j.set("energy_j", fom.energy);
  j.set("area_mm2", fom.area_mm2);
  j.set("accuracy", fom.accuracy);
  if (!fom.note.empty()) j.set("note", fom.note);
  return j;
}

}  // namespace

EngineConfig config_from_spec(const util::Json& spec) {
  reject_unknown_keys(spec,
                      {"application", "strategy", "budget", "seed", "space", "fidelity",
                       "surrogate", "driver", "weights", "journal", "shards", "cache"},
                      "the top level");
  EngineConfig config;
  config.application = spec.string_or("application", config.application);
  config.strategy = spec.string_or("strategy", config.strategy);
  config.budget = size_or(spec, "budget", 0);
  config.seed = static_cast<std::uint64_t>(size_or(spec, "seed", 1));
  config.journal_path = spec.string_or("journal", "");
  config.shards = size_or(spec, "shards", 0);
  config.cache_path = spec.string_or("cache", "");

  if (const util::Json* space = spec.find("space")) {
    reject_unknown_keys(*space, {"devices", "archs", "algos"}, "\"space\"");
    if (const util::Json* d = space->find("devices"))
      config.axes.devices = axis_from_json(*d, device::all_device_kinds(), "device");
    if (const util::Json* a = space->find("archs"))
      config.axes.archs = axis_from_json(*a, core::all_arch_kinds(), "arch");
    if (const util::Json* g = space->find("algos"))
      config.axes.algos = axis_from_json(*g, core::all_algo_kinds(), "algo");
  }

  if (const util::Json* fid = spec.find("fidelity")) {
    reject_unknown_keys(*fid,
                        {"max", "variation_sigma_rel", "ir_drop_sensitivity",
                         "mc_fault_rate", "mc_age_s", "mc_seed"},
                        "\"fidelity\"");
    config.fidelity.max_fidelity =
        fidelity_from_string(fid->string_or("max", to_string(config.fidelity.max_fidelity)));
    config.fidelity.variation_sigma_rel =
        fid->number_or("variation_sigma_rel", config.fidelity.variation_sigma_rel);
    config.fidelity.ir_drop_sensitivity =
        fid->number_or("ir_drop_sensitivity", config.fidelity.ir_drop_sensitivity);
    config.fidelity.mc_fault_rate =
        fid->number_or("mc_fault_rate", config.fidelity.mc_fault_rate);
    config.fidelity.mc_age_s = fid->number_or("mc_age_s", config.fidelity.mc_age_s);
    config.fidelity.mc_seed = static_cast<std::uint64_t>(
        size_or(*fid, "mc_seed", static_cast<std::size_t>(config.fidelity.mc_seed)));
  }

  if (const util::Json* sur = spec.find("surrogate")) {
    reject_unknown_keys(*sur,
                        {"enabled", "trees", "min_history", "refit_every",
                         "promote_uncertainty", "disagree_rel", "queries_per_charge",
                         "fit_seed"},
                        "\"surrogate\"");
    surrogate::SurrogateConfig& s = config.surrogate;
    if (const util::Json* e = sur->find("enabled")) s.enabled = e->as_bool();
    s.trees = size_or(*sur, "trees", s.trees);
    s.min_history = size_or(*sur, "min_history", s.min_history);
    s.refit_every = size_or(*sur, "refit_every", s.refit_every);
    s.promote_uncertainty = sur->number_or("promote_uncertainty", s.promote_uncertainty);
    s.disagree_rel = sur->number_or("disagree_rel", s.disagree_rel);
    s.queries_per_charge = size_or(*sur, "queries_per_charge", s.queries_per_charge);
    s.fit_seed = static_cast<std::uint64_t>(
        size_or(*sur, "fit_seed", static_cast<std::size_t>(s.fit_seed)));
  }

  if (const util::Json* drv = spec.find("driver")) {
    reject_unknown_keys(*drv, {"population", "crossover_prob", "stall_generations", "eta"},
                        "\"driver\"");
    config.driver.population = size_or(*drv, "population", config.driver.population);
    config.driver.crossover_prob =
        drv->number_or("crossover_prob", config.driver.crossover_prob);
    config.driver.stall_generations =
        size_or(*drv, "stall_generations", config.driver.stall_generations);
    config.driver.halving_eta = drv->number_or("eta", config.driver.halving_eta);
  }

  if (const util::Json* w = spec.find("weights")) {
    reject_unknown_keys(*w, {"latency", "energy", "area", "accuracy"}, "\"weights\"");
    config.weights.latency = w->number_or("latency", config.weights.latency);
    config.weights.energy = w->number_or("energy", config.weights.energy);
    config.weights.area = w->number_or("area", config.weights.area);
    config.weights.accuracy = w->number_or("accuracy", config.weights.accuracy);
  }
  return config;
}

EngineConfig config_from_spec_text(const std::string& text) {
  return config_from_spec(util::Json::parse(text));
}

std::string shard_job_spec_text(const EngineConfig& config) {
  util::Json spec = util::Json::object();
  spec.set("application", config.application);

  util::Json space = util::Json::object();
  const core::SpaceAxes axes = config.axes.resolved();
  util::Json devices = util::Json::array();
  for (const device::DeviceKind d : axes.devices) devices.push_back(util::Json(to_string(d)));
  space.set("devices", std::move(devices));
  util::Json archs = util::Json::array();
  for (const core::ArchKind a : axes.archs) archs.push_back(util::Json(core::to_string(a)));
  space.set("archs", std::move(archs));
  util::Json algos = util::Json::array();
  for (const core::AlgoKind g : axes.algos) algos.push_back(util::Json(core::to_string(g)));
  space.set("algos", std::move(algos));
  spec.set("space", std::move(space));

  util::Json fid = util::Json::object();
  fid.set("max", to_string(config.fidelity.max_fidelity));
  fid.set("variation_sigma_rel", config.fidelity.variation_sigma_rel);
  fid.set("ir_drop_sensitivity", config.fidelity.ir_drop_sensitivity);
  fid.set("mc_fault_rate", config.fidelity.mc_fault_rate);
  fid.set("mc_age_s", config.fidelity.mc_age_s);
  fid.set("mc_seed", static_cast<double>(config.fidelity.mc_seed));
  spec.set("fidelity", std::move(fid));
  return spec.dump();
}

util::Json result_to_json(const ExplorationResult& result, bool include_stats) {
  util::Json doc = util::Json::object();
  doc.set("strategy", result.strategy);
  doc.set("seed", result.seed);
  doc.set("budget", result.budget);
  doc.set("job_hash", format_hex64(result.job_hash));
  doc.set("evaluated", result.evaluated.size());

  util::Json front = util::Json::array();
  for (const std::size_t i : result.front) {
    const core::ScoredPoint& sp = result.evaluated[i];
    util::Json entry = util::Json::object();
    entry.set("device", device::to_string(sp.point.device));
    entry.set("arch", core::to_string(sp.point.arch));
    entry.set("algo", core::to_string(sp.point.algo));
    entry.set("fidelity", to_string(result.tiers[i]));
    entry.set("fom", fom_to_json(sp.fom));
    front.push_back(std::move(entry));
  }
  doc.set("pareto_front", std::move(front));

  util::Json ranking = util::Json::array();
  for (const std::size_t i : result.ranking) {
    const core::ScoredPoint& sp = result.evaluated[i];
    util::Json entry = util::Json::object();
    entry.set("device", device::to_string(sp.point.device));
    entry.set("arch", core::to_string(sp.point.arch));
    entry.set("algo", core::to_string(sp.point.algo));
    ranking.push_back(std::move(entry));
  }
  doc.set("triage_ranking", std::move(ranking));

  if (include_stats) {
    const ExplorationStats& s = result.stats;
    util::Json stats = util::Json::object();
    stats.set("charges", s.charges);
    stats.set("computed", s.computed);
    stats.set("journal_hits", s.journal_hits);
    stats.set("repeat_requests", s.repeat_requests);
    stats.set("culled_requests", s.culled_requests);
    util::Json by_tier = util::Json::object();
    for (std::size_t t = 0; t < kFidelityTiers; ++t)
      by_tier.set(to_string(static_cast<Fidelity>(t)), s.charges_by_tier[t]);
    stats.set("charges_by_tier", std::move(by_tier));
    stats.set("resumed", s.resumed);
    stats.set("journal_replayed", s.journal_replayed);
    stats.set("journal_dropped_bytes", s.journal_dropped_bytes);
    util::Json sur = util::Json::object();
    sur.set("queries", s.surrogate_queries);
    sur.set("hits", s.surrogate_hits);
    sur.set("promotions", s.surrogate_promotions);
    sur.set("refits", s.surrogate_refits);
    sur.set("disagreements", s.surrogate_disagreements);
    sur.set("budget_units", s.surrogate_budget_units);
    stats.set("surrogate", std::move(sur));
    util::Json shard = util::Json::object();
    shard.set("shards", s.shards_used);
    shard.set("requests", s.shard_requests);
    shard.set("redispatches", s.shard_redispatches);
    shard.set("respawns", s.shard_respawns);
    stats.set("shard", std::move(shard));
    util::Json cache = util::Json::object();
    cache.set("hits", s.cache_hits);
    cache.set("appends", s.cache_appends);
    stats.set("cache", std::move(cache));
    util::Json nodal = util::Json::object();
    nodal.set("factorizations", s.nodal.factorizations);
    nodal.set("direct_solves", s.nodal.direct_solves);
    nodal.set("gs_solves", s.nodal.gs_solves);
    nodal.set("incremental_updates", s.nodal.incremental_updates);
    nodal.set("updated_cells", s.nodal.updated_cells);
    nodal.set("update_declines", s.nodal.update_declines);
    nodal.set("drift_refactorizations", s.nodal.drift_refactorizations);
    stats.set("nodal", std::move(nodal));
    util::Json sched = util::Json::object();
    sched.set("mode", parallel_scheduler() == SchedulerMode::kWorkStealing
                          ? "work-stealing"
                          : "static");
    sched.set("threads", parallel_thread_count());
    sched.set("jobs", s.scheduler.counts.jobs);
    sched.set("inline_jobs", s.scheduler.counts.inline_jobs);
    sched.set("tasks", s.scheduler.counts.tasks);
    sched.set("stolen_tasks", s.scheduler.counts.stolen_tasks);
    sched.set("steal_failures", s.scheduler.counts.steal_failures);
    sched.set("nested_cooperative", s.scheduler.counts.nested_cooperative);
    sched.set("nested_inlined", s.scheduler.counts.nested_inlined);
    util::Json busy = util::Json::object();
    for (std::size_t t = 0; t < kFidelityTiers; ++t)
      busy.set(to_string(static_cast<Fidelity>(t)), s.scheduler.tier_busy_s[t]);
    sched.set("tier_busy_s", std::move(busy));
    stats.set("scheduler", std::move(sched));
    doc.set("stats", std::move(stats));
  }
  return doc;
}

std::string result_to_csv(const ExplorationResult& result) {
  std::unordered_set<std::size_t> on_front(result.front.begin(), result.front.end());
  std::vector<std::size_t> rank_of(result.evaluated.size(), 0);  // 0 = unranked
  for (std::size_t r = 0; r < result.ranking.size(); ++r)
    rank_of[result.ranking[r]] = r + 1;

  std::string csv = "device,arch,algo,tier,feasible,latency_s,energy_j,area_mm2,accuracy,on_front,rank\n";
  for (std::size_t i = 0; i < result.evaluated.size(); ++i) {
    const core::ScoredPoint& sp = result.evaluated[i];
    csv += device::to_string(sp.point.device) + ',' + core::to_string(sp.point.arch) + ',' +
           core::to_string(sp.point.algo) + ',' + to_string(result.tiers[i]) + ',' +
           (sp.fom.feasible ? "1," : "0,") + format_g(sp.fom.latency) + ',' +
           format_g(sp.fom.energy) + ',' + format_g(sp.fom.area_mm2) + ',' +
           format_g(sp.fom.accuracy) + ',' + (on_front.count(i) ? "1," : "0,") +
           std::to_string(rank_of[i]) + '\n';
  }
  return csv;
}

}  // namespace xlds::dse
