// JSON job specs and result serialisation for the xlds-dse CLI.
//
// A job spec is a small JSON document describing one exploration:
//
//   {
//     "application": "isolet-like",
//     "strategy": "nsga2",                  // random | lhs | nsga2 | halving
//     "budget": 33,                         // 0 / absent: viable space size
//     "seed": 1,
//     "space": {                            // absent axes = every value
//       "devices": ["rram", "fefet"],
//       "archs":   ["cam-accelerator"],
//       "algos":   ["hdc", "mann"]
//     },
//     "fidelity": { "max": "mc", "mc_fault_rate": 0.02, ... },
//     "surrogate": { "enabled": true, "refit_every": 8, ... },
//     "driver":   { "population": 24, "eta": 3.0, ... },
//     "weights":  { "latency": 1.0, "accuracy": 30.0, ... },
//     "journal":  "runs/isolet.xjl"
//   }
//
// Axis values are matched against the same to_string() names the rest of the
// framework prints, so specs copy-paste from any XLDS report.  Unknown names
// throw PreconditionError listing the valid spellings.
#pragma once

#include <string>

#include "dse/engine.hpp"
#include "util/json.hpp"

namespace xlds::dse {

/// Parse a job-spec document into an EngineConfig.  Unknown top-level or
/// nested keys are rejected (a typo must not silently fall back to a
/// default and burn a budget on the wrong job).
EngineConfig config_from_spec(const util::Json& spec);
EngineConfig config_from_spec_text(const std::string& text);

/// The job-*identity* subset of a config as a spec document: application,
/// space axes and fidelity settings — everything a FOM value depends on,
/// nothing a trajectory depends on.  This is what the shard Hello carries so
/// an exec'd worker (tools/xlds-shard-worker) can rebuild the ladder and
/// prove, via the job hash it acks, that both processes price the same job.
std::string shard_job_spec_text(const EngineConfig& config);

/// Result document.  Deterministic for a deterministic result; with
/// `include_stats` false, journal-hit/compute counters are left out so a
/// resumed run and an uninterrupted run dump byte-identical documents (the
/// equality the crash-safe-resume CI check asserts).
util::Json result_to_json(const ExplorationResult& result, bool include_stats = true);

/// Flat CSV of every evaluated point (one row each, first-charge order):
/// device,arch,algo,tier,feasible,latency,energy,area_mm2,accuracy,on_front,rank
std::string result_to_csv(const ExplorationResult& result);

}  // namespace xlds::dse
