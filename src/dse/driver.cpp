#include "dse/driver.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "core/pareto.hpp"
#include "dse/driver_util.hpp"
#include "util/error.hpp"

namespace xlds::dse {

namespace detail {

std::vector<std::size_t> viable_indices(const SearchSpace& space) {
  std::vector<std::size_t> out;
  out.reserve(space.viable_count());
  for (std::size_t i = 0; i < space.size(); ++i)
    if (!space.culled(i)) out.push_back(i);
  return out;
}

std::vector<std::size_t> lhs_indices(const SearchSpace& space, std::size_t n, Rng& rng) {
  const auto& axes = space.axes();
  const std::size_t nd = axes.devices.size();
  const std::size_t na = axes.archs.size();
  const std::size_t ng = axes.algos.size();
  std::vector<std::size_t> out;
  if (n == 0) return out;

  // Stratified draw: slot s covers stratum [s/n, (s+1)/n) of each axis, and
  // each axis walks its strata in an independent permutation.
  const auto perm_d = rng.permutation(n);
  const auto perm_a = rng.permutation(n);
  const auto perm_g = rng.permutation(n);
  std::unordered_set<std::size_t> used;
  for (std::size_t s = 0; s < n; ++s) {
    const std::size_t di = perm_d[s] * nd / n;
    const std::size_t ai = perm_a[s] * na / n;
    const std::size_t gi = perm_g[s] * ng / n;
    const std::size_t index = (di * na + ai) * ng + gi;
    if (space.culled(index) || !used.insert(index).second) continue;
    out.push_back(index);
  }

  // Categorical collisions shrink the sample; top up uniformly from the
  // unused viable points so callers get the coverage they budgeted for.
  if (out.size() < n) {
    std::vector<std::size_t> rest;
    for (const std::size_t i : viable_indices(space))
      if (!used.count(i)) rest.push_back(i);
    const std::size_t need = std::min(n - out.size(), rest.size());
    for (const std::size_t j : rng.sample_without_replacement(rest.size(), need))
      out.push_back(rest[j]);
  }
  return out;
}

std::vector<std::size_t> fresh_for_budget(const EvaluationBackend& backend, Fidelity tier,
                                          const std::vector<std::size_t>& candidates) {
  std::vector<std::size_t> fresh;
  std::unordered_set<std::size_t> in_batch;
  const std::size_t cap = backend.remaining_budget();
  for (const std::size_t i : candidates) {
    if (fresh.size() >= cap) break;
    if (backend.requested(i, tier) || !in_batch.insert(i).second) continue;
    fresh.push_back(i);
  }
  return fresh;
}

std::vector<std::size_t> fresh_for_surrogate(const EvaluationBackend& backend,
                                             const std::vector<std::size_t>& candidates) {
  std::vector<std::size_t> fresh;
  std::unordered_set<std::size_t> in_batch;
  const std::size_t cap = backend.surrogate_capacity();
  for (const std::size_t i : candidates) {
    if (fresh.size() >= cap) break;
    if (backend.requested(i, Fidelity::kSurrogate) || !in_batch.insert(i).second) continue;
    fresh.push_back(i);
  }
  return fresh;
}

std::vector<std::size_t> surrogate_screen(EvaluationBackend& backend, Fidelity target_tier,
                                          const std::vector<std::size_t>& candidates,
                                          const std::vector<core::ScoredPoint>& anchors) {
  const SurrogateStatus status = backend.surrogate_status();
  XLDS_REQUIRE_MSG(status.enabled && status.ready,
                   "surrogate_screen on a backend with no usable surrogate");
  const SearchSpace& space = backend.space();

  // Queryable candidates, in first-appearance order: not yet paid for at the
  // target tier (free repeats screen nothing), not culled (culls are free at
  // any tier), and either already predicted or within the query capacity.
  std::vector<std::size_t> query;
  {
    std::unordered_set<std::size_t> fresh_ok;
    for (const std::size_t i : fresh_for_surrogate(backend, candidates)) fresh_ok.insert(i);
    std::unordered_set<std::size_t> seen;
    for (const std::size_t i : candidates) {
      if (!seen.insert(i).second) continue;
      if (space.culled(i) || backend.requested(i, target_tier)) continue;
      if (backend.requested(i, Fidelity::kSurrogate) || fresh_ok.count(i))
        query.push_back(i);
    }
  }

  std::unordered_map<std::size_t, const Evaluation*> predicted;
  std::vector<Evaluation> evals;
  if (!query.empty()) {
    evals = backend.evaluate(query, Fidelity::kSurrogate);
    for (const Evaluation& e : evals) predicted.emplace(e.index, &e);
  }

  // Front test: a prediction promotes on merit only by reaching the Pareto
  // front of (real anchors + all predictions) — anchors first, so beating
  // predictions alone is not enough when real results already dominate them.
  std::unordered_set<std::size_t> on_front;
  {
    std::vector<core::ScoredPoint> pts = anchors;
    pts.reserve(anchors.size() + evals.size());
    for (const Evaluation& e : evals) pts.push_back({space.at(e.index), e.fom});
    for (const std::size_t f : core::pareto_front(pts))
      if (f >= anchors.size()) on_front.insert(evals[f - anchors.size()].index);
  }

  std::vector<std::size_t> promote;
  std::unordered_set<std::size_t> emitted;
  for (const std::size_t i : candidates) {
    if (!emitted.insert(i).second) continue;
    if (space.culled(i) || backend.requested(i, target_tier)) continue;
    const auto it = predicted.find(i);
    if (it == predicted.end()) {
      promote.push_back(i);  // capacity-starved: no model, pay real physics
      continue;
    }
    if (it->second->uncertainty > status.promote_uncertainty || on_front.count(i))
      promote.push_back(i);
  }
  return promote;
}

}  // namespace detail

const std::vector<std::string>& driver_names() {
  static const std::vector<std::string> names = {"random", "lhs", "nsga2", "halving"};
  return names;
}

std::unique_ptr<SearchDriver> make_driver(const std::string& strategy,
                                          const DriverParams& params) {
  if (strategy == "random") return detail::make_random_driver(params);
  if (strategy == "lhs") return detail::make_lhs_driver(params);
  if (strategy == "nsga2") return detail::make_nsga2_driver(params);
  if (strategy == "halving") return detail::make_halving_driver(params);
  XLDS_REQUIRE_MSG(false, "unknown search strategy '"
                              << strategy << "' (random | lhs | nsga2 | halving)");
  return nullptr;
}

}  // namespace xlds::dse
