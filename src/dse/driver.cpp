#include "dse/driver.hpp"

#include <algorithm>
#include <unordered_set>

#include "dse/driver_util.hpp"
#include "util/error.hpp"

namespace xlds::dse {

namespace detail {

std::vector<std::size_t> viable_indices(const SearchSpace& space) {
  std::vector<std::size_t> out;
  out.reserve(space.viable_count());
  for (std::size_t i = 0; i < space.size(); ++i)
    if (!space.culled(i)) out.push_back(i);
  return out;
}

std::vector<std::size_t> lhs_indices(const SearchSpace& space, std::size_t n, Rng& rng) {
  const auto& axes = space.axes();
  const std::size_t nd = axes.devices.size();
  const std::size_t na = axes.archs.size();
  const std::size_t ng = axes.algos.size();
  std::vector<std::size_t> out;
  if (n == 0) return out;

  // Stratified draw: slot s covers stratum [s/n, (s+1)/n) of each axis, and
  // each axis walks its strata in an independent permutation.
  const auto perm_d = rng.permutation(n);
  const auto perm_a = rng.permutation(n);
  const auto perm_g = rng.permutation(n);
  std::unordered_set<std::size_t> used;
  for (std::size_t s = 0; s < n; ++s) {
    const std::size_t di = perm_d[s] * nd / n;
    const std::size_t ai = perm_a[s] * na / n;
    const std::size_t gi = perm_g[s] * ng / n;
    const std::size_t index = (di * na + ai) * ng + gi;
    if (space.culled(index) || !used.insert(index).second) continue;
    out.push_back(index);
  }

  // Categorical collisions shrink the sample; top up uniformly from the
  // unused viable points so callers get the coverage they budgeted for.
  if (out.size() < n) {
    std::vector<std::size_t> rest;
    for (const std::size_t i : viable_indices(space))
      if (!used.count(i)) rest.push_back(i);
    const std::size_t need = std::min(n - out.size(), rest.size());
    for (const std::size_t j : rng.sample_without_replacement(rest.size(), need))
      out.push_back(rest[j]);
  }
  return out;
}

std::vector<std::size_t> fresh_for_budget(const EvaluationBackend& backend, Fidelity tier,
                                          const std::vector<std::size_t>& candidates) {
  std::vector<std::size_t> fresh;
  std::unordered_set<std::size_t> in_batch;
  const std::size_t cap = backend.remaining_budget();
  for (const std::size_t i : candidates) {
    if (fresh.size() >= cap) break;
    if (backend.requested(i, tier) || !in_batch.insert(i).second) continue;
    fresh.push_back(i);
  }
  return fresh;
}

}  // namespace detail

const std::vector<std::string>& driver_names() {
  static const std::vector<std::string> names = {"random", "lhs", "nsga2", "halving"};
  return names;
}

std::unique_ptr<SearchDriver> make_driver(const std::string& strategy,
                                          const DriverParams& params) {
  if (strategy == "random") return detail::make_random_driver(params);
  if (strategy == "lhs") return detail::make_lhs_driver(params);
  if (strategy == "nsga2") return detail::make_nsga2_driver(params);
  if (strategy == "halving") return detail::make_halving_driver(params);
  XLDS_REQUIRE_MSG(false, "unknown search strategy '"
                              << strategy << "' (random | lhs | nsga2 | halving)");
  return nullptr;
}

}  // namespace xlds::dse
