// Pluggable search strategies over a SearchSpace.
//
// A driver decides *which* (point, fidelity) pairs to request next; the
// engine owns *how* they get valued — memo map, journal, sharded parallel
// evaluation, budget accounting.  The split keeps every strategy trivially
// resumable: a driver's trajectory is a pure function of its seed and the
// FOM values it receives, and FOM values are pure functions of the job
// (never of wall-clock, thread count, or journal state), so re-running a
// driver against a journal-warmed backend replays the exact trajectory of
// the run that died.
//
// Budget discipline: the backend charges one unit for each (index, tier)
// pair the *driver* requests for the first time — even when the value comes
// back instantly from the journal.  Charging journal hits is what makes
// resume bit-identical: a resumed run spends budget at the same points in
// its trajectory as the uninterrupted run, it just pays microseconds instead
// of model time.  Structural culls (core::incompatibility) are free, exactly
// as they are for the brute-force enumeration the acceptance tests compare
// against.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "core/evaluate.hpp"
#include "dse/fidelity.hpp"
#include "dse/space.hpp"
#include "util/rng.hpp"

namespace xlds::dse {

/// One valued (point, tier) request handed back to a driver.
struct Evaluation {
  std::size_t index = 0;
  Fidelity fidelity = Fidelity::kAnalytic;
  core::Fom fom;
  /// Surrogate relative-std (kSurrogate requests only; 0 for physics tiers).
  double uncertainty = 0.0;
};

/// What a driver may assume about the engine's learned tier-0 model.
struct SurrogateStatus {
  bool enabled = false;  ///< the job turned the surrogate rung on
  bool ready = false;    ///< a kSurrogate request would be served right now
  /// Promotion threshold: predictions with uncertainty above this should buy
  /// a real-tier evaluation.
  double promote_uncertainty = 0.0;
};

/// The engine-owned evaluation service drivers request work from.
class EvaluationBackend {
 public:
  virtual ~EvaluationBackend() = default;

  virtual const SearchSpace& space() const = 0;

  /// Top rung of the fidelity ladder for this job.  Single-tier strategies
  /// (random, LHS, NSGA-II) evaluate everything here; successive halving
  /// climbs to it.
  virtual Fidelity max_fidelity() const = 0;

  /// Unique (index, tier) charges the budget still admits.
  virtual std::size_t remaining_budget() const = 0;

  /// True when this run has already been charged for (index, tier).
  /// Re-requesting such a pair is free.  Deliberately says nothing about
  /// journal contents — trajectories must not depend on them.
  virtual bool requested(std::size_t index, Fidelity tier) const = 0;

  /// Value `indices` at `tier`, in input order.  Culled points come back
  /// infeasible for free; pairs new to this run are charged and must fit in
  /// remaining_budget() (PreconditionError otherwise — drivers truncate).
  /// tier == kSurrogate is served by the engine's learned model instead of
  /// the physics ladder, charged against surrogate_capacity().
  virtual std::vector<Evaluation> evaluate(const std::vector<std::size_t>& indices,
                                           Fidelity tier) = 0;

  /// Learned-model availability.  Default: no surrogate (keeps non-engine
  /// backends — tests, benches — source-compatible).
  virtual SurrogateStatus surrogate_status() const { return {}; }

  /// Fresh kSurrogate queries the budget still admits (queries are exchanged
  /// for ladder charges at the job's queries_per_charge rate, so they are
  /// near-zero cost but not free).
  virtual std::size_t surrogate_capacity() const { return 0; }
};

struct DriverParams {
  /// NSGA-II population size (clamped to the viable space).
  std::size_t population = 24;
  /// NSGA-II per-pair crossover probability (else clone-and-mutate).
  double crossover_prob = 0.9;
  /// NSGA-II stops after this many consecutive generations that charged no
  /// new (point, tier) pair — the search has stopped discovering.
  std::size_t stall_generations = 4;
  /// Successive-halving reduction factor (> 1): survivors per rung shrink
  /// by ~eta while model cost climbs one fidelity tier.
  double halving_eta = 3.0;
};

class SearchDriver {
 public:
  virtual ~SearchDriver() = default;
  virtual std::string name() const = 0;
  /// Run until the budget is exhausted or the strategy converges.  `rng` is
  /// the driver's private deterministic stream (forked from the job seed).
  virtual void run(EvaluationBackend& backend, Rng& rng) = 0;
};

/// Factory for the built-in strategies: "random", "lhs", "nsga2", "halving".
/// PreconditionError on an unknown name.
std::unique_ptr<SearchDriver> make_driver(const std::string& strategy,
                                          const DriverParams& params = {});

/// Names accepted by make_driver, for CLI help and validation.
const std::vector<std::string>& driver_names();

}  // namespace xlds::dse
