// Baseline samplers: uniform random and discrete Latin-hypercube search.
// Both evaluate straight at the job's top fidelity — they are the "no
// cleverness" reference points the evolutionary and multi-fidelity
// strategies must beat.
#include <algorithm>
#include <string>
#include <unordered_set>
#include <vector>

#include "dse/driver.hpp"
#include "dse/driver_util.hpp"

namespace xlds::dse {

namespace {

constexpr std::size_t kBatch = 16;

class RandomDriver final : public SearchDriver {
 public:
  explicit RandomDriver(const DriverParams&) {}
  std::string name() const override { return "random"; }

  void run(EvaluationBackend& backend, Rng& rng) override {
    const SearchSpace& space = backend.space();
    const Fidelity tier = backend.max_fidelity();
    while (backend.remaining_budget() > 0) {
      // Propose a batch by rejection; bail out once the viable space is
      // saturated (every viable point already charged).
      std::vector<std::size_t> batch;
      std::unordered_set<std::size_t> in_batch;
      const std::size_t want = std::min(backend.remaining_budget(), kBatch);
      std::size_t attempts = 0;
      const std::size_t max_attempts = 16 * space.size() + 64;
      while (batch.size() < want && attempts < max_attempts) {
        ++attempts;
        const std::size_t i = rng.uniform_u32(static_cast<std::uint32_t>(space.size()));
        if (space.culled(i) || backend.requested(i, tier) || !in_batch.insert(i).second)
          continue;
        batch.push_back(i);
      }
      if (batch.empty()) {
        if (saturated(backend, tier)) return;
        continue;  // unlucky streak, not saturation: keep drawing
      }
      backend.evaluate(batch, tier);
    }
  }

 private:
  static bool saturated(const EvaluationBackend& backend, Fidelity tier) {
    const SearchSpace& space = backend.space();
    for (std::size_t i = 0; i < space.size(); ++i)
      if (!space.culled(i) && !backend.requested(i, tier)) return false;
    return true;
  }
};

class LhsDriver final : public SearchDriver {
 public:
  explicit LhsDriver(const DriverParams&) {}
  std::string name() const override { return "lhs"; }

  void run(EvaluationBackend& backend, Rng& rng) override {
    const Fidelity tier = backend.max_fidelity();
    // Repeated stratified rounds: each round spreads its sample across every
    // axis, and fresh_for_budget drops points earlier rounds already bought.
    while (backend.remaining_budget() > 0) {
      const std::size_t want =
          std::min(backend.remaining_budget(), backend.space().viable_count());
      const auto sample = detail::lhs_indices(backend.space(), want, rng);
      const auto fresh = detail::fresh_for_budget(backend, tier, sample);
      if (fresh.empty()) return;  // the viable space is exhausted
      backend.evaluate(fresh, tier);
    }
  }
};

}  // namespace

namespace detail {

std::unique_ptr<SearchDriver> make_random_driver(const DriverParams& params) {
  return std::make_unique<RandomDriver>(params);
}

std::unique_ptr<SearchDriver> make_lhs_driver(const DriverParams& params) {
  return std::make_unique<LhsDriver>(params);
}

}  // namespace detail

}  // namespace xlds::dse
