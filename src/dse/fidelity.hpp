// The fidelity ladder: the same design point costed at four model tiers.
//
// The codebase has always contained cheap-to-expensive models of the same
// physics — the analytic triage FOMs (core::Evaluator), the Gauss-Seidel
// nodal IR-drop solve and the variation-aware Eva-CAM margins, and the
// Monte-Carlo fault/variation accuracy measurements (fault::
// ResilienceEvaluator) — but only ever ran them in separate benches.  The
// ladder stacks them so a search can spend almost all of its budget at the
// ~microsecond analytic tier and promote only shortlisted survivors up the
// rungs, the way XBTorch/LASANA-style co-design flows make large analog
// spaces tractable:
//
//   kSurrogate   learned regression-forest prediction trained on this job's
//                journal history (src/surrogate/) — no physics at all
//   kAnalytic    analytic FOM projection (the brute-force triage model)
//   kNodal       + nodal IR-drop error on the crossbar tile, + Eva-CAM
//                sense margins re-derived under device variation
//   kMonteCarlo  + measured fault/aging accuracy ratio from the resilience
//                probe grid and the BER-derived weight-storage derate
//
// Each physics rung is a pure function of (point, tier, config, profile): no
// hidden state, so values are journal-cacheable and bit-identical at any
// XLDS_THREADS.  Digital platform points refine to themselves — there is no
// in-memory physics to re-model — which keeps ladder comparisons fair: the
// baselines never pay fictitious penalties.
//
// kSurrogate is the exception that proves the rule: its value is a function
// of the *training history*, not of the job alone, so the ladder refuses to
// evaluate it — the engine owns the model, and journals every prediction so
// that a resumed run replays the same values the model produced the first
// time regardless of how the refit schedule would land on replay.
#pragma once

#include <cstdint>
#include <string>

#include "core/design_space.hpp"
#include "core/evaluate.hpp"

namespace xlds::dse {

enum class Fidelity : std::uint32_t {
  kSurrogate = 0,
  kAnalytic = 1,
  kNodal = 2,
  kMonteCarlo = 3,
};

constexpr std::size_t kFidelityTiers = 4;

std::string to_string(Fidelity f);
Fidelity fidelity_from_string(const std::string& name);

/// Drop the process-wide ladder memo caches (the per-device nodal IR-drop
/// errors and the per-(rate, age, seed) Monte-Carlo probe reports).  Values
/// are pure functions of their keys, so clearing only costs recompute time —
/// benches call this (plus core::clear_evaluation_caches()) between timed
/// runs so a "cold" measurement is honestly cold.
void clear_fidelity_caches();

struct FidelityConfig {
  /// Top physics rung for the job (>= kAnalytic: the surrogate rung is not a
  /// ladder tier, it sits below the ladder and is served by the engine).
  Fidelity max_fidelity = Fidelity::kAnalytic;
  /// kNodal: relative device-to-device conductance spread folded into the
  /// Eva-CAM sense-margin analysis.
  double variation_sigma_rel = 0.05;
  /// kNodal: accuracy sensitivity to the nodal-vs-analytic column-current
  /// error (fractional accuracy lost per unit relative error).
  double ir_drop_sensitivity = 0.2;
  /// kMonteCarlo: stuck-cell rate and storage age of the resilience probe.
  double mc_fault_rate = 0.02;
  double mc_age_s = 1.0e7;
  /// kMonteCarlo: probe stream.  Deliberately independent of the *search*
  /// seed: FOM values must not change when only the search trajectory does,
  /// or journals could never be shared across strategies/seeds.
  std::uint64_t mc_seed = 99;
};

class FidelityLadder {
 public:
  FidelityLadder(FidelityConfig config, core::AppProfile profile,
                 core::AccuracyOracle oracle = core::default_accuracy_oracle);

  const FidelityConfig& config() const noexcept { return config_; }
  const core::AppProfile& profile() const noexcept { return profile_; }

  /// Evaluate `p` at `tier` (refining every rung below it).  Pure function
  /// of (p, tier) for a fixed ladder; results are thread-count independent.
  /// PreconditionError on kSurrogate — that tier has no physics to run.
  core::Fom evaluate(const core::DesignPoint& p, Fidelity tier) const;

  /// Relative wall-cost estimate of evaluate(p, tier), in analytic-tier
  /// units.  A scheduling heuristic only (the engine sorts batches
  /// longest-processing-time-first with it) — never an input to any FOM or
  /// search decision, so it can evolve freely without invalidating journals.
  double cost_estimate(const core::DesignPoint& p, Fidelity tier) const;

  /// Identity hash of everything evaluate() depends on besides the point —
  /// folded into the journal job hash.  max_fidelity enters in the ladder's
  /// original 3-tier numbering (analytic = 0) so journals written before the
  /// surrogate rung existed keep their job hash and resume cleanly.
  std::uint64_t hash(std::uint64_t h) const;

 private:
  core::Fom refine_nodal(const core::DesignPoint& p, core::Fom fom) const;
  core::Fom refine_monte_carlo(const core::DesignPoint& p, core::Fom fom) const;

  FidelityConfig config_;
  core::AppProfile profile_;
  core::Evaluator evaluator_;
};

}  // namespace xlds::dse
