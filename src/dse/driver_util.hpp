// Internal helpers shared by the driver implementations.  Not installed
// API: include only from src/dse/*.cpp.
#pragma once

#include <cstddef>
#include <vector>

#include "dse/driver.hpp"
#include "dse/space.hpp"
#include "util/rng.hpp"

namespace xlds::dse::detail {

/// Indices of every structurally viable point, ascending.
std::vector<std::size_t> viable_indices(const SearchSpace& space);

/// Up to `n` distinct viable point indices by discrete Latin-hypercube
/// sampling: each axis is cut into `n` strata and visited in an independent
/// random permutation, so small samples still cover every device, arch and
/// algo family.  Collisions and culled combinations are dropped (LHS on a
/// categorical grid cannot guarantee exactly n), then the sample is topped
/// up uniformly from the unused viable points.
std::vector<std::size_t> lhs_indices(const SearchSpace& space, std::size_t n, Rng& rng);

/// Filter `candidates` for evaluate(): drop in-batch duplicates and pairs
/// this run already paid for, then truncate to the remaining budget.
std::vector<std::size_t> fresh_for_budget(const EvaluationBackend& backend, Fidelity tier,
                                          const std::vector<std::size_t>& candidates);

/// Per-strategy factories (defined next to each implementation; dispatched
/// by make_driver in driver.cpp).
std::unique_ptr<SearchDriver> make_random_driver(const DriverParams& params);
std::unique_ptr<SearchDriver> make_lhs_driver(const DriverParams& params);
std::unique_ptr<SearchDriver> make_nsga2_driver(const DriverParams& params);
std::unique_ptr<SearchDriver> make_halving_driver(const DriverParams& params);

}  // namespace xlds::dse::detail
