// Internal helpers shared by the driver implementations.  Not installed
// API: include only from src/dse/*.cpp.
#pragma once

#include <cstddef>
#include <vector>

#include "core/pareto.hpp"
#include "dse/driver.hpp"
#include "dse/space.hpp"
#include "util/rng.hpp"

namespace xlds::dse::detail {

/// Indices of every structurally viable point, ascending.
std::vector<std::size_t> viable_indices(const SearchSpace& space);

/// Up to `n` distinct viable point indices by discrete Latin-hypercube
/// sampling: each axis is cut into `n` strata and visited in an independent
/// random permutation, so small samples still cover every device, arch and
/// algo family.  Collisions and culled combinations are dropped (LHS on a
/// categorical grid cannot guarantee exactly n), then the sample is topped
/// up uniformly from the unused viable points.
std::vector<std::size_t> lhs_indices(const SearchSpace& space, std::size_t n, Rng& rng);

/// Filter `candidates` for evaluate(): drop in-batch duplicates and pairs
/// this run already paid for, then truncate to the remaining budget.
std::vector<std::size_t> fresh_for_budget(const EvaluationBackend& backend, Fidelity tier,
                                          const std::vector<std::size_t>& candidates);

/// fresh_for_budget's twin for the learned tier: drop duplicates and
/// already-queried points, truncate to the surrogate capacity.
std::vector<std::size_t> fresh_for_surrogate(const EvaluationBackend& backend,
                                             const std::vector<std::size_t>& candidates);

/// Uncertainty-aware promotion filter.  Queries the surrogate for every
/// candidate (free for repeats, capacity-charged for fresh ones) and keeps,
/// in candidate order, the ones worth a real `target_tier` evaluation:
///   - predictions more uncertain than the job's promotion threshold,
///   - candidates whose *predicted* FOM lands on the Pareto front of
///     (anchors + predictions) — `anchors` are real-tier FOMs the search
///     already trusts (e.g. the archive front), so a prediction must beat
///     real results to promote on merit,
///   - candidates the capacity-exhausted model could not predict at all.
/// Candidates already charged at target_tier are dropped (re-requests are
/// free but screen nothing).  Requires surrogate_status().enabled && .ready.
std::vector<std::size_t> surrogate_screen(EvaluationBackend& backend, Fidelity target_tier,
                                          const std::vector<std::size_t>& candidates,
                                          const std::vector<core::ScoredPoint>& anchors);

/// Per-strategy factories (defined next to each implementation; dispatched
/// by make_driver in driver.cpp).
std::unique_ptr<SearchDriver> make_random_driver(const DriverParams& params);
std::unique_ptr<SearchDriver> make_lhs_driver(const DriverParams& params);
std::unique_ptr<SearchDriver> make_nsga2_driver(const DriverParams& params);
std::unique_ptr<SearchDriver> make_halving_driver(const DriverParams& params);

}  // namespace xlds::dse::detail
