#include "dse/journal.hpp"

#include <cstring>
#include <filesystem>
#include <iterator>
#include <type_traits>

#include "dse/space.hpp"
#include "util/error.hpp"

namespace xlds::dse {

namespace {

constexpr char kMagic[8] = {'X', 'L', 'D', 'S', 'J', 'N', 'L', '1'};
constexpr std::uint32_t kVersion = 1;
constexpr std::size_t kHeaderSize = sizeof(kMagic) + sizeof(std::uint32_t) + sizeof(std::uint64_t);
// Sanity bound on one record: a note longer than this is a corrupt length
// field, not a real note.
constexpr std::uint32_t kMaxBodyLen = 1u << 20;

template <class T>
void append_raw(std::string& buf, const T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  const char* p = reinterpret_cast<const char*>(&v);
  buf.append(p, sizeof v);
}

template <class T>
bool read_raw(const std::string& buf, std::size_t& pos, T& out) {
  static_assert(std::is_trivially_copyable_v<T>);
  if (pos + sizeof out > buf.size()) return false;
  std::memcpy(&out, buf.data() + pos, sizeof out);
  pos += sizeof out;
  return true;
}

std::string encode_body(const Journal::Record& r) {
  std::string body;
  body.reserve(57 + r.fom.note.size());
  append_raw(body, r.key);
  append_raw(body, r.fidelity);
  append_raw(body, static_cast<std::uint8_t>(r.fom.feasible ? 1 : 0));
  body.append(3, '\0');
  append_raw(body, r.fom.latency);
  append_raw(body, r.fom.energy);
  append_raw(body, r.fom.area_mm2);
  append_raw(body, r.fom.accuracy);
  append_raw(body, static_cast<std::uint32_t>(r.fom.note.size()));
  body.append(r.fom.note);
  return body;
}

bool decode_body(const std::string& body, Journal::Record& r) {
  std::size_t pos = 0;
  std::uint8_t feasible = 0;
  std::uint32_t note_len = 0;
  if (!read_raw(body, pos, r.key) || !read_raw(body, pos, r.fidelity) ||
      !read_raw(body, pos, feasible))
    return false;
  pos += 3;  // padding
  if (pos > body.size() || !read_raw(body, pos, r.fom.latency) ||
      !read_raw(body, pos, r.fom.energy) || !read_raw(body, pos, r.fom.area_mm2) ||
      !read_raw(body, pos, r.fom.accuracy) || !read_raw(body, pos, note_len))
    return false;
  if (pos + note_len != body.size()) return false;
  r.fom.feasible = feasible != 0;
  r.fom.note.assign(body, pos, note_len);
  return true;
}

}  // namespace

Journal::Journal(std::string path, std::uint64_t job_hash)
    : path_(std::move(path)), job_hash_(job_hash) {
  XLDS_REQUIRE(!path_.empty());

  std::string contents;
  {
    std::ifstream in(path_, std::ios::binary);
    if (in) {
      open_info_.existed = true;
      contents.assign(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
    }
  }

  std::size_t good_end = 0;
  if (open_info_.existed) {
    XLDS_REQUIRE_MSG(contents.size() >= kHeaderSize &&
                         std::memcmp(contents.data(), kMagic, sizeof kMagic) == 0,
                     "'" << path_ << "' is not an XLDS journal");
    std::size_t pos = sizeof kMagic;
    std::uint32_t version = 0;
    std::uint64_t stored_hash = 0;
    read_raw(contents, pos, version);
    read_raw(contents, pos, stored_hash);
    XLDS_REQUIRE_MSG(version == kVersion,
                     "journal '" << path_ << "' has format version " << version
                                 << ", this build reads " << kVersion);
    XLDS_REQUIRE_MSG(stored_hash == job_hash_,
                     "journal '" << path_ << "' belongs to a different job "
                                 << "(space/application/fidelity settings changed); "
                                 << "delete it or point --journal elsewhere");
    good_end = pos;

    // Replay the intact record prefix; stop at the first torn or corrupt
    // record and truncate the file there.
    while (pos < contents.size()) {
      std::uint32_t body_len = 0;
      std::size_t scan = pos;
      if (!read_raw(contents, scan, body_len) || body_len > kMaxBodyLen ||
          scan + body_len + sizeof(std::uint64_t) > contents.size())
        break;  // torn tail
      const std::string body = contents.substr(scan, body_len);
      scan += body_len;
      std::uint64_t checksum = 0;
      read_raw(contents, scan, checksum);
      Record r;
      if (checksum != fnv1a64(body.data(), body.size()) || !decode_body(body, r))
        break;  // corrupt record: distrust everything after it
      records_.push_back(std::move(r));
      pos = scan;
      good_end = pos;
    }
    open_info_.replayed = records_.size();
    open_info_.dropped_bytes = contents.size() - good_end;
    if (open_info_.dropped_bytes > 0) std::filesystem::resize_file(path_, good_end);
  }

  out_.open(path_, std::ios::binary | std::ios::app);
  XLDS_REQUIRE_MSG(out_.is_open(), "cannot open journal '" << path_ << "' for append");
  if (!open_info_.existed) {
    std::string header;
    header.append(kMagic, sizeof kMagic);
    append_raw(header, kVersion);
    append_raw(header, job_hash_);
    out_.write(header.data(), static_cast<std::streamsize>(header.size()));
    out_.flush();
  }
}

void Journal::append(const Record& r) {
  const std::string body = encode_body(r);
  std::string framed;
  framed.reserve(body.size() + 12);
  append_raw(framed, static_cast<std::uint32_t>(body.size()));
  framed.append(body);
  append_raw(framed, fnv1a64(body.data(), body.size()));
  out_.write(framed.data(), static_cast<std::streamsize>(framed.size()));
  out_.flush();
  XLDS_REQUIRE_MSG(out_.good(), "journal append to '" << path_ << "' failed");
  ++appended_;
}

}  // namespace xlds::dse
