#include "dse/journal.hpp"

#include <cstring>
#include <filesystem>
#include <iterator>
#include <type_traits>

#include "dse/fidelity.hpp"
#include "dse/space.hpp"
#include "util/error.hpp"

namespace xlds::dse {

namespace {

constexpr char kMagic[8] = {'X', 'L', 'D', 'S', 'J', 'N', 'L', '1'};
constexpr std::uint32_t kVersionLegacy3Tier = 1;
constexpr std::uint32_t kVersion = 2;
constexpr std::size_t kHeaderSize = sizeof(kMagic) + sizeof(std::uint32_t) + sizeof(std::uint64_t);
// Sanity bound on one record: a note longer than this is a corrupt length
// field, not a real note.
constexpr std::uint32_t kMaxBodyLen = 1u << 20;

template <class T>
void append_raw(std::string& buf, const T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  const char* p = reinterpret_cast<const char*>(&v);
  buf.append(p, sizeof v);
}

template <class T>
bool read_raw(const std::string& buf, std::size_t& pos, T& out) {
  static_assert(std::is_trivially_copyable_v<T>);
  if (pos + sizeof out > buf.size()) return false;
  std::memcpy(&out, buf.data() + pos, sizeof out);
  pos += sizeof out;
  return true;
}

std::string encode_body(const Journal::Record& r) {
  std::string body;
  body.reserve(64 + r.fom.note.size());
  append_raw(body, r.key);
  append_raw(body, r.fidelity);
  append_raw(body, static_cast<std::uint8_t>(r.fom.feasible ? 1 : 0));
  body.append(3, '\0');
  append_raw(body, r.fom.latency);
  append_raw(body, r.fom.energy);
  append_raw(body, r.fom.area_mm2);
  append_raw(body, r.fom.accuracy);
  append_raw(body, r.uncertainty);
  append_raw(body, static_cast<std::uint32_t>(r.fom.note.size()));
  body.append(r.fom.note);
  return body;
}

bool decode_body(const std::string& body, std::uint32_t version, Journal::Record& r) {
  std::size_t pos = 0;
  std::uint8_t feasible = 0;
  std::uint32_t note_len = 0;
  if (!read_raw(body, pos, r.key) || !read_raw(body, pos, r.fidelity) ||
      !read_raw(body, pos, feasible))
    return false;
  pos += 3;  // padding
  if (pos > body.size() || !read_raw(body, pos, r.fom.latency) ||
      !read_raw(body, pos, r.fom.energy) || !read_raw(body, pos, r.fom.area_mm2) ||
      !read_raw(body, pos, r.fom.accuracy))
    return false;
  r.uncertainty = 0.0;
  if (version >= kVersion && !read_raw(body, pos, r.uncertainty)) return false;
  if (!read_raw(body, pos, note_len)) return false;
  if (pos + note_len != body.size()) return false;
  r.fom.feasible = feasible != 0;
  r.fom.note.assign(body, pos, note_len);
  // Legacy tiers were numbered before the surrogate rung existed; shifting
  // them is exactly the enum renumbering, so FOM semantics are unchanged.
  if (version == kVersionLegacy3Tier)
    r.fidelity += static_cast<std::uint32_t>(Fidelity::kAnalytic);
  return true;
}

struct Parsed {
  std::uint32_t version = 0;
  std::uint64_t job_hash = 0;
  std::vector<Journal::Record> records;
  std::size_t good_end = 0;  ///< byte offset past the last intact record
};

/// Parse header + intact record prefix of raw journal bytes.  Never touches
/// the filesystem; PreconditionError on a bad magic or unknown version.
Parsed parse(const std::string& contents, const std::string& path) {
  XLDS_REQUIRE_MSG(contents.size() >= kHeaderSize &&
                       std::memcmp(contents.data(), kMagic, sizeof kMagic) == 0,
                   "'" << path << "' is not an XLDS journal");
  Parsed out;
  std::size_t pos = sizeof kMagic;
  read_raw(contents, pos, out.version);
  read_raw(contents, pos, out.job_hash);
  XLDS_REQUIRE_MSG(out.version == kVersion || out.version == kVersionLegacy3Tier,
                   "journal '" << path << "' has format version " << out.version
                               << ", this build reads " << kVersionLegacy3Tier << " and "
                               << kVersion);
  out.good_end = pos;

  // Replay the intact record prefix; stop at the first torn or corrupt one.
  while (pos < contents.size()) {
    std::uint32_t body_len = 0;
    std::size_t scan = pos;
    if (!read_raw(contents, scan, body_len) || body_len > kMaxBodyLen ||
        scan + body_len + sizeof(std::uint64_t) > contents.size())
      break;  // torn tail
    const std::string body = contents.substr(scan, body_len);
    scan += body_len;
    std::uint64_t checksum = 0;
    read_raw(contents, scan, checksum);
    Journal::Record r;
    if (checksum != fnv1a64(body.data(), body.size()) || !decode_body(body, out.version, r))
      break;  // corrupt record: distrust everything after it
    out.records.push_back(std::move(r));
    pos = scan;
    out.good_end = pos;
  }
  return out;
}

void frame_record(std::string& buf, const Journal::Record& r) {
  const std::string body = encode_body(r);
  append_raw(buf, static_cast<std::uint32_t>(body.size()));
  buf.append(body);
  append_raw(buf, fnv1a64(body.data(), body.size()));
}

std::string header_bytes(std::uint64_t job_hash) {
  std::string header;
  header.append(kMagic, sizeof kMagic);
  append_raw(header, kVersion);
  append_raw(header, job_hash);
  return header;
}

}  // namespace

Journal::Journal(std::string path, std::uint64_t job_hash)
    : path_(std::move(path)), job_hash_(job_hash) {
  XLDS_REQUIRE(!path_.empty());

  std::string contents;
  {
    std::ifstream in(path_, std::ios::binary);
    if (in) {
      open_info_.existed = true;
      contents.assign(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
    }
  }

  if (open_info_.existed) {
    Parsed parsed = parse(contents, path_);
    XLDS_REQUIRE_MSG(parsed.job_hash == job_hash_,
                     "journal '" << path_ << "' belongs to a different job "
                                 << "(space/application/fidelity settings changed); "
                                 << "delete it or point --journal elsewhere");
    records_ = std::move(parsed.records);
    open_info_.replayed = records_.size();
    open_info_.dropped_bytes = contents.size() - parsed.good_end;

    if (parsed.version != kVersion) {
      // Upgrade in place: re-frame every intact record in the v2 layout and
      // atomically swap the file, so after this point only one version ever
      // exists on disk.  The torn tail (if any) is dropped by construction.
      std::string fresh = header_bytes(job_hash_);
      for (const Record& r : records_) frame_record(fresh, r);
      const std::string tmp = path_ + ".upgrade.tmp";
      {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        XLDS_REQUIRE_MSG(out.is_open(), "cannot write journal upgrade '" << tmp << "'");
        out.write(fresh.data(), static_cast<std::streamsize>(fresh.size()));
        out.flush();
        XLDS_REQUIRE_MSG(out.good(), "journal upgrade write to '" << tmp << "' failed");
      }
      std::filesystem::rename(tmp, path_);
      open_info_.upgraded = true;
    } else if (open_info_.dropped_bytes > 0) {
      std::filesystem::resize_file(path_, parsed.good_end);
    }
  }

  out_.open(path_, std::ios::binary | std::ios::app);
  XLDS_REQUIRE_MSG(out_.is_open(), "cannot open journal '" << path_ << "' for append");
  if (!open_info_.existed) {
    const std::string header = header_bytes(job_hash_);
    out_.write(header.data(), static_cast<std::streamsize>(header.size()));
    out_.flush();
  }
}

void Journal::append(const Record& r) {
  std::string framed;
  framed.reserve(76 + r.fom.note.size());
  frame_record(framed, r);
  out_.write(framed.data(), static_cast<std::streamsize>(framed.size()));
  out_.flush();
  XLDS_REQUIRE_MSG(out_.good(), "journal append to '" << path_ << "' failed");
  ++appended_;
}

Journal::InspectInfo Journal::inspect(const std::string& path) {
  std::string contents;
  {
    std::ifstream in(path, std::ios::binary);
    XLDS_REQUIRE_MSG(in, "cannot read journal '" << path << "'");
    contents.assign(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
  }
  Parsed parsed = parse(contents, path);
  InspectInfo info;
  info.version = parsed.version;
  info.job_hash = parsed.job_hash;
  info.records = std::move(parsed.records);
  info.dropped_bytes = contents.size() - parsed.good_end;
  return info;
}

}  // namespace xlds::dse
