#include "dse/fidelity.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <mutex>
#include <tuple>

#include "dse/space.hpp"
#include "fault/resilience.hpp"
#include "kernels/sampler.hpp"
#include "nvsim/explorer.hpp"
#include "util/error.hpp"
#include "util/matrix.hpp"
#include "util/rng.hpp"
#include "xbar/crossbar.hpp"

namespace xlds::dse {

namespace {

bool uses_crossbar(core::ArchKind a) {
  return a == core::ArchKind::kCrossbarAccelerator || a == core::ArchKind::kCamXbarHybrid;
}

bool uses_cam(core::ArchKind a) {
  return a == core::ArchKind::kCamAccelerator || a == core::ArchKind::kCamXbarHybrid;
}

bool is_in_memory(core::ArchKind a) { return uses_crossbar(a) || uses_cam(a); }

std::string percent(double fraction) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f", 100.0 * fraction);
  return buf;
}

// --- nodal tier: IR-drop model error on the canonical 64x64 tile ----------
//
// The analytic triage model costs MVMs with the two-pass IR-drop estimate;
// the nodal rung measures how far that estimate sits from the Gauss-Seidel
// ground truth on a half-loaded tile and charges the gap against accuracy
// (unmodelled IR drop is computation error, not just delay).  One solve per
// device kind, memoised process-wide: the solve is a pure function of the
// device, and a search promotes many points per device.
std::mutex g_ir_cache_mutex;
std::map<int, double> g_ir_error_cache;

constexpr std::uint64_t kTileSeed = 0x9e3779b97f4a7c15ull;

double nodal_ir_error_uncached(device::DeviceKind dev) {
  xbar::CrossbarConfig cfg;
  cfg.rows = 64;
  cfg.cols = 64;
  cfg.apply_variation = false;
  cfg.read_noise_rel = 0.0;
  // The cached direct solver answers this in one factorize + substitution.
  // The iteration bump only matters on the Gauss-Seidel fallback path
  // (nodal_direct off or declined): a half-loaded 64x64 tile needs more
  // sweeps than the default budget, and an unconverged solve would fall
  // back to the analytic estimate and silently zero the rung's signal.
  cfg.nodal_max_iters = 20000;
  Rng fill(kTileSeed ^ static_cast<std::uint64_t>(dev));
  MatrixD g(cfg.rows, cfg.cols, cfg.rram.g_min);
  // Block Bernoulli draw (same stream consumption as the per-cell loop).
  std::vector<std::uint8_t> on(g.size());
  kernels::fill_bernoulli(fill, on.data(), on.size(), 0.5);
  for (std::size_t i = 0; i < on.size(); ++i)
    if (on[i]) g.data()[i] = cfg.rram.g_max;

  Rng rng_a(1), rng_n(1);
  cfg.ir_drop = xbar::IrDropMode::kAnalytic;
  xbar::Crossbar analytic(cfg, rng_a);
  cfg.ir_drop = xbar::IrDropMode::kNodal;
  xbar::Crossbar nodal(cfg, rng_n);
  analytic.program_conductances(g);
  nodal.program_conductances(g);

  const std::vector<double> ones(cfg.rows, 1.0);
  const std::vector<double> ia = analytic.column_currents(ones);
  xbar::SolveStatus status;
  const std::vector<double> in = nodal.column_currents(ones, status);
  XLDS_ASSERT(status.converged || status.used_fallback);
  double err = 0.0;
  std::size_t n = 0;
  for (std::size_t c = 0; c < ia.size(); ++c) {
    if (in[c] <= 0.0) continue;
    err += std::fabs(ia[c] - in[c]) / in[c];
    ++n;
  }
  return n > 0 ? err / static_cast<double>(n) : 0.0;
}

double nodal_ir_error(device::DeviceKind dev) {
  const int key = static_cast<int>(dev);
  {
    std::lock_guard<std::mutex> lk(g_ir_cache_mutex);
    const auto it = g_ir_error_cache.find(key);
    if (it != g_ir_error_cache.end()) return it->second;
  }
  const double err = nodal_ir_error_uncached(dev);
  std::lock_guard<std::mutex> lk(g_ir_cache_mutex);
  g_ir_error_cache.emplace(key, err);
  return err;
}

// --- Monte-Carlo tier: resilience probe, memoised per (rate, age, seed) ---
std::mutex g_probe_mutex;
std::map<std::tuple<double, double, std::uint64_t>, fault::ResilienceReport> g_probe_cache;

const fault::ResilienceReport& probe_report(double rate, double age_s, std::uint64_t seed) {
  std::lock_guard<std::mutex> lk(g_probe_mutex);
  const auto key = std::make_tuple(rate, age_s, seed);
  auto it = g_probe_cache.find(key);
  if (it == g_probe_cache.end()) {
    // Computed under the lock: the probe runs once per ladder config.  Its
    // nested parallel_for now runs *cooperatively* on the shared pool, which
    // is still deadlock-free while we hold the lock: the scheduler's
    // fully-strict helping rule means this thread only ever executes subtasks
    // of the probe job it is waiting on — never a sibling batch unit that
    // could re-enter probe_report() and try to take g_probe_mutex again.
    fault::ResilienceEvaluator probe(fault::dse_probe_config(rate, age_s, seed));
    it = g_probe_cache.emplace(key, probe.run()).first;
  }
  return it->second;
}

}  // namespace

std::string to_string(Fidelity f) {
  switch (f) {
    case Fidelity::kSurrogate: return "surrogate";
    case Fidelity::kAnalytic: return "analytic";
    case Fidelity::kNodal: return "nodal";
    case Fidelity::kMonteCarlo: return "mc";
  }
  return "?";
}

Fidelity fidelity_from_string(const std::string& name) {
  if (name == "surrogate") return Fidelity::kSurrogate;
  if (name == "analytic") return Fidelity::kAnalytic;
  if (name == "nodal") return Fidelity::kNodal;
  if (name == "mc" || name == "monte-carlo") return Fidelity::kMonteCarlo;
  XLDS_REQUIRE_MSG(false,
                   "unknown fidelity '" << name << "' (surrogate | analytic | nodal | mc)");
  return Fidelity::kAnalytic;
}

void clear_fidelity_caches() {
  {
    std::lock_guard<std::mutex> lk(g_ir_cache_mutex);
    g_ir_error_cache.clear();
  }
  std::lock_guard<std::mutex> lk(g_probe_mutex);
  g_probe_cache.clear();
}

FidelityLadder::FidelityLadder(FidelityConfig config, core::AppProfile profile,
                               core::AccuracyOracle oracle)
    : config_(config), profile_(std::move(profile)), evaluator_(std::move(oracle)) {
  XLDS_REQUIRE_MSG(config_.max_fidelity >= Fidelity::kAnalytic,
                   "the ladder's max_fidelity must be a physics tier (>= analytic)");
  XLDS_REQUIRE(config_.variation_sigma_rel >= 0.0);
  XLDS_REQUIRE(config_.mc_fault_rate >= 0.0 && config_.mc_fault_rate <= 1.0);
  XLDS_REQUIRE(config_.mc_age_s >= 0.0);
}

core::Fom FidelityLadder::evaluate(const core::DesignPoint& p, Fidelity tier) const {
  XLDS_REQUIRE_MSG(tier >= Fidelity::kAnalytic,
                   "the surrogate tier is served by the engine's learned model, "
                   "not by the physics ladder");
  XLDS_REQUIRE_MSG(tier <= config_.max_fidelity,
                   "tier " << dse::to_string(tier) << " above the ladder's max_fidelity");
  core::Fom fom = evaluator_.evaluate(p, profile_);
  if (tier >= Fidelity::kNodal) fom = refine_nodal(p, fom);
  if (tier >= Fidelity::kMonteCarlo) fom = refine_monte_carlo(p, fom);
  return fom;
}

core::Fom FidelityLadder::refine_nodal(const core::DesignPoint& p, core::Fom fom) const {
  // Infeasible analytic points stay infeasible (they cannot reach a front);
  // digital platforms have no in-memory physics to re-model.
  if (!fom.feasible || !is_in_memory(p.arch)) return fom;

  if (uses_crossbar(p.arch)) {
    const double err = nodal_ir_error(p.device);
    fom.accuracy *= std::max(0.0, 1.0 - config_.ir_drop_sensitivity * err);
    fom.note += "; nodal IR err " + percent(err) + " %";
  }
  if (uses_cam(p.arch)) {
    const evacam::CamFom var = evacam::evaluate_with_variation(
        core::cam_spec_for_point(p, profile_), config_.variation_sigma_rel);
    if (var.max_ml_columns_with_variation < 16) {
      fom.feasible = false;
      fom.note += "; variation shrinks matchline to " +
                  std::to_string(var.max_ml_columns_with_variation) + " columns";
      return fom;
    }
    if (var.max_ml_columns_with_variation < var.max_ml_columns) {
      // Narrower matchlines mean more segments sensed per search.
      const double bits = 128.0;
      const double seg_nom = std::ceil(bits / static_cast<double>(var.max_ml_columns));
      const double seg_var = std::ceil(bits / static_cast<double>(var.max_ml_columns_with_variation));
      const double scale = seg_var / seg_nom;
      fom.latency *= scale;
      fom.energy *= scale;
      fom.note += "; variation margins x" + percent(scale / 100.0) + " segments";
    }
  }
  return fom;
}

core::Fom FidelityLadder::refine_monte_carlo(const core::DesignPoint& p, core::Fom fom) const {
  if (!fom.feasible || !is_in_memory(p.arch)) return fom;

  const auto& traits = device::traits(p.device);
  // Deployment-horizon program cycles per cell (matches the analytic
  // endurance model's 1e9-inference horizon).
  const double writes = profile_.writes_per_inference * 1e9;

  if (p.algo == core::AlgoKind::kHdc || p.algo == core::AlgoKind::kMann) {
    const fault::ResilienceReport& rep =
        probe_report(config_.mc_fault_rate, config_.mc_age_s, config_.mc_seed);
    const std::size_t n_times = 2;  // probe grid is {0, rate} x {0, age}
    const auto& clean = rep.at(0, 0, n_times);
    const auto& faulty = rep.at(1, 1, n_times);
    const double clean_acc =
        p.algo == core::AlgoKind::kHdc ? clean.hdc_accuracy : clean.mann_accuracy;
    const double faulty_acc =
        p.algo == core::AlgoKind::kHdc ? faulty.hdc_accuracy : faulty.mann_accuracy;
    const double ratio =
        clean_acc > 0.0 ? std::clamp(faulty_acc / clean_acc, 0.0, 1.0) : 1.0;
    fom.accuracy *= ratio;
    fom.note += "; MC fault ratio " + percent(ratio) + " %";
  }
  if (uses_crossbar(p.arch) || p.algo == core::AlgoKind::kMlp ||
      p.algo == core::AlgoKind::kCnn) {
    const double derate = nvsim::ber_accuracy_derate(traits, config_.mc_age_s, writes);
    fom.accuracy *= derate;
    fom.note += "; BER derate " + percent(derate) + " %";
  }
  return fom;
}

double FidelityLadder::cost_estimate(const core::DesignPoint& p, Fidelity tier) const {
  // Coarse relative weights of the refinement rungs.  The memoised caches
  // (per-device IR solve, per-config resilience probe) make the *first*
  // request at a rung expensive and the rest cheap; LPT ordering by this
  // estimate front-loads the points that can possibly pay those costs, which
  // is exactly what a makespan-minimising dispatch wants.
  double cost = 1.0;  // analytic projection
  if (!is_in_memory(p.arch)) return cost;  // refinements are no-ops for digital points
  if (tier >= Fidelity::kNodal) {
    if (uses_crossbar(p.arch)) cost += 8.0;   // nodal IR-drop tile solve
    if (uses_cam(p.arch)) cost += 4.0;        // Eva-CAM variation margins
  }
  if (tier >= Fidelity::kMonteCarlo) {
    if (p.algo == core::AlgoKind::kHdc || p.algo == core::AlgoKind::kMann)
      cost += 100.0;  // resilience probe grid (MC accuracy measurement)
    else
      cost += 2.0;  // BER-derived storage derate
  }
  return cost;
}

std::uint64_t FidelityLadder::hash(std::uint64_t h) const {
  h = fnv1a64("xlds-ladder-v1", 14, h);
  const auto mix = [&h](double v) { h = fnv1a64(&v, sizeof v, h); };
  // Hash the tier in the pre-surrogate numbering (analytic = 0): the
  // surrogate rung changed the enum values but not the physics a stored FOM
  // depends on, and legacy journals must keep matching.
  const std::uint32_t legacy_max = static_cast<std::uint32_t>(config_.max_fidelity) - 1;
  h = fnv1a64(&legacy_max, sizeof legacy_max, h);
  mix(config_.variation_sigma_rel);
  mix(config_.ir_drop_sensitivity);
  mix(config_.mc_fault_rate);
  mix(config_.mc_age_s);
  h = fnv1a64(&config_.mc_seed, sizeof config_.mc_seed, h);
  return fnv1a64(profile_.name.data(), profile_.name.size(), h);
}

}  // namespace xlds::dse
