// The exploration engine: wires a SearchDriver to the fidelity ladder, the
// budget ledger, the journal and the thread pool, and distils the raw
// request stream into a Pareto front + triage ranking.
//
// Determinism contract (tested): for a fixed EngineConfig, explore() returns
// bit-identical results at any XLDS_THREADS — and a run that crashed mid-way
// and is re-launched against its journal produces bit-identical results to a
// run that never crashed.  The engine gets this by construction rather than
// by careful bookkeeping: driver trajectories are pure functions of the seed
// (never of journal or memo state), FOM values are pure functions of the
// job, and budget is charged per first request, so a journal only changes
// *how fast* values arrive, never *which* values arrive.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/counters.hpp"
#include "core/pareto.hpp"
#include "dse/driver.hpp"
#include "dse/fidelity.hpp"
#include "dse/space.hpp"
#include "surrogate/model.hpp"

namespace xlds::dse {

struct EngineConfig {
  core::SpaceAxes axes;                       ///< empty = full grid
  std::string application = "isolet-like";
  std::string strategy = "nsga2";
  /// Unique (point, tier) charges the search may make.  0 = one per viable
  /// point, i.e. the cost of brute-force enumeration at a single tier.
  std::size_t budget = 0;
  std::uint64_t seed = 1;
  DriverParams driver;
  FidelityConfig fidelity;
  /// Learned tier-0 rung: when enabled, drivers screen candidates through a
  /// regression forest trained on this job's evaluation history and promote
  /// only uncertain or front-candidate points to the physics tiers.  Every
  /// prediction is journaled, so resume stays bit-identical by construction.
  surrogate::SurrogateConfig surrogate;
  std::string journal_path;                   ///< empty: in-memory, no resume
  core::TriageWeights weights;
  /// Evaluation shard processes for the physics tiers: 1 = in-process; N > 1
  /// forks N workers (src/shard/).  0 = read XLDS_SHARDS (default 1).
  /// Speed-only by contract: FOMs, journal bytes and results are
  /// bit-identical at any shard count.
  std::size_t shards = 0;
  /// Persistent cross-run result cache file (shard::ResultCache); empty =
  /// off.  Also speed-only: cached values are bit-exact, so journal bytes
  /// and results match a cache-less run.
  std::string cache_path;
  /// Test hook simulating a crash: after this many journal appends the
  /// engine throws AbortInjected, leaving the journal exactly as a kill -9
  /// at that moment would.  0 disables.
  std::size_t abort_after_computed = 0;
  /// Test hook: SIGKILL one shard worker after this many shard-evaluated
  /// point results have merged (0 = off) — exercises crash recovery.
  std::size_t kill_shard_worker_after = 0;
};

struct ExplorationStats {
  std::size_t charges = 0;         ///< unique (point, tier) *ladder* charges
  std::size_t computed = 0;        ///< pairs paid with model/predict time
  std::size_t journal_hits = 0;    ///< pairs served from the journal
  std::size_t repeat_requests = 0; ///< free re-requests of charged pairs
  std::size_t culled_requests = 0; ///< free structural-cull requests
  /// [kSurrogate] counts queries (exchanged at queries_per_charge), the
  /// physics tiers count full budget charges.
  std::array<std::size_t, kFidelityTiers> charges_by_tier{};
  bool resumed = false;            ///< journal file existed at open
  std::size_t journal_replayed = 0;
  std::size_t journal_dropped_bytes = 0;
  // Surrogate-rung accounting.
  std::size_t surrogate_queries = 0;        ///< unique points predicted
  std::size_t surrogate_hits = 0;           ///< queries that never promoted
  std::size_t surrogate_promotions = 0;     ///< predicted points later paid real
  std::size_t surrogate_refits = 0;         ///< forest fits this run
  std::size_t surrogate_disagreements = 0;  ///< real-vs-predicted rel err over limit
  /// Ladder-charge equivalents the queries cost (queries / queries_per_charge).
  double surrogate_budget_units = 0.0;
  // Shard-pool + persistent-cache accounting.  Speed-only diagnostics, like
  // `nodal` below: none of these influence any value or search decision.
  std::size_t shards_used = 1;          ///< evaluation processes (1 = in-process)
  std::size_t shard_requests = 0;       ///< wire requests dispatched (incl. duplicates)
  std::size_t shard_redispatches = 0;   ///< steal-by-redispatch duplicates
  std::size_t shard_respawns = 0;       ///< workers respawned after dying
  std::size_t cache_hits = 0;           ///< pairs served from the persistent cache
  std::size_t cache_appends = 0;        ///< pairs appended to the persistent cache
  /// Nodal-solver work done on behalf of this run (delta of the process-wide
  /// core::Profiler counters across explore()): how many full envelope
  /// factorizations the high-fidelity tiers paid for versus how many were
  /// served by the rank-1 incremental update path.  Diagnostics only — never
  /// an input to any search decision — so they are omitted from
  /// resume-comparable (--no-stats) output.
  core::Profiler::NodalCounts nodal{};
  /// Task-scheduler work done on behalf of this run (delta of the
  /// process-wide util::parallel counters across explore()) plus the wall
  /// time the evaluation lanes spent busy per fidelity tier.  Same
  /// diagnostics-only status as `nodal`.
  struct SchedulerStats {
    core::Profiler::SchedCounts counts{};
    std::array<double, kFidelityTiers> tier_busy_s{};
  };
  SchedulerStats scheduler{};
};

struct ExplorationResult {
  std::string strategy;
  std::uint64_t seed = 0;
  std::size_t budget = 0;
  std::uint64_t job_hash = 0;
  /// Every distinct design the search paid for, in first-charge order, each
  /// carrying its FOM from the highest tier it reached.  Distinct by
  /// construction — the budget ledger is the dedup set.
  std::vector<core::ScoredPoint> evaluated;
  std::vector<Fidelity> tiers;       ///< tier of each evaluated[i]'s FOM
  std::vector<std::size_t> front;    ///< Pareto indices into evaluated
  std::vector<std::size_t> ranking;  ///< triage order, indices into evaluated
  ExplorationStats stats;
};

/// Thrown by the abort_after_computed test hook (never during normal runs).
class AbortInjected : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Journal compatibility hash: everything a stored FOM value depends on —
/// space axes, application, fidelity settings — and nothing a search
/// trajectory depends on, so one journal serves any strategy/seed/budget.
std::uint64_t job_hash(const SearchSpace& space, const FidelityLadder& ladder);

ExplorationResult explore(const EngineConfig& config);

}  // namespace xlds::dse
