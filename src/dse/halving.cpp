// Successive halving across the fidelity ladder.
//
// A wide cohort is costed at the cheap analytic rung, the triage ranking
// keeps the best ~1/eta, and the survivors climb one fidelity tier — so the
// expensive nodal and Monte-Carlo models only ever run on designs the cheap
// model already likes.  The base-rung width is sized so one full bracket
// (n0 + n0/eta + n0/eta^2 + ...) fits the remaining budget; leftover budget
// buys additional brackets over still-unseen points.
//
// With a usable surrogate the bracket grows a rung *below* analytic: the
// whole viable space is priced in model queries (near-zero budget), and only
// the prediction-triage-best n0 designs enter the analytic rung — halving's
// own promote-the-survivors logic, applied once more with a learned model as
// the cheapest rung.
#include <algorithm>
#include <cmath>
#include <string>
#include <unordered_set>
#include <vector>

#include "core/pareto.hpp"
#include "dse/driver.hpp"
#include "dse/driver_util.hpp"
#include "util/error.hpp"

namespace xlds::dse {

namespace {

class HalvingDriver final : public SearchDriver {
 public:
  explicit HalvingDriver(const DriverParams& params) : params_(params) {
    XLDS_REQUIRE_MSG(params_.halving_eta > 1.0, "successive halving needs eta > 1");
  }
  std::string name() const override { return "halving"; }

  void run(EvaluationBackend& backend, Rng& rng) override {
    while (backend.remaining_budget() > 0)
      if (bracket(backend, rng) == 0) return;  // nothing fresh left to buy
  }

 private:
  /// One halving bracket; returns the number of real (point, tier) pairs
  /// charged (surrogate queries are capacity, not budget).
  std::size_t bracket(EvaluationBackend& backend, Rng& rng) const {
    const SearchSpace& space = backend.space();
    // kAnalytic == 1, so max_fidelity's numeric value is also the number of
    // physics rungs the bracket climbs; the budget is sized over those only.
    const std::size_t rungs = static_cast<std::size_t>(backend.max_fidelity());
    const double eta = params_.halving_eta;

    double denom = 0.0;
    for (std::size_t r = 0; r < rungs; ++r) denom += std::pow(eta, -static_cast<double>(r));
    const std::size_t budget = backend.remaining_budget();
    std::size_t n0 = static_cast<std::size_t>(static_cast<double>(budget) / denom);
    n0 = std::max<std::size_t>(1, std::min(n0, space.viable_count()));

    std::size_t charged = 0;
    std::vector<std::size_t> cohort = base_cohort(backend, rng, n0);
    for (std::size_t r = 0; r < rungs; ++r) {
      const auto tier = static_cast<Fidelity>(r + 1);
      const auto fresh = detail::fresh_for_budget(backend, tier, cohort);
      if (fresh.empty()) break;
      const std::vector<Evaluation> evals = backend.evaluate(fresh, tier);
      charged += fresh.size();
      if (r + 1 == rungs) break;

      // Promote the triage-best ceil(n/eta) survivors to the next rung.
      std::vector<core::ScoredPoint> pts;
      pts.reserve(evals.size());
      for (const Evaluation& e : evals) pts.push_back({space.at(e.index), e.fom});
      const std::vector<std::size_t> ranking = core::triage_ranking(pts);
      if (ranking.empty()) break;  // every survivor infeasible at this rung
      const auto keep = static_cast<std::size_t>(
          std::ceil(static_cast<double>(evals.size()) / eta));
      cohort.clear();
      for (std::size_t j = 0; j < std::min(keep, ranking.size()); ++j)
        cohort.push_back(evals[ranking[j]].index);
    }
    return charged;
  }

  /// The analytic-rung entry cohort: a plain LHS draw of n0 designs, or —
  /// when the learned model is usable — the prediction-triage-best n0 of the
  /// entire unseen viable space, priced in surrogate queries.
  std::vector<std::size_t> base_cohort(EvaluationBackend& backend, Rng& rng,
                                       std::size_t n0) const {
    const SearchSpace& space = backend.space();
    const SurrogateStatus st = backend.surrogate_status();
    if (!st.enabled || !st.ready) return detail::lhs_indices(space, n0, rng);

    std::vector<std::size_t> wide = detail::lhs_indices(space, space.viable_count(), rng);
    std::unordered_set<std::size_t> affordable;
    for (const std::size_t i : detail::fresh_for_surrogate(backend, wide))
      affordable.insert(i);
    std::vector<std::size_t> query;
    for (const std::size_t i : wide)
      if (backend.requested(i, Fidelity::kSurrogate) || affordable.count(i))
        query.push_back(i);
    if (query.empty()) return detail::lhs_indices(space, n0, rng);

    const std::vector<Evaluation> evals = backend.evaluate(query, Fidelity::kSurrogate);
    std::vector<core::ScoredPoint> pts;
    pts.reserve(evals.size());
    for (const Evaluation& e : evals) pts.push_back({space.at(e.index), e.fom});
    const std::vector<std::size_t> ranking = core::triage_ranking(pts);
    // A model that writes off every queried design (all-infeasible
    // predictions) gets no veto: fall back to an unscreened draw rather
    // than letting the bracket starve.
    if (ranking.empty()) return detail::lhs_indices(space, n0, rng);

    std::vector<std::size_t> cohort;
    for (std::size_t j = 0; j < std::min(n0, ranking.size()); ++j)
      cohort.push_back(evals[ranking[j]].index);
    return cohort;
  }

  DriverParams params_;
};

}  // namespace

namespace detail {

std::unique_ptr<SearchDriver> make_halving_driver(const DriverParams& params) {
  return std::make_unique<HalvingDriver>(params);
}

}  // namespace detail

}  // namespace xlds::dse
