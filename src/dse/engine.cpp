#include "dse/engine.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <memory>
#include <numeric>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "dse/jobspec.hpp"
#include "dse/journal.hpp"
#include "shard/result_cache.hpp"
#include "shard/shard_pool.hpp"
#include "util/error.hpp"
#include "util/hash.hpp"
#include "util/parallel.hpp"

namespace xlds::dse {

namespace {

/// Composite memo key for a (point index, tier) pair.
std::uint64_t pair_key(std::size_t index, Fidelity tier) {
  return static_cast<std::uint64_t>(index) * kFidelityTiers +
         static_cast<std::uint64_t>(tier);
}

/// Worst-objective relative error between a real FOM and its prediction —
/// the model-disagreement scalar.  A feasibility flip is maximal error.
double prediction_error(const core::Fom& real, const core::Fom& predicted) {
  if (real.feasible != predicted.feasible) return 1.0;
  constexpr double kTiny = 1e-12;
  const auto rel = [](double a, double b) {
    return std::fabs(a - b) / (std::fabs(a) + kTiny);
  };
  double err = rel(real.latency, predicted.latency);
  err = std::max(err, rel(real.energy, predicted.energy));
  err = std::max(err, rel(real.area_mm2, predicted.area_mm2));
  err = std::max(err, rel(real.accuracy, predicted.accuracy));
  return err;
}

class Backend final : public EvaluationBackend {
 public:
  Backend(const SearchSpace& space, const FidelityLadder& ladder, std::size_t budget,
          const surrogate::SurrogateConfig& surrogate_config, Journal* journal,
          std::size_t abort_after_computed, shard::ShardPool* pool, shard::ResultCache* cache,
          std::uint64_t cache_space_hash)
      : space_(space),
        ladder_(ladder),
        budget_(budget),
        model_(surrogate_config),
        journal_(journal),
        abort_after_computed_(abort_after_computed),
        pool_(pool),
        cache_(cache),
        cache_space_hash_(cache_space_hash) {
    if (journal_ != nullptr)
      for (const Journal::Record& r : journal_->records()) {
        XLDS_REQUIRE_MSG(r.fidelity < kFidelityTiers && r.key < space_.size(),
                         "journal record out of range for this space");
        memo_[pair_key(r.key, static_cast<Fidelity>(r.fidelity))] = r.fom;
        if (r.fidelity == static_cast<std::uint32_t>(Fidelity::kSurrogate))
          uncertainty_[r.key] = r.uncertainty;
        // The model is deliberately NOT pre-fed here: training samples are
        // added when the replayed trajectory re-charges each pair, so the
        // history (and every refit position) is bit-identical to the run
        // that wrote the journal.
      }
  }

  const SearchSpace& space() const override { return space_; }
  Fidelity max_fidelity() const override { return ladder_.config().max_fidelity; }
  std::size_t remaining_budget() const override {
    // Queries cost ceil(queries/qpc) charges: a fraction of a charge already
    // consumed is a charge the ladder can no longer spend, which keeps
    // charges + queries/qpc <= budget a hard invariant (tested) rather than
    // a rounding accident.
    const std::size_t qpc = model_.config().queries_per_charge;
    const std::size_t query_charges = (stats_.surrogate_queries + qpc - 1) / qpc;
    const std::size_t spent = stats_.charges + query_charges;
    return spent < budget_ ? budget_ - spent : 0;
  }

  SurrogateStatus surrogate_status() const override {
    SurrogateStatus s;
    s.enabled = model_.config().enabled;
    // "Ready" means a query would be served: either a forest is standing, or
    // enough history has accrued that the batch-entry refit will build one.
    s.ready = model_.ready() || model_.refit_due();
    s.promote_uncertainty = model_.config().promote_uncertainty;
    return s;
  }

  std::size_t surrogate_capacity() const override {
    if (!model_.config().enabled) return 0;
    const std::size_t qpc = model_.config().queries_per_charge;
    const std::size_t ceiling = (budget_ - stats_.charges) * qpc;
    return ceiling > stats_.surrogate_queries ? ceiling - stats_.surrogate_queries : 0;
  }

  bool requested(std::size_t index, Fidelity tier) const override {
    return charged_.count(pair_key(index, tier)) != 0;
  }

  std::vector<Evaluation> evaluate(const std::vector<std::size_t>& indices,
                                   Fidelity tier) override {
    if (tier == Fidelity::kSurrogate) return evaluate_surrogate(indices);

    // Pass 1: the budget ledger.  Charge pairs new to this run; pick out the
    // ones the memo (journal) cannot serve for computation.
    std::vector<std::size_t> to_compute;
    std::vector<std::size_t> charged_now;
    for (const std::size_t i : indices) {
      XLDS_REQUIRE(i < space_.size());
      if (space_.culled(i)) {
        ++stats_.culled_requests;
        continue;
      }
      const std::uint64_t key = pair_key(i, tier);
      if (charged_.count(key)) {
        ++stats_.repeat_requests;
        continue;
      }
      XLDS_REQUIRE_MSG(remaining_budget() > 0, "driver requested past its budget");
      ++stats_.charges;
      ++stats_.charges_by_tier[static_cast<std::size_t>(tier)];
      charged_.insert(key);
      charge_order_.emplace_back(i, tier);
      charged_now.push_back(i);
      if (real_points_.insert(i).second &&
          charged_.count(pair_key(i, Fidelity::kSurrogate)))
        ++stats_.surrogate_promotions;
      if (memo_.count(key))
        ++stats_.journal_hits;
      else
        to_compute.push_back(i);
    }

    // Pass 2: serve the misses.  Three sources, cheapest first — the
    // persistent cross-run cache, then the shard pool (or the in-process
    // thread pool) for whatever remains.  The FOM of a (point, tier) pair is
    // a pure function of the job and cached values are stored bit-exactly,
    // so neither the cache state nor the shard layout can change values,
    // only wall clock.  Dispatch is cost-aware: longest-processing-time-
    // first by the ladder's charge estimate, so the expensive points (MC
    // probes, first nodal solves) enter the scheduler ahead of the cheap
    // tail and idle lanes (or shards) steal the tail behind them.  Results
    // land in original-order slots and the memo/journal loop below walks
    // `to_compute` order, so every journal byte is placement-, shard- and
    // cache-invariant.
    if (!to_compute.empty()) {
      std::vector<std::size_t> order(to_compute.size());
      std::iota(order.begin(), order.end(), std::size_t{0});
      std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return ladder_.cost_estimate(space_.at(to_compute[a]), tier) >
               ladder_.cost_estimate(space_.at(to_compute[b]), tier);
      });
      std::vector<core::Fom> foms(to_compute.size());
      std::vector<char> from_cache(to_compute.size(), 0);
      std::vector<std::size_t> pending;  // positions into to_compute, LPT order
      pending.reserve(order.size());
      if (cache_ != nullptr) {
        for (const std::size_t j : order) {
          const core::Fom* hit = cache_->find(
              cache_space_hash_, shard::cache_point_hash(space_.at(to_compute[j])),
              static_cast<std::uint32_t>(tier));
          if (hit != nullptr) {
            foms[j] = *hit;
            from_cache[j] = 1;
          } else {
            pending.push_back(j);
          }
        }
      } else {
        pending = order;
      }
      if (!pending.empty() && pool_ != nullptr) {
        std::vector<shard::BatchItem> items;
        items.reserve(pending.size());
        for (const std::size_t j : pending)
          items.push_back({to_compute[j], space_.at(to_compute[j])});
        shard::BatchResult batch = pool_->evaluate(items, static_cast<std::uint32_t>(tier));
        for (std::size_t k = 0; k < pending.size(); ++k)
          foms[pending[k]] = std::move(batch.foms[k]);
        busy_ns_[static_cast<std::size_t>(tier)].fetch_add(batch.busy_ns,
                                                           std::memory_order_relaxed);
        // Credit the parent's per-run profiler deltas with the work the
        // workers reported, so diagnostics keep meaning "done for this run".
        core::Profiler::add_nodal(batch.nodal);
        core::Profiler::add_sched(batch.sched);
      } else if (!pending.empty()) {
        parallel_for(pending.size(), 1, [&](std::size_t begin, std::size_t end, std::size_t) {
          for (std::size_t k = begin; k < end; ++k) {
            const std::size_t j = pending[k];
            const auto t0 = std::chrono::steady_clock::now();
            foms[j] = ladder_.evaluate(space_.at(to_compute[j]), tier);
            busy_ns_[static_cast<std::size_t>(tier)].fetch_add(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now() - t0)
                    .count(),
                std::memory_order_relaxed);
          }
        });
      }
      for (std::size_t j = 0; j < to_compute.size(); ++j) {
        memo_[pair_key(to_compute[j], tier)] = foms[j];
        if (journal_ != nullptr)
          journal_->append({to_compute[j], static_cast<std::uint32_t>(tier), foms[j], 0.0});
        if (from_cache[j]) {
          ++stats_.cache_hits;
        } else {
          ++stats_.computed;
          if (cache_ != nullptr) {
            cache_->insert(cache_space_hash_,
                           shard::cache_point_hash(space_.at(to_compute[j])),
                           static_cast<std::uint32_t>(tier), foms[j]);
            ++stats_.cache_appends;
          }
        }
        // Crash simulation: bail after the Nth durable append, exactly as a
        // kill would — later results in this batch are lost.
        if (abort_after_computed_ != 0 &&
            stats_.computed + stats_.cache_hits >= abort_after_computed_)
          throw AbortInjected("injected abort after " +
                              std::to_string(stats_.computed + stats_.cache_hits) +
                              " computed evaluations");
      }
    }

    // Feed the model every pair charged this call — journal hits included,
    // and in charge order, so the training history a resumed run accumulates
    // is the byte-for-byte sequence of the run that died.
    for (const std::size_t i : charged_now) {
      const core::Fom& fom = memo_.at(pair_key(i, tier));
      model_.add(space_.at(i), static_cast<std::uint32_t>(tier), fom);
      if (tier == Fidelity::kAnalytic) {
        const auto it = memo_.find(pair_key(i, Fidelity::kSurrogate));
        if (it != memo_.end() && charged_.count(pair_key(i, Fidelity::kSurrogate)) &&
            prediction_error(fom, it->second) > model_.config().disagree_rel) {
          ++stats_.surrogate_disagreements;
          model_.force_refit();
        }
      }
    }

    // Pass 3: results in input order.
    std::vector<Evaluation> out;
    out.reserve(indices.size());
    for (const std::size_t i : indices) {
      Evaluation e{i, tier, {}, 0.0};
      if (space_.culled(i)) {
        e.fom.feasible = false;
        e.fom.accuracy = 0.0;
        e.fom.note = "culled: " + *core::incompatibility(space_.at(i));
      } else {
        e.fom = memo_.at(pair_key(i, tier));
      }
      out.push_back(std::move(e));
    }
    return out;
  }

  const ExplorationStats& stats() const { return stats_; }
  const std::vector<std::pair<std::size_t, Fidelity>>& charge_order() const {
    return charge_order_;
  }
  const core::Fom& fom(std::size_t index, Fidelity tier) const {
    return memo_.at(pair_key(index, tier));
  }
  const surrogate::SurrogateModel& model() const { return model_; }
  std::array<double, kFidelityTiers> tier_busy_seconds() const {
    std::array<double, kFidelityTiers> s{};
    for (std::size_t t = 0; t < kFidelityTiers; ++t)
      s[t] = static_cast<double>(busy_ns_[t].load(std::memory_order_relaxed)) * 1e-9;
    return s;
  }

 private:
  /// The learned rung.  Mirrors the physics path — charge / serve from memo
  /// or compute / journal / return in input order — with the model standing
  /// in for the ladder and queries charged against the exchange-rate ledger.
  std::vector<Evaluation> evaluate_surrogate(const std::vector<std::size_t>& indices) {
    XLDS_REQUIRE_MSG(model_.config().enabled,
                     "driver requested the surrogate tier on a job with surrogate off");
    // Refit at batch entry, cadence- or disagreement-driven.  This runs at
    // the same trajectory positions with the same history on every rerun —
    // including replays — so the forest is bit-identical everywhere.
    if (model_.refit_if_due()) ++stats_.surrogate_refits;

    // Charge pass (serial, input order): ledger bookkeeping plus the list of
    // queries the memo cannot serve.
    std::vector<std::size_t> to_predict;
    for (const std::size_t i : indices) {
      XLDS_REQUIRE(i < space_.size());
      if (space_.culled(i)) {
        ++stats_.culled_requests;
        continue;
      }
      const std::uint64_t key = pair_key(i, Fidelity::kSurrogate);
      if (charged_.count(key)) {
        ++stats_.repeat_requests;
        continue;
      }
      XLDS_REQUIRE_MSG(surrogate_capacity() > 0,
                       "driver requested past its surrogate query capacity");
      ++stats_.surrogate_queries;
      ++stats_.charges_by_tier[static_cast<std::size_t>(Fidelity::kSurrogate)];
      charged_.insert(key);
      charge_order_.emplace_back(i, Fidelity::kSurrogate);
      if (memo_.count(key)) {
        ++stats_.journal_hits;
        continue;  // replayed prediction: value and uncertainty from ctor
      }
      to_predict.push_back(i);
    }

    // Predict pass, sharded on the pool: the forest is immutable between
    // refits, so concurrent predict() calls are pure reads — the screen no
    // longer runs as a serial barrier phase but as one more parallel batch
    // whose tasks interleave (via the shared deques) with any in-flight
    // evaluation work.  Memo/journal writes below keep charge order, so the
    // journal bytes are identical to the old serial screen's.
    if (!to_predict.empty()) {
      XLDS_REQUIRE_MSG(model_.ready(), "surrogate query before the model's first fit");
      const std::vector<surrogate::SurrogatePrediction> preds =
          parallel_map<surrogate::SurrogatePrediction>(
              to_predict.size(), [&](std::size_t j) {
                const auto t0 = std::chrono::steady_clock::now();
                const surrogate::SurrogatePrediction p = model_.predict(
                    space_.at(to_predict[j]), static_cast<std::uint32_t>(Fidelity::kAnalytic));
                busy_ns_[static_cast<std::size_t>(Fidelity::kSurrogate)].fetch_add(
                    std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - t0)
                        .count(),
                    std::memory_order_relaxed);
                return p;
              });
      for (std::size_t j = 0; j < to_predict.size(); ++j) {
        const std::size_t i = to_predict[j];
        memo_[pair_key(i, Fidelity::kSurrogate)] = preds[j].fom;
        uncertainty_[i] = preds[j].rel_std;
        if (journal_ != nullptr)
          journal_->append({i, static_cast<std::uint32_t>(Fidelity::kSurrogate),
                            preds[j].fom, preds[j].rel_std});
        ++stats_.computed;
        if (abort_after_computed_ != 0 &&
            stats_.computed + stats_.cache_hits >= abort_after_computed_)
          throw AbortInjected("injected abort after " +
                              std::to_string(stats_.computed + stats_.cache_hits) +
                              " computed evaluations");
      }
    }

    std::vector<Evaluation> out;
    out.reserve(indices.size());
    for (const std::size_t i : indices) {
      Evaluation e{i, Fidelity::kSurrogate, {}, 0.0};
      if (space_.culled(i)) {
        e.fom.feasible = false;
        e.fom.accuracy = 0.0;
        e.fom.note = "culled: " + *core::incompatibility(space_.at(i));
      } else {
        e.fom = memo_.at(pair_key(i, Fidelity::kSurrogate));
        e.uncertainty = uncertainty_.at(i);
      }
      out.push_back(std::move(e));
    }
    return out;
  }

  const SearchSpace& space_;
  const FidelityLadder& ladder_;
  std::size_t budget_;
  surrogate::SurrogateModel model_;
  Journal* journal_;
  std::size_t abort_after_computed_;
  std::unordered_set<std::uint64_t> charged_;
  std::unordered_set<std::size_t> real_points_;
  std::vector<std::pair<std::size_t, Fidelity>> charge_order_;
  std::unordered_map<std::uint64_t, core::Fom> memo_;
  std::unordered_map<std::size_t, double> uncertainty_;
  shard::ShardPool* pool_;
  shard::ResultCache* cache_;
  std::uint64_t cache_space_hash_;
  ExplorationStats stats_;
  /// Wall time lanes spent inside ladder/predict calls, per tier (relaxed
  /// accumulation across lanes; diagnostics only).
  std::array<std::atomic<std::uint64_t>, kFidelityTiers> busy_ns_{};
};

}  // namespace

std::uint64_t job_hash(const SearchSpace& space, const FidelityLadder& ladder) {
  return ladder.hash(space.hash());
}

ExplorationResult explore(const EngineConfig& config) {
  const core::Profiler::NodalCounts nodal_before = core::Profiler::nodal();
  const core::Profiler::SchedCounts sched_before = core::Profiler::sched();
  const SearchSpace space(config.axes, config.application);
  XLDS_REQUIRE_MSG(space.viable_count() > 0, "search space has no viable points");
  const FidelityLadder ladder(config.fidelity, core::profile_for(config.application));
  const std::size_t budget = config.budget != 0 ? config.budget : space.viable_count();

  std::optional<Journal> journal;
  if (!config.journal_path.empty())
    journal.emplace(config.journal_path, job_hash(space, ladder));

  // The persistent cross-run cache.  Its space hash covers everything a FOM
  // value depends on besides the point itself — ladder settings + app
  // profile — but deliberately NOT the job's axis restriction, so a
  // restricted sweep and a full-grid sweep share overlapping entries.
  std::optional<shard::ResultCache> cache;
  std::uint64_t cache_space_hash = 0;
  if (!config.cache_path.empty()) {
    cache.emplace(config.cache_path);
    cache_space_hash = ladder.hash(util::fnv1a64("xlds-cache-v1", 13));
  }

  // The shard pool: forked evaluation workers sharing the parent's ladder by
  // inheritance.  shards == 1 means in-process (no fork at all).
  const std::size_t shards = config.shards != 0 ? config.shards : shard::env_shard_count();
  std::optional<shard::ShardPool> pool;
  if (shards > 1) {
    shard::ShardConfig sc;
    sc.shards = shards;
    sc.job_hash = job_hash(space, ladder);
    sc.job_json = shard_job_spec_text(config);
    sc.application = config.application;
    sc.evaluator = [&ladder](const core::DesignPoint& p, std::uint32_t tier) {
      return ladder.evaluate(p, static_cast<Fidelity>(tier));
    };
    sc.kill_worker_after_results = config.kill_shard_worker_after;
    pool.emplace(std::move(sc));
  }

  Backend backend(space, ladder, budget, config.surrogate, journal ? &*journal : nullptr,
                  config.abort_after_computed, pool ? &*pool : nullptr,
                  cache ? &*cache : nullptr, cache_space_hash);
  const std::unique_ptr<SearchDriver> driver = make_driver(config.strategy, config.driver);
  // The driver stream is forked off the job seed so future engine-level
  // randomness (shard jitter, restarts) can never alias with it.
  Rng rng = Rng(config.seed).fork(0x647365ull);  // "dse"
  driver->run(backend, rng);

  ExplorationResult result;
  result.strategy = config.strategy;
  result.seed = config.seed;
  result.budget = budget;
  result.job_hash = job_hash(space, ladder);

  // Collapse the charge stream: one entry per distinct point, first-charge
  // order, FOM from the highest tier that point reached.  Surrogate-only
  // points are excluded — the result reports physics, not predictions; the
  // surrogate's contribution shows up as coverage per unit budget.
  std::unordered_map<std::size_t, std::size_t> slot_of;
  for (const auto& [index, tier] : backend.charge_order()) {
    if (tier == Fidelity::kSurrogate) continue;
    const auto it = slot_of.find(index);
    if (it == slot_of.end()) {
      slot_of.emplace(index, result.evaluated.size());
      result.evaluated.push_back({space.at(index), backend.fom(index, tier)});
      result.tiers.push_back(tier);
    } else if (tier > result.tiers[it->second]) {
      result.evaluated[it->second].fom = backend.fom(index, tier);
      result.tiers[it->second] = tier;
    }
  }

  result.front = core::pareto_front(result.evaluated);
  result.ranking = core::triage_ranking(result.evaluated, config.weights);
  result.stats = backend.stats();
  result.stats.surrogate_hits =
      result.stats.surrogate_queries - result.stats.surrogate_promotions;
  result.stats.surrogate_budget_units =
      static_cast<double>(result.stats.surrogate_queries) /
      static_cast<double>(config.surrogate.queries_per_charge);
  {
    const core::Profiler::NodalCounts now = core::Profiler::nodal();
    core::Profiler::NodalCounts& d = result.stats.nodal;
    d.factorizations = now.factorizations - nodal_before.factorizations;
    d.direct_solves = now.direct_solves - nodal_before.direct_solves;
    d.gs_solves = now.gs_solves - nodal_before.gs_solves;
    d.incremental_updates = now.incremental_updates - nodal_before.incremental_updates;
    d.updated_cells = now.updated_cells - nodal_before.updated_cells;
    d.update_declines = now.update_declines - nodal_before.update_declines;
    d.drift_refactorizations = now.drift_refactorizations - nodal_before.drift_refactorizations;
  }
  {
    const core::Profiler::SchedCounts now = core::Profiler::sched();
    core::Profiler::SchedCounts& d = result.stats.scheduler.counts;
    d.jobs = now.jobs - sched_before.jobs;
    d.inline_jobs = now.inline_jobs - sched_before.inline_jobs;
    d.tasks = now.tasks - sched_before.tasks;
    d.stolen_tasks = now.stolen_tasks - sched_before.stolen_tasks;
    d.steal_failures = now.steal_failures - sched_before.steal_failures;
    d.nested_cooperative = now.nested_cooperative - sched_before.nested_cooperative;
    d.nested_inlined = now.nested_inlined - sched_before.nested_inlined;
    result.stats.scheduler.tier_busy_s = backend.tier_busy_seconds();
  }
  if (journal) {
    result.stats.resumed = journal->open_info().existed;
    result.stats.journal_replayed = journal->open_info().replayed;
    result.stats.journal_dropped_bytes = journal->open_info().dropped_bytes;
  }
  result.stats.shards_used = pool ? pool->shards() : 1;
  if (pool) {
    result.stats.shard_requests = pool->stats().requests;
    result.stats.shard_redispatches = pool->stats().redispatches;
    result.stats.shard_respawns = pool->stats().respawns;
  }
  return result;
}

}  // namespace xlds::dse
