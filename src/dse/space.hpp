// The search space a DSE run explores: a (possibly axis-restricted) view of
// the core device x architecture x algorithm grid for one application.
//
// Points are addressed by their device-major index within the resolved axes
// (core::point_index), which gives every design a stable 64-bit identity —
// the key the result journal, the dedup set and the drivers all share.
// Structural culls (core::incompatibility) are exposed here because they are
// *free*: a driver that checks culled() before proposing never spends budget
// on a point enumeration would have discarded anyway, keeping the "budget =
// fraction of full enumeration's evaluator calls" comparison honest.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "core/design_space.hpp"

namespace xlds::dse {

/// FNV-1a 64-bit over a byte range; `h` chains multiple ranges.
std::uint64_t fnv1a64(const void* data, std::size_t n,
                      std::uint64_t h = 14695981039346656037ull);

class SearchSpace {
 public:
  /// Axes are resolved (empty -> full) at construction.
  explicit SearchSpace(core::SpaceAxes axes = {}, std::string application = "isolet-like");

  const core::SpaceAxes& axes() const noexcept { return axes_; }
  const std::string& application() const noexcept { return application_; }

  /// Raw combinations in the space — the denominator of a search budget.
  std::size_t size() const noexcept { return size_; }

  core::DesignPoint at(std::size_t index) const;
  std::size_t index_of(const core::DesignPoint& p) const;

  /// Structural incompatibility check (free — no evaluator budget).
  bool culled(std::size_t index) const;

  /// Number of structurally viable points (computed once at construction):
  /// the ceiling on how many distinct designs any search can evaluate.
  std::size_t viable_count() const noexcept { return viable_; }

  /// Identity hash of (axes, application) — journal compatibility guard.
  std::uint64_t hash() const noexcept { return hash_; }

 private:
  core::SpaceAxes axes_;
  std::string application_;
  std::size_t size_ = 0;
  std::size_t viable_ = 0;
  std::uint64_t hash_ = 0;
};

}  // namespace xlds::dse
