// Crash-safe append-only result journal for design-space exploration.
//
// An exploration that dies — OOM-killed on a shared box, pre-empted in CI,
// ^C'd by an impatient user — must not re-pay for the evaluations it already
// finished: the expensive tiers of the fidelity ladder cost seconds per
// point.  The journal makes every completed evaluation durable the moment it
// finishes:
//
//   header:  magic "XLDSJNL1" | format version u32 | job hash u64
//   record:  body length u32 | body | FNV-1a-64 checksum of the body
//   body v2: point key u64 | fidelity u32 | feasible u8 | pad[3]
//            | latency f64 | energy f64 | area_mm2 f64 | accuracy f64
//            | uncertainty f64 | note length u32 | note bytes
//
// Version history.  v1 (three-tier ladder: analytic = 0) had no uncertainty
// field and numbered tiers before the surrogate rung existed.  Opening a v1
// journal upgrades it in place — tiers remapped (+1) into the 4-tier
// numbering, uncertainty zeroed, file atomically rewritten as v2 — so a
// legacy run resumes bit-identically: FOM bytes are untouched and the tier
// remap is exactly the enum renumbering.  v2 (current) stores the surrogate
// model's relative-std next to each prediction so a resumed run replays not
// just the predicted FOM but the uncertainty the promotion policy saw.
//
// Append is write + flush; there is no in-place mutation, so the only
// possible corruption is a torn tail from a mid-write crash.  Opening an
// existing journal replays records until the first torn or checksum-failed
// one and truncates the file there — everything before it is trusted,
// everything after is garbage by construction.  The job hash (space, app,
// fidelity settings — everything a FOM value depends on, deliberately *not*
// the search seed/strategy/budget, which only affect which points get
// visited) stops a journal from one job from silently poisoning another.
//
// Records are keyed by (point index, fidelity tier): replaying a journal
// into a memo map is exactly the dedup a stochastic search needs, and a
// resumed run that re-requests the same (key, tier) sequence gets
// bit-identical FOMs without recomputing any of them.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "core/evaluate.hpp"

namespace xlds::dse {

class Journal {
 public:
  struct Record {
    std::uint64_t key = 0;      ///< SearchSpace point index
    std::uint32_t fidelity = 0; ///< ladder tier the FOM was computed at
    core::Fom fom;
    /// Surrogate relative-std at prediction time (0 for physics tiers).
    double uncertainty = 0.0;
  };

  struct OpenInfo {
    bool existed = false;          ///< file was present (resume)
    bool upgraded = false;         ///< legacy v1 file rewritten as v2
    std::size_t replayed = 0;      ///< intact records recovered
    std::size_t dropped_bytes = 0; ///< torn/corrupt tail truncated away
  };

  /// Open `path` for append, creating it (with a header) when absent.  An
  /// existing file must carry a matching job hash (PreconditionError
  /// otherwise — resuming a different job is always a bug); its intact
  /// record prefix is replayed into records() and any torn tail truncated.
  /// Legacy v1 files are upgraded to v2 in place (atomic rewrite) first.
  Journal(std::string path, std::uint64_t job_hash);

  const std::string& path() const noexcept { return path_; }
  const OpenInfo& open_info() const noexcept { return open_info_; }

  /// Records replayed at open time (append() does not extend this view;
  /// the writer already holds them in its own archive).
  const std::vector<Record>& records() const noexcept { return records_; }

  /// Durably append one finished evaluation (write + flush).
  void append(const Record& r);

  std::size_t appended() const noexcept { return appended_; }

  /// Read-only integrity scan for tooling (xlds-journal): parses any
  /// journal version without knowing the job hash and without truncating or
  /// rewriting the file.  Tiers come back in the current 4-tier numbering
  /// regardless of the on-disk version.
  struct InspectInfo {
    std::uint32_t version = 0;     ///< on-disk format version
    std::uint64_t job_hash = 0;
    std::vector<Record> records;   ///< intact record prefix
    std::size_t dropped_bytes = 0; ///< torn/corrupt tail (left in place)
  };
  static InspectInfo inspect(const std::string& path);

 private:
  std::string path_;
  std::uint64_t job_hash_ = 0;
  OpenInfo open_info_;
  std::vector<Record> records_;
  std::ofstream out_;
  std::size_t appended_ = 0;
};

}  // namespace xlds::dse
