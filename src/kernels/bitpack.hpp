// Bit-packed binary hypervectors: 64 elements per machine word, Hamming
// distance by XOR + popcount, sign-dot as its affine image.
//
// The HDC/MANN stack stored ±1 hypervectors as std::vector<double> and binary
// CAM digits as std::vector<int>; every similarity query walked 8 bytes per
// bit.  Packing collapses a 4096-element hypervector to 64 words, so one
// popcount instruction compares 64 elements — the ≥4× single-thread win the
// figure benches and the DSE fidelity ladder bottom out on.
//
// Packing convention (fixed, relied on by tests):
//   * bit i of word i/64 is element i (bit index i%64, LSB first);
//   * sign packing maps v >= 0.0 → 1, v < 0.0 → 0 (ties count as +1, so an
//     all-zero vector packs to all-ones — the "all ties" edge case);
//   * digit packing maps digit != 0 → 1 (binary digits are 0/1 already);
//   * tail bits past `bits` in the last word are always zero, so Hamming and
//     popcount never need a mask at query time.
//
// Ternary signatures (MANN TCAM words with don't-care) pack into two planes:
// a value plane and a care plane; distance is popcount((va^vb) & ca & cb),
// matching mann::signature_distance exactly.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace xlds::kernels {

/// A packed binary vector: `bits` elements in ceil(bits/64) words, tail zero.
struct PackedBits {
  std::vector<std::uint64_t> words;
  std::size_t bits = 0;

  bool empty() const noexcept { return bits == 0; }

  /// Value of element i (0 or 1).
  int bit(std::size_t i) const { return static_cast<int>((words[i >> 6] >> (i & 63u)) & 1u); }
};

/// Words needed for `bits` elements.
inline std::size_t word_count(std::size_t bits) { return (bits + 63) / 64; }

/// Pack the signs of a real vector: bit = (v[i] >= 0.0).
PackedBits pack_signs(const double* v, std::size_t n);
PackedBits pack_signs(const std::vector<double>& v);

/// Pack binary digits: bit = (d[i] != 0).
PackedBits pack_bits(const int* d, std::size_t n);
PackedBits pack_bits(const std::vector<int>& d);

/// Unpack to 0/1 digits (the inverse of pack_bits for binary input).
std::vector<int> unpack_bits(const PackedBits& p);

/// Hamming distance between two packed vectors of equal length.
std::size_t hamming(const PackedBits& a, const PackedBits& b);

/// Dot product of the two ±1 vectors the packed operands represent:
/// n - 2 * hamming — the similarity the sign-dot / cosine-on-binary paths use.
long long sign_dot(const PackedBits& a, const PackedBits& b);

/// Scalar references (the pre-kernel loops; ground truth for tests and the
/// bench-smoke gate).  hamming_ref counts sign mismatches of two real
/// vectors; hamming_digits_ref counts unequal binary digits.
std::size_t hamming_ref(const double* a, const double* b, std::size_t n);
std::size_t hamming_digits_ref(const int* a, const int* b, std::size_t n);

// ---------------------------------------------------------------------------
// Ternary signatures (binary value + don't-care mask).

/// Packed ternary word: value plane + care plane (bit clear = don't-care).
struct PackedTernary {
  PackedBits value;
  PackedBits care;

  std::size_t bits() const noexcept { return value.bits; }
};

/// Pack trits where `dont_care` is the sentinel digit (any other nonzero
/// digit is a 1).  Don't-care positions pack as value 0 / care 0.
PackedTernary pack_ternary(const int* d, std::size_t n, int dont_care);
PackedTernary pack_ternary(const std::vector<int>& d, int dont_care);

/// Distance ignoring positions either side doesn't care about:
/// popcount((va ^ vb) & ca & cb).
std::size_t ternary_distance(const PackedTernary& a, const PackedTernary& b);

}  // namespace xlds::kernels
