// Dispatch policy for the compute-kernel layer (src/kernels/).
//
// Every kernel in this layer ships two implementations:
//
//   * a *scalar reference* (`*_ref`), written as the straightforward loop the
//     rest of the codebase used before this layer existed.  References are the
//     semantic ground truth: tests assert the optimised path reproduces them
//     bit-exactly (bit-packed Hamming, sequence-compatible samplers) or within
//     a documented ULP bound (blocked MVM).
//   * an *optimised default*, structured so the compiler can vectorise it:
//     bit-parallel word operations (XOR + popcount), restrict-qualified
//     contiguous spans, column-tiled accumulation, and branch-free inner
//     loops.  The kernel TUs are compiled at -O3 (see src/kernels/CMakeLists);
//     configuring with -DXLDS_NATIVE=ON additionally builds them with
//     -march=native.  Only the kernel TUs get these flags — the portable
//     build stays the CI default and headers never require any ISA.
//
// Dispatch is resolved at compile time inside the kernel TUs: the public
// entry points (kernels::hamming, kernels::matvec_t, ...) are always the
// optimised path, and the references stay exported for tests and the
// bench-smoke CI gate (which fails the build if optimised < reference).
//
// Determinism contract (inherited from util/parallel): a kernel's output is a
// pure function of its inputs — no hidden state, no thread-count dependence.
// Samplers document their draw sequence relative to util::Rng so call sites
// know whether swapping a per-call loop for a block call preserves golden
// values (fill_* do; fill_normal_fast defines its own sequence).
#pragma once

namespace xlds::kernels {

/// Human-readable description of how the kernel TUs were compiled — shown by
/// benches so BENCH_kernels.json records which build produced the numbers.
const char* isa_name() noexcept;

/// True when the kernel TUs were built with -march=native (XLDS_NATIVE=ON).
bool built_native() noexcept;

}  // namespace xlds::kernels
