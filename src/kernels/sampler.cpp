#include "kernels/sampler.hpp"

#include <cmath>

namespace xlds::kernels {

void fill_uniform(Rng& rng, double* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = rng.uniform();
}

void fill_normal(Rng& rng, double* out, std::size_t n, double mean, double sigma) {
  for (std::size_t i = 0; i < n; ++i) out[i] = rng.normal(mean, sigma);
}

void fill_bernoulli(Rng& rng, std::uint8_t* out, std::size_t n, double p) {
  for (std::size_t i = 0; i < n; ++i) out[i] = rng.bernoulli(p) ? 1 : 0;
}

void fill_exponential(Rng& rng, double* out, std::size_t n, double rate) {
  const double inv_rate = 1.0 / rate;
  for (std::size_t i = 0; i < n; ++i) out[i] = -std::log1p(-rng.uniform()) * inv_rate;
}

namespace {

// Acklam's rational approximation of the inverse normal CDF.  Central region
// |p - 0.5| <= 0.47575 (≈95.15% of uniform draws) is two degree-5/degree-5
// polynomials and one division — no transcendentals, vectorisable; tails take
// a sqrt(-2 ln p) branch.
constexpr double kA1 = -3.969683028665376e+01, kA2 = 2.209460984245205e+02,
                 kA3 = -2.759285104469687e+02, kA4 = 1.383577518672690e+02,
                 kA5 = -3.066479806614716e+01, kA6 = 2.506628277459239e+00;
constexpr double kB1 = -5.447609879822406e+01, kB2 = 1.615858368580409e+02,
                 kB3 = -1.556989798598866e+02, kB4 = 6.680131188771972e+01,
                 kB5 = -1.328068155288572e+01;
constexpr double kC1 = -7.784894002430293e-03, kC2 = -3.223964580411365e-01,
                 kC3 = -2.400758277161838e+00, kC4 = -2.549732539343734e+00,
                 kC5 = 4.374664141464968e+00, kC6 = 2.938163982698783e+00;
constexpr double kD1 = 7.784695709041462e-03, kD2 = 3.224671290700398e-01,
                 kD3 = 2.445134137142996e+00, kD4 = 3.754408661907416e+00;
constexpr double kPLow = 0.02425;

inline double icdf_central(double q, double r) {
  return (((((kA1 * r + kA2) * r + kA3) * r + kA4) * r + kA5) * r + kA6) * q /
         (((((kB1 * r + kB2) * r + kB3) * r + kB4) * r + kB5) * r + 1.0);
}

inline double icdf_tail(double p_tail) {
  const double q = std::sqrt(-2.0 * std::log(p_tail));
  return (((((kC1 * q + kC2) * q + kC3) * q + kC4) * q + kC5) * q + kC6) /
         ((((kD1 * q + kD2) * q + kD3) * q + kD4) * q + 1.0);
}

}  // namespace

double normal_icdf(double p) {
  if (p < kPLow) return icdf_tail(p);
  if (p > 1.0 - kPLow) return -icdf_tail(1.0 - p);
  const double q = p - 0.5;
  return icdf_central(q, q * q);
}

void fill_normal_fast(Rng& rng, double* out, std::size_t n, double mean, double sigma) {
  constexpr std::size_t kBlock = 256;
  double p[kBlock];
  std::size_t i = 0;
  while (i < n) {
    const std::size_t m = n - i < kBlock ? n - i : kBlock;
    // Serial generator pass: (u32 + 0.5) * 2^-32 lands strictly inside
    // (0, 1), so no endpoint clamping is ever needed downstream.
    for (std::size_t k = 0; k < m; ++k)
      p[k] = (static_cast<double>(rng.next_u32()) + 0.5) * 0x1.0p-32;
    // Branch-free central transform over the whole block (tail slots compute
    // a finite wrong value that the fix-up pass overwrites).
    double* __restrict o = out + i;
    for (std::size_t k = 0; k < m; ++k) {
      const double q = p[k] - 0.5;
      o[k] = mean + sigma * icdf_central(q, q * q);
    }
    // Tail fix-up: ≈4.85% of draws, branch-predictable.
    for (std::size_t k = 0; k < m; ++k) {
      if (p[k] < kPLow)
        o[k] = mean + sigma * icdf_tail(p[k]);
      else if (p[k] > 1.0 - kPLow)
        o[k] = mean - sigma * icdf_tail(1.0 - p[k]);
    }
    i += m;
  }
}

std::size_t count_quantize_errors(const double* p, std::size_t n, double lo, double window,
                                  int level, int max_level) {
  const double* __restrict pp = p;
  std::size_t errors = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double idx = (pp[i] - lo) / window + 0.5;
    // Truncating convert (cvttpd): floor would differ only for idx in
    // (-1, 0), where both quantise to a level <= 0 that the clamp pins to 0.
    int lvl = static_cast<int>(idx);
    lvl = lvl < 0 ? 0 : lvl;
    lvl = lvl > max_level ? max_level : lvl;
    errors += lvl != level ? std::size_t{1} : std::size_t{0};
  }
  return errors;
}

}  // namespace xlds::kernels
