#include "kernels/mvm.hpp"

#include <algorithm>

namespace xlds::kernels {

namespace {
// Column tiling keeps the active slice of y cache-resident while the row loop
// streams the matrix through — but each extra tile is another strided pass
// over A, which costs memory bandwidth on matrices that spill the LLC.  So
// tile only when y itself is too large to stay resident (> kMaxResidentCols
// doubles, 128 KiB); below that a single sequential pass over A wins.  The
// cutover never reorders the per-column accumulation (tiling only changes the
// loop nest), so results are bit-identical for every problem size and policy.
constexpr std::size_t kColTile = 1024;
constexpr std::size_t kMaxResidentCols = 16384;
}  // namespace

void matvec_t(const double* a, std::size_t rows, std::size_t cols, const double* x, double* y) {
  std::fill(y, y + cols, 0.0);
  const std::size_t tile = cols <= kMaxResidentCols ? cols : kColTile;
  for (std::size_t c0 = 0; c0 < cols; c0 += tile) {
    const std::size_t c1 = std::min(cols, c0 + tile);
    double* __restrict yt = y + c0;
    const std::size_t width = c1 - c0;
    // Four-row blocking: one load+store of the y slice serves four rows of A,
    // and the four products per element form independent dependency chains.
    // The fused update is a left-associative chain, so each y element sees
    // the exact same sequence of rounded additions as four sequential row
    // updates — bit-identical to the reference.  A zero input anywhere in the
    // block drops to the per-row loop: the reference skips that row entirely,
    // and adding its 0.0-products is not always a bitwise no-op (-0.0 cases).
    std::size_t r = 0;
    for (; r + 4 <= rows; r += 4) {
      const double x0 = x[r], x1 = x[r + 1], x2 = x[r + 2], x3 = x[r + 3];
      if (x0 == 0.0 || x1 == 0.0 || x2 == 0.0 || x3 == 0.0) {
        for (std::size_t rr = r; rr < r + 4; ++rr) {
          const double xr = x[rr];
          if (xr == 0.0) continue;
          const double* __restrict row = a + rr * cols + c0;
          for (std::size_t c = 0; c < width; ++c) yt[c] += row[c] * xr;
        }
        continue;
      }
      const double* __restrict r0 = a + r * cols + c0;
      const double* __restrict r1 = r0 + cols;
      const double* __restrict r2 = r1 + cols;
      const double* __restrict r3 = r2 + cols;
      for (std::size_t c = 0; c < width; ++c)
        yt[c] = (((yt[c] + r0[c] * x0) + r1[c] * x1) + r2[c] * x2) + r3[c] * x3;
    }
    for (; r < rows; ++r) {
      const double xr = x[r];
      if (xr == 0.0) continue;
      const double* __restrict row = a + r * cols + c0;
      for (std::size_t c = 0; c < width; ++c) yt[c] += row[c] * xr;
    }
  }
}

void matvec_t_ref(const double* a, std::size_t rows, std::size_t cols, const double* x,
                  double* y) {
  std::fill(y, y + cols, 0.0);
  for (std::size_t r = 0; r < rows; ++r) {
    const double xr = x[r];
    if (xr == 0.0) continue;
    const double* row = a + r * cols;
    for (std::size_t c = 0; c < cols; ++c) y[c] += row[c] * xr;
  }
}

void matvec(const double* a, std::size_t rows, std::size_t cols, const double* x, double* y) {
  for (std::size_t r = 0; r < rows; ++r) {
    const double* __restrict row = a + r * cols;
    double acc = 0.0;
    for (std::size_t c = 0; c < cols; ++c) acc += row[c] * x[c];
    y[r] = acc;
  }
}

double dot(const double* a, const double* b, std::size_t n) {
  const double* __restrict pa = a;
  const double* __restrict pb = b;
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) acc += pa[i] * pb[i];
  return acc;
}

void mul_add(const double* a, const double* b, double* y, std::size_t n) {
  const double* __restrict pa = a;
  const double* __restrict pb = b;
  double* __restrict py = y;
  for (std::size_t i = 0; i < n; ++i) py[i] += pa[i] * pb[i];
}

void scale(const double* x, double s, double* y, std::size_t n) {
  const double* __restrict px = x;
  double* __restrict py = y;
  for (std::size_t i = 0; i < n; ++i) py[i] = px[i] * s;
}

void scale_sub(const double* x, double s, const double* b, double* y, std::size_t n) {
  const double* __restrict pb = b;
  for (std::size_t i = 0; i < n; ++i) y[i] = x[i] * s - pb[i];
}

void accumulate(const double* x, double* y, std::size_t n) {
  const double* __restrict px = x;
  double* __restrict py = y;
  for (std::size_t i = 0; i < n; ++i) py[i] += px[i];
}

void diff_pairs(const double* v, std::size_t n_pairs, double s, double* out) {
  const double* __restrict pv = v;
  double* __restrict po = out;
  for (std::size_t j = 0; j < n_pairs; ++j) po[j] = (pv[2 * j] - pv[2 * j + 1]) * s;
}

}  // namespace xlds::kernels
