#include "kernels/dispatch.hpp"

namespace xlds::kernels {

const char* isa_name() noexcept {
#if defined(XLDS_KERNELS_NATIVE)
  return "native (-march=native kernel TUs)";
#elif defined(__AVX2__)
  return "portable+avx2";
#elif defined(__SSE4_2__) || defined(__POPCNT__)
  return "portable+popcnt";
#else
  return "portable";
#endif
}

bool built_native() noexcept {
#if defined(XLDS_KERNELS_NATIVE)
  return true;
#else
  return false;
#endif
}

}  // namespace xlds::kernels
