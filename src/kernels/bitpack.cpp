#include "kernels/bitpack.hpp"

#include "util/error.hpp"

namespace xlds::kernels {

namespace {

inline std::size_t popcount_words(const std::uint64_t* a, const std::uint64_t* b,
                                  std::size_t n_words) {
  // XOR + popcount over whole words; tails are zero by construction so no
  // mask is needed.  Four-way unrolled accumulators let the popcounts retire
  // in parallel instead of serialising on one running sum.
  std::size_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  std::size_t w = 0;
  for (; w + 4 <= n_words; w += 4) {
    s0 += static_cast<std::size_t>(__builtin_popcountll(a[w] ^ b[w]));
    s1 += static_cast<std::size_t>(__builtin_popcountll(a[w + 1] ^ b[w + 1]));
    s2 += static_cast<std::size_t>(__builtin_popcountll(a[w + 2] ^ b[w + 2]));
    s3 += static_cast<std::size_t>(__builtin_popcountll(a[w + 3] ^ b[w + 3]));
  }
  for (; w < n_words; ++w)
    s0 += static_cast<std::size_t>(__builtin_popcountll(a[w] ^ b[w]));
  return s0 + s1 + s2 + s3;
}

}  // namespace

PackedBits pack_signs(const double* v, std::size_t n) {
  PackedBits p;
  p.bits = n;
  p.words.assign(word_count(n), 0);
  for (std::size_t i = 0; i < n; ++i)
    if (v[i] >= 0.0) p.words[i >> 6] |= std::uint64_t{1} << (i & 63u);
  return p;
}

PackedBits pack_signs(const std::vector<double>& v) { return pack_signs(v.data(), v.size()); }

PackedBits pack_bits(const int* d, std::size_t n) {
  PackedBits p;
  p.bits = n;
  p.words.assign(word_count(n), 0);
  for (std::size_t i = 0; i < n; ++i)
    if (d[i] != 0) p.words[i >> 6] |= std::uint64_t{1} << (i & 63u);
  return p;
}

PackedBits pack_bits(const std::vector<int>& d) { return pack_bits(d.data(), d.size()); }

std::vector<int> unpack_bits(const PackedBits& p) {
  std::vector<int> out(p.bits);
  for (std::size_t i = 0; i < p.bits; ++i) out[i] = p.bit(i);
  return out;
}

std::size_t hamming(const PackedBits& a, const PackedBits& b) {
  XLDS_REQUIRE_MSG(a.bits == b.bits, "packed Hamming: " << a.bits << " vs " << b.bits << " bits");
  return popcount_words(a.words.data(), b.words.data(), a.words.size());
}

long long sign_dot(const PackedBits& a, const PackedBits& b) {
  const auto h = static_cast<long long>(hamming(a, b));
  return static_cast<long long>(a.bits) - 2 * h;
}

std::size_t hamming_ref(const double* a, const double* b, std::size_t n) {
  std::size_t d = 0;
  for (std::size_t i = 0; i < n; ++i)
    if ((a[i] >= 0.0) != (b[i] >= 0.0)) ++d;
  return d;
}

std::size_t hamming_digits_ref(const int* a, const int* b, std::size_t n) {
  std::size_t d = 0;
  for (std::size_t i = 0; i < n; ++i)
    if (a[i] != b[i]) ++d;
  return d;
}

PackedTernary pack_ternary(const int* d, std::size_t n, int dont_care) {
  PackedTernary p;
  p.value.bits = n;
  p.value.words.assign(word_count(n), 0);
  p.care.bits = n;
  p.care.words.assign(word_count(n), 0);
  for (std::size_t i = 0; i < n; ++i) {
    if (d[i] == dont_care) continue;
    p.care.words[i >> 6] |= std::uint64_t{1} << (i & 63u);
    if (d[i] != 0) p.value.words[i >> 6] |= std::uint64_t{1} << (i & 63u);
  }
  return p;
}

PackedTernary pack_ternary(const std::vector<int>& d, int dont_care) {
  return pack_ternary(d.data(), d.size(), dont_care);
}

std::size_t ternary_distance(const PackedTernary& a, const PackedTernary& b) {
  XLDS_REQUIRE_MSG(a.bits() == b.bits(),
                   "ternary distance: " << a.bits() << " vs " << b.bits() << " bits");
  const std::uint64_t* va = a.value.words.data();
  const std::uint64_t* vb = b.value.words.data();
  const std::uint64_t* ca = a.care.words.data();
  const std::uint64_t* cb = b.care.words.data();
  std::size_t d = 0;
  for (std::size_t w = 0; w < a.value.words.size(); ++w)
    d += static_cast<std::size_t>(__builtin_popcountll((va[w] ^ vb[w]) & ca[w] & cb[w]));
  return d;
}

}  // namespace xlds::kernels
