// Batched structure-of-arrays sampling on top of util::Rng.
//
// Monte-Carlo hot paths drew device variation one rng.normal()/bernoulli()
// call per cell; these kernels fill whole blocks so trial loops pay the
// generator cost once per vector, not once per element, and the consuming
// arithmetic (readback classification, fault thresholding) runs over
// contiguous arrays the compiler can vectorise.
//
// Two sequence contracts, chosen per call site:
//
//  * fill_uniform / fill_normal / fill_bernoulli consume the underlying Rng
//    EXACTLY as the equivalent per-element call loop would (same draws, same
//    order, same spare-normal caching).  Swapping a per-cell loop for one of
//    these is bit-identical — golden figure tables survive.
//
//  * fill_normal_fast defines its OWN draw sequence: one 32-bit PCG output
//    per sample mapped through a high-accuracy inverse normal CDF
//    (Acklam's rational approximation, |relative error| < 1.15e-9 — orders
//    of magnitude below any modelled device sigma).  One uniform per normal,
//    no rejection loop, branch-free central region: this is the ≥3×
//    Monte-Carlo kernel.  Deterministic (a pure function of the Rng state),
//    but NOT sequence-compatible with rng.normal(); adopt it where the
//    stream is already versioned per chunk (util::parallel_for_rng) and the
//    checksum is regenerated, never under a pinned golden value.
#pragma once

#include <cstddef>
#include <cstdint>

#include "util/rng.hpp"

namespace xlds::kernels {

/// out[i] = rng.uniform(), in call order.
void fill_uniform(Rng& rng, double* out, std::size_t n);

/// out[i] = rng.normal(mean, sigma), in call order (polar method, spare
/// cached across calls exactly as the scalar path does).
void fill_normal(Rng& rng, double* out, std::size_t n, double mean = 0.0, double sigma = 1.0);

/// out[i] = rng.bernoulli(p) ? 1 : 0, in call order.
void fill_bernoulli(Rng& rng, std::uint8_t* out, std::size_t n, double p);

/// out[i] = -log1p(-rng.uniform()) / rate: exponential inter-arrival gaps
/// with mean 1/rate, one uniform per sample, in call order (the
/// sequence-identical contract — a scalar loop drawing rng.uniform() and
/// applying the same transform produces the same bits).  log1p keeps full
/// precision for the small-u draws that dominate short gaps, and uniform()
/// never returns 1.0, so the result is always finite.
void fill_exponential(Rng& rng, double* out, std::size_t n, double rate);

/// Fast batched Gaussian block: one 32-bit draw per sample through the
/// inverse normal CDF.  Own documented sequence (see header comment).
void fill_normal_fast(Rng& rng, double* out, std::size_t n, double mean = 0.0,
                      double sigma = 1.0);

/// Acklam's inverse standard-normal CDF; the scalar core of
/// fill_normal_fast, exported for accuracy/monotonicity tests.
/// Precondition: 0 < p < 1.
double normal_icdf(double p);

/// Counting reduction over a sampled block: how many p[i] do NOT quantise to
/// `level` under uniform mid-rise binning, i.e.
///   clamp(floor((p[i] - lo) / window + 0.5), 0, max_level) != level.
/// Implemented with truncation instead of floor — identical under the clamp,
/// because every idx + 0.5 < 1 (where trunc and floor can disagree) lands at
/// or below 0 either way.  Exactly the decision rule of
/// device::FeFetModel::readback_level (which delegates its batch form here);
/// kept in the kernel layer so the division/convert loop vectorises at -O3.
std::size_t count_quantize_errors(const double* p, std::size_t n, double lo, double window,
                                  int level, int max_level);

}  // namespace xlds::kernels
