// Dense matrix-vector kernels for the crossbar / encoder hot paths.
//
// The simulator's MVMs all have the same shape: a row-major matrix A
// (conductances, projection weights) applied as y = A^T x — iterate rows,
// y[c] += A[r][c] * x[r].  These kernels keep that *exact accumulation
// order* (per output element, contributions arrive in increasing row index),
// so adopting them is bit-identical to the loops they replace — the golden
// figure tables and the util::parallel determinism contract survive.  The
// speedup comes from restrict-qualified contiguous spans (the compiler can
// finally vectorise: the aliasing of `out` against `g` was the blocker),
// column tiling that keeps the active slice of y in L1 for wide
// hypervector-sized outputs, and skipping all-zero input rows.
//
// kernels::matvec_t_ref is the untiled naive loop — the scalar reference the
// tests and the bench-smoke gate compare against (equal results, slower).
#pragma once

#include <cstddef>

namespace xlds::kernels {

/// y = A^T x for row-major A[rows x cols]: y[c] = sum_r A[r][c] * x[r].
/// y is fully overwritten.  Rows with x[r] == 0.0 are skipped (exact: a zero
/// input contributes +0.0 to every column).
void matvec_t(const double* a, std::size_t rows, std::size_t cols, const double* x, double* y);

/// Scalar reference for matvec_t (same accumulation order, no tiling).
void matvec_t_ref(const double* a, std::size_t rows, std::size_t cols, const double* x,
                  double* y);

/// y = A x for row-major A[rows x cols]: y[r] = dot(A[r], x).
void matvec(const double* a, std::size_t rows, std::size_t cols, const double* x, double* y);

/// Strict left-to-right dot product (single accumulator — the exact order the
/// scalar similarity loops used, so scores stay bit-identical).
double dot(const double* a, const double* b, std::size_t n);

/// y[i] += a[i] * b[i] — the bind-and-bundle inner loop of ID×LEVEL encoding.
void mul_add(const double* a, const double* b, double* y, std::size_t n);

/// y[i] = x[i] * s.
void scale(const double* x, double s, double* y, std::size_t n);

/// y[i] = x[i] * s - b[i] — fused scale-and-bias-subtract (analog encode
/// readout: digital removal of the mean-projection term).  In-place safe for
/// y == x (b must not alias).
void scale_sub(const double* x, double s, const double* b, double* y, std::size_t n);

/// y[i] += x[i] — tile-partial accumulation (TiledCrossbar reduce).
void accumulate(const double* x, double* y, std::size_t n);

/// out[j] = (v[2j] - v[2j+1]) * s — differential column-pair reduction.
void diff_pairs(const double* v, std::size_t n_pairs, double s, double* out);

}  // namespace xlds::kernels
