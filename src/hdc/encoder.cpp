#include "hdc/encoder.hpp"

#include <algorithm>
#include <cmath>

#include "kernels/mvm.hpp"
#include "util/error.hpp"

namespace xlds::hdc {

HdcEncoder::HdcEncoder(std::size_t input_dim, std::size_t hv_dim, Rng& rng)
    : input_dim_(input_dim), hv_dim_(hv_dim), p_(input_dim, hv_dim) {
  XLDS_REQUIRE(input_dim >= 1 && hv_dim >= 1);
  for (double& v : p_.data()) v = rng.bernoulli(0.5) ? 1.0 : -1.0;
}

std::vector<double> HdcEncoder::encode(const std::vector<double>& x) const {
  XLDS_REQUIRE_MSG(x.size() == input_dim_, "encode: input " << x.size() << " != " << input_dim_);
  std::vector<double> y(hv_dim_);
  kernels::matvec_t(p_.data().data(), input_dim_, hv_dim_, x.data(), y.data());
  const double scale = 1.0 / std::sqrt(static_cast<double>(input_dim_));
  for (double& v : y) v *= scale;
  return y;
}

IdLevelEncoder::IdLevelEncoder(std::size_t input_dim, std::size_t hv_dim,
                               std::size_t quant_levels, Rng& rng, double lo, double hi)
    : input_dim_(input_dim), hv_dim_(hv_dim), quant_levels_(quant_levels), lo_(lo), hi_(hi) {
  XLDS_REQUIRE(input_dim >= 1 && hv_dim >= 8);
  XLDS_REQUIRE(quant_levels >= 2);
  XLDS_REQUIRE(hi > lo);

  ids_.resize(input_dim_);
  for (auto& id : ids_) {
    id.resize(hv_dim_);
    for (double& v : id) v = rng.bernoulli(0.5) ? 1.0 : -1.0;
  }

  // Flip construction: L0 is random; each subsequent level flips a fresh
  // slice, with hv_dim/2 elements flipped in total across the range, so L0
  // and L_{max} end up ~orthogonal while neighbours stay maximally similar.
  levels_.resize(quant_levels_);
  levels_[0].resize(hv_dim_);
  for (double& v : levels_[0]) v = rng.bernoulli(0.5) ? 1.0 : -1.0;
  const std::vector<std::size_t> flip_order = rng.permutation(hv_dim_);
  const std::size_t total_flips = hv_dim_ / 2;
  const std::size_t per_level = total_flips / (quant_levels_ - 1);
  for (std::size_t l = 1; l < quant_levels_; ++l) {
    levels_[l] = levels_[l - 1];
    const std::size_t begin = (l - 1) * per_level;
    const std::size_t end = l + 1 == quant_levels_ ? total_flips : begin + per_level;
    for (std::size_t i = begin; i < end && i < hv_dim_; ++i)
      levels_[l][flip_order[i]] = -levels_[l][flip_order[i]];
  }
}

std::size_t IdLevelEncoder::level_of(double v) const {
  const double t = std::clamp((v - lo_) / (hi_ - lo_), 0.0, 1.0);
  return std::min(static_cast<std::size_t>(t * static_cast<double>(quant_levels_)),
                  quant_levels_ - 1);
}

double IdLevelEncoder::level_similarity(std::size_t a, std::size_t b) const {
  XLDS_REQUIRE(a < quant_levels_ && b < quant_levels_);
  std::size_t same = 0;
  for (std::size_t i = 0; i < hv_dim_; ++i)
    if (levels_[a][i] == levels_[b][i]) ++same;
  return static_cast<double>(same) / static_cast<double>(hv_dim_);
}

std::vector<double> IdLevelEncoder::encode(const std::vector<double>& x) const {
  XLDS_REQUIRE_MSG(x.size() == input_dim_, "encode: input " << x.size() << " != " << input_dim_);
  std::vector<double> y(hv_dim_, 0.0);
  for (std::size_t f = 0; f < input_dim_; ++f) {
    const auto& level = levels_[level_of(x[f])];
    kernels::mul_add(ids_[f].data(), level.data(), y.data(), hv_dim_);
  }
  const double scale = 1.0 / std::sqrt(static_cast<double>(input_dim_));
  for (double& v : y) v *= scale;
  return y;
}

ElementQuantiser::ElementQuantiser(int bits, double range) : bits_(bits), range_(range) {
  XLDS_REQUIRE(bits >= 1 && bits <= 16);
  XLDS_REQUIRE(range > 0.0);
}

int ElementQuantiser::digit(double v) const {
  const int n = levels();
  const double t = (std::clamp(v, -range_, range_) + range_) / (2.0 * range_);
  const int d = static_cast<int>(t * n);
  return std::clamp(d, 0, n - 1);
}

std::vector<int> ElementQuantiser::digits(const std::vector<double>& v) const {
  std::vector<int> out(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) out[i] = digit(v[i]);
  return out;
}

double ElementQuantiser::value(int d) const {
  XLDS_REQUIRE(d >= 0 && d < levels());
  const double bucket = 2.0 * range_ / static_cast<double>(levels());
  return -range_ + (static_cast<double>(d) + 0.5) * bucket;
}

}  // namespace xlds::hdc
