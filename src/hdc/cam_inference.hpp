// Hardware-mapped HDC inference: the associative-search stage of a trained
// HdcModel executed on the FeFET MCAM simulator (Sec. III).
//
// Class hypervectors are written into a subarray-partitioned CAM; queries
// are quantised to CAM digits and searched.  All the hardware effects the
// paper studies flow through here: programming variation (Fig. 3G-ii),
// subarray aggregation error (Fig. 3F), sensing quantisation, and the
// search latency/energy that feed the platform comparison (Fig. 3H).
#pragma once

#include <cstddef>
#include <vector>

#include <optional>

#include "cam/partitioned.hpp"
#include "hdc/model.hpp"
#include "util/rng.hpp"
#include "xbar/tiled.hpp"

namespace xlds::hdc {

struct CamInferenceConfig {
  cam::FeFetCamConfig subarray;  ///< per-subarray geometry; fefet.bits must
                                 ///< match the model's element_bits
  cam::Aggregation aggregation = cam::Aggregation::kVote;
  /// Encode on analog crossbar tiles instead of in software (the Fig. 2D
  /// path): the bipolar projection is programmed onto differential tiles;
  /// the mean-projection offset is subtracted digitally.  Requires the
  /// model's encoder to be the random-projection kind.
  bool analog_encode = false;
  xbar::TiledConfig encoder_tiles;  ///< tile geometry/non-idealities
};

class HdcCamInference {
 public:
  /// Builds the partitioned CAM and programs every class hypervector.
  HdcCamInference(const HdcModel& model, CamInferenceConfig config, Rng& rng);

  /// Classify an input end-to-end (software encode, CAM search).
  std::size_t classify(const std::vector<double>& x) const;

  /// Majority-of-`votes` classification (odd; 1 = single search) — the
  /// match-line re-query degradation policy.  Ties break toward the lowest
  /// class index.
  std::size_t classify(const std::vector<double>& x, std::size_t votes) const;

  double accuracy(const std::vector<std::vector<double>>& xs,
                  const std::vector<std::size_t>& ys) const;

  double accuracy(const std::vector<std::vector<double>>& xs,
                  const std::vector<std::size_t>& ys, std::size_t votes) const;

  /// Quantised query digits for a batch of inputs [batch x input_dim].  With
  /// the analog encoder the projections run through the tile fleet's batched
  /// MVM — parallel across tiles yet bit-identical to per-row encodes at any
  /// thread count; the CAM search stage stays per-query (it consumes the CAM
  /// sense-noise RNG, which must advance in request order).
  std::vector<std::vector<int>> query_digits_batch(const MatrixD& xs) const;

  /// Associative search over pre-encoded query digits, majority of `votes`
  /// (odd; ties break toward the lowest class index) — lets a serving loop
  /// split the batched encode from the sequential search stage.
  std::size_t classify_digits(const std::vector<int>& q, std::size_t votes = 1) const;

  /// Re-program every class hypervector into the CAM from the trained model
  /// (the recalibration refresh: programming resets retention drift).
  /// Returns the number of CAM cells rewritten.
  std::size_t rewrite_class_words();

  /// Inject defects into the underlying partitioned CAM (see
  /// cam::PartitionedCam::inject_faults).
  fault::FaultInjectionStats inject_faults(const fault::FaultSpec& spec,
                                           const fault::GracefulPolicies& policies, Rng& rng);

  /// Apply `dt` seconds of device aging: FeFET retention loss in the CAM
  /// arrays, plus RRAM conductance relaxation in the analog encoder tiles
  /// when the analog path is enabled.
  void age(double dt);

  /// Circuit cost of one query's associative search.
  cam::SearchCost search_cost() const;

  /// Cost of one analog encode (zero-cost when encoding in software —
  /// callers then use the platform models for the digital encode).
  xbar::MvmCost encode_cost() const;

  std::size_t segments() const noexcept { return cam_.segments(); }
  bool analog_encode() const noexcept { return encoder_.has_value(); }

  /// The analog encoder tile fleet (only valid when analog_encode() is true)
  /// — recalibration controllers diff its conductances against a golden
  /// snapshot and patch drifted cells via Crossbar::program_cells.
  xbar::TiledCrossbar& encoder_tiles() { return *encoder_; }
  const xbar::TiledCrossbar& encoder_tiles() const { return *encoder_; }

 private:
  std::vector<int> query_digits(const std::vector<double>& x) const;

  const HdcModel& model_;
  CamInferenceConfig config_;
  cam::PartitionedCam cam_;
  std::optional<xbar::TiledCrossbar> encoder_;
  std::vector<double> encode_bias_;  ///< projection of the feature mean
};

}  // namespace xlds::hdc
