#include "hdc/model.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/stats.hpp"

namespace xlds::hdc {

namespace {
std::unique_ptr<Encoder> make_encoder(const HdcConfig& config, std::size_t input_dim, Rng& rng) {
  switch (config.encoder) {
    case EncoderKind::kRandomProjection:
      return std::make_unique<HdcEncoder>(input_dim, config.hv_dim, rng);
    case EncoderKind::kIdLevel:
      // Inputs arrive centred (per-dimension mean removed): level HVs span a
      // symmetric band around zero.
      // Inputs arrive z-scored for this encoder: +-3 sigma covers the range.
      return std::make_unique<IdLevelEncoder>(input_dim, config.hv_dim, config.id_level_quant,
                                              rng, -3.0, 3.0);
  }
  XLDS_ASSERT(false);
}
}  // namespace

HdcModel::HdcModel(HdcConfig config, std::size_t input_dim, std::size_t n_classes, Rng& rng)
    : config_(config),
      n_classes_(n_classes),
      encoder_(make_encoder(config, input_dim, rng)),
      acc_(n_classes, std::vector<double>(config.hv_dim, 0.0)),
      acc_scale_(n_classes, 0.0),
      digits_(n_classes) {
  XLDS_REQUIRE(n_classes >= 2);
  XLDS_REQUIRE(config_.hv_dim >= 8);
  XLDS_REQUIRE(config_.element_bits >= 1 && config_.element_bits <= 16);
}

ElementQuantiser HdcModel::quantiser() const {
  return ElementQuantiser(config_.element_bits, quant_range_);
}

void HdcModel::refresh_quantiser() {
  const ElementQuantiser q(config_.element_bits, quant_range_);
  for (std::size_t cls = 0; cls < n_classes_; ++cls) {
    const double scale = std::max(acc_scale_[cls], 1.0);
    std::vector<int>& d = digits_[cls];
    d.resize(config_.hv_dim);
    for (std::size_t i = 0; i < config_.hv_dim; ++i) d[i] = q.digit(acc_[cls][i] / scale);
  }
}

std::vector<double> HdcModel::centred(const std::vector<double>& x) const {
  XLDS_REQUIRE_MSG(x.size() == feature_mean_.size(), "feature width mismatch");
  std::vector<double> out(x.size());
  const bool zscore = config_.encoder == EncoderKind::kIdLevel;
  for (std::size_t d = 0; d < x.size(); ++d) {
    out[d] = x[d] - feature_mean_[d];
    if (zscore) out[d] *= feature_inv_std_[d];
  }
  return out;
}

void HdcModel::train(const std::vector<std::vector<double>>& xs,
                     const std::vector<std::size_t>& ys) {
  XLDS_REQUIRE(xs.size() == ys.size());
  XLDS_REQUIRE(!xs.empty());

  // Pass 0: per-dimension feature mean (the encoder centres on it).
  feature_mean_.assign(xs.front().size(), 0.0);
  for (const auto& x : xs) {
    XLDS_REQUIRE(x.size() == feature_mean_.size());
    for (std::size_t d = 0; d < x.size(); ++d) feature_mean_[d] += x[d];
  }
  for (double& m : feature_mean_) m /= static_cast<double>(xs.size());
  std::vector<double> var(feature_mean_.size(), 0.0);
  for (const auto& x : xs)
    for (std::size_t d = 0; d < x.size(); ++d) {
      const double delta = x[d] - feature_mean_[d];
      var[d] += delta * delta;
    }
  feature_inv_std_.assign(feature_mean_.size(), 1.0);
  for (std::size_t d = 0; d < var.size(); ++d) {
    const double sd = std::sqrt(var[d] / static_cast<double>(xs.size()));
    feature_inv_std_[d] = sd > 1e-12 ? 1.0 / sd : 1.0;
  }

  // Pass 1: bundle and collect element statistics for the quantiser range.
  std::vector<std::vector<double>> encoded(xs.size());
  RunningStats element_stats;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    XLDS_REQUIRE(ys[i] < n_classes_);
    encoded[i] = encoder_->encode(centred(xs[i]));
    for (double v : encoded[i]) element_stats.add(v);
    auto& a = acc_[ys[i]];
    for (std::size_t d = 0; d < config_.hv_dim; ++d) a[d] += encoded[i][d];
    acc_scale_[ys[i]] += 1.0;
  }
  quant_range_ = std::max(3.0 * element_stats.stddev(), 1e-9);
  trained_ = true;
  refresh_quantiser();

  // Perceptron-style retraining on the quantised model.
  const ElementQuantiser q(config_.element_bits, quant_range_);
  for (std::size_t epoch = 0; epoch < config_.retrain_epochs; ++epoch) {
    std::size_t errors = 0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
      const std::size_t pred = classify_encoded(encoded[i]);
      if (pred == ys[i]) continue;
      ++errors;
      auto& good = acc_[ys[i]];
      auto& bad = acc_[pred];
      for (std::size_t d = 0; d < config_.hv_dim; ++d) {
        good[d] += config_.retrain_rate * encoded[i][d];
        bad[d] -= config_.retrain_rate * encoded[i][d];
      }
      acc_scale_[ys[i]] += config_.retrain_rate;
      acc_scale_[pred] = std::max(1.0, acc_scale_[pred] - config_.retrain_rate);
      // Only the two touched classes need requantising.
      for (std::size_t cls : {ys[i], pred}) {
        const double scale = std::max(acc_scale_[cls], 1.0);
        for (std::size_t d = 0; d < config_.hv_dim; ++d)
          digits_[cls][d] = q.digit(acc_[cls][d] / scale);
      }
    }
    if (errors == 0) break;
  }
}

namespace {
double cosine(const std::vector<double>& a, const std::vector<double>& b) {
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    dot += a[i] * b[i];
    na += a[i] * a[i];
    nb += b[i] * b[i];
  }
  if (na == 0.0 || nb == 0.0) return 0.0;
  return dot / std::sqrt(na * nb);
}
}  // namespace

std::size_t HdcModel::classify_encoded(const std::vector<double>& y) const {
  XLDS_REQUIRE_MSG(trained_, "classify before train()");
  const ElementQuantiser q(config_.element_bits, quant_range_);
  std::size_t best = 0;
  double best_score = -HUGE_VAL;
  switch (config_.similarity) {
    case Similarity::kCosineReal: {
      for (std::size_t cls = 0; cls < n_classes_; ++cls) {
        const double scale = std::max(acc_scale_[cls], 1.0);
        std::vector<double> m(config_.hv_dim);
        for (std::size_t d = 0; d < config_.hv_dim; ++d) m[d] = acc_[cls][d] / scale;
        const double s = cosine(y, m);
        if (s > best_score) {
          best_score = s;
          best = cls;
        }
      }
      break;
    }
    case Similarity::kCosineQuantised: {
      const std::vector<int> qd = q.digits(y);
      std::vector<double> qv(config_.hv_dim);
      for (std::size_t d = 0; d < config_.hv_dim; ++d) qv[d] = q.value(qd[d]);
      for (std::size_t cls = 0; cls < n_classes_; ++cls) {
        std::vector<double> cv(config_.hv_dim);
        for (std::size_t d = 0; d < config_.hv_dim; ++d) cv[d] = q.value(digits_[cls][d]);
        const double s = cosine(qv, cv);
        if (s > best_score) {
          best_score = s;
          best = cls;
        }
      }
      break;
    }
    case Similarity::kSquaredEuclideanDigits: {
      const std::vector<int> qd = q.digits(y);
      for (std::size_t cls = 0; cls < n_classes_; ++cls) {
        double dist = 0.0;
        for (std::size_t d = 0; d < config_.hv_dim; ++d) {
          const double delta = static_cast<double>(qd[d] - digits_[cls][d]);
          dist += delta * delta;
        }
        if (-dist > best_score) {
          best_score = -dist;
          best = cls;
        }
      }
      break;
    }
  }
  return best;
}

std::size_t HdcModel::classify(const std::vector<double>& x) const {
  XLDS_REQUIRE_MSG(trained_, "classify before train()");
  return classify_encoded(encoder_->encode(centred(x)));
}

double HdcModel::accuracy(const std::vector<std::vector<double>>& xs,
                          const std::vector<std::size_t>& ys) const {
  XLDS_REQUIRE(xs.size() == ys.size());
  XLDS_REQUIRE(!xs.empty());
  std::size_t correct = 0;
  for (std::size_t i = 0; i < xs.size(); ++i)
    if (classify(xs[i]) == ys[i]) ++correct;
  return static_cast<double>(correct) / static_cast<double>(xs.size());
}

std::vector<int> HdcModel::class_digits(std::size_t cls) const {
  XLDS_REQUIRE_MSG(trained_, "class_digits before train()");
  XLDS_REQUIRE(cls < n_classes_);
  return digits_[cls];
}

std::vector<int> HdcModel::query_digits(const std::vector<double>& x) const {
  XLDS_REQUIRE_MSG(trained_, "query_digits before train()");
  const ElementQuantiser q(config_.element_bits, quant_range_);
  return q.digits(encoder_->encode(centred(x)));
}

const std::vector<double>& HdcModel::class_accumulator(std::size_t cls) const {
  XLDS_REQUIRE(cls < n_classes_);
  return acc_[cls];
}

}  // namespace xlds::hdc
