#include "hdc/model.hpp"

#include <algorithm>
#include <cmath>

#include "kernels/bitpack.hpp"
#include "kernels/mvm.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"

namespace xlds::hdc {

namespace {
std::unique_ptr<Encoder> make_encoder(const HdcConfig& config, std::size_t input_dim, Rng& rng) {
  switch (config.encoder) {
    case EncoderKind::kRandomProjection:
      return std::make_unique<HdcEncoder>(input_dim, config.hv_dim, rng);
    case EncoderKind::kIdLevel:
      // Inputs arrive centred (per-dimension mean removed): level HVs span a
      // symmetric band around zero.
      // Inputs arrive z-scored for this encoder: +-3 sigma covers the range.
      return std::make_unique<IdLevelEncoder>(input_dim, config.hv_dim, config.id_level_quant,
                                              rng, -3.0, 3.0);
  }
  XLDS_ASSERT(false);
}
}  // namespace

HdcModel::HdcModel(HdcConfig config, std::size_t input_dim, std::size_t n_classes, Rng& rng)
    : config_(config),
      n_classes_(n_classes),
      encoder_(make_encoder(config, input_dim, rng)),
      acc_(n_classes, std::vector<double>(config.hv_dim, 0.0)),
      acc_scale_(n_classes, 0.0),
      digits_(n_classes),
      unit_(n_classes),
      unit_norm2_(n_classes, 0.0),
      dequant_(n_classes),
      dequant_norm2_(n_classes, 0.0),
      packed_digits_(n_classes) {
  XLDS_REQUIRE(n_classes >= 2);
  XLDS_REQUIRE(config_.hv_dim >= 8);
  XLDS_REQUIRE(config_.element_bits >= 1 && config_.element_bits <= 16);
}

ElementQuantiser HdcModel::quantiser() const {
  return ElementQuantiser(config_.element_bits, quant_range_);
}

void HdcModel::refresh_quantiser() {
  for (std::size_t cls = 0; cls < n_classes_; ++cls) refresh_class_cache(cls);
}

void HdcModel::refresh_class_cache(std::size_t cls) {
  const ElementQuantiser q(config_.element_bits, quant_range_);
  const double scale = std::max(acc_scale_[cls], 1.0);
  std::vector<int>& d = digits_[cls];
  d.resize(config_.hv_dim);
  for (std::size_t i = 0; i < config_.hv_dim; ++i) d[i] = q.digit(acc_[cls][i] / scale);
  switch (config_.similarity) {
    case Similarity::kCosineReal: {
      // Same division and the same i-ascending squared-sum order the query
      // loop used, so the cached norm equals what cosine() recomputed.
      std::vector<double>& m = unit_[cls];
      m.resize(config_.hv_dim);
      double n2 = 0.0;
      for (std::size_t i = 0; i < config_.hv_dim; ++i) {
        m[i] = acc_[cls][i] / scale;
        n2 += m[i] * m[i];
      }
      unit_norm2_[cls] = n2;
      break;
    }
    case Similarity::kCosineQuantised: {
      std::vector<double>& cv = dequant_[cls];
      cv.resize(config_.hv_dim);
      double n2 = 0.0;
      for (std::size_t i = 0; i < config_.hv_dim; ++i) {
        cv[i] = q.value(d[i]);
        n2 += cv[i] * cv[i];
      }
      dequant_norm2_[cls] = n2;
      break;
    }
    case Similarity::kSquaredEuclideanDigits:
      // Binary digits compare by Hamming distance (delta^2 is 0 or 1), so
      // the CAM-native metric runs on packed words.
      if (config_.element_bits == 1) packed_digits_[cls] = kernels::pack_bits(d);
      break;
  }
}

std::vector<double> HdcModel::centred(const std::vector<double>& x) const {
  XLDS_REQUIRE_MSG(x.size() == feature_mean_.size(), "feature width mismatch");
  std::vector<double> out(x.size());
  const bool zscore = config_.encoder == EncoderKind::kIdLevel;
  for (std::size_t d = 0; d < x.size(); ++d) {
    out[d] = x[d] - feature_mean_[d];
    if (zscore) out[d] *= feature_inv_std_[d];
  }
  return out;
}

void HdcModel::train(const std::vector<std::vector<double>>& xs,
                     const std::vector<std::size_t>& ys) {
  XLDS_REQUIRE(xs.size() == ys.size());
  XLDS_REQUIRE(!xs.empty());

  // Pass 0: per-dimension feature mean (the encoder centres on it).
  feature_mean_.assign(xs.front().size(), 0.0);
  for (const auto& x : xs) {
    XLDS_REQUIRE(x.size() == feature_mean_.size());
    for (std::size_t d = 0; d < x.size(); ++d) feature_mean_[d] += x[d];
  }
  for (double& m : feature_mean_) m /= static_cast<double>(xs.size());
  std::vector<double> var(feature_mean_.size(), 0.0);
  for (const auto& x : xs)
    for (std::size_t d = 0; d < x.size(); ++d) {
      const double delta = x[d] - feature_mean_[d];
      var[d] += delta * delta;
    }
  feature_inv_std_.assign(feature_mean_.size(), 1.0);
  for (std::size_t d = 0; d < var.size(); ++d) {
    const double sd = std::sqrt(var[d] / static_cast<double>(xs.size()));
    feature_inv_std_[d] = sd > 1e-12 ? 1.0 / sd : 1.0;
  }

  // Pass 1: bundle and collect element statistics for the quantiser range.
  std::vector<std::vector<double>> encoded(xs.size());
  RunningStats element_stats;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    XLDS_REQUIRE(ys[i] < n_classes_);
    encoded[i] = encoder_->encode(centred(xs[i]));
    for (double v : encoded[i]) element_stats.add(v);
    auto& a = acc_[ys[i]];
    for (std::size_t d = 0; d < config_.hv_dim; ++d) a[d] += encoded[i][d];
    acc_scale_[ys[i]] += 1.0;
  }
  quant_range_ = std::max(3.0 * element_stats.stddev(), 1e-9);
  trained_ = true;
  refresh_quantiser();

  // Perceptron-style retraining on the quantised model.
  for (std::size_t epoch = 0; epoch < config_.retrain_epochs; ++epoch) {
    std::size_t errors = 0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
      const std::size_t pred = classify_encoded(encoded[i]);
      if (pred == ys[i]) continue;
      ++errors;
      auto& good = acc_[ys[i]];
      auto& bad = acc_[pred];
      for (std::size_t d = 0; d < config_.hv_dim; ++d) {
        good[d] += config_.retrain_rate * encoded[i][d];
        bad[d] -= config_.retrain_rate * encoded[i][d];
      }
      acc_scale_[ys[i]] += config_.retrain_rate;
      acc_scale_[pred] = std::max(1.0, acc_scale_[pred] - config_.retrain_rate);
      // Only the two touched classes need requantising (and re-caching).
      for (std::size_t cls : {ys[i], pred}) refresh_class_cache(cls);
    }
    if (errors == 0) break;
  }
}

namespace {
// Cosine against a cached class vector whose squared norm is precomputed.
// The dot, the query-norm sum and the cached-norm sum all accumulate in
// ascending index order with independent accumulators — exactly what the old
// three-way fused loop produced — so the score is bit-identical.
double cosine_cached(const std::vector<double>& a, double na, const std::vector<double>& b,
                     double nb) {
  if (na == 0.0 || nb == 0.0) return 0.0;
  return kernels::dot(a.data(), b.data(), a.size()) / std::sqrt(na * nb);
}

double norm2(const std::vector<double>& v) {
  double n2 = 0.0;
  for (double x : v) n2 += x * x;
  return n2;
}
}  // namespace

std::size_t HdcModel::classify_encoded(const std::vector<double>& y) const {
  XLDS_REQUIRE_MSG(trained_, "classify before train()");
  const ElementQuantiser q(config_.element_bits, quant_range_);
  std::size_t best = 0;
  double best_score = -HUGE_VAL;
  switch (config_.similarity) {
    case Similarity::kCosineReal: {
      const double na = norm2(y);  // once per query, not once per class
      for (std::size_t cls = 0; cls < n_classes_; ++cls) {
        const double s = cosine_cached(y, na, unit_[cls], unit_norm2_[cls]);
        if (s > best_score) {
          best_score = s;
          best = cls;
        }
      }
      break;
    }
    case Similarity::kCosineQuantised: {
      const std::vector<int> qd = q.digits(y);
      std::vector<double> qv(config_.hv_dim);
      for (std::size_t d = 0; d < config_.hv_dim; ++d) qv[d] = q.value(qd[d]);
      const double na = norm2(qv);
      for (std::size_t cls = 0; cls < n_classes_; ++cls) {
        const double s = cosine_cached(qv, na, dequant_[cls], dequant_norm2_[cls]);
        if (s > best_score) {
          best_score = s;
          best = cls;
        }
      }
      break;
    }
    case Similarity::kSquaredEuclideanDigits: {
      const std::vector<int> qd = q.digits(y);
      if (config_.element_bits == 1) {
        // Binary digits: squared-Euclidean is Hamming (delta^2 is 0 or 1) and
        // both sums are exact small integers, so the packed path picks the
        // same argmin with the same first-wins tie handling.
        const kernels::PackedBits pq = kernels::pack_bits(qd);
        for (std::size_t cls = 0; cls < n_classes_; ++cls) {
          const double dist = static_cast<double>(kernels::hamming(pq, packed_digits_[cls]));
          if (-dist > best_score) {
            best_score = -dist;
            best = cls;
          }
        }
        break;
      }
      for (std::size_t cls = 0; cls < n_classes_; ++cls) {
        const int* __restrict pd = digits_[cls].data();
        const int* __restrict pq = qd.data();
        double dist = 0.0;
        for (std::size_t d = 0; d < config_.hv_dim; ++d) {
          const double delta = static_cast<double>(pq[d] - pd[d]);
          dist += delta * delta;
        }
        if (-dist > best_score) {
          best_score = -dist;
          best = cls;
        }
      }
      break;
    }
  }
  return best;
}

std::size_t HdcModel::classify(const std::vector<double>& x) const {
  XLDS_REQUIRE_MSG(trained_, "classify before train()");
  return classify_encoded(encoder_->encode(centred(x)));
}

double HdcModel::accuracy(const std::vector<std::vector<double>>& xs,
                          const std::vector<std::size_t>& ys) const {
  XLDS_REQUIRE(xs.size() == ys.size());
  XLDS_REQUIRE(!xs.empty());
  std::size_t correct = 0;
  for (std::size_t i = 0; i < xs.size(); ++i)
    if (classify(xs[i]) == ys[i]) ++correct;
  return static_cast<double>(correct) / static_cast<double>(xs.size());
}

std::vector<int> HdcModel::class_digits(std::size_t cls) const {
  XLDS_REQUIRE_MSG(trained_, "class_digits before train()");
  XLDS_REQUIRE(cls < n_classes_);
  return digits_[cls];
}

std::vector<int> HdcModel::query_digits(const std::vector<double>& x) const {
  XLDS_REQUIRE_MSG(trained_, "query_digits before train()");
  const ElementQuantiser q(config_.element_bits, quant_range_);
  return q.digits(encoder_->encode(centred(x)));
}

const std::vector<double>& HdcModel::class_accumulator(std::size_t cls) const {
  XLDS_REQUIRE(cls < n_classes_);
  return acc_[cls];
}

}  // namespace xlds::hdc
