// Hyperdimensional-computing encoder (Sec. III, Fig. 3A).
//
// Random-projection encoding: a fixed bipolar (+1/-1) matrix P maps an
// input feature vector x to a hypervector y = P x / sqrt(F).  Bipolar
// projections are exactly what an analog crossbar realises with differential
// columns, so the same encoder can run in software or be programmed onto the
// xbar module (the "MVM operations for encoding can be performed with
// crossbar arrays" path of the case study).
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "util/matrix.hpp"
#include "util/rng.hpp"

namespace xlds::hdc {

/// Interface shared by the encoding schemes (Fig. 3A's "encoding module").
class Encoder {
 public:
  virtual ~Encoder() = default;

  virtual std::size_t input_dim() const = 0;
  virtual std::size_t hv_dim() const = 0;

  /// Real-valued hypervector for a feature vector.
  virtual std::vector<double> encode(const std::vector<double>& x) const = 0;

  /// Equivalent MAC count of one encode (for the architecture models).
  virtual std::size_t macs() const = 0;
};

class HdcEncoder final : public Encoder {
 public:
  HdcEncoder(std::size_t input_dim, std::size_t hv_dim, Rng& rng);

  std::size_t input_dim() const override { return input_dim_; }
  std::size_t hv_dim() const override { return hv_dim_; }

  /// Real-valued hypervector: y = P x / sqrt(input_dim).
  std::vector<double> encode(const std::vector<double>& x) const override;

  /// The projection matrix as signed weights in [-1, 1] (rows = input_dim,
  /// cols = hv_dim) — directly programmable into a TiledCrossbar.
  const MatrixD& projection() const noexcept { return p_; }

  std::size_t macs() const override { return input_dim_ * hv_dim_; }

 private:
  std::size_t input_dim_;
  std::size_t hv_dim_;
  MatrixD p_;  ///< [input_dim x hv_dim], entries +1/-1
};

/// Record-based (ID-level) encoding, the other canonical HDC scheme: each
/// feature gets a random bipolar *identity* hypervector; each feature value
/// selects a *level* hypervector from a flip-interpolated family (nearby
/// values share most elements); the record is the sum of ID (x) LEVEL binds.
/// Bind is elementwise multiply, so the whole encode is add/multiply only —
/// the scheme hardware prefers when no MVM engine is available.
class IdLevelEncoder final : public Encoder {
 public:
  /// `quant_levels` level hypervectors span the [lo, hi] input range.
  IdLevelEncoder(std::size_t input_dim, std::size_t hv_dim, std::size_t quant_levels, Rng& rng,
                 double lo = 0.0, double hi = 1.0);

  std::size_t input_dim() const override { return input_dim_; }
  std::size_t hv_dim() const override { return hv_dim_; }

  std::vector<double> encode(const std::vector<double>& x) const override;

  std::size_t macs() const override { return input_dim_ * hv_dim_; }

  /// Level index a value maps to (clamped).
  std::size_t level_of(double v) const;

  /// Hamming similarity between two level hypervectors — nearby levels must
  /// be similar (the property the flip construction guarantees).
  double level_similarity(std::size_t a, std::size_t b) const;

 private:
  std::size_t input_dim_;
  std::size_t hv_dim_;
  std::size_t quant_levels_;
  double lo_, hi_;
  std::vector<std::vector<double>> ids_;     ///< [input_dim][hv_dim], +-1
  std::vector<std::vector<double>> levels_;  ///< [quant_levels][hv_dim], +-1
};

/// Uniform quantiser for hypervector elements: maps reals in [-range, range]
/// to integer digits [0, 2^bits - 1] (clamping outside the range).  The HDC
/// precision studies (Fig. 3C) sweep `bits`.
class ElementQuantiser {
 public:
  ElementQuantiser(int bits, double range);

  int bits() const noexcept { return bits_; }
  int levels() const noexcept { return 1 << bits_; }
  double range() const noexcept { return range_; }

  int digit(double v) const;
  std::vector<int> digits(const std::vector<double>& v) const;

  /// Centre value of a digit's bucket (dequantisation).
  double value(int digit) const;

 private:
  int bits_;
  double range_;
};

}  // namespace xlds::hdc
