// Trainable HDC classifier (Sec. III).
//
// Training bundles (sums) the encoded hypervectors of each class into a real
// class accumulator, optionally refined by perceptron-style retraining
// epochs (misclassified samples are added to the correct class and
// subtracted from the confused one — the standard HDC recipe the case-study
// literature uses to reach iso-accuracy at low precision).  For inference,
// both the class hypervectors and the query are quantised to a configurable
// element precision; similarity is either cosine (the GPU baseline) or
// negative squared-Euclidean distance on digits (what the FeFET MCAM
// computes, Fig. 3D).
#pragma once

#include <cstddef>
#include <vector>

#include "hdc/encoder.hpp"
#include "kernels/bitpack.hpp"
#include "util/rng.hpp"
#include "workload/dataset.hpp"

namespace xlds::hdc {

enum class Similarity {
  kCosineReal,       ///< cosine on full-precision hypervectors (software baseline)
  kCosineQuantised,  ///< cosine on dequantised digits
  kSquaredEuclideanDigits,  ///< -SE distance on digits (CAM-native)
};

enum class EncoderKind {
  kRandomProjection,  ///< bipolar MVM — the crossbar-mappable scheme
  kIdLevel,           ///< record-based ID (x) LEVEL binding — MVM-free
};

struct HdcConfig {
  std::size_t hv_dim = 4096;
  int element_bits = 3;     ///< class-HV / query element precision
  std::size_t retrain_epochs = 3;
  double retrain_rate = 1.0;
  Similarity similarity = Similarity::kSquaredEuclideanDigits;
  EncoderKind encoder = EncoderKind::kRandomProjection;
  std::size_t id_level_quant = 32;  ///< level hypervectors (kIdLevel only)
};

class HdcModel {
 public:
  HdcModel(HdcConfig config, std::size_t input_dim, std::size_t n_classes, Rng& rng);

  const HdcConfig& config() const noexcept { return config_; }
  const Encoder& encoder() const noexcept { return *encoder_; }
  std::size_t n_classes() const noexcept { return n_classes_; }

  /// Fit class hypervectors on a training set.
  void train(const std::vector<std::vector<double>>& xs, const std::vector<std::size_t>& ys);

  /// Classify one input (software inference at the configured similarity).
  std::size_t classify(const std::vector<double>& x) const;

  double accuracy(const std::vector<std::vector<double>>& xs,
                  const std::vector<std::size_t>& ys) const;

  /// Quantised class hypervector as CAM digits (levels = 2^element_bits).
  std::vector<int> class_digits(std::size_t cls) const;

  /// Quantised query hypervector.
  std::vector<int> query_digits(const std::vector<double>& x) const;

  /// Real (pre-quantisation) class hypervector, normalised by sample count.
  const std::vector<double>& class_accumulator(std::size_t cls) const;

  /// Per-dimension training mean the encoder centres on (hardware encode
  /// paths subtract its projection digitally).
  const std::vector<double>& feature_mean() const noexcept { return feature_mean_; }

  /// The quantiser in use (range is fit from training statistics).
  ElementQuantiser quantiser() const;

 private:
  std::size_t classify_encoded(const std::vector<double>& y) const;
  void refresh_quantiser();
  /// Rebuild the per-class derived state (digits plus whichever similarity
  /// cache the configured metric reads) after acc_/acc_scale_ changed.
  void refresh_class_cache(std::size_t cls);
  /// Normalise features with per-dimension training statistics: mean-centred
  /// for the projection encoder (the common-mode offset would otherwise drown
  /// the class signal), fully z-scored for the record encoder (whose level
  /// quantiser needs a known dynamic range).
  std::vector<double> centred(const std::vector<double>& x) const;

  HdcConfig config_;
  std::size_t n_classes_;
  std::unique_ptr<Encoder> encoder_;
  std::vector<double> feature_mean_;
  std::vector<double> feature_inv_std_;
  std::vector<std::vector<double>> acc_;     ///< real class accumulators
  std::vector<double> acc_scale_;            ///< per-class normalisation
  std::vector<std::vector<int>> digits_;     ///< quantised class HVs
  // Similarity caches, refreshed alongside digits_.  Without them every
  // cosine query recomputed every class norm (and kCosineReal re-divided the
  // whole accumulator); the cached values are produced by the exact loops the
  // query path used, so scores are bit-identical.  Only the cache the
  // configured similarity reads is populated.
  std::vector<std::vector<double>> unit_;    ///< acc/scale (kCosineReal)
  std::vector<double> unit_norm2_;           ///< |unit|^2 per class
  std::vector<std::vector<double>> dequant_; ///< q.value(digits) (kCosineQuantised)
  std::vector<double> dequant_norm2_;        ///< |dequant|^2 per class
  std::vector<kernels::PackedBits> packed_digits_;  ///< 1-bit digits (SQE path)
  double quant_range_ = 1.0;
  bool trained_ = false;
};

}  // namespace xlds::hdc
