#include "hdc/cam_inference.hpp"

#include <cmath>

#include "hdc/encoder.hpp"
#include "kernels/mvm.hpp"
#include "util/error.hpp"

namespace xlds::hdc {

namespace {

cam::PartitionedCamConfig make_partition_config(const HdcModel& model,
                                                const CamInferenceConfig& config) {
  XLDS_REQUIRE_MSG(config.subarray.fefet.bits == model.config().element_bits,
                   "CAM cell stores " << config.subarray.fefet.bits
                                      << " bits but the model quantises to "
                                      << model.config().element_bits);
  cam::PartitionedCamConfig pc;
  pc.subarray = config.subarray;
  pc.subarray.rows = model.n_classes();
  pc.total_width = model.config().hv_dim;
  pc.aggregation = config.aggregation;
  return pc;
}

}  // namespace

HdcCamInference::HdcCamInference(const HdcModel& model, CamInferenceConfig config, Rng& rng)
    : model_(model), config_(config), cam_(make_partition_config(model, config), rng) {
  for (std::size_t cls = 0; cls < model_.n_classes(); ++cls)
    cam_.write_word(cls, model_.class_digits(cls));

  if (config_.analog_encode) {
    const auto* projection_encoder = dynamic_cast<const HdcEncoder*>(&model_.encoder());
    XLDS_REQUIRE_MSG(projection_encoder != nullptr,
                     "analog encode needs the random-projection encoder");
    encoder_.emplace(config_.encoder_tiles, projection_encoder->input_dim(),
                     projection_encoder->hv_dim(), rng);
    encoder_->program_weights(projection_encoder->projection());
    // The model encodes mean-centred features: y = P(x - mu)/sqrt(F).  The
    // crossbar sees raw x in [0, 1]; the constant P mu / sqrt(F) term is
    // subtracted digitally (it is exactly encode(mu)).
    encode_bias_ = projection_encoder->encode(model_.feature_mean());
  }
}

std::vector<int> HdcCamInference::query_digits(const std::vector<double>& x) const {
  if (!encoder_.has_value()) return model_.query_digits(x);
  std::vector<double> y = encoder_->mvm(x);
  const double scale =
      1.0 / std::sqrt(static_cast<double>(model_.encoder().input_dim()));
  kernels::scale_sub(y.data(), scale, encode_bias_.data(), y.data(), y.size());
  return model_.quantiser().digits(y);
}

std::size_t HdcCamInference::classify(const std::vector<double>& x) const {
  return cam_.search(query_digits(x)).best_row;
}

std::size_t HdcCamInference::classify(const std::vector<double>& x, std::size_t votes) const {
  return classify_digits(query_digits(x), votes);
}

std::size_t HdcCamInference::classify_digits(const std::vector<int>& q, std::size_t votes) const {
  XLDS_REQUIRE_MSG(votes >= 1 && votes % 2 == 1, "votes must be odd, got " << votes);
  if (votes == 1) return cam_.search(q).best_row;
  std::vector<std::size_t> tally(model_.n_classes(), 0);
  for (std::size_t v = 0; v < votes; ++v) ++tally[cam_.search(q).best_row];
  std::size_t best = 0;
  for (std::size_t cls = 1; cls < tally.size(); ++cls)
    if (tally[cls] > tally[best]) best = cls;
  return best;
}

std::vector<std::vector<int>> HdcCamInference::query_digits_batch(const MatrixD& xs) const {
  std::vector<std::vector<int>> out(xs.rows());
  if (!encoder_.has_value()) {
    for (std::size_t b = 0; b < xs.rows(); ++b)
      out[b] = model_.query_digits(
          std::vector<double>(xs.row_data(b), xs.row_data(b) + xs.cols()));
    return out;
  }
  const MatrixD y = encoder_->mvm_batch(xs);
  const double scale = 1.0 / std::sqrt(static_cast<double>(model_.encoder().input_dim()));
  std::vector<double> row(y.cols());
  for (std::size_t b = 0; b < y.rows(); ++b) {
    kernels::scale_sub(y.row_data(b), scale, encode_bias_.data(), row.data(), row.size());
    out[b] = model_.quantiser().digits(row);
  }
  return out;
}

std::size_t HdcCamInference::rewrite_class_words() {
  for (std::size_t cls = 0; cls < model_.n_classes(); ++cls)
    cam_.write_word(cls, model_.class_digits(cls));
  return model_.n_classes() * model_.config().hv_dim;
}

fault::FaultInjectionStats HdcCamInference::inject_faults(
    const fault::FaultSpec& spec, const fault::GracefulPolicies& policies, Rng& rng) {
  return cam_.inject_faults(spec, policies, rng);
}

void HdcCamInference::age(double dt) {
  cam_.age(dt);
  if (encoder_.has_value()) encoder_->age(dt);
}

xbar::MvmCost HdcCamInference::encode_cost() const {
  return encoder_.has_value() ? encoder_->mvm_cost() : xbar::MvmCost{};
}

double HdcCamInference::accuracy(const std::vector<std::vector<double>>& xs,
                                 const std::vector<std::size_t>& ys) const {
  XLDS_REQUIRE(xs.size() == ys.size());
  XLDS_REQUIRE(!xs.empty());
  std::size_t correct = 0;
  for (std::size_t i = 0; i < xs.size(); ++i)
    if (classify(xs[i]) == ys[i]) ++correct;
  return static_cast<double>(correct) / static_cast<double>(xs.size());
}

double HdcCamInference::accuracy(const std::vector<std::vector<double>>& xs,
                                 const std::vector<std::size_t>& ys, std::size_t votes) const {
  XLDS_REQUIRE(xs.size() == ys.size());
  XLDS_REQUIRE(!xs.empty());
  std::size_t correct = 0;
  for (std::size_t i = 0; i < xs.size(); ++i)
    if (classify(xs[i], votes) == ys[i]) ++correct;
  return static_cast<double>(correct) / static_cast<double>(xs.size());
}

cam::SearchCost HdcCamInference::search_cost() const {
  // One representative query: all segments fire in parallel.
  const std::vector<int> zeros(model_.config().hv_dim, 0);
  return cam_.search(zeros).cost;
}

}  // namespace xlds::hdc
