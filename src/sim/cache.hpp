// Set-associative cache hierarchy with true LRU, fed with synthetic address
// streams by the core model.  Latencies are returned per access so the core
// can charge cycles; miss traffic propagates to the next level (DRAM at the
// bottom, bandwidth-limited).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace xlds::sim {

using Addr = std::uint64_t;

struct CacheConfig {
  std::string name = "L1";
  std::size_t size_bytes = 32 * 1024;
  std::size_t line_bytes = 64;
  std::size_t ways = 4;
  double hit_latency_s = 1.0e-9;
};

struct DramConfig {
  double latency_s = 60e-9;
  double bandwidth_bytes_per_s = 25.6e9;
};

struct CacheStats {
  std::size_t hits = 0;
  std::size_t misses = 0;

  double hit_rate() const {
    const std::size_t total = hits + misses;
    return total ? static_cast<double>(hits) / static_cast<double>(total) : 0.0;
  }
};

class Cache {
 public:
  explicit Cache(CacheConfig config);

  /// Access one address; returns true on hit (and updates LRU), false on
  /// miss (and fills the line, possibly evicting).
  bool access(Addr addr);

  const CacheConfig& config() const noexcept { return config_; }
  const CacheStats& stats() const noexcept { return stats_; }
  void reset_stats() { stats_ = {}; }

 private:
  struct Way {
    Addr tag = 0;
    bool valid = false;
    std::uint64_t lru = 0;
  };

  CacheConfig config_;
  std::size_t sets_;
  std::vector<Way> ways_;  ///< [sets_ x config_.ways]
  std::uint64_t tick_ = 0;
  CacheStats stats_;
};

/// Two-level hierarchy over DRAM.  `access` returns the time charged for the
/// access (hit latency of the level that served it; DRAM adds a
/// bandwidth-dependent component for the line fill).
class MemoryHierarchy {
 public:
  MemoryHierarchy(CacheConfig l1, CacheConfig l2, DramConfig dram);

  /// Time (seconds) to serve a read/write of one word at `addr`.
  double access(Addr addr);

  /// Time to serve one line of a *sequential stream* at `addr`: misses are
  /// charged at DRAM bandwidth (the prefetcher hides the access latency on
  /// streams), hits at the serving level's latency.  Cache state updates
  /// exactly as with access().
  double stream_access(Addr addr);

  const Cache& l1() const noexcept { return l1_; }
  const Cache& l2() const noexcept { return l2_; }
  std::size_t dram_accesses() const noexcept { return dram_accesses_; }
  /// Total bytes pulled from DRAM.
  std::size_t dram_bytes() const noexcept { return dram_accesses_ * l2_.config().line_bytes; }

 private:
  Cache l1_;
  Cache l2_;
  DramConfig dram_;
  std::size_t dram_accesses_ = 0;
};

/// Multi-core hierarchy: private L1 per core, one shared L2, shared DRAM —
/// the gem5-X-style many-core memory system at this model's fidelity.
class SharedMemoryHierarchy {
 public:
  SharedMemoryHierarchy(std::size_t cores, CacheConfig l1, CacheConfig l2, DramConfig dram);

  std::size_t cores() const noexcept { return l1s_.size(); }

  /// Demand access by `core` (hit latency of the serving level).
  double access(std::size_t core, Addr addr);

  /// Sequential-stream access by `core` (misses at DRAM bandwidth).
  double stream_access(std::size_t core, Addr addr);

  const Cache& l1(std::size_t core) const;
  const Cache& shared_l2() const noexcept { return l2_; }
  std::size_t dram_accesses() const noexcept { return dram_accesses_; }
  std::size_t dram_bytes() const noexcept { return dram_accesses_ * l2_.config().line_bytes; }

 private:
  std::vector<Cache> l1s_;
  Cache l2_;
  DramConfig dram_;
  std::size_t dram_accesses_ = 0;
};

}  // namespace xlds::sim
