#include "sim/machine.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace xlds::sim {

namespace {
constexpr double kTicksPerSecond = 1e12;  // 1 tick = 1 ps

Tick to_ticks(double seconds) {
  return static_cast<Tick>(std::llround(seconds * kTicksPerSecond));
}
}  // namespace

Machine::Machine(CoreConfig core, CacheConfig l1, CacheConfig l2, DramConfig dram,
                 AcceleratorConfig accel, EnergyConfig energy)
    : core_(core), l1_cfg_(l1), l2_cfg_(l2), dram_cfg_(dram), accel_(accel), energy_(energy) {
  XLDS_REQUIRE(core_.freq_hz > 0.0 && core_.ipc > 0.0 && core_.macs_per_cycle > 0.0);
  if (accel_.present) {
    XLDS_REQUIRE(accel_.parallel_tiles >= 1);
    XLDS_REQUIRE(accel_.tile_rows >= 1 && accel_.tile_cols >= 1);
    XLDS_REQUIRE(accel_.bus_bandwidth > 0.0);
  }
}

double Machine::mem_stream_time(MemoryHierarchy& mem, Addr base, std::size_t bytes) const {
  const std::size_t line = l1_cfg_.line_bytes;
  // One DRAM round trip to start the stream; after that the prefetcher keeps
  // the pipe full and misses cost bandwidth only.
  double t = dram_cfg_.latency_s;
  for (Addr a = base; a < base + bytes; a += line) t += mem.stream_access(a);
  return t;
}

RunStats Machine::run(const Program& program) {
  EventQueue queue;
  MemoryHierarchy mem(l1_cfg_, l2_cfg_, dram_cfg_);
  RunStats stats;
  Tick accel_busy_until = 0;
  std::size_t pc = 0;

  // The core is a single process: each op schedules the event that starts
  // the next one.  The accelerator is a shared resource represented by its
  // busy-until horizon (offloads queue behind it).
  std::function<void()> step = [&] {
    if (pc >= program.size()) return;
    const Op& op = program[pc++];
    ++stats.ops_executed;
    double duration = 0.0;
    switch (op.kind) {
      case OpKind::kCompute: {
        duration = static_cast<double>(op.scalar_ops) / (core_.ipc * core_.freq_hz);
        stats.compute_time += duration;
        stats.core_energy += static_cast<double>(op.scalar_ops) * energy_.core_energy_per_op;
        break;
      }
      case OpKind::kMemStream: {
        duration = mem_stream_time(mem, op.base, op.bytes);
        stats.memory_time += duration;
        break;
      }
      case OpKind::kMvm: {
        const std::size_t macs = op.rows * op.cols * op.repeat;
        if (accel_.present && op.offloadable) {
          // Offload: setup + activations over the bus + tiled analog MVMs.
          const std::size_t io_bytes = (op.rows + op.cols) * 4 * op.repeat;
          const double transfer =
              accel_.setup_time + static_cast<double>(io_bytes) / accel_.bus_bandwidth;
          const std::size_t tiles = ((op.rows + accel_.tile_rows - 1) / accel_.tile_rows) *
                                    ((op.cols + accel_.tile_cols - 1) / accel_.tile_cols) *
                                    op.repeat;
          const double busy =
              std::ceil(static_cast<double>(tiles) / static_cast<double>(accel_.parallel_tiles)) *
              accel_.tile_cost.latency;
          // Queue behind any outstanding accelerator work.
          const Tick request = queue.now() + to_ticks(transfer);
          const Tick start = std::max(request, accel_busy_until);
          const Tick done = start + to_ticks(busy);
          accel_busy_until = done;
          duration = static_cast<double>(done - queue.now()) / kTicksPerSecond;
          stats.transfer_time += transfer;
          stats.accel_time += busy;
          stats.transfer_energy += energy_.offload_setup_energy +
                                   static_cast<double>(io_bytes) * energy_.bus_energy_per_byte;
          stats.accel_energy += static_cast<double>(tiles) * accel_.tile_cost.energy;
          ++stats.offloads;
        } else {
          // On-core execution: SIMD MACs + weight streaming through caches.
          const double compute =
              static_cast<double>(macs) / (core_.macs_per_cycle * core_.freq_hz);
          const double memory = mem_stream_time(
              mem, op.weight_base, op.rows * op.cols * op.weight_bytes_per_el);
          duration = std::max(compute, memory);  // SIMD overlaps the prefetch
          stats.mvm_core_time += duration;
          stats.core_energy += static_cast<double>(macs) * energy_.core_energy_per_mac;
        }
        break;
      }
    }
    queue.schedule_in(std::max<Tick>(to_ticks(duration), 1), step);
  };

  queue.schedule(0, step);
  const Tick end = queue.run();
  stats.total_time = static_cast<double>(end) / kTicksPerSecond;
  stats.dram_bytes = mem.dram_bytes();
  stats.l1_hit_rate = mem.l1().stats().hit_rate();
  stats.l2_hit_rate = mem.l2().stats().hit_rate();
  stats.events = queue.executed();

  // Memory-system and static energy from the event counts (the McPAT step).
  const auto l1_accesses = mem.l1().stats().hits + mem.l1().stats().misses;
  const auto l2_accesses = mem.l2().stats().hits + mem.l2().stats().misses;
  stats.memory_energy = static_cast<double>(l1_accesses) * energy_.l1_access_energy +
                        static_cast<double>(l2_accesses) * energy_.l2_access_energy +
                        static_cast<double>(mem.dram_bytes()) * energy_.dram_energy_per_byte;
  stats.static_energy = energy_.static_power * stats.total_time;
  return stats;
}

double accelerator_speedup(const CoreConfig& core, const CacheConfig& l1, const CacheConfig& l2,
                           const DramConfig& dram, const AcceleratorConfig& accel,
                           const Program& program) {
  Machine baseline(core, l1, l2, dram, AcceleratorConfig{});
  AcceleratorConfig with = accel;
  with.present = true;
  Machine accelerated(core, l1, l2, dram, with);
  const double t0 = baseline.run(program).total_time;
  const double t1 = accelerated.run(program).total_time;
  XLDS_ASSERT(t1 > 0.0);
  return t0 / t1;
}

}  // namespace xlds::sim
