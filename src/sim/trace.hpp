// Trace builders: the ML workloads the Sec.-V studies run on the system
// simulator (CNNs, LSTMs and transformer blocks).  Each builder lowers a
// network description into the Machine's op vocabulary: per layer, an
// im2col/reshape memory stream, the MVM work (offloadable), and the
// activation pass (never offloadable — that is the Amdahl tail).
#pragma once

#include <cstddef>

#include "sim/machine.hpp"

namespace xlds::sim {

struct ConvLayerSpec {
  std::size_t in_c = 3, out_c = 32;
  std::size_t in_h = 32, in_w = 32;
  std::size_t kernel = 3;
  bool same_padding = true;  ///< keep the spatial size (VGG-style stacks)
};

struct CnnSpec {
  std::vector<ConvLayerSpec> convs;
  std::size_t fc_in = 1024;
  std::size_t fc_out = 10;
  std::size_t batch = 1;
};

/// A representative small CNN (CIFAR-class) as a simulator program.
Program make_cnn_program(const CnnSpec& spec);

/// Preset CIFAR-class CNN with `depth` conv layers.
CnnSpec cifar_cnn(std::size_t depth = 6);

struct MlpSpec {
  /// Layer widths, first entry = input dimension.  The default hides a
  /// crossbar-realistic 256x512 hidden layer — the size the xbar layer
  /// mapper (src/xbar/layer_map.hpp) shards onto a 64x64 tile fleet.
  std::vector<std::size_t> dims = {256, 512, 512, 10};
  std::size_t batch = 8;
};

/// Fully-connected MLP: per layer, the activation stream, the dense MVM
/// (offloadable) and the ReLU pass; softmax after the final layer.
Program make_mlp_program(const MlpSpec& spec);

struct LstmSpec {
  std::size_t input = 256;
  std::size_t hidden = 512;
  std::size_t timesteps = 32;
};

/// LSTM: per timestep, the 4-gate MVM plus elementwise gate math.
Program make_lstm_program(const LstmSpec& spec);

struct TransformerSpec {
  std::size_t d_model = 256;
  std::size_t d_ff = 1024;
  std::size_t seq_len = 64;
  std::size_t layers = 2;
};

/// Transformer encoder blocks: QKV/out projections + FFN as MVMs; the
/// attention score math stays on the core.
Program make_transformer_program(const TransformerSpec& spec);

struct HdcTraceSpec {
  std::size_t input_dim = 617;
  std::size_t hv_dim = 2048;
  std::size_t am_entries = 520;
  std::size_t queries = 16;
  /// Associative search as an MVM is *not* crossbar-offloadable in a
  /// crossbar-only SoC (it needs a CAM); flipping this models adding one.
  bool search_offloadable = false;
};

/// HDC inference as a system-simulator program: per query, the encode MVM
/// (offloadable to a crossbar), the associative search (offloadable only if
/// a CAM engine exists) and the top-1 reduction on the core.  Running this
/// on a crossbar-only machine shows the Amdahl cap the Sec.-III CAM argument
/// rests on.
Program make_hdc_program(const HdcTraceSpec& spec);

/// Total MAC count of a program's MVM ops (for reporting).
std::size_t program_macs(const Program& program);

}  // namespace xlds::sim
