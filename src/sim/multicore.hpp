// Many-core heterogeneous system model (the gem5-X claim of Sec. V, and the
// accelerator-level-parallelism question of the paper's introduction).
//
// N in-order cores, each running its own program, with private L1s, a shared
// L2, shared DRAM, and ONE shared analog-crossbar accelerator reached over
// MMIO.  Cores queue for the accelerator — the contention that decides how
// many cores one IMC macro can feed, which a single-core model cannot see.
#pragma once

#include <vector>

#include "sim/machine.hpp"

namespace xlds::sim {

struct MulticoreConfig {
  std::size_t cores = 4;
  CoreConfig core;
  CacheConfig l1;  ///< private, per core
  CacheConfig l2;  ///< shared
  DramConfig dram;
  AcceleratorConfig accel;  ///< shared; .present gates offloading
  EnergyConfig energy;
};

struct MulticoreStats {
  std::vector<RunStats> per_core;
  double total_time = 0.0;      ///< makespan (s)
  double total_energy = 0.0;    ///< J, all cores + shared resources
  double accel_wait_time = 0.0; ///< s, summed queueing delay behind the accel
  std::size_t dram_bytes = 0;
  double shared_l2_hit_rate = 0.0;
};

class MulticoreMachine {
 public:
  explicit MulticoreMachine(MulticoreConfig config);

  /// Run one program per core (programs.size() must equal cores) to
  /// completion; cores interleave through the shared event queue.
  MulticoreStats run(const std::vector<Program>& programs);

  const MulticoreConfig& config() const noexcept { return config_; }

 private:
  MulticoreConfig config_;
};

}  // namespace xlds::sim
