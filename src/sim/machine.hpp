// System model: in-order core + cache hierarchy + optional memory-mapped
// analog crossbar accelerator, executing a trace-driven program (Sec. V).
//
// This is the gem5-X-style experiment at triage fidelity: the same program
// runs with the accelerator absent (MVMs execute on the core, streaming
// weights through the caches) or present (MVMs are offloaded over a bus to a
// tiled crossbar engine).  The end-to-end speedup is Amdahl-limited by the
// non-MVM work — data reshaping, activations, cache misses — which is
// exactly the effect the paper says system simulation exposes ahead of
// detailed hardware design.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "sim/cache.hpp"
#include "sim/event.hpp"
#include "xbar/crossbar.hpp"

namespace xlds::sim {

enum class OpKind {
  kCompute,    ///< scalar/SIMD ALU work
  kMemStream,  ///< streaming memory traffic through the hierarchy
  kMvm,        ///< matrix-vector multiply (offloadable)
};

struct Op {
  OpKind kind = OpKind::kCompute;
  std::string label;
  // kCompute
  std::size_t scalar_ops = 0;
  // kMemStream
  Addr base = 0;
  std::size_t bytes = 0;
  // kMvm: `repeat` MVMs of [rows x cols] sharing resident weights
  std::size_t rows = 0;
  std::size_t cols = 0;
  std::size_t repeat = 1;
  std::size_t weight_bytes_per_el = 1;
  bool offloadable = true;
  Addr weight_base = 0;
};

using Program = std::vector<Op>;

struct CoreConfig {
  double freq_hz = 2.0e9;
  double ipc = 2.0;              ///< scalar ops per cycle
  double macs_per_cycle = 4.0;   ///< SIMD MAC throughput
};

/// Energy coefficients (the McPAT axis of an Eva-CiM-style evaluation):
/// per-event energies for the core and the memory system, plus static power
/// integrated over the run.
struct EnergyConfig {
  double core_energy_per_op = 5.0e-12;   ///< J per scalar op
  double core_energy_per_mac = 2.0e-12;  ///< J per SIMD MAC
  double l1_access_energy = 0.5e-12;     ///< J per L1 access
  double l2_access_energy = 2.5e-12;     ///< J per L2 access
  double dram_energy_per_byte = 20.0e-12;  ///< J per DRAM byte
  double bus_energy_per_byte = 1.0e-12;  ///< J per offload byte
  double offload_setup_energy = 50.0e-9; ///< J per accelerator invocation
  double static_power = 0.020;           ///< W, leakage + clocks
};

struct AcceleratorConfig {
  bool present = false;
  double setup_time = 2.0e-6;        ///< driver + MMIO programming per offload
  double bus_bandwidth = 8.0e9;      ///< B/s, input/output activation transfer
  xbar::MvmCost tile_cost{5.0e-9, 2.0e-10};  ///< one 64x64-tile analog MVM
  std::size_t tile_rows = 64;
  std::size_t tile_cols = 64;
  std::size_t parallel_tiles = 16;   ///< tiles operating concurrently
};

struct RunStats {
  double total_time = 0.0;      ///< s
  double compute_time = 0.0;    ///< core ALU
  double memory_time = 0.0;     ///< cache/DRAM stalls
  double mvm_core_time = 0.0;   ///< MVMs executed on the core
  double accel_time = 0.0;      ///< accelerator busy time
  double transfer_time = 0.0;   ///< offload setup + bus transfers
  std::size_t dram_bytes = 0;
  double l1_hit_rate = 0.0;
  double l2_hit_rate = 0.0;
  std::size_t events = 0;
  std::size_t ops_executed = 0;
  std::size_t offloads = 0;

  // Energy breakdown (J) — the Eva-CiM axis.
  double core_energy = 0.0;      ///< scalar ops + on-core MACs
  double memory_energy = 0.0;    ///< cache accesses + DRAM traffic
  double accel_energy = 0.0;     ///< analog tile operations
  double transfer_energy = 0.0;  ///< offload setup + bus bytes
  double static_energy = 0.0;    ///< static power x total time
  double total_energy() const {
    return core_energy + memory_energy + accel_energy + transfer_energy + static_energy;
  }
};

class Machine {
 public:
  Machine(CoreConfig core, CacheConfig l1, CacheConfig l2, DramConfig dram,
          AcceleratorConfig accel, EnergyConfig energy = {});

  /// Execute a program to completion; each call starts from cold caches.
  RunStats run(const Program& program);

  const AcceleratorConfig& accelerator() const noexcept { return accel_; }
  const EnergyConfig& energy() const noexcept { return energy_; }

 private:
  double mem_stream_time(MemoryHierarchy& mem, Addr base, std::size_t bytes) const;

  CoreConfig core_;
  CacheConfig l1_cfg_;
  CacheConfig l2_cfg_;
  DramConfig dram_cfg_;
  AcceleratorConfig accel_;
  EnergyConfig energy_;
};

/// Convenience: run the same program with and without the accelerator and
/// return the speedup (baseline_time / accelerated_time).
double accelerator_speedup(const CoreConfig& core, const CacheConfig& l1, const CacheConfig& l2,
                           const DramConfig& dram, const AcceleratorConfig& accel,
                           const Program& program);

}  // namespace xlds::sim
