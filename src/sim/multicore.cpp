#include "sim/multicore.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace xlds::sim {

namespace {
constexpr double kTicksPerSecond = 1e12;

Tick to_ticks(double seconds) {
  return static_cast<Tick>(std::llround(seconds * kTicksPerSecond));
}
}  // namespace

MulticoreMachine::MulticoreMachine(MulticoreConfig config) : config_(config) {
  XLDS_REQUIRE(config_.cores >= 1 && config_.cores <= 64);
  XLDS_REQUIRE(config_.core.freq_hz > 0.0 && config_.core.ipc > 0.0 &&
               config_.core.macs_per_cycle > 0.0);
  if (config_.accel.present) {
    XLDS_REQUIRE(config_.accel.parallel_tiles >= 1);
    XLDS_REQUIRE(config_.accel.bus_bandwidth > 0.0);
  }
}

MulticoreStats MulticoreMachine::run(const std::vector<Program>& programs) {
  XLDS_REQUIRE_MSG(programs.size() == config_.cores,
                   programs.size() << " programs for " << config_.cores << " cores");
  EventQueue queue;
  SharedMemoryHierarchy mem(config_.cores, config_.l1, config_.l2, config_.dram);

  MulticoreStats stats;
  stats.per_core.resize(config_.cores);
  std::vector<std::size_t> pc(config_.cores, 0);
  std::vector<Tick> finished_at(config_.cores, 0);
  Tick accel_busy_until = 0;

  const auto& core_cfg = config_.core;
  const auto& accel = config_.accel;
  const auto& energy = config_.energy;

  // One process per core; all share the queue, the L2, the DRAM counters and
  // the accelerator busy horizon.
  std::vector<std::function<void()>> steps(config_.cores);
  for (std::size_t c = 0; c < config_.cores; ++c) {
    steps[c] = [&, c] {
      RunStats& rs = stats.per_core[c];
      if (pc[c] >= programs[c].size()) {
        finished_at[c] = queue.now();
        return;
      }
      const Op& op = programs[c][pc[c]++];
      ++rs.ops_executed;
      double duration = 0.0;
      switch (op.kind) {
        case OpKind::kCompute: {
          duration = static_cast<double>(op.scalar_ops) / (core_cfg.ipc * core_cfg.freq_hz);
          rs.compute_time += duration;
          rs.core_energy += static_cast<double>(op.scalar_ops) * energy.core_energy_per_op;
          break;
        }
        case OpKind::kMemStream: {
          double t = config_.dram.latency_s;
          for (Addr a = op.base; a < op.base + op.bytes; a += config_.l1.line_bytes)
            t += mem.stream_access(c, a);
          duration = t;
          rs.memory_time += duration;
          break;
        }
        case OpKind::kMvm: {
          const std::size_t macs = op.rows * op.cols * op.repeat;
          if (accel.present && op.offloadable) {
            const std::size_t io_bytes = (op.rows + op.cols) * 4 * op.repeat;
            const double transfer =
                accel.setup_time + static_cast<double>(io_bytes) / accel.bus_bandwidth;
            const std::size_t tiles = ((op.rows + accel.tile_rows - 1) / accel.tile_rows) *
                                      ((op.cols + accel.tile_cols - 1) / accel.tile_cols) *
                                      op.repeat;
            const double busy = std::ceil(static_cast<double>(tiles) /
                                          static_cast<double>(accel.parallel_tiles)) *
                                accel.tile_cost.latency;
            const Tick request = queue.now() + to_ticks(transfer);
            const Tick start = std::max(request, accel_busy_until);
            const Tick done = start + to_ticks(busy);
            // Queueing delay behind other cores' offloads: the contention
            // signal this model exists to expose.
            stats.accel_wait_time += static_cast<double>(start - request) / kTicksPerSecond;
            accel_busy_until = done;
            duration = static_cast<double>(done - queue.now()) / kTicksPerSecond;
            rs.transfer_time += transfer;
            rs.accel_time += busy;
            rs.transfer_energy += energy.offload_setup_energy +
                                  static_cast<double>(io_bytes) * energy.bus_energy_per_byte;
            rs.accel_energy += static_cast<double>(tiles) * accel.tile_cost.energy;
            ++rs.offloads;
          } else {
            const double compute =
                static_cast<double>(macs) / (core_cfg.macs_per_cycle * core_cfg.freq_hz);
            double memory = config_.dram.latency_s;
            const std::size_t bytes = op.rows * op.cols * op.weight_bytes_per_el;
            for (Addr a = op.weight_base; a < op.weight_base + bytes;
                 a += config_.l1.line_bytes)
              memory += mem.stream_access(c, a);
            duration = std::max(compute, memory);
            rs.mvm_core_time += duration;
            rs.core_energy += static_cast<double>(macs) * energy.core_energy_per_mac;
          }
          break;
        }
      }
      queue.schedule_in(std::max<Tick>(to_ticks(duration), 1), steps[c]);
    };
  }
  for (std::size_t c = 0; c < config_.cores; ++c) queue.schedule(0, steps[c]);
  queue.run();

  Tick makespan = 0;
  for (std::size_t c = 0; c < config_.cores; ++c) {
    stats.per_core[c].total_time = static_cast<double>(finished_at[c]) / kTicksPerSecond;
    makespan = std::max(makespan, finished_at[c]);
  }
  stats.total_time = static_cast<double>(makespan) / kTicksPerSecond;
  stats.dram_bytes = mem.dram_bytes();
  stats.shared_l2_hit_rate = mem.shared_l2().stats().hit_rate();

  // Shared-system energy: per-core dynamic sums + memory + static power of
  // the whole chip over the makespan.
  double dynamic = 0.0;
  for (const RunStats& rs : stats.per_core)
    dynamic += rs.core_energy + rs.accel_energy + rs.transfer_energy;
  std::size_t l1_accesses = 0;
  for (std::size_t c = 0; c < config_.cores; ++c)
    l1_accesses += mem.l1(c).stats().hits + mem.l1(c).stats().misses;
  const std::size_t l2_accesses =
      mem.shared_l2().stats().hits + mem.shared_l2().stats().misses;
  const double memory_energy =
      static_cast<double>(l1_accesses) * energy.l1_access_energy +
      static_cast<double>(l2_accesses) * energy.l2_access_energy +
      static_cast<double>(mem.dram_bytes()) * energy.dram_energy_per_byte;
  stats.total_energy = dynamic + memory_energy +
                       energy.static_power * static_cast<double>(config_.cores) *
                           stats.total_time;
  return stats;
}

}  // namespace xlds::sim
