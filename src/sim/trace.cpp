#include "sim/trace.hpp"

#include "util/error.hpp"

namespace xlds::sim {

namespace {

// Address-space layout for the synthetic traces: weights, activations and
// scratch live in distinct regions so cache behaviour is realistic (weights
// stream with no reuse within a layer; activations have short-range reuse).
constexpr Addr kWeightBase = 0x1000'0000;
constexpr Addr kActBase = 0x4000'0000;
constexpr Addr kScratchBase = 0x7000'0000;

}  // namespace

Program make_cnn_program(const CnnSpec& spec) {
  XLDS_REQUIRE(!spec.convs.empty());
  XLDS_REQUIRE(spec.batch >= 1);
  Program prog;
  Addr weight_cursor = kWeightBase;
  for (std::size_t b = 0; b < spec.batch; ++b) {
    Addr act_cursor = kActBase;
    for (std::size_t li = 0; li < spec.convs.size(); ++li) {
      const ConvLayerSpec& l = spec.convs[li];
      const std::size_t out_h = l.same_padding ? l.in_h : l.in_h - l.kernel + 1;
      const std::size_t out_w = l.same_padding ? l.in_w : l.in_w - l.kernel + 1;
      const std::size_t pixels = out_h * out_w;
      const std::size_t patch = l.kernel * l.kernel * l.in_c;
      const std::string tag = "conv" + std::to_string(li);

      // im2col: read the input feature map, write the patch matrix.
      Op im2col;
      im2col.kind = OpKind::kMemStream;
      im2col.label = tag + ":im2col";
      im2col.base = act_cursor;
      im2col.bytes = pixels * patch * 1 + l.in_h * l.in_w * l.in_c * 1;
      prog.push_back(im2col);

      // The layer MVM: one [patch x out_c] matrix applied per output pixel.
      Op mvm;
      mvm.kind = OpKind::kMvm;
      mvm.label = tag + ":mvm";
      mvm.rows = patch;
      mvm.cols = l.out_c;
      mvm.repeat = pixels;
      mvm.weight_base = weight_cursor;
      prog.push_back(mvm);
      weight_cursor += patch * l.out_c;

      // Activation + write-back of the output feature map.
      Op act;
      act.kind = OpKind::kCompute;
      act.label = tag + ":relu";
      act.scalar_ops = pixels * l.out_c;
      prog.push_back(act);

      Op wb;
      wb.kind = OpKind::kMemStream;
      wb.label = tag + ":writeback";
      wb.base = kScratchBase + static_cast<Addr>(li) * 0x100000;
      wb.bytes = pixels * l.out_c;
      prog.push_back(wb);
      act_cursor += l.in_h * l.in_w * l.in_c;
    }

    Op fc;
    fc.kind = OpKind::kMvm;
    fc.label = "fc";
    fc.rows = spec.fc_in;
    fc.cols = spec.fc_out;
    fc.repeat = 1;
    fc.weight_base = weight_cursor;
    prog.push_back(fc);

    Op softmax;
    softmax.kind = OpKind::kCompute;
    softmax.label = "softmax";
    softmax.scalar_ops = spec.fc_out * 8;
    prog.push_back(softmax);
  }
  return prog;
}

CnnSpec cifar_cnn(std::size_t depth) {
  XLDS_REQUIRE(depth >= 2 && depth <= 12);
  // VGG-style stack: same-padded 3x3 convolutions, channel count doubling
  // every two layers (capped at 256), 2x2 pooling after every second layer.
  CnnSpec spec;
  std::size_t c = 3, h = 32, w = 32;
  for (std::size_t i = 0; i < depth; ++i) {
    ConvLayerSpec l;
    l.in_c = c;
    l.out_c = std::min<std::size_t>(32 << (i / 2), 256);
    l.in_h = h;
    l.in_w = w;
    l.kernel = 3;
    spec.convs.push_back(l);
    c = l.out_c;
    if (i % 2 == 1 && h > 4) {
      h /= 2;
      w /= 2;
    }
  }
  spec.fc_in = c * h * w;
  spec.fc_out = 10;
  return spec;
}

Program make_mlp_program(const MlpSpec& spec) {
  XLDS_REQUIRE(spec.dims.size() >= 2);
  XLDS_REQUIRE(spec.batch >= 1);
  Program prog;
  for (std::size_t b = 0; b < spec.batch; ++b) {
    Addr weight_cursor = kWeightBase;  // weights are reused across the batch
    for (std::size_t li = 0; li + 1 < spec.dims.size(); ++li) {
      const std::size_t in = spec.dims[li];
      const std::size_t out = spec.dims[li + 1];
      const std::string tag = "fc" + std::to_string(li);

      Op load;
      load.kind = OpKind::kMemStream;
      load.label = tag + ":activations";
      load.base = kActBase + static_cast<Addr>(li) * 0x100000;
      load.bytes = in;
      prog.push_back(load);

      Op mvm;
      mvm.kind = OpKind::kMvm;
      mvm.label = tag + ":mvm";
      mvm.rows = in;
      mvm.cols = out;
      mvm.repeat = 1;
      mvm.weight_base = weight_cursor;
      prog.push_back(mvm);
      weight_cursor += static_cast<Addr>(in) * out;

      Op act;
      act.kind = OpKind::kCompute;
      act.label = li + 2 < spec.dims.size() ? tag + ":relu" : "softmax";
      act.scalar_ops = li + 2 < spec.dims.size() ? out : out * 8;
      prog.push_back(act);
    }
  }
  return prog;
}

Program make_lstm_program(const LstmSpec& spec) {
  XLDS_REQUIRE(spec.timesteps >= 1);
  Program prog;
  for (std::size_t t = 0; t < spec.timesteps; ++t) {
    const std::string tag = "t" + std::to_string(t);
    Op mvm;
    mvm.kind = OpKind::kMvm;
    mvm.label = tag + ":gates";
    mvm.rows = spec.input + spec.hidden;
    mvm.cols = 4 * spec.hidden;
    mvm.repeat = 1;
    mvm.weight_base = kWeightBase;  // weights are reused across timesteps
    prog.push_back(mvm);

    Op gates;
    gates.kind = OpKind::kCompute;
    gates.label = tag + ":pointwise";
    gates.scalar_ops = 12 * spec.hidden;  // sigmoids/tanh/hadamards
    prog.push_back(gates);

    Op state;
    state.kind = OpKind::kMemStream;
    state.label = tag + ":state";
    state.base = kActBase;
    state.bytes = 2 * spec.hidden * 4;
    prog.push_back(state);
  }
  return prog;
}

Program make_transformer_program(const TransformerSpec& spec) {
  XLDS_REQUIRE(spec.layers >= 1);
  Program prog;
  Addr weight_cursor = kWeightBase;
  for (std::size_t l = 0; l < spec.layers; ++l) {
    const std::string tag = "layer" + std::to_string(l);
    // QKV + output projections: 4 [d_model x d_model] MVMs per token.
    Op proj;
    proj.kind = OpKind::kMvm;
    proj.label = tag + ":proj";
    proj.rows = spec.d_model;
    proj.cols = 4 * spec.d_model;
    proj.repeat = spec.seq_len;
    proj.weight_base = weight_cursor;
    prog.push_back(proj);
    weight_cursor += proj.rows * proj.cols;

    // Attention scores + softmax stay on the core: seq^2 * d ops.
    Op attn;
    attn.kind = OpKind::kCompute;
    attn.label = tag + ":attention";
    attn.scalar_ops = 2 * spec.seq_len * spec.seq_len * spec.d_model;
    prog.push_back(attn);

    // FFN: two MVMs per token.
    Op ffn1;
    ffn1.kind = OpKind::kMvm;
    ffn1.label = tag + ":ffn1";
    ffn1.rows = spec.d_model;
    ffn1.cols = spec.d_ff;
    ffn1.repeat = spec.seq_len;
    ffn1.weight_base = weight_cursor;
    prog.push_back(ffn1);
    weight_cursor += ffn1.rows * ffn1.cols;

    Op ffn2;
    ffn2.kind = OpKind::kMvm;
    ffn2.label = tag + ":ffn2";
    ffn2.rows = spec.d_ff;
    ffn2.cols = spec.d_model;
    ffn2.repeat = spec.seq_len;
    ffn2.weight_base = weight_cursor;
    prog.push_back(ffn2);
    weight_cursor += ffn2.rows * ffn2.cols;

    Op norm;
    norm.kind = OpKind::kMemStream;
    norm.label = tag + ":residual";
    norm.base = kActBase;
    norm.bytes = spec.seq_len * spec.d_model * 4;
    prog.push_back(norm);
  }
  return prog;
}

Program make_hdc_program(const HdcTraceSpec& spec) {
  XLDS_REQUIRE(spec.queries >= 1);
  Program prog;
  for (std::size_t q = 0; q < spec.queries; ++q) {
    const std::string tag = "q" + std::to_string(q);

    Op fetch;
    fetch.kind = OpKind::kMemStream;
    fetch.label = tag + ":input";
    fetch.base = kActBase;
    fetch.bytes = spec.input_dim * 4;
    prog.push_back(fetch);

    Op encode;
    encode.kind = OpKind::kMvm;
    encode.label = tag + ":encode";
    encode.rows = spec.input_dim;
    encode.cols = spec.hv_dim;
    encode.repeat = 1;
    encode.weight_base = kWeightBase;  // the projection matrix, reused
    prog.push_back(encode);

    Op search;
    search.kind = OpKind::kMvm;
    search.label = tag + ":search";
    search.rows = spec.hv_dim;
    search.cols = spec.am_entries;
    search.repeat = 1;
    search.offloadable = spec.search_offloadable;
    search.weight_base = kWeightBase + 0x4000000;  // the AM contents
    prog.push_back(search);

    Op argmax;
    argmax.kind = OpKind::kCompute;
    argmax.label = tag + ":argmax";
    argmax.scalar_ops = spec.am_entries * 2;
    prog.push_back(argmax);
  }
  return prog;
}

std::size_t program_macs(const Program& program) {
  std::size_t macs = 0;
  for (const Op& op : program)
    if (op.kind == OpKind::kMvm) macs += op.rows * op.cols * op.repeat;
  return macs;
}

}  // namespace xlds::sim
