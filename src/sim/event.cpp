#include "sim/event.hpp"

#include "util/error.hpp"

namespace xlds::sim {

void EventQueue::schedule(Tick when, std::function<void()> fn) {
  XLDS_REQUIRE_MSG(when >= now_, "cannot schedule in the past (" << when << " < " << now_ << ")");
  queue_.push(Event{when, seq_++, std::move(fn)});
}

void EventQueue::schedule_in(Tick delay, std::function<void()> fn) {
  schedule(now_ + delay, std::move(fn));
}

Tick EventQueue::run() {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.when;
    ++executed_;
    ev.fn();
  }
  return now_;
}

Tick EventQueue::run_until(Tick deadline) {
  while (!queue_.empty() && queue_.top().when <= deadline) {
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.when;
    ++executed_;
    ev.fn();
  }
  if (now_ < deadline && queue_.empty()) return now_;
  now_ = deadline;
  return now_;
}

}  // namespace xlds::sim
