#include "sim/cache.hpp"

#include <bit>

#include "util/error.hpp"

namespace xlds::sim {

Cache::Cache(CacheConfig config) : config_(config) {
  XLDS_REQUIRE(config_.line_bytes >= 8 && std::has_single_bit(config_.line_bytes));
  XLDS_REQUIRE(config_.ways >= 1);
  XLDS_REQUIRE(config_.size_bytes >= config_.line_bytes * config_.ways);
  sets_ = config_.size_bytes / (config_.line_bytes * config_.ways);
  XLDS_REQUIRE_MSG(std::has_single_bit(sets_), "set count must be a power of two, got " << sets_);
  ways_.assign(sets_ * config_.ways, Way{});
}

bool Cache::access(Addr addr) {
  const Addr line = addr / config_.line_bytes;
  const std::size_t set = static_cast<std::size_t>(line) & (sets_ - 1);
  const Addr tag = line / sets_;
  Way* base = &ways_[set * config_.ways];
  ++tick_;
  // Hit?
  for (std::size_t w = 0; w < config_.ways; ++w) {
    if (base[w].valid && base[w].tag == tag) {
      base[w].lru = tick_;
      ++stats_.hits;
      return true;
    }
  }
  // Miss: fill into the LRU way.
  ++stats_.misses;
  std::size_t victim = 0;
  for (std::size_t w = 1; w < config_.ways; ++w) {
    if (!base[w].valid) {
      victim = w;
      break;
    }
    if (base[w].lru < base[victim].lru) victim = w;
  }
  base[victim] = Way{tag, true, tick_};
  return false;
}

MemoryHierarchy::MemoryHierarchy(CacheConfig l1, CacheConfig l2, DramConfig dram)
    : l1_(l1), l2_(l2), dram_(dram) {
  XLDS_REQUIRE(l2.size_bytes >= l1.size_bytes);
  XLDS_REQUIRE(dram.bandwidth_bytes_per_s > 0.0);
}

double MemoryHierarchy::access(Addr addr) {
  if (l1_.access(addr)) return l1_.config().hit_latency_s;
  if (l2_.access(addr)) return l1_.config().hit_latency_s + l2_.config().hit_latency_s;
  ++dram_accesses_;
  const double fill = static_cast<double>(l2_.config().line_bytes) / dram_.bandwidth_bytes_per_s;
  return l1_.config().hit_latency_s + l2_.config().hit_latency_s + dram_.latency_s + fill;
}

SharedMemoryHierarchy::SharedMemoryHierarchy(std::size_t cores, CacheConfig l1, CacheConfig l2,
                                             DramConfig dram)
    : l2_(l2), dram_(dram) {
  XLDS_REQUIRE(cores >= 1);
  XLDS_REQUIRE(l2.size_bytes >= l1.size_bytes);
  l1s_.reserve(cores);
  for (std::size_t c = 0; c < cores; ++c) l1s_.emplace_back(l1);
}

const Cache& SharedMemoryHierarchy::l1(std::size_t core) const {
  XLDS_REQUIRE(core < l1s_.size());
  return l1s_[core];
}

double SharedMemoryHierarchy::access(std::size_t core, Addr addr) {
  XLDS_REQUIRE(core < l1s_.size());
  if (l1s_[core].access(addr)) return l1s_[core].config().hit_latency_s;
  if (l2_.access(addr)) return l1s_[core].config().hit_latency_s + l2_.config().hit_latency_s;
  ++dram_accesses_;
  const double fill = static_cast<double>(l2_.config().line_bytes) / dram_.bandwidth_bytes_per_s;
  return l1s_[core].config().hit_latency_s + l2_.config().hit_latency_s + dram_.latency_s + fill;
}

double SharedMemoryHierarchy::stream_access(std::size_t core, Addr addr) {
  XLDS_REQUIRE(core < l1s_.size());
  if (l1s_[core].access(addr)) return l1s_[core].config().hit_latency_s;
  if (l2_.access(addr)) return l1s_[core].config().hit_latency_s + l2_.config().hit_latency_s;
  ++dram_accesses_;
  return static_cast<double>(l2_.config().line_bytes) / dram_.bandwidth_bytes_per_s;
}

double MemoryHierarchy::stream_access(Addr addr) {
  if (l1_.access(addr)) return l1_.config().hit_latency_s;
  if (l2_.access(addr)) return l1_.config().hit_latency_s + l2_.config().hit_latency_s;
  ++dram_accesses_;
  // Prefetched stream: the line costs its bandwidth share, not the full
  // DRAM round trip.
  return static_cast<double>(l2_.config().line_bytes) / dram_.bandwidth_bytes_per_s;
}

}  // namespace xlds::sim
