// Discrete-event kernel for the system simulator (Sec. V).
//
// gem5-class simulators are event-driven: components schedule callbacks at
// future timestamps and a central queue executes them in time order.  This
// kernel is the same discipline at small scale; determinism is guaranteed by
// breaking timestamp ties with insertion order.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace xlds::sim {

using Tick = std::uint64_t;  ///< picoseconds

class EventQueue {
 public:
  /// Schedule `fn` at absolute time `when` (>= now).
  void schedule(Tick when, std::function<void()> fn);

  /// Schedule `fn` `delay` ticks from now.
  void schedule_in(Tick delay, std::function<void()> fn);

  /// Run until the queue drains; returns the final time.
  Tick run();

  /// Run until `deadline` or the queue drains, whichever first.
  Tick run_until(Tick deadline);

  Tick now() const noexcept { return now_; }
  bool empty() const noexcept { return queue_.empty(); }
  std::size_t executed() const noexcept { return executed_; }

 private:
  struct Event {
    Tick when;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  Tick now_ = 0;
  std::uint64_t seq_ = 0;
  std::size_t executed_ = 0;
};

}  // namespace xlds::sim
