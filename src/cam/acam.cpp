#include "cam/acam.hpp"

#include <algorithm>

#include "circuit/converter.hpp"
#include "circuit/matchline.hpp"
#include "util/error.hpp"

namespace xlds::cam {

namespace {
constexpr std::uint64_t kAcamStreamTag = 0xACA3317;
}

FeFetAcamArray::FeFetAcamArray(AcamConfig config, Rng& rng)
    : config_(config),
      model_(config.fefet),
      wire_(device::tech_node(config.tech), config.cell_pitch_f),
      sense_(config.sense),
      rng_(rng.fork(kAcamStreamTag)),
      cells_(config.rows, std::vector<Cell>(config.cols)),
      row_sense_dead_(config.rows, 0) {
  XLDS_REQUIRE(config_.rows >= 1 && config_.cols >= 1);
}

double FeFetAcamArray::bound_sigma() const {
  const auto& p = model_.params();
  return p.sigma_program / (p.vth_high - p.vth_low);
}

void FeFetAcamArray::write_word(std::size_t row, const std::vector<AnalogRange>& ranges) {
  XLDS_REQUIRE_MSG(row < config_.rows, "row " << row << " out of range");
  XLDS_REQUIRE_MSG(ranges.size() == config_.cols,
                   "word width " << ranges.size() << " != " << config_.cols);
  for (std::size_t c = 0; c < config_.cols; ++c) {
    const AnalogRange& r = ranges[c];
    XLDS_REQUIRE_MSG(0.0 <= r.lo && r.lo <= r.hi && r.hi <= 1.0,
                     "invalid range [" << r.lo << ", " << r.hi << "]");
    Cell& cell = cells_[row][c];
    cell.intended = r;
    if (cell.fault != fault::CellFault::kNone) continue;  // pinned by the defect
    if (config_.apply_variation) {
      const double s = bound_sigma();
      cell.programmed.lo = std::clamp(rng_.normal(r.lo, s), 0.0, 1.0);
      cell.programmed.hi = std::clamp(rng_.normal(r.hi, s), 0.0, 1.0);
      if (cell.programmed.lo > cell.programmed.hi)
        std::swap(cell.programmed.lo, cell.programmed.hi);
    } else {
      cell.programmed = r;
    }
  }
}

std::vector<std::size_t> FeFetAcamArray::exact_match(const std::vector<double>& query) const {
  XLDS_REQUIRE_MSG(query.size() == config_.cols,
                   "query width " << query.size() << " != " << config_.cols);
  for (double q : query) XLDS_REQUIRE_MSG(q >= 0.0 && q <= 1.0, "query value " << q);
  std::vector<std::size_t> matches;
  for (std::size_t r = 0; r < config_.rows; ++r) {
    if (row_sense_dead_[r]) continue;  // a dead amp can't report a match
    bool all = true;
    for (std::size_t c = 0; c < config_.cols; ++c) {
      const Cell& cell = cells_[r][c];
      if (cell.fault == fault::CellFault::kStuckOn) {
        all = false;  // permanent pull-down: mismatches every query
        break;
      }
      if (cell.fault != fault::CellFault::kNone) continue;  // never conducts
      const AnalogRange& pr = cell.programmed;
      if (query[c] < pr.lo || query[c] > pr.hi) {
        all = false;
        break;
      }
    }
    if (all) matches.push_back(r);
  }
  return matches;
}

void FeFetAcamArray::apply_fault_map(const fault::FaultMap& map) {
  XLDS_REQUIRE_MSG(map.rows() == config_.rows && map.cols() == config_.cols,
                   "fault map " << map.rows() << "x" << map.cols() << " != array "
                                << config_.rows << "x" << config_.cols);
  for (std::size_t r = 0; r < config_.rows; ++r) {
    for (std::size_t c = 0; c < config_.cols; ++c)
      cells_[r][c].fault = map.effective(r, c);
    row_sense_dead_[r] = map.row_sense_dead(r) ? 1 : 0;
  }
}

void FeFetAcamArray::age(double dt) {
  XLDS_REQUIRE(dt >= 0.0);
  if (dt == 0.0) return;
  const auto& p = model_.params();
  const double window = p.vth_high - p.vth_low;
  const auto drift_bound = [&](double bound) {
    const double vth = p.vth_low + bound * window;
    return std::clamp((model_.retain(vth, dt, rng_) - p.vth_low) / window, 0.0, 1.0);
  };
  for (auto& row : cells_) {
    for (Cell& cell : row) {
      if (cell.fault != fault::CellFault::kNone) continue;
      cell.programmed.lo = drift_bound(cell.programmed.lo);
      cell.programmed.hi = drift_bound(cell.programmed.hi);
      if (cell.programmed.lo > cell.programmed.hi)
        std::swap(cell.programmed.lo, cell.programmed.hi);
    }
  }
}

std::size_t FeFetAcamArray::faulty_cell_count() const {
  std::size_t n = 0;
  for (const auto& row : cells_)
    for (const Cell& cell : row)
      if (cell.fault != fault::CellFault::kNone) ++n;
  return n;
}

AnalogRange FeFetAcamArray::programmed_range(std::size_t row, std::size_t col) const {
  XLDS_REQUIRE(row < config_.rows && col < config_.cols);
  return cells_[row][col].programmed;
}

SearchCost FeFetAcamArray::search_cost() const {
  const auto& node = device::tech_node(config_.tech);
  circuit::MatchlineParams ml;
  ml.cell_drain_cap = 2.0 * node.tx_drain_cap(node.min_tx_width_um);
  const circuit::MatchlineModel matchline(ml, wire_, config_.cols);

  const circuit::WireSegment sl = wire_.span(config_.rows);
  circuit::DriverModel driver;
  driver.load_capacitance =
      sl.capacitance + static_cast<double>(config_.rows) * node.tx_gate_cap(node.min_tx_width_um);
  driver.swing = model_.params().vth_high;

  // EX-only sensing: wait one on-conductance discharge then latch.
  const double g_on = model_.conductance(model_.params().vth_high, model_.params().vth_low);
  const double t_eval = matchline.discharge_time(matchline.total_conductance(g_on));

  SearchCost cost;
  cost.latency = driver.latency() + t_eval + sense_.latency();
  cost.energy = static_cast<double>(config_.rows) * matchline.search_energy() +
                static_cast<double>(config_.rows) * sense_.energy() +
                2.0 * static_cast<double>(config_.cols) * driver.energy();
  return cost;
}

}  // namespace xlds::cam
