// Analog CAM (ACAM) with FeFET range cells (Sec. II-B1).
//
// Each cell stores an *interval* [lo, hi]: one FeFET's V_th encodes the lower
// bound, the other the upper bound, and an analog input voltage matches the
// cell iff it falls inside the interval (FeCAM-style EX-ACAM).  ACAMs encode
// more information per cell than MCAMs but, as the paper notes, suffer more
// from noise and variation — programming variation directly widens or
// narrows the stored interval, which this model captures.
#pragma once

#include <cstddef>
#include <vector>

#include "cam/types.hpp"
#include "circuit/senseamp.hpp"
#include "circuit/wire.hpp"
#include "device/fefet.hpp"
#include "device/technology.hpp"
#include "fault/fault_map.hpp"
#include "util/rng.hpp"

namespace xlds::cam {

struct AcamConfig {
  device::FeFetParams fefet;
  std::size_t rows = 64;
  std::size_t cols = 32;
  std::string tech = "40nm";
  double cell_pitch_f = 12.0;
  bool apply_variation = true;
  circuit::SenseAmpParams sense;
};

/// A stored analog interval, in the cell's normalised [0, 1] input domain.
struct AnalogRange {
  double lo = 0.0;
  double hi = 1.0;
};

class FeFetAcamArray {
 public:
  FeFetAcamArray(AcamConfig config, Rng& rng);

  std::size_t rows() const noexcept { return config_.rows; }
  std::size_t cols() const noexcept { return config_.cols; }

  /// Program a word of intervals.  Precondition: 0 <= lo <= hi <= 1 per cell.
  void write_word(std::size_t row, const std::vector<AnalogRange>& ranges);

  /// Rows matching an analog query (one value in [0, 1] per cell): every
  /// cell's *programmed* interval (bounds shifted by sampled variation) must
  /// contain the query value.
  std::vector<std::size_t> exact_match(const std::vector<double>& query) const;

  /// The programmed (post-variation) interval of a cell.
  AnalogRange programmed_range(std::size_t row, std::size_t col) const;

  /// Apply a defect map: stuck-on cells mismatch every query, stuck-off and
  /// open cells match every query, and rows with a dead sense amp never
  /// report a match.  Consumes no RNG.
  void apply_fault_map(const fault::FaultMap& map);

  /// Apply `dt` seconds of retention loss: each stored bound drifts through
  /// the FeFET retention model mapped into the [0, 1] input domain.
  void age(double dt);

  std::size_t faulty_cell_count() const;

  SearchCost search_cost() const;

 private:
  struct Cell {
    AnalogRange intended;
    AnalogRange programmed;
    fault::CellFault fault = fault::CellFault::kNone;
  };

  /// Variation of a normalised bound: V_th sigma mapped into the [0, 1]
  /// input domain through the memory-window width.
  double bound_sigma() const;

  AcamConfig config_;
  device::FeFetModel model_;
  circuit::WireModel wire_;
  circuit::SenseAmp sense_;
  mutable Rng rng_;
  std::vector<std::vector<Cell>> cells_;
  std::vector<std::uint8_t> row_sense_dead_;  ///< 1 = matchline SA dead
};

}  // namespace xlds::cam
