// RRAM 2T2R ternary CAM computing Hamming distance (Sec. IV).
//
// Cell: two RRAM devices with access transistors on complementary search
// lines.  Storing bit b puts the device on the "b" side into HRS and the
// complementary device into LRS; a mismatching query routes current through
// the LRS device, so the matchline current is linear in the Hamming distance
// ("the output current is linearly dependent on Hamming distance").  A
// "don't care" (X) cell stores HRS on both sides and contributes ~nothing for
// either query value — the mechanism the TLSH scheme of Fig. 4C exploits.
//
// Device non-idealities from the statistical RRAM model are applied at write
// time (programming variation, optionally variation-aware state mapping) and
// by `age()` (conductance relaxation over time).
#pragma once

#include <cstddef>
#include <vector>

#include "cam/types.hpp"
#include "circuit/matchline.hpp"
#include "circuit/senseamp.hpp"
#include "circuit/wire.hpp"
#include "device/rram.hpp"
#include "device/technology.hpp"
#include "fault/fault_map.hpp"
#include "util/rng.hpp"

namespace xlds::cam {

struct RramTcamConfig {
  device::RramParams rram;
  std::size_t rows = 64;
  std::size_t cols = 128;     ///< hash-signature width (paper: 128 bits on chip)
  std::string tech = "40nm";
  double cell_pitch_f = 8.0;  ///< 2T2R cell pitch along the matchline, F
  double read_voltage = 0.2;  ///< searchline read bias, V
  circuit::SenseAmpParams sense;
  bool apply_variation = true;
  /// Map LRS/HRS levels away from the high-variation conductance band
  /// (the co-optimisation described in Sec. IV).
  bool variation_aware_mapping = false;
  double sense_noise_rel = 0.01;  ///< peripheral analog noise, fraction of full scale
  std::size_t sense_levels = 64;  ///< ADC resolution on the distance current
};

class RramTcamArray {
 public:
  RramTcamArray(RramTcamConfig config, Rng& rng);

  std::size_t rows() const noexcept { return config_.rows; }
  std::size_t cols() const noexcept { return config_.cols; }
  const RramTcamConfig& config() const noexcept { return config_; }

  /// Program a ternary word: entries are 0, 1 or kDontCare.
  void write_word(std::size_t row, const std::vector<int>& bits);

  /// Program a single cell (the column-parallel write-back primitive the
  /// CAM-compute flows use).
  void write_cell(std::size_t row, std::size_t col, int bit);

  /// Stored (intended) bit of a cell.
  int stored_bit(std::size_t row, std::size_t col) const;

  /// Apply conductance relaxation to every non-faulted device for `dt`
  /// seconds.
  void age(double dt);

  /// Apply a defect map (same geometry as the array).  Stuck-on cells put
  /// LRS on both searchlines (a mismatch for every query), stuck-off and
  /// open cells never conduct (a permanent match), and rows with a dead
  /// matchline sense amp read full scale and never win.  Consumes no RNG.
  void apply_fault_map(const fault::FaultMap& map);

  std::size_t faulty_cell_count() const;
  std::size_t dead_sense_rows() const;

  /// Search with a ternary query: 0/1 compare, kDontCare masks the column
  /// (both searchlines held off — the standard TCAM global-mask feature).
  /// Returns sensed Hamming distances per row over the unmasked columns.
  SearchResult search(const std::vector<int>& query) const;

  /// Rows whose unmasked columns all match (sensed distance at the zero
  /// code) — the EX-match primitive CAM-compute builds on.
  std::vector<std::size_t> exact_match(const std::vector<int>& query) const;

  /// Cost of one column-parallel write pass (all rows, one column).
  SearchCost write_cost() const;

  /// Ideal ternary Hamming distance between query and stored word.
  std::size_t ideal_distance(std::size_t row, const std::vector<int>& query) const;

  SearchCost search_cost() const;

 private:
  struct Cell {
    int stored = kDontCare;
    double g_true = 0.0;   ///< device on the "query==1" searchline, S
    double g_false = 0.0;  ///< device on the "query==0" searchline, S
    fault::CellFault fault = fault::CellFault::kNone;
  };

  double lrs_conductance() const;
  double hrs_conductance() const;

  RramTcamConfig config_;
  device::RramModel model_;
  circuit::WireModel wire_;
  circuit::SenseAmp sense_;
  circuit::WinnerTakeAll wta_;
  mutable Rng rng_;
  std::vector<std::vector<Cell>> cells_;
  std::vector<std::uint8_t> row_sense_dead_;  ///< 1 = matchline SA dead
};

}  // namespace xlds::cam
