// Shared vocabulary types for the associative-memory simulators (Sec. II-B1).
#pragma once

#include <cstddef>
#include <limits>
#include <string>
#include <vector>

namespace xlds::cam {

/// Match types supported by the paper's AM taxonomy (Fig. 2C).
enum class MatchType {
  kExact,      ///< all cells must match
  kBest,       ///< row with the smallest distance wins
  kThreshold,  ///< all rows with distance <= threshold
};

/// Distance function realised by the cell design.
enum class DistanceKind {
  kHamming,           ///< binary/ternary cells: count of mismatching cells
  kSquaredEuclidean,  ///< multi-bit cells with square-law devices (Fig. 3D)
};

std::string to_string(MatchType t);
std::string to_string(DistanceKind k);

/// Ternary stored digit: a value in [0, levels) or kDontCare.
inline constexpr int kDontCare = -1;

/// Cost of one search operation, accumulated from the circuit models.
struct SearchCost {
  double latency = 0.0;  ///< s
  double energy = 0.0;   ///< J

  SearchCost& operator+=(const SearchCost& o) {
    latency += o.latency;
    energy += o.energy;
    return *this;
  }
};

/// Result of a search over one (sub)array.
struct SearchResult {
  /// Sensed distance metric per row (quantised; smaller = better match).
  std::vector<double> sensed_distance;
  /// Row index of the best (smallest sensed distance) row; ties break low.
  std::size_t best_row = std::numeric_limits<std::size_t>::max();
  SearchCost cost;
};

}  // namespace xlds::cam
