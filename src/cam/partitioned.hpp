// Subarray-partitioned associative search (Fig. 3F mechanism).
//
// A hypervector of N elements cannot be searched on one matchline: peripheral
// circuitry can only distinguish a bounded number of mismatch units, so the
// word is split across ceil(N / n) subarrays of width n.  How the per-
// subarray results are combined determines the aggregation error:
//   * kVote        — each subarray reports only its best-matching row; the
//                    row with the most votes wins.  Cheapest periphery, but
//                    produces the Fig. 3F-i failure case (globally-best row
//                    loses segment-by-segment).
//   * kSumSensed   — each subarray reports its quantised/saturated sensed
//                    distance; the sums are compared.  More periphery, less
//                    error — but saturation at the mismatch limit still
//                    loses information for small subarrays.
#pragma once

#include <cstddef>
#include <vector>

#include "cam/fefet_cam.hpp"
#include "cam/types.hpp"
#include "fault/policy.hpp"
#include "util/rng.hpp"

namespace xlds::cam {

enum class Aggregation {
  kVote,
  kSumSensed,
};

std::string to_string(Aggregation a);

struct PartitionedCamConfig {
  FeFetCamConfig subarray;    ///< geometry of one subarray; `cols` = segment width
  std::size_t total_width = 1024;  ///< full word width (HV dimensionality)
  Aggregation aggregation = Aggregation::kVote;
};

class PartitionedCam {
 public:
  PartitionedCam(PartitionedCamConfig config, Rng& rng);

  std::size_t segments() const noexcept { return segments_.size(); }
  std::size_t rows() const noexcept { return config_.subarray.rows; }
  std::size_t total_width() const noexcept { return config_.total_width; }

  /// Program a full-width word across all segments.  The final segment is
  /// padded with don't-care cells when total_width is not a multiple of the
  /// segment width.
  void write_word(std::size_t row, const std::vector<int>& digits);

  /// Best-match search for a full-width query using the configured
  /// aggregation.  Also reports combined circuit cost (segments operate in
  /// parallel: latency is the max, energy the sum).
  SearchResult search(const std::vector<int>& query) const;

  /// Ideal (software) best match: exact summed distance over the full word.
  std::size_t ideal_best_match(const std::vector<int>& query) const;

  /// Sample one defect map per segment from `spec`, apply spare remapping per
  /// the policies, load the residual maps into the subarrays, and (when
  /// subarray exclusion is enabled) disable segments whose residual fault
  /// fraction exceeds the threshold — always keeping at least one segment.
  /// One map is drawn per segment in index order from `rng`, so the stream
  /// advance is thread-count independent.
  fault::FaultInjectionStats inject_faults(const fault::FaultSpec& spec,
                                           const fault::GracefulPolicies& policies, Rng& rng);

  /// Apply `dt` seconds of retention loss to every segment.
  void age(double dt);

  std::size_t enabled_segments() const;
  std::size_t faulty_cell_count() const;

 private:
  std::vector<int> segment_slice(const std::vector<int>& full, std::size_t seg,
                                 int pad_value) const;

  PartitionedCamConfig config_;
  std::vector<FeFetCamArray> segments_;
  std::vector<std::uint8_t> segment_enabled_;  ///< 0 = excluded by policy
  std::vector<std::vector<int>> stored_words_;  ///< intended digits per row
};

}  // namespace xlds::cam
