#include "cam/processor.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace xlds::cam {

CamProcessor::CamProcessor(RramTcamConfig config, Rng& rng) : array_(config, rng) {
  // Functional compute needs clean exact matches; callers wanting noise
  // studies can still enable variation, but the default flows assume the
  // sensing can reject a single mismatch (which the EX margin provides).
  std::vector<int> zeros(array_.cols(), 0);
  for (std::size_t r = 0; r < array_.rows(); ++r) array_.write_word(r, zeros);
}

std::size_t CamProcessor::rows() const noexcept { return array_.rows(); }
std::size_t CamProcessor::cols() const noexcept { return array_.cols(); }

void CamProcessor::load_row(std::size_t row, const std::vector<int>& bits) {
  for (int b : bits) XLDS_REQUIRE_MSG(b == 0 || b == 1, "data bits must be binary");
  array_.write_word(row, bits);
}

int CamProcessor::bit(std::size_t row, std::size_t col) const {
  return array_.stored_bit(row, col);
}

std::vector<int> CamProcessor::row_bits(std::size_t row) const {
  std::vector<int> out(array_.cols());
  for (std::size_t c = 0; c < array_.cols(); ++c) out[c] = array_.stored_bit(row, c);
  return out;
}

void CamProcessor::column_write(const std::vector<std::size_t>& rows_to_set, std::size_t col,
                                int bit) {
  for (std::size_t r : rows_to_set) array_.write_cell(r, col, bit);
  ++cost_.writes;
  cost_.total += array_.write_cost();
}

void CamProcessor::apply(std::size_t dst_col, const std::vector<std::size_t>& src_cols,
                         const std::vector<int>& truth_table) {
  XLDS_REQUIRE(dst_col < cols());
  XLDS_REQUIRE(!src_cols.empty() && src_cols.size() <= 8);
  XLDS_REQUIRE_MSG(truth_table.size() == (std::size_t{1} << src_cols.size()),
                   "truth table needs 2^" << src_cols.size() << " entries");
  for (std::size_t s : src_cols) {
    XLDS_REQUIRE(s < cols());
    XLDS_REQUIRE_MSG(s != dst_col, "destination column must not be a source");
  }

  // Clear the destination column (one parallel write), then set it for every
  // row matching a 1-minterm.
  std::vector<std::size_t> all_rows(rows());
  for (std::size_t r = 0; r < rows(); ++r) all_rows[r] = r;
  column_write(all_rows, dst_col, 0);

  for (std::size_t minterm = 0; minterm < truth_table.size(); ++minterm) {
    const int out = truth_table[minterm];
    XLDS_REQUIRE_MSG(out == 0 || out == 1, "truth table entries must be binary");
    if (out == 0) continue;
    std::vector<int> query(cols(), kDontCare);
    for (std::size_t i = 0; i < src_cols.size(); ++i)
      query[src_cols[i]] = static_cast<int>((minterm >> i) & 1u);
    const std::vector<std::size_t> matched = array_.exact_match(query);
    ++cost_.searches;
    cost_.total += array_.search_cost();
    if (!matched.empty()) column_write(matched, dst_col, 1);
  }
}

void CamProcessor::add_words(const std::vector<std::size_t>& a_cols,
                             const std::vector<std::size_t>& b_cols,
                             const std::vector<std::size_t>& out_cols, std::size_t carry_col,
                             std::size_t scratch_col) {
  XLDS_REQUIRE(!a_cols.empty());
  XLDS_REQUIRE(a_cols.size() == b_cols.size() && a_cols.size() == out_cols.size());
  XLDS_REQUIRE(carry_col < cols() && scratch_col < cols() && carry_col != scratch_col);

  // XOR3 and MAJ3 truth tables over (a, b, carry), index = a + 2b + 4c.
  const std::vector<int> xor3 = {0, 1, 1, 0, 1, 0, 0, 1};
  const std::vector<int> maj3 = {0, 0, 0, 1, 0, 1, 1, 1};
  const std::vector<int> identity = {0, 1};

  // carry := 0 for every row.
  std::vector<std::size_t> all_rows(rows());
  for (std::size_t r = 0; r < rows(); ++r) all_rows[r] = r;
  column_write(all_rows, carry_col, 0);

  for (std::size_t i = 0; i < a_cols.size(); ++i) {
    apply(out_cols[i], {a_cols[i], b_cols[i], carry_col}, xor3);
    apply(scratch_col, {a_cols[i], b_cols[i], carry_col}, maj3);
    apply(carry_col, {scratch_col}, identity);
  }
}

}  // namespace xlds::cam
