#include "cam/fefet_cam.hpp"

#include <algorithm>
#include <cmath>

#include "circuit/converter.hpp"
#include "util/error.hpp"

namespace xlds::cam {

namespace {
constexpr std::uint64_t kCamStreamTag = 0xCA11AB1E;
}

FeFetCamArray::FeFetCamArray(FeFetCamConfig config, Rng& rng)
    : config_(config),
      model_(config.fefet),
      wire_(device::tech_node(config.tech), config.cell_pitch_f),
      matchline_(
          [&] {
            circuit::MatchlineParams p = config.matchline;
            if (p.cell_drain_cap == 0.0) {
              // Two FeFET drains load the matchline per cell.
              p.cell_drain_cap =
                  2.0 * device::tech_node(config.tech)
                            .tx_drain_cap(device::tech_node(config.tech).min_tx_width_um);
            }
            // A matching cell still leaks at the sub-threshold bias point;
            // that (not Ioff) is the matchline's per-cell leak floor.
            const auto& fp = model_.params();
            p.leak_conductance_per_cell =
                2.0 * model_.conductance(fp.vth_low - model_.search_margin(), fp.vth_low);
            return p;
          }(),
          wire_, config.cols),
      sense_(config.sense),
      rng_(rng.fork(kCamStreamTag)),
      cells_(config.rows, std::vector<Cell>(config.cols)),
      row_sense_dead_(config.rows, 0) {
  XLDS_REQUIRE(config_.rows >= 1 && config_.cols >= 1);
  XLDS_REQUIRE(config_.sense_levels >= 2);
  XLDS_REQUIRE(config_.sense_noise_rel >= 0.0);
}

void FeFetCamArray::write_word(std::size_t row, const std::vector<int>& digits) {
  XLDS_REQUIRE_MSG(row < config_.rows, "row " << row << " out of range");
  XLDS_REQUIRE_MSG(digits.size() == config_.cols,
                   "word width " << digits.size() << " != " << config_.cols << " cols");
  const int n_levels = levels();
  for (std::size_t c = 0; c < config_.cols; ++c) {
    const int d = digits[c];
    XLDS_REQUIRE_MSG(d == kDontCare || (d >= 0 && d < n_levels),
                     "digit " << d << " invalid for " << n_levels << "-level cell");
    Cell& cell = cells_[row][c];
    cell.stored = d;
    if (cell.fault != fault::CellFault::kNone) continue;
    if (d == kDontCare) {
      // Both devices at the highest V_th: never conduct for any legal query.
      const double top = model_.params().vth_high;
      cell.vth_a = config_.apply_variation ? rng_.normal(top, model_.params().sigma_program) : top;
      cell.vth_b = config_.apply_variation ? rng_.normal(top, model_.params().sigma_program) : top;
      continue;
    }
    const int comp = n_levels - 1 - d;
    if (config_.apply_variation) {
      cell.vth_a = model_.program_vth(d, rng_);
      cell.vth_b = model_.program_vth(comp, rng_);
    } else {
      cell.vth_a = model_.level_vth(d);
      cell.vth_b = model_.level_vth(comp);
    }
  }
}

int FeFetCamArray::readback_digit(std::size_t row, std::size_t col) const {
  XLDS_REQUIRE(row < config_.rows && col < config_.cols);
  const Cell& cell = cells_[row][col];
  if (cell.stored == kDontCare) return kDontCare;
  return model_.readback_level(cell.vth_a);
}

double FeFetCamArray::cell_conductance(const Cell& cell, int query_digit) const {
  switch (cell.fault) {
    case fault::CellFault::kStuckOn: return stuck_on_conductance();
    case fault::CellFault::kStuckOff:
    case fault::CellFault::kOpen: return 0.0;
    case fault::CellFault::kNone: break;
  }
  const int n_levels = levels();
  const double v_a = model_.search_voltage(query_digit);
  const double v_b = model_.search_voltage(n_levels - 1 - query_digit);
  return model_.conductance(v_a, cell.vth_a) + model_.conductance(v_b, cell.vth_b);
}

double FeFetCamArray::stuck_on_conductance() const {
  return 2.0 * model_.conductance(model_.search_voltage(levels() - 1), model_.level_vth(0));
}

void FeFetCamArray::apply_fault_map(const fault::FaultMap& map) {
  XLDS_REQUIRE_MSG(map.rows() == config_.rows && map.cols() == config_.cols,
                   "fault map " << map.rows() << "x" << map.cols() << " != array "
                                << config_.rows << "x" << config_.cols);
  for (std::size_t r = 0; r < config_.rows; ++r) {
    for (std::size_t c = 0; c < config_.cols; ++c)
      cells_[r][c].fault = map.effective(r, c);
    row_sense_dead_[r] = map.row_sense_dead(r) ? 1 : 0;
  }
}

void FeFetCamArray::age(double dt) {
  XLDS_REQUIRE(dt >= 0.0);
  if (dt == 0.0) return;
  for (auto& row : cells_) {
    for (Cell& cell : row) {
      if (cell.fault != fault::CellFault::kNone) continue;
      cell.vth_a = model_.retain(cell.vth_a, dt, rng_);
      cell.vth_b = model_.retain(cell.vth_b, dt, rng_);
    }
  }
}

std::size_t FeFetCamArray::faulty_cell_count() const {
  std::size_t n = 0;
  for (const auto& row : cells_)
    for (const Cell& cell : row)
      if (cell.fault != fault::CellFault::kNone) ++n;
  return n;
}

std::size_t FeFetCamArray::dead_sense_rows() const {
  std::size_t n = 0;
  for (auto dead : row_sense_dead_)
    if (dead) ++n;
  return n;
}

double FeFetCamArray::cell_transfer_conductance(double v_in, int stored_level) const {
  const int n_levels = levels();
  XLDS_REQUIRE(stored_level >= 0 && stored_level < n_levels);
  const auto& p = model_.params();
  // Continuous extension of the search encoding: the complementary gate sees
  // the reflected voltage such that v_in == search_voltage(q) maps to
  // v_b == search_voltage(L-1-q).
  const double v_b = (p.vth_low + p.vth_high - 2.0 * model_.search_margin()) - v_in;
  const double vth_a = model_.level_vth(stored_level);
  const double vth_b = model_.level_vth(n_levels - 1 - stored_level);
  return model_.conductance(v_in, vth_a) + model_.conductance(v_b, vth_b);
}

double FeFetCamArray::match_baseline_conductance() const {
  Cell ref;
  ref.stored = 0;
  ref.vth_a = model_.level_vth(0);
  ref.vth_b = model_.level_vth(levels() - 1);
  return cell_conductance(ref, 0);
}

double FeFetCamArray::unit_conductance() const {
  // Conductance step of a single one-level mismatch over the match baseline:
  // the sensing full scale is mismatch_limit() of these units.
  Cell ref;
  ref.stored = 0;
  ref.vth_a = model_.level_vth(0);
  ref.vth_b = model_.level_vth(levels() - 1);
  const double g1 = cell_conductance(ref, std::min(1, levels() - 1));
  const double g_match = match_baseline_conductance();
  XLDS_ASSERT(g1 > g_match);
  return g1 - g_match;
}

std::size_t FeFetCamArray::mismatch_limit() const {
  const std::size_t limit =
      matchline_.mismatch_limit(unit_conductance(), config_.sense.min_margin_v);
  return std::max<std::size_t>(limit, 1);
}

SearchResult FeFetCamArray::search(const std::vector<int>& query) const {
  XLDS_REQUIRE_MSG(query.size() == config_.cols,
                   "query width " << query.size() << " != " << config_.cols);
  const int n_levels = levels();
  for (int q : query) XLDS_REQUIRE_MSG(q >= 0 && q < n_levels, "query digit " << q);

  const double g_unit = unit_conductance();
  const double g_baseline = match_baseline_conductance() * static_cast<double>(config_.cols);

  // Discharge-time sensing digitises the matchline's *time constant*, which
  // is uniform in log-conductance: small distances resolve finely (long
  // discharge, many time codes apart), large distances compress (everything
  // far discharges almost instantly).  Full scale is a row of maximal
  // mismatches; the floor (half a mismatch unit) reads as a clean match.
  Cell worst;
  worst.stored = 0;
  worst.vth_a = model_.level_vth(0);
  worst.vth_b = model_.level_vth(levels() - 1);
  const double max_r =
      (cell_conductance(worst, levels() - 1) - match_baseline_conductance()) / g_unit;
  const double full_scale = static_cast<double>(config_.cols) * std::max(max_r, 1.0);
  constexpr double kFloor = 0.5;
  const double log_step =
      std::log(full_scale / kFloor) / static_cast<double>(config_.sense_levels);

  SearchResult result;
  result.sensed_distance.resize(config_.rows);
  double best = HUGE_VAL;
  for (std::size_t r = 0; r < config_.rows; ++r) {
    double g_row = 0.0;
    for (std::size_t c = 0; c < config_.cols; ++c)
      g_row += cell_conductance(cells_[r][c], query[c]);
    // Self-referenced: subtract the all-match baseline, express in single-
    // mismatch units; time jitter appears as noise proportional to the
    // metric (plus a one-unit floor from comparator offset).
    double metric = (g_row - g_baseline) / g_unit;
    if (config_.sense_noise_rel > 0.0)
      metric += rng_.normal(0.0, config_.sense_noise_rel * (std::abs(metric) + 1.0));
    metric = std::clamp(metric, 0.0, full_scale);
    double sensed = 0.0;
    if (metric >= kFloor) {
      const double code = std::round(std::log(metric / kFloor) / log_step);
      sensed = kFloor * std::exp(code * log_step);
    }
    // A dead matchline sense amp reads full scale regardless of the match
    // state; the row can never win.  (The metric/noise path above still runs
    // so the RNG stream is identical with and without dead amps.)
    if (row_sense_dead_[r]) sensed = full_scale;
    result.sensed_distance[r] = sensed;
    if (!row_sense_dead_[r] && sensed < best) {
      best = sensed;
      result.best_row = r;
    }
  }
  if (result.best_row >= config_.rows) result.best_row = 0;  // every amp dead
  result.cost = search_cost();
  return result;
}

std::vector<std::size_t> FeFetCamArray::threshold_match(const std::vector<int>& query,
                                                        double threshold) const {
  const SearchResult res = search(query);
  std::vector<std::size_t> rows;
  for (std::size_t r = 0; r < res.sensed_distance.size(); ++r)
    if (res.sensed_distance[r] <= threshold) rows.push_back(r);
  return rows;
}

std::vector<std::size_t> FeFetCamArray::exact_match(const std::vector<int>& query) const {
  // A full match senses strictly below the half-unit floor and reads 0; the
  // smallest real mismatch reads >= 0.5 units.
  return threshold_match(query, 0.25);
}

double FeFetCamArray::ideal_distance(std::size_t row, const std::vector<int>& query) const {
  XLDS_REQUIRE(row < config_.rows);
  XLDS_REQUIRE(query.size() == config_.cols);
  double d = 0.0;
  for (std::size_t c = 0; c < config_.cols; ++c) {
    const int s = cells_[row][c].stored;
    if (s == kDontCare) continue;
    const double delta = static_cast<double>(query[c] - s);
    d += delta * delta;
  }
  return d;
}

SearchCost FeFetCamArray::search_cost() const {
  const auto& node = device::tech_node(config_.tech);
  // Search-line drivers: two vertical lines per column, each loaded by the
  // wire spanning all rows plus one gate per row.
  const circuit::WireSegment sl = wire_.span(config_.rows);
  circuit::DriverModel driver;
  driver.load_capacitance =
      sl.capacitance + static_cast<double>(config_.rows) * node.tx_gate_cap(node.min_tx_width_um);
  driver.swing = model_.params().vth_high;

  // Reference discharge: a one-unit mismatch — the slowest event the sensing
  // scheme must wait for.
  const double t_discharge =
      matchline_.discharge_time(matchline_.total_conductance(unit_conductance()));

  SearchCost cost;
  cost.latency = driver.latency() + t_discharge + sense_.latency() + wta_.latency(config_.rows);
  cost.energy = static_cast<double>(config_.rows) * matchline_.search_energy() +
                static_cast<double>(config_.rows) * sense_.energy() +
                2.0 * static_cast<double>(config_.cols) * driver.energy() +
                wta_.energy(config_.rows);
  return cost;
}

std::string to_string(MatchType t) {
  switch (t) {
    case MatchType::kExact: return "EX";
    case MatchType::kBest: return "BE";
    case MatchType::kThreshold: return "TH";
  }
  return "?";
}

std::string to_string(DistanceKind k) {
  switch (k) {
    case DistanceKind::kHamming: return "Hamming";
    case DistanceKind::kSquaredEuclidean: return "SquaredEuclidean";
  }
  return "?";
}

}  // namespace xlds::cam
