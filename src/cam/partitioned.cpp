#include "cam/partitioned.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace xlds::cam {

std::string to_string(Aggregation a) {
  switch (a) {
    case Aggregation::kVote: return "vote";
    case Aggregation::kSumSensed: return "sum-sensed";
  }
  return "?";
}

PartitionedCam::PartitionedCam(PartitionedCamConfig config, Rng& rng) : config_(config) {
  XLDS_REQUIRE(config_.total_width >= 1);
  XLDS_REQUIRE(config_.subarray.cols >= 1);
  const std::size_t n_seg =
      (config_.total_width + config_.subarray.cols - 1) / config_.subarray.cols;
  segments_.reserve(n_seg);
  for (std::size_t s = 0; s < n_seg; ++s) segments_.emplace_back(config_.subarray, rng);
  segment_enabled_.assign(n_seg, 1);
  stored_words_.assign(config_.subarray.rows, {});
}

fault::FaultInjectionStats PartitionedCam::inject_faults(const fault::FaultSpec& spec,
                                                         const fault::GracefulPolicies& policies,
                                                         Rng& rng) {
  fault::FaultInjectionStats stats;
  const std::size_t seg_cells = config_.subarray.rows * config_.subarray.cols;
  std::vector<double> residual_fraction(segments_.size(), 0.0);
  for (std::size_t s = 0; s < segments_.size(); ++s) {
    const fault::RemapOutcome out = fault::remapped_fault_map(
        config_.subarray.rows, config_.subarray.cols, spec, policies, rng);
    segments_[s].apply_fault_map(out.residual);
    stats.injected_cells += out.unrepaired_faults;
    stats.residual_cells += out.residual.fault_count();
    stats.remapped_rows += out.plan.remapped_rows;
    stats.remapped_cols += out.plan.remapped_cols;
    residual_fraction[s] = static_cast<double>(out.plan.residual_faults) /
                           static_cast<double>(seg_cells);
  }
  segment_enabled_.assign(segments_.size(), 1);
  if (policies.exclude_subarrays) {
    for (std::size_t s = 0; s < segments_.size(); ++s)
      if (residual_fraction[s] > policies.exclusion_threshold) segment_enabled_[s] = 0;
    // Aggregation needs at least one live segment; keep the cleanest.
    if (std::find(segment_enabled_.begin(), segment_enabled_.end(), 1) ==
        segment_enabled_.end()) {
      const std::size_t best = static_cast<std::size_t>(
          std::min_element(residual_fraction.begin(), residual_fraction.end()) -
          residual_fraction.begin());
      segment_enabled_[best] = 1;
    }
    for (auto enabled : segment_enabled_)
      if (!enabled) ++stats.excluded_segments;
  }
  return stats;
}

void PartitionedCam::age(double dt) {
  for (FeFetCamArray& seg : segments_) seg.age(dt);
}

std::size_t PartitionedCam::enabled_segments() const {
  std::size_t n = 0;
  for (auto enabled : segment_enabled_)
    if (enabled) ++n;
  return n;
}

std::size_t PartitionedCam::faulty_cell_count() const {
  std::size_t n = 0;
  for (const FeFetCamArray& seg : segments_) n += seg.faulty_cell_count();
  return n;
}

std::vector<int> PartitionedCam::segment_slice(const std::vector<int>& full, std::size_t seg,
                                               int pad_value) const {
  const std::size_t w = config_.subarray.cols;
  std::vector<int> slice(w, pad_value);
  const std::size_t begin = seg * w;
  const std::size_t end = std::min(begin + w, full.size());
  for (std::size_t i = begin; i < end; ++i) slice[i - begin] = full[i];
  return slice;
}

void PartitionedCam::write_word(std::size_t row, const std::vector<int>& digits) {
  XLDS_REQUIRE_MSG(digits.size() == config_.total_width,
                   "word width " << digits.size() << " != " << config_.total_width);
  for (std::size_t s = 0; s < segments_.size(); ++s)
    segments_[s].write_word(row, segment_slice(digits, s, kDontCare));
  stored_words_[row] = digits;
}

SearchResult PartitionedCam::search(const std::vector<int>& query) const {
  XLDS_REQUIRE_MSG(query.size() == config_.total_width,
                   "query width " << query.size() << " != " << config_.total_width);
  const std::size_t n_rows = config_.subarray.rows;

  SearchResult combined;
  combined.sensed_distance.assign(n_rows, 0.0);
  std::vector<double> votes(n_rows, 0.0);
  double max_latency = 0.0;
  for (std::size_t seg_index = 0; seg_index < segments_.size(); ++seg_index) {
    if (!segment_enabled_[seg_index]) continue;  // excluded by the fault policy
    // Queries into padded tail cells use level 0; the stored pad cells are
    // don't-care so they contribute no conductance either way.
    const std::vector<int> q = segment_slice(query, seg_index, 0);
    const SearchResult res = segments_[seg_index].search(q);
    max_latency = std::max(max_latency, res.cost.latency);
    combined.cost.energy += res.cost.energy;
    for (std::size_t r = 0; r < n_rows; ++r) combined.sensed_distance[r] += res.sensed_distance[r];
    if (config_.aggregation == Aggregation::kVote) votes[res.best_row] += 1.0;
  }
  combined.cost.latency = max_latency;

  if (config_.aggregation == Aggregation::kVote) {
    // Most votes wins; ties break toward the smaller summed sensed distance,
    // then the lower row index.
    std::size_t best = 0;
    for (std::size_t r = 1; r < n_rows; ++r) {
      if (votes[r] > votes[best] ||
          (votes[r] == votes[best] &&
           combined.sensed_distance[r] < combined.sensed_distance[best]))
        best = r;
    }
    combined.best_row = best;
  } else {
    combined.best_row =
        static_cast<std::size_t>(std::min_element(combined.sensed_distance.begin(),
                                                  combined.sensed_distance.end()) -
                                 combined.sensed_distance.begin());
  }
  return combined;
}

std::size_t PartitionedCam::ideal_best_match(const std::vector<int>& query) const {
  XLDS_REQUIRE(query.size() == config_.total_width);
  std::size_t best = 0;
  double best_d = HUGE_VAL;
  for (std::size_t r = 0; r < stored_words_.size(); ++r) {
    XLDS_REQUIRE_MSG(!stored_words_[r].empty(), "row " << r << " was never written");
    double d = 0.0;
    for (std::size_t i = 0; i < config_.total_width; ++i) {
      const int s = stored_words_[r][i];
      if (s == kDontCare) continue;
      const double delta = static_cast<double>(query[i] - s);
      d += delta * delta;
    }
    if (d < best_d) {
      best_d = d;
      best = r;
    }
  }
  return best;
}

}  // namespace xlds::cam
