// Content-addressable processing (the CAPE-style "general purpose
// computation" capability of AMs, Sec. VI).
//
// The primitive: a masked exact-match search selects, in one array
// operation, every row whose chosen columns match a pattern; a column-
// parallel write then updates one column of the selected rows.  Iterating
// over the minterms of a truth table evaluates ANY boolean function of a few
// columns across ALL rows simultaneously — row-parallel SIMD where the
// "vector length" is the array height.  Word-wide arithmetic (the ripple
// adder here) composes from bit-slice truth tables.
#pragma once

#include <cstddef>
#include <vector>

#include "cam/rram_tcam.hpp"
#include "util/rng.hpp"

namespace xlds::cam {

/// Accumulated cost of a CAM-compute kernel, in array operations and the
/// circuit-level totals they imply.
struct CamOpCost {
  std::size_t searches = 0;  ///< masked exact-match passes
  std::size_t writes = 0;    ///< column-parallel write passes
  SearchCost total;          ///< summed latency/energy
};

class CamProcessor {
 public:
  /// The processor owns a ternary CAM of `config.rows` data words.
  CamProcessor(RramTcamConfig config, Rng& rng);

  std::size_t rows() const noexcept;
  std::size_t cols() const noexcept;

  /// Load a row of bits (0/1).
  void load_row(std::size_t row, const std::vector<int>& bits);

  /// Read back a stored bit / row (functional view).
  int bit(std::size_t row, std::size_t col) const;
  std::vector<int> row_bits(std::size_t row) const;

  /// dst[r] = f(src0[r], src1[r], ...) for every row r, where f is given as
  /// a truth table of size 2^srcs (index = src bits, src0 = LSB).  dst must
  /// not be one of the sources.  Cost: one write pass to clear dst plus one
  /// search + one write pass per 1-minterm.
  void apply(std::size_t dst_col, const std::vector<std::size_t>& src_cols,
             const std::vector<int>& truth_table);

  /// Row-parallel ripple-carry addition: out = a + b over `width`-bit
  /// little-endian operands in columns a_cols/b_cols, for every row.  The
  /// final carry lands in carry_col; scratch_col is clobbered.  All column
  /// sets must be disjoint.
  void add_words(const std::vector<std::size_t>& a_cols,
                 const std::vector<std::size_t>& b_cols,
                 const std::vector<std::size_t>& out_cols, std::size_t carry_col,
                 std::size_t scratch_col);

  const CamOpCost& cost() const noexcept { return cost_; }
  void reset_cost() { cost_ = {}; }

 private:
  void column_write(const std::vector<std::size_t>& rows_to_set, std::size_t col, int bit);

  RramTcamArray array_;
  CamOpCost cost_;
};

}  // namespace xlds::cam
