#include "cam/rram_tcam.hpp"

#include <algorithm>
#include <cmath>

#include "circuit/converter.hpp"
#include "device/device.hpp"
#include "util/error.hpp"

namespace xlds::cam {

namespace {
constexpr std::uint64_t kTcamStreamTag = 0x7CA2B17;

/// Pick the (HRS, LRS) conductance pair maximising sensing margin per unit of
/// programming sigma — the Sec.-IV co-optimisation of mapping states away
/// from the high-variation band (while an upper conductance bound keeps IR
/// drop negligible).
std::pair<double, double> variation_aware_binary_mapping(const device::RramModel& model) {
  const auto& p = model.params();
  constexpr int kGrid = 64;
  double best_lo = p.g_min;
  double best_hi = p.g_max;
  double best_score = 0.0;
  for (int i = 0; i < kGrid; ++i) {
    const double lo = p.g_min + (p.g_max - p.g_min) * 0.3 * i / (kGrid - 1);
    for (int j = 0; j < kGrid; ++j) {
      const double hi = lo + (p.g_max - lo) * j / (kGrid - 1);
      if (hi - lo < 0.3 * (p.g_max - p.g_min)) continue;  // keep a usable window
      const double score = (hi - lo) / (model.sigma_at(hi) + model.sigma_at(lo));
      if (score > best_score) {
        best_score = score;
        best_lo = lo;
        best_hi = hi;
      }
    }
  }
  return {best_lo, best_hi};
}

}  // namespace

RramTcamArray::RramTcamArray(RramTcamConfig config, Rng& rng)
    : config_(config),
      model_(config.rram),
      wire_(device::tech_node(config.tech), config.cell_pitch_f),
      sense_(config.sense),
      rng_(rng.fork(kTcamStreamTag)),
      cells_(config.rows, std::vector<Cell>(config.cols)),
      row_sense_dead_(config.rows, 0) {
  XLDS_REQUIRE(config_.rows >= 1 && config_.cols >= 1);
  XLDS_REQUIRE(config_.read_voltage > 0.0);
  XLDS_REQUIRE(config_.sense_levels >= 2);
}

double RramTcamArray::lrs_conductance() const {
  if (config_.variation_aware_mapping)
    return variation_aware_binary_mapping(model_).second;
  return model_.params().g_max;
}

double RramTcamArray::hrs_conductance() const {
  if (config_.variation_aware_mapping)
    return variation_aware_binary_mapping(model_).first;
  return model_.params().g_min;
}

void RramTcamArray::write_cell(std::size_t row, std::size_t col, int bit) {
  XLDS_REQUIRE_MSG(row < config_.rows, "row " << row << " out of range");
  XLDS_REQUIRE_MSG(col < config_.cols, "col " << col << " out of range");
  XLDS_REQUIRE_MSG(bit == 0 || bit == 1 || bit == kDontCare, "bit " << bit);
  const double g_lrs = lrs_conductance();
  const double g_hrs = hrs_conductance();
  Cell& cell = cells_[row][col];
  cell.stored = bit;
  if (cell.fault != fault::CellFault::kNone) return;  // pinned by the defect
  // Mismatch conducts: stored 1 puts LRS on the query==0 searchline.
  double target_true = g_hrs;   // device sampled when query bit == 1
  double target_false = g_hrs;  // device sampled when query bit == 0
  if (bit == 1) target_false = g_lrs;
  if (bit == 0) target_true = g_lrs;
  if (config_.apply_variation) {
    cell.g_true = model_.program_verify(target_true, rng_);
    cell.g_false = model_.program_verify(target_false, rng_);
  } else {
    cell.g_true = target_true;
    cell.g_false = target_false;
  }
}

int RramTcamArray::stored_bit(std::size_t row, std::size_t col) const {
  XLDS_REQUIRE(row < config_.rows && col < config_.cols);
  return cells_[row][col].stored;
}

void RramTcamArray::write_word(std::size_t row, const std::vector<int>& bits) {
  XLDS_REQUIRE_MSG(bits.size() == config_.cols,
                   "word width " << bits.size() << " != " << config_.cols);
  for (std::size_t c = 0; c < config_.cols; ++c) write_cell(row, c, bits[c]);
}

void RramTcamArray::age(double dt) {
  XLDS_REQUIRE(dt >= 0.0);
  for (auto& row : cells_) {
    for (Cell& cell : row) {
      if (cell.fault != fault::CellFault::kNone) continue;
      cell.g_true = model_.relax(cell.g_true, dt, rng_);
      cell.g_false = model_.relax(cell.g_false, dt, rng_);
    }
  }
}

void RramTcamArray::apply_fault_map(const fault::FaultMap& map) {
  XLDS_REQUIRE_MSG(map.rows() == config_.rows && map.cols() == config_.cols,
                   "fault map " << map.rows() << "x" << map.cols() << " != array "
                                << config_.rows << "x" << config_.cols);
  const double g_lrs = lrs_conductance();
  for (std::size_t r = 0; r < config_.rows; ++r) {
    for (std::size_t c = 0; c < config_.cols; ++c) {
      Cell& cell = cells_[r][c];
      cell.fault = map.effective(r, c);
      switch (cell.fault) {
        case fault::CellFault::kStuckOn:
          cell.g_true = g_lrs;
          cell.g_false = g_lrs;
          break;
        case fault::CellFault::kStuckOff:
        case fault::CellFault::kOpen:
          cell.g_true = 0.0;
          cell.g_false = 0.0;
          break;
        case fault::CellFault::kNone: break;
      }
    }
    row_sense_dead_[r] = map.row_sense_dead(r) ? 1 : 0;
  }
}

std::size_t RramTcamArray::faulty_cell_count() const {
  std::size_t n = 0;
  for (const auto& row : cells_)
    for (const Cell& cell : row)
      if (cell.fault != fault::CellFault::kNone) ++n;
  return n;
}

std::size_t RramTcamArray::dead_sense_rows() const {
  std::size_t n = 0;
  for (auto dead : row_sense_dead_)
    if (dead) ++n;
  return n;
}

SearchResult RramTcamArray::search(const std::vector<int>& query) const {
  XLDS_REQUIRE_MSG(query.size() == config_.cols,
                   "query width " << query.size() << " != " << config_.cols);
  std::size_t active_cols = 0;
  for (int q : query) {
    XLDS_REQUIRE_MSG(q == 0 || q == 1 || q == kDontCare, "query bit " << q);
    if (q != kDontCare) ++active_cols;
  }
  XLDS_REQUIRE_MSG(active_cols > 0, "fully masked query");

  const double g_lrs = lrs_conductance();
  const double g_hrs = hrs_conductance();
  const double g_unit = g_lrs - g_hrs;
  XLDS_ASSERT(g_unit > 0.0);
  const auto full_scale = static_cast<double>(active_cols);
  const double step = full_scale / static_cast<double>(config_.sense_levels);

  SearchResult result;
  result.sensed_distance.resize(config_.rows);
  double best = HUGE_VAL;
  for (std::size_t r = 0; r < config_.rows; ++r) {
    double g_row = 0.0;
    for (std::size_t c = 0; c < config_.cols; ++c) {
      if (query[c] == kDontCare) continue;  // searchlines held off
      const Cell& cell = cells_[r][c];
      g_row += (query[c] == 1) ? cell.g_true : cell.g_false;
    }
    // Subtract the HRS baseline so the metric is in Hamming-distance units.
    double metric = (g_row - static_cast<double>(active_cols) * g_hrs) / g_unit;
    if (config_.sense_noise_rel > 0.0)
      metric += rng_.normal(0.0, config_.sense_noise_rel * full_scale);
    metric = std::clamp(metric, 0.0, full_scale);
    double sensed = std::round(metric / step) * step;
    // A dead matchline sense amp reads full scale and can never win.  (The
    // noise draw above still happens so the RNG stream is unchanged.)
    if (row_sense_dead_[r]) sensed = full_scale;
    result.sensed_distance[r] = sensed;
    if (!row_sense_dead_[r] && sensed < best) {
      best = sensed;
      result.best_row = r;
    }
  }
  if (result.best_row >= config_.rows) result.best_row = 0;  // every amp dead
  result.cost = search_cost();
  return result;
}

std::vector<std::size_t> RramTcamArray::exact_match(const std::vector<int>& query) const {
  const SearchResult res = search(query);
  std::size_t active_cols = 0;
  for (int q : query)
    if (q != kDontCare) ++active_cols;
  const double step =
      static_cast<double>(active_cols) / static_cast<double>(config_.sense_levels);
  std::vector<std::size_t> rows;
  for (std::size_t r = 0; r < res.sensed_distance.size(); ++r)
    if (res.sensed_distance[r] <= step / 2.0) rows.push_back(r);
  return rows;
}

SearchCost RramTcamArray::write_cost() const {
  // Column-parallel write: one programming pulse sequence drives a column's
  // devices across all rows; energy is per programmed cell (2 devices).
  const auto& dev = device::traits(device::DeviceKind::kRram);
  SearchCost cost;
  cost.latency = dev.write_latency;
  cost.energy = 2.0 * dev.write_energy * static_cast<double>(config_.rows);
  return cost;
}

std::size_t RramTcamArray::ideal_distance(std::size_t row, const std::vector<int>& query) const {
  XLDS_REQUIRE(row < config_.rows);
  XLDS_REQUIRE(query.size() == config_.cols);
  std::size_t d = 0;
  for (std::size_t c = 0; c < config_.cols; ++c) {
    const int s = cells_[row][c].stored;
    if (s == kDontCare) continue;
    if (s != query[c]) ++d;
  }
  return d;
}

SearchCost RramTcamArray::search_cost() const {
  const auto& node = device::tech_node(config_.tech);
  circuit::MatchlineParams ml;
  ml.v_precharge = config_.read_voltage;
  ml.v_sense = config_.read_voltage / 2.0;
  ml.cell_drain_cap = 2.0 * node.tx_drain_cap(node.min_tx_width_um);
  ml.leak_conductance_per_cell = hrs_conductance();
  const circuit::MatchlineModel matchline(ml, wire_, config_.cols);

  const circuit::WireSegment sl = wire_.span(config_.rows);
  circuit::DriverModel driver;
  driver.load_capacitance =
      sl.capacitance + static_cast<double>(config_.rows) * node.tx_gate_cap(node.min_tx_width_um);
  driver.swing = config_.read_voltage;

  // Evaluation window: one LRS unit discharging the line.
  const double t_eval = matchline.discharge_time(matchline.total_conductance(lrs_conductance()));

  SearchCost cost;
  cost.latency = driver.latency() + t_eval + sense_.latency() + wta_.latency(config_.rows);
  cost.energy = static_cast<double>(config_.rows) * matchline.search_energy() +
                static_cast<double>(config_.rows) * sense_.energy() +
                2.0 * static_cast<double>(config_.cols) * driver.energy() +
                wta_.energy(config_.rows);
  return cost;
}

}  // namespace xlds::cam
