// Functional multi-bit FeFET CAM subarray (Secs. II-B1 and III).
//
// Cell: two FeFETs sharing a matchline (Fig. 2B).  A cell storing level s out
// of L encodes V_th(s) in one device and the complementary V_th(L-1-s) in the
// other; the query drives the first gate with the search voltage for level q
// and the second with the complement.  A matching cell leaves both devices
// below threshold; a mismatching cell turns one device on with gate overdrive
// proportional to |q - s| level steps, so the square-law device conducts
// ~|q - s|^2 — the cell natively computes a squared-Euclidean contribution
// (Fig. 3D).  With 1-bit cells this degenerates to the classic XNOR TCAM and
// a Hamming distance.
//
// The array senses each matchline's total pull-down conductance through a
// quantising distance sensor with a saturation point set by the matchline
// mismatch limit — exactly the peripheral-resolution constraint that forces
// the subarray partitioning studied in Fig. 3F.
#pragma once

#include <cstddef>
#include <vector>

#include "cam/types.hpp"
#include "circuit/matchline.hpp"
#include "circuit/senseamp.hpp"
#include "circuit/wire.hpp"
#include "device/fefet.hpp"
#include "device/technology.hpp"
#include "fault/fault_map.hpp"
#include "util/rng.hpp"

namespace xlds::cam {

struct FeFetCamConfig {
  device::FeFetParams fefet;       ///< device model parameters (bits per cell...)
  std::size_t rows = 64;           ///< words per subarray
  std::size_t cols = 64;           ///< cells per word
  std::string tech = "40nm";       ///< technology node for parasitics
  double cell_pitch_f = 12.0;      ///< matchline pitch per 2-FeFET cell, in F
  circuit::MatchlineParams matchline;  ///< precharge/sense voltages, leakage
  circuit::SenseAmpParams sense;   ///< sensing circuit capabilities
  bool apply_variation = true;     ///< sample programming variation on writes
  std::size_t sense_levels = 128;  ///< quantisation steps of distance sensing
  double sense_noise_rel = 0.02;   ///< sensing noise sigma, fraction of full scale
};

class FeFetCamArray {
 public:
  /// The RNG seeds per-cell programming variation; it is forked internally so
  /// the caller's stream is perturbed exactly once per constructed array.
  FeFetCamArray(FeFetCamConfig config, Rng& rng);

  std::size_t rows() const noexcept { return config_.rows; }
  std::size_t cols() const noexcept { return config_.cols; }
  int levels() const { return model_.params().levels(); }
  const FeFetCamConfig& config() const noexcept { return config_; }
  const device::FeFetModel& device_model() const noexcept { return model_; }

  /// Program a word: `digits` holds one level in [0, levels) or kDontCare per
  /// cell.  Programming variation is sampled here (write-time, not search-
  /// time, matching physical behaviour).  Faulted cells record the intended
  /// digit but are not programmed (their conductance stays pinned).
  void write_word(std::size_t row, const std::vector<int>& digits);

  /// Apply a defect map (same geometry as the array).  Stuck-on cells pull
  /// the matchline permanently (a mismatch for every query), stuck-off and
  /// open cells never conduct (a permanent match), and rows whose matchline
  /// sense amp is dead sense full scale and are excluded from best-row
  /// selection.  Consumes no RNG.
  void apply_fault_map(const fault::FaultMap& map);

  /// Apply `dt` seconds of retention loss to every non-faulted device.
  void age(double dt);

  std::size_t faulty_cell_count() const;
  std::size_t dead_sense_rows() const;

  /// Stored digit as it would be *read back* level-wise (post-variation).
  int readback_digit(std::size_t row, std::size_t col) const;

  /// Search with a full-width query (one level per cell).  Returns sensed
  /// distances per row, the best row, and the circuit-level cost.
  SearchResult search(const std::vector<int>& query) const;

  /// Rows whose sensed distance is <= `threshold` (in sensed-metric units of
  /// squared level steps) — the TH match of Fig. 2C.
  std::vector<std::size_t> threshold_match(const std::vector<int>& query, double threshold) const;

  /// True exact match (EX): rows whose sensed distance is at the zero code.
  std::vector<std::size_t> exact_match(const std::vector<int>& query) const;

  /// Analog conductance of a single cell for a continuous input voltage —
  /// the Fig. 3D transfer-curve probe.  `stored_level` uses nominal V_th
  /// (no variation) so the curve is the ideal cell characteristic.
  double cell_transfer_conductance(double v_in, int stored_level) const;

  /// Ideal (noise-free, unquantised) distance between query and the stored
  /// word: sum of squared level differences (don't-care cells contribute 0).
  double ideal_distance(std::size_t row, const std::vector<int>& query) const;

  /// Circuit-level cost of one search over this subarray.
  SearchCost search_cost() const;

  /// Mismatch limit of the matchline at this geometry (max distinguishable
  /// distance steps), from the circuit model.
  std::size_t mismatch_limit() const;

 private:
  struct Cell {
    int stored = kDontCare;
    double vth_a = 0.0;  ///< programmed V_th of the "upper" device
    double vth_b = 0.0;  ///< programmed V_th of the complementary device
    fault::CellFault fault = fault::CellFault::kNone;
  };

  double cell_conductance(const Cell& cell, int query_digit) const;
  /// Pull-down of a stuck-on defect: both devices fully on at the maximum
  /// gate overdrive — a worst-case, query-independent mismatch.
  double stuck_on_conductance() const;
  /// Conductance of a nominally matching cell (both devices at the
  /// sub-threshold bias) — the self-reference the sensing subtracts.
  double match_baseline_conductance() const;
  /// Incremental conductance of a one-level-step mismatch over the match
  /// baseline — the sensing's unit.
  double unit_conductance() const;

  FeFetCamConfig config_;
  device::FeFetModel model_;
  circuit::WireModel wire_;
  circuit::MatchlineModel matchline_;
  circuit::SenseAmp sense_;
  circuit::WinnerTakeAll wta_;
  mutable Rng rng_;
  std::vector<std::vector<Cell>> cells_;  ///< [row][col]
  std::vector<std::uint8_t> row_sense_dead_;  ///< 1 = matchline SA dead
};

}  // namespace xlds::cam
