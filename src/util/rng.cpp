#include "util/rng.hpp"

#include <cmath>

#include "util/error.hpp"

namespace xlds {

Rng::Rng(std::uint64_t seed, std::uint64_t stream) noexcept : state_(0), inc_((stream << 1u) | 1u) {
  // Standard PCG32 seeding sequence.
  next_u32();
  state_ += seed;
  next_u32();
}

std::uint32_t Rng::uniform_u32(std::uint32_t bound) noexcept {
  // Lemire's nearly-divisionless unbiased bounded generation.
  std::uint64_t m = static_cast<std::uint64_t>(next_u32()) * bound;
  auto lo = static_cast<std::uint32_t>(m);
  if (lo < bound) {
    const std::uint32_t threshold = -bound % bound;
    while (lo < threshold) {
      m = static_cast<std::uint64_t>(next_u32()) * bound;
      lo = static_cast<std::uint32_t>(m);
    }
  }
  return static_cast<std::uint32_t>(m >> 32);
}

double Rng::normal() noexcept {
  if (has_spare_) {
    has_spare_ = false;
    return spare_normal_;
  }
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double mul = std::sqrt(-2.0 * std::log(s) / s);
  spare_normal_ = v * mul;
  has_spare_ = true;
  return u * mul;
}

double Rng::normal(double mean, double sigma) noexcept { return mean + sigma * normal(); }

double Rng::lognormal(double mu, double sigma) noexcept { return std::exp(normal(mu, sigma)); }

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  for (std::size_t i = n; i > 1; --i) {
    const std::size_t j = uniform_u32(static_cast<std::uint32_t>(i));
    std::swap(idx[i - 1], idx[j]);
  }
  return idx;
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n, std::size_t k) {
  XLDS_REQUIRE_MSG(k <= n, "cannot sample " << k << " distinct items from " << n);
  // Partial Fisher-Yates: O(n) memory but only k swaps.
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j = i + uniform_u32(static_cast<std::uint32_t>(n - i));
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

Rng Rng::fork(std::uint64_t stream_tag) noexcept {
  // A fork derives its seed from our stream so that sibling forks differ.
  return Rng(next_u64(), stream_tag);
}

}  // namespace xlds
