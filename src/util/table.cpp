#include "util/table.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "util/error.hpp"

namespace xlds {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  XLDS_REQUIRE(!headers_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  XLDS_REQUIRE_MSG(cells.size() == headers_.size(),
                   "row arity " << cells.size() << " != header arity " << headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os.precision(precision);
  os << std::fixed << v;
  return os.str();
}

std::string Table::str() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());

  std::ostringstream os;
  auto rule = [&] {
    os << '+';
    for (std::size_t w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  auto emit = [&](const std::vector<std::string>& row) {
    os << '|';
    for (std::size_t c = 0; c < row.size(); ++c)
      os << ' ' << row[c] << std::string(widths[c] - row[c].size() + 1, ' ') << '|';
    os << '\n';
  };
  rule();
  emit(headers_);
  rule();
  for (const auto& row : rows_) emit(row);
  rule();
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Table& t) { return os << t.str(); }

void print_banner(std::ostream& os, const std::string& title, const std::string& subtitle) {
  os << '\n' << "== " << title << " ==\n";
  if (!subtitle.empty()) os << subtitle << '\n';
  os << '\n';
}

}  // namespace xlds
