// Unit conventions and engineering-notation formatting.
//
// All internal model quantities use SI base units (seconds, joules, metres,
// ohms, farads, volts).  Conversions to the units papers quote (ns, pJ, um^2,
// F^2) happen only at the presentation edge, through the helpers below, so a
// unit error cannot hide inside a model.
#pragma once

#include <string>

namespace xlds {

// ---- scale constants ------------------------------------------------------
inline constexpr double kMilli = 1e-3;
inline constexpr double kMicro = 1e-6;
inline constexpr double kNano = 1e-9;
inline constexpr double kPico = 1e-12;
inline constexpr double kFemto = 1e-15;
inline constexpr double kKilo = 1e3;
inline constexpr double kMega = 1e6;
inline constexpr double kGiga = 1e9;
inline constexpr double kTera = 1e12;

// ---- conversions to paper-facing units -------------------------------------
inline constexpr double to_ns(double seconds) { return seconds / kNano; }
inline constexpr double to_ps(double seconds) { return seconds / kPico; }
inline constexpr double to_us(double seconds) { return seconds / kMicro; }
inline constexpr double to_ms(double seconds) { return seconds / kMilli; }
inline constexpr double to_pj(double joules) { return joules / kPico; }
inline constexpr double to_fj(double joules) { return joules / kFemto; }
inline constexpr double to_nj(double joules) { return joules / kNano; }
inline constexpr double to_um2(double m2) { return m2 / (kMicro * kMicro); }
inline constexpr double to_mm2(double m2) { return m2 / (kMilli * kMilli); }

inline constexpr double from_ns(double ns) { return ns * kNano; }
inline constexpr double from_ps(double ps) { return ps * kPico; }
inline constexpr double from_pj(double pj) { return pj * kPico; }
inline constexpr double from_um2(double um2) { return um2 * kMicro * kMicro; }
inline constexpr double from_nm(double nm) { return nm * kNano; }

/// Area of n "F squared" at a feature size (metres): n * F^2.
inline constexpr double f2_area(double feature_m, double n_f2) {
  return n_f2 * feature_m * feature_m;
}

/// Format a value with an SI prefix and unit suffix, e.g. 2.4e-9 s -> "2.40 ns".
std::string si_format(double value, const std::string& unit, int precision = 3);

/// Fixed-precision plain formatting helper ("12.34").
std::string fixed_format(double value, int precision = 2);

}  // namespace xlds
