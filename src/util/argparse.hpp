// Tiny command-line option parser for the benches and tools.
//
// Every bench used to hard-code its seed, thread count and output path; the
// DSE CLI needs real options, so the common pattern lives here once:
// registered options take `--name value` or `--name=value`, `--help` prints a
// generated usage block, and unknown arguments are an error (a typo silently
// ignored in a sweep costs hours).  add_bench_options()/apply_bench_options()
// wire up the three flags shared by the whole fleet: --seed, --threads
// (forwarded to the deterministic pool — results never change, only wall
// clock) and --out.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace xlds::util {

class ArgParse {
 public:
  ArgParse(std::string prog, std::string description);

  /// Register a value-taking option (without the leading "--").
  ArgParse& add_option(const std::string& name, const std::string& help,
                       const std::string& default_value = "");
  /// Register a boolean flag (present => true).
  ArgParse& add_flag(const std::string& name, const std::string& help);

  /// Parse argv.  Returns false when parsing should stop: on --help (usage
  /// printed to out, help_requested() == true) or on an error (message +
  /// usage printed to err).  Typical exit: `return args.help_requested() ? 0 : 2;`
  bool parse(int argc, const char* const* argv, std::ostream& out, std::ostream& err);
  bool parse(int argc, const char* const* argv);  ///< std::cout / std::cerr

  bool help_requested() const noexcept { return help_requested_; }
  bool provided(const std::string& name) const;

  /// Typed getters (registered name required; value errors throw
  /// PreconditionError with the offending option named).
  std::string str(const std::string& name) const;
  bool flag(const std::string& name) const;
  double num(const std::string& name) const;
  std::int64_t integer(const std::string& name) const;
  std::uint64_t uinteger(const std::string& name) const;

  std::string usage() const;

 private:
  struct Option {
    std::string name;
    std::string help;
    std::string value;
    bool is_flag = false;
    bool provided = false;
  };

  Option* find(const std::string& name);
  const Option* find(const std::string& name) const;

  std::string prog_;
  std::string description_;
  std::vector<Option> options_;
  bool help_requested_ = false;
};

/// Register the fleet-wide bench options: --seed (experiment seed), --threads
/// (pool width; 0 = XLDS_THREADS / hardware), --out (result file path; empty
/// keeps the bench's default).
void add_bench_options(ArgParse& args, std::uint64_t default_seed,
                       const std::string& default_out = "");

/// Apply the parsed bench options' side effects (currently: resize the
/// parallel pool when --threads was given).
void apply_bench_options(const ArgParse& args);

}  // namespace xlds::util
