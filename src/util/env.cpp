#include "util/env.hpp"

#include <cstdio>
#include <cstdlib>
#include <limits>

namespace xlds::util {

std::optional<std::size_t> parse_positive_count(const std::string& text) {
  if (text.empty()) return std::nullopt;
  std::size_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return std::nullopt;
    const std::size_t digit = static_cast<std::size_t>(c - '0');
    if (value > (std::numeric_limits<std::size_t>::max() - digit) / 10) return std::nullopt;
    value = value * 10 + digit;
  }
  if (value == 0) return std::nullopt;
  return value;
}

std::size_t env_positive_count(const char* name, std::size_t fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr) return fallback;
  if (const std::optional<std::size_t> v = parse_positive_count(env)) return *v;
  std::fprintf(stderr, "xlds: ignoring %s='%s' (not a positive integer); using %zu\n",
               name, env, fallback);
  return fallback;
}

std::string env_choice(const char* name, const char* const* allowed,
                       const std::string& fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr) return fallback;
  for (const char* const* a = allowed; *a != nullptr; ++a)
    if (std::string(*a) == env) return *a;
  std::string valid;
  for (const char* const* a = allowed; *a != nullptr; ++a) {
    if (!valid.empty()) valid += " | ";
    valid += *a;
  }
  std::fprintf(stderr, "xlds: ignoring %s='%s' (valid: %s); using '%s'\n", name, env,
               valid.c_str(), fallback.c_str());
  return fallback;
}

}  // namespace xlds::util
