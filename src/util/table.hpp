// ASCII table printer used by the benchmark harness so every reproduced
// figure/table prints in a uniform, diffable format.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace xlds {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Append a row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  /// Convenience: format doubles with the given precision.
  static std::string num(double v, int precision = 3);

  std::size_t row_count() const noexcept { return rows_.size(); }

  /// Render with column alignment and +---+ rules.
  std::string str() const;

  friend std::ostream& operator<<(std::ostream& os, const Table& t);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Print a section banner for a reproduced figure ("== Fig. 3C ... ==").
void print_banner(std::ostream& os, const std::string& title, const std::string& subtitle = "");

}  // namespace xlds
