// Error-handling helpers for the XLDS framework.
//
// Precondition violations are programming errors at the API boundary and are
// reported with exceptions carrying an actionable message (Core Guidelines
// I.10 / E.2).  Internal invariants use XLDS_ASSERT which compiles to a hard
// check in all build types: modelling code silently producing wrong numbers
// is far worse than an aborted run.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace xlds {

/// Thrown when a caller violates a documented precondition.
class PreconditionError : public std::invalid_argument {
 public:
  explicit PreconditionError(const std::string& what) : std::invalid_argument(what) {}
};

/// Thrown when a model is asked to operate outside its validated envelope
/// (e.g. an Eva-CAM preset with no data for the requested figure of merit).
class ModelDomainError : public std::domain_error {
 public:
  explicit ModelDomainError(const std::string& what) : std::domain_error(what) {}
};

namespace detail {
[[noreturn]] inline void throw_precondition(const char* expr, const char* file, int line,
                                            const std::string& msg) {
  std::ostringstream os;
  os << "precondition failed: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw PreconditionError(os.str());
}
}  // namespace detail

}  // namespace xlds

/// Check a documented precondition of a public API; throws PreconditionError.
#define XLDS_REQUIRE(expr)                                                      \
  do {                                                                          \
    if (!(expr)) ::xlds::detail::throw_precondition(#expr, __FILE__, __LINE__, ""); \
  } while (false)

/// As XLDS_REQUIRE but with a human-oriented explanation streamed in.
#define XLDS_REQUIRE_MSG(expr, msg)                                             \
  do {                                                                          \
    if (!(expr)) {                                                              \
      std::ostringstream xlds_os_;                                              \
      xlds_os_ << msg;                                                          \
      ::xlds::detail::throw_precondition(#expr, __FILE__, __LINE__, xlds_os_.str()); \
    }                                                                           \
  } while (false)

/// Internal invariant; failure indicates a bug in XLDS itself.
#define XLDS_ASSERT(expr)                                                       \
  do {                                                                          \
    if (!(expr)) throw std::logic_error(std::string("XLDS internal invariant failed: ") + \
                                        #expr + " at " + __FILE__);             \
  } while (false)
