#include "util/argparse.hpp"

#include <cstdlib>
#include <iostream>
#include <sstream>

#include "util/error.hpp"
#include "util/parallel.hpp"

namespace xlds::util {

ArgParse::ArgParse(std::string prog, std::string description)
    : prog_(std::move(prog)), description_(std::move(description)) {}

ArgParse& ArgParse::add_option(const std::string& name, const std::string& help,
                               const std::string& default_value) {
  XLDS_REQUIRE_MSG(find(name) == nullptr, "option --" << name << " registered twice");
  options_.push_back(Option{name, help, default_value, /*is_flag=*/false, /*provided=*/false});
  return *this;
}

ArgParse& ArgParse::add_flag(const std::string& name, const std::string& help) {
  XLDS_REQUIRE_MSG(find(name) == nullptr, "flag --" << name << " registered twice");
  options_.push_back(Option{name, help, "", /*is_flag=*/true, /*provided=*/false});
  return *this;
}

ArgParse::Option* ArgParse::find(const std::string& name) {
  for (Option& o : options_)
    if (o.name == name) return &o;
  return nullptr;
}

const ArgParse::Option* ArgParse::find(const std::string& name) const {
  for (const Option& o : options_)
    if (o.name == name) return &o;
  return nullptr;
}

bool ArgParse::parse(int argc, const char* const* argv, std::ostream& out, std::ostream& err) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_requested_ = true;
      out << usage();
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      err << prog_ << ": unexpected positional argument '" << arg << "'\n" << usage();
      return false;
    }
    std::string name = arg.substr(2);
    std::string value;
    bool has_value = false;
    const std::size_t eq = name.find('=');
    if (eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
      has_value = true;
    }
    Option* opt = find(name);
    if (opt == nullptr) {
      err << prog_ << ": unknown option --" << name << '\n' << usage();
      return false;
    }
    if (opt->is_flag) {
      if (has_value) {
        err << prog_ << ": flag --" << name << " does not take a value\n" << usage();
        return false;
      }
      opt->value = "1";
    } else {
      if (!has_value) {
        if (i + 1 >= argc) {
          err << prog_ << ": option --" << name << " requires a value\n" << usage();
          return false;
        }
        value = argv[++i];
      }
      opt->value = value;
    }
    opt->provided = true;
  }
  return true;
}

bool ArgParse::parse(int argc, const char* const* argv) {
  return parse(argc, argv, std::cout, std::cerr);
}

bool ArgParse::provided(const std::string& name) const {
  const Option* o = find(name);
  XLDS_REQUIRE_MSG(o != nullptr, "option --" << name << " was never registered");
  return o->provided;
}

std::string ArgParse::str(const std::string& name) const {
  const Option* o = find(name);
  XLDS_REQUIRE_MSG(o != nullptr, "option --" << name << " was never registered");
  return o->value;
}

bool ArgParse::flag(const std::string& name) const {
  const Option* o = find(name);
  XLDS_REQUIRE_MSG(o != nullptr && o->is_flag, "--" << name << " is not a registered flag");
  return o->provided;
}

double ArgParse::num(const std::string& name) const {
  const std::string v = str(name);
  char* end = nullptr;
  const double parsed = std::strtod(v.c_str(), &end);
  XLDS_REQUIRE_MSG(end != v.c_str() && *end == '\0',
                   "--" << name << " expects a number, got '" << v << "'");
  return parsed;
}

std::int64_t ArgParse::integer(const std::string& name) const {
  const std::string v = str(name);
  char* end = nullptr;
  const long long parsed = std::strtoll(v.c_str(), &end, 10);
  XLDS_REQUIRE_MSG(end != v.c_str() && *end == '\0',
                   "--" << name << " expects an integer, got '" << v << "'");
  return parsed;
}

std::uint64_t ArgParse::uinteger(const std::string& name) const {
  const std::int64_t v = integer(name);
  XLDS_REQUIRE_MSG(v >= 0, "--" << name << " expects a non-negative integer");
  return static_cast<std::uint64_t>(v);
}

std::string ArgParse::usage() const {
  std::ostringstream os;
  os << "usage: " << prog_ << " [options]\n";
  if (!description_.empty()) os << "  " << description_ << '\n';
  os << "options:\n";
  for (const Option& o : options_) {
    std::string head = "  --" + o.name + (o.is_flag ? "" : " <value>");
    os << head;
    for (std::size_t i = head.size(); i < 26; ++i) os << ' ';
    os << o.help;
    if (!o.is_flag && !o.value.empty()) os << " (default: " << o.value << ')';
    os << '\n';
  }
  os << "  --help                  show this message\n";
  return os.str();
}

void add_bench_options(ArgParse& args, std::uint64_t default_seed,
                       const std::string& default_out) {
  args.add_option("seed", "experiment seed (results are a pure function of it)",
                  std::to_string(default_seed));
  args.add_option("threads", "parallel pool width; 0 = XLDS_THREADS / hardware", "0");
  args.add_option("sched", "scheduler mode: steal | static (default: XLDS_SCHED / steal)");
  args.add_option("out", "result file path", default_out);
}

void apply_bench_options(const ArgParse& args) {
  if (args.provided("threads")) set_parallel_threads(static_cast<std::size_t>(args.uinteger("threads")));
  if (args.provided("sched")) {
    const std::string mode = args.str("sched");
    XLDS_REQUIRE_MSG(mode == "steal" || mode == "static", "--sched takes steal | static");
    set_parallel_scheduler(mode == "static" ? SchedulerMode::kStatic
                                            : SchedulerMode::kWorkStealing);
  }
}

}  // namespace xlds::util
