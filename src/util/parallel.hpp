// Deterministic parallel execution for design-space sweeps.
//
// The framework's throughput story (evaluations/second gates design-space
// coverage) needs the Monte Carlo trial loops and per-point evaluator sweeps
// to run on all cores — but reproducibility is a core requirement, so the
// parallel layer guarantees a stronger invariant than "thread safe":
//
//   results are bit-identical regardless of the thread count
//   and regardless of the scheduler mode.
//
// Three rules make that hold:
//   1. Work is split into chunks whose boundaries depend only on (n, chunk),
//      never on how many threads execute them or which scheduler runs them.
//   2. Stochastic chunks each get their own Rng forked *sequentially on the
//      calling thread* (parallel_for_rng), so stream assignment is a pure
//      function of the chunk index — no shared sequential generator.
//   3. Reductions are performed per chunk and combined in chunk-index order
//      by the caller (floating-point sums stay order-stable).
//
// Scheduling decides only *where* and *when* a chunk executes, never *what*
// it computes, so the scheduler is free to be dynamic.  Two modes exist:
//
//   - kWorkStealing (default): chunks are grouped into tasks, distributed
//     round-robin across per-lane deques, and idle lanes steal from the back
//     of other lanes' deques.  Nested parallel_for calls issued from inside a
//     task participate cooperatively: the issuing worker submits the inner
//     tasks to the shared deques and helps execute them (stealing back only
//     work that descends from the job it is waiting on, so a lock held around
//     a nested region can never be re-entered — fully-strict helping).
//   - kStatic: the pre-stealing scheduler — one shared claim cursor, nested
//     calls degrade to inline serial.  Kept as a comparison baseline and as a
//     fallback (XLDS_SCHED=static).
//
// Exception propagation is deterministic in both modes: when chunks throw,
// the chunk with the *lowest index* wins (chunks below a recorded failure
// always still run; chunks above it are skipped), so the caller sees the same
// exception serial execution would produce — not whichever thread lost a race.
//
// The pool is lazily started; its width comes from the XLDS_THREADS
// environment variable (default: hardware_concurrency) and can be changed at
// runtime with set_parallel_threads().  The scheduler mode comes from
// XLDS_SCHED ("steal" | "static", default steal) and can be changed with
// set_parallel_scheduler().  Neither setting ever changes results — only
// wall-clock time.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "util/rng.hpp"

namespace xlds {

/// Current pool width (total execution lanes including the calling thread).
/// Starts the pool on first use.
std::size_t parallel_thread_count();

/// Resize the pool: n lanes, or 0 to re-read XLDS_THREADS / fall back to
/// hardware_concurrency.  Blocks until any in-flight job finishes.  Changing
/// the width never changes results — only wall-clock time.
void set_parallel_threads(std::size_t n);

/// How the pool places chunks onto lanes.  Orthogonal to the determinism
/// contract: both modes produce bit-identical results.
enum class SchedulerMode {
  kStatic,        ///< shared claim cursor; nested calls run inline serial
  kWorkStealing,  ///< per-lane deques + stealing; nested calls cooperate
};

/// Current scheduler mode (initially from XLDS_SCHED, default kWorkStealing).
SchedulerMode parallel_scheduler();

/// Switch scheduler mode.  Blocks until any in-flight job finishes so a job
/// never sees a mid-run flip.  Never changes results — only wall-clock time.
void set_parallel_scheduler(SchedulerMode mode);

/// Pre-fork contract.  fork() only duplicates the calling thread: in a child
/// forked while the pool's workers exist, every worker thread is gone but the
/// pool's bookkeeping still says they are running — and a deque or wake mutex
/// a worker held at the fork instant stays locked forever in the child.  Any
/// code that forks this process (shard::ShardPool does) MUST call this first:
/// it waits out any in-flight job, joins and discards every worker thread,
/// and leaves the pool in a quiesced state (no pool mutex held, no threads)
/// from which the next parallel call — in the parent or in the child —
/// lazily rebuilds the workers at the previously configured width.  The
/// caller must not issue parallel work from other threads between the
/// quiesce and the fork().  Results are unaffected (determinism rule: lane
/// count and pool lifetime never change what a chunk computes).
void parallel_quiesce_for_fork();

/// Chunk size used when parallel_for is called with chunk == 0.  Depends only
/// on n (never on the thread count), preserving the determinism contract.
std::size_t default_parallel_chunk(std::size_t n);

/// Run body(begin, end, chunk_index) over [0, n) split into fixed chunks of
/// `chunk` indices (last chunk ragged; chunk == 0 selects
/// default_parallel_chunk(n)).  Blocks until every chunk completes.  The
/// lowest-chunk-index exception is rethrown on the calling thread (chunks
/// with higher indices are skipped once a failure is recorded).
///
/// `min_items_per_task` is a scheduling hint, not a semantic knob: chunks are
/// grouped so each dispatched task covers at least that many items, letting
/// tiny batches skip fork/join overhead entirely.  Grouping never moves chunk
/// boundaries, so results are unaffected.
void parallel_for(std::size_t n, std::size_t chunk,
                  const std::function<void(std::size_t begin, std::size_t end,
                                           std::size_t chunk_index)>& body,
                  std::size_t min_items_per_task = 0);

/// parallel_for with a private Rng stream per chunk: the streams are forked
/// from `rng` sequentially (chunk 0 first) on the calling thread before any
/// chunk runs, so the draw each trial sees is a pure function of its chunk —
/// the replacement for sharing one sequential generator across a trial loop.
void parallel_for_rng(Rng& rng, std::size_t n, std::size_t chunk,
                      const std::function<void(Rng& chunk_rng, std::size_t begin,
                                               std::size_t end, std::size_t chunk_index)>& body,
                      std::size_t min_items_per_task = 0);

/// Map fn over [0, n) into a vector (out[i] = fn(i)), preserving index order.
/// T must be default-constructible and move-assignable.
template <class T, class Fn>
std::vector<T> parallel_map(std::size_t n, Fn&& fn, std::size_t chunk = 1,
                            std::size_t min_items_per_task = 0) {
  std::vector<T> out(n);
  parallel_for(
      n, chunk,
      [&](std::size_t begin, std::size_t end, std::size_t) {
        for (std::size_t i = begin; i < end; ++i) out[i] = fn(i);
      },
      min_items_per_task);
  return out;
}

/// Order-stable parallel sum: each chunk accumulates locally, partial sums
/// combine in chunk-index order — deterministic at any thread count.
/// fn(i) -> double.
template <class Fn>
double parallel_sum(std::size_t n, std::size_t chunk, Fn&& fn,
                    std::size_t min_items_per_task = 0) {
  if (chunk == 0) chunk = default_parallel_chunk(n);
  const std::size_t n_chunks = n == 0 ? 0 : (n + chunk - 1) / chunk;
  std::vector<double> partial(n_chunks, 0.0);
  parallel_for(
      n, chunk,
      [&](std::size_t begin, std::size_t end, std::size_t ci) {
        double s = 0.0;
        for (std::size_t i = begin; i < end; ++i) s += fn(i);
        partial[ci] = s;
      },
      min_items_per_task);
  double total = 0.0;
  for (double s : partial) total += s;
  return total;
}

}  // namespace xlds
