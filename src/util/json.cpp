#include "util/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/error.hpp"

namespace xlds::util {

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Json parse_document() {
    skip_ws();
    Json v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  const std::string& text_;
  std::size_t pos_ = 0;

  [[noreturn]] void fail(const std::string& what) const {
    std::size_t line = 1, col = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') { ++line; col = 1; } else ++col;
    }
    throw PreconditionError("JSON parse error at " + std::to_string(line) + ':' +
                            std::to_string(col) + " — " + what);
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  char get() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_++];
  }
  void expect(char c) {
    if (get() != c) { --pos_; fail(std::string("expected '") + c + '\''); }
  }
  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') ++pos_;
      else break;
    }
  }
  bool consume_literal(const char* lit) {
    std::size_t n = 0;
    while (lit[n] != '\0') ++n;
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  Json parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json(parse_string());
      case 't':
        if (consume_literal("true")) return Json(true);
        fail("invalid literal");
      case 'f':
        if (consume_literal("false")) return Json(false);
        fail("invalid literal");
      case 'n':
        if (consume_literal("null")) return Json();
        fail("invalid literal");
      default: return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    Json obj = Json::object();
    skip_ws();
    if (peek() == '}') { ++pos_; return obj; }
    while (true) {
      skip_ws();
      if (peek() != '"') fail("expected object key");
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.set(key, parse_value());
      skip_ws();
      const char c = get();
      if (c == '}') return obj;
      if (c != ',') { --pos_; fail("expected ',' or '}' in object"); }
    }
  }

  Json parse_array() {
    expect('[');
    Json arr = Json::array();
    skip_ws();
    if (peek() == ']') { ++pos_; return arr; }
    while (true) {
      arr.push_back(parse_value());
      skip_ws();
      const char c = get();
      if (c == ']') return arr;
      if (c != ',') { --pos_; fail("expected ',' or ']' in array"); }
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      char c = get();
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) { --pos_; fail("unescaped control character"); }
      if (c != '\\') { out.push_back(c); continue; }
      c = get();
      switch (c) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': append_utf8(out, parse_hex4()); break;
        default: --pos_; fail("invalid escape");
      }
    }
  }

  unsigned parse_hex4() {
    unsigned v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = get();
      v <<= 4;
      if (c >= '0' && c <= '9') v |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') v |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') v |= static_cast<unsigned>(c - 'A' + 10);
      else { --pos_; fail("invalid \\u escape"); }
    }
    return v;
  }

  static void append_utf8(std::string& out, unsigned cp) {
    // Surrogate pairs are not recombined — BMP coverage is all the tooling
    // needs; a lone surrogate encodes as its raw three-byte form.
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (!std::isdigit(static_cast<unsigned char>(peek()))) fail("invalid number");
    // JSON integers have no leading zeros: "0" is a complete integer part.
    if (peek() == '0') ++pos_;
    else while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    if (peek() == '.') {
      ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(peek()))) fail("digits required after '.'");
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(peek()))) fail("digits required in exponent");
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    return Json(std::strtod(text_.c_str() + start, nullptr));
  }
};

void append_escaped(std::string& out, const std::string& s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void append_number(std::string& out, double v) {
  if (std::isnan(v) || std::isinf(v)) {
    // JSON has no NaN/Inf; null is the conventional lossy stand-in.
    out += "null";
    return;
  }
  // Integral values print without a fraction (journal keys, counts); others
  // round-trip through max_digits10.
  if (v == static_cast<double>(static_cast<long long>(v)) && std::fabs(v) < 1e15) {
    out += std::to_string(static_cast<long long>(v));
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

}  // namespace

Json Json::parse(const std::string& text) { return Parser(text).parse_document(); }

bool Json::as_bool() const {
  XLDS_REQUIRE_MSG(is_bool(), "JSON value is not a bool");
  return bool_;
}

double Json::as_number() const {
  XLDS_REQUIRE_MSG(is_number(), "JSON value is not a number");
  return number_;
}

const std::string& Json::as_string() const {
  XLDS_REQUIRE_MSG(is_string(), "JSON value is not a string");
  return string_;
}

const std::vector<Json>& Json::as_array() const {
  XLDS_REQUIRE_MSG(is_array(), "JSON value is not an array");
  return array_;
}

const std::vector<std::pair<std::string, Json>>& Json::as_object() const {
  XLDS_REQUIRE_MSG(is_object(), "JSON value is not an object");
  return object_;
}

const Json* Json::find(const std::string& key) const {
  if (!is_object()) return nullptr;
  for (const auto& [k, v] : object_)
    if (k == key) return &v;
  return nullptr;
}

const Json& Json::at(const std::string& key) const {
  const Json* v = find(key);
  XLDS_REQUIRE_MSG(v != nullptr, "JSON object has no member '" << key << "'");
  return *v;
}

double Json::number_or(const std::string& key, double fallback) const {
  const Json* v = find(key);
  return v != nullptr ? v->as_number() : fallback;
}

std::string Json::string_or(const std::string& key, const std::string& fallback) const {
  const Json* v = find(key);
  return v != nullptr ? v->as_string() : fallback;
}

bool Json::bool_or(const std::string& key, bool fallback) const {
  const Json* v = find(key);
  return v != nullptr ? v->as_bool() : fallback;
}

Json& Json::set(const std::string& key, Json value) {
  XLDS_REQUIRE_MSG(is_object(), "set() on a non-object JSON value");
  for (auto& [k, v] : object_) {
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  }
  object_.emplace_back(key, std::move(value));
  return *this;
}

Json& Json::push_back(Json value) {
  XLDS_REQUIRE_MSG(is_array(), "push_back() on a non-array JSON value");
  array_.push_back(std::move(value));
  return *this;
}

std::size_t Json::size() const {
  if (is_array()) return array_.size();
  if (is_object()) return object_.size();
  return 0;
}

void Json::dump_to(std::string& out, int indent, int depth) const {
  const auto newline_pad = [&](int d) {
    if (indent < 0) return;
    out.push_back('\n');
    out.append(static_cast<std::size_t>(indent) * static_cast<std::size_t>(d), ' ');
  };
  switch (kind_) {
    case Kind::kNull: out += "null"; break;
    case Kind::kBool: out += bool_ ? "true" : "false"; break;
    case Kind::kNumber: append_number(out, number_); break;
    case Kind::kString: append_escaped(out, string_); break;
    case Kind::kArray: {
      out.push_back('[');
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) out.push_back(',');
        newline_pad(depth + 1);
        array_[i].dump_to(out, indent, depth + 1);
      }
      if (!array_.empty()) newline_pad(depth);
      out.push_back(']');
      break;
    }
    case Kind::kObject: {
      out.push_back('{');
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (i > 0) out.push_back(',');
        newline_pad(depth + 1);
        append_escaped(out, object_[i].first);
        out += indent < 0 ? ":" : ": ";
        object_[i].second.dump_to(out, indent, depth + 1);
      }
      if (!object_.empty()) newline_pad(depth);
      out.push_back('}');
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

}  // namespace xlds::util
