// Minimal JSON document model for XLDS tooling.
//
// The framework's result files (BENCH_*.json) are hand-emitted, but the DSE
// engine also *consumes* JSON (job specs, resume metadata), which needs a
// real parser.  This is a small recursive-descent DOM: objects keep insertion
// order (so dumped documents are byte-stable and diffable across runs — the
// property the crash-safe resume CI check relies on), numbers round-trip
// through max_digits10, and parse errors throw PreconditionError with a
// line/column position.  It is deliberately not a streaming parser: every
// document XLDS handles is tiny compared to the evaluations it describes.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace xlds::util {

class Json {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() noexcept : kind_(Kind::kNull) {}
  Json(bool b) noexcept : kind_(Kind::kBool), bool_(b) {}           // NOLINT(google-explicit-constructor)
  Json(double v) noexcept : kind_(Kind::kNumber), number_(v) {}     // NOLINT(google-explicit-constructor)
  Json(int v) noexcept : Json(static_cast<double>(v)) {}            // NOLINT(google-explicit-constructor)
  Json(std::size_t v) noexcept : Json(static_cast<double>(v)) {}    // NOLINT(google-explicit-constructor)
  Json(std::string s) : kind_(Kind::kString), string_(std::move(s)) {}  // NOLINT(google-explicit-constructor)
  Json(const char* s) : Json(std::string(s)) {}                     // NOLINT(google-explicit-constructor)

  static Json array() { Json j; j.kind_ = Kind::kArray; return j; }
  static Json object() { Json j; j.kind_ = Kind::kObject; return j; }

  /// Parse a complete document; trailing non-whitespace is an error.
  /// Throws PreconditionError with a "line:col" position on malformed input.
  static Json parse(const std::string& text);

  Kind kind() const noexcept { return kind_; }
  bool is_null() const noexcept { return kind_ == Kind::kNull; }
  bool is_bool() const noexcept { return kind_ == Kind::kBool; }
  bool is_number() const noexcept { return kind_ == Kind::kNumber; }
  bool is_string() const noexcept { return kind_ == Kind::kString; }
  bool is_array() const noexcept { return kind_ == Kind::kArray; }
  bool is_object() const noexcept { return kind_ == Kind::kObject; }

  /// Typed accessors; throw PreconditionError on a kind mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const std::vector<Json>& as_array() const;
  const std::vector<std::pair<std::string, Json>>& as_object() const;

  /// Object lookup: find() returns nullptr when absent, at() throws.
  const Json* find(const std::string& key) const;
  const Json& at(const std::string& key) const;
  bool contains(const std::string& key) const { return find(key) != nullptr; }

  /// Convenience: member value when present, fallback otherwise.
  double number_or(const std::string& key, double fallback) const;
  std::string string_or(const std::string& key, const std::string& fallback) const;
  bool bool_or(const std::string& key, bool fallback) const;

  /// Builders.  set() replaces an existing key in place (order preserved).
  Json& set(const std::string& key, Json value);
  Json& push_back(Json value);

  std::size_t size() const;

  /// Serialise.  indent < 0: compact single line; indent >= 0: pretty-printed
  /// with that many spaces per level.  Doubles print through max_digits10
  /// (with integral values printed as integers), so dump() is a pure function
  /// of the document — identical documents dump to identical bytes.
  std::string dump(int indent = -1) const;

 private:
  Kind kind_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Json> array_;
  std::vector<std::pair<std::string, Json>> object_;

  void dump_to(std::string& out, int indent, int depth) const;
};

}  // namespace xlds::util
