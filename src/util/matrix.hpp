// Dense row-major matrix used by the NN substrate, the HDC encoder, and the
// crossbar simulator.  Header-only and deliberately minimal: the framework's
// matrices are small (crossbar tiles, feature maps), so clarity beats BLAS.
#pragma once

#include <cstddef>
#include <vector>

#include "util/error.hpp"

namespace xlds {

template <typename T>
class Matrix {
 public:
  Matrix() = default;

  Matrix(std::size_t rows, std::size_t cols, T fill = T{})
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  static Matrix from_rows(std::initializer_list<std::initializer_list<T>> rows) {
    const std::size_t r = rows.size();
    const std::size_t c = r ? rows.begin()->size() : 0;
    Matrix m(r, c);
    std::size_t i = 0;
    for (const auto& row : rows) {
      XLDS_REQUIRE_MSG(row.size() == c, "ragged initialiser row");
      std::size_t j = 0;
      for (const T& v : row) m(i, j++) = v;
      ++i;
    }
    return m;
  }

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  std::size_t size() const noexcept { return data_.size(); }
  bool empty() const noexcept { return data_.empty(); }

  T& operator()(std::size_t r, std::size_t c) {
    XLDS_ASSERT(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  const T& operator()(std::size_t r, std::size_t c) const {
    XLDS_ASSERT(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  T* row_data(std::size_t r) { return data_.data() + r * cols_; }
  const T* row_data(std::size_t r) const { return data_.data() + r * cols_; }

  std::vector<T>& data() noexcept { return data_; }
  const std::vector<T>& data() const noexcept { return data_; }

  /// y = A x  (length of x must equal cols).
  std::vector<T> matvec(const std::vector<T>& x) const {
    XLDS_REQUIRE_MSG(x.size() == cols_, "matvec: " << x.size() << " vs " << cols_ << " cols");
    std::vector<T> y(rows_, T{});
    for (std::size_t r = 0; r < rows_; ++r) {
      T acc{};
      const T* row = row_data(r);
      for (std::size_t c = 0; c < cols_; ++c) acc += row[c] * x[c];
      y[r] = acc;
    }
    return y;
  }

  /// y = A^T x  (length of x must equal rows).
  std::vector<T> matvec_transposed(const std::vector<T>& x) const {
    XLDS_REQUIRE_MSG(x.size() == rows_, "matvec_transposed: " << x.size() << " vs " << rows_);
    std::vector<T> y(cols_, T{});
    for (std::size_t r = 0; r < rows_; ++r) {
      const T* row = row_data(r);
      const T xr = x[r];
      for (std::size_t c = 0; c < cols_; ++c) y[c] += row[c] * xr;
    }
    return y;
  }

  Matrix transposed() const {
    Matrix t(cols_, rows_);
    for (std::size_t r = 0; r < rows_; ++r)
      for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
    return t;
  }

  Matrix matmul(const Matrix& b) const {
    XLDS_REQUIRE(cols_ == b.rows_);
    Matrix out(rows_, b.cols_);
    for (std::size_t r = 0; r < rows_; ++r) {
      for (std::size_t k = 0; k < cols_; ++k) {
        const T a = (*this)(r, k);
        if (a == T{}) continue;
        const T* brow = b.row_data(k);
        T* orow = out.row_data(r);
        for (std::size_t c = 0; c < b.cols_; ++c) orow[c] += a * brow[c];
      }
    }
    return out;
  }

  bool operator==(const Matrix& other) const = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<T> data_;
};

using MatrixD = Matrix<double>;
using MatrixF = Matrix<float>;

}  // namespace xlds
