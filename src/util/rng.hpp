// Deterministic random-number generation for XLDS.
//
// Every stochastic model in the framework (device programming variation,
// RRAM conductance relaxation, dataset synthesis, LSH projections...) draws
// from an explicitly seeded Rng instance that is passed down the call chain.
// There is deliberately no global generator: reproducibility of a design-space
// evaluation is a core requirement, and hidden global state breaks it the
// moment two evaluations interleave.
#pragma once

#include <cstdint>
#include <vector>

namespace xlds {

/// PCG32 (O'Neill, "PCG: A Family of Simple Fast Space-Efficient Statistically
/// Good Algorithms for Random Number Generation").  Small state, excellent
/// statistical quality, and — unlike std::mt19937 — identical output across
/// standard-library implementations, which keeps golden test values portable.
class Rng {
 public:
  /// Seed with a stream id so that independent subsystems can derive
  /// non-overlapping generators from one experiment seed.
  explicit Rng(std::uint64_t seed, std::uint64_t stream = 0) noexcept;

  // The single-draw primitives are defined inline below: they sit in the
  // innermost loop of every Monte-Carlo sweep, and keeping them in the header
  // lets those loops (and the block samplers in kernels/sampler.hpp) inline
  // the generator instead of paying a call per element.  The sequences are
  // unchanged — this is purely a code-placement decision.

  /// Uniform 32-bit integer.
  std::uint32_t next_u32() noexcept;

  /// Uniform 64-bit integer.
  std::uint64_t next_u64() noexcept;

  /// Uniform integer in [0, bound) with Lemire rejection (unbiased).
  /// Precondition: bound > 0.
  std::uint32_t uniform_u32(std::uint32_t bound) noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Standard normal via the polar (Marsaglia) method; caches the spare value.
  double normal() noexcept;

  /// Normal with the given mean and standard deviation (sigma >= 0).
  double normal(double mean, double sigma) noexcept;

  /// Bernoulli trial with probability p of true.
  bool bernoulli(double p) noexcept;

  /// Lognormal draw: exp(normal(mu, sigma)).
  double lognormal(double mu, double sigma) noexcept;

  /// Fisher-Yates shuffle of an index range [0, n); returns the permutation.
  std::vector<std::size_t> permutation(std::size_t n);

  /// Sample k distinct indices from [0, n) (k <= n), in random order.
  std::vector<std::size_t> sample_without_replacement(std::size_t n, std::size_t k);

  /// Derive an independent child generator (used to give each subsystem its
  /// own stream while keeping a single user-facing experiment seed).
  Rng fork(std::uint64_t stream_tag) noexcept;

 private:
  std::uint64_t state_;
  std::uint64_t inc_;
  double spare_normal_ = 0.0;
  bool has_spare_ = false;
};

inline std::uint32_t Rng::next_u32() noexcept {
  const std::uint64_t old = state_;
  state_ = old * 6364136223846793005ULL + inc_;
  const auto xorshifted = static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
  const auto rot = static_cast<std::uint32_t>(old >> 59u);
  return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
}

inline std::uint64_t Rng::next_u64() noexcept {
  return (static_cast<std::uint64_t>(next_u32()) << 32) | next_u32();
}

inline double Rng::uniform() noexcept {
  // 53 random bits into [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

inline double Rng::uniform(double lo, double hi) noexcept { return lo + (hi - lo) * uniform(); }

inline bool Rng::bernoulli(double p) noexcept { return uniform() < p; }

}  // namespace xlds
