#include "util/units.hpp"

#include <array>
#include <cmath>
#include <sstream>

namespace xlds {

std::string si_format(double value, const std::string& unit, int precision) {
  struct Prefix {
    double scale;
    const char* name;
  };
  static constexpr std::array<Prefix, 11> kPrefixes{{{1e12, "T"},
                                                     {1e9, "G"},
                                                     {1e6, "M"},
                                                     {1e3, "k"},
                                                     {1.0, ""},
                                                     {1e-3, "m"},
                                                     {1e-6, "u"},
                                                     {1e-9, "n"},
                                                     {1e-12, "p"},
                                                     {1e-15, "f"},
                                                     {1e-18, "a"}}};
  std::ostringstream os;
  os.precision(precision);
  if (value == 0.0 || !std::isfinite(value)) {
    os << value << ' ' << unit;
    return os.str();
  }
  const double mag = std::abs(value);
  for (const auto& p : kPrefixes) {
    if (mag >= p.scale) {
      os << std::fixed << value / p.scale << ' ' << p.name << unit;
      return os.str();
    }
  }
  os << std::scientific << value << ' ' << unit;
  return os.str();
}

std::string fixed_format(double value, int precision) {
  std::ostringstream os;
  os.precision(precision);
  os << std::fixed << value;
  return os.str();
}

}  // namespace xlds
