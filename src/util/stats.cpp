#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/error.hpp"

namespace xlds {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n = static_cast<double>(n_ + other.n_);
  m2_ += other.m2_ + delta * delta * static_cast<double>(n_) * static_cast<double>(other.n_) / n;
  mean_ += delta * static_cast<double>(other.n_) / n;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double RunningStats::variance() const noexcept {
  return n_ >= 2 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double pearson(std::span<const double> x, std::span<const double> y) {
  XLDS_REQUIRE(x.size() == y.size());
  XLDS_REQUIRE(x.size() >= 2);
  const auto n = static_cast<double>(x.size());
  double mx = 0.0, my = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    mx += x[i];
    my += y[i];
  }
  mx /= n;
  my /= n;
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

namespace {
std::vector<double> ranks_of(std::span<const double> xs) {
  const std::size_t n = xs.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) { return xs[a] < xs[b]; });
  std::vector<double> ranks(n);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && xs[order[j + 1]] == xs[order[i]]) ++j;
    const double avg = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (std::size_t k = i; k <= j; ++k) ranks[order[k]] = avg;
    i = j + 1;
  }
  return ranks;
}
}  // namespace

double spearman(std::span<const double> x, std::span<const double> y) {
  XLDS_REQUIRE(x.size() == y.size());
  XLDS_REQUIRE(x.size() >= 2);
  const auto rx = ranks_of(x);
  const auto ry = ranks_of(y);
  return pearson(rx, ry);
}

double percentile(std::span<const double> xs, double p) {
  XLDS_REQUIRE(!xs.empty());
  XLDS_REQUIRE(p >= 0.0 && p <= 100.0);
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double pos = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double mean_of(std::span<const double> xs) {
  XLDS_REQUIRE(!xs.empty());
  return std::accumulate(xs.begin(), xs.end(), 0.0) / static_cast<double>(xs.size());
}

double stddev_of(std::span<const double> xs) {
  RunningStats s;
  for (double x : xs) s.add(x);
  return s.stddev();
}

Histogram Histogram::build(std::span<const double> xs, double lo, double hi, std::size_t nbins) {
  XLDS_REQUIRE(nbins > 0);
  XLDS_REQUIRE(hi > lo);
  Histogram h;
  h.lo = lo;
  h.hi = hi;
  h.bins.assign(nbins, 0);
  const double w = (hi - lo) / static_cast<double>(nbins);
  for (double x : xs) {
    auto idx = static_cast<long long>(std::floor((x - lo) / w));
    idx = std::clamp<long long>(idx, 0, static_cast<long long>(nbins) - 1);
    ++h.bins[static_cast<std::size_t>(idx)];
  }
  return h;
}

std::size_t Histogram::total() const noexcept {
  return std::accumulate(bins.begin(), bins.end(), std::size_t{0});
}

double Histogram::density(std::size_t i) const noexcept {
  const std::size_t t = total();
  if (t == 0 || i >= bins.size()) return 0.0;
  return static_cast<double>(bins[i]) / static_cast<double>(t);
}

double phi(double z) { return 0.5 * std::erfc(-z / std::sqrt(2.0)); }

double gaussian_overlap_error(double mu0, double mu1, double sigma) {
  XLDS_REQUIRE(sigma >= 0.0);
  if (sigma == 0.0) return mu0 == mu1 ? 0.5 : 0.0;
  const double d = std::abs(mu1 - mu0) / 2.0;
  // Either state crossing the midpoint threshold: symmetric, so the per-state
  // error probability equals 1 - Phi(d / sigma).
  return 1.0 - phi(d / sigma);
}

}  // namespace xlds
