#include "util/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>

#include "core/counters.hpp"
#include "util/env.hpp"

namespace xlds {

namespace {

constexpr std::size_t kNoFailure = ~static_cast<std::size_t>(0);

/// Target number of tasks per execution lane when auto-sizing the task grain:
/// enough slack (8 tasks each) for stealing to rebalance heterogeneous costs,
/// few enough that claim/dispatch overhead stays amortised on tiny units.
constexpr std::size_t kTasksPerLane = 8;

std::size_t env_thread_count() {
  const unsigned hw = std::thread::hardware_concurrency();
  return util::env_positive_count("XLDS_THREADS",
                                  hw == 0 ? 1 : static_cast<std::size_t>(hw));
}

SchedulerMode env_scheduler_mode() {
  static const char* const kModes[] = {"steal", "static", nullptr};
  return util::env_choice("XLDS_SCHED", kModes, "steal") == "static"
             ? SchedulerMode::kStatic
             : SchedulerMode::kWorkStealing;
}

/// One dispatched batch of units (chunks).  `unit` is borrowed from the
/// caller's stack frame, which is safe because a claimed task index is
/// bounds-checked against `n_tasks` before `unit` is ever dereferenced —
/// a thread waking up late against a drained job never touches freed state
/// (static mode additionally keeps drained jobs alive via shared_ptr so the
/// claim cursor itself stays valid).
struct Job {
  Job(const std::function<void(std::size_t)>& u, std::size_t units, std::size_t g,
      Job* parent_job)
      : unit(u),
        total_units(units),
        group(g),
        n_tasks((units + g - 1) / g),
        remaining(units),
        parent(parent_job) {}

  const std::function<void(std::size_t)>& unit;
  const std::size_t total_units;
  const std::size_t group;  ///< units per task (task k covers [k*group, ...))
  const std::size_t n_tasks;
  std::atomic<std::size_t> next{0};    ///< static-mode claim cursor (task index)
  std::atomic<std::size_t> remaining;  ///< units not yet finished
  std::atomic<std::size_t> fail_unit{kNoFailure};  ///< lowest unit index that threw
  std::exception_ptr error;  ///< exception of fail_unit; guarded by Pool::error_mutex_
  Job* const parent;  ///< job whose unit spawned this one (nested), else nullptr
};

/// A claimable entry in a lane's deque: one task of one job.
struct TaskRange {
  Job* job = nullptr;
  std::size_t task = 0;
};

/// Pool lane of the current thread: workers are lanes 1..W for life, the
/// external job submitter borrows lane 0 for the duration of its job
/// (exclusive because run_mutex_ serialises top-level jobs).
thread_local int t_lane = -1;

/// Innermost job whose unit this thread is currently executing.  Non-null
/// means "we are inside pool work": a parallel_for issued here is a nested
/// job, and this pointer becomes its parent (the ancestry chain is what
/// restricts helping to descendants — see help_until_done).
thread_local Job* t_current_job = nullptr;

/// Lazily-started pool: one top-level job at a time (run_mutex_), executed
/// either through a shared claim cursor (kStatic) or per-lane deques with
/// stealing (kWorkStealing).  Dynamic placement is fine under the determinism
/// contract because every unit is self-contained (rules 1-2 in the header):
/// which lane runs a chunk never influences the chunk's result.
class Pool {
 public:
  static Pool& instance() {
    static Pool pool;
    return pool;
  }

  std::size_t lanes() {
    std::lock_guard<std::mutex> lk(config_mutex_);
    ensure_started_locked();
    return workers_.size() + 1;  // workers plus the calling thread
  }

  void resize(std::size_t n) {
    std::lock_guard<std::mutex> run_lk(run_mutex_);  // wait out any in-flight job
    std::lock_guard<std::mutex> lk(config_mutex_);
    stop_workers_locked();
    started_ = true;
    quiesced_ = false;
    target_lanes_ = n == 0 ? env_thread_count() : n;
    start_workers_locked();
  }

  /// Pre-fork quiesce (see parallel.hpp): join every worker so the process
  /// is single-threaded and no pool mutex is held when fork() runs.  The
  /// target width is kept; the next job lazily restarts the workers — in
  /// whichever process (parent or child) issues it.
  void quiesce_for_fork() {
    std::lock_guard<std::mutex> run_lk(run_mutex_);  // wait out any in-flight job
    std::lock_guard<std::mutex> lk(config_mutex_);
    if (!started_ || quiesced_) return;
    stop_workers_locked();
    quiesced_ = true;
  }

  SchedulerMode mode() const { return mode_.load(std::memory_order_relaxed); }

  void set_mode(SchedulerMode m) {
    std::lock_guard<std::mutex> run_lk(run_mutex_);  // never flip mid-job
    mode_.store(m, std::memory_order_relaxed);
  }

  /// Run unit(u) for every u in [0, n_units) grouped into tasks of at least
  /// `min_units` units, block until all complete, rethrow the lowest-index
  /// recorded exception.
  void run_units(std::size_t n_units, std::size_t min_units,
                 const std::function<void(std::size_t)>& unit) {
    if (n_units == 0) return;
    std::size_t lane_count;
    {
      std::lock_guard<std::mutex> lk(config_mutex_);
      ensure_started_locked();
      lane_count = workers_.size() + 1;
    }

    if (t_current_job != nullptr) {  // nested call from inside a unit
      if (mode() == SchedulerMode::kStatic || lane_count == 1) {
        core::Profiler::count_sched_nested(/*cooperative=*/false);
        run_inline(n_units, unit);
        return;
      }
      run_nested(n_units, min_units, unit, lane_count);
      return;
    }

    const std::size_t group = task_group(n_units, lane_count, min_units);
    const std::size_t n_tasks = (n_units + group - 1) / group;
    // No workers, below the per-call work floor, or another thread already
    // owns the pool: fork/join overhead cannot pay for itself — run inline.
    // Same chunks, same results (rule 1).
    if (lane_count == 1 || n_tasks == 1 || !run_mutex_.try_lock()) {
      core::Profiler::count_sched_inline_job();
      run_inline(n_units, unit);
      return;
    }
    std::lock_guard<std::mutex> run_lk(run_mutex_, std::adopt_lock);
    core::Profiler::count_sched_job();
    if (mode() == SchedulerMode::kStatic)
      run_static(n_units, group, unit);
    else
      run_stealing(n_units, group, unit, lane_count);
  }

 private:
  struct Lane {
    std::mutex m;
    std::deque<TaskRange> q;
  };

  Pool() : mode_(env_scheduler_mode()) {}

  ~Pool() {
    std::lock_guard<std::mutex> lk(config_mutex_);
    stop_workers_locked();
  }

  void ensure_started_locked() {
    if (started_ && !quiesced_) return;
    if (!started_) {
      started_ = true;
      target_lanes_ = env_thread_count();
    }
    quiesced_ = false;  // lazily rebuild after a pre-fork quiesce
    start_workers_locked();
  }

  void start_workers_locked() {
    const std::size_t n_workers = target_lanes_ > 0 ? target_lanes_ - 1 : 0;
    const std::size_t lane_count = n_workers + 1;
    lanes_.clear();
    for (std::size_t i = 0; i < lane_count; ++i) lanes_.push_back(std::make_unique<Lane>());
    workers_.reserve(n_workers);
    for (std::size_t i = 0; i < n_workers; ++i)
      workers_.emplace_back([this, i, lane_count] { worker_loop(i + 1, lane_count); });
  }

  void stop_workers_locked() {
    {
      std::lock_guard<std::mutex> lk(work_mutex_);
      stopping_ = true;
      ++work_epoch_;
    }
    work_cv_.notify_all();
    for (std::thread& w : workers_) w.join();
    workers_.clear();
    {
      std::lock_guard<std::mutex> lk(work_mutex_);
      stopping_ = false;
    }
  }

  /// Units-per-task grain: auto-sized for ~kTasksPerLane tasks per lane
  /// (stealing slack), floored by the caller's minimum-work hint.  Grouping
  /// whole chunks into tasks never moves a chunk boundary, so the lane count
  /// appearing here cannot affect results — only dispatch overhead.
  static std::size_t task_group(std::size_t n_units, std::size_t lanes, std::size_t min_units) {
    const std::size_t balance = std::max<std::size_t>(1, n_units / (kTasksPerLane * lanes));
    return std::max(balance, std::max<std::size_t>(1, min_units));
  }

  static void run_inline(std::size_t n_units, const std::function<void(std::size_t)>& unit) {
    for (std::size_t u = 0; u < n_units; ++u) unit(u);
  }

  /// Execute one task of `job`: its units in index order, skipping units
  /// above the lowest recorded failure.  Units *below* a failure always still
  /// run — only a lower index can displace the recorded exception — which is
  /// what makes propagation first-by-index (= what serial execution throws)
  /// instead of first-by-time.
  void run_task(Job& job, std::size_t task) {
    const std::size_t begin = task * job.group;
    const std::size_t end = std::min(job.total_units, begin + job.group);
    Job* const prev = t_current_job;
    t_current_job = &job;
    for (std::size_t u = begin; u < end; ++u) {
      if (u > job.fail_unit.load(std::memory_order_relaxed)) continue;
      try {
        job.unit(u);
      } catch (...) {
        std::lock_guard<std::mutex> lk(error_mutex_);
        if (u < job.fail_unit.load(std::memory_order_relaxed)) {
          job.error = std::current_exception();
          job.fail_unit.store(u, std::memory_order_relaxed);
        }
      }
    }
    t_current_job = prev;
    // The release-decrement publishes both the units' effects and any
    // recorded error to the waiter's acquire-load of `remaining`.
    if (job.remaining.fetch_sub(end - begin, std::memory_order_acq_rel) == end - begin) {
      std::lock_guard<std::mutex> lk(done_mutex_);
      done_cv_.notify_all();
    }
  }

  // ---- static mode (shared claim cursor) ----------------------------------

  void run_static(std::size_t n_units, std::size_t group,
                  const std::function<void(std::size_t)>& unit) {
    // Heap-allocated and shared with every participating worker, so a worker
    // waking up late can still claim safely: a drained job's cursor stays
    // past n_tasks forever and the claim check runs before any dereference.
    auto job = std::make_shared<Job>(unit, n_units, group, nullptr);
    {
      std::lock_guard<std::mutex> lk(work_mutex_);
      current_static_ = job;
      ++work_epoch_;
    }
    work_cv_.notify_all();
    work_on_static(*job);  // the calling thread participates
    {
      std::unique_lock<std::mutex> lk(done_mutex_);
      done_cv_.wait(lk, [&] { return job->remaining.load(std::memory_order_acquire) == 0; });
    }
    {
      std::lock_guard<std::mutex> lk(work_mutex_);
      current_static_.reset();
    }
    // Move the error out before rethrowing: a worker's late shared_ptr
    // release may destroy the Job after we return, and the exception object
    // must not lose its last reference on that worker while the caller is
    // still examining the rethrown copy.
    std::exception_ptr error = std::move(job->error);
    if (error) std::rethrow_exception(error);
  }

  bool work_on_static(Job& job) {
    bool any = false;
    for (;;) {
      const std::size_t k = job.next.fetch_add(1, std::memory_order_relaxed);
      if (k >= job.n_tasks) return any;
      any = true;
      core::Profiler::count_sched_task(/*stolen=*/false);
      run_task(job, k);
    }
  }

  // ---- work-stealing mode (per-lane deques) -------------------------------

  void run_stealing(std::size_t n_units, std::size_t group,
                    const std::function<void(std::size_t)>& unit, std::size_t lane_count) {
    // The job can live on this stack frame: `remaining` only reaches zero
    // after every task has been claimed (removed from a deque) and executed,
    // so no reference to it survives help_until_done returning.
    Job job(unit, n_units, group, nullptr);
    t_lane = 0;  // borrow the submitter lane while run_mutex_ is held
    submit(job, 0, lane_count);
    help_until_done(job, 0, lane_count);
    t_lane = -1;
    if (job.error) std::rethrow_exception(job.error);
  }

  void run_nested(std::size_t n_units, std::size_t min_units,
                  const std::function<void(std::size_t)>& unit, std::size_t lane_count) {
    const std::size_t group = task_group(n_units, lane_count, min_units);
    Job job(unit, n_units, group, t_current_job);
    if (job.n_tasks == 1) {  // below the work floor: not worth sharing
      core::Profiler::count_sched_inline_job();
      run_inline(n_units, unit);
      return;
    }
    core::Profiler::count_sched_nested(/*cooperative=*/true);
    const auto self = static_cast<std::size_t>(t_lane);
    submit(job, self, lane_count);
    help_until_done(job, self, lane_count);
    if (job.error) std::rethrow_exception(job.error);
  }

  /// Push the job's tasks round-robin across all lanes, highest-priority
  /// (lowest) task index pushed last so it sits at the front of the
  /// submitter's own deque — an LPT-ordered caller starts its most expensive
  /// work first while thieves drain the cheap tail from deque backs.
  void submit(Job& job, std::size_t self, std::size_t lane_count) {
    for (std::size_t k = job.n_tasks; k-- > 0;) {
      Lane& lane = *lanes_[(self + k) % lane_count];
      std::lock_guard<std::mutex> lk(lane.m);
      lane.q.push_front(TaskRange{&job, k});
    }
    {
      std::lock_guard<std::mutex> lk(work_mutex_);
      ++work_epoch_;
    }
    work_cv_.notify_all();
  }

  /// Work until `job` has no unfinished units, then return (the caller
  /// rethrows job.error).  Only tasks of `job` or its descendants are taken:
  /// a waiter may hold locks around its nested parallel region (the fidelity
  /// ladder's probe memo does), and helping an *unrelated* task could
  /// re-enter such a lock and self-deadlock.  Fully-strict helping keeps the
  /// stolen work inside the waiter's own call tree, where lock acquisition
  /// is already ordered.  Unrelated tasks still make progress: every other
  /// lane is free to take them.
  void help_until_done(Job& job, std::size_t self, std::size_t lane_count) {
    for (;;) {
      if (job.remaining.load(std::memory_order_acquire) == 0) return;
      TaskRange t;
      if (take_descendant(job, self, lane_count, t)) {
        run_task(*t.job, t.task);
        continue;
      }
      std::unique_lock<std::mutex> lk(done_mutex_);
      done_cv_.wait(lk, [&] { return job.remaining.load(std::memory_order_acquire) == 0; });
    }
  }

  static bool descends(const Job* j, const Job* ancestor) {
    for (; j != nullptr; j = j->parent)
      if (j == ancestor) return true;
    return false;
  }

  /// Take a task of `job` or a descendant: own deque front-to-back first,
  /// then scan other lanes back-to-front (classic owner/thief discipline).
  bool take_descendant(Job& job, std::size_t self, std::size_t lane_count, TaskRange& out) {
    {
      Lane& own = *lanes_[self];
      std::lock_guard<std::mutex> lk(own.m);
      for (auto it = own.q.begin(); it != own.q.end(); ++it) {
        if (!descends(it->job, &job)) continue;
        out = *it;
        own.q.erase(it);
        core::Profiler::count_sched_task(/*stolen=*/false);
        return true;
      }
    }
    for (std::size_t i = 1; i < lane_count; ++i) {
      Lane& victim = *lanes_[(self + i) % lane_count];
      std::lock_guard<std::mutex> lk(victim.m);
      for (auto it = victim.q.rbegin(); it != victim.q.rend(); ++it) {
        if (!descends(it->job, &job)) continue;
        out = *it;
        victim.q.erase(std::next(it).base());
        core::Profiler::count_sched_task(/*stolen=*/true);
        return true;
      }
    }
    return false;
  }

  /// Take any task: own deque front, else steal from another lane's back.
  bool take_any(std::size_t self, std::size_t lane_count, TaskRange& out) {
    {
      Lane& own = *lanes_[self];
      std::lock_guard<std::mutex> lk(own.m);
      if (!own.q.empty()) {
        out = own.q.front();
        own.q.pop_front();
        core::Profiler::count_sched_task(/*stolen=*/false);
        return true;
      }
    }
    for (std::size_t i = 1; i < lane_count; ++i) {
      Lane& victim = *lanes_[(self + i) % lane_count];
      std::lock_guard<std::mutex> lk(victim.m);
      if (!victim.q.empty()) {
        out = victim.q.back();
        victim.q.pop_back();
        core::Profiler::count_sched_task(/*stolen=*/true);
        return true;
      }
    }
    core::Profiler::count_steal_failure();
    return false;
  }

  void worker_loop(std::size_t lane, std::size_t lane_count) {
    t_lane = static_cast<int>(lane);
    for (;;) {
      std::uint64_t epoch;
      std::shared_ptr<Job> static_job;
      {
        std::lock_guard<std::mutex> lk(work_mutex_);
        if (stopping_) return;
        epoch = work_epoch_;
        static_job = current_static_;
      }
      bool worked = false;
      if (static_job) worked |= work_on_static(*static_job);
      static_job.reset();
      TaskRange t;
      while (take_any(lane, lane_count, t)) {
        run_task(*t.job, t.task);
        worked = true;
      }
      if (worked) continue;
      // The epoch was read *before* the scans: any submission after that read
      // bumps it and the wait predicate is already true — no lost wakeups.
      std::unique_lock<std::mutex> lk(work_mutex_);
      work_cv_.wait(lk, [&] { return stopping_ || work_epoch_ != epoch; });
      if (stopping_) return;
    }
  }

  std::mutex config_mutex_;  ///< guards started_/target_lanes_/workers_/lanes_
  std::mutex run_mutex_;     ///< held for the duration of one top-level job
  bool started_ = false;
  bool quiesced_ = false;  ///< workers torn down pre-fork; rebuild on next use
  std::size_t target_lanes_ = 1;
  std::vector<std::thread> workers_;
  std::vector<std::unique_ptr<Lane>> lanes_;  ///< deques; stable while workers run
  std::atomic<SchedulerMode> mode_;

  std::mutex work_mutex_;  ///< guards work_epoch_/stopping_/current_static_
  std::condition_variable work_cv_;
  std::uint64_t work_epoch_ = 0;
  bool stopping_ = false;
  std::shared_ptr<Job> current_static_;

  std::mutex done_mutex_;  ///< pairs with done_cv_; completion is remaining==0
  std::condition_variable done_cv_;
  std::mutex error_mutex_;  ///< guards Job::error / fail_unit updates
};

}  // namespace

std::size_t parallel_thread_count() { return Pool::instance().lanes(); }

void set_parallel_threads(std::size_t n) { Pool::instance().resize(n); }

SchedulerMode parallel_scheduler() { return Pool::instance().mode(); }

void set_parallel_scheduler(SchedulerMode mode) { Pool::instance().set_mode(mode); }

void parallel_quiesce_for_fork() { Pool::instance().quiesce_for_fork(); }

std::size_t default_parallel_chunk(std::size_t n) {
  // Aim for ~64 chunks (fine-grained enough to balance, coarse enough to
  // amortise dispatch) — a function of n only, so chunk boundaries and the
  // per-chunk RNG stream assignment survive any thread-count change.
  return std::max<std::size_t>(1, (n + 63) / 64);
}

void parallel_for(std::size_t n, std::size_t chunk,
                  const std::function<void(std::size_t, std::size_t, std::size_t)>& body,
                  std::size_t min_items_per_task) {
  if (n == 0) return;
  if (chunk == 0) chunk = default_parallel_chunk(n);
  const std::size_t n_chunks = (n + chunk - 1) / chunk;
  const std::size_t min_units =
      min_items_per_task == 0 ? 0 : (min_items_per_task + chunk - 1) / chunk;
  const std::function<void(std::size_t)> unit = [&](std::size_t ci) {
    const std::size_t begin = ci * chunk;
    const std::size_t end = std::min(n, begin + chunk);
    body(begin, end, ci);
  };
  Pool::instance().run_units(n_chunks, min_units, unit);
}

void parallel_for_rng(Rng& rng, std::size_t n, std::size_t chunk,
                      const std::function<void(Rng&, std::size_t, std::size_t, std::size_t)>& body,
                      std::size_t min_items_per_task) {
  if (n == 0) return;
  if (chunk == 0) chunk = default_parallel_chunk(n);
  const std::size_t n_chunks = (n + chunk - 1) / chunk;
  // Fork every chunk's stream up front, in chunk order, on this thread: the
  // stream a trial draws from depends only on its chunk index, never on the
  // thread count or execution order.
  std::vector<Rng> streams;
  streams.reserve(n_chunks);
  for (std::size_t ci = 0; ci < n_chunks; ++ci) streams.push_back(rng.fork(ci));
  parallel_for(
      n, chunk,
      [&](std::size_t begin, std::size_t end, std::size_t ci) {
        body(streams[ci], begin, end, ci);
      },
      min_items_per_task);
}

}  // namespace xlds
