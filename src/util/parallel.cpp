#include "util/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>

namespace xlds {

namespace {

/// Set while a thread is executing pool work: nested parallel_for calls from
/// inside a task run inline (deterministic by construction — see header).
thread_local bool t_in_pool_task = false;

std::size_t env_thread_count() {
  if (const char* env = std::getenv("XLDS_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v > 0) return static_cast<std::size_t>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

/// One dispatched batch of tasks.  Heap-allocated and shared with every
/// participating thread, so a worker waking up late can never claim indices
/// from a job it was not dispatched for: a drained job's claim counter stays
/// past `total` forever, and the claim check runs before any dereference.
struct Job {
  explicit Job(const std::function<void(std::size_t)>& t, std::size_t n) : task(t), total(n) {}

  const std::function<void(std::size_t)>& task;
  const std::size_t total;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  std::atomic<bool> failed{false};
  std::exception_ptr error;  ///< first exception; guarded by the pool's job_mutex_
};

/// Lazily-started pool: one job at a time, indices claimed via an atomic
/// counter.  Dynamic claiming is fine under the determinism contract because
/// every task is self-contained (rule 2 in the header): which thread runs a
/// chunk never influences the chunk's result.
class ThreadPool {
 public:
  static ThreadPool& instance() {
    static ThreadPool pool;
    return pool;
  }

  std::size_t lanes() {
    std::lock_guard<std::mutex> lk(config_mutex_);
    ensure_started_locked();
    return workers_.size() + 1;  // workers plus the calling thread
  }

  void resize(std::size_t n) {
    std::lock_guard<std::mutex> run_lk(run_mutex_);  // wait out any in-flight job
    std::lock_guard<std::mutex> lk(config_mutex_);
    stop_workers_locked();
    started_ = true;
    target_lanes_ = n == 0 ? env_thread_count() : n;
    start_workers_locked();
  }

  /// Run task(i) for every i in [0, n), block until all complete, rethrow
  /// the first recorded exception.
  void run_tasks(std::size_t n, const std::function<void(std::size_t)>& task) {
    if (n == 0) return;
    bool have_workers;
    {
      std::lock_guard<std::mutex> lk(config_mutex_);
      ensure_started_locked();
      have_workers = !workers_.empty();
    }
    // Serialise jobs; if a job is already running (another user thread) or we
    // are inside a pool task, execute inline — same chunks, same results.
    if (t_in_pool_task || !have_workers || n == 1 || !run_mutex_.try_lock()) {
      for (std::size_t i = 0; i < n; ++i) task(i);
      return;
    }
    std::lock_guard<std::mutex> run_lk(run_mutex_, std::adopt_lock);
    auto job = std::make_shared<Job>(task, n);
    {
      std::lock_guard<std::mutex> lk(job_mutex_);
      current_job_ = job;
      ++job_generation_;
    }
    job_cv_.notify_all();
    work_on(*job);  // the calling thread participates
    {
      std::unique_lock<std::mutex> lk(job_mutex_);
      done_cv_.wait(lk, [&] { return job->done.load(std::memory_order_acquire) >= job->total; });
      current_job_.reset();
      if (job->error) {
        std::exception_ptr err = job->error;
        lk.unlock();
        std::rethrow_exception(err);
      }
    }
  }

 private:
  ThreadPool() = default;

  ~ThreadPool() {
    std::lock_guard<std::mutex> lk(config_mutex_);
    stop_workers_locked();
  }

  void ensure_started_locked() {
    if (started_) return;
    started_ = true;
    target_lanes_ = env_thread_count();
    start_workers_locked();
  }

  void start_workers_locked() {
    const std::size_t n_workers = target_lanes_ > 0 ? target_lanes_ - 1 : 0;
    workers_.reserve(n_workers);
    for (std::size_t i = 0; i < n_workers; ++i)
      workers_.emplace_back([this] { worker_loop(); });
  }

  void stop_workers_locked() {
    {
      std::lock_guard<std::mutex> lk(job_mutex_);
      stopping_ = true;
    }
    job_cv_.notify_all();
    for (std::thread& w : workers_) w.join();
    workers_.clear();
    {
      std::lock_guard<std::mutex> lk(job_mutex_);
      stopping_ = false;
    }
  }

  void worker_loop() {
    std::uint64_t seen_generation = 0;
    std::unique_lock<std::mutex> lk(job_mutex_);
    for (;;) {
      job_cv_.wait(lk, [&] { return stopping_ || job_generation_ != seen_generation; });
      if (stopping_) return;
      seen_generation = job_generation_;
      const std::shared_ptr<Job> job = current_job_;
      lk.unlock();
      if (job) {
        t_in_pool_task = true;
        work_on(*job);
        t_in_pool_task = false;
      }
      lk.lock();
    }
  }

  void work_on(Job& job) {
    for (;;) {
      const std::size_t i = job.next.fetch_add(1, std::memory_order_relaxed);
      if (i >= job.total) break;
      if (!job.failed.load(std::memory_order_relaxed)) {
        try {
          job.task(i);
        } catch (...) {
          std::lock_guard<std::mutex> lk(job_mutex_);
          if (!job.error) {
            job.error = std::current_exception();
            job.failed.store(true, std::memory_order_relaxed);
          }
        }
      }
      if (job.done.fetch_add(1, std::memory_order_acq_rel) + 1 == job.total) {
        std::lock_guard<std::mutex> lk(job_mutex_);
        done_cv_.notify_all();
      }
    }
  }

  std::mutex config_mutex_;  ///< guards started_/target_lanes_/workers_
  std::mutex run_mutex_;     ///< held for the duration of one job
  bool started_ = false;
  std::size_t target_lanes_ = 1;
  std::vector<std::thread> workers_;

  std::mutex job_mutex_;  ///< guards current_job_/job_generation_/stopping_/Job::error
  std::condition_variable job_cv_;
  std::condition_variable done_cv_;
  std::uint64_t job_generation_ = 0;
  bool stopping_ = false;
  std::shared_ptr<Job> current_job_;
};

}  // namespace

std::size_t parallel_thread_count() { return ThreadPool::instance().lanes(); }

void set_parallel_threads(std::size_t n) { ThreadPool::instance().resize(n); }

std::size_t default_parallel_chunk(std::size_t n) {
  // Aim for ~64 chunks (fine-grained enough to balance, coarse enough to
  // amortise dispatch) — a function of n only, so chunk boundaries and the
  // per-chunk RNG stream assignment survive any thread-count change.
  return std::max<std::size_t>(1, (n + 63) / 64);
}

void parallel_for(std::size_t n, std::size_t chunk,
                  const std::function<void(std::size_t, std::size_t, std::size_t)>& body) {
  if (n == 0) return;
  if (chunk == 0) chunk = default_parallel_chunk(n);
  const std::size_t n_chunks = (n + chunk - 1) / chunk;
  ThreadPool::instance().run_tasks(n_chunks, [&](std::size_t ci) {
    const std::size_t begin = ci * chunk;
    const std::size_t end = std::min(n, begin + chunk);
    body(begin, end, ci);
  });
}

void parallel_for_rng(Rng& rng, std::size_t n, std::size_t chunk,
                      const std::function<void(Rng&, std::size_t, std::size_t, std::size_t)>& body) {
  if (n == 0) return;
  if (chunk == 0) chunk = default_parallel_chunk(n);
  const std::size_t n_chunks = (n + chunk - 1) / chunk;
  // Fork every chunk's stream up front, in chunk order, on this thread: the
  // stream a trial draws from depends only on its chunk index, never on the
  // thread count or execution order.
  std::vector<Rng> streams;
  streams.reserve(n_chunks);
  for (std::size_t ci = 0; ci < n_chunks; ++ci) streams.push_back(rng.fork(ci));
  parallel_for(n, chunk, [&](std::size_t begin, std::size_t end, std::size_t ci) {
    body(streams[ci], begin, end, ci);
  });
}

}  // namespace xlds
