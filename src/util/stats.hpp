// Small statistics toolkit used throughout the framework: accuracy
// aggregation, correlation studies (Fig. 4D), distribution summaries of
// device-state populations (Fig. 3G-i), and Monte-Carlo confidence reporting.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace xlds {

/// Numerically stable single-pass accumulator (Welford).
class RunningStats {
 public:
  void add(double x) noexcept;
  void merge(const RunningStats& other) noexcept;

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Pearson linear correlation coefficient of two equal-length series.
/// Returns 0 when either series is constant.  Precondition: sizes match,
/// size >= 2.
double pearson(std::span<const double> x, std::span<const double> y);

/// Spearman rank correlation (Pearson on ranks, average ranks for ties).
double spearman(std::span<const double> x, std::span<const double> y);

/// p-th percentile (0..100) with linear interpolation; copies + sorts.
/// Precondition: non-empty input, 0 <= p <= 100.
double percentile(std::span<const double> xs, double p);

/// Mean of a series; precondition: non-empty.
double mean_of(std::span<const double> xs);

/// Sample standard deviation of a series; 0 for fewer than two samples.
double stddev_of(std::span<const double> xs);

/// Equal-width histogram used by device state-distribution studies.
struct Histogram {
  double lo = 0.0;
  double hi = 1.0;
  std::vector<std::size_t> bins;

  /// Build over [lo, hi] with the given number of bins.  Values outside the
  /// range are clamped to the edge bins so no sample is silently lost.
  static Histogram build(std::span<const double> xs, double lo, double hi, std::size_t nbins);

  std::size_t total() const noexcept;
  /// Fraction of samples in bin i.
  double density(std::size_t i) const noexcept;
};

/// Probability that two Gaussians N(mu0, sigma) and N(mu1, sigma) with a
/// midpoint decision threshold misclassify a sample — the "state overlap"
/// metric for multi-level cell programming (Fig. 3G-i).
double gaussian_overlap_error(double mu0, double mu1, double sigma);

/// Standard normal CDF.
double phi(double z);

}  // namespace xlds
