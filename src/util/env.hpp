// Validated environment-variable parsing for the XLDS_* tuning knobs.
//
// XLDS_THREADS / XLDS_SHARDS / XLDS_SCHED only ever change wall-clock
// behaviour, never results — but a typo'd value silently falling back to a
// default is still a trap: the user believes they pinned the pool width and
// the run quietly used every core.  These helpers accept exactly the values
// the docs name, and reject everything else with a one-line stderr warning
// naming the variable, the offending value and the fallback actually used.
#pragma once

#include <cstddef>
#include <optional>
#include <string>

namespace xlds::util {

/// Strict positive-count parse: the whole string must be a base-10 integer
/// >= 1 (no sign, no whitespace, no trailing junk, no overflow).
std::optional<std::size_t> parse_positive_count(const std::string& text);

/// Read environment variable `name` as a positive count.  Unset -> fallback
/// silently; set but unparseable -> one-line stderr warning, then fallback.
std::size_t env_positive_count(const char* name, std::size_t fallback);

/// Read environment variable `name` constrained to one of `allowed` (a
/// null-terminated array of C strings).  Unset -> fallback silently; set to
/// anything else -> one-line stderr warning listing the valid values, then
/// fallback.
std::string env_choice(const char* name, const char* const* allowed,
                       const std::string& fallback);

}  // namespace xlds::util
