// FNV-1a 64-bit — the framework's one content hash.  Header-only and at the
// bottom of the stack so every layer (journal framing, shard wire protocol,
// result-cache keys, space identity) chains the *same* bytes-to-bits map:
// two subsystems hashing the same bytes always agree, which is what lets the
// cross-run result cache share entries with journal-compatible jobs.
#pragma once

#include <cstddef>
#include <cstdint>

namespace xlds::util {

constexpr std::uint64_t kFnvOffsetBasis = 14695981039346656037ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

/// Hash a byte range; `h` chains multiple ranges.
inline std::uint64_t fnv1a64(const void* data, std::size_t n,
                             std::uint64_t h = kFnvOffsetBasis) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= bytes[i];
    h *= kFnvPrime;
  }
  return h;
}

}  // namespace xlds::util
