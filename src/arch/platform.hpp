// First-order platform performance models (Sec. V / Fig. 3H baselines).
//
// A platform is characterised by its peak MAC throughput, memory bandwidth,
// host-link behaviour and energy coefficients; a kernel costs
// max(compute-bound, memory-bound) time plus a launch overhead.  This is a
// roofline — deliberately so: Fig. 3H compares *orders* of latency between
// GPU/TPU software baselines and CAM-based accelerators, and a roofline with
// honest launch/transfer terms is the right fidelity for triage (deep dives
// then go to the system simulator in xlds::sim).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace xlds::arch {

struct Platform {
  std::string name;
  double peak_macs_per_s = 1e12;   ///< sustained MAC throughput
  double mem_bandwidth = 1e11;     ///< B/s, on-device
  double link_bandwidth = 1e10;    ///< B/s, host <-> device (PCIe-class)
  double link_latency = 10e-6;     ///< s per host transfer
  double launch_overhead = 5e-6;   ///< s per kernel launch
  double energy_per_mac = 1e-12;   ///< J
  double energy_per_byte = 20e-12; ///< J, DRAM traffic
  double idle_power = 30.0;        ///< W, burned while a kernel runs
};

/// Presets, roughly a datacenter GPU, an inference TPU and a desktop CPU.
/// Values are order-of-magnitude representative; the comparisons in the
/// benches are *relative*.
const Platform& gpu();
const Platform& tpu();
const Platform& cpu();
/// An embedded-class GPU for the "deployed at the edge" question the case
/// study raises (small batch, weak link).
const Platform& edge_gpu();

struct KernelCost {
  double latency = 0.0;  ///< s
  double energy = 0.0;   ///< J

  KernelCost& operator+=(const KernelCost& o) {
    latency += o.latency;
    energy += o.energy;
    return *this;
  }
};

/// Dense kernel: `macs` multiply-accumulates touching `bytes` of memory.
KernelCost dense_kernel(const Platform& p, std::size_t macs, std::size_t bytes);

/// Host <-> device transfer of `bytes`.
KernelCost host_transfer(const Platform& p, std::size_t bytes);

}  // namespace xlds::arch
