// End-to-end MANN inference cost on digital platforms vs the all-RRAM
// mapping (Sec. IV / Fig. 4E latency comparison).
//
// Digital: CNN + distance computation run as kernels; the AM distance pass
// streams every stored feature vector per query — the traffic the paper
// identifies as the MANN bottleneck.  RRAM: CNN layers execute as crossbar
// MVMs (weights resident), hashing is one stochastic-crossbar pass and the
// search one TCAM operation.
#pragma once

#include <cstddef>

#include "arch/platform.hpp"
#include "cam/types.hpp"
#include "xbar/crossbar.hpp"

namespace xlds::arch {

struct MannWorkload {
  std::size_t cnn_macs = 2'000'000;  ///< feature-extractor MACs per image
  std::size_t cnn_param_bytes = 300'000;
  std::size_t fv_dim = 64;        ///< feature-vector length
  std::size_t am_entries = 25;    ///< stored support vectors
  std::size_t fv_bytes = 4;       ///< bytes per stored FV element
  std::size_t signature_bits = 128;
};

/// Digital baseline: CNN kernel + cosine-distance pass over the AM.
KernelCost mann_gpu_inference(const Platform& p, const MannWorkload& w, std::size_t batch);

/// All-RRAM mapping: CNN as `cnn_layer_count` sequential crossbar MVM
/// stages of cost `cnn_stage`, then hash MVM, then TCAM search.
KernelCost mann_rram_inference(const xbar::MvmCost& cnn_stage, std::size_t cnn_layer_count,
                               const xbar::MvmCost& hash, const cam::SearchCost& search,
                               std::size_t batch);

}  // namespace xlds::arch
