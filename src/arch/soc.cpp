#include "arch/soc.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace xlds::arch {

AcceleratorIp cgra_ip() {
  AcceleratorIp ip;
  ip.name = "CGRA";
  ip.area_mm2 = 0.60;
  ip.power_w = 0.012;
  ip.kernel_speedup = 6.0;
  ip.bus_demand = 0.4e9;
  return ip;
}

AcceleratorIp in_sram_compute_ip() {
  AcceleratorIp ip;
  ip.name = "in-SRAM compute";
  ip.area_mm2 = 0.35;
  ip.power_w = 0.008;
  ip.kernel_speedup = 4.0;
  ip.bus_demand = 0.1e9;  // operands stay in the SRAM macro
  return ip;
}

AcceleratorIp crossbar_macro_ip() {
  AcceleratorIp ip;
  ip.name = "analog crossbar macro";
  ip.area_mm2 = 0.45;
  ip.power_w = 0.015;
  ip.kernel_speedup = 18.0;  // the Sec.-V "up to 20X" class on its kernels
  ip.bus_demand = 0.8e9;     // activations in/out every MVM
  return ip;
}

SocTemplate SocTemplate::ultra_low_power() {
  SocTemplate t;
  t.name = "ulp-edge";
  t.area_budget_mm2 = 2.5;
  t.power_budget_w = 0.050;
  t.bus_bandwidth = 1.6e9;
  t.base_components = {
      {"rv32 core", 0.15, 0.010},
      {"SRAM banks (256 KiB)", 0.80, 0.006},
      {"peripherals + DMA", 0.25, 0.004},
      {"always-on domain", 0.10, 0.001},
  };
  return t;
}

SocInstance::SocInstance(SocTemplate base) : base_(std::move(base)) {
  XLDS_REQUIRE(base_.area_budget_mm2 > 0.0);
  XLDS_REQUIRE(base_.power_budget_w > 0.0);
  XLDS_REQUIRE(base_.bus_bandwidth > 0.0);
}

SocInstance& SocInstance::attach(AcceleratorIp ip) {
  XLDS_REQUIRE_MSG(ip.kernel_speedup >= 1.0, "an accelerator must not slow its kernel down");
  XLDS_REQUIRE(ip.area_mm2 >= 0.0 && ip.power_w >= 0.0 && ip.bus_demand >= 0.0);
  accelerators_.push_back(std::move(ip));
  return *this;
}

SocReport SocInstance::integrate(double offloadable_fraction) const {
  XLDS_REQUIRE(offloadable_fraction >= 0.0 && offloadable_fraction <= 1.0);
  SocReport report;
  for (const SocComponent& c : base_.base_components) {
    report.total_area_mm2 += c.area_mm2;
    report.total_power_w += c.power_w;
  }
  double bus_demand = 0.0;
  double best_speedup = 1.0;
  for (const AcceleratorIp& ip : accelerators_) {
    report.total_area_mm2 += ip.area_mm2;
    report.total_power_w += ip.power_w;
    bus_demand += ip.bus_demand;
    best_speedup = std::max(best_speedup, ip.kernel_speedup);
  }
  report.bus_utilisation = bus_demand / base_.bus_bandwidth;

  if (report.total_area_mm2 > base_.area_budget_mm2) {
    report.violation = "area budget exceeded";
    return report;
  }
  if (report.total_power_w > base_.power_budget_w) {
    report.violation = "power budget exceeded";
    return report;
  }
  report.fits = true;

  // Amdahl with bus contention: an oversubscribed shared bus stretches the
  // accelerated phase by the utilisation factor.
  const double contention = std::max(1.0, report.bus_utilisation);
  const double accel_phase = offloadable_fraction / best_speedup * contention;
  report.application_speedup = 1.0 / ((1.0 - offloadable_fraction) + accel_phase);
  return report;
}

}  // namespace xlds::arch
