// Open-hardware modular SoC template (Sec. V, first approach).
//
// X-HEEP-class flow: an ultra-low-power SoC *template* of validated
// components (core, memories, peripherals, shared bus) from which instances
// are derived by attaching custom accelerators — a CGRA, in-SRAM compute, an
// analog crossbar macro.  The model checks the integration budgets (area,
// power, shared-bus bandwidth) and projects the application-level speedup of
// an instance: Amdahl over the offloadable fraction, degraded by bus
// contention.  This is the "prototype them and their derived benefits from
// the standpoint of an entire application" path, at triage fidelity.
#pragma once

#include <optional>
#include <string>
#include <vector>

namespace xlds::arch {

struct SocComponent {
  std::string name;
  double area_mm2 = 0.0;
  double power_w = 0.0;
};

struct AcceleratorIp {
  std::string name;
  double area_mm2 = 0.0;
  double power_w = 0.0;
  /// Speedup over the host core on the kernels it accelerates.
  double kernel_speedup = 1.0;
  /// Shared-bus traffic the accelerator generates per second of accelerated
  /// execution (operand fetch + result write-back), B/s.
  double bus_demand = 0.0;
};

/// Canonical accelerator IPs from the Sec.-V literature.
AcceleratorIp cgra_ip();            ///< coarse-grained reconfigurable array
AcceleratorIp in_sram_compute_ip(); ///< bit-line in-SRAM computing
AcceleratorIp crossbar_macro_ip();  ///< analog MVM macro

struct SocTemplate {
  std::string name;
  double area_budget_mm2 = 0.0;
  double power_budget_w = 0.0;
  double bus_bandwidth = 0.0;  ///< shared-bus peak, B/s
  std::vector<SocComponent> base_components;

  /// The ultra-low-power edge template (X-HEEP-like: RISC-V core, SRAM
  /// banks, peripherals on a 2.5 mm^2 / 50 mW envelope).
  static SocTemplate ultra_low_power();
};

/// Result of deriving an instance from the template.
struct SocReport {
  bool fits = false;
  std::string violation;     ///< first violated budget, empty when fits
  double total_area_mm2 = 0.0;
  double total_power_w = 0.0;
  double bus_utilisation = 0.0;   ///< accelerator demand / bus bandwidth
  double application_speedup = 1.0;
};

class SocInstance {
 public:
  explicit SocInstance(SocTemplate base);

  /// Attach a custom accelerator (the X-HEEP "fast integration" step).
  SocInstance& attach(AcceleratorIp ip);

  const std::vector<AcceleratorIp>& accelerators() const noexcept { return accelerators_; }

  /// Validate the budgets and project application speedup given the fraction
  /// of application runtime the attached accelerators can absorb.
  /// Precondition: 0 <= offloadable_fraction < 1... <= 1 allowed; contention
  /// modelled as serialising the accelerated phase when bus demand exceeds
  /// the shared-bus bandwidth.
  SocReport integrate(double offloadable_fraction) const;

 private:
  SocTemplate base_;
  std::vector<AcceleratorIp> accelerators_;
};

}  // namespace xlds::arch
