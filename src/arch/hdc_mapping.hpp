// End-to-end HDC inference cost on each candidate platform (Figs. 3E, 3H).
//
// The HDC inference pipeline is encode (an F x D MVM) followed by
// associative search against the stored hypervectors.  The associative
// memory holds `am_entries` prototypes — per-sample prototypes in the
// online-HD / few-shot style the case studies profile, which is why search
// is a substantial share of end-to-end runtime for several datasets
// (Fig. 3E).  Platform mappings:
//   * GPU            — query transfer + encode kernel + search kernel,
//   * TPU-GPU hybrid — encode on the TPU (efficient MVM), search on the GPU,
//     plus the inter-accelerator hop,
//   * CAM            — crossbar encode + CAM search, pipelined over a batch,
//   * GPU-MLP        — the alternative-algorithm baseline (Fig. 3H, last bar).
#pragma once

#include <cstddef>

#include "arch/platform.hpp"
#include "cam/types.hpp"
#include "xbar/crossbar.hpp"

namespace xlds::arch {

struct HdcWorkload {
  std::size_t input_dim = 617;   ///< F
  std::size_t hv_dim = 4096;     ///< D
  std::size_t am_entries = 512;  ///< stored prototypes (per-sample AM)
  std::size_t elem_bytes = 1;    ///< bytes per stored HV element
};

/// One inference request of `batch` queries on a software platform.
KernelCost hdc_gpu_inference(const Platform& p, const HdcWorkload& w, std::size_t batch);

/// Encode on `encoder` (TPU), search on `searcher` (GPU), device-to-device
/// hop between them.
KernelCost hdc_hybrid_inference(const Platform& encoder, const Platform& searcher,
                                const HdcWorkload& w, std::size_t batch);

/// Technology-enabled mapping: per-query crossbar encode + CAM search,
/// pipelined across the batch (the slower stage sets the beat).
KernelCost hdc_cam_inference(const xbar::MvmCost& encode, const cam::SearchCost& search,
                             std::size_t batch);

/// MLP baseline on a software platform: `macs` per inference, weights of
/// `param_bytes` streamed per batch.
KernelCost mlp_gpu_inference(const Platform& p, std::size_t macs, std::size_t param_bytes,
                             std::size_t batch);

/// Fraction of end-to-end GPU inference latency spent in associative search
/// (Fig. 3E's metric).
double gpu_search_fraction(const Platform& p, const HdcWorkload& w, std::size_t batch);

/// The paper's open question 2 (Sec. III): a conventional accelerator backed
/// by dense on-chip non-volatile memory.  Projection matrix and stored
/// hypervectors are NVM-resident: no host weight transfer, and the AM/wait
/// streams at the NVM array's bandwidth instead of DRAM's.
KernelCost hdc_nvm_backed_inference(const Platform& p, const HdcWorkload& w, std::size_t batch,
                                    double nvm_read_bandwidth, double nvm_energy_per_byte);

}  // namespace xlds::arch
