#include "arch/hdc_mapping.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace xlds::arch {

namespace {

/// Encode kernel for a batch: B*F*D MACs; streams the projection matrix
/// (F*D, 1 B elements — bipolar) and the queries.
KernelCost encode_kernel(const Platform& p, const HdcWorkload& w, std::size_t batch) {
  const std::size_t macs = batch * w.input_dim * w.hv_dim;
  const std::size_t bytes = w.input_dim * w.hv_dim + batch * w.input_dim * 4;
  return dense_kernel(p, macs, bytes);
}

/// Search kernel: distances from B queries to all stored prototypes; streams
/// the AM (am_entries * D * elem_bytes) once per batch.
KernelCost search_kernel(const Platform& p, const HdcWorkload& w, std::size_t batch) {
  const std::size_t macs = batch * w.am_entries * w.hv_dim;
  const std::size_t bytes = w.am_entries * w.hv_dim * w.elem_bytes + batch * w.hv_dim;
  return dense_kernel(p, macs, bytes);
}

}  // namespace

KernelCost hdc_gpu_inference(const Platform& p, const HdcWorkload& w, std::size_t batch) {
  XLDS_REQUIRE(batch >= 1);
  KernelCost total = host_transfer(p, batch * w.input_dim * 4);
  total += encode_kernel(p, w, batch);
  total += search_kernel(p, w, batch);
  return total;
}

KernelCost hdc_hybrid_inference(const Platform& encoder, const Platform& searcher,
                                const HdcWorkload& w, std::size_t batch) {
  XLDS_REQUIRE(batch >= 1);
  KernelCost total = host_transfer(encoder, batch * w.input_dim * 4);
  total += encode_kernel(encoder, w, batch);
  // Encoded hypervectors hop to the search device over the package-level
  // fabric (the hybrid is co-integrated, so the hop runs at the searcher's
  // memory bandwidth with a fixed synchronisation cost, not over PCIe).
  constexpr double kSyncOverhead = 2e-6;
  const auto hop_bytes = static_cast<double>(batch * w.hv_dim * w.elem_bytes);
  KernelCost hop;
  hop.latency = kSyncOverhead + hop_bytes / searcher.mem_bandwidth;
  hop.energy = hop_bytes * searcher.energy_per_byte;
  total += hop;
  total += search_kernel(searcher, w, batch);
  return total;
}

KernelCost hdc_cam_inference(const xbar::MvmCost& encode, const cam::SearchCost& search,
                             std::size_t batch) {
  XLDS_REQUIRE(batch >= 1);
  KernelCost total;
  // Fill the two-stage pipeline, then the slower stage sets the interval.
  const double beat = std::max(encode.latency, search.latency);
  total.latency = encode.latency + search.latency + beat * static_cast<double>(batch - 1);
  total.energy = static_cast<double>(batch) * (encode.energy + search.energy);
  return total;
}

KernelCost mlp_gpu_inference(const Platform& p, std::size_t macs, std::size_t param_bytes,
                             std::size_t batch) {
  XLDS_REQUIRE(batch >= 1);
  KernelCost total = host_transfer(p, batch * 1024);  // input payload
  total += dense_kernel(p, batch * macs, param_bytes + batch * 512);
  return total;
}

double gpu_search_fraction(const Platform& p, const HdcWorkload& w, std::size_t batch) {
  const KernelCost enc = encode_kernel(p, w, batch);
  const KernelCost sea = search_kernel(p, w, batch);
  return sea.latency / (enc.latency + sea.latency);
}

KernelCost hdc_nvm_backed_inference(const Platform& p, const HdcWorkload& w, std::size_t batch,
                                    double nvm_read_bandwidth, double nvm_energy_per_byte) {
  XLDS_REQUIRE(batch >= 1);
  XLDS_REQUIRE(nvm_read_bandwidth > 0.0);
  // Query input still arrives from the host.
  KernelCost total = host_transfer(p, batch * w.input_dim * 4);

  // Encode: compute as usual, but the projection matrix streams from the
  // on-chip NVM rather than DRAM.
  {
    const std::size_t macs = batch * w.input_dim * w.hv_dim;
    const auto bytes = static_cast<double>(w.input_dim * w.hv_dim);
    KernelCost c;
    const double t_compute = static_cast<double>(macs) / p.peak_macs_per_s;
    const double t_memory = bytes / nvm_read_bandwidth;
    c.latency = p.launch_overhead + std::max(t_compute, t_memory);
    c.energy = static_cast<double>(macs) * p.energy_per_mac + bytes * nvm_energy_per_byte +
               p.idle_power * c.latency;
    total += c;
  }
  // Search: the stored hypervectors are NVM-resident too.
  {
    const std::size_t macs = batch * w.am_entries * w.hv_dim;
    const auto bytes = static_cast<double>(w.am_entries * w.hv_dim * w.elem_bytes);
    KernelCost c;
    const double t_compute = static_cast<double>(macs) / p.peak_macs_per_s;
    const double t_memory = bytes / nvm_read_bandwidth;
    c.latency = p.launch_overhead + std::max(t_compute, t_memory);
    c.energy = static_cast<double>(macs) * p.energy_per_mac + bytes * nvm_energy_per_byte +
               p.idle_power * c.latency;
    total += c;
  }
  return total;
}

}  // namespace xlds::arch
