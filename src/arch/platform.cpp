#include "arch/platform.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace xlds::arch {

namespace {

Platform make_gpu() {
  Platform p;
  p.name = "GPU";
  p.peak_macs_per_s = 60e12;   // fp16 tensor-core class, sustained
  p.mem_bandwidth = 900e9;
  p.link_bandwidth = 16e9;
  p.link_latency = 10e-6;
  p.launch_overhead = 5e-6;
  p.energy_per_mac = 0.6e-12;
  p.energy_per_byte = 15e-12;
  p.idle_power = 60.0;
  return p;
}

Platform make_tpu() {
  Platform p;
  p.name = "TPU";
  p.peak_macs_per_s = 180e12;  // systolic array shines on large MVM
  p.mem_bandwidth = 600e9;
  p.link_bandwidth = 16e9;
  p.link_latency = 10e-6;
  p.launch_overhead = 3e-6;
  p.energy_per_mac = 0.25e-12;
  p.energy_per_byte = 12e-12;
  p.idle_power = 40.0;
  return p;
}

Platform make_cpu() {
  Platform p;
  p.name = "CPU";
  p.peak_macs_per_s = 0.5e12;
  p.mem_bandwidth = 50e9;
  p.link_bandwidth = 50e9;   // it *is* the host
  p.link_latency = 0.0;
  p.launch_overhead = 0.2e-6;
  p.energy_per_mac = 10e-12;
  p.energy_per_byte = 30e-12;
  p.idle_power = 30.0;
  return p;
}

Platform make_edge_gpu() {
  Platform p;
  p.name = "EdgeGPU";
  p.peak_macs_per_s = 2e12;
  p.mem_bandwidth = 60e9;
  p.link_bandwidth = 4e9;
  p.link_latency = 20e-6;
  p.launch_overhead = 10e-6;
  p.energy_per_mac = 2e-12;
  p.energy_per_byte = 25e-12;
  p.idle_power = 5.0;
  return p;
}

}  // namespace

const Platform& gpu() {
  static const Platform p = make_gpu();
  return p;
}
const Platform& tpu() {
  static const Platform p = make_tpu();
  return p;
}
const Platform& cpu() {
  static const Platform p = make_cpu();
  return p;
}
const Platform& edge_gpu() {
  static const Platform p = make_edge_gpu();
  return p;
}

KernelCost dense_kernel(const Platform& p, std::size_t macs, std::size_t bytes) {
  XLDS_REQUIRE(p.peak_macs_per_s > 0.0 && p.mem_bandwidth > 0.0);
  KernelCost c;
  const double t_compute = static_cast<double>(macs) / p.peak_macs_per_s;
  const double t_memory = static_cast<double>(bytes) / p.mem_bandwidth;
  c.latency = p.launch_overhead + std::max(t_compute, t_memory);
  c.energy = static_cast<double>(macs) * p.energy_per_mac +
             static_cast<double>(bytes) * p.energy_per_byte + p.idle_power * c.latency;
  return c;
}

KernelCost host_transfer(const Platform& p, std::size_t bytes) {
  KernelCost c;
  c.latency = p.link_latency + static_cast<double>(bytes) / p.link_bandwidth;
  c.energy = static_cast<double>(bytes) * p.energy_per_byte;
  return c;
}

}  // namespace xlds::arch
