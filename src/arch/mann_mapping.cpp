#include "arch/mann_mapping.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace xlds::arch {

KernelCost mann_gpu_inference(const Platform& p, const MannWorkload& w, std::size_t batch) {
  XLDS_REQUIRE(batch >= 1);
  KernelCost total = host_transfer(p, batch * 2048);
  // CNN: weights stream once per batch.
  total += dense_kernel(p, batch * w.cnn_macs, w.cnn_param_bytes + batch * 4096);
  // AM distance pass: every stored FV read per query.
  const std::size_t macs = batch * w.am_entries * w.fv_dim;
  const std::size_t bytes = w.am_entries * w.fv_dim * w.fv_bytes + batch * w.fv_dim * 4;
  total += dense_kernel(p, macs, bytes);
  return total;
}

KernelCost mann_rram_inference(const xbar::MvmCost& cnn_stage, std::size_t cnn_layer_count,
                               const xbar::MvmCost& hash, const cam::SearchCost& search,
                               std::size_t batch) {
  XLDS_REQUIRE(batch >= 1 && cnn_layer_count >= 1);
  const double stage_lat = cnn_stage.latency;
  const double query_latency =
      stage_lat * static_cast<double>(cnn_layer_count) + hash.latency + search.latency;
  const double query_energy =
      cnn_stage.energy * static_cast<double>(cnn_layer_count) + hash.energy + search.energy;
  // The layer pipeline streams the batch at the slowest-stage beat.
  const double beat = std::max({stage_lat, hash.latency, search.latency});
  KernelCost total;
  total.latency = query_latency + beat * static_cast<double>(batch - 1);
  total.energy = query_energy * static_cast<double>(batch);
  return total;
}

}  // namespace xlds::arch
