// Closed-loop serving simulator on virtual time.
//
// A single-server queue fed by a deterministic Poisson arrival process
// (batched exponential gaps, kernels::fill_exponential) serves classification
// requests against a ServedHdcModel whose devices age between control ticks
// — FeFET retention drift in the CAM, RRAM relaxation in the encoder tiles —
// at a configurable rate (drift_time_scale device-seconds per virtual
// second; because drift per tick accumulates as a random walk and the
// retention law is sqrt-log in time, the scale's effect is logarithmic and
// small values already produce mission-length degradation within seconds of
// virtual time).  Every check_interval requests the loop pauses,
// applies the elapsed aging, and consults a RecalibrationPolicy; SLO
// machinery accounts the consequences:
//
//   * admission control — a request whose projected queue wait exceeds
//     max_queue_wait_s is shed (never enters the pipeline);
//   * the degradation ladder while a recalibration window is open:
//       kServeDegraded — serve anyway at degraded_latency_factor x service
//                        time (counted as degraded),
//       kShed          — refuse the request outright,
//       kBlock         — hold the server until the window closes (the
//                        latency spike lands on the p99);
//   * latency p50/p99 over completed requests, a sliding accuracy window,
//     and the floor-violation record the acceptance gate reads.
//
// Determinism: arrivals, request ids and every device draw come from forked
// Rng streams consumed in request order; the only internally-parallel stage
// is the batched tile-fleet encode, which is bit-identical at any thread
// count.  Two runs with the same seed and thread counts 1 and 8 produce
// byte-identical reports (checksummed).
//
// Modelling note: a triggered refresh takes effect on the simulated arrays
// immediately, while its latency/energy cost opens a recalibration window of
// recal duration during which requests are degraded/shed/blocked.  Accuracy
// during the window is therefore slightly optimistic; the SLO cost of the
// window is what the ladder prices.  A spare swap applies instantly (the
// spare was programmed in the background) and starts reprogramming the
// vacated array, which becomes the next spare after spare_reprogram_s.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "serve/model.hpp"
#include "serve/policy.hpp"
#include "serve/slo.hpp"

namespace xlds::serve {

enum class DegradeMode {
  kServeDegraded,  ///< serve at a latency penalty during recalibration
  kShed,           ///< refuse requests during recalibration
  kBlock,          ///< queue requests until the recalibration window closes
};

struct ServingConfig {
  std::size_t total_requests = 2048;
  /// Poisson arrival rate, req/s; 0 derives lambda = utilisation / service
  /// time so the queue is busy but stable.
  double arrival_rate = 0.0;
  double target_utilisation = 0.7;
  /// Host-side overhead per request on top of the measured encode + search
  /// latency (dispatch, quantisation, aggregation).
  double base_service_s = 1e-3;
  std::size_t check_interval = 64;   ///< requests per control tick
  /// Device-seconds aged per virtual second.  Per-tick drift accumulates as
  /// a random walk across ticks (sigma ~ sqrt(ticks) x per-tick sigma), so
  /// even unit scale degrades the default model past the floor within a few
  /// virtual seconds; the sqrt-log retention law makes the knob logarithmic
  /// in effect — tuned empirically so the baseline run decays through the
  /// floor around mid-run.
  double drift_time_scale = 1.0;
  double accuracy_floor = 0.88;      ///< SLO accuracy floor
  std::size_t accuracy_window = 256; ///< sliding-window capacity
  std::size_t floor_min_samples = 64;///< evidence before the floor is judged
  double max_queue_wait_s = 0.25;    ///< admission threshold on projected wait
  DegradeMode degrade = DegradeMode::kServeDegraded;
  double degraded_latency_factor = 2.0;
  // Recalibration cost model (per CAM word / crossbar cell reprogrammed).
  double cam_write_time_per_word_s = 2e-6;
  double cam_write_energy_per_cell_j = 2e-12;
  double xbar_write_time_per_cell_s = 100e-9;
  double xbar_write_energy_per_cell_j = 1e-12;
  /// Encoder cells are repaired when they drift past this fraction of the
  /// conductance range (well above the program-verify tolerance, so repairs
  /// only touch genuinely drifted cells).
  double repair_threshold_fraction = 0.02;
  double spare_reprogram_s = 0.2;    ///< background reprogram of the vacated array
  std::uint64_t seed = 1;
};

/// One control-tick sample of the accuracy / throughput trajectories.
struct TrajectoryPoint {
  double t = 0.0;           ///< virtual time at the end of the tick, s
  double accuracy = 1.0;    ///< sliding-window accuracy
  double qps = 0.0;         ///< served requests / s over the tick
  std::size_t votes = 1;    ///< majority-vote count in force
  double device_age = 0.0;  ///< accumulated device-seconds
};

struct ServingReport {
  std::string policy;
  std::size_t arrivals = 0;
  std::size_t served = 0;
  std::size_t degraded = 0;        ///< served during a recalibration window
  std::size_t shed_admission = 0;  ///< refused: projected wait too long
  std::size_t shed_recal = 0;      ///< refused: recalibration + kShed
  std::size_t recal_events = 0;
  std::size_t spare_swaps = 0;
  std::size_t cam_cells_rewritten = 0;
  std::size_t xbar_cells_repaired = 0;
  double duration_s = 0.0;       ///< virtual time of the last completion
  double sustained_qps = 0.0;    ///< served / duration
  LatencyStats latency;
  double serve_energy_j = 0.0;
  double recal_energy_j = 0.0;
  double overall_accuracy = 0.0;      ///< correct / served
  double min_window_accuracy = 1.0;   ///< worst tick (with enough evidence)
  double final_window_accuracy = 1.0;
  std::size_t floor_violation_ticks = 0;
  bool floor_held = true;  ///< no evidenced tick below accuracy_floor
  std::vector<TrajectoryPoint> trajectory;  ///< one point per control tick
  /// FNV-1a over predictions, latencies and trajectory — cheap bit-identity
  /// comparison across thread counts.
  std::uint64_t checksum = 0;
};

class ServingLoop {
 public:
  explicit ServingLoop(ServingConfig config);

  /// Run the sustained-load simulation of `model` under `policy`.  Mutates
  /// the model (aging, recalibration); callers wanting comparable policy
  /// runs construct a fresh model per run from the same seed.
  ServingReport run(ServedHdcModel& model, RecalibrationPolicy& policy) const;

 private:
  ServingConfig config_;
};

}  // namespace xlds::serve
