#include "serve/model.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/error.hpp"

namespace xlds::serve {

namespace {

constexpr std::uint64_t kDatasetSalt = 0x9E3779B97F4A7C15ull;

hdc::HdcModel make_trained(const ServedModelConfig& config, const workload::Dataset& ds,
                           Rng& rng) {
  hdc::HdcModel m(config.model, ds.dim, ds.n_classes, rng);
  m.train(ds.train_x, ds.train_y);
  return m;
}

hdc::CamInferenceConfig make_infer_config(const ServedModelConfig& config) {
  hdc::CamInferenceConfig ic;
  ic.subarray = config.subarray;
  ic.analog_encode = config.analog_encode;
  ic.encoder_tiles = config.encoder_tiles;
  return ic;
}

}  // namespace

ServedHdcModel::ServedHdcModel(const ServedModelConfig& config, std::uint64_t seed)
    : config_(config),
      rng_(seed),
      ds_(workload::make_gaussian_clusters(config.data, seed ^ kDatasetSalt)),
      model_(make_trained(config_, ds_, rng_)),
      infer_(model_, make_infer_config(config_), rng_) {
  if (infer_.analog_encode()) {
    const xbar::TiledCrossbar& tiles = infer_.encoder_tiles();
    golden_.reserve(tiles.tile_count());
    for (std::size_t i = 0; i < tiles.tile_count(); ++i) {
      const xbar::Crossbar& t = tiles.tile(i);
      MatrixD g(t.rows(), t.cols(), 0.0);
      for (std::size_t r = 0; r < t.rows(); ++r)
        for (std::size_t c = 0; c < t.cols(); ++c) g(r, c) = t.conductance(r, c);
      golden_.push_back(std::move(g));
    }
  }
  // Measured once: both consume the instance RNGs (the search drives the CAM
  // sense amps), and the serving run's draw sequence must not depend on when
  // a caller happens to ask for a cost.
  search_cost_ = infer_.search_cost();
  encode_cost_ = infer_.encode_cost();
}

std::vector<std::size_t> ServedHdcModel::classify_batch(const std::vector<std::size_t>& ids,
                                                        std::size_t votes) const {
  if (ids.empty()) return {};
  MatrixD xs(ids.size(), ds_.dim, 0.0);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    XLDS_REQUIRE_MSG(ids[i] < ds_.test_x.size(), "request id out of pool");
    std::copy(ds_.test_x[ids[i]].begin(), ds_.test_x[ids[i]].end(), xs.row_data(i));
  }
  const std::vector<std::vector<int>> digits = infer_.query_digits_batch(xs);
  std::vector<std::size_t> preds(ids.size());
  for (std::size_t i = 0; i < ids.size(); ++i)
    preds[i] = infer_.classify_digits(digits[i], votes);
  return preds;
}

void ServedHdcModel::age(double dt) {
  if (dt <= 0.0) return;
  device_age_ += dt;
  infer_.age(dt);
}

std::size_t ServedHdcModel::refresh_cam() { return infer_.rewrite_class_words(); }

std::size_t ServedHdcModel::repair_encoder(double threshold_fraction) {
  if (!infer_.analog_encode()) return 0;
  xbar::TiledCrossbar& tiles = infer_.encoder_tiles();
  const device::RramParams& p = config_.encoder_tiles.tile.rram;
  const double threshold = threshold_fraction * (p.g_max - p.g_min);
  std::size_t repaired = 0;
  for (std::size_t i = 0; i < tiles.tile_count(); ++i) {
    xbar::Crossbar& t = tiles.tile(i);
    const MatrixD& g0 = golden_[i];
    std::vector<xbar::CellDelta> patch;
    for (std::size_t r = 0; r < t.rows(); ++r)
      for (std::size_t c = 0; c < t.cols(); ++c)
        if (std::abs(t.conductance(r, c) - g0(r, c)) > threshold)
          patch.push_back(xbar::CellDelta{r, c, g0(r, c)});
    // Chunks of 8 stay within the incremental nodal-update batch cap (bw/8,
    // bw >= 64 for every geometry this config produces), so a light repair
    // costs rank-1 sweeps, and only a heavy one triggers refactorization.
    constexpr std::size_t kChunk = 8;
    for (std::size_t off = 0; off < patch.size(); off += kChunk) {
      const std::size_t m = std::min(kChunk, patch.size() - off);
      t.program_cells(std::vector<xbar::CellDelta>(patch.begin() + static_cast<std::ptrdiff_t>(off),
                                                   patch.begin() + static_cast<std::ptrdiff_t>(off + m)));
    }
    repaired += patch.size();
  }
  return repaired;
}

double ServedHdcModel::pool_accuracy(std::size_t votes) const {
  std::vector<std::size_t> ids(pool_size());
  std::iota(ids.begin(), ids.end(), std::size_t{0});
  const std::vector<std::size_t> preds = classify_batch(ids, votes);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < ids.size(); ++i)
    if (preds[i] == ds_.test_y[i]) ++correct;
  return static_cast<double>(correct) / static_cast<double>(ids.size());
}

}  // namespace xlds::serve
