// The served model: a trained HDC classifier mapped onto FeFET CAM
// subarrays (associative search) and, by default, RRAM crossbar tiles (the
// analog random-projection encode) — with the handles a serving loop needs
// to keep it alive under its own device physics:
//
//   * age(dt)            — FeFET retention drift in the CAM words plus RRAM
//                          conductance relaxation in the encoder tiles.
//   * refresh_cam()      — rewrite every class hypervector (programming
//                          resets retention drift).
//   * repair_encoder()   — diff each tile's conductances against the golden
//                          programming captured at construction and patch
//                          only the drifted cells via Crossbar::program_cells,
//                          which the cached nodal factorization absorbs as
//                          rank-1 up/down-dates instead of refactorizing.
//   * classify_batch()   — batched analog encode through the tile fleet
//                          (bit-identical at any thread count), then
//                          per-request CAM searches in request order (the
//                          sense-noise RNG must advance sequentially).
//
// Search and encode costs are measured once at construction — search_cost()
// consumes the CAM sense RNG, so sampling it lazily would perturb the
// deterministic draw sequence of the serving run.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "cam/fefet_cam.hpp"
#include "hdc/cam_inference.hpp"
#include "hdc/model.hpp"
#include "util/matrix.hpp"
#include "util/rng.hpp"
#include "workload/dataset.hpp"
#include "xbar/tiled.hpp"

namespace xlds::serve {

struct ServedModelConfig {
  workload::GaussianClustersSpec data;  ///< synthetic request distribution
  hdc::HdcConfig model;                 ///< classifier hyper-parameters
  cam::FeFetCamConfig subarray;         ///< per-segment CAM geometry
  bool analog_encode = true;            ///< encode on RRAM crossbar tiles
  xbar::TiledConfig encoder_tiles;      ///< tile geometry/non-idealities

  ServedModelConfig() {
    // Resilience-evaluator scale: small enough that a sustained-load run
    // takes milliseconds, separable enough that drift-induced degradation
    // is the dominant error source.
    data.n_classes = 8;
    data.dim = 32;
    data.train_per_class = 30;
    data.test_per_class = 16;
    // Separable enough that the *healthy* model sits comfortably above any
    // reasonable accuracy floor; drift, not Bayes error, drives violations.
    data.separation = 8.0;
    model.hv_dim = 256;
    model.element_bits = 3;
    model.retrain_epochs = 2;
    subarray.cols = 64;
    // Nodal IR drop with the cached direct solver: repair patches exercise
    // the incremental update_cells path, full reprograms the refactorize.
    encoder_tiles.tile.ir_drop = xbar::IrDropMode::kNodal;
  }
};

class ServedHdcModel {
 public:
  ServedHdcModel(const ServedModelConfig& config, std::uint64_t seed);

  /// Number of distinct requests in the pool (the dataset's test split).
  std::size_t pool_size() const noexcept { return ds_.test_x.size(); }
  std::size_t label(std::size_t id) const { return ds_.test_y[id]; }

  /// Classify a batch of pool ids with `votes` CAM searches per request.
  /// Encode is batched (and internally parallel); searches run in request
  /// order.  Results are bit-identical at any thread count.
  std::vector<std::size_t> classify_batch(const std::vector<std::size_t>& ids,
                                          std::size_t votes) const;

  /// Apply `dt` device-seconds of aging to CAM words and encoder tiles.
  void age(double dt);
  double device_age() const noexcept { return device_age_; }

  /// Rewrite every class hypervector into the CAM; returns cells written.
  std::size_t refresh_cam();

  /// Patch encoder-tile cells whose conductance drifted more than
  /// `threshold_fraction` of the device range away from the golden
  /// programming, in chunks small enough for the incremental nodal-update
  /// policy.  Returns cells re-programmed (0 without the analog encoder).
  std::size_t repair_encoder(double threshold_fraction);

  /// Offline accuracy over the whole pool (diagnostics/tests; consumes the
  /// CAM sense RNG like any other query stream).
  double pool_accuracy(std::size_t votes = 1) const;

  cam::SearchCost search_cost() const noexcept { return search_cost_; }
  xbar::MvmCost encode_cost() const noexcept { return encode_cost_; }
  bool analog_encode() const noexcept { return infer_.analog_encode(); }
  std::size_t cam_word_count() const noexcept { return model_.n_classes(); }
  const hdc::HdcCamInference& inference() const noexcept { return infer_; }

 private:
  ServedModelConfig config_;
  Rng rng_;
  workload::Dataset ds_;
  hdc::HdcModel model_;
  hdc::HdcCamInference infer_;
  std::vector<MatrixD> golden_;  ///< per-tile conductances at construction
  double device_age_ = 0.0;
  cam::SearchCost search_cost_;
  xbar::MvmCost encode_cost_;
};

}  // namespace xlds::serve
