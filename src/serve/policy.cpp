#include "serve/policy.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace xlds::serve {

namespace {

class NoRecalibration final : public RecalibrationPolicy {
 public:
  const char* name() const noexcept override { return "none"; }
  PolicyAction on_check(const PolicyContext&) override { return {}; }
};

class ScheduledRefresh final : public RecalibrationPolicy {
 public:
  explicit ScheduledRefresh(double period_s) : period_(period_s) {
    XLDS_REQUIRE_MSG(period_s > 0.0, "refresh period must be positive");
  }
  const char* name() const noexcept override { return "scheduled"; }
  PolicyAction on_check(const PolicyContext& ctx) override {
    if (ctx.recal_in_flight || ctx.now < next_) return {};
    next_ = ctx.now + period_;
    return {ActionKind::kRefresh};
  }

 private:
  double period_;
  double next_ = 0.0;  ///< first tick refreshes immediately-after-start
};

class AccuracyWatchdog final : public RecalibrationPolicy {
 public:
  AccuracyWatchdog(double floor, std::size_t min_samples, double initial_backoff_s,
                   double max_backoff_s)
      : floor_(floor),
        min_samples_(min_samples),
        initial_backoff_(initial_backoff_s),
        max_backoff_(max_backoff_s),
        backoff_(initial_backoff_s) {}
  const char* name() const noexcept override { return "watchdog"; }
  PolicyAction on_check(const PolicyContext& ctx) override {
    if (ctx.window_samples < min_samples_) return {};
    if (ctx.window_accuracy >= floor_) {
      // Healthy again: re-arm promptly so a fresh degradation episode is
      // answered with the initial backoff, not a stale hold-off.
      backoff_ = initial_backoff_;
      armed_at_ = 0.0;
      return {};
    }
    if (ctx.recal_in_flight || ctx.now < armed_at_) return {};
    // Still below the floor: fire, then wait out a growing backoff so a
    // refresh whose effect has not drained through the window yet does not
    // trigger a reprogram storm.
    armed_at_ = ctx.now + backoff_;
    backoff_ = std::min(2.0 * backoff_, max_backoff_);
    return {ActionKind::kRefresh};
  }

 private:
  double floor_;
  std::size_t min_samples_;
  double initial_backoff_;
  double max_backoff_;
  double backoff_;
  double armed_at_ = 0.0;
};

class SpareSwap final : public RecalibrationPolicy {
 public:
  SpareSwap(double floor, std::size_t min_samples, double initial_backoff_s,
            double max_backoff_s)
      : watchdog_(floor, min_samples, initial_backoff_s, max_backoff_s) {}
  const char* name() const noexcept override { return "spare-swap"; }
  PolicyAction on_check(const PolicyContext& ctx) override {
    PolicyAction act = watchdog_.on_check(ctx);
    if (act.kind == ActionKind::kRefresh && ctx.spare_ready) act.kind = ActionKind::kSwapToSpare;
    return act;
  }

 private:
  AccuracyWatchdog watchdog_;  ///< same trigger + backoff state machine
};

class RequeryEscalation final : public RecalibrationPolicy {
 public:
  RequeryEscalation(double floor, std::size_t min_samples, std::size_t max_votes,
                    double recover_margin)
      : floor_(floor),
        min_samples_(min_samples),
        max_votes_(max_votes | 1u),  // keep the cap odd
        margin_(recover_margin) {}
  const char* name() const noexcept override { return "re-query"; }
  PolicyAction on_check(const PolicyContext& ctx) override {
    if (ctx.window_samples < min_samples_) return {};
    if (ctx.window_accuracy < floor_ && ctx.votes < max_votes_)
      return {ActionKind::kSetVotes, std::min(ctx.votes + 2, max_votes_)};
    if (ctx.window_accuracy >= floor_ + margin_ && ctx.votes > 1)
      return {ActionKind::kSetVotes, ctx.votes - 2};
    return {};
  }

 private:
  double floor_;
  std::size_t min_samples_;
  std::size_t max_votes_;
  double margin_;
};

}  // namespace

std::unique_ptr<RecalibrationPolicy> make_no_recalibration() {
  return std::make_unique<NoRecalibration>();
}

std::unique_ptr<RecalibrationPolicy> make_scheduled_refresh(double period_s) {
  return std::make_unique<ScheduledRefresh>(period_s);
}

std::unique_ptr<RecalibrationPolicy> make_accuracy_watchdog(double floor,
                                                            std::size_t min_samples,
                                                            double initial_backoff_s,
                                                            double max_backoff_s) {
  return std::make_unique<AccuracyWatchdog>(floor, min_samples, initial_backoff_s,
                                            max_backoff_s);
}

std::unique_ptr<RecalibrationPolicy> make_spare_swap(double floor, std::size_t min_samples,
                                                     double initial_backoff_s,
                                                     double max_backoff_s) {
  return std::make_unique<SpareSwap>(floor, min_samples, initial_backoff_s, max_backoff_s);
}

std::unique_ptr<RecalibrationPolicy> make_requery_escalation(double floor,
                                                             std::size_t min_samples,
                                                             std::size_t max_votes,
                                                             double recover_margin) {
  return std::make_unique<RequeryEscalation>(floor, min_samples, max_votes, recover_margin);
}

}  // namespace xlds::serve
