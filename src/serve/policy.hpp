// Pluggable recalibration policies for the closed-loop serving simulator.
//
// The serving loop pauses every check_interval requests and asks the policy
// what to do, handing it exactly the signals an online controller could
// observe: virtual time, the sliding-window accuracy estimate, how much
// device aging has accumulated, and whether a recalibration or spare
// reprogram is already in flight.  The policy answers with at most one
// action; the loop owns all mechanism (what a refresh costs, how requests
// are treated while it runs — see loop.hpp's degradation ladder).
//
// The four strategies ROADMAP item 5 calls for:
//   * none        — baseline; drifts until the accuracy floor breaks.
//   * scheduled   — refresh every fixed virtual-time period, load-blind.
//   * watchdog    — refresh when the window accuracy crosses the floor,
//                   with exponential backoff so a refresh that did not help
//                   (e.g. the window still draining stale errors) does not
//                   trigger a reprogram storm.
//   * spare-swap  — same trigger, but flips to a freshly-programmed spare
//                   subarray (zero service interruption, double the area);
//                   the vacated array reprograms in the background and
//                   becomes the next spare.
//   * re-query    — no reprogramming at all: escalate the majority-vote
//                   count when accuracy sags, de-escalate when it recovers
//                   (bounded retry — helps against sensing noise, not
//                   against persistent drift; the bench shows exactly that).
#pragma once

#include <cstddef>
#include <memory>

namespace xlds::serve {

/// Observable state handed to a policy at each control tick.
struct PolicyContext {
  double now = 0.0;               ///< virtual time, s
  double window_accuracy = 1.0;   ///< sliding-window accuracy estimate
  std::size_t window_samples = 0; ///< requests inside the window
  double device_age = 0.0;        ///< accumulated device-seconds of aging
  bool recal_in_flight = false;   ///< a refresh window is still open
  bool spare_ready = false;       ///< a programmed spare subarray is standing by
  std::size_t votes = 1;          ///< current majority-vote count per query
};

enum class ActionKind {
  kNone,         ///< keep serving
  kRefresh,      ///< reprogram the active arrays in place
  kSwapToSpare,  ///< remap to the standby subarray (if spare_ready)
  kSetVotes,     ///< change the per-query majority-vote count
};

struct PolicyAction {
  ActionKind kind = ActionKind::kNone;
  std::size_t votes = 1;  ///< target vote count (kSetVotes only; odd)
};

class RecalibrationPolicy {
 public:
  virtual ~RecalibrationPolicy() = default;
  virtual const char* name() const noexcept = 0;
  /// Called once per control tick, in virtual-time order.
  virtual PolicyAction on_check(const PolicyContext& ctx) = 0;
};

/// Baseline: never recalibrates.
std::unique_ptr<RecalibrationPolicy> make_no_recalibration();

/// Refresh every `period_s` of virtual time, regardless of accuracy.
std::unique_ptr<RecalibrationPolicy> make_scheduled_refresh(double period_s);

/// Refresh when window accuracy < `floor` with at least `min_samples` of
/// evidence; consecutive triggers are separated by an exponentially growing
/// backoff in [initial_backoff_s, max_backoff_s] that resets once the
/// window recovers above the floor.
std::unique_ptr<RecalibrationPolicy> make_accuracy_watchdog(double floor,
                                                            std::size_t min_samples,
                                                            double initial_backoff_s,
                                                            double max_backoff_s);

/// Watchdog trigger, spare-subarray remap action (falls back to an in-place
/// refresh when no spare is ready — a swap must never be *worse* than the
/// plain watchdog).
std::unique_ptr<RecalibrationPolicy> make_spare_swap(double floor, std::size_t min_samples,
                                                     double initial_backoff_s,
                                                     double max_backoff_s);

/// Bounded majority re-query escalation: +2 votes when accuracy < floor,
/// capped at `max_votes`; -2 votes when accuracy clears floor + margin.
std::unique_ptr<RecalibrationPolicy> make_requery_escalation(double floor,
                                                             std::size_t min_samples,
                                                             std::size_t max_votes,
                                                             double recover_margin = 0.03);

}  // namespace xlds::serve
