#include "serve/loop.hpp"

#include <algorithm>
#include <cmath>

#include "core/counters.hpp"
#include "kernels/sampler.hpp"
#include "util/error.hpp"

namespace xlds::serve {

namespace {

constexpr std::uint64_t kArrivalStream = 0x5E57A12;
constexpr std::uint64_t kRequestStream = 0x5E57A13;

// FNV-1a accumulator over raw value bytes: a cheap, order-sensitive digest
// for the bit-identity acceptance checks (1-vs-8-thread runs must match).
struct Fnv {
  std::uint64_t h = 1469598103934665603ull;
  void mix_bytes(const void* p, std::size_t n) {
    const unsigned char* b = static_cast<const unsigned char*>(p);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= b[i];
      h *= 1099511628211ull;
    }
  }
  void mix(double v) { mix_bytes(&v, sizeof v); }
  void mix(std::uint64_t v) { mix_bytes(&v, sizeof v); }
};

}  // namespace

ServingLoop::ServingLoop(ServingConfig config) : config_(config) {
  XLDS_REQUIRE_MSG(config_.total_requests > 0, "need at least one request");
  XLDS_REQUIRE_MSG(config_.check_interval > 0, "check interval must be positive");
  XLDS_REQUIRE_MSG(config_.drift_time_scale >= 0.0, "drift scale must be non-negative");
}

ServingReport ServingLoop::run(ServedHdcModel& model, RecalibrationPolicy& policy) const {
  const ServingConfig& cfg = config_;
  ServingReport rep;
  rep.policy = policy.name();
  rep.arrivals = cfg.total_requests;

  Rng root(cfg.seed);
  Rng arrival_rng = root.fork(kArrivalStream);
  Rng request_rng = root.fork(kRequestStream);

  // Arrival process: batched exponential gaps, prefix-summed to timestamps.
  const double unit_service =
      cfg.base_service_s + model.encode_cost().latency + model.search_cost().latency;
  const double lambda =
      cfg.arrival_rate > 0.0 ? cfg.arrival_rate : cfg.target_utilisation / unit_service;
  const std::size_t n = cfg.total_requests;
  std::vector<double> arrival(n);
  kernels::fill_exponential(arrival_rng, arrival.data(), n, lambda);
  for (std::size_t i = 1; i < n; ++i) arrival[i] += arrival[i - 1];

  XLDS_REQUIRE_MSG(model.pool_size() > 0, "empty request pool");
  std::vector<std::size_t> ids(n);
  for (std::size_t& id : ids)
    id = request_rng.uniform_u32(static_cast<std::uint32_t>(model.pool_size()));

  SlidingAccuracy window(cfg.accuracy_window);
  LatencyRecorder latency;
  Fnv hash;

  double server_free_at = 0.0;
  double aged_to = 0.0;    ///< virtual time the devices are aged up to
  double recal_end = 0.0;  ///< recalibration window close time
  bool spare_ready = true;  ///< the spare subarray starts programmed
  bool spare_pending = false;
  double spare_ready_at = 0.0;
  std::size_t votes = 1;
  std::size_t correct_total = 0;
  double prev_tick_close = 0.0;

  const auto apply_refresh = [&](double at) {
    const std::size_t cam_cells = model.refresh_cam();
    const std::size_t xbar_cells = model.repair_encoder(cfg.repair_threshold_fraction);
    rep.cam_cells_rewritten += cam_cells;
    rep.xbar_cells_repaired += xbar_cells;
    rep.recal_energy_j += cfg.cam_write_energy_per_cell_j * static_cast<double>(cam_cells) +
                          cfg.xbar_write_energy_per_cell_j * static_cast<double>(xbar_cells);
    core::Profiler::count_recalibration(cam_cells + xbar_cells);
    const double recal_latency =
        cfg.cam_write_time_per_word_s * static_cast<double>(model.cam_word_count()) +
        cfg.xbar_write_time_per_cell_s * static_cast<double>(xbar_cells);
    return at + recal_latency;
  };

  std::vector<std::size_t> admitted_ids;
  std::vector<unsigned char> admitted_degraded;

  for (std::size_t begin = 0; begin < n; begin += cfg.check_interval) {
    const std::size_t end = std::min(n, begin + cfg.check_interval);
    const double tick_t = arrival[begin];

    // Devices age by the virtual time elapsed since the last tick, at the
    // accelerated drift rate.
    if (tick_t > aged_to) {
      model.age((tick_t - aged_to) * cfg.drift_time_scale);
      aged_to = tick_t;
    }
    if (spare_pending && tick_t >= spare_ready_at) {
      spare_pending = false;
      spare_ready = true;
    }

    // Control tick: hand the policy what an online controller can observe.
    PolicyContext ctx;
    ctx.now = tick_t;
    ctx.window_accuracy = window.value();
    ctx.window_samples = window.samples();
    ctx.device_age = model.device_age();
    ctx.recal_in_flight = tick_t < recal_end;
    ctx.spare_ready = spare_ready;
    ctx.votes = votes;
    const PolicyAction act = policy.on_check(ctx);
    switch (act.kind) {
      case ActionKind::kNone: break;
      case ActionKind::kRefresh:
        if (!ctx.recal_in_flight) {
          recal_end = apply_refresh(tick_t);
          ++rep.recal_events;
        }
        break;
      case ActionKind::kSwapToSpare:
        if (spare_ready) {
          // The spare was programmed in the background: the swap itself is
          // instantaneous (no recalibration window), and the vacated array
          // starts reprogramming to become the next spare.
          (void)apply_refresh(tick_t);
          ++rep.spare_swaps;
          spare_ready = false;
          spare_pending = true;
          spare_ready_at = tick_t + cfg.spare_reprogram_s;
        }
        break;
      case ActionKind::kSetVotes: votes = std::max<std::size_t>(1, act.votes | 1u); break;
    }

    // Admission + queue bookkeeping, strictly in arrival order.
    admitted_ids.clear();
    admitted_degraded.clear();
    for (std::size_t r = begin; r < end; ++r) {
      const bool in_recal = arrival[r] < recal_end;
      if (in_recal && cfg.degrade == DegradeMode::kShed) {
        ++rep.shed_recal;
        core::Profiler::count_request_shed();
        continue;
      }
      double start = std::max(arrival[r], server_free_at);
      // Admission judges the *queue-induced* wait; the kBlock hold below is
      // an accepted SLO latency cost, not an overload signal.
      if (start - arrival[r] > cfg.max_queue_wait_s) {
        ++rep.shed_admission;
        core::Profiler::count_request_shed();
        continue;
      }
      if (in_recal && cfg.degrade == DegradeMode::kBlock) start = std::max(start, recal_end);
      const bool degraded = in_recal && cfg.degrade == DegradeMode::kServeDegraded;
      double service = cfg.base_service_s + model.encode_cost().latency +
                       static_cast<double>(votes) * model.search_cost().latency;
      if (degraded) service *= cfg.degraded_latency_factor;
      server_free_at = start + service;
      const double sojourn = server_free_at - arrival[r];
      latency.add(sojourn);
      hash.mix(sojourn);
      rep.serve_energy_j += model.encode_cost().energy +
                            static_cast<double>(votes) * model.search_cost().energy;
      rep.duration_s = std::max(rep.duration_s, server_free_at);
      admitted_ids.push_back(ids[r]);
      admitted_degraded.push_back(degraded ? 1 : 0);
    }

    // Serve the admitted slice: batched tile-fleet encode, in-order searches.
    const std::vector<std::size_t> preds = model.classify_batch(admitted_ids, votes);
    for (std::size_t k = 0; k < preds.size(); ++k) {
      const bool correct = preds[k] == model.label(admitted_ids[k]);
      window.add(correct);
      if (correct) ++correct_total;
      ++rep.served;
      if (admitted_degraded[k] != 0) {
        ++rep.degraded;
        core::Profiler::count_request_degraded();
      }
      core::Profiler::count_request_served();
      hash.mix(static_cast<std::uint64_t>(preds[k]));
    }

    // Close the tick: trajectory sample + the accuracy-floor record.
    const double tick_close = end < n ? arrival[end] : std::max(rep.duration_s, arrival[n - 1]);
    TrajectoryPoint pt;
    pt.t = tick_close;
    pt.accuracy = window.value();
    pt.qps = static_cast<double>(preds.size()) / (tick_close - prev_tick_close);
    pt.votes = votes;
    pt.device_age = model.device_age();
    rep.trajectory.push_back(pt);
    prev_tick_close = tick_close;
    if (window.samples() >= cfg.floor_min_samples) {
      rep.min_window_accuracy = std::min(rep.min_window_accuracy, pt.accuracy);
      if (pt.accuracy < cfg.accuracy_floor) {
        ++rep.floor_violation_ticks;
        rep.floor_held = false;
      }
    }
  }

  rep.final_window_accuracy = window.value();
  rep.overall_accuracy =
      rep.served > 0 ? static_cast<double>(correct_total) / static_cast<double>(rep.served) : 0.0;
  rep.sustained_qps = rep.duration_s > 0.0 ? static_cast<double>(rep.served) / rep.duration_s : 0.0;
  rep.latency = latency.stats();
  for (const TrajectoryPoint& pt : rep.trajectory) {
    hash.mix(pt.t);
    hash.mix(pt.accuracy);
    hash.mix(pt.qps);
    hash.mix(static_cast<std::uint64_t>(pt.votes));
  }
  rep.checksum = hash.h;
  return rep;
}

}  // namespace xlds::serve
