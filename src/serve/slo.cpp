#include "serve/slo.hpp"

#include <algorithm>

#include "util/stats.hpp"

namespace xlds::serve {

LatencyStats LatencyRecorder::stats() const {
  LatencyStats s;
  s.samples = samples_.size();
  if (samples_.empty()) return s;
  s.p50 = percentile(samples_, 50.0);
  s.p99 = percentile(samples_, 99.0);
  double sum = 0.0;
  for (double v : samples_) {
    sum += v;
    s.max = std::max(s.max, v);
  }
  s.mean = sum / static_cast<double>(samples_.size());
  return s;
}

}  // namespace xlds::serve
