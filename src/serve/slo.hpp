// SLO accounting for the closed-loop serving simulator: per-request latency
// percentiles and the sliding accuracy window the recalibration policies
// watch.  Everything here is plain sequential bookkeeping — the serving loop
// owns one instance of each and updates them in request order, so reports
// are bit-identical regardless of how the underlying readouts parallelise.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace xlds::serve {

struct LatencyStats {
  double p50 = 0.0;   ///< s
  double p99 = 0.0;   ///< s
  double mean = 0.0;  ///< s
  double max = 0.0;   ///< s
  std::size_t samples = 0;
};

/// Collects per-request sojourn times (queue wait + service) and summarises
/// them as the percentile SLO figures.
class LatencyRecorder {
 public:
  void add(double seconds) { samples_.push_back(seconds); }
  std::size_t samples() const noexcept { return samples_.size(); }
  LatencyStats stats() const;

 private:
  std::vector<double> samples_;
};

/// Fixed-capacity ring of per-request correctness bits: the accuracy
/// estimate a watchdog policy can actually observe online (ground-truth
/// labels stand in for the shadow-scoring a production system would run).
class SlidingAccuracy {
 public:
  explicit SlidingAccuracy(std::size_t window) : bits_(window, 0) {}

  void add(bool correct) {
    const std::uint8_t bit = correct ? 1 : 0;
    if (count_ >= bits_.size()) correct_ -= bits_[next_];
    bits_[next_] = bit;
    correct_ += bit;
    next_ = (next_ + 1) % bits_.size();
    if (count_ < bits_.size()) ++count_;
    ++total_;
  }

  /// Requests currently inside the window (<= capacity).
  std::size_t samples() const noexcept { return count_; }
  /// Requests ever added.
  std::size_t total() const noexcept { return total_; }
  /// Fraction correct over the window (1.0 while empty: no evidence of
  /// trouble yet, so policies gated on min-samples see a healthy default).
  double value() const noexcept {
    return count_ == 0 ? 1.0 : static_cast<double>(correct_) / static_cast<double>(count_);
  }

 private:
  std::vector<std::uint8_t> bits_;
  std::size_t next_ = 0;
  std::size_t count_ = 0;
  std::size_t correct_ = 0;
  std::size_t total_ = 0;
};

}  // namespace xlds::serve
