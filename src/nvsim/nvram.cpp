#include "nvsim/nvram.hpp"

#include <cmath>

#include "circuit/senseamp.hpp"
#include "circuit/wire.hpp"
#include "util/error.hpp"

namespace xlds::nvsim {

namespace {

// Peripheral sizing constants (NVSim-style defaults).
constexpr double kDecoderStageDelayFo4 = 3.0;   // FO4s per decoder stage
constexpr double kSenseAmpAreaF2 = 800.0;       // per column pair
constexpr double kDecoderAreaF2PerRow = 60.0;   // row drivers + predecode
constexpr double kHtreeAreaOverhead = 0.25;     // fraction of subarray area
constexpr double kLeakagePerSubarrayW = 2.0e-6; // decoder + SA leakage

double fo4_delay(const device::TechNode& node) {
  // Classic approximation: FO4 ~ 0.5 ps per nm of feature size.
  return 0.5e-12 * (node.feature_m / 1e-9);
}

}  // namespace

NvRamModel::NvRamModel(NvRamConfig config) : config_(config) {
  XLDS_REQUIRE(config_.capacity_bits > 0);
  XLDS_REQUIRE(config_.subarray_rows >= 8 && config_.subarray_cols >= 8);
  const auto& t = config_.resolved_traits();
  XLDS_REQUIRE_MSG(config_.bits_per_cell >= 1 && config_.bits_per_cell <= t.max_bits_per_cell,
                   device::to_string(config_.device)
                       << " supports at most " << t.max_bits_per_cell << " bits/cell, asked for "
                       << config_.bits_per_cell);
  XLDS_REQUIRE(config_.io_width >= 1);
  XLDS_REQUIRE(config_.layers_3d >= 1 && config_.layers_3d <= 16);
  if (config_.layers_3d > 1) {
    const bool beol = config_.device == device::DeviceKind::kRram ||
                      config_.device == device::DeviceKind::kPcm;
    XLDS_REQUIRE_MSG(beol, device::to_string(config_.device)
                               << " is not BEOL-stackable; only RRAM/PCM support monolithic 3D");
  }
}

std::size_t NvRamModel::subarray_count() const {
  const std::size_t bits_per_subarray =
      config_.subarray_rows * config_.subarray_cols * static_cast<std::size_t>(config_.bits_per_cell);
  return (config_.capacity_bits + bits_per_subarray - 1) / bits_per_subarray;
}

ArrayFom NvRamModel::subarray_fom() const {
  const auto& node = device::tech_node(config_.tech);
  const auto& dev = config_.resolved_traits();

  // --- geometry -------------------------------------------------------------
  const double cell_area = dev.cell_area_f2 * node.feature_m * node.feature_m;
  const double cell_edge = std::sqrt(dev.cell_area_f2) * node.feature_m;
  const double array_area =
      cell_area * static_cast<double>(config_.subarray_rows * config_.subarray_cols);
  const double periph_area =
      (kSenseAmpAreaF2 * static_cast<double>(config_.subarray_cols) / 2.0 +
       kDecoderAreaF2PerRow * static_cast<double>(config_.subarray_rows)) *
      node.feature_m * node.feature_m;

  // --- wires ------------------------------------------------------------
  const circuit::WireModel wl_wire(node, cell_edge / node.feature_m);
  const circuit::WireSegment wordline = wl_wire.span(config_.subarray_cols);
  const circuit::WireSegment bitline = wl_wire.span(config_.subarray_rows);

  // Wordline delay: driver + distributed RC, loaded with one gate per column.
  const double wl_cap =
      wordline.capacitance +
      static_cast<double>(config_.subarray_cols) * node.tx_gate_cap(node.min_tx_width_um);
  const double wl_delay = 0.5 * wordline.resistance * wl_cap + 2.2 * 1.0e3 * wl_cap;

  // Bitline development: the accessed cell (dis)charges the bitline through
  // its on-resistance to the sense threshold (10 % swing for SA sensing).
  const double bl_cap = bitline.capacitance + static_cast<double>(config_.subarray_rows) *
                                                  node.tx_drain_cap(node.min_tx_width_um);
  const double bl_delay = (dev.on_resistance + bitline.resistance / 2.0) * bl_cap *
                          std::log(1.0 / 0.9);

  // Decoder: log2(rows) stages of FO4-ish logic.
  const double decoder_delay =
      kDecoderStageDelayFo4 * fo4_delay(node) * std::ceil(std::log2(config_.subarray_rows));

  const circuit::SenseAmp sa(circuit::SenseAmpParams{});

  ArrayFom fom;
  fom.area_m2 = array_area + periph_area;
  fom.read_latency = decoder_delay + wl_delay + bl_delay + sa.latency() + dev.read_latency;
  fom.write_latency = decoder_delay + wl_delay + dev.write_latency;

  // Energies: switched-line CV^2 plus sensing / cell write energy.  Reads
  // sense io_width columns; writes drive io_width cells.
  const double io_cols = static_cast<double>(config_.io_width) /
                         static_cast<double>(config_.bits_per_cell);
  fom.read_energy = wl_cap * node.vdd * node.vdd +
                    io_cols * (0.1 * bl_cap * node.vdd * node.vdd + sa.energy());
  fom.write_energy = wl_cap * node.vdd * node.vdd +
                     io_cols * (bl_cap * dev.write_voltage * dev.write_voltage + dev.write_energy);
  fom.leakage_power = kLeakagePerSubarrayW;
  return fom;
}

ArrayFom NvRamModel::evaluate() const {
  ArrayFom sub = subarray_fom();
  const auto n_sub = static_cast<double>(subarray_count());
  const auto layers = static_cast<double>(config_.layers_3d);

  if (config_.layers_3d > 1) {
    // Monolithic 3D: cell layers share the footprint (peripherals stay on
    // the base layer); inter-layer vias add ~5 % RC per layer to the access.
    const double via_penalty = 1.0 + 0.05 * (layers - 1.0);
    const auto& node = device::tech_node(config_.tech);
    const auto& dev = config_.resolved_traits();
    const double cell_area = dev.cell_area_f2 * node.feature_m * node.feature_m *
                             static_cast<double>(config_.subarray_rows * config_.subarray_cols);
    sub.area_m2 -= cell_area * (1.0 - 1.0 / layers);  // stacked cells
    sub.read_latency *= via_penalty;
    sub.write_latency *= via_penalty;
    sub.read_energy *= via_penalty;
    sub.write_energy *= via_penalty;
  }

  ArrayFom total;
  total.area_m2 = sub.area_m2 * n_sub * (1.0 + kHtreeAreaOverhead);

  // H-tree: route from the edge to the centre of the farthest subarray —
  // half the die edge, at repeated-wire velocity (~100 ps/mm at these nodes).
  const double die_edge = std::sqrt(total.area_m2);
  const double htree_delay = 100e-12 * (die_edge / 2.0) / 1e-3;
  const double htree_energy =
      0.5 * die_edge * device::tech_node(config_.tech).wire_c_per_m *
      device::tech_node(config_.tech).vdd * device::tech_node(config_.tech).vdd *
      static_cast<double>(config_.io_width);

  total.read_latency = sub.read_latency + htree_delay;
  total.write_latency = sub.write_latency + htree_delay;
  total.read_energy = sub.read_energy + htree_energy;
  total.write_energy = sub.write_energy + htree_energy;
  total.leakage_power = sub.leakage_power * n_sub;
  return total;
}

}  // namespace xlds::nvsim
