// NVMExplorer lane (Sec. VI): cross-stack evaluation of an embedded NVM —
// memory performance (via the NVSim-lane model), a fault model, memory
// lifetime under a write-traffic profile, and the *application-level*
// accuracy of a DNN whose quantised weights live in the faulty memory.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/network.hpp"
#include "nvsim/nvram.hpp"
#include "util/rng.hpp"

namespace xlds::nvsim {

/// Raw-bit-error-rate model.  Two wear mechanisms compound the programming
/// floor: retention loss (grows exponentially as storage age approaches the
/// device's retention spec) and endurance wear (grows exponentially as the
/// per-cell write count approaches the endurance spec).
struct FaultModel {
  double base_ber = 1e-9;        ///< as-programmed error floor
  double retention_alpha = 12.0; ///< exponent scale: ber*e^alpha at age == retention
  double endurance_beta = 12.0;  ///< exponent scale at writes == endurance

  /// Raw BER for a cell aged `age_s` seconds with `writes` program cycles.
  double bit_error_rate(const device::DeviceTraits& dev, double age_s, double writes) const;
};

/// Write-traffic profile of the application using the memory.
struct TrafficProfile {
  double write_bytes_per_s = 1e6;
  double read_bytes_per_s = 100e6;
};

struct ExplorerReport {
  ArrayFom memory;          ///< perf/energy/area from the NVSim lane
  double lifetime_s = 0.0;  ///< time until per-cell writes hit endurance
  double read_power_w = 0.0;   ///< dynamic read power at the traffic profile
  double write_power_w = 0.0;  ///< dynamic write power at the traffic profile
};

class NvmExplorer {
 public:
  NvmExplorer(NvRamConfig memory, FaultModel faults, TrafficProfile traffic);

  const NvRamConfig& memory_config() const noexcept { return memory_; }

  /// Memory-level report: FOM + lifetime + traffic power.
  ExplorerReport report() const;

  /// BER of the stored bits at storage age `age_s` (uniform wear-levelled
  /// write count accumulated at the traffic profile's rate).
  double ber_at(double age_s) const;

  /// Application-level accuracy: quantise the network's weights to int8 as
  /// stored in this memory, flip stored bits at ber_at(age_s), evaluate, and
  /// restore the weights.  This is the NVMExplorer "DNN accuracy from memory
  /// traffic and faults" loop.
  double dnn_accuracy_at(nn::Network& net, const std::vector<std::vector<double>>& xs,
                         const std::vector<std::size_t>& ys, double age_s, Rng& rng) const;

 private:
  NvRamConfig memory_;
  FaultModel faults_;
  TrafficProfile traffic_;
};

/// Standalone utility: int8-quantise every weight, flip each stored bit with
/// probability `ber`, dequantise back.  Returns the number of flipped bits.
/// The caller restores the weights (or uses dnn_accuracy_at which does).
std::size_t inject_weight_faults(nn::Network& net, double ber, Rng& rng);

/// Fidelity-ladder adapter (DSE Monte-Carlo tier, MLP/CNN branch):
/// multiplicative accuracy factor in (0, 1] for a network whose int8 weights
/// live in memory built from `dev`, aged `age_s` seconds with `writes`
/// program cycles per cell.  Calibrated against the dnn_accuracy_at()
/// measurements: accuracy is flat until the per-weight error probability
/// approaches ~1e-3, then decays exponentially — the cheap analytic stand-in
/// when a full Monte-Carlo weight-fault run is not worth a ladder rung.
double ber_accuracy_derate(const device::DeviceTraits& dev, double age_s, double writes,
                           const FaultModel& model = {});

}  // namespace xlds::nvsim
