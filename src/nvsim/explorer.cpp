#include "nvsim/explorer.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace xlds::nvsim {

double FaultModel::bit_error_rate(const device::DeviceTraits& dev, double age_s,
                                  double writes) const {
  XLDS_REQUIRE(age_s >= 0.0 && writes >= 0.0);
  double ber = base_ber;
  if (dev.retention_s > 0.0)
    ber += base_ber * std::expm1(retention_alpha * age_s / dev.retention_s);
  if (dev.endurance_cycles > 0.0)
    ber += base_ber * std::expm1(endurance_beta * writes / dev.endurance_cycles);
  return std::min(ber, 0.5);
}

NvmExplorer::NvmExplorer(NvRamConfig memory, FaultModel faults, TrafficProfile traffic)
    : memory_(std::move(memory)), faults_(faults), traffic_(traffic) {
  XLDS_REQUIRE(traffic_.write_bytes_per_s >= 0.0 && traffic_.read_bytes_per_s >= 0.0);
}

ExplorerReport NvmExplorer::report() const {
  const NvRamModel model(memory_);
  ExplorerReport rep;
  rep.memory = model.evaluate();

  // Perfect wear-levelling: every cell sees traffic / capacity writes per
  // second; lifetime is the time to the endurance spec.
  const auto& dev = memory_.resolved_traits();
  const double capacity_bytes = static_cast<double>(memory_.capacity_bits) / 8.0;
  const double writes_per_cell_per_s =
      traffic_.write_bytes_per_s > 0.0 ? traffic_.write_bytes_per_s / capacity_bytes : 0.0;
  rep.lifetime_s = writes_per_cell_per_s > 0.0 ? dev.endurance_cycles / writes_per_cell_per_s
                                               : HUGE_VAL;

  const double word_bytes = static_cast<double>(memory_.io_width) / 8.0;
  rep.read_power_w = rep.memory.read_energy * (traffic_.read_bytes_per_s / word_bytes);
  rep.write_power_w = rep.memory.write_energy * (traffic_.write_bytes_per_s / word_bytes);
  return rep;
}

double NvmExplorer::ber_at(double age_s) const {
  const auto& dev = memory_.resolved_traits();
  const double capacity_bytes = static_cast<double>(memory_.capacity_bits) / 8.0;
  const double writes = traffic_.write_bytes_per_s / capacity_bytes * age_s;
  return faults_.bit_error_rate(dev, age_s, writes);
}

std::size_t inject_weight_faults(nn::Network& net, double ber, Rng& rng) {
  XLDS_REQUIRE(ber >= 0.0 && ber <= 0.5);
  if (ber == 0.0) return 0;
  // Weights stored as int8 over a symmetric [-max|w|, +max|w|] scale.
  double w_max = 0.0;
  net.visit_weights([&](double& w) { w_max = std::max(w_max, std::abs(w)); });
  if (w_max == 0.0) return 0;
  const double scale = w_max / 127.0;

  std::size_t flipped = 0;
  net.visit_weights([&](double& w) {
    auto code = static_cast<std::int8_t>(
        std::clamp(std::lround(w / scale), long{-127}, long{127}));
    auto bits = static_cast<std::uint8_t>(code);
    for (int b = 0; b < 8; ++b) {
      if (rng.bernoulli(ber)) {
        bits ^= static_cast<std::uint8_t>(1u << b);
        ++flipped;
      }
    }
    w = static_cast<double>(static_cast<std::int8_t>(bits)) * scale;
  });
  return flipped;
}

double NvmExplorer::dnn_accuracy_at(nn::Network& net,
                                    const std::vector<std::vector<double>>& xs,
                                    const std::vector<std::size_t>& ys, double age_s,
                                    Rng& rng) const {
  // Snapshot, corrupt, evaluate, restore.
  std::vector<double> snapshot;
  net.visit_weights([&](double& w) { snapshot.push_back(w); });
  inject_weight_faults(net, ber_at(age_s), rng);
  const double acc = net.accuracy(xs, ys);
  std::size_t i = 0;
  net.visit_weights([&](double& w) { w = snapshot[i++]; });
  return acc;
}

}  // namespace xlds::nvsim
