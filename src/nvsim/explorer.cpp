#include "nvsim/explorer.hpp"

#include <algorithm>
#include <cmath>

#include "fault/weight_faults.hpp"
#include "util/error.hpp"

namespace xlds::nvsim {

double FaultModel::bit_error_rate(const device::DeviceTraits& dev, double age_s,
                                  double writes) const {
  XLDS_REQUIRE(age_s >= 0.0 && writes >= 0.0);
  // Delegates to the fault-subsystem wearout curve; the device traits only
  // normalise age/writes to the spec fractions.
  fault::WearoutBer ber;
  ber.base_ber = base_ber;
  ber.retention_alpha = retention_alpha;
  ber.endurance_beta = endurance_beta;
  const double age_fraction = dev.retention_s > 0.0 ? age_s / dev.retention_s : 0.0;
  const double wear_fraction =
      dev.endurance_cycles > 0.0 ? writes / dev.endurance_cycles : 0.0;
  return ber.at(age_fraction, wear_fraction);
}

NvmExplorer::NvmExplorer(NvRamConfig memory, FaultModel faults, TrafficProfile traffic)
    : memory_(std::move(memory)), faults_(faults), traffic_(traffic) {
  XLDS_REQUIRE(traffic_.write_bytes_per_s >= 0.0 && traffic_.read_bytes_per_s >= 0.0);
}

ExplorerReport NvmExplorer::report() const {
  const NvRamModel model(memory_);
  ExplorerReport rep;
  rep.memory = model.evaluate();

  // Perfect wear-levelling: every cell sees traffic / capacity writes per
  // second; lifetime is the time to the endurance spec.
  const auto& dev = memory_.resolved_traits();
  const double capacity_bytes = static_cast<double>(memory_.capacity_bits) / 8.0;
  const double writes_per_cell_per_s =
      traffic_.write_bytes_per_s > 0.0 ? traffic_.write_bytes_per_s / capacity_bytes : 0.0;
  rep.lifetime_s = writes_per_cell_per_s > 0.0 ? dev.endurance_cycles / writes_per_cell_per_s
                                               : HUGE_VAL;

  const double word_bytes = static_cast<double>(memory_.io_width) / 8.0;
  rep.read_power_w = rep.memory.read_energy * (traffic_.read_bytes_per_s / word_bytes);
  rep.write_power_w = rep.memory.write_energy * (traffic_.write_bytes_per_s / word_bytes);
  return rep;
}

double NvmExplorer::ber_at(double age_s) const {
  const auto& dev = memory_.resolved_traits();
  const double capacity_bytes = static_cast<double>(memory_.capacity_bits) / 8.0;
  const double writes = traffic_.write_bytes_per_s / capacity_bytes * age_s;
  return faults_.bit_error_rate(dev, age_s, writes);
}

std::size_t inject_weight_faults(nn::Network& net, double ber, Rng& rng) {
  return fault::flip_quantised_weight_bits(net, ber, rng);
}

double NvmExplorer::dnn_accuracy_at(nn::Network& net,
                                    const std::vector<std::vector<double>>& xs,
                                    const std::vector<std::size_t>& ys, double age_s,
                                    Rng& rng) const {
  // Snapshot, corrupt, evaluate, restore.
  std::vector<double> snapshot;
  net.visit_weights([&](double& w) { snapshot.push_back(w); });
  inject_weight_faults(net, ber_at(age_s), rng);
  const double acc = net.accuracy(xs, ys);
  std::size_t i = 0;
  net.visit_weights([&](double& w) { w = snapshot[i++]; });
  return acc;
}

double ber_accuracy_derate(const device::DeviceTraits& dev, double age_s, double writes,
                           const FaultModel& model) {
  const double ber = model.bit_error_rate(dev, age_s, writes);
  // Per-int8-weight corruption probability; the high bits dominate the
  // perturbation so one flip ~= one damaged weight.
  const double p_weight = 1.0 - std::pow(1.0 - ber, 8.0);
  // Measured dnn_accuracy_at() curves stay flat to ~1e-3 damaged weights and
  // lose roughly half their margin per decade beyond; exp(-k p) with k
  // matched at the 1e-2 point reproduces that knee.
  constexpr double kSensitivity = 25.0;
  return std::exp(-kSensitivity * p_weight);
}

}  // namespace xlds::nvsim
