// NVSim-lane analytical model (Sec. VI): performance, energy and area of a
// conventionally organised (random-access) memory array built from a chosen
// device technology.  This covers the "new device replaces an existing
// technology in an existing architecture" lane of Fig. 1 — e.g. "how does an
// FeFET or RRAM main-memory/cache array compare to SRAM at the same node?"
//
// The model follows the NVSim decomposition: a memory is a grid of subarrays
// (mats); a access touches one subarray through an H-tree; subarray latency
// = decoder + wordline RC + bitline development + sensing; energies are CV^2
// on the switched lines plus the device write energy.
#pragma once

#include <cstddef>
#include <optional>
#include <string>

#include "device/device.hpp"
#include "device/technology.hpp"

namespace xlds::nvsim {

struct NvRamConfig {
  device::DeviceKind device = device::DeviceKind::kSram;
  std::string tech = "40nm";
  std::size_t capacity_bits = 8ull * 1024 * 1024;  ///< total capacity
  std::size_t subarray_rows = 256;
  std::size_t subarray_cols = 256;
  int bits_per_cell = 1;      ///< multi-level cells shrink the array
  std::size_t io_width = 64;  ///< bits returned per access
  /// Monolithic 3D stacking (the DESTINY lane, Sec. VI): layers share the
  /// footprint; each extra layer adds an inter-layer-via RC penalty to the
  /// bit/word lines.  1 = planar.  Only BEOL-compatible NVMs (RRAM, PCM)
  /// can stack.
  std::size_t layers_3d = 1;
  /// What-if device: overrides the canonical trait preset (the Fig. 6
  /// materials-lever hook).  The kind still controls structural rules.
  std::optional<device::DeviceTraits> device_override;

  const device::DeviceTraits& resolved_traits() const {
    return device_override ? *device_override : device::traits(device);
  }
};

/// Array-level figures of merit (SI units).
struct ArrayFom {
  double area_m2 = 0.0;
  double read_latency = 0.0;
  double write_latency = 0.0;
  double read_energy = 0.0;
  double write_energy = 0.0;
  double leakage_power = 0.0;

  double read_bandwidth(std::size_t io_bits) const {
    return static_cast<double>(io_bits) / read_latency;
  }
};

class NvRamModel {
 public:
  explicit NvRamModel(NvRamConfig config);

  const NvRamConfig& config() const noexcept { return config_; }

  /// Number of subarrays required for the configured capacity.
  std::size_t subarray_count() const;

  /// Full-array figures of merit.
  ArrayFom evaluate() const;

  /// FOM of a single subarray (before H-tree overheads) — used by Eva-CAM
  /// for its mat-level estimates and exposed for tests.
  ArrayFom subarray_fom() const;

 private:
  NvRamConfig config_;
};

}  // namespace xlds::nvsim
