#include "shard/result_cache.hpp"

#include <cstring>
#include <filesystem>
#include <iterator>
#include <type_traits>

#include "util/error.hpp"
#include "util/hash.hpp"

namespace xlds::shard {

std::uint64_t cache_point_hash(const core::DesignPoint& p) {
  std::uint64_t h = util::fnv1a64("xlds-point-v1", 13);
  const auto mix = [&h](std::uint32_t v) { h = util::fnv1a64(&v, sizeof v, h); };
  mix(static_cast<std::uint32_t>(p.device));
  mix(static_cast<std::uint32_t>(p.arch));
  mix(static_cast<std::uint32_t>(p.algo));
  return util::fnv1a64(p.application.data(), p.application.size(), h);
}

namespace {

constexpr char kMagic[8] = {'X', 'L', 'D', 'S', 'R', 'C', 'H', '1'};
constexpr std::uint32_t kVersion = 1;
constexpr std::size_t kHeaderSize = sizeof(kMagic) + sizeof(std::uint32_t);
constexpr std::uint32_t kMaxBodyLen = 1u << 20;

constexpr std::uint8_t kRecResult = 1;
constexpr std::uint8_t kRecSession = 2;

template <class T>
void append_raw(std::string& buf, const T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  const char* p = reinterpret_cast<const char*>(&v);
  buf.append(p, sizeof v);
}

template <class T>
bool read_raw(const std::string& buf, std::size_t& pos, T& out) {
  static_assert(std::is_trivially_copyable_v<T>);
  if (pos + sizeof out > buf.size()) return false;
  std::memcpy(&out, buf.data() + pos, sizeof out);
  pos += sizeof out;
  return true;
}

std::string encode_result(std::uint64_t space_hash, std::uint64_t point_hash,
                          std::uint32_t tier, const core::Fom& fom) {
  std::string body;
  body.reserve(64 + fom.note.size());
  append_raw(body, kRecResult);
  append_raw(body, space_hash);
  append_raw(body, point_hash);
  append_raw(body, tier);
  append_raw(body, static_cast<std::uint8_t>(fom.feasible ? 1 : 0));
  body.append(3, '\0');
  append_raw(body, fom.latency);
  append_raw(body, fom.energy);
  append_raw(body, fom.area_mm2);
  append_raw(body, fom.accuracy);
  append_raw(body, static_cast<std::uint32_t>(fom.note.size()));
  body.append(fom.note);
  return body;
}

bool decode_result(const std::string& body, ResultCache::ResultRecord& r) {
  std::size_t pos = 1;  // past the type byte
  std::uint8_t feasible = 0;
  std::uint32_t note_len = 0;
  if (!read_raw(body, pos, r.space_hash) || !read_raw(body, pos, r.point_hash) ||
      !read_raw(body, pos, r.tier) || !read_raw(body, pos, feasible))
    return false;
  pos += 3;  // padding
  if (pos > body.size() || !read_raw(body, pos, r.fom.latency) ||
      !read_raw(body, pos, r.fom.energy) || !read_raw(body, pos, r.fom.area_mm2) ||
      !read_raw(body, pos, r.fom.accuracy) || !read_raw(body, pos, note_len))
    return false;
  if (pos + note_len != body.size()) return false;
  r.fom.feasible = feasible != 0;
  r.fom.note.assign(body, pos, note_len);
  return true;
}

std::string encode_session(std::uint64_t space_hash, std::uint64_t hits,
                           std::uint64_t misses) {
  std::string body;
  append_raw(body, kRecSession);
  append_raw(body, space_hash);
  append_raw(body, hits);
  append_raw(body, misses);
  return body;
}

bool decode_session(const std::string& body, ResultCache::SessionRecord& s) {
  std::size_t pos = 1;
  return read_raw(body, pos, s.space_hash) && read_raw(body, pos, s.hits) &&
         read_raw(body, pos, s.misses) && pos == body.size();
}

void frame(std::string& buf, const std::string& body) {
  append_raw(buf, static_cast<std::uint32_t>(body.size()));
  buf.append(body);
  append_raw(buf, util::fnv1a64(body.data(), body.size()));
}

struct Parsed {
  std::uint32_t version = 0;
  std::vector<ResultCache::ResultRecord> results;
  std::vector<ResultCache::SessionRecord> sessions;
  std::size_t good_end = 0;
};

Parsed parse(const std::string& contents, const std::string& path) {
  XLDS_REQUIRE_MSG(contents.size() >= kHeaderSize &&
                       std::memcmp(contents.data(), kMagic, sizeof kMagic) == 0,
                   "'" << path << "' is not an XLDS result cache");
  Parsed out;
  std::size_t pos = sizeof kMagic;
  read_raw(contents, pos, out.version);
  XLDS_REQUIRE_MSG(out.version == kVersion, "result cache '" << path << "' has format version "
                                                             << out.version << ", this build reads "
                                                             << kVersion);
  out.good_end = pos;

  // Replay the intact record prefix; stop at the first torn or corrupt one.
  while (pos < contents.size()) {
    std::uint32_t body_len = 0;
    std::size_t scan = pos;
    if (!read_raw(contents, scan, body_len) || body_len > kMaxBodyLen ||
        scan + body_len + sizeof(std::uint64_t) > contents.size())
      break;  // torn tail
    const std::string body = contents.substr(scan, body_len);
    scan += body_len;
    std::uint64_t checksum = 0;
    read_raw(contents, scan, checksum);
    if (checksum != util::fnv1a64(body.data(), body.size()) || body.empty())
      break;  // corrupt record: distrust everything after it
    const std::uint8_t type = static_cast<std::uint8_t>(body[0]);
    if (type == kRecResult) {
      ResultCache::ResultRecord r;
      if (!decode_result(body, r)) break;
      out.results.push_back(std::move(r));
    } else if (type == kRecSession) {
      ResultCache::SessionRecord s;
      if (!decode_session(body, s)) break;
      out.sessions.push_back(s);
    } else {
      break;  // unknown record type: written by a future version? stop here
    }
    pos = scan;
    out.good_end = pos;
  }
  return out;
}

}  // namespace

ResultCache::ResultCache(std::string path) : path_(std::move(path)) {
  XLDS_REQUIRE(!path_.empty());

  std::string contents;
  {
    std::ifstream in(path_, std::ios::binary);
    if (in) {
      stats_.existed = true;
      contents.assign(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
    }
  }

  if (stats_.existed) {
    Parsed parsed = parse(contents, path_);
    for (ResultCache::ResultRecord& r : parsed.results)
      index_[Key{r.space_hash, r.point_hash, r.tier}] = std::move(r.fom);
    stats_.loaded = parsed.results.size();
    stats_.dropped_bytes = contents.size() - parsed.good_end;
    if (stats_.dropped_bytes > 0) std::filesystem::resize_file(path_, parsed.good_end);
  }

  out_.open(path_, std::ios::binary | std::ios::app);
  XLDS_REQUIRE_MSG(out_.is_open(), "cannot open result cache '" << path_ << "' for append");
  if (!stats_.existed) {
    std::string header;
    header.append(kMagic, sizeof kMagic);
    append_raw(header, kVersion);
    out_.write(header.data(), static_cast<std::streamsize>(header.size()));
    out_.flush();
    XLDS_REQUIRE_MSG(out_.good(), "result cache header write to '" << path_ << "' failed");
  }
}

ResultCache::~ResultCache() {
  if (stats_.hits + stats_.misses == 0) return;
  std::string framed;
  frame(framed, encode_session(session_space_, stats_.hits, stats_.misses));
  out_.write(framed.data(), static_cast<std::streamsize>(framed.size()));
  out_.flush();
}

const core::Fom* ResultCache::find(std::uint64_t space_hash, std::uint64_t point_hash,
                                   std::uint32_t tier) {
  if (session_space_ == 0) session_space_ = space_hash;
  const auto it = index_.find(Key{space_hash, point_hash, tier});
  if (it == index_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  return &it->second;
}

void ResultCache::insert(std::uint64_t space_hash, std::uint64_t point_hash,
                         std::uint32_t tier, const core::Fom& fom) {
  if (session_space_ == 0) session_space_ = space_hash;
  std::string framed;
  framed.reserve(80 + fom.note.size());
  frame(framed, encode_result(space_hash, point_hash, tier, fom));
  out_.write(framed.data(), static_cast<std::streamsize>(framed.size()));
  out_.flush();
  XLDS_REQUIRE_MSG(out_.good(), "result cache append to '" << path_ << "' failed");
  ++stats_.appended;
  index_[Key{space_hash, point_hash, tier}] = fom;
}

ResultCache::InspectInfo ResultCache::inspect(const std::string& path) {
  std::string contents;
  {
    std::ifstream in(path, std::ios::binary);
    XLDS_REQUIRE_MSG(in, "cannot read result cache '" << path << "'");
    contents.assign(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
  }
  Parsed parsed = parse(contents, path);
  InspectInfo info;
  info.version = parsed.version;
  info.results = std::move(parsed.results);
  info.sessions = std::move(parsed.sessions);
  info.dropped_bytes = contents.size() - parsed.good_end;
  return info;
}

}  // namespace xlds::shard
