// Persistent cross-run memo cache for fidelity-ladder evaluations.
//
// The journal answers "what did *this job* already pay for"; the result
// cache answers "what has *any compatible job on this machine* already paid
// for".  It is an append-only checksummed record file — the journal's
// durability discipline, relaxed in one deliberate way: records are keyed by
//
//   (space hash, point hash, tier)
//
// where the space hash covers the fidelity-ladder settings + application
// profile (everything a FOM *value* depends on besides the point itself) but
// NOT the job's axis restriction, and the point hash covers the design
// point's own axes.  A restricted sweep and a full-grid sweep therefore
// share entries for every overlapping point — exactly the reuse a journal's
// per-job index keys cannot express.
//
//   header:  magic "XLDSRCH1" | format version u32
//   record:  body length u32 | body | FNV-1a-64 checksum of the body
//   body:    record type u8 | payload
//     result:  space hash u64 | point hash u64 | tier u32 | feasible u8 |
//              pad[3] | latency f64 | energy f64 | area_mm2 f64 |
//              accuracy f64 | note length u32 | note bytes
//     session: space hash u64 | hits u64 | misses u64   (one per run close —
//              the hit-rate history xlds-journal's `cache` subcommand reads)
//
// Append is write + flush; opening replays the intact prefix and truncates
// the first torn or checksum-failed record, so a run killed mid-append
// loses at most the record being written.  Values are stored bit-exactly
// (memcpy'd doubles), so a cache hit reproduces the journal bytes a fresh
// evaluation would have produced — the determinism pin the bench asserts.
//
// Surrogate-tier predictions are deliberately *never* cached: their values
// depend on a job's training history, not on the job config alone.
#pragma once

#include <cstdint>
#include <fstream>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "core/design_space.hpp"
#include "core/evaluate.hpp"

namespace xlds::shard {

/// Identity hash of a design point's own axes — the cache key half that,
/// unlike a SearchSpace index, survives axis restriction.
std::uint64_t cache_point_hash(const core::DesignPoint& p);

class ResultCache {
 public:
  struct Stats {
    bool existed = false;            ///< file was present at open
    std::size_t loaded = 0;          ///< intact result records replayed
    std::size_t dropped_bytes = 0;   ///< torn tail truncated at open
    std::size_t hits = 0;            ///< find() calls served this run
    std::size_t misses = 0;          ///< find() calls not served this run
    std::size_t appended = 0;        ///< result records written this run
  };

  /// Open `path` for append, creating it when absent; replays the intact
  /// record prefix into the in-memory index and truncates any torn tail.
  explicit ResultCache(std::string path);

  /// Writes this run's session (hits/misses) record, if any lookups ran.
  ~ResultCache();

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  const std::string& path() const noexcept { return path_; }
  const Stats& stats() const noexcept { return stats_; }

  /// Lookup; counts a hit or miss.  The pointer stays valid until the next
  /// insert().
  const core::Fom* find(std::uint64_t space_hash, std::uint64_t point_hash,
                        std::uint32_t tier);

  /// Durably append one evaluated FOM (write + flush) and index it.
  void insert(std::uint64_t space_hash, std::uint64_t point_hash, std::uint32_t tier,
              const core::Fom& fom);

  /// Read-only integrity scan for tooling (xlds-journal cache): never
  /// truncates or writes.
  struct ResultRecord {
    std::uint64_t space_hash = 0;
    std::uint64_t point_hash = 0;
    std::uint32_t tier = 0;
    core::Fom fom;
  };
  struct SessionRecord {
    std::uint64_t space_hash = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
  };
  struct InspectInfo {
    std::uint32_t version = 0;
    std::vector<ResultRecord> results;
    std::vector<SessionRecord> sessions;
    std::size_t dropped_bytes = 0;  ///< torn/corrupt tail (left in place)
  };
  static InspectInfo inspect(const std::string& path);

 private:
  using Key = std::tuple<std::uint64_t, std::uint64_t, std::uint32_t>;

  std::string path_;
  std::map<Key, core::Fom> index_;
  std::uint64_t session_space_ = 0;  ///< first space hash this run touched
  Stats stats_;
  std::ofstream out_;
};

}  // namespace xlds::shard
