#include "shard/protocol.hpp"

#include <cerrno>
#include <cstring>
#include <type_traits>

#include <sys/socket.h>
#include <unistd.h>

#include "util/hash.hpp"

namespace xlds::shard {

namespace {

template <class T>
void append_raw(std::string& buf, const T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  const char* p = reinterpret_cast<const char*>(&v);
  buf.append(p, sizeof v);
}

template <class T>
bool read_raw(const std::string& buf, std::size_t& pos, T& out) {
  static_assert(std::is_trivially_copyable_v<T>);
  if (pos + sizeof out > buf.size()) return false;
  std::memcpy(&out, buf.data() + pos, sizeof out);
  pos += sizeof out;
  return true;
}

void append_string(std::string& buf, const std::string& s) {
  append_raw(buf, static_cast<std::uint32_t>(s.size()));
  buf.append(s);
}

bool read_string(const std::string& buf, std::size_t& pos, std::string& out) {
  std::uint32_t len = 0;
  if (!read_raw(buf, pos, len)) return false;
  if (pos + len > buf.size()) return false;
  out.assign(buf, pos, len);
  pos += len;
  return true;
}

void append_fom(std::string& buf, const core::Fom& fom) {
  append_raw(buf, static_cast<std::uint8_t>(fom.feasible ? 1 : 0));
  buf.append(3, '\0');
  append_raw(buf, fom.latency);
  append_raw(buf, fom.energy);
  append_raw(buf, fom.area_mm2);
  append_raw(buf, fom.accuracy);
  append_string(buf, fom.note);
}

bool read_fom(const std::string& buf, std::size_t& pos, core::Fom& fom) {
  std::uint8_t feasible = 0;
  if (!read_raw(buf, pos, feasible)) return false;
  pos += 3;  // padding
  if (pos > buf.size() || !read_raw(buf, pos, fom.latency) ||
      !read_raw(buf, pos, fom.energy) || !read_raw(buf, pos, fom.area_mm2) ||
      !read_raw(buf, pos, fom.accuracy) || !read_string(buf, pos, fom.note))
    return false;
  fom.feasible = feasible != 0;
  return true;
}

void append_nodal(std::string& buf, const core::Profiler::NodalCounts& c) {
  append_raw(buf, c.factorizations);
  append_raw(buf, c.direct_solves);
  append_raw(buf, c.gs_solves);
  append_raw(buf, c.incremental_updates);
  append_raw(buf, c.updated_cells);
  append_raw(buf, c.update_declines);
  append_raw(buf, c.drift_refactorizations);
}

bool read_nodal(const std::string& buf, std::size_t& pos, core::Profiler::NodalCounts& c) {
  return read_raw(buf, pos, c.factorizations) && read_raw(buf, pos, c.direct_solves) &&
         read_raw(buf, pos, c.gs_solves) && read_raw(buf, pos, c.incremental_updates) &&
         read_raw(buf, pos, c.updated_cells) && read_raw(buf, pos, c.update_declines) &&
         read_raw(buf, pos, c.drift_refactorizations);
}

void append_sched(std::string& buf, const core::Profiler::SchedCounts& c) {
  append_raw(buf, c.jobs);
  append_raw(buf, c.inline_jobs);
  append_raw(buf, c.tasks);
  append_raw(buf, c.stolen_tasks);
  append_raw(buf, c.steal_failures);
  append_raw(buf, c.nested_cooperative);
  append_raw(buf, c.nested_inlined);
}

bool read_sched(const std::string& buf, std::size_t& pos, core::Profiler::SchedCounts& c) {
  return read_raw(buf, pos, c.jobs) && read_raw(buf, pos, c.inline_jobs) &&
         read_raw(buf, pos, c.tasks) && read_raw(buf, pos, c.stolen_tasks) &&
         read_raw(buf, pos, c.steal_failures) && read_raw(buf, pos, c.nested_cooperative) &&
         read_raw(buf, pos, c.nested_inlined);
}

bool expect_type(const std::string& body, std::size_t& pos, MsgType want) {
  std::uint8_t t = 0;
  return read_raw(body, pos, t) && t == static_cast<std::uint8_t>(want);
}

bool at_end(const std::string& body, std::size_t pos) { return pos == body.size(); }

}  // namespace

std::string encode_hello(const Hello& m) {
  std::string body;
  append_raw(body, static_cast<std::uint8_t>(MsgType::kHello));
  append_raw(body, m.job_hash);
  append_raw(body, m.worker_threads);
  append_string(body, m.job_json);
  return body;
}

bool decode_hello(const std::string& body, Hello& m) {
  std::size_t pos = 0;
  return expect_type(body, pos, MsgType::kHello) && read_raw(body, pos, m.job_hash) &&
         read_raw(body, pos, m.worker_threads) && read_string(body, pos, m.job_json) &&
         at_end(body, pos);
}

std::string encode_hello_ack(const HelloAck& m) {
  std::string body;
  append_raw(body, static_cast<std::uint8_t>(MsgType::kHelloAck));
  append_raw(body, m.job_hash);
  append_raw(body, m.pid);
  return body;
}

bool decode_hello_ack(const std::string& body, HelloAck& m) {
  std::size_t pos = 0;
  return expect_type(body, pos, MsgType::kHelloAck) && read_raw(body, pos, m.job_hash) &&
         read_raw(body, pos, m.pid) && at_end(body, pos);
}

std::string encode_eval_request(const EvalRequest& m) {
  std::string body;
  body.reserve(16 + m.points.size() * sizeof(WirePoint));
  append_raw(body, static_cast<std::uint8_t>(MsgType::kEvalRequest));
  append_raw(body, m.request_id);
  append_raw(body, m.tier);
  append_raw(body, static_cast<std::uint32_t>(m.points.size()));
  for (const WirePoint& p : m.points) {
    append_raw(body, p.index);
    append_raw(body, p.device);
    append_raw(body, p.arch);
    append_raw(body, p.algo);
  }
  return body;
}

bool decode_eval_request(const std::string& body, EvalRequest& m) {
  std::size_t pos = 0;
  std::uint32_t n = 0;
  if (!expect_type(body, pos, MsgType::kEvalRequest) || !read_raw(body, pos, m.request_id) ||
      !read_raw(body, pos, m.tier) || !read_raw(body, pos, n))
    return false;
  m.points.clear();
  m.points.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    WirePoint p;
    if (!read_raw(body, pos, p.index) || !read_raw(body, pos, p.device) ||
        !read_raw(body, pos, p.arch) || !read_raw(body, pos, p.algo))
      return false;
    m.points.push_back(p);
  }
  return at_end(body, pos);
}

std::string encode_eval_result(const EvalResult& m) {
  std::string body;
  body.reserve(160 + m.foms.size() * 64);
  append_raw(body, static_cast<std::uint8_t>(MsgType::kEvalResult));
  append_raw(body, m.request_id);
  append_raw(body, m.tier);
  append_raw(body, static_cast<std::uint32_t>(m.foms.size()));
  for (const core::Fom& fom : m.foms) append_fom(body, fom);
  append_raw(body, m.busy_ns);
  append_nodal(body, m.nodal);
  append_sched(body, m.sched);
  return body;
}

bool decode_eval_result(const std::string& body, EvalResult& m) {
  std::size_t pos = 0;
  std::uint32_t n = 0;
  if (!expect_type(body, pos, MsgType::kEvalResult) || !read_raw(body, pos, m.request_id) ||
      !read_raw(body, pos, m.tier) || !read_raw(body, pos, n))
    return false;
  m.foms.clear();
  m.foms.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    core::Fom fom;
    if (!read_fom(body, pos, fom)) return false;
    m.foms.push_back(std::move(fom));
  }
  return read_raw(body, pos, m.busy_ns) && read_nodal(body, pos, m.nodal) &&
         read_sched(body, pos, m.sched) && at_end(body, pos);
}

std::string encode_eval_error(const EvalError& m) {
  std::string body;
  append_raw(body, static_cast<std::uint8_t>(MsgType::kEvalError));
  append_raw(body, m.request_id);
  append_string(body, m.message);
  return body;
}

bool decode_eval_error(const std::string& body, EvalError& m) {
  std::size_t pos = 0;
  return expect_type(body, pos, MsgType::kEvalError) && read_raw(body, pos, m.request_id) &&
         read_string(body, pos, m.message) && at_end(body, pos);
}

std::string encode_shutdown() {
  std::string body;
  append_raw(body, static_cast<std::uint8_t>(MsgType::kShutdown));
  return body;
}

bool decode_type(const std::string& body, MsgType& type) {
  if (body.empty()) return false;
  const std::uint8_t t = static_cast<std::uint8_t>(body[0]);
  if (t < static_cast<std::uint8_t>(MsgType::kHello) ||
      t > static_cast<std::uint8_t>(MsgType::kShutdown))
    return false;
  type = static_cast<MsgType>(t);
  return true;
}

namespace {

/// write() the whole buffer; MSG_NOSIGNAL on sockets so a dead peer surfaces
/// as EPIPE instead of killing the process (ENOTSOCK falls back to plain
/// write() for pipe users, who must ignore SIGPIPE themselves).
bool write_all(int fd, const char* data, std::size_t n) {
  while (n > 0) {
    ssize_t w = ::send(fd, data, n, MSG_NOSIGNAL);
    if (w < 0 && errno == ENOTSOCK) w = ::write(fd, data, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

/// read() exactly n bytes.  Returns kOk, kEof (clean close before the first
/// byte), or kCorrupt (close mid-buffer) / kError.
ReadStatus read_all(int fd, char* data, std::size_t n) {
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::read(fd, data + got, n - got);
    if (r < 0) {
      if (errno == EINTR) continue;
      return ReadStatus::kError;
    }
    if (r == 0) return got == 0 ? ReadStatus::kEof : ReadStatus::kCorrupt;
    got += static_cast<std::size_t>(r);
  }
  return ReadStatus::kOk;
}

}  // namespace

bool write_frame(int fd, const std::string& body) {
  std::string framed;
  framed.reserve(12 + body.size());
  append_raw(framed, static_cast<std::uint32_t>(body.size()));
  framed.append(body);
  append_raw(framed, util::fnv1a64(body.data(), body.size()));
  return write_all(fd, framed.data(), framed.size());
}

ReadStatus read_frame(int fd, std::string& body) {
  std::uint32_t len = 0;
  ReadStatus s = read_all(fd, reinterpret_cast<char*>(&len), sizeof len);
  if (s != ReadStatus::kOk) return s;
  if (len > kMaxFrameBody) return ReadStatus::kCorrupt;
  body.resize(len);
  s = read_all(fd, body.data(), len);
  if (s != ReadStatus::kOk) return s == ReadStatus::kEof ? ReadStatus::kCorrupt : s;
  std::uint64_t checksum = 0;
  s = read_all(fd, reinterpret_cast<char*>(&checksum), sizeof checksum);
  if (s != ReadStatus::kOk) return s == ReadStatus::kEof ? ReadStatus::kCorrupt : s;
  if (checksum != util::fnv1a64(body.data(), body.size())) return ReadStatus::kCorrupt;
  return ReadStatus::kOk;
}

}  // namespace xlds::shard
