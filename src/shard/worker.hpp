// The evaluation-shard worker: serves EvalRequests on a stream fd until the
// parent shuts it down or disappears.
//
// The worker is deliberately ignorant of the DSE layer: it receives fully
// materialised design points over the wire and prices them through an
// injected evaluator callback, so src/shard/ depends only on core + util and
// the dependency arrow between dse and shard points one way (dse -> shard).
// Two ways to obtain the evaluator:
//
//   fork mode (ShardPool default): the parent forks without exec, and the
//   child inherits the evaluator closure (and every warm memo cache the
//   parent had built) directly — `WorkerInit::job` is set.
//
//   exec mode (tools/xlds-shard-worker): a fresh process builds the
//   evaluator from the Hello's job-spec JSON via `WorkerInit::factory`, and
//   acks with the job hash *it* derived so the parent can verify both sides
//   agree on the job identity before any evaluation runs.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "core/design_space.hpp"
#include "core/evaluate.hpp"
#include "shard/protocol.hpp"

namespace xlds::shard {

/// Price one design point at one fidelity tier.  Must be a pure function of
/// (point, tier) — the shard contract inherits the ladder's.
using PointEvaluator =
    std::function<core::Fom(const core::DesignPoint& p, std::uint32_t tier)>;

struct WorkerJob {
  std::string application;  ///< application every wire point is bound to
  PointEvaluator evaluate;
  /// Job identity this worker acks with; 0 = echo the Hello's hash (fork
  /// mode, where parent and child share the ladder by construction).
  std::uint64_t job_hash = 0;
};

using JobFactory = std::function<WorkerJob(const Hello& hello)>;

struct WorkerInit {
  WorkerJob job;       ///< fork mode: non-null evaluate
  JobFactory factory;  ///< exec mode: build the job from the Hello
};

/// Serve requests on `fd` until Shutdown or EOF (parent gone).  Returns the
/// process exit code: 0 on a clean shutdown, non-zero on a protocol or
/// handshake failure (each code is distinct to make post-mortems legible).
/// Evaluation exceptions do NOT exit: they are forwarded as EvalError frames
/// and the worker keeps serving.
int serve_worker(int fd, const WorkerInit& init);

}  // namespace xlds::shard
