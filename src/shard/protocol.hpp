// Wire protocol between the DSE parent process and its evaluation shards.
//
// Transport: a stream fd (socketpair) carrying length-prefixed, checksummed
// frames — the journal's framing discipline applied to a pipe:
//
//   frame:  body length u32 | body | FNV-1a-64 checksum of the body
//   body:   message type u8 | type-specific payload (fixed-width LE fields)
//
// Messages (parent -> worker unless noted):
//
//   Hello        job hash u64 | worker threads u32 | job-spec JSON (length-
//                prefixed) — identity handshake; the JSON lets an exec'd
//                worker rebuild the fidelity ladder the parent holds
//   HelloAck     (worker -> parent) the job hash the worker derived | pid —
//                a mismatch aborts the spawn before any evaluation runs
//   EvalRequest  request id u64 | tier u32 | n points, each the DesignPoint's
//                three axis enums + the parent-side space index (echoed back
//                verbatim so the parent never re-derives placement)
//   EvalResult   (worker -> parent) request id | tier | n FOMs in request
//                order | busy-ns | nodal + scheduler profiler deltas
//   EvalError    (worker -> parent) request id | what() of the evaluation
//                exception — forwarded so the parent rethrows the same
//                message the in-process path would have thrown
//   Shutdown     drain and _exit(0)
//
// Decoders return false on any malformed body (truncated field, trailing
// junk, wrong type byte) and read_frame() reports a checksum mismatch as
// kCorrupt — the parent treats either on a worker channel as worker death.
// Values survive the trip bit-exactly (doubles are memcpy'd, never printed),
// which is what lets the merged journal stay byte-identical to in-process.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/counters.hpp"
#include "core/evaluate.hpp"

namespace xlds::shard {

enum class MsgType : std::uint8_t {
  kHello = 1,
  kHelloAck = 2,
  kEvalRequest = 3,
  kEvalResult = 4,
  kEvalError = 5,
  kShutdown = 6,
};

struct Hello {
  std::uint64_t job_hash = 0;
  std::uint32_t worker_threads = 1;  ///< pool width the worker should use
  std::string job_json;              ///< job-identity spec for exec'd workers
};

struct HelloAck {
  std::uint64_t job_hash = 0;  ///< hash the worker derived (must echo Hello's)
  std::int32_t pid = 0;
};

/// One design point on the wire: the three axis enums (the application
/// string travels once, in the Hello) plus the parent's space index.
struct WirePoint {
  std::uint64_t index = 0;
  std::uint32_t device = 0;
  std::uint32_t arch = 0;
  std::uint32_t algo = 0;
};

struct EvalRequest {
  std::uint64_t request_id = 0;
  std::uint32_t tier = 0;
  std::vector<WirePoint> points;
};

struct EvalResult {
  std::uint64_t request_id = 0;
  std::uint32_t tier = 0;
  std::vector<core::Fom> foms;  ///< one per request point, request order
  std::uint64_t busy_ns = 0;    ///< wall time the worker spent evaluating
  core::Profiler::NodalCounts nodal{};  ///< profiler deltas while serving
  core::Profiler::SchedCounts sched{};
};

struct EvalError {
  std::uint64_t request_id = 0;
  std::string message;
};

std::string encode_hello(const Hello& m);
std::string encode_hello_ack(const HelloAck& m);
std::string encode_eval_request(const EvalRequest& m);
std::string encode_eval_result(const EvalResult& m);
std::string encode_eval_error(const EvalError& m);
std::string encode_shutdown();

/// Type byte of a decoded frame body (false on an empty/unknown-type body).
bool decode_type(const std::string& body, MsgType& type);

bool decode_hello(const std::string& body, Hello& m);
bool decode_hello_ack(const std::string& body, HelloAck& m);
bool decode_eval_request(const std::string& body, EvalRequest& m);
bool decode_eval_result(const std::string& body, EvalResult& m);
bool decode_eval_error(const std::string& body, EvalError& m);

/// Sanity bound on one frame body: a batch of results with notes fits well
/// under this; a larger length field is corruption, not a real frame.
constexpr std::uint32_t kMaxFrameBody = 1u << 24;

enum class ReadStatus {
  kOk,
  kEof,      ///< clean close (or death) of the peer before a frame started
  kCorrupt,  ///< checksum mismatch, oversize length, or mid-frame close
  kError,    ///< transport error (errno-level failure)
};

/// Blocking write of one frame.  Never raises SIGPIPE (MSG_NOSIGNAL on
/// sockets; pipe users must ignore SIGPIPE themselves).  False on a closed
/// or broken peer.
bool write_frame(int fd, const std::string& body);

/// Blocking read of one complete frame into `body`.
ReadStatus read_frame(int fd, std::string& body);

}  // namespace xlds::shard
