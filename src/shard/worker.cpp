#include "shard/worker.hpp"

#include <chrono>
#include <cstdio>
#include <exception>

#include <unistd.h>

#include "util/parallel.hpp"

namespace xlds::shard {

namespace {

core::Profiler::NodalCounts nodal_delta(const core::Profiler::NodalCounts& a,
                                        const core::Profiler::NodalCounts& b) {
  core::Profiler::NodalCounts d;
  d.factorizations = b.factorizations - a.factorizations;
  d.direct_solves = b.direct_solves - a.direct_solves;
  d.gs_solves = b.gs_solves - a.gs_solves;
  d.incremental_updates = b.incremental_updates - a.incremental_updates;
  d.updated_cells = b.updated_cells - a.updated_cells;
  d.update_declines = b.update_declines - a.update_declines;
  d.drift_refactorizations = b.drift_refactorizations - a.drift_refactorizations;
  return d;
}

core::Profiler::SchedCounts sched_delta(const core::Profiler::SchedCounts& a,
                                        const core::Profiler::SchedCounts& b) {
  core::Profiler::SchedCounts d;
  d.jobs = b.jobs - a.jobs;
  d.inline_jobs = b.inline_jobs - a.inline_jobs;
  d.tasks = b.tasks - a.tasks;
  d.stolen_tasks = b.stolen_tasks - a.stolen_tasks;
  d.steal_failures = b.steal_failures - a.steal_failures;
  d.nested_cooperative = b.nested_cooperative - a.nested_cooperative;
  d.nested_inlined = b.nested_inlined - a.nested_inlined;
  return d;
}

}  // namespace

int serve_worker(int fd, const WorkerInit& init) {
  std::string body;
  if (read_frame(fd, body) != ReadStatus::kOk) return 10;
  Hello hello;
  if (!decode_hello(body, hello)) return 11;

  WorkerJob job;
  if (init.job.evaluate) {
    job = init.job;
  } else if (init.factory) {
    try {
      job = init.factory(hello);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "xlds-shard-worker: cannot build job: %s\n", e.what());
      return 12;
    }
  } else {
    return 12;
  }
  if (job.job_hash == 0) job.job_hash = hello.job_hash;

  set_parallel_threads(hello.worker_threads == 0 ? 1 : hello.worker_threads);

  HelloAck ack;
  ack.job_hash = job.job_hash;
  ack.pid = static_cast<std::int32_t>(::getpid());
  if (!write_frame(fd, encode_hello_ack(ack))) return 13;
  if (job.job_hash != hello.job_hash) return 14;  // parent sees the ack and aborts too

  for (;;) {
    const ReadStatus s = read_frame(fd, body);
    if (s == ReadStatus::kEof) return 0;  // parent gone: nothing left to serve
    if (s != ReadStatus::kOk) return 15;
    MsgType type;
    if (!decode_type(body, type)) return 16;
    if (type == MsgType::kShutdown) return 0;
    if (type != MsgType::kEvalRequest) return 17;
    EvalRequest req;
    if (!decode_eval_request(body, req)) return 18;

    EvalResult res;
    res.request_id = req.request_id;
    res.tier = req.tier;
    EvalError err;
    err.request_id = req.request_id;
    bool failed = false;

    const auto nodal0 = core::Profiler::nodal();
    const auto sched0 = core::Profiler::sched();
    const auto t0 = std::chrono::steady_clock::now();
    try {
      res.foms.reserve(req.points.size());
      for (const WirePoint& wp : req.points) {
        core::DesignPoint p;
        p.device = static_cast<device::DeviceKind>(wp.device);
        p.arch = static_cast<core::ArchKind>(wp.arch);
        p.algo = static_cast<core::AlgoKind>(wp.algo);
        p.application = job.application;
        res.foms.push_back(job.evaluate(p, req.tier));
      }
    } catch (const std::exception& e) {
      failed = true;
      err.message = e.what();
    } catch (...) {
      failed = true;
      err.message = "unknown evaluation error";
    }
    const auto t1 = std::chrono::steady_clock::now();
    res.busy_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
    res.nodal = nodal_delta(nodal0, core::Profiler::nodal());
    res.sched = sched_delta(sched0, core::Profiler::sched());

    if (!write_frame(fd, failed ? encode_eval_error(err) : encode_eval_result(res)))
      return 19;
  }
}

}  // namespace xlds::shard
