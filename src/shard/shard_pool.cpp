#include "shard/shard_pool.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>

#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <time.h>
#include <unistd.h>

#include "util/env.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"

// A forked child must not create threads under ThreadSanitizer, so shard
// workers run their pools single-lane in TSan builds (speed-only: lane count
// never changes results).
#if defined(__SANITIZE_THREAD__)
#define XLDS_SHARD_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define XLDS_SHARD_TSAN 1
#endif
#endif

namespace xlds::shard {

std::size_t env_shard_count() { return util::env_positive_count("XLDS_SHARDS", 1); }

/// Per-batch dispatch unit: a contiguous run of the caller's (LPT-ordered)
/// items.  `live_dispatches` counts copies in flight at live workers — a
/// group is re-queued after a worker death only when it reaches zero, because
/// a surviving duplicate will still deliver the identical bytes.
struct ShardPool::Group {
  std::size_t begin = 0;
  std::size_t end = 0;
  bool done = false;
  bool failed = false;
  std::string error;
  bool queued = false;
  std::size_t live_dispatches = 0;
  std::vector<std::size_t> dispatched_to;  ///< worker slots ever handed this group
};

ShardPool::ShardPool(ShardConfig config) : cfg_(std::move(config)) {
  XLDS_REQUIRE_MSG(cfg_.shards >= 1, "a shard pool needs at least one worker");
  XLDS_REQUIRE_MSG(cfg_.evaluator || !cfg_.exec_path.empty(),
                   "ShardConfig needs an evaluator (fork mode) or an exec_path");
  if (cfg_.inflight_per_worker == 0) cfg_.inflight_per_worker = 1;
  if (cfg_.max_points_per_request == 0) cfg_.max_points_per_request = 1;
  if (cfg_.worker_threads == 0)
    cfg_.worker_threads = std::max<std::size_t>(1, parallel_thread_count() / cfg_.shards);
#ifdef XLDS_SHARD_TSAN
  cfg_.worker_threads = 1;
#endif
  workers_.resize(cfg_.shards);
  for (std::size_t slot = 0; slot < workers_.size(); ++slot) spawn(slot);
}

ShardPool::~ShardPool() {
  for (Worker& w : workers_) shutdown_worker(w, /*send_shutdown=*/true);
}

void ShardPool::spawn(std::size_t slot) {
  Worker& w = workers_[slot];
  int sv[2];
  XLDS_REQUIRE_MSG(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) == 0,
                   "socketpair failed: " << std::strerror(errno));

  parallel_quiesce_for_fork();
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(sv[0]);
    ::close(sv[1]);
    XLDS_REQUIRE_MSG(false, "fork failed: " << std::strerror(errno));
  }

  if (pid == 0) {
    // Child: keep only our end of our own channel; the parent-side fds of
    // sibling workers must not survive into this process, or a sibling's
    // death would never surface as EOF at the parent.
    ::close(sv[0]);
    for (const Worker& other : workers_)
      if (other.fd >= 0) ::close(other.fd);
    if (!cfg_.exec_path.empty()) {
      char fd_str[16];
      std::snprintf(fd_str, sizeof fd_str, "%d", sv[1]);
      ::execl(cfg_.exec_path.c_str(), cfg_.exec_path.c_str(), "--fd", fd_str,
              static_cast<char*>(nullptr));
      std::fprintf(stderr, "xlds-shard: exec '%s' failed: %s\n", cfg_.exec_path.c_str(),
                   std::strerror(errno));
      ::_exit(41);
    }
    WorkerInit init;
    init.job.application = cfg_.application;
    init.job.evaluate = cfg_.evaluator;
    ::_exit(serve_worker(sv[1], init));
  }

  // Parent.
  ::close(sv[1]);
  w.fd = sv[0];
  w.pid = pid;
  w.alive = true;
  w.outstanding.clear();

  Hello hello;
  hello.job_hash = cfg_.job_hash;
  hello.worker_threads = static_cast<std::uint32_t>(cfg_.worker_threads);
  hello.job_json = cfg_.job_json;

  std::string body;
  HelloAck ack;
  const bool ok = write_frame(w.fd, encode_hello(hello)) &&
                  read_frame(w.fd, body) == ReadStatus::kOk && decode_hello_ack(body, ack);
  if (!ok) {
    shutdown_worker(w, /*send_shutdown=*/false);
    XLDS_REQUIRE_MSG(false, "shard worker " << slot << " died during the handshake");
  }
  if (ack.job_hash != cfg_.job_hash) {
    shutdown_worker(w, /*send_shutdown=*/false);
    XLDS_REQUIRE_MSG(false, "shard worker " << slot << " derived job hash " << std::hex
                                            << ack.job_hash << ", parent has " << cfg_.job_hash
                                            << " — worker binary out of sync with this build?");
  }
}

void ShardPool::shutdown_worker(Worker& w, bool send_shutdown) {
  if (w.fd >= 0) {
    if (send_shutdown && w.alive) write_frame(w.fd, encode_shutdown());
    ::close(w.fd);
    w.fd = -1;
  }
  if (w.pid > 0) {
    // Grace period: the worker exits on Shutdown (or on EOF from the close
    // above) once it drains any in-flight duplicate requests.
    for (int i = 0; i < 500 && w.pid > 0; ++i) {
      const pid_t r = ::waitpid(w.pid, nullptr, WNOHANG);
      if (r != 0) w.pid = -1;
      if (w.pid > 0) {
        const struct timespec ts = {0, 10 * 1000 * 1000};
        ::nanosleep(&ts, nullptr);
      }
    }
    if (w.pid > 0) {
      ::kill(w.pid, SIGKILL);
      ::waitpid(w.pid, nullptr, 0);
      w.pid = -1;
    }
  }
  w.alive = false;
}

BatchResult ShardPool::evaluate(const std::vector<BatchItem>& items, std::uint32_t tier) {
  BatchResult out;
  out.foms.resize(items.size());
  if (items.empty()) return out;
  ++batch_generation_;

  // Group size: aim for ~4 groups per worker so the tail stays short, capped
  // so a request's results always fit comfortably in the socket buffer.
  const std::size_t n = items.size();
  const std::size_t target = std::max<std::size_t>(1, n / (workers_.size() * 4));
  const std::size_t group_points = std::min(cfg_.max_points_per_request, target);

  std::vector<Group> groups;
  groups.reserve((n + group_points - 1) / group_points);
  for (std::size_t b = 0; b < n; b += group_points) {
    Group g;
    g.begin = b;
    g.end = std::min(b + group_points, n);
    groups.push_back(std::move(g));
  }

  std::deque<std::size_t> pending;
  for (std::size_t gid = 0; gid < groups.size(); ++gid) {
    pending.push_back(gid);
    groups[gid].queued = true;
  }
  std::size_t done_groups = 0;
  std::size_t merged_points = 0;

  const auto enqueue_front = [&](std::size_t gid) {
    Group& g = groups[gid];
    if (!g.done && !g.queued && g.live_dispatches == 0) {
      pending.push_front(gid);
      g.queued = true;
    }
  };

  const auto send_group = [&](std::size_t slot, std::size_t gid) -> bool {
    Worker& w = workers_[slot];
    Group& g = groups[gid];
    EvalRequest req;
    req.request_id = next_request_id_++;
    req.tier = tier;
    req.points.reserve(g.end - g.begin);
    for (std::size_t k = g.begin; k < g.end; ++k) {
      WirePoint p;
      p.index = items[k].index;
      p.device = static_cast<std::uint32_t>(items[k].point.device);
      p.arch = static_cast<std::uint32_t>(items[k].point.arch);
      p.algo = static_cast<std::uint32_t>(items[k].point.algo);
      req.points.push_back(p);
    }
    if (!write_frame(w.fd, encode_eval_request(req))) return false;
    w.outstanding.push_back(req.request_id);
    request_group_[req.request_id] = {batch_generation_, gid};
    ++g.live_dispatches;
    g.dispatched_to.push_back(slot);
    ++stats_.requests;
    stats_.points += g.end - g.begin;
    return true;
  };

  // handle_death / top_up recurse through each other (a failed send while
  // topping up is a death; a respawn wants an immediate top-up), hence the
  // std::function forward declaration.
  std::function<void(std::size_t)> handle_death;

  const auto top_up = [&](std::size_t slot) {
    while (workers_[slot].alive &&
           workers_[slot].outstanding.size() < cfg_.inflight_per_worker && !pending.empty()) {
      const std::size_t gid = pending.front();
      pending.pop_front();
      groups[gid].queued = false;
      if (groups[gid].done) continue;
      if (!send_group(slot, gid)) {
        enqueue_front(gid);
        handle_death(slot);
        return;
      }
    }
  };

  // Steal by redispatch: an idle worker with nothing pending duplicates the
  // in-flight group with the fewest live copies that it has never been
  // handed itself.  First result wins; duplicates are bit-identical.
  const auto try_steal = [&](std::size_t slot) {
    Worker& w = workers_[slot];
    if (!w.alive || !w.outstanding.empty() || !pending.empty()) return;
    std::size_t best = SIZE_MAX;
    std::size_t best_copies = SIZE_MAX;
    for (std::size_t gid = 0; gid < groups.size(); ++gid) {
      const Group& g = groups[gid];
      if (g.done || g.live_dispatches == 0 || g.live_dispatches >= best_copies) continue;
      if (std::find(g.dispatched_to.begin(), g.dispatched_to.end(), slot) !=
          g.dispatched_to.end())
        continue;
      best = gid;
      best_copies = g.live_dispatches;
    }
    if (best == SIZE_MAX) return;
    ++stats_.redispatches;
    if (!send_group(slot, best)) handle_death(slot);
  };

  handle_death = [&](std::size_t slot) {
    Worker& w = workers_[slot];
    if (!w.alive) return;
    w.alive = false;
    ::close(w.fd);
    w.fd = -1;
    if (w.pid > 0) {
      ::kill(w.pid, SIGKILL);  // a write-side failure can leave it running
      ::waitpid(w.pid, nullptr, 0);
      w.pid = -1;
    }
    // Re-queue its unacknowledged groups *ahead* of pending work, preserving
    // their dispatch order (reverse iteration + push_front), unless a
    // duplicate is still alive elsewhere.
    for (auto it = w.outstanding.rbegin(); it != w.outstanding.rend(); ++it) {
      const auto entry = request_group_.find(*it);
      if (entry == request_group_.end()) continue;
      const auto [gen, gid] = entry->second;
      request_group_.erase(entry);
      if (gen != batch_generation_) continue;
      --groups[gid].live_dispatches;
      enqueue_front(gid);
    }
    w.outstanding.clear();

    if (stats_.respawns < cfg_.max_respawns) {
      ++stats_.respawns;
      spawn(slot);  // throws if the respawn handshake fails
      return;
    }
    bool any_alive = false;
    for (const Worker& other : workers_) any_alive = any_alive || other.alive;
    XLDS_REQUIRE_MSG(any_alive, "all shard workers died (respawn budget of "
                                    << cfg_.max_respawns << " exhausted)");
  };

  const auto ack_request = [&](Worker& w, std::uint64_t rid) {
    const auto it = std::find(w.outstanding.begin(), w.outstanding.end(), rid);
    if (it != w.outstanding.end()) w.outstanding.erase(it);
  };

  const auto fire_kill_hook = [&] {
    if (cfg_.kill_worker_after_results == 0 || kill_hook_fired_ ||
        merged_points < cfg_.kill_worker_after_results)
      return;
    kill_hook_fired_ = true;
    // Prefer a worker that still has work in flight so the recovery path
    // (re-queue + respawn + redispatch) is actually exercised.
    std::size_t victim = SIZE_MAX;
    for (std::size_t slot = 0; slot < workers_.size(); ++slot) {
      if (!workers_[slot].alive) continue;
      if (victim == SIZE_MAX) victim = slot;
      if (!workers_[slot].outstanding.empty()) {
        victim = slot;
        break;
      }
    }
    if (victim != SIZE_MAX) {
      ::kill(workers_[victim].pid, SIGKILL);
      handle_death(victim);
    }
  };

  std::string body;
  std::vector<struct pollfd> fds;
  std::vector<std::size_t> fd_slots;
  while (done_groups < groups.size()) {
    for (std::size_t slot = 0; slot < workers_.size(); ++slot) top_up(slot);
    for (std::size_t slot = 0; slot < workers_.size(); ++slot) try_steal(slot);
    if (done_groups >= groups.size()) break;

    fds.clear();
    fd_slots.clear();
    for (std::size_t slot = 0; slot < workers_.size(); ++slot) {
      if (!workers_[slot].alive) continue;
      fds.push_back({workers_[slot].fd, POLLIN, 0});
      fd_slots.push_back(slot);
    }
    XLDS_ASSERT(!fds.empty());  // handle_death throws before we get here dead

    const int rc = ::poll(fds.data(), static_cast<nfds_t>(fds.size()), -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      XLDS_REQUIRE_MSG(false, "poll on shard workers failed: " << std::strerror(errno));
    }

    for (std::size_t i = 0; i < fds.size(); ++i) {
      if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      const std::size_t slot = fd_slots[i];
      Worker& w = workers_[slot];
      if (!w.alive || w.fd != fds[i].fd) continue;  // died/respawned this pass

      const ReadStatus s = read_frame(w.fd, body);
      if (s != ReadStatus::kOk) {
        handle_death(slot);
        continue;
      }
      MsgType type;
      if (!decode_type(body, type)) {
        handle_death(slot);
        continue;
      }

      if (type == MsgType::kEvalResult) {
        EvalResult res;
        if (!decode_eval_result(body, res)) {
          handle_death(slot);
          continue;
        }
        ack_request(w, res.request_id);
        const auto entry = request_group_.find(res.request_id);
        if (entry == request_group_.end()) continue;  // stale duplicate
        const auto [gen, gid] = entry->second;
        request_group_.erase(entry);
        if (gen != batch_generation_) continue;
        Group& g = groups[gid];
        --g.live_dispatches;
        if (g.done) continue;  // a duplicate already delivered these bytes
        if (res.tier != tier || res.foms.size() != g.end - g.begin) {
          handle_death(slot);  // protocol violation: distrust the worker
          enqueue_front(gid);
          continue;
        }
        for (std::size_t k = 0; k < res.foms.size(); ++k)
          out.foms[g.begin + k] = std::move(res.foms[k]);
        out.busy_ns += res.busy_ns;
        core::Profiler::NodalCounts& nd = out.nodal;
        nd.factorizations += res.nodal.factorizations;
        nd.direct_solves += res.nodal.direct_solves;
        nd.gs_solves += res.nodal.gs_solves;
        nd.incremental_updates += res.nodal.incremental_updates;
        nd.updated_cells += res.nodal.updated_cells;
        nd.update_declines += res.nodal.update_declines;
        nd.drift_refactorizations += res.nodal.drift_refactorizations;
        core::Profiler::SchedCounts& sd = out.sched;
        sd.jobs += res.sched.jobs;
        sd.inline_jobs += res.sched.inline_jobs;
        sd.tasks += res.sched.tasks;
        sd.stolen_tasks += res.sched.stolen_tasks;
        sd.steal_failures += res.sched.steal_failures;
        sd.nested_cooperative += res.sched.nested_cooperative;
        sd.nested_inlined += res.sched.nested_inlined;
        g.done = true;
        ++done_groups;
        merged_points += g.end - g.begin;
        fire_kill_hook();
      } else if (type == MsgType::kEvalError) {
        EvalError errm;
        if (!decode_eval_error(body, errm)) {
          handle_death(slot);
          continue;
        }
        ack_request(w, errm.request_id);
        const auto entry = request_group_.find(errm.request_id);
        if (entry == request_group_.end()) continue;
        const auto [gen, gid] = entry->second;
        request_group_.erase(entry);
        if (gen != batch_generation_) continue;
        Group& g = groups[gid];
        --g.live_dispatches;
        if (g.done) continue;
        g.done = true;
        g.failed = true;
        g.error = errm.message;
        ++done_groups;
      } else {
        handle_death(slot);  // a worker must only send results and errors
      }
    }
  }

  // Deterministic failure semantics: like the in-process scheduler's
  // lowest-chunk-wins rule, the failure at the lowest batch position is the
  // one the caller sees (evaluator exceptions are XLDS_REQUIRE-style
  // precondition failures, so the type is preserved across the wire).
  const Group* first_failed = nullptr;
  for (const Group& g : groups)
    if (g.failed && (first_failed == nullptr || g.begin < first_failed->begin))
      first_failed = &g;
  if (first_failed != nullptr) throw PreconditionError(first_failed->error);

  return out;
}

}  // namespace xlds::shard
