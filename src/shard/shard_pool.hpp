// Multi-process evaluation shard pool.
//
// Why processes and not just the in-process thread pool: the heavy fidelity
// tiers sit on top of memoized per-device caches (IR-drop envelopes, Monte
// Carlo probe curves) guarded by mutexes that serialise first-touch, and a
// single address space caps the useful width at one machine's cores anyway.
// Forked shards give each worker its own cache arena and scheduler, and the
// same protocol runs an exec'd worker binary (tools/xlds-shard-worker), the
// stepping stone to distributing shards across machines.
//
// Determinism contract (inherits the journal's): sharding changes *where* a
// point is priced, never *what* it evaluates to.  The pool guarantees the
// FOMs it returns for a batch are exactly what in-process evaluation would
// have produced, in the same caller-visible order, because
//
//   1. the caller hands the batch already sorted (the engine's LPT order) and
//      results are merged back by batch position, not by arrival time;
//   2. every worker runs the same pure evaluator, so a request dispatched
//      twice — work stealing below is *steal by redispatch* — returns
//      bit-identical bytes whichever copy lands first;
//   3. a SIGKILLed worker only loses un-acknowledged requests, which are
//      re-queued ahead of pending work and charged once by the engine's
//      first-request ledger rule exactly as if the crash never happened.
//
// Dispatch: the batch is cut into contiguous groups of at most
// `max_points_per_request` points; each worker keeps up to
// `inflight_per_worker` requests in flight (so the socket hides latency).
// When the queue drains, an idle worker is handed a *duplicate* of the
// in-flight group with the fewest copies — the slow-shard tail shrinks to
// one group's cost without any result ever depending on who won.
//
// Fork safety: every spawn calls parallel_quiesce_for_fork() first (see
// util/parallel.hpp for the contract), so the child is born single-threaded
// and rebuilds its own pool lazily at the width the Hello names.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include <sys/types.h>

#include "shard/worker.hpp"

namespace xlds::shard {

/// Validated XLDS_SHARDS (warning + fallback on garbage); 1 when unset.
std::size_t env_shard_count();

struct ShardConfig {
  std::size_t shards = 2;
  /// Pool width each worker runs at; 0 = parent width / shards (min 1).
  /// Clamped to 1 when built under ThreadSanitizer (a forked child must not
  /// create threads under TSan).
  std::size_t worker_threads = 0;
  std::size_t inflight_per_worker = 2;
  std::size_t max_points_per_request = 32;
  /// Worker deaths tolerated before the pool gives up respawning; the pool
  /// only throws once no worker is left alive.
  std::size_t max_respawns = 8;

  std::uint64_t job_hash = 0;   ///< identity every worker must ack
  std::string job_json;         ///< job spec an exec'd worker rebuilds from
  std::string application;      ///< application bound to every wire point
  PointEvaluator evaluator;     ///< fork mode evaluator (required unless exec)
  /// Non-empty: spawn this binary (fork + exec) instead of forking the
  /// evaluator closure.  The binary must speak the worker protocol on the fd
  /// passed via --fd (tools/xlds-shard-worker does).
  std::string exec_path;

  /// Test hook: SIGKILL worker 0 once this many point results have merged
  /// (0 = off) — drives the crash-recovery tests deterministically.
  std::size_t kill_worker_after_results = 0;
};

struct ShardStats {
  std::size_t requests = 0;      ///< EvalRequests dispatched (incl. duplicates)
  std::size_t points = 0;        ///< points dispatched (incl. duplicates)
  std::size_t redispatches = 0;  ///< steal-by-redispatch duplicates issued
  std::size_t respawns = 0;      ///< workers respawned after dying
};

struct BatchItem {
  std::uint64_t index = 0;  ///< caller's identity for the point (echoed back)
  core::DesignPoint point;
};

struct BatchResult {
  std::vector<core::Fom> foms;  ///< aligned with the input items
  std::uint64_t busy_ns = 0;    ///< summed worker evaluation wall time
  core::Profiler::NodalCounts nodal{};  ///< summed worker profiler deltas
  core::Profiler::SchedCounts sched{};
};

class ShardPool {
 public:
  /// Spawns and handshakes every worker; throws if any worker acks the wrong
  /// job hash or dies during the handshake.
  explicit ShardPool(ShardConfig config);

  /// Sends Shutdown, waits briefly, SIGKILLs stragglers.
  ~ShardPool();

  ShardPool(const ShardPool&) = delete;
  ShardPool& operator=(const ShardPool&) = delete;

  /// Evaluate one batch at one tier across the shards.  `items` should
  /// already be in the order the caller wants results consumed (the engine
  /// passes LPT order); foms come back aligned with it.  If any point's
  /// evaluation threw in a worker, rethrows the failure at the lowest batch
  /// position after the batch completes — matching the in-process
  /// lowest-chunk-wins rule.  Duplicate results from redispatched requests
  /// are bit-identical, so whichever arrives first is merged and the rest
  /// are dropped.
  BatchResult evaluate(const std::vector<BatchItem>& items, std::uint32_t tier);

  std::size_t shards() const noexcept { return workers_.size(); }
  const ShardStats& stats() const noexcept { return stats_; }

 private:
  struct Worker {
    int fd = -1;
    pid_t pid = -1;
    bool alive = false;
    std::vector<std::uint64_t> outstanding;  ///< request ids awaiting a reply
  };

  struct Group;  // per-batch dispatch unit (defined in the .cpp)

  void spawn(std::size_t slot);
  void shutdown_worker(Worker& w, bool send_shutdown);

  ShardConfig cfg_;
  std::vector<Worker> workers_;
  ShardStats stats_;
  std::uint64_t next_request_id_ = 1;
  /// request id -> (batch generation, group index); stale entries from
  /// duplicate requests that outlived their batch are dropped on arrival.
  std::unordered_map<std::uint64_t, std::pair<std::uint64_t, std::size_t>> request_group_;
  std::uint64_t batch_generation_ = 0;
  bool kill_hook_fired_ = false;
};

}  // namespace xlds::shard
