#include "xbar/crossbar.hpp"

#include <algorithm>
#include <cmath>
#include <iostream>
#include <utility>

#include "core/counters.hpp"
#include "kernels/mvm.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"

namespace xlds::xbar {

namespace {
constexpr std::uint64_t kXbarStreamTag = 0xC205BA2;

// Collects a mutation's changed cells up to a policy-relevant bound.  Past
// the bound only the fact that the patch is oversized matters — the
// incremental policy declines on the count alone — so the list stops
// growing and a full-array mutation never materialises a full-array vector.
struct DeltaPatch {
  explicit DeltaPatch(std::size_t bound) : bound_(bound) {}
  void add(std::size_t r, std::size_t c, double g_new) {
    if (deltas.size() <= bound_) deltas.push_back(CellDelta{r, c, g_new});
    ++count;
  }
  std::vector<CellDelta> deltas;
  std::size_t count = 0;

 private:
  std::size_t bound_;
};

// Upper bound on the incremental batch cap note_cell_updates() can resolve
// (the true factor bandwidth is at most 2*min(rows, cols)), so a DeltaPatch
// with this bound always stores every cell of a patch the policy could
// accept.
std::size_t patch_bound(const CrossbarConfig& cfg) {
  const std::size_t bw_est = 2 * std::min(cfg.rows, cfg.cols);
  return cfg.nodal_update_batch_limit != 0 ? cfg.nodal_update_batch_limit
                                           : std::max<std::size_t>(1, bw_est / 8);
}
}  // namespace

std::string to_string(IrDropMode mode) {
  switch (mode) {
    case IrDropMode::kNone: return "none";
    case IrDropMode::kAnalytic: return "analytic";
    case IrDropMode::kNodal: return "nodal";
  }
  return "?";
}

Crossbar::Crossbar(CrossbarConfig config, Rng& rng)
    : config_(config),
      model_(config.rram),
      wire_r_per_cell_(device::tech_node(config.tech).wire_r_per_m * config.cell_pitch_f *
                       device::tech_node(config.tech).feature_m),
      rng_(rng.fork(kXbarStreamTag)),
      g_(config.rows, config.cols, config.rram.g_min),
      stuck_(config.rows, config.cols, 0),
      adc_dead_(config.cols, 0) {
  XLDS_REQUIRE(config_.rows >= 1 && config_.cols >= 1);
  XLDS_REQUIRE(config_.read_voltage > 0.0);
  XLDS_REQUIRE(config_.adcs_per_array >= 1);
  XLDS_REQUIRE(config_.settle_time > 0.0);
  XLDS_REQUIRE(config_.nodal_max_iters >= 1);
}

Crossbar::Crossbar(const Crossbar& other)
    : config_(other.config_),
      model_(other.model_),
      wire_r_per_cell_(other.wire_r_per_cell_),
      rng_(other.rng_),
      g_(other.g_),
      stuck_(other.stuck_),
      adc_dead_(other.adc_dead_),
      weights_(other.weights_) {}

Crossbar::Crossbar(Crossbar&& other) noexcept
    : config_(std::move(other.config_)),
      model_(std::move(other.model_)),
      wire_r_per_cell_(other.wire_r_per_cell_),
      rng_(other.rng_),
      g_(std::move(other.g_)),
      stuck_(std::move(other.stuck_)),
      adc_dead_(std::move(other.adc_dead_)),
      weights_(std::move(other.weights_)) {}

void Crossbar::invalidate_nodal_cache() {
  std::lock_guard<std::mutex> lk(nodal_cache_.mu);
  nodal_cache_.solver = nullptr;
  nodal_cache_.attempted = false;
  nodal_cache_.warm = false;
  nodal_cache_.warm_v = MatrixD{};
  nodal_cache_.warm_u = MatrixD{};
  nodal_cache_.warm_vin.clear();
}

std::shared_ptr<const NodalSolver> Crossbar::ensure_factorized() const {
  NodalCache& cache = nodal_cache_;
  std::lock_guard<std::mutex> lk(cache.mu);
  if (!cache.attempted) {
    cache.attempted = true;
    auto solver = std::make_shared<NodalSolver>();
    if (solver->factorize(g_, 1.0 / wire_r_per_cell_, config_.nodal_direct_max_bytes))
      cache.solver = std::move(solver);
  }
  if (cache.solver != nullptr && cache.solver->ready()) return cache.solver;
  return nullptr;
}

std::shared_ptr<const NodalSolver> Crossbar::refactorize_fresh() const {
  NodalCache& cache = nodal_cache_;
  std::lock_guard<std::mutex> lk(cache.mu);
  core::Profiler::count_drift_refactorization();
  cache.attempted = true;
  auto solver = std::make_shared<NodalSolver>();
  if (solver->factorize(g_, 1.0 / wire_r_per_cell_, config_.nodal_direct_max_bytes)) {
    cache.solver = std::move(solver);
    return cache.solver;
  }
  cache.solver = nullptr;
  return nullptr;
}

void Crossbar::note_cell_updates(const CellDelta* deltas, std::size_t count) {
  NodalCache& cache = nodal_cache_;
  std::lock_guard<std::mutex> lk(cache.mu);
  // The Gauss-Seidel warm iterate belongs to the previous programming state.
  cache.warm = false;
  cache.warm_v = MatrixD{};
  cache.warm_u = MatrixD{};
  cache.warm_vin.clear();
  if (cache.solver == nullptr || !cache.solver->ready()) {
    cache.solver = nullptr;
    cache.attempted = false;
    return;
  }
  const std::size_t bw = cache.solver->bandwidth();
  const std::size_t batch_cap = config_.nodal_update_batch_limit != 0
                                    ? config_.nodal_update_batch_limit
                                    : std::max<std::size_t>(1, bw / 8);
  const std::size_t total_cap = config_.nodal_update_limit != 0
                                    ? config_.nodal_update_limit
                                    : std::max<std::size_t>(16, bw / 2);
  // Count-based declines short-circuit before update_cells, so an oversized
  // DeltaPatch may legally pass a count beyond its stored prefix.
  if (!config_.nodal_incremental || count > batch_cap ||
      cache.solver->updates_applied() + count > total_cap ||
      !cache.solver->update_cells(deltas, count)) {
    core::Profiler::count_update_decline();
    cache.solver = nullptr;
    cache.attempted = false;
  }
}

bool Crossbar::nodal_factorized() const {
  std::lock_guard<std::mutex> lk(nodal_cache_.mu);
  return nodal_cache_.solver != nullptr && nodal_cache_.solver->ready();
}

std::size_t Crossbar::nodal_updates_applied() const {
  std::lock_guard<std::mutex> lk(nodal_cache_.mu);
  return nodal_cache_.solver != nullptr ? nodal_cache_.solver->updates_applied() : 0;
}

void Crossbar::program_conductances(const MatrixD& targets) {
  XLDS_REQUIRE_MSG(targets.rows() == config_.rows && targets.cols() == config_.cols,
                   "conductance matrix " << targets.rows() << 'x' << targets.cols()
                                         << " does not fit " << config_.rows << 'x'
                                         << config_.cols << " array");
  const auto& p = model_.params();
  DeltaPatch patch(patch_bound(config_));
  for (std::size_t r = 0; r < config_.rows; ++r) {
    for (std::size_t c = 0; c < config_.cols; ++c) {
      if (stuck_(r, c)) continue;  // defects ignore programming
      const double target = std::clamp(targets(r, c), p.g_min, p.g_max);
      const double val = config_.apply_variation ? model_.program_verify(target, rng_) : target;
      if (val != g_(r, c)) {
        g_(r, c) = val;
        patch.add(r, c, val);
      }
    }
  }
  weights_ = MatrixD{};
  // A re-program that lands every cell exactly where it was (e.g. identical
  // noiseless targets) changes nothing electrically: the factorization and
  // warm iterate stay valid.
  if (patch.count != 0) note_cell_updates(patch.deltas.data(), patch.count);
}

void Crossbar::program_cells(const std::vector<CellDelta>& cells) {
  const auto& p = model_.params();
  DeltaPatch patch(patch_bound(config_));
  for (const CellDelta& cell : cells) {
    XLDS_REQUIRE_MSG(cell.row < config_.rows && cell.col < config_.cols,
                     "cell (" << cell.row << ',' << cell.col << ") outside " << config_.rows
                              << 'x' << config_.cols << " array");
    if (stuck_(cell.row, cell.col)) continue;  // defects ignore programming
    const double target = std::clamp(cell.g_new, p.g_min, p.g_max);
    const double val = config_.apply_variation ? model_.program_verify(target, rng_) : target;
    if (val != g_(cell.row, cell.col)) {
      g_(cell.row, cell.col) = val;
      patch.add(cell.row, cell.col, val);
    }
  }
  if (patch.count != 0) note_cell_updates(patch.deltas.data(), patch.count);
}

void Crossbar::program_weights(const MatrixD& weights) {
  XLDS_REQUIRE_MSG(weights.cols() * 2 == config_.cols,
                   "differential weights need " << weights.cols() * 2 << " physical columns, have "
                                                << config_.cols);
  XLDS_REQUIRE(weights.rows() == config_.rows);
  const auto& p = model_.params();
  MatrixD targets(config_.rows, config_.cols, p.g_min);
  for (std::size_t r = 0; r < weights.rows(); ++r) {
    for (std::size_t j = 0; j < weights.cols(); ++j) {
      const double w = std::clamp(weights(r, j), -1.0, 1.0);
      targets(r, 2 * j) = p.g_min + (p.g_max - p.g_min) * std::max(w, 0.0);
      targets(r, 2 * j + 1) = p.g_min + (p.g_max - p.g_min) * std::max(-w, 0.0);
    }
  }
  program_conductances(targets);
  weights_ = weights;
}

void Crossbar::program_stochastic_hrs() {
  for (std::size_t r = 0; r < config_.rows; ++r)
    for (std::size_t c = 0; c < config_.cols; ++c)
      if (!stuck_(r, c)) g_(r, c) = model_.sample_hrs(rng_);
  weights_ = MatrixD{};
  invalidate_nodal_cache();
}

void Crossbar::age(double dt) {
  XLDS_REQUIRE(dt >= 0.0);
  DeltaPatch patch(patch_bound(config_));
  for (std::size_t r = 0; r < config_.rows; ++r) {
    for (std::size_t c = 0; c < config_.cols; ++c) {
      if (stuck_(r, c)) continue;
      const double g_new = model_.relax(g_(r, c), dt, rng_);
      if (g_new != g_(r, c)) {
        g_(r, c) = g_new;
        patch.add(r, c, g_new);
      }
    }
  }
  if (patch.count != 0) note_cell_updates(patch.deltas.data(), patch.count);
}

void Crossbar::inject_stuck_fault(std::size_t row, std::size_t col, double g_stuck) {
  XLDS_REQUIRE(row < config_.rows && col < config_.cols);
  XLDS_REQUIRE(g_stuck >= 0.0);
  stuck_(row, col) = 1;
  // Lower bound is 0 (an open cell draws no current), upper the device max.
  const double g_new = std::clamp(g_stuck, 0.0, config_.rram.g_max);
  if (g_new == g_(row, col)) return;  // electrically unchanged
  g_(row, col) = g_new;
  const CellDelta delta{row, col, g_new};
  note_cell_updates(&delta, 1);
}

void Crossbar::apply_fault_map(const fault::FaultMap& map) {
  XLDS_REQUIRE_MSG(map.rows() == config_.rows && map.cols() == config_.cols,
                   "fault map " << map.rows() << 'x' << map.cols() << " does not fit "
                                << config_.rows << 'x' << config_.cols << " array");
  DeltaPatch patch(patch_bound(config_));
  for (std::size_t r = 0; r < config_.rows; ++r) {
    for (std::size_t c = 0; c < config_.cols; ++c) {
      double pin = 0.0;
      switch (map.effective(r, c)) {
        case fault::CellFault::kNone: continue;
        case fault::CellFault::kStuckOn: pin = config_.rram.g_max; break;
        case fault::CellFault::kStuckOff: pin = config_.rram.g_min; break;
        case fault::CellFault::kOpen: pin = 0.0; break;
      }
      stuck_(r, c) = 1;
      const double g_new = std::clamp(pin, 0.0, config_.rram.g_max);
      if (g_new != g_(r, c)) {
        g_(r, c) = g_new;
        patch.add(r, c, g_new);
      }
    }
  }
  for (std::size_t c = 0; c < config_.cols; ++c)
    if (map.col_sense_dead(c)) adc_dead_[c] = 1;
  if (patch.count != 0) note_cell_updates(patch.deltas.data(), patch.count);
}

std::size_t Crossbar::dead_adc_lanes() const {
  std::size_t n = 0;
  for (std::uint8_t d : adc_dead_) n += d;
  return n;
}

std::size_t Crossbar::inject_random_stuck_faults(double fraction, double g_stuck) {
  XLDS_REQUIRE(fraction >= 0.0 && fraction <= 1.0);
  std::size_t count = 0;
  for (std::size_t r = 0; r < config_.rows; ++r) {
    for (std::size_t c = 0; c < config_.cols; ++c) {
      if (!stuck_(r, c) && rng_.bernoulli(fraction)) {
        inject_stuck_fault(r, c, g_stuck);
        ++count;
      }
    }
  }
  return count;
}

std::size_t Crossbar::stuck_cell_count() const {
  std::size_t n = 0;
  for (std::uint8_t v : stuck_.data()) n += v;
  return n;
}

double Crossbar::conductance(std::size_t row, std::size_t col) const {
  XLDS_REQUIRE(row < config_.rows && col < config_.cols);
  return g_(row, col);
}

std::vector<double> Crossbar::currents_ideal(const std::vector<double>& v_in) const {
  // Same accumulation order (and zero-row skip) as the old in-place loop;
  // the kernel adds the restrict qualification and column tiling.
  std::vector<double> out(config_.cols);
  kernels::matvec_t(g_.data().data(), config_.rows, config_.cols, v_in.data(), out.data());
  return out;
}

std::vector<double> Crossbar::currents_analytic(const std::vector<double>& v_in) const {
  // Two-pass fixed point: compute cell currents at nominal voltages, derive
  // row/column wire drops from the accumulated currents, then recompute cell
  // currents at the depressed voltages.  Captures the first-order IR-drop
  // signature (far corner sees the largest deficit) at O(RC) cost.
  const std::size_t R = config_.rows, C = config_.cols;
  MatrixD i_cell(R, C, 0.0);
  for (std::size_t r = 0; r < R; ++r)
    kernels::scale(g_.row_data(r), v_in[r], i_cell.row_data(r), C);

  std::vector<double> out(C, 0.0);
  // Row drops: driver on the left; segment k carries the suffix sum of
  // currents at columns >= k.  One scratch vector serves every row (and is
  // reused for the column pass below) — the per-row allocation was O(R+C)
  // vectors per MVM on the hottest sweep path.
  MatrixD v_eff(R, C, 0.0);
  std::vector<double> partial(std::max(R, C) + 1, 0.0);
  for (std::size_t r = 0; r < R; ++r) {
    partial[C] = 0.0;
    for (std::size_t c = C; c-- > 0;) partial[c] = partial[c + 1] + i_cell(r, c);
    double drop = 0.0;
    for (std::size_t c = 0; c < C; ++c) {
      drop += wire_r_per_cell_ * partial[c];
      v_eff(r, c) = v_in[r] - drop;
    }
  }
  // Column drops: ADC (virtual ground) at the bottom; segment below row k
  // carries the prefix sum of currents at rows <= k.
  for (std::size_t c = 0; c < C; ++c) {
    partial[0] = 0.0;
    for (std::size_t r = 0; r < R; ++r) partial[r + 1] = partial[r] + i_cell(r, c);
    double drop = 0.0;
    for (std::size_t r = R; r-- > 0;) {
      drop += wire_r_per_cell_ * partial[r + 1];
      v_eff(r, c) -= drop;
    }
  }
  for (std::size_t r = 0; r < R; ++r) {
    const double* __restrict gr = g_.row_data(r);
    const double* __restrict ve = v_eff.row_data(r);
    double* __restrict po = out.data();
    for (std::size_t c = 0; c < C; ++c) po[c] += gr[c] * std::max(ve[c], 0.0);
  }
  return out;
}

std::vector<double> Crossbar::currents_nodal(const std::vector<double>& v_in,
                                             SolveStatus& status) const {
  if (config_.nodal_direct) {
    if (auto solver = ensure_factorized()) {
      std::vector<double> out(config_.cols);
      NodalSolver::Workspace ws;
      NodalSolver::Result res = solver->solve(v_in.data(), out.data(), ws);
      const double tol = kNodalTolRel * config_.read_voltage;
      if (!(res.residual < tol) && solver->updates_applied() > 0) {
        // The Jacobi-scaled residual is the drift detector for incrementally
        // updated factors: a miss with updates applied means accumulated
        // rank-1 round-off, not conditioning.  Refactorize from the exact
        // conductances and retry once.
        if (auto fresh = refactorize_fresh()) {
          solver = std::move(fresh);
          res = solver->solve(v_in.data(), out.data(), ws);
        }
      }
      status = SolveStatus{};
      status.direct = true;
      status.residual = res.residual;
      status.converged = res.residual < tol;
      if (status.converged) return out;
      // Residual above the Gauss-Seidel acceptance bar (pathological
      // conditioning): fall through to the iterative cross-check rather than
      // return a worse answer than the tolerance promises.
    }
  }
  return currents_nodal_gs(v_in, status);
}

std::vector<double> Crossbar::currents_nodal_gs(const std::vector<double>& v_in,
                                                SolveStatus& status) const {
  // Red-black Gauss-Seidel nodal solve of the two-wire-layer resistive
  // network.  Nodes are coloured by (r + c) parity; within one colour the
  // row-node update only reads same-cell and same-row opposite-colour
  // neighbours, and the column-node update only reads opposite-colour
  // neighbours in adjacent rows — so all rows of one colour can relax
  // concurrently with no races, and the update order (hence the iterate
  // sequence and iteration count) is fixed regardless of thread count.
  core::Profiler::count_gs_solve();
  const std::size_t R = config_.rows, C = config_.cols;
  const double gw = 1.0 / wire_r_per_cell_;
  MatrixD v(R, C, 0.0);  // row-wire node voltages
  MatrixD u(R, C, 0.0);  // column-wire node voltages
  bool warmed = false;
  if (config_.nodal_warm_start) {
    // Start from the previous converged iterate when one exists: repeated or
    // similar queries then converge in a handful of sweeps instead of a cold
    // climb from the flat initial guess.  Shifting each row-wire voltage by
    // the change in its driver voltage removes the dominant error term when
    // the new query differs from the stored one (the row-wire profile rides
    // on v_in[r]; the column-wire layer is driven by totals, which the sweeps
    // re-balance quickly) — and is a no-op for a repeated query.
    std::lock_guard<std::mutex> lk(nodal_cache_.mu);
    if (nodal_cache_.warm) {
      v = nodal_cache_.warm_v;
      u = nodal_cache_.warm_u;
      for (std::size_t r = 0; r < R; ++r) {
        const double shift = v_in[r] - nodal_cache_.warm_vin[r];
        if (shift != 0.0) {
          double* vr = v.row_data(r);
          for (std::size_t c = 0; c < C; ++c) vr[c] += shift;
        }
      }
      warmed = true;
    }
  }
  if (!warmed) {
    for (std::size_t r = 0; r < R; ++r)
      for (std::size_t c = 0; c < C; ++c) v(r, c) = v_in[r];
  }

  // Relax every cell of `colour` in row r (v first, then u) and return the
  // row's largest update.  Row-pointer sweep: within one colour pass the
  // cells written stride by 2 and every neighbour read is the opposite
  // colour, so hoisting the row base pointers (instead of going through the
  // bounds-checked Matrix accessor per read) changes no arithmetic.
  const auto relax_row = [&](std::size_t r, std::size_t colour) {
    double row_delta = 0.0;
    const double* gr = g_.row_data(r);
    double* vr = v.row_data(r);
    double* ur = u.row_data(r);
    const double* u_above = r > 0 ? u.row_data(r - 1) : nullptr;
    const double* u_below = r + 1 < R ? u.row_data(r + 1) : nullptr;
    const double vin_r = v_in[r];
    for (std::size_t c = (r + colour) & 1u; c < C; c += 2) {
      const double gc = gr[c];
      // Row node: neighbours along the row wire; the c==0 node ties to the
      // driver (ideal source v_in) through one wire segment.
      double num = gc * ur[c];
      double den = gc;
      if (c == 0) {
        num += gw * vin_r;
        den += gw;
      } else {
        num += gw * vr[c - 1];
        den += gw;
      }
      if (c + 1 < C) {
        num += gw * vr[c + 1];
        den += gw;
      }
      const double nv = num / den;
      row_delta = std::max(row_delta, std::abs(nv - vr[c]));
      vr[c] = nv;

      // Column node: neighbours along the column wire; the bottom node ties
      // to the ADC virtual ground through one segment.
      double cnum = gc * vr[c];
      double cden = gc;
      if (u_above != nullptr) {
        cnum += gw * u_above[c];
        cden += gw;
      }
      if (u_below != nullptr) {
        cnum += gw * u_below[c];
        cden += gw;
      } else {
        cnum += gw * 0.0;  // virtual ground
        cden += gw;
      }
      const double nu = cnum / cden;
      row_delta = std::max(row_delta, std::abs(nu - ur[c]));
      ur[c] = nu;
    }
    return row_delta;
  };

  // Chunk size is a function of R only — determinism contract.
  const std::size_t row_chunk = std::max<std::size_t>(8, R / 16);
  std::vector<double> row_delta(R, 0.0);
  status = SolveStatus{};
  for (int iter = 0; iter < config_.nodal_max_iters; ++iter) {
    ++status.iterations;
    double max_delta = 0.0;
    for (std::size_t colour = 0; colour < 2; ++colour) {
      parallel_for(R, row_chunk, [&](std::size_t begin, std::size_t end, std::size_t) {
        for (std::size_t r = begin; r < end; ++r) row_delta[r] = relax_row(r, colour);
      });
      // max() over a fixed index order: bit-identical at any thread count.
      for (std::size_t r = 0; r < R; ++r) max_delta = std::max(max_delta, row_delta[r]);
    }
    status.residual = max_delta;
    if (max_delta < kNodalTolRel * config_.read_voltage) {
      status.converged = true;
      break;
    }
  }
  if (!status.converged) {
    // An unconverged iterate is a silently wrong answer; the two-pass analytic
    // estimate is a bounded-error approximation of the same network, so fall
    // back to it and say so (once per array — sweeps reuse the instance).
    status.used_fallback = true;
    if (!nodal_warned_.exchange(true, std::memory_order_relaxed)) {
      std::cerr << "[xlds] warning: nodal solve did not converge after "
                << status.iterations << " iterations (residual "
                << status.residual << " V on a " << R << 'x' << C
                << " array); falling back to the analytic IR-drop estimate\n";
    }
    return currents_analytic(v_in);
  }
  if (config_.nodal_warm_start) {
    std::lock_guard<std::mutex> lk(nodal_cache_.mu);
    nodal_cache_.warm_v = v;
    nodal_cache_.warm_u = u;
    nodal_cache_.warm_vin.assign(v_in.begin(), v_in.end());
    nodal_cache_.warm = true;
  }
  // Read the column current as the sum of cell currents: identical to the
  // bottom-segment current at convergence, but far better conditioned than
  // u_last * g_wire (a tiny voltage times a huge conductance).
  std::vector<double> out(C, 0.0);
  for (std::size_t c = 0; c < C; ++c) {
    double i_col = 0.0;
    for (std::size_t r = 0; r < R; ++r)
      i_col += g_.row_data(r)[c] * (v.row_data(r)[c] - u.row_data(r)[c]);
    out[c] = i_col;
  }
  return out;
}

void Crossbar::currents_nodal_batch(const NodalSolver& solver, const MatrixD& v_in,
                                    MatrixD& out,
                                    std::vector<SolveStatus>* statuses) const {
  // One forward/back substitution per RHS against the shared factorization.
  // Each solve touches only its own rows of v_in/out plus per-chunk scratch,
  // so the batch parallelises with bit-identical per-vector results at any
  // thread count (the factorization itself is read-only here).
  const std::size_t batch = v_in.rows();
  const double tol = kNodalTolRel * config_.read_voltage;
  parallel_for(batch, 1, [&](std::size_t begin, std::size_t end, std::size_t) {
    NodalSolver::Workspace ws;
    for (std::size_t b = begin; b < end; ++b) {
      const NodalSolver::Result res = solver.solve(v_in.row_data(b), out.row_data(b), ws);
      if (statuses != nullptr) {
        SolveStatus& s = (*statuses)[b];
        s = SolveStatus{};
        s.direct = true;
        s.residual = res.residual;
        s.converged = res.residual < tol;
      }
    }
  });
}

std::vector<double> Crossbar::quantise_input(const std::vector<double>& input) const {
  XLDS_REQUIRE_MSG(input.size() == config_.rows,
                   "input length " << input.size() << " != " << config_.rows << " rows");
  std::vector<double> v_in(config_.rows);
  circuit::DacModel dac(config_.dac);
  for (std::size_t r = 0; r < config_.rows; ++r) {
    XLDS_REQUIRE_MSG(input[r] >= 0.0 && input[r] <= 1.0, "input " << input[r] << " not in [0,1]");
    v_in[r] = dac.quantise(input[r], 0.0, 1.0) * config_.read_voltage;
  }
  return v_in;
}

void Crossbar::apply_readout_noise(double* currents) const {
  if (config_.read_noise_rel > 0.0) {
    // Peripheral read noise scales with the measured current (shot noise +
    // ADC reference error are both signal-proportional), with a floor set by
    // the minimum column current the array can present.
    const double i_floor = config_.rram.g_min * config_.read_voltage *
                           std::sqrt(static_cast<double>(config_.rows));
    for (std::size_t c = 0; c < config_.cols; ++c) {
      const double sigma = config_.read_noise_rel * (currents[c] + i_floor);
      currents[c] = std::max(0.0, currents[c] + rng_.normal(0.0, sigma));
    }
  }
  // A dead sensing lane resolves nothing: the column reads as zero current.
  for (std::size_t c = 0; c < config_.cols; ++c)
    if (adc_dead_[c]) currents[c] = 0.0;
}

std::vector<double> Crossbar::column_currents(const std::vector<double>& input) const {
  SolveStatus status;
  return column_currents(input, status);
}

std::vector<double> Crossbar::column_currents(const std::vector<double>& input,
                                              SolveStatus& status) const {
  const std::vector<double> v_in = quantise_input(input);
  status = SolveStatus{};
  std::vector<double> currents;
  switch (config_.ir_drop) {
    case IrDropMode::kNone: currents = currents_ideal(v_in); break;
    case IrDropMode::kAnalytic: currents = currents_analytic(v_in); break;
    case IrDropMode::kNodal: currents = currents_nodal(v_in, status); break;
  }
  apply_readout_noise(currents.data());
  return currents;
}

MatrixD Crossbar::readout_batch(const MatrixD& inputs,
                                std::vector<SolveStatus>* statuses) const {
  XLDS_REQUIRE_MSG(inputs.cols() == config_.rows,
                   "batch inputs have " << inputs.cols() << " columns, need " << config_.rows
                                        << " (one input vector per row)");
  const std::size_t batch = inputs.rows();
  if (statuses != nullptr) statuses->assign(batch, SolveStatus{});

  // DAC quantisation is pure (no RNG): all rows up front.
  MatrixD v_in(batch, config_.rows);
  {
    circuit::DacModel dac(config_.dac);
    for (std::size_t b = 0; b < batch; ++b) {
      const double* in = inputs.row_data(b);
      double* out = v_in.row_data(b);
      for (std::size_t r = 0; r < config_.rows; ++r) {
        XLDS_REQUIRE_MSG(in[r] >= 0.0 && in[r] <= 1.0,
                         "input " << in[r] << " not in [0,1]");
        out[r] = dac.quantise(in[r], 0.0, 1.0) * config_.read_voltage;
      }
    }
  }

  MatrixD out(batch, config_.cols, 0.0);
  switch (config_.ir_drop) {
    case IrDropMode::kNone:
      parallel_for(batch, 1, [&](std::size_t begin, std::size_t end, std::size_t) {
        for (std::size_t b = begin; b < end; ++b)
          kernels::matvec_t(g_.data().data(), config_.rows, config_.cols, v_in.row_data(b),
                            out.row_data(b));
      });
      break;
    case IrDropMode::kAnalytic:
      parallel_for(batch, 1, [&](std::size_t begin, std::size_t end, std::size_t) {
        for (std::size_t b = begin; b < end; ++b) {
          std::vector<double> v(v_in.row_data(b), v_in.row_data(b) + config_.rows);
          const std::vector<double> i = currents_analytic(v);
          std::copy(i.begin(), i.end(), out.row_data(b));
        }
      });
      break;
    case IrDropMode::kNodal: {
      std::vector<SolveStatus> local(batch);
      const std::shared_ptr<const NodalSolver> solver =
          config_.nodal_direct ? ensure_factorized() : nullptr;
      if (solver != nullptr) {
        currents_nodal_batch(*solver, v_in, out, &local);
        // Drift retry, batched: replicate what the sequential single-query
        // path would do.  The first query to miss the tolerance on an
        // incrementally updated factor triggers one refactorization; every
        // query from that point on would have seen the fresh factor, so
        // re-solve the whole tail against it.
        if (solver->updates_applied() > 0) {
          std::size_t first_bad = batch;
          for (std::size_t b = 0; b < batch; ++b) {
            if (!local[b].converged) {
              first_bad = b;
              break;
            }
          }
          if (first_bad < batch) {
            if (const auto fresh = refactorize_fresh()) {
              const std::size_t tail = batch - first_bad;
              const double tol = kNodalTolRel * config_.read_voltage;
              parallel_for(tail, 1, [&](std::size_t begin, std::size_t end, std::size_t) {
                NodalSolver::Workspace ws;
                for (std::size_t t = begin; t < end; ++t) {
                  const std::size_t b = first_bad + t;
                  const NodalSolver::Result res =
                      fresh->solve(v_in.row_data(b), out.row_data(b), ws);
                  SolveStatus& s = local[b];
                  s = SolveStatus{};
                  s.direct = true;
                  s.residual = res.residual;
                  s.converged = res.residual < tol;
                }
              });
            }
          }
        }
        // A direct solve that misses the tolerance falls back to the
        // iterative path — sequentially, in index order, exactly as repeated
        // single-query readouts would (warm-start state evolves identically).
        for (std::size_t b = 0; b < batch; ++b) {
          if (local[b].converged) continue;
          std::vector<double> v(v_in.row_data(b), v_in.row_data(b) + config_.rows);
          const std::vector<double> i = currents_nodal_gs(v, local[b]);
          std::copy(i.begin(), i.end(), out.row_data(b));
        }
      } else {
        // Iterative path: strictly sequential so the warm-start iterate each
        // query sees matches the single-query sequence bit for bit.
        for (std::size_t b = 0; b < batch; ++b) {
          std::vector<double> v(v_in.row_data(b), v_in.row_data(b) + config_.rows);
          const std::vector<double> i = currents_nodal_gs(v, local[b]);
          std::copy(i.begin(), i.end(), out.row_data(b));
        }
      }
      if (statuses != nullptr) *statuses = std::move(local);
      break;
    }
  }

  // Read noise consumes the instance RNG: strictly in row order, so the draw
  // sequence matches repeated single-query readouts.
  for (std::size_t b = 0; b < batch; ++b) apply_readout_noise(out.row_data(b));
  return out;
}

std::vector<double> Crossbar::mvm(const std::vector<double>& input) const {
  XLDS_REQUIRE_MSG(!weights_.empty(), "mvm() requires program_weights(); use column_currents() "
                                      "for raw-conductance arrays");
  const std::vector<double> currents = column_currents(input);
  circuit::AdcModel adc(config_.adc);
  const double i_fs =
      config_.rram.g_max * config_.read_voltage * static_cast<double>(config_.rows);
  const double unit = config_.read_voltage * (config_.rram.g_max - config_.rram.g_min);
  std::vector<double> out(weights_.cols());
  for (std::size_t j = 0; j < out.size(); ++j) {
    const double ip = adc.quantise(currents[2 * j], 0.0, i_fs);
    const double in = adc.quantise(currents[2 * j + 1], 0.0, i_fs);
    // Baseline g_min contributions cancel in the differential pair.
    out[j] = (ip - in) / unit;
  }
  return out;
}

MatrixD Crossbar::mvm_batch(const MatrixD& inputs) const {
  XLDS_REQUIRE_MSG(!weights_.empty(), "mvm_batch() requires program_weights(); use "
                                      "readout_batch() for raw-conductance arrays");
  const MatrixD currents = readout_batch(inputs);
  const std::size_t batch = inputs.rows();
  circuit::AdcModel adc(config_.adc);
  const double i_fs =
      config_.rram.g_max * config_.read_voltage * static_cast<double>(config_.rows);
  const double unit = config_.read_voltage * (config_.rram.g_max - config_.rram.g_min);
  MatrixD out(batch, weights_.cols(), 0.0);
  // ADC quantisation is pure — parallel over the batch, bit-identical per row.
  parallel_for(batch, 1, [&](std::size_t begin, std::size_t end, std::size_t) {
    for (std::size_t b = begin; b < end; ++b) {
      const double* i_row = currents.row_data(b);
      double* o_row = out.row_data(b);
      for (std::size_t j = 0; j < weights_.cols(); ++j) {
        const double ip = adc.quantise(i_row[2 * j], 0.0, i_fs);
        const double in = adc.quantise(i_row[2 * j + 1], 0.0, i_fs);
        o_row[j] = (ip - in) / unit;
      }
    }
  });
  return out;
}

std::vector<double> Crossbar::ideal_mvm(const std::vector<double>& input) const {
  XLDS_REQUIRE_MSG(!weights_.empty(), "ideal_mvm() requires program_weights()");
  XLDS_REQUIRE(input.size() == config_.rows);
  std::vector<double> out(weights_.cols());
  kernels::matvec_t(weights_.data().data(), weights_.rows(), weights_.cols(), input.data(),
                    out.data());
  return out;
}

MvmCost Crossbar::mvm_cost() const {
  circuit::AdcModel adc(config_.adc);
  circuit::DacModel dac(config_.dac);
  MvmCost cost;
  const auto rounds = static_cast<double>(
      (config_.cols + config_.adcs_per_array - 1) / config_.adcs_per_array);
  cost.latency = dac.latency() + config_.settle_time + rounds * adc.latency_per_conversion();

  double g_sum = 0.0;
  for (double g : g_.data()) g_sum += g;
  const double v = config_.read_voltage;
  cost.energy = static_cast<double>(config_.rows) * dac.energy_per_conversion() +
                static_cast<double>(config_.cols) * adc.energy_per_conversion() +
                g_sum * v * v * config_.settle_time;
  return cost;
}

double Crossbar::ir_drop_worst_case() const {
  std::vector<double> ones(config_.rows, config_.read_voltage);
  const std::vector<double> ideal = currents_ideal(ones);
  const std::vector<double> actual = currents_analytic(ones);
  double worst = 0.0;
  for (std::size_t c = 0; c < config_.cols; ++c) {
    if (ideal[c] <= 0.0) continue;
    worst = std::max(worst, (ideal[c] - actual[c]) / ideal[c]);
  }
  return worst;
}

}  // namespace xlds::xbar
