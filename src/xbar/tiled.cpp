#include "xbar/tiled.hpp"

#include <algorithm>
#include <cmath>

#include "kernels/mvm.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"

namespace xlds::xbar {

TiledCrossbar::TiledCrossbar(TiledConfig config, std::size_t in_dim, std::size_t out_dim, Rng& rng)
    : config_(config), in_dim_(in_dim), out_dim_(out_dim) {
  XLDS_REQUIRE(in_dim >= 1 && out_dim >= 1);
  XLDS_REQUIRE_MSG(config_.tile.cols % 2 == 0, "differential tiles need an even column count");
  logical_cols_per_tile_ = config_.tile.cols / 2;
  row_tiles_ = (in_dim + config_.tile.rows - 1) / config_.tile.rows;
  col_tiles_ = (out_dim + logical_cols_per_tile_ - 1) / logical_cols_per_tile_;
  tiles_.reserve(row_tiles_ * col_tiles_);
  for (std::size_t t = 0; t < row_tiles_ * col_tiles_; ++t) tiles_.emplace_back(config_.tile, rng);
}

void TiledCrossbar::program_weights(const MatrixD& weights) {
  XLDS_REQUIRE_MSG(weights.rows() == in_dim_ && weights.cols() == out_dim_,
                   "weights " << weights.rows() << 'x' << weights.cols() << " != logical "
                              << in_dim_ << 'x' << out_dim_);
  for (std::size_t rt = 0; rt < row_tiles_; ++rt) {
    for (std::size_t ct = 0; ct < col_tiles_; ++ct) {
      MatrixD sub(config_.tile.rows, logical_cols_per_tile_, 0.0);
      for (std::size_t r = 0; r < config_.tile.rows; ++r) {
        const std::size_t gr = rt * config_.tile.rows + r;
        if (gr >= in_dim_) break;
        for (std::size_t c = 0; c < logical_cols_per_tile_; ++c) {
          const std::size_t gc = ct * logical_cols_per_tile_ + c;
          if (gc >= out_dim_) break;
          sub(r, c) = weights(gr, gc);
        }
      }
      tiles_[rt * col_tiles_ + ct].program_weights(sub);
    }
  }
}

std::vector<double> TiledCrossbar::mvm(const std::vector<double>& input) const {
  XLDS_REQUIRE_MSG(input.size() == in_dim_, "input " << input.size() << " != " << in_dim_);
  std::vector<double> out(out_dim_, 0.0);
  // One slice buffer serves every tile row (the per-row zero padding is
  // rewritten in full each pass); partial sums land in a reused vector.
  std::vector<double> slice(config_.tile.rows, 0.0);
  std::vector<double> partial;
  for (std::size_t rt = 0; rt < row_tiles_; ++rt) {
    for (std::size_t r = 0; r < config_.tile.rows; ++r) {
      const std::size_t gr = rt * config_.tile.rows + r;
      slice[r] = gr < in_dim_ ? input[gr] : 0.0;
    }
    for (std::size_t ct = 0; ct < col_tiles_; ++ct) {
      partial = tiles_[rt * col_tiles_ + ct].mvm(slice);
      const std::size_t gc0 = ct * logical_cols_per_tile_;
      kernels::accumulate(partial.data(), out.data() + gc0,
                          std::min(partial.size(), out_dim_ - gc0));
    }
  }
  return out;
}

MatrixD TiledCrossbar::mvm_batch(const MatrixD& inputs) const {
  XLDS_REQUIRE_MSG(inputs.cols() == in_dim_,
                   "batch inputs have " << inputs.cols() << " columns, need " << in_dim_);
  const std::size_t batch = inputs.rows();
  MatrixD out(batch, out_dim_, 0.0);

  // Stage 1: input slices, one [batch x tile.rows] block per tile row.  Pure
  // data movement, computed once and shared read-only by every tile in the
  // row (the old per-row-tile rebuild allocated the same block col_tiles_
  // times over the sweep).
  std::vector<MatrixD> slices(row_tiles_);
  for (std::size_t rt = 0; rt < row_tiles_; ++rt) {
    slices[rt] = MatrixD(batch, config_.tile.rows, 0.0);
    for (std::size_t b = 0; b < batch; ++b) {
      const double* in = inputs.row_data(b);
      double* s = slices[rt].row_data(b);
      for (std::size_t r = 0; r < config_.tile.rows; ++r) {
        const std::size_t gr = rt * config_.tile.rows + r;
        if (gr < in_dim_) s[r] = in[gr];
      }
    }
  }

  // Stage 2: every tile runs the whole batch against its own cached nodal
  // factorization, all tiles concurrently through the shared util::parallel
  // pool.  Each tile owns its RNG and conductance state, and sees the batch
  // in index order exactly as the sequential sweep did — so every partial is
  // bit-identical to serial execution at any thread count.  (A tile's inner
  // batch parallelism cooperates with the pool inside this nested region —
  // the worker running a tile submits the inner tasks to the shared deques
  // and helps drain them — so a fleet narrower than the pool still fills it.)
  std::vector<MatrixD> partials(tiles_.size());
  parallel_for(tiles_.size(), 1, [&](std::size_t begin, std::size_t end, std::size_t) {
    for (std::size_t t = begin; t < end; ++t)
      partials[t] = tiles_[t].mvm_batch(slices[t / col_tiles_]);
  });

  // Stage 3: digital partial-sum reduction in fixed tile order (the adder
  // tree), independent of which thread produced what when.
  for (std::size_t rt = 0; rt < row_tiles_; ++rt) {
    for (std::size_t ct = 0; ct < col_tiles_; ++ct) {
      const MatrixD& partial = partials[rt * col_tiles_ + ct];
      const std::size_t gc0 = ct * logical_cols_per_tile_;
      const std::size_t n = std::min(partial.cols(), out_dim_ - gc0);
      for (std::size_t b = 0; b < batch; ++b)
        kernels::accumulate(partial.row_data(b), out.row_data(b) + gc0, n);
    }
  }
  return out;
}

std::vector<double> TiledCrossbar::ideal_mvm(const std::vector<double>& input) const {
  XLDS_REQUIRE(input.size() == in_dim_);
  std::vector<double> out(out_dim_, 0.0);
  for (std::size_t rt = 0; rt < row_tiles_; ++rt) {
    std::vector<double> slice(config_.tile.rows, 0.0);
    for (std::size_t r = 0; r < config_.tile.rows; ++r) {
      const std::size_t gr = rt * config_.tile.rows + r;
      if (gr < in_dim_) slice[r] = input[gr];
    }
    for (std::size_t ct = 0; ct < col_tiles_; ++ct) {
      const std::vector<double> partial = tiles_[rt * col_tiles_ + ct].ideal_mvm(slice);
      const std::size_t gc0 = ct * logical_cols_per_tile_;
      kernels::accumulate(partial.data(), out.data() + gc0,
                          std::min(partial.size(), out_dim_ - gc0));
    }
  }
  return out;
}

MvmCost TiledCrossbar::mvm_cost() const {
  XLDS_ASSERT(!tiles_.empty());
  const MvmCost tile_cost = tiles_.front().mvm_cost();
  MvmCost cost;
  const double reduce_stages = std::ceil(std::log2(std::max<double>(2.0, static_cast<double>(row_tiles_))));
  cost.latency = tile_cost.latency + config_.adder_latency * reduce_stages;
  cost.energy = tile_cost.energy * static_cast<double>(tiles_.size()) +
                config_.adder_energy * static_cast<double>(tiles_.size()) *
                    static_cast<double>(logical_cols_per_tile_);
  return cost;
}

std::size_t TiledCrossbar::device_count() const {
  return tiles_.size() * config_.tile.rows * config_.tile.cols;
}

}  // namespace xlds::xbar
