#include "xbar/tiled.hpp"

#include <algorithm>
#include <cmath>

#include "kernels/mvm.hpp"
#include "util/error.hpp"

namespace xlds::xbar {

TiledCrossbar::TiledCrossbar(TiledConfig config, std::size_t in_dim, std::size_t out_dim, Rng& rng)
    : config_(config), in_dim_(in_dim), out_dim_(out_dim) {
  XLDS_REQUIRE(in_dim >= 1 && out_dim >= 1);
  XLDS_REQUIRE_MSG(config_.tile.cols % 2 == 0, "differential tiles need an even column count");
  logical_cols_per_tile_ = config_.tile.cols / 2;
  row_tiles_ = (in_dim + config_.tile.rows - 1) / config_.tile.rows;
  col_tiles_ = (out_dim + logical_cols_per_tile_ - 1) / logical_cols_per_tile_;
  tiles_.reserve(row_tiles_ * col_tiles_);
  for (std::size_t t = 0; t < row_tiles_ * col_tiles_; ++t) tiles_.emplace_back(config_.tile, rng);
}

void TiledCrossbar::program_weights(const MatrixD& weights) {
  XLDS_REQUIRE_MSG(weights.rows() == in_dim_ && weights.cols() == out_dim_,
                   "weights " << weights.rows() << 'x' << weights.cols() << " != logical "
                              << in_dim_ << 'x' << out_dim_);
  for (std::size_t rt = 0; rt < row_tiles_; ++rt) {
    for (std::size_t ct = 0; ct < col_tiles_; ++ct) {
      MatrixD sub(config_.tile.rows, logical_cols_per_tile_, 0.0);
      for (std::size_t r = 0; r < config_.tile.rows; ++r) {
        const std::size_t gr = rt * config_.tile.rows + r;
        if (gr >= in_dim_) break;
        for (std::size_t c = 0; c < logical_cols_per_tile_; ++c) {
          const std::size_t gc = ct * logical_cols_per_tile_ + c;
          if (gc >= out_dim_) break;
          sub(r, c) = weights(gr, gc);
        }
      }
      tiles_[rt * col_tiles_ + ct].program_weights(sub);
    }
  }
}

std::vector<double> TiledCrossbar::mvm(const std::vector<double>& input) const {
  XLDS_REQUIRE_MSG(input.size() == in_dim_, "input " << input.size() << " != " << in_dim_);
  std::vector<double> out(out_dim_, 0.0);
  for (std::size_t rt = 0; rt < row_tiles_; ++rt) {
    std::vector<double> slice(config_.tile.rows, 0.0);
    for (std::size_t r = 0; r < config_.tile.rows; ++r) {
      const std::size_t gr = rt * config_.tile.rows + r;
      if (gr < in_dim_) slice[r] = input[gr];
    }
    for (std::size_t ct = 0; ct < col_tiles_; ++ct) {
      const std::vector<double> partial = tiles_[rt * col_tiles_ + ct].mvm(slice);
      const std::size_t gc0 = ct * logical_cols_per_tile_;
      kernels::accumulate(partial.data(), out.data() + gc0,
                          std::min(partial.size(), out_dim_ - gc0));
    }
  }
  return out;
}

MatrixD TiledCrossbar::mvm_batch(const MatrixD& inputs) const {
  XLDS_REQUIRE_MSG(inputs.cols() == in_dim_,
                   "batch inputs have " << inputs.cols() << " columns, need " << in_dim_);
  const std::size_t batch = inputs.rows();
  MatrixD out(batch, out_dim_, 0.0);
  // Tile-major, batch-minor: each tile sees the whole batch in index order,
  // so its RNG draw sequence — and hence every output row — matches the
  // sequential mvm() loop bit for bit, while the per-tile batch call reuses
  // one nodal factorization and parallelises the substitutions.
  for (std::size_t rt = 0; rt < row_tiles_; ++rt) {
    MatrixD slices(batch, config_.tile.rows, 0.0);
    for (std::size_t b = 0; b < batch; ++b) {
      const double* in = inputs.row_data(b);
      double* s = slices.row_data(b);
      for (std::size_t r = 0; r < config_.tile.rows; ++r) {
        const std::size_t gr = rt * config_.tile.rows + r;
        if (gr < in_dim_) s[r] = in[gr];
      }
    }
    for (std::size_t ct = 0; ct < col_tiles_; ++ct) {
      const MatrixD partial = tiles_[rt * col_tiles_ + ct].mvm_batch(slices);
      const std::size_t gc0 = ct * logical_cols_per_tile_;
      const std::size_t n = std::min(partial.cols(), out_dim_ - gc0);
      for (std::size_t b = 0; b < batch; ++b)
        kernels::accumulate(partial.row_data(b), out.row_data(b) + gc0, n);
    }
  }
  return out;
}

std::vector<double> TiledCrossbar::ideal_mvm(const std::vector<double>& input) const {
  XLDS_REQUIRE(input.size() == in_dim_);
  std::vector<double> out(out_dim_, 0.0);
  for (std::size_t rt = 0; rt < row_tiles_; ++rt) {
    std::vector<double> slice(config_.tile.rows, 0.0);
    for (std::size_t r = 0; r < config_.tile.rows; ++r) {
      const std::size_t gr = rt * config_.tile.rows + r;
      if (gr < in_dim_) slice[r] = input[gr];
    }
    for (std::size_t ct = 0; ct < col_tiles_; ++ct) {
      const std::vector<double> partial = tiles_[rt * col_tiles_ + ct].ideal_mvm(slice);
      const std::size_t gc0 = ct * logical_cols_per_tile_;
      kernels::accumulate(partial.data(), out.data() + gc0,
                          std::min(partial.size(), out_dim_ - gc0));
    }
  }
  return out;
}

MvmCost TiledCrossbar::mvm_cost() const {
  XLDS_ASSERT(!tiles_.empty());
  const MvmCost tile_cost = tiles_.front().mvm_cost();
  MvmCost cost;
  const double reduce_stages = std::ceil(std::log2(std::max<double>(2.0, static_cast<double>(row_tiles_))));
  cost.latency = tile_cost.latency + config_.adder_latency * reduce_stages;
  cost.energy = tile_cost.energy * static_cast<double>(tiles_.size()) +
                config_.adder_energy * static_cast<double>(tiles_.size()) *
                    static_cast<double>(logical_cols_per_tile_);
  return cost;
}

std::size_t TiledCrossbar::device_count() const {
  return tiles_.size() * config_.tile.rows * config_.tile.cols;
}

}  // namespace xlds::xbar
