// Analog crossbar MVM simulator (Fig. 2D, Secs. II-B2 and IV).
//
// Inputs are row voltages, weights are crosspoint conductances, and the MAC
// result is the summed column current.  The model layers the non-idealities
// the paper's co-design studies depend on:
//   * conductance programming variation and stochasticity (RRAM model),
//   * DAC-quantised inputs and ADC-quantised outputs,
//   * IR drop along row/column wires — either a fast two-pass analytic
//     estimate or an iterative nodal (Gauss-Seidel) solve for validation,
//   * conductance relaxation over time (age()), which is what destabilises
//     near-plane LSH bits in Fig. 4C,
//   * differential column pairs for signed weights.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "circuit/converter.hpp"
#include "device/rram.hpp"
#include "device/technology.hpp"
#include "fault/fault_map.hpp"
#include "util/matrix.hpp"
#include "util/rng.hpp"

namespace xlds::xbar {

enum class IrDropMode {
  kNone,      ///< ideal wires
  kAnalytic,  ///< two-pass fixed-point estimate (fast, default)
  kNodal,     ///< Gauss-Seidel nodal solve (accurate, for validation)
};

std::string to_string(IrDropMode mode);

struct CrossbarConfig {
  device::RramParams rram;
  std::size_t rows = 64;
  std::size_t cols = 64;  ///< physical columns (differential pairs use two each)
  std::string tech = "40nm";
  double cell_pitch_f = 4.0;    ///< crosspoint pitch, F
  double read_voltage = 0.2;    ///< full-scale row voltage, V
  circuit::AdcParams adc;       ///< output converter
  circuit::DacParams dac;       ///< input converter
  std::size_t adcs_per_array = 8;  ///< ADCs shared across columns (serialised)
  bool apply_variation = true;
  IrDropMode ir_drop = IrDropMode::kAnalytic;
  double read_noise_rel = 0.005;  ///< column-current read noise, fraction of the measured current
  double settle_time = 1.0e-9;    ///< analog settling window per MVM, s
  int nodal_max_iters = 2000;     ///< Gauss-Seidel iteration budget (kNodal mode)
};

/// Outcome of the most recent nodal (Gauss-Seidel) solve.
struct SolveStatus {
  bool converged = false;
  std::size_t iterations = 0;
  double residual = 0.0;      ///< largest node-voltage update of the last sweep, V
  bool used_fallback = false; ///< analytic estimate substituted for an unconverged solve
};

/// Cost of one analog MVM through the array.
struct MvmCost {
  double latency = 0.0;  ///< s
  double energy = 0.0;   ///< J
};

class Crossbar {
 public:
  Crossbar(CrossbarConfig config, Rng& rng);

  std::size_t rows() const noexcept { return config_.rows; }
  std::size_t cols() const noexcept { return config_.cols; }
  const CrossbarConfig& config() const noexcept { return config_; }
  const device::RramModel& device_model() const noexcept { return model_; }

  /// Program explicit conductance targets (S).  Values are clamped to the
  /// device range; program-and-verify with variation when enabled.
  void program_conductances(const MatrixD& targets);

  /// Program signed weights in [-1, 1] onto differential column pairs:
  /// physical column 2j carries the positive part of logical column j,
  /// 2j+1 the negative part.  Requires weights.cols() * 2 == cols.
  void program_weights(const MatrixD& weights);

  /// Program every crosspoint with an independent draw from the HRS
  /// population — the stochastic LSH projection of Sec. IV.
  void program_stochastic_hrs();

  /// Apply conductance relaxation for `dt` seconds to every device.
  void age(double dt);

  /// Fault injection: pin the crosspoint at `g_stuck` siemens (0 models an
  /// open cell; values are clamped to [0, g_max]).  Stuck cells ignore all
  /// subsequent programming and relaxation — the stuck-at-LRS /
  /// stuck-at-HRS defects defect-aware training works around.
  void inject_stuck_fault(std::size_t row, std::size_t col, double g_stuck);

  /// Apply a defect map (same geometry as the array): stuck-on cells pin at
  /// g_max, stuck-off at g_min, opens (including cells cut off by line
  /// faults) at zero conductance, and dead column sense lanes force the
  /// corresponding column current to read 0.  Consumes no RNG.
  void apply_fault_map(const fault::FaultMap& map);

  /// Columns whose ADC/sensing lane is dead.
  std::size_t dead_adc_lanes() const;

  /// Pin `fraction` of the crosspoints (chosen by the internal RNG) at the
  /// given conductance.  Returns the number of cells stuck.
  std::size_t inject_random_stuck_faults(double fraction, double g_stuck);

  std::size_t stuck_cell_count() const;

  /// Raw column currents (A) for an input of per-row voltages in [0, 1]
  /// (scaled by read_voltage internally), DAC-quantised, with IR drop and
  /// read noise applied.
  std::vector<double> column_currents(const std::vector<double>& input) const;

  /// Signed MVM using differential pairs: returns ADC-quantised dot products
  /// scaled back to weight×input units.  Input entries in [0, 1].
  std::vector<double> mvm(const std::vector<double>& input) const;

  /// Ideal result of the programmed weights (no analog effects): W^T x.
  std::vector<double> ideal_mvm(const std::vector<double>& input) const;

  /// Per-MVM circuit cost (converters + array dissipation + settling).
  MvmCost mvm_cost() const;

  /// Programmed conductance at a crosspoint (for tests/inspection).
  double conductance(std::size_t row, std::size_t col) const;

  /// Worst-case relative IR-drop error for an all-ones input at the current
  /// programming — a diagnostic the co-optimisation studies use.
  double ir_drop_worst_case() const;

  /// Gauss-Seidel iterations the most recent nodal solve took — the
  /// iteration-count parity check for the red-black ordering (identical at
  /// any thread count).
  std::size_t last_nodal_iterations() const noexcept { return nodal_status_.iterations; }

  /// Full status of the most recent nodal solve.  When the iteration budget
  /// runs out before convergence, column_currents falls back to the analytic
  /// estimate (used_fallback is set) instead of returning unconverged
  /// currents, and a warning is logged once per array.
  const SolveStatus& last_nodal_status() const noexcept { return nodal_status_; }

 private:
  std::vector<double> currents_ideal(const std::vector<double>& v_in) const;
  std::vector<double> currents_analytic(const std::vector<double>& v_in) const;
  std::vector<double> currents_nodal(const std::vector<double>& v_in) const;

  CrossbarConfig config_;
  device::RramModel model_;
  double wire_r_per_cell_;  ///< ohm per crosspoint pitch
  mutable Rng rng_;
  mutable SolveStatus nodal_status_;  ///< outcome of the last nodal solve
  mutable bool nodal_warned_ = false; ///< non-convergence warning throttle
  MatrixD g_;               ///< programmed conductances [rows x cols]
  Matrix<std::uint8_t> stuck_;  ///< 1 = crosspoint pinned by a defect
  std::vector<std::uint8_t> adc_dead_;  ///< 1 = the column's sensing lane is dead
  MatrixD weights_;         ///< logical weights (when program_weights used)
};

}  // namespace xlds::xbar
