// Analog crossbar MVM simulator (Fig. 2D, Secs. II-B2 and IV).
//
// Inputs are row voltages, weights are crosspoint conductances, and the MAC
// result is the summed column current.  The model layers the non-idealities
// the paper's co-design studies depend on:
//   * conductance programming variation and stochasticity (RRAM model),
//   * DAC-quantised inputs and ADC-quantised outputs,
//   * IR drop along row/column wires — either a fast two-pass analytic
//     estimate or an exact nodal solve for validation.  The nodal solve is
//     served by a cached sparse Cholesky factorization of the two-layer
//     conductance matrix (see nodal_solver.hpp): the matrix depends only on
//     the programmed state, so repeated readouts amortise one factorization
//     across every query, with red-black Gauss-Seidel kept as the fallback
//     and cross-check,
//   * conductance relaxation over time (age()), which is what destabilises
//     near-plane LSH bits in Fig. 4C,
//   * differential column pairs for signed weights.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "circuit/converter.hpp"
#include "device/rram.hpp"
#include "device/technology.hpp"
#include "fault/fault_map.hpp"
#include "util/matrix.hpp"
#include "util/rng.hpp"
#include "xbar/nodal_solver.hpp"

namespace xlds::xbar {

enum class IrDropMode {
  kNone,      ///< ideal wires
  kAnalytic,  ///< two-pass fixed-point estimate (fast, default)
  kNodal,     ///< exact nodal solve (factorized direct / Gauss-Seidel)
};

std::string to_string(IrDropMode mode);

/// Nodal-solve convergence tolerance, relative to the read voltage: a solve
/// is accepted when the largest node-voltage update (Gauss-Seidel sweep) or
/// Jacobi-scaled residual (direct solve) falls below
/// kNodalTolRel * read_voltage.
inline constexpr double kNodalTolRel = 1e-7;

struct CrossbarConfig {
  device::RramParams rram;
  std::size_t rows = 64;
  std::size_t cols = 64;  ///< physical columns (differential pairs use two each)
  std::string tech = "40nm";
  double cell_pitch_f = 4.0;    ///< crosspoint pitch, F
  double read_voltage = 0.2;    ///< full-scale row voltage, V
  circuit::AdcParams adc;       ///< output converter
  circuit::DacParams dac;       ///< input converter
  std::size_t adcs_per_array = 8;  ///< ADCs shared across columns (serialised)
  bool apply_variation = true;
  IrDropMode ir_drop = IrDropMode::kAnalytic;
  double read_noise_rel = 0.005;  ///< column-current read noise, fraction of the measured current
  double settle_time = 1.0e-9;    ///< analog settling window per MVM, s
  int nodal_max_iters = 2000;     ///< Gauss-Seidel iteration budget (kNodal mode)
  /// Use the factorization-cached direct nodal solver (kNodal mode).  The
  /// factorization is built lazily on the first nodal readout after a
  /// programming change and reused for every subsequent query; Gauss-Seidel
  /// remains the fallback when disabled, declined (memory cap) or on numeric
  /// breakdown.
  bool nodal_direct = true;
  /// Memory cap for the cached Cholesky factor; larger systems fall back to
  /// Gauss-Seidel instead of allocating an oversized profile.
  std::size_t nodal_direct_max_bytes = 256u << 20;
  /// Warm-start Gauss-Seidel from the previous converged iterate, shifted by
  /// the per-row driver-voltage difference between the stored query and the
  /// new one (only used where the direct path is off/unavailable).  The shift
  /// removes the dominant error term for decorrelated queries, so the warm
  /// guess is at least as close as the cold flat guess whether or not the
  /// inputs repeat.  Results stay within the solver tolerance of a cold
  /// start but are not bit-identical to one, and depend on the query order —
  /// disable for strict cold-start reproducibility.
  bool nodal_warm_start = true;
  /// Apply small programming changes (stuck faults, partial re-programs) to
  /// the cached factorization as rank-1 up/down-dates instead of dropping
  /// it.  Falls back to a full refactorization when the patch is too large
  /// (nodal_update_batch_limit), the accumulated update count exceeds
  /// nodal_update_limit, the update breaks down numerically, or a later
  /// solve's residual check reports the factor drifted.
  bool nodal_incremental = true;
  /// Largest patch (cells per mutation) handled incrementally; bigger
  /// patches invalidate the cache.  0 = auto (factor bandwidth / 8, the
  /// point where a batch of rank-1 sweeps stops being clearly cheaper than
  /// one refactorization).
  std::size_t nodal_update_batch_limit = 0;
  /// Accumulated rank-1 updates tolerated on one factorization before the
  /// next mutation forces a rebuild (bounds floating-point drift and keeps
  /// the amortised update cost below the refactorization it replaces).
  /// 0 = auto (factor bandwidth / 2).
  std::size_t nodal_update_limit = 0;
};

/// Outcome of a nodal solve (kNodal mode).
struct SolveStatus {
  bool converged = false;
  std::size_t iterations = 0;  ///< Gauss-Seidel sweeps (0 for a direct solve)
  double residual = 0.0;      ///< largest node update / scaled residual, V
  bool used_fallback = false; ///< analytic estimate substituted for an unconverged solve
  bool direct = false;        ///< solved via the cached factorization
};

/// Cost of one analog MVM through the array.
struct MvmCost {
  double latency = 0.0;  ///< s
  double energy = 0.0;   ///< J
};

class Crossbar {
 public:
  Crossbar(CrossbarConfig config, Rng& rng);

  /// Copies restart with a cold solver cache and cleared last-solve status
  /// (both are per-instance scratch, rebuilt lazily).
  Crossbar(const Crossbar& other);
  Crossbar(Crossbar&& other) noexcept;
  Crossbar& operator=(const Crossbar&) = delete;
  Crossbar& operator=(Crossbar&&) = delete;

  std::size_t rows() const noexcept { return config_.rows; }
  std::size_t cols() const noexcept { return config_.cols; }
  const CrossbarConfig& config() const noexcept { return config_; }
  const device::RramModel& device_model() const noexcept { return model_; }

  /// Program explicit conductance targets (S).  Values are clamped to the
  /// device range; program-and-verify with variation when enabled.
  void program_conductances(const MatrixD& targets);

  /// Re-program a subset of crosspoints to explicit conductance targets
  /// (clamped and program-and-verified exactly like program_conductances;
  /// stuck cells ignore the request and consume no RNG draw).
  /// Small patches update the cached nodal factorization incrementally
  /// instead of invalidating it; the logical weights from a previous
  /// program_weights() are kept (the patch models drift/repair around them).
  void program_cells(const std::vector<CellDelta>& cells);

  /// Program signed weights in [-1, 1] onto differential column pairs:
  /// physical column 2j carries the positive part of logical column j,
  /// 2j+1 the negative part.  Requires weights.cols() * 2 == cols.
  void program_weights(const MatrixD& weights);

  /// Program every crosspoint with an independent draw from the HRS
  /// population — the stochastic LSH projection of Sec. IV.
  void program_stochastic_hrs();

  /// Apply conductance relaxation for `dt` seconds to every device.
  void age(double dt);

  /// Fault injection: pin the crosspoint at `g_stuck` siemens (0 models an
  /// open cell; values are clamped to [0, g_max]).  Stuck cells ignore all
  /// subsequent programming and relaxation — the stuck-at-LRS /
  /// stuck-at-HRS defects defect-aware training works around.
  void inject_stuck_fault(std::size_t row, std::size_t col, double g_stuck);

  /// Apply a defect map (same geometry as the array): stuck-on cells pin at
  /// g_max, stuck-off at g_min, opens (including cells cut off by line
  /// faults) at zero conductance, and dead column sense lanes force the
  /// corresponding column current to read 0.  Consumes no RNG.
  void apply_fault_map(const fault::FaultMap& map);

  /// Columns whose ADC/sensing lane is dead.
  std::size_t dead_adc_lanes() const;

  /// Pin `fraction` of the crosspoints (chosen by the internal RNG) at the
  /// given conductance.  Returns the number of cells stuck.
  std::size_t inject_random_stuck_faults(double fraction, double g_stuck);

  std::size_t stuck_cell_count() const;

  /// Raw column currents (A) for an input of per-row voltages in [0, 1]
  /// (scaled by read_voltage internally), DAC-quantised, with IR drop and
  /// read noise applied.
  std::vector<double> column_currents(const std::vector<double>& input) const;

  /// As above, reporting the nodal solve outcome per call (the status is
  /// only meaningful in kNodal mode; other modes leave it default).
  std::vector<double> column_currents(const std::vector<double>& input,
                                      SolveStatus& status) const;

  /// Batched raw readout: inputs is [batch x rows], the result [batch x cols],
  /// and row b is bit-identical to column_currents(row b of inputs) issued
  /// sequentially in index order (read-noise draws are applied in that order).
  /// In kNodal mode all vectors share one cached factorization and the
  /// forward/back substitutions run in parallel over the batch via
  /// util::parallel — per-vector results are thread-count invariant.  When
  /// `statuses` is non-null it receives one SolveStatus per batch row.
  MatrixD readout_batch(const MatrixD& inputs,
                        std::vector<SolveStatus>* statuses = nullptr) const;

  /// Signed MVM using differential pairs: returns ADC-quantised dot products
  /// scaled back to weight×input units.  Input entries in [0, 1].
  std::vector<double> mvm(const std::vector<double>& input) const;

  /// Batched mvm(): inputs [batch x rows] -> outputs [batch x weights.cols()],
  /// row b bit-identical to mvm(row b) issued sequentially.
  MatrixD mvm_batch(const MatrixD& inputs) const;

  /// Ideal result of the programmed weights (no analog effects): W^T x.
  std::vector<double> ideal_mvm(const std::vector<double>& input) const;

  /// Per-MVM circuit cost (converters + array dissipation + settling).
  MvmCost mvm_cost() const;

  /// Programmed conductance at a crosspoint (for tests/inspection).
  double conductance(std::size_t row, std::size_t col) const;

  /// Worst-case relative IR-drop error for an all-ones input at the current
  /// programming — a diagnostic the co-optimisation studies use.
  double ir_drop_worst_case() const;

  /// True once the direct nodal factorization has been built for the current
  /// programming state (kNodal readouts build it lazily).  Incremental
  /// updates keep the factorization alive across small programming changes.
  bool nodal_factorized() const;

  /// Rank-1 up/down-dates applied to the current factorization since it was
  /// last built (0 when fresh or absent).
  std::size_t nodal_updates_applied() const;

 private:
  // Solver cache + Gauss-Seidel warm-start state.  Guarded by `mu` so
  // concurrent const readouts (the parallel evaluator shares arrays across
  // worker threads) build the factorization exactly once without racing.
  // Mutating the array (program/fault/age) while another thread reads is
  // outside the contract, as it always was for the conductances themselves.
  // The solver lives behind a shared_ptr so the rare drift-triggered
  // refactorization during a const readout can swap in a fresh factor while
  // concurrent readers keep solving against the old one (readers pin their
  // snapshot; nothing is ever mutated under them).
  struct NodalCache {
    std::mutex mu;
    std::shared_ptr<NodalSolver> solver;
    bool attempted = false;  ///< factorization tried since the last invalidation
    MatrixD warm_v, warm_u;  ///< last converged Gauss-Seidel iterate
    std::vector<double> warm_vin;  ///< driver voltages that iterate solved
    bool warm = false;
  };

  std::vector<double> currents_ideal(const std::vector<double>& v_in) const;
  std::vector<double> currents_analytic(const std::vector<double>& v_in) const;
  /// Dispatch: direct solve when enabled and factorizable, else Gauss-Seidel.
  std::vector<double> currents_nodal(const std::vector<double>& v_in,
                                     SolveStatus& status) const;
  /// Iterative red-black Gauss-Seidel path (optionally warm-started).
  std::vector<double> currents_nodal_gs(const std::vector<double>& v_in,
                                        SolveStatus& status) const;
  /// Factorized multi-RHS path; rhs/out are [batch x rows]/[batch x cols].
  void currents_nodal_batch(const NodalSolver& solver, const MatrixD& v_in,
                            MatrixD& out, std::vector<SolveStatus>* statuses) const;
  /// DAC-quantised, read_voltage-scaled row voltages for one input vector.
  std::vector<double> quantise_input(const std::vector<double>& input) const;
  /// Lazily build (once per programming state) and return the cached direct
  /// solver, or nullptr when disabled/declined.
  std::shared_ptr<const NodalSolver> ensure_factorized() const;
  /// Replace a drifted factorization with a fresh one built from the current
  /// conductances (readers holding the old shared_ptr are unaffected).
  std::shared_ptr<const NodalSolver> refactorize_fresh() const;
  void invalidate_nodal_cache();
  /// Route a programming patch to the cached factorization: apply it as
  /// rank-1 up/down-dates when the incremental policy accepts it, otherwise
  /// invalidate the cache.  The Gauss-Seidel warm iterate is dropped either
  /// way (it belongs to the previous programming state).
  void note_cell_updates(const CellDelta* deltas, std::size_t count);
  /// Read-noise + dead-lane post-processing (consumes the instance RNG).
  void apply_readout_noise(double* currents) const;

  CrossbarConfig config_;
  device::RramModel model_;
  double wire_r_per_cell_;  ///< ohm per crosspoint pitch
  mutable Rng rng_;
  mutable NodalCache nodal_cache_;
  mutable std::atomic<bool> nodal_warned_{false};  ///< non-convergence warning throttle
  MatrixD g_;               ///< programmed conductances [rows x cols]
  Matrix<std::uint8_t> stuck_;  ///< 1 = crosspoint pinned by a defect
  std::vector<std::uint8_t> adc_dead_;  ///< 1 = the column's sensing lane is dead
  MatrixD weights_;         ///< logical weights (when program_weights used)
};

}  // namespace xlds::xbar
