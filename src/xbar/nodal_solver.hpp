// Cached sparse direct solver for the crossbar nodal IR-drop system.
//
// The two-wire-layer resistive network of an R x C crossbar has 2*R*C
// unknowns: a row-wire node voltage v(r,c) and a column-wire node voltage
// u(r,c) per crosspoint.  Each cell conductance g(r,c) ties v to u, each
// wire segment (conductance g_wire) ties a node to its neighbour along the
// wire, the c == 0 row node ties to the ideal driver, and the bottom column
// node ties to the ADC virtual ground.  The resulting conductance matrix is
// symmetric positive definite, and — crucially — depends only on the
// programmed conductances and the wire resistance, never on the query
// voltages.  So a repeated-readout workload (LSH hashing, MANN episodes,
// MVM sweeps, the DSE nodal rung) can assemble and factorize the matrix
// once per programming state and answer every subsequent input vector with
// a forward/back substitution: orders of magnitude cheaper than re-running
// Gauss-Seidel from a cold start per query (the XbarSim decomposition
// observation).
//
// Ordering and storage.  Nodes are interleaved (v, u) per cell and laid out
// along the shorter array dimension, which bounds the matrix half-bandwidth
// at 2*min(R, C).  The factorization is an envelope (skyline) LDL^T: the
// unit lower factor retains exactly the row profile of A (the textbook
// no-fill property of profile methods), so the row-wire rows — whose lower
// profile is only two entries wide — stay two entries wide, halving both
// memory and flops against a plain banded factorization.  The diagonal slot
// of each packed row stores D(i).  Assembly, factorization and each
// triangular solve are fixed-order serial loops: results are bit-identical
// regardless of thread count, and concurrent solves against one
// factorization are read-only and race-free (each solve uses
// caller-provided scratch).
//
// Incremental up/down-dates.  Changing one cell conductance by delta
// perturbs A by exactly the rank-1 matrix delta * w w^T with
// w = e_v - e_u (the two adjacent node indices of that cell), which lies
// entirely inside the envelope.  update_cells() applies such a patch as a
// batch of rank-1 LDL^T modifications (Gill/Golub/Murray/Saunders method
// C1, the algorithm CHOLMOD uses) in a single fused left-to-right sweep:
// cost O((n - p) * bandwidth) per cell from its pivot p, versus
// O(n * bandwidth^2) for a full refactorization.  A downdate that would
// drive a pivot non-positive resets the solver (the caller refactorizes).
#pragma once

#include <cstddef>
#include <vector>

#include "util/matrix.hpp"

namespace xlds::xbar {

/// One cell of a programming patch: the crosspoint at (row, col) now has
/// conductance g_new (siemens).
struct CellDelta {
  std::size_t row = 0;
  std::size_t col = 0;
  double g_new = 0.0;
};

class NodalSolver {
 public:
  NodalSolver() = default;

  /// Assemble the nodal conductance matrix for programmed conductances
  /// `g` (R x C, siemens) and per-segment wire conductance `g_wire`, then
  /// factorize it.  Returns false — leaving the solver not ready — if the
  /// factor would exceed `max_bytes` of storage or the factorization breaks
  /// down numerically (the caller falls back to the iterative solve).
  bool factorize(const MatrixD& g, double g_wire, std::size_t max_bytes);

  /// Apply a conductance patch to the existing factorization as a batch of
  /// rank-1 up/down-dates (one per cell whose conductance actually changed),
  /// keeping the conductance snapshot, A-diagonal and factor consistent.
  /// Returns false — and resets the solver, so the caller refactorizes from
  /// scratch — on numeric breakdown (a downdated pivot going non-positive)
  /// or a non-finite/negative target.  Exact in exact arithmetic: the
  /// updated factor equals a from-scratch factorization of the patched
  /// matrix; accumulated floating-point drift is the caller's concern (see
  /// updates_applied()).
  bool update_cells(const CellDelta* cells, std::size_t count);

  bool ready() const noexcept { return ready_; }

  /// Rank-1 modifications applied since the last factorize() (drift and
  /// amortisation bookkeeping for the caller's refactorization policy).
  std::size_t updates_applied() const noexcept { return updates_applied_; }

  /// Largest row-profile width of the factor (2*min(rows, cols) for the
  /// crossbar network); the per-column cost unit of update_cells().
  std::size_t bandwidth() const noexcept { return bw_; }

  /// Drop the factorization (programming state changed).
  void reset() noexcept;

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  std::size_t node_count() const noexcept { return n_; }

  /// Bytes held by the packed factor.
  std::size_t factor_bytes() const noexcept { return vals_.size() * sizeof(double); }

  /// Per-solve scratch.  Reused across solves to amortise allocation; each
  /// concurrently-solving thread must use its own instance.
  struct Workspace {
    std::vector<double> x;  ///< node voltages (back-substitution result)
    std::vector<double> y;  ///< rhs, consumed in place by the forward solve
  };

  struct Result {
    /// Largest Jacobi update magnitude max_i |b - A x|_i / A_ii of the
    /// solution, in volts — directly comparable to the Gauss-Seidel
    /// convergence criterion (largest node-voltage update of a sweep).
    double residual = 0.0;
  };

  /// Solve for one input: `v_in` holds the R row driver voltages, `i_col`
  /// receives the C column currents.  Read-only on the factorization —
  /// concurrent calls with distinct workspaces are safe and bit-identical.
  Result solve(const double* v_in, double* i_col, Workspace& ws) const;

 private:
  std::size_t node_v(std::size_t r, std::size_t c) const noexcept {
    return 2 * (row_major_ ? r * cols_ + c : c * rows_ + r);
  }
  std::size_t node_u(std::size_t r, std::size_t c) const noexcept {
    return node_v(r, c) + 1;
  }

  std::size_t rows_ = 0, cols_ = 0;
  std::size_t n_ = 0;        ///< 2 * rows * cols unknowns
  bool row_major_ = true;    ///< cells ordered along the shorter dimension
  bool ready_ = false;
  double g_wire_ = 0.0;
  std::size_t bw_ = 0;       ///< largest row-profile width (i - start_[i])
  std::size_t updates_applied_ = 0;  ///< rank-1 modifications since factorize
  MatrixD g_;                ///< conductance snapshot (residual + currents)
  std::vector<double> adiag_;       ///< diagonal of A (Jacobi-scaled residual)
  std::vector<std::size_t> start_;  ///< first profile column of each row of L
  std::vector<std::size_t> off_;    ///< packed offset of L(i, start_[i]); size n+1
  std::vector<double> vals_;        ///< packed profile; diag slot holds D(i)
};

}  // namespace xlds::xbar
