// Tiled crossbar: maps a logical weight matrix larger than one physical
// array onto a grid of crossbar tiles.  Partial sums along the input
// dimension are accumulated digitally after the per-tile ADCs (the standard
// IMC macro organisation NeuroSim-class tools assume).
#pragma once

#include <cstddef>
#include <vector>

#include "xbar/crossbar.hpp"

namespace xlds::xbar {

struct TiledConfig {
  CrossbarConfig tile;          ///< geometry/non-idealities of each tile
  double adder_energy = 5e-15;  ///< J per digital partial-sum accumulation
  double adder_latency = 0.1e-9;  ///< s per accumulation stage
};

class TiledCrossbar {
 public:
  /// Build for a logical matrix of shape [in_dim x out_dim] (signed weights).
  TiledCrossbar(TiledConfig config, std::size_t in_dim, std::size_t out_dim, Rng& rng);

  std::size_t in_dim() const noexcept { return in_dim_; }
  std::size_t out_dim() const noexcept { return out_dim_; }
  std::size_t tile_count() const noexcept { return tiles_.size(); }

  /// Direct access to one physical tile (row-major over the tile grid) —
  /// recalibration controllers diff and re-program per-tile conductances.
  Crossbar& tile(std::size_t i) { return tiles_[i]; }
  const Crossbar& tile(std::size_t i) const { return tiles_[i]; }

  /// Apply `dt` seconds of conductance relaxation to every tile, in tile
  /// order (each tile consumes its own RNG stream — deterministic and
  /// independent of thread count).
  void age(double dt) {
    for (Crossbar& t : tiles_) t.age(dt);
  }

  /// Program the full logical weight matrix (in_dim x out_dim, in [-1, 1]).
  void program_weights(const MatrixD& weights);

  /// Analog MVM: x (length in_dim, entries in [0, 1]) -> W^T x (length out_dim).
  std::vector<double> mvm(const std::vector<double>& input) const;

  /// Batched MVM: inputs [batch x in_dim] -> outputs [batch x out_dim], row b
  /// bit-identical to mvm(row b) issued sequentially (each tile consumes its
  /// RNG in batch order, and in kNodal mode every tile amortises one cached
  /// factorization across the whole batch).  The tile fleet runs concurrently
  /// through the shared util::parallel pool — each tile's state is private
  /// and the partial-sum reduction is fixed-order, so results are invariant
  /// to the thread count.
  MatrixD mvm_batch(const MatrixD& inputs) const;

  /// Ideal (software) result for comparison.
  std::vector<double> ideal_mvm(const std::vector<double>& input) const;

  /// Cost of one logical MVM: tiles fire in parallel, partial sums are
  /// reduced in a log-depth adder tree.
  MvmCost mvm_cost() const;

  /// Number of RRAM devices used (2 per logical weight).
  std::size_t device_count() const;

 private:
  TiledConfig config_;
  std::size_t in_dim_;
  std::size_t out_dim_;
  std::size_t row_tiles_;
  std::size_t col_tiles_;
  std::size_t logical_cols_per_tile_;
  std::vector<Crossbar> tiles_;  ///< row-major [row_tiles_ x col_tiles_]
};

}  // namespace xlds::xbar
