#include "xbar/nodal_solver.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace xlds::xbar {

bool NodalSolver::factorize(const MatrixD& g, double g_wire, std::size_t max_bytes) {
  reset();
  if (!(g_wire > 0.0) || !std::isfinite(g_wire) || g.empty()) return false;
  rows_ = g.rows();
  cols_ = g.cols();
  n_ = 2 * rows_ * cols_;
  // Order cells along the shorter dimension: the only long-range coupling is
  // between wire neighbours across consecutive cells of the *other*
  // dimension, so this bounds the profile width at 2*min(rows, cols).
  row_major_ = cols_ <= rows_;
  g_wire_ = g_wire;
  g_ = g;

  // --- profile of the lower triangle ---------------------------------------
  // Row v(r,c): couples below-diagonal only to v(r,c-1); row u(r,c): to
  // v(r,c) (distance 1) and u(r-1,c).  The envelope Cholesky factor keeps
  // exactly this row profile, so the v rows stay a few entries wide no
  // matter the bandwidth.
  start_.assign(n_, 0);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      const std::size_t iv = node_v(r, c), iu = node_u(r, c);
      start_[iv] = c > 0 ? node_v(r, c - 1) : iv;
      start_[iu] = r > 0 ? std::min(iu - 1, node_u(r - 1, c)) : iu - 1;
    }
  }
  off_.assign(n_ + 1, 0);
  for (std::size_t i = 0; i < n_; ++i) off_[i + 1] = off_[i] + (i - start_[i] + 1);
  if (off_[n_] * sizeof(double) > max_bytes) {
    reset();
    return false;
  }

  // --- assembly -------------------------------------------------------------
  vals_.assign(off_[n_], 0.0);
  adiag_.assign(n_, 0.0);
  const auto entry = [&](std::size_t i, std::size_t j) -> double& {
    XLDS_ASSERT(j >= start_[i] && j <= i);
    return vals_[off_[i] + (j - start_[i])];
  };
  const double gw = g_wire_;
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      const std::size_t iv = node_v(r, c), iu = node_u(r, c);
      const double gc = g_(r, c);
      // Row node: cell to u, one segment left (to the driver when c == 0),
      // one segment right when a right neighbour exists.
      const double dv = gc + gw + (c + 1 < cols_ ? gw : 0.0);
      // Column node: cell to v, one segment down (to the ADC virtual ground
      // at the bottom edge), one segment up when an upper neighbour exists.
      const double du = gc + gw + (r > 0 ? gw : 0.0);
      entry(iv, iv) = dv;
      entry(iu, iu) = du;
      adiag_[iv] = dv;
      adiag_[iu] = du;
      entry(iu, iv) = -gc;
      if (c > 0) entry(iv, node_v(r, c - 1)) = -gw;
      if (r > 0) entry(iu, node_u(r - 1, c)) = -gw;
    }
  }

  // --- profile Cholesky, in place -------------------------------------------
  for (std::size_t i = 0; i < n_; ++i) {
    const std::size_t si = start_[i];
    double* ri = vals_.data() + off_[i];
    for (std::size_t j = si; j <= i; ++j) {
      const std::size_t sj = start_[j];
      const std::size_t k0 = std::max(si, sj);
      const double* a = ri + (k0 - si);
      const double* b = vals_.data() + off_[j] + (k0 - sj);
      const std::size_t len = j - k0;
      double s = ri[j - si];
      for (std::size_t t = 0; t < len; ++t) s -= a[t] * b[t];
      if (j < i) {
        ri[j - si] = s / vals_[off_[j] + (j - sj)];
      } else {
        // SPD by construction (a connected resistor network with every node
        // tied to the driver or ground); a non-positive pivot means numeric
        // breakdown — decline and let the caller use Gauss-Seidel.
        if (!(s > 0.0) || !std::isfinite(s)) {
          reset();
          return false;
        }
        ri[j - si] = std::sqrt(s);
      }
    }
  }
  ready_ = true;
  return true;
}

void NodalSolver::reset() noexcept {
  ready_ = false;
  rows_ = cols_ = n_ = 0;
  g_wire_ = 0.0;
  g_ = MatrixD{};
  adiag_.clear();
  adiag_.shrink_to_fit();
  start_.clear();
  start_.shrink_to_fit();
  off_.clear();
  off_.shrink_to_fit();
  vals_.clear();
  vals_.shrink_to_fit();
}

NodalSolver::Result NodalSolver::solve(const double* v_in, double* i_col,
                                       Workspace& ws) const {
  XLDS_REQUIRE_MSG(ready_, "NodalSolver::solve before a successful factorize");
  const double gw = g_wire_;

  // RHS: the driver ties inject gw * v_in[r] at each row's first node.
  ws.y.assign(n_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) ws.y[node_v(r, 0)] = gw * v_in[r];

  // Forward substitution L y = b (in place on ws.y).
  double* y = ws.y.data();
  for (std::size_t i = 0; i < n_; ++i) {
    const std::size_t si = start_[i];
    const double* ri = vals_.data() + off_[i];
    double s = y[i];
    const std::size_t len = i - si;
    const double* ys = y + si;
    for (std::size_t t = 0; t < len; ++t) s -= ri[t] * ys[t];
    y[i] = s / ri[len];
  }

  // Back substitution L^T x = y (row-saxpy form: contiguous profile rows).
  ws.x.assign(y, y + n_);
  double* x = ws.x.data();
  for (std::size_t i = n_; i-- > 0;) {
    const std::size_t si = start_[i];
    const double* ri = vals_.data() + off_[i];
    const double xi = x[i] / ri[i - si];
    x[i] = xi;
    double* xs = x + si;
    const std::size_t len = i - si;
    for (std::size_t t = 0; t < len; ++t) xs[t] -= ri[t] * xi;
  }

  // Residual in Gauss-Seidel units (largest Jacobi node update the iterative
  // solver would still make), and the column currents as the sum of cell
  // currents — same well-conditioned readout the iterative path uses.
  Result res;
  std::fill(i_col, i_col + cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      const std::size_t iv = node_v(r, c), iu = node_u(r, c);
      const double gc = g_(r, c);
      const double xv = x[iv], xu = x[iu];
      double ax_v = adiag_[iv] * xv - gc * xu;
      if (c > 0) ax_v -= gw * x[node_v(r, c - 1)];
      if (c + 1 < cols_) ax_v -= gw * x[node_v(r, c + 1)];
      const double b_v = c == 0 ? gw * v_in[r] : 0.0;
      double ax_u = adiag_[iu] * xu - gc * xv;
      if (r > 0) ax_u -= gw * x[node_u(r - 1, c)];
      if (r + 1 < rows_) ax_u -= gw * x[node_u(r + 1, c)];
      res.residual = std::max(res.residual, std::abs(b_v - ax_v) / adiag_[iv]);
      res.residual = std::max(res.residual, std::abs(0.0 - ax_u) / adiag_[iu]);
      i_col[c] += gc * (xv - xu);
    }
  }
  return res;
}

}  // namespace xlds::xbar
