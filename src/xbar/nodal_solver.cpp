#include "xbar/nodal_solver.hpp"

#include <algorithm>
#include <cmath>

#include "core/counters.hpp"
#include "util/error.hpp"

namespace xlds::xbar {

bool NodalSolver::factorize(const MatrixD& g, double g_wire, std::size_t max_bytes) {
  reset();
  if (!(g_wire > 0.0) || !std::isfinite(g_wire) || g.empty()) return false;
  rows_ = g.rows();
  cols_ = g.cols();
  n_ = 2 * rows_ * cols_;
  // Order cells along the shorter dimension: the only long-range coupling is
  // between wire neighbours across consecutive cells of the *other*
  // dimension, so this bounds the profile width at 2*min(rows, cols).
  row_major_ = cols_ <= rows_;
  g_wire_ = g_wire;
  g_ = g;

  // --- profile of the lower triangle ---------------------------------------
  // Row v(r,c): couples below-diagonal only to v(r,c-1); row u(r,c): to
  // v(r,c) (distance 1) and u(r-1,c).  The envelope factor keeps exactly
  // this row profile, so the v rows stay a few entries wide no matter the
  // bandwidth.
  start_.assign(n_, 0);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      const std::size_t iv = node_v(r, c), iu = node_u(r, c);
      start_[iv] = c > 0 ? node_v(r, c - 1) : iv;
      start_[iu] = r > 0 ? std::min(iu - 1, node_u(r - 1, c)) : iu - 1;
    }
  }
  off_.assign(n_ + 1, 0);
  bw_ = 0;
  for (std::size_t i = 0; i < n_; ++i) {
    off_[i + 1] = off_[i] + (i - start_[i] + 1);
    bw_ = std::max(bw_, i - start_[i]);
  }
  if (off_[n_] * sizeof(double) > max_bytes) {
    reset();
    return false;
  }

  // --- assembly -------------------------------------------------------------
  vals_.assign(off_[n_], 0.0);
  adiag_.assign(n_, 0.0);
  const auto entry = [&](std::size_t i, std::size_t j) -> double& {
    XLDS_ASSERT(j >= start_[i] && j <= i);
    return vals_[off_[i] + (j - start_[i])];
  };
  const double gw = g_wire_;
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      const std::size_t iv = node_v(r, c), iu = node_u(r, c);
      const double gc = g_(r, c);
      // Row node: cell to u, one segment left (to the driver when c == 0),
      // one segment right when a right neighbour exists.
      const double dv = gc + gw + (c + 1 < cols_ ? gw : 0.0);
      // Column node: cell to v, one segment down (to the ADC virtual ground
      // at the bottom edge), one segment up when an upper neighbour exists.
      const double du = gc + gw + (r > 0 ? gw : 0.0);
      entry(iv, iv) = dv;
      entry(iu, iu) = du;
      adiag_[iv] = dv;
      adiag_[iu] = du;
      entry(iu, iv) = -gc;
      if (c > 0) entry(iv, node_v(r, c - 1)) = -gw;
      if (r > 0) entry(iu, node_u(r - 1, c)) = -gw;
    }
  }

  // --- profile LDL^T, in place ----------------------------------------------
  // Row-by-row left-looking sweep.  `t` carries D(k) * L(i,k) for the row in
  // flight (the value of the numerator `s` at column k — no extra multiply),
  // so every inner dot stays a contiguous two-array product.
  std::vector<double> t(bw_ + 1, 0.0);
  for (std::size_t i = 0; i < n_; ++i) {
    const std::size_t si = start_[i];
    double* ri = vals_.data() + off_[i];
    for (std::size_t j = si; j < i; ++j) {
      const std::size_t sj = start_[j];
      const std::size_t k0 = std::max(si, sj);
      const double* a = t.data() + (k0 - si);
      const double* b = vals_.data() + off_[j] + (k0 - sj);
      const std::size_t len = j - k0;
      double s = ri[j - si];
      for (std::size_t k = 0; k < len; ++k) s -= a[k] * b[k];
      t[j - si] = s;
      ri[j - si] = s / vals_[off_[j + 1] - 1];
    }
    double d = ri[i - si];
    for (std::size_t k = 0; k < i - si; ++k) d -= t[k] * ri[k];
    // SPD by construction (a connected resistor network with every node tied
    // to the driver or ground); a non-positive pivot means numeric breakdown
    // — decline and let the caller use Gauss-Seidel.
    if (!(d > 0.0) || !std::isfinite(d)) {
      reset();
      return false;
    }
    ri[i - si] = d;
  }
  ready_ = true;
  core::Profiler::count_factorization();
  return true;
}

bool NodalSolver::update_cells(const CellDelta* cells, std::size_t count) {
  if (!ready_) return false;
  for (std::size_t c = 0; c < count; ++c) {
    XLDS_REQUIRE_MSG(cells[c].row < rows_ && cells[c].col < cols_,
                     "cell (" << cells[c].row << ',' << cells[c].col << ") outside "
                              << rows_ << 'x' << cols_ << " array");
    if (!(cells[c].g_new >= 0.0) || !std::isfinite(cells[c].g_new)) return false;
  }

  // One rank-1 modification per cell whose conductance actually changes:
  // A' = A + delta * w w^T with w = e_v - e_u.  The snapshot and A-diagonal
  // are patched up front so the post-update residual check measures the
  // factor against the true new matrix; on breakdown the whole solver resets
  // and the caller refactorizes from its authoritative conductances.
  struct Upd {
    std::size_t p;  ///< pivot node index (the cell's v node)
    double alpha;   ///< signed conductance delta
  };
  std::vector<Upd> ups;
  ups.reserve(count);
  for (std::size_t c = 0; c < count; ++c) {
    const double delta = cells[c].g_new - g_(cells[c].row, cells[c].col);
    if (delta == 0.0) continue;
    const std::size_t iv = node_v(cells[c].row, cells[c].col);
    g_(cells[c].row, cells[c].col) = cells[c].g_new;
    adiag_[iv] += delta;
    adiag_[iv + 1] += delta;
    ups.push_back(Upd{iv, delta});
  }
  if (ups.empty()) return true;
  std::stable_sort(ups.begin(), ups.end(),
                   [](const Upd& a, const Upd& b) { return a.p < b.p; });

  // Each update carries a sparse working vector w whose nonzero support at
  // sweep position j is confined to the window [j, j + bw_] (w fill can never
  // escape the envelope), so a power-of-two ring of bw_ + 2 slots per update
  // replaces a dense length-n vector.
  std::size_t ring = 1;
  while (ring < bw_ + 2) ring <<= 1;
  const std::size_t mask = ring - 1;
  const std::size_t m = ups.size();
  std::vector<double> w(m * ring, 0.0);
  for (std::size_t u = 0; u < m; ++u) {
    w[u * ring + (ups[u].p & mask)] = 1.0;
    w[u * ring + ((ups[u].p + 1) & mask)] = -1.0;
  }

  // Fused left-to-right sweep: at column j apply, in patch order, the rank-1
  // rotation of every update whose pivot has been reached (method C1).  The
  // interleaving is exactly equivalent to applying the rank-1 updates one
  // after another — an update's rotation at column j only depends on columns
  // <= j, which later updates cannot touch retroactively.
  std::size_t nactive = 0;
  for (std::size_t j = ups[0].p; j < n_; ++j) {
    while (nactive < m && ups[nactive].p <= j) ++nactive;
    const std::size_t imax = std::min(n_ - 1, j + bw_);
    // The rows of column j's envelope structure below the diagonal: every
    // odd (column-wire) node within one bandwidth, at most one even
    // (row-wire) node at j + 1 or j + 2 — their profiles only reach two
    // columns left.
    const std::size_t ieven = (j + 1) % 2 == 0 ? j + 1 : j + 2;
    for (std::size_t u = 0; u < nactive; ++u) {
      double* wu = w.data() + u * ring;
      const double p = wu[j & mask];
      if (p == 0.0) continue;
      wu[j & mask] = 0.0;
      double& dslot = vals_[off_[j + 1] - 1];
      const double dold = dslot;
      const double dnew = dold + ups[u].alpha * p * p;
      if (!(dnew > 0.0) || !std::isfinite(dnew)) {
        reset();
        return false;
      }
      dslot = dnew;
      const double beta = ups[u].alpha * p / dnew;
      ups[u].alpha *= dold / dnew;
      const auto touch = [&](std::size_t i) {
        double& lij = vals_[off_[i] + (j - start_[i])];
        const double wi = wu[i & mask] - p * lij;
        wu[i & mask] = wi;
        lij += beta * wi;
      };
      if (ieven <= imax && start_[ieven] <= j) touch(ieven);
      for (std::size_t i = (j + 1) | 1; i <= imax; i += 2)
        if (start_[i] <= j) touch(i);
    }
  }
  updates_applied_ += m;
  core::Profiler::count_incremental_update(m);
  return true;
}

void NodalSolver::reset() noexcept {
  ready_ = false;
  rows_ = cols_ = n_ = 0;
  g_wire_ = 0.0;
  bw_ = 0;
  updates_applied_ = 0;
  g_ = MatrixD{};
  adiag_.clear();
  adiag_.shrink_to_fit();
  start_.clear();
  start_.shrink_to_fit();
  off_.clear();
  off_.shrink_to_fit();
  vals_.clear();
  vals_.shrink_to_fit();
}

NodalSolver::Result NodalSolver::solve(const double* v_in, double* i_col,
                                       Workspace& ws) const {
  XLDS_REQUIRE_MSG(ready_, "NodalSolver::solve before a successful factorize");
  const double gw = g_wire_;
  core::Profiler::count_direct_solve();

  // RHS: the driver ties inject gw * v_in[r] at each row's first node.
  ws.y.assign(n_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) ws.y[node_v(r, 0)] = gw * v_in[r];

  // Forward substitution L y = b (unit lower triangle, in place on ws.y).
  double* y = ws.y.data();
  for (std::size_t i = 0; i < n_; ++i) {
    const std::size_t si = start_[i];
    const double* ri = vals_.data() + off_[i];
    double s = y[i];
    const std::size_t len = i - si;
    const double* ys = y + si;
    for (std::size_t t = 0; t < len; ++t) s -= ri[t] * ys[t];
    y[i] = s;
  }

  // Diagonal scaling, then back substitution L^T x = y (row-saxpy form:
  // contiguous profile rows, unit diagonal).
  ws.x.resize(n_);
  double* x = ws.x.data();
  for (std::size_t i = 0; i < n_; ++i) x[i] = y[i] / vals_[off_[i + 1] - 1];
  for (std::size_t i = n_; i-- > 0;) {
    const std::size_t si = start_[i];
    const double* ri = vals_.data() + off_[i];
    const double xi = x[i];
    double* xs = x + si;
    const std::size_t len = i - si;
    for (std::size_t t = 0; t < len; ++t) xs[t] -= ri[t] * xi;
  }

  // Residual in Gauss-Seidel units (largest Jacobi node update the iterative
  // solver would still make), and the column currents as the sum of cell
  // currents — same well-conditioned readout the iterative path uses.
  Result res;
  std::fill(i_col, i_col + cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      const std::size_t iv = node_v(r, c), iu = node_u(r, c);
      const double gc = g_(r, c);
      const double xv = x[iv], xu = x[iu];
      double ax_v = adiag_[iv] * xv - gc * xu;
      if (c > 0) ax_v -= gw * x[node_v(r, c - 1)];
      if (c + 1 < cols_) ax_v -= gw * x[node_v(r, c + 1)];
      const double b_v = c == 0 ? gw * v_in[r] : 0.0;
      double ax_u = adiag_[iu] * xu - gc * xv;
      if (r > 0) ax_u -= gw * x[node_u(r - 1, c)];
      if (r + 1 < rows_) ax_u -= gw * x[node_u(r + 1, c)];
      res.residual = std::max(res.residual, std::abs(b_v - ax_v) / adiag_[iv]);
      res.residual = std::max(res.residual, std::abs(0.0 - ax_u) / adiag_[iu]);
      i_col[c] += gc * (xv - xu);
    }
  }
  return res;
}

}  // namespace xlds::xbar
