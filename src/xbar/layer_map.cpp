#include "xbar/layer_map.hpp"

#include <algorithm>
#include <cmath>

#include "kernels/mvm.hpp"
#include "util/error.hpp"

namespace xlds::xbar {

MappedLayer::MappedLayer(LayerMapConfig config, const MatrixD& weights, Rng& rng)
    : config_(config), in_dim_(weights.rows()), out_dim_(weights.cols()) {
  XLDS_REQUIRE(in_dim_ >= 1 && out_dim_ >= 1);
  XLDS_REQUIRE(config_.weight_bits >= 1 && config_.weight_bits <= 16);
  XLDS_REQUIRE(config_.slice_bits >= 1 && config_.slice_bits <= config_.weight_bits);

  for (double w : weights.data()) scale_ = std::max(scale_, std::abs(w));

  const std::size_t n_slices =
      (config_.weight_bits + config_.slice_bits - 1) / config_.slice_bits;
  const std::uint64_t q_max = (1ull << config_.weight_bits) - 1;  // magnitude levels
  const std::uint64_t radix = 1ull << config_.slice_bits;         // digit base
  const double digit_max = static_cast<double>(radix - 1);

  // Quantise: signed magnitude, round-to-nearest on |w| / scale.
  Matrix<std::uint64_t> q(in_dim_, out_dim_, 0);
  Matrix<std::int8_t> sign(in_dim_, out_dim_, 1);
  q_weights_ = MatrixD(in_dim_, out_dim_, 0.0);
  if (scale_ > 0.0) {
    for (std::size_t r = 0; r < in_dim_; ++r) {
      for (std::size_t c = 0; c < out_dim_; ++c) {
        const double w = weights(r, c);
        const auto mag = static_cast<std::uint64_t>(
            std::llround(std::abs(w) / scale_ * static_cast<double>(q_max)));
        q(r, c) = std::min(mag, q_max);
        sign(r, c) = w < 0.0 ? -1 : 1;
        q_weights_(r, c) = (w < 0.0 ? -1.0 : 1.0) * static_cast<double>(q(r, c)) /
                           static_cast<double>(q_max) * scale_;
      }
    }
  }

  // Program one tiled fleet per digit plane.  Slice s holds digit d_s of the
  // magnitude (base 2^slice_bits), carried as a signed weight d_s/(2^b - 1)
  // in [-1, 1] so the differential-pair convention applies unchanged; the
  // reconstruction multiplies the positional value back in:
  //   W = scale / q_max * sum_s (2^b - 1) * radix^s * W_s.
  slices_.reserve(n_slices);
  slice_coeff_.reserve(n_slices);
  double positional = 1.0;  // radix^s
  for (std::size_t s = 0; s < n_slices; ++s) {
    MatrixD plane(in_dim_, out_dim_, 0.0);
    for (std::size_t r = 0; r < in_dim_; ++r)
      for (std::size_t c = 0; c < out_dim_; ++c) {
        const std::uint64_t digit = (q(r, c) >> (s * config_.slice_bits)) & (radix - 1);
        plane(r, c) = static_cast<double>(sign(r, c)) * static_cast<double>(digit) / digit_max;
      }
    slices_.emplace_back(config_.tiled, in_dim_, out_dim_, rng);
    slices_.back().program_weights(plane);
    slice_coeff_.push_back(scale_ > 0.0 ? scale_ / static_cast<double>(q_max) * digit_max *
                                              positional
                                        : 0.0);
    positional *= static_cast<double>(radix);
  }
}

MappedLayer MappedLayer::from_dense(LayerMapConfig config, const nn::DenseLayer& layer,
                                    Rng& rng) {
  return MappedLayer(std::move(config), layer.weights(), rng);
}

std::size_t MappedLayer::tile_count() const noexcept {
  std::size_t n = 0;
  for (const TiledCrossbar& s : slices_) n += s.tile_count();
  return n;
}

std::vector<double> MappedLayer::forward(const std::vector<double>& input) const {
  XLDS_REQUIRE_MSG(input.size() == in_dim_, "input " << input.size() << " != " << in_dim_);
  std::vector<double> out(out_dim_, 0.0);
  for (std::size_t s = 0; s < slices_.size(); ++s) {
    const std::vector<double> y = slices_[s].mvm(input);
    const double coeff = slice_coeff_[s];
    for (std::size_t j = 0; j < out_dim_; ++j) out[j] += coeff * y[j];
  }
  return out;
}

MatrixD MappedLayer::forward_batch(const MatrixD& inputs) const {
  XLDS_REQUIRE_MSG(inputs.cols() == in_dim_,
                   "batch inputs have " << inputs.cols() << " columns, need " << in_dim_);
  const std::size_t batch = inputs.rows();
  MatrixD out(batch, out_dim_, 0.0);
  // Slices run in fixed order (their RNG draws must match the sequential
  // forward() sweep); the tile-fleet parallelism lives inside each slice's
  // mvm_batch.  The shift-and-add reduction is fixed-order arithmetic.
  for (std::size_t s = 0; s < slices_.size(); ++s) {
    const MatrixD y = slices_[s].mvm_batch(inputs);
    const double coeff = slice_coeff_[s];
    for (std::size_t b = 0; b < batch; ++b) {
      const double* yb = y.row_data(b);
      double* ob = out.row_data(b);
      for (std::size_t j = 0; j < out_dim_; ++j) ob[j] += coeff * yb[j];
    }
  }
  return out;
}

std::vector<double> MappedLayer::ideal(const std::vector<double>& input) const {
  XLDS_REQUIRE(input.size() == in_dim_);
  std::vector<double> out(out_dim_, 0.0);
  kernels::matvec_t(q_weights_.data().data(), in_dim_, out_dim_, input.data(), out.data());
  return out;
}

MvmCost MappedLayer::mvm_cost() const {
  XLDS_ASSERT(!slices_.empty());
  // Physically separate slice fleets fire in parallel; merging n slices adds
  // ceil(log2 n) shift-and-add stages and one accumulation per slice column.
  const MvmCost fleet = slices_.front().mvm_cost();
  const auto n_slices = static_cast<double>(slices_.size());
  const double merge_stages =
      slices_.size() > 1 ? std::ceil(std::log2(n_slices)) : 0.0;
  MvmCost cost;
  cost.latency = fleet.latency + config_.tiled.adder_latency * merge_stages;
  cost.energy = fleet.energy * n_slices +
                config_.tiled.adder_energy * n_slices * static_cast<double>(out_dim_);
  return cost;
}

std::size_t MappedLayer::device_count() const {
  std::size_t n = 0;
  for (const TiledCrossbar& s : slices_) n += s.device_count();
  return n;
}

}  // namespace xlds::xbar
