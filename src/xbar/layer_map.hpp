// Bit-sliced mapping of a DNN layer onto a tiled-crossbar fleet (Sec. V:
// the architecture rung where a real network layer, not a synthetic weight
// block, drives the analog datapath).
//
// A trained dense layer holds float weights; a crosspoint holds one analog
// conductance with a few reliably distinguishable levels.  The standard IMC
// answer (ISAAC/NeuroSim lineage) is weight slicing: quantise each weight to
// `weight_bits` signed magnitude levels, split the magnitude into base-2^
// `slice_bits` digits, and program each digit plane onto its own tiled
// crossbar.  One logical MVM then runs every slice fleet over the same
// input and reduces the per-slice column sums digitally with the positional
// weight (2^slice_bits)^s — the same shift-and-add the ADC already implies
// for multi-bit inputs, applied across arrays instead of across cycles.
//
// The mapper deliberately reuses the differential-pair convention of
// Crossbar::program_weights (a signed digit plane in [-1, 1] per slice)
// rather than inventing a new conductance code: every non-ideality the
// single-array model carries (programming variation, IR drop, ADC
// quantisation, read noise, faults, aging) applies to each slice unchanged.
#pragma once

#include <cstddef>
#include <vector>

#include "nn/layer.hpp"
#include "util/matrix.hpp"
#include "util/rng.hpp"
#include "xbar/tiled.hpp"

namespace xlds::xbar {

struct LayerMapConfig {
  TiledConfig tiled;            ///< tile geometry/non-idealities per slice fleet
  std::size_t weight_bits = 4;  ///< signed-magnitude weight resolution
  std::size_t slice_bits = 2;   ///< bits per crossbar slice (<= weight_bits)
};

/// One DNN layer sharded onto ceil(weight_bits / slice_bits) tiled-crossbar
/// fleets, one per weight-magnitude digit plane.
class MappedLayer {
 public:
  /// Map an explicit [in_dim x out_dim] float weight matrix.
  MappedLayer(LayerMapConfig config, const MatrixD& weights, Rng& rng);

  /// Map a trained dense layer (its current weights; biases stay digital).
  static MappedLayer from_dense(LayerMapConfig config, const nn::DenseLayer& layer, Rng& rng);

  std::size_t in_dim() const noexcept { return in_dim_; }
  std::size_t out_dim() const noexcept { return out_dim_; }
  std::size_t slice_count() const noexcept { return slices_.size(); }
  std::size_t tile_count() const noexcept;

  /// Largest |weight| of the mapped matrix — the scale the reconstruction
  /// multiplies back in (0 collapses to an all-zero layer).
  double scale() const noexcept { return scale_; }

  /// Analog forward: x (length in_dim, entries in [0, 1]) -> W^T x with the
  /// quantised weights, through every slice fleet plus the digital
  /// shift-and-add reconstruction.
  std::vector<double> forward(const std::vector<double>& input) const;

  /// Batched analog forward: [batch x in_dim] -> [batch x out_dim]; row b is
  /// bit-identical to forward(row b) issued sequentially, at any thread
  /// count (slices run in fixed order; each slice's tile fleet parallelises
  /// internally through TiledCrossbar::mvm_batch).
  MatrixD forward_batch(const MatrixD& inputs) const;

  /// Software W^T x with the quantised (bit-sliced) weights — the digital
  /// reference the analog path is compared against.
  std::vector<double> ideal(const std::vector<double>& input) const;

  /// The weight matrix the slices actually encode (quantisation applied);
  /// ideal() is exactly this matrix's transpose product.
  const MatrixD& quantised_weights() const noexcept { return q_weights_; }

  /// One logical MVM through the mapped layer: slices fire concurrently
  /// (physically separate arrays), the slice reduction adds its own
  /// shift-and-add stages.
  MvmCost mvm_cost() const;

  /// RRAM devices consumed across every slice fleet.
  std::size_t device_count() const;

 private:
  LayerMapConfig config_;
  std::size_t in_dim_ = 0;
  std::size_t out_dim_ = 0;
  double scale_ = 0.0;
  std::vector<double> slice_coeff_;   ///< reconstruction weight per slice
  std::vector<TiledCrossbar> slices_; ///< one fleet per digit plane
  MatrixD q_weights_;                 ///< quantised logical weights
};

}  // namespace xlds::xbar
