#include "mann/mann.hpp"

#include <algorithm>
#include <cmath>

#include "kernels/mvm.hpp"
#include "util/error.hpp"

namespace xlds::mann {

std::string to_string(Backend b) {
  switch (b) {
    case Backend::kSoftwareCosine: return "software-cosine";
    case Backend::kSoftwareLsh: return "software-LSH";
    case Backend::kRramLsh: return "RRAM-LSH";
    case Backend::kRramTlsh: return "RRAM-TLSH";
    case Backend::kFeFetTlsh: return "FeFET-TLSH";
  }
  return "?";
}

MannPipeline::MannPipeline(MannConfig config, Rng& rng)
    : config_(config),
      rng_(rng.fork(0x3A22)),
      cnn_(nn::make_small_cnn(config.image_side, /*classes=*/16, config.embedding, rng_)) {
  XLDS_REQUIRE(config_.embedding >= 8);
  XLDS_REQUIRE(config_.signature_bits >= 8);
  XLDS_REQUIRE_MSG(config_.am.cols == config_.signature_bits,
                   "AM width " << config_.am.cols << " != signature " << config_.signature_bits);
  if (config_.backend == Backend::kSoftwareLsh) {
    sw_lsh_.emplace(config_.embedding, config_.signature_bits, rng_);
    if (config_.centered_hashing) sw_lsh_->calibrate_centering();
  } else if (config_.backend == Backend::kRramLsh || config_.backend == Backend::kRramTlsh ||
             config_.backend == Backend::kFeFetTlsh) {
    XLDS_REQUIRE_MSG(config_.hash_xbar.rows == config_.embedding,
                     "hash crossbar rows " << config_.hash_xbar.rows << " != embedding "
                                           << config_.embedding);
    if (config_.backend == Backend::kFeFetTlsh) {
      XLDS_REQUIRE_MSG(config_.fefet_am.fefet.bits == 1,
                       "the FeFET AM stores binary signatures (1-bit cells)");
      XLDS_REQUIRE_MSG(config_.fefet_am.cols == config_.signature_bits,
                       "FeFET AM width " << config_.fefet_am.cols << " != signature "
                                         << config_.signature_bits);
    }
    hw_lsh_.emplace(config_.hash_xbar, config_.signature_bits, rng_);
    if (config_.centered_hashing) hw_lsh_->calibrate_centering();
  }
}

double MannPipeline::pretrain(workload::FewShotGenerator& gen, std::size_t classes,
                              std::size_t per_class, std::size_t epochs, double learning_rate) {
  XLDS_REQUIRE_MSG(classes <= 16, "the CNN head has 16 logits; pretrain on <= 16 classes");
  std::vector<std::vector<double>> xs;
  std::vector<std::size_t> ys;
  gen.sample_flat(classes, per_class, xs, ys);
  for (std::size_t e = 0; e < epochs; ++e) cnn_.train_epoch(xs, ys, learning_rate, rng_);
  pretrained_ = true;
  return cnn_.accuracy(xs, ys);
}

std::vector<double> MannPipeline::features(const std::vector<double>& image) {
  XLDS_REQUIRE(image.size() == config_.image_side * config_.image_side);
  // Embedding = output of the dense layer before the classifier head
  // (skip the final Dense; keep its preceding ReLU): drop 1 layer.
  std::vector<double> fv = cnn_.forward_until(image, 1);
  double norm = 0.0;
  for (double v : fv) norm += v * v;
  norm = std::sqrt(norm);
  if (norm > 0.0)
    for (double& v : fv) v /= norm;
  return fv;
}

Signature MannPipeline::stored_signature(const std::vector<double>& fv) const {
  switch (config_.backend) {
    case Backend::kSoftwareCosine: XLDS_ASSERT(false);
    case Backend::kSoftwareLsh: return sw_lsh_->hash(fv);
    case Backend::kRramLsh: return hw_lsh_->hash(fv);
    case Backend::kRramTlsh:
    case Backend::kFeFetTlsh: {
      // Fixed X count per stored row: ~threshold/2 of the bits (the fraction
      // a median-relative threshold of the same value would mask on average)
      // so TCAM rows stay bias-free against each other.
      const auto k = static_cast<std::size_t>(0.5 * config_.tlsh_threshold *
                                              static_cast<double>(config_.signature_bits));
      return hw_lsh_->hash_ternary_fixed(fv, k);
    }
  }
  XLDS_ASSERT(false);
}

Signature MannPipeline::query_signature(const std::vector<double>& fv) const {
  // Queries are always binary: don't-care lives in the *stored* word.
  switch (config_.backend) {
    case Backend::kSoftwareCosine: XLDS_ASSERT(false);
    case Backend::kSoftwareLsh: return sw_lsh_->hash(fv);
    case Backend::kRramLsh:
    case Backend::kRramTlsh:
    case Backend::kFeFetTlsh: return hw_lsh_->hash(fv);
  }
  XLDS_ASSERT(false);
}

EpisodeResult MannPipeline::run_episode(const workload::Episode& episode) {
  XLDS_REQUIRE_MSG(pretrained_, "pretrain() the feature extractor first");
  XLDS_REQUIRE(!episode.support_x.empty() && !episode.query_x.empty());

  EpisodeResult result;
  result.queries = episode.query_x.size();

  std::vector<std::vector<double>> support_fv(episode.support_x.size());
  for (std::size_t i = 0; i < episode.support_x.size(); ++i)
    support_fv[i] = features(episode.support_x[i]);

  if (config_.backend == Backend::kSoftwareCosine) {
    std::size_t correct = 0;
    for (std::size_t q = 0; q < episode.query_x.size(); ++q) {
      const std::vector<double> fv = features(episode.query_x[q]);
      std::size_t best = 0;
      double best_dot = -HUGE_VAL;
      for (std::size_t s = 0; s < support_fv.size(); ++s) {
        const double dot = kernels::dot(fv.data(), support_fv[s].data(), fv.size());
        if (dot > best_dot) {
          best_dot = dot;
          best = s;
        }
      }
      if (episode.support_y[best] == episode.query_y[q]) ++correct;
    }
    result.accuracy = static_cast<double>(correct) / static_cast<double>(result.queries);
    return result;
  }

  // Fresh episode, fresh devices: the prototype reprogrammed arrays between
  // tasks, so the stochastic projection is redrawn and relaxation restarts
  // (and the centering calibration re-measured).
  if (hw_lsh_.has_value()) {
    hw_lsh_->crossbar().program_stochastic_hrs();
    if (config_.centered_hashing) hw_lsh_->calibrate_centering();
  }

  // Hash the support set and store it.
  std::vector<Signature> stored(support_fv.size());
  double dc_sum = 0.0;
  for (std::size_t s = 0; s < support_fv.size(); ++s) {
    stored[s] = stored_signature(support_fv[s]);
    dc_sum += dont_care_fraction(stored[s]);
  }
  result.mean_dont_care = dc_sum / static_cast<double>(stored.size());

  if (config_.backend == Backend::kSoftwareLsh) {
    // Pack the support set once; every query then compares packed words.
    std::vector<PackedSignature> packed(stored.size());
    for (std::size_t s = 0; s < stored.size(); ++s) packed[s] = pack_signature(stored[s]);
    std::size_t correct = 0;
    for (std::size_t q = 0; q < episode.query_x.size(); ++q) {
      const PackedSignature qs = pack_signature(query_signature(features(episode.query_x[q])));
      std::size_t best = 0;
      std::size_t best_d = stored.front().size() + 1;
      for (std::size_t s = 0; s < packed.size(); ++s) {
        const std::size_t d = signature_distance(packed[s], qs);
        if (d < best_d) {
          best_d = d;
          best = s;
        }
      }
      if (episode.support_y[best] == episode.query_y[q]) ++correct;
    }
    result.accuracy = static_cast<double>(correct) / static_cast<double>(result.queries);
    return result;
  }

  if (config_.backend == Backend::kFeFetTlsh) {
    // FeFET TCAM AM: binary signatures as 1-bit digits; X stays don't-care.
    cam::FeFetCamConfig am_cfg = config_.fefet_am;
    am_cfg.rows = stored.size();
    cam::FeFetCamArray am(am_cfg, rng_);
    for (std::size_t s = 0; s < stored.size(); ++s) am.write_word(s, stored[s]);
    if (config_.relaxation_s > 0.0) hw_lsh_->age(config_.relaxation_s);
    // FeFET V_th states do not relax the way RRAM filaments do: the AM side
    // keeps its programmed values (the ref-[31] selling point).
    std::size_t correct = 0;
    for (std::size_t q = 0; q < episode.query_x.size(); ++q) {
      const Signature qs = query_signature(features(episode.query_x[q]));
      const cam::SearchResult res = am.search(qs);
      if (episode.support_y[res.best_row] == episode.query_y[q]) ++correct;
    }
    result.accuracy = static_cast<double>(correct) / static_cast<double>(result.queries);
    return result;
  }

  // RRAM backends: write signatures into a fresh TCAM sized to the episode.
  cam::RramTcamConfig am_cfg = config_.am;
  am_cfg.rows = stored.size();
  cam::RramTcamArray am(am_cfg, rng_);
  for (std::size_t s = 0; s < stored.size(); ++s) am.write_word(s, stored[s]);

  if (config_.relaxation_s > 0.0) {
    am.age(config_.relaxation_s);
    hw_lsh_->age(config_.relaxation_s);
  }

  std::size_t correct = 0;
  for (std::size_t q = 0; q < episode.query_x.size(); ++q) {
    const Signature qs = query_signature(features(episode.query_x[q]));
    const cam::SearchResult res = am.search(qs);
    if (episode.support_y[res.best_row] == episode.query_y[q]) ++correct;
  }
  result.accuracy = static_cast<double>(correct) / static_cast<double>(result.queries);
  return result;
}

double MannPipeline::evaluate(workload::FewShotGenerator& gen, std::size_t n_episodes,
                              std::size_t n_way, std::size_t k_shot,
                              std::size_t queries_per_class) {
  XLDS_REQUIRE(n_episodes >= 1);
  double sum = 0.0;
  for (std::size_t e = 0; e < n_episodes; ++e)
    sum += run_episode(gen.sample_episode(n_way, k_shot, queries_per_class)).accuracy;
  return sum / static_cast<double>(n_episodes);
}

cam::SearchCost MannPipeline::hardware_query_cost(std::size_t support_rows) const {
  XLDS_REQUIRE_MSG(hw_lsh_.has_value(), "hardware cost applies to the RRAM backends");
  const xbar::MvmCost hash = hw_lsh_->hash_cost();
  cam::RramTcamConfig am_cfg = config_.am;
  am_cfg.rows = std::max<std::size_t>(support_rows, 1);
  Rng tmp(1);
  const cam::RramTcamArray am(am_cfg, tmp);
  cam::SearchCost cost = am.search_cost();
  cost.latency += hash.latency;
  cost.energy += hash.energy;
  return cost;
}

std::size_t MannPipeline::cnn_macs() const { return cnn_.total_counts().macs; }

}  // namespace xlds::mann
