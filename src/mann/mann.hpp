// Memory-augmented neural network for few-shot learning (Sec. IV, Fig. 4A).
//
// Pipeline: CNN feature extractor (pre-trained on background classes) ->
// LSH/TLSH hashing of the feature vector -> associative memory storing the
// support set's signatures -> nearest-neighbour classification of queries.
// Backends swap the hashing + search substrate:
//   * kSoftwareCosine — float cosine distance on feature vectors (the
//     software reference the paper measures degradation against),
//   * kSoftwareLsh    — ideal Gaussian LSH + exact Hamming distance,
//   * kRramLsh        — stochastic-conductance crossbar hashing + RRAM TCAM
//     search (binary signatures),
//   * kRramTlsh       — ternary crossbar hashing: near-plane bits stored as
//     don't-care in the TCAM (the Fig. 4C mitigation).
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "cam/fefet_cam.hpp"
#include "cam/rram_tcam.hpp"
#include "mann/lsh.hpp"
#include "nn/network.hpp"
#include "util/rng.hpp"
#include "workload/fewshot.hpp"
#include "xbar/crossbar.hpp"

namespace xlds::mann {

enum class Backend {
  kSoftwareCosine,
  kSoftwareLsh,
  kRramLsh,
  kRramTlsh,
  /// Crossbar TLSH hashing with a FeFET TCAM associative memory — the
  /// one-shot-learning AM alternative the paper cites (ref [31]).
  kFeFetTlsh,
};

std::string to_string(Backend b);

struct MannConfig {
  std::size_t image_side = 20;
  std::size_t embedding = 64;        ///< CNN feature-vector length
  std::size_t signature_bits = 128;  ///< hash length (paper prototype: 128)
  double tlsh_threshold = 0.35;      ///< X-bit threshold, fraction of median |diff|
  Backend backend = Backend::kRramTlsh;
  xbar::CrossbarConfig hash_xbar;    ///< rows must equal `embedding`
  cam::RramTcamConfig am;            ///< cols must equal `signature_bits`
  cam::FeFetCamConfig fefet_am;      ///< kFeFetTlsh only; 1-bit cells
  /// Conductance relaxation time between writing the support set and
  /// querying (0 = fresh devices).  Destabilises near-plane bits.
  double relaxation_s = 0.0;
  /// Centre the hash projections on the feature-vector mean (the all-ones
  /// calibration read): recovers angular resolution for post-ReLU features.
  bool centered_hashing = true;
};

struct EpisodeResult {
  double accuracy = 0.0;
  std::size_t queries = 0;
  double mean_dont_care = 0.0;  ///< fraction of X bits in stored signatures
};

class MannPipeline {
 public:
  MannPipeline(MannConfig config, Rng& rng);

  const MannConfig& config() const noexcept { return config_; }

  /// Train the CNN feature extractor on background classes of the generator.
  /// Returns the final training accuracy.
  double pretrain(workload::FewShotGenerator& gen, std::size_t classes, std::size_t per_class,
                  std::size_t epochs, double learning_rate);

  /// Feature vector of an image (CNN embedding, L2-normalised).
  std::vector<double> features(const std::vector<double>& image);

  /// Run one episode through the configured backend.
  EpisodeResult run_episode(const workload::Episode& episode);

  /// Mean accuracy over `n_episodes` fresh episodes.
  double evaluate(workload::FewShotGenerator& gen, std::size_t n_episodes, std::size_t n_way,
                  std::size_t k_shot, std::size_t queries_per_class);

  /// Hardware cost of one query (hash MVM + AM search), for the architecture
  /// models.  Only meaningful for the RRAM backends.
  cam::SearchCost hardware_query_cost(std::size_t support_rows) const;

  /// MAC count of one CNN feature extraction (for platform models).
  std::size_t cnn_macs() const;

 private:
  Signature stored_signature(const std::vector<double>& fv) const;
  Signature query_signature(const std::vector<double>& fv) const;

  MannConfig config_;
  Rng rng_;
  nn::Network cnn_;
  std::optional<SoftwareLsh> sw_lsh_;
  std::optional<CrossbarLsh> hw_lsh_;
  bool pretrained_ = false;
};

}  // namespace xlds::mann
