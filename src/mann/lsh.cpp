#include "mann/lsh.hpp"

#include <algorithm>
#include <cmath>

#include "kernels/mvm.hpp"
#include "util/error.hpp"

namespace xlds::mann {

PackedSignature pack_signature(const Signature& s) {
  return kernels::pack_ternary(s, cam::kDontCare);
}

std::size_t signature_distance(const PackedSignature& a, const PackedSignature& b) {
  return kernels::ternary_distance(a, b);
}

double dont_care_fraction(const Signature& s) {
  XLDS_REQUIRE(!s.empty());
  std::size_t x = 0;
  for (int b : s)
    if (b == cam::kDontCare) ++x;
  return static_cast<double>(x) / static_cast<double>(s.size());
}

std::size_t signature_distance(const Signature& a, const Signature& b) {
  XLDS_REQUIRE(a.size() == b.size());
  std::size_t d = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] == cam::kDontCare || b[i] == cam::kDontCare) continue;
    if (a[i] != b[i]) ++d;
  }
  return d;
}

// ---- SoftwareLsh ------------------------------------------------------------

SoftwareLsh::SoftwareLsh(std::size_t input_dim, std::size_t bits, Rng& rng)
    : input_dim_(input_dim), bits_(bits), r_(input_dim, bits) {
  XLDS_REQUIRE(input_dim >= 1 && bits >= 1);
  for (double& v : r_.data()) v = rng.normal();
}

void SoftwareLsh::calibrate_centering() {
  const std::vector<double> ones(input_dim_, 1.0);
  ones_response_.resize(bits_);
  kernels::matvec_t(r_.data().data(), input_dim_, bits_, ones.data(), ones_response_.data());
}

std::vector<double> SoftwareLsh::project(const std::vector<double>& x) const {
  XLDS_REQUIRE_MSG(x.size() == input_dim_, "project: " << x.size() << " != " << input_dim_);
  std::vector<double> p(bits_);
  kernels::matvec_t(r_.data().data(), input_dim_, bits_, x.data(), p.data());
  if (!ones_response_.empty()) {
    double x_bar = 0.0;
    for (double v : x) x_bar += v;
    x_bar /= static_cast<double>(x.size());
    for (std::size_t i = 0; i < bits_; ++i) p[i] -= x_bar * ones_response_[i];
  }
  return p;
}

Signature SoftwareLsh::hash(const std::vector<double>& x) const {
  const std::vector<double> p = project(x);
  Signature s(bits_);
  for (std::size_t i = 0; i < bits_; ++i) s[i] = p[i] >= 0.0 ? 1 : 0;
  return s;
}

Signature SoftwareLsh::hash_ternary(const std::vector<double>& x, double margin) const {
  XLDS_REQUIRE(margin >= 0.0);
  const std::vector<double> p = project(x);
  // Scale of the projections for this input: RMS over the signature.
  double rms = 0.0;
  for (double v : p) rms += v * v;
  rms = std::sqrt(rms / static_cast<double>(p.size()));
  Signature s(bits_);
  for (std::size_t i = 0; i < bits_; ++i) {
    if (std::abs(p[i]) < margin * rms)
      s[i] = cam::kDontCare;
    else
      s[i] = p[i] >= 0.0 ? 1 : 0;
  }
  return s;
}

// ---- CrossbarLsh ------------------------------------------------------------

CrossbarLsh::CrossbarLsh(xbar::CrossbarConfig config, std::size_t bits, Rng& rng)
    : bits_(bits), xbar_([&] {
        XLDS_REQUIRE(bits >= 1);
        XLDS_REQUIRE_MSG(config.cols >= 2 * bits,
                         "need " << 2 * bits << " physical columns, config has " << config.cols);
        return xbar::Crossbar(config, rng);
      }()) {
  xbar_.program_stochastic_hrs();
}

void CrossbarLsh::calibrate_centering() {
  // Average over a few reads so read noise does not bake into the offset.
  constexpr int kReads = 8;
  const std::vector<double> ones(xbar_.rows(), 1.0);
  ones_response_.assign(bits_, 0.0);
  for (int rep = 0; rep < kReads; ++rep) {
    const std::vector<double> currents = xbar_.column_currents(ones);
    for (std::size_t i = 0; i < bits_; ++i)
      ones_response_[i] += (currents[2 * i] - currents[2 * i + 1]) / kReads;
  }
}

std::vector<double> CrossbarLsh::project(const std::vector<double>& x) const {
  const std::vector<double> currents = xbar_.column_currents(x);
  std::vector<double> diffs(bits_);
  kernels::diff_pairs(currents.data(), bits_, 1.0, diffs.data());
  if (!ones_response_.empty()) {
    double x_bar = 0.0;
    for (double v : x) x_bar += v;
    x_bar /= static_cast<double>(x.size());
    for (std::size_t i = 0; i < bits_; ++i) diffs[i] -= x_bar * ones_response_[i];
  }
  return diffs;
}

Signature CrossbarLsh::hash(const std::vector<double>& x) const {
  const std::vector<double> d = project(x);
  Signature s(bits_);
  for (std::size_t i = 0; i < bits_; ++i) s[i] = d[i] >= 0.0 ? 1 : 0;
  return s;
}

MatrixD CrossbarLsh::project_batch(const MatrixD& xs) const {
  const MatrixD currents = xbar_.readout_batch(xs);
  const std::size_t batch = xs.rows();
  MatrixD diffs(batch, bits_);
  for (std::size_t b = 0; b < batch; ++b)
    kernels::diff_pairs(currents.row_data(b), bits_, 1.0, diffs.row_data(b));
  if (!ones_response_.empty()) {
    for (std::size_t b = 0; b < batch; ++b) {
      const double* x = xs.row_data(b);
      double x_bar = 0.0;
      for (std::size_t r = 0; r < xs.cols(); ++r) x_bar += x[r];
      x_bar /= static_cast<double>(xs.cols());
      double* d = diffs.row_data(b);
      for (std::size_t i = 0; i < bits_; ++i) d[i] -= x_bar * ones_response_[i];
    }
  }
  return diffs;
}

std::vector<Signature> CrossbarLsh::hash_batch(const MatrixD& xs) const {
  const MatrixD d = project_batch(xs);
  std::vector<Signature> out(xs.rows());
  for (std::size_t b = 0; b < xs.rows(); ++b) {
    const double* db = d.row_data(b);
    Signature& s = out[b];
    s.resize(bits_);
    for (std::size_t i = 0; i < bits_; ++i) s[i] = db[i] >= 0.0 ? 1 : 0;
  }
  return out;
}

Signature CrossbarLsh::hash_ternary(const std::vector<double>& x,
                                    double threshold_fraction) const {
  XLDS_REQUIRE(threshold_fraction >= 0.0);
  const std::vector<double> d = project(x);
  std::vector<double> mags(d.size());
  for (std::size_t i = 0; i < d.size(); ++i) mags[i] = std::abs(d[i]);
  std::nth_element(mags.begin(), mags.begin() + mags.size() / 2, mags.end());
  const double median = mags[mags.size() / 2];
  const double threshold = threshold_fraction * median;
  Signature s(bits_);
  for (std::size_t i = 0; i < bits_; ++i) {
    if (std::abs(d[i]) < threshold)
      s[i] = cam::kDontCare;
    else
      s[i] = d[i] >= 0.0 ? 1 : 0;
  }
  return s;
}

Signature CrossbarLsh::hash_ternary_fixed(const std::vector<double>& x,
                                          std::size_t n_dont_care) const {
  XLDS_REQUIRE_MSG(n_dont_care < bits_, "cannot mask all " << bits_ << " bits");
  const std::vector<double> d = project(x);
  std::vector<std::size_t> order(bits_);
  for (std::size_t i = 0; i < bits_; ++i) order[i] = i;
  std::nth_element(order.begin(), order.begin() + n_dont_care, order.end(),
                   [&](std::size_t a, std::size_t b) { return std::abs(d[a]) < std::abs(d[b]); });
  Signature s(bits_);
  for (std::size_t i = 0; i < bits_; ++i) s[i] = d[i] >= 0.0 ? 1 : 0;
  for (std::size_t i = 0; i < n_dont_care; ++i) s[order[i]] = cam::kDontCare;
  return s;
}

void CrossbarLsh::age(double dt) { xbar_.age(dt); }

}  // namespace xlds::mann
