// Locality-sensitive hashing, software and crossbar-based (Sec. IV, Fig. 4B).
//
// LSH signs random projections: inputs that are close in angle are likely to
// hash to the same bits.  The RRAM realisation programs a crossbar with
// random HRS-state conductances (the intrinsic device-to-device spread *is*
// the random matrix) and takes each signature bit from the sign of the
// difference between two adjacent column currents — a zero-mean random
// projection without computing one explicitly.
//
// Ternary LSH (TLSH) marks a bit "don't care" when the projection lands too
// close to the hashing plane (|difference| below a threshold): exactly the
// bits that conductance relaxation flips.  Stored as X in the ternary CAM,
// they contribute zero Hamming distance regardless of the query (Fig. 4C).
#pragma once

#include <cstddef>
#include <vector>

#include "cam/types.hpp"
#include "kernels/bitpack.hpp"
#include "util/matrix.hpp"
#include "util/rng.hpp"
#include "xbar/crossbar.hpp"

namespace xlds::mann {

/// A hash signature: entries 0, 1 or cam::kDontCare (TLSH only).
using Signature = std::vector<int>;

/// Bit-packed signature (value + care planes, 64 bits per word).  Stored
/// rows are packed once per episode; each query compare is then a handful of
/// XOR/AND/popcount words instead of a loop over int digits.
using PackedSignature = kernels::PackedTernary;

/// Pack a signature (cam::kDontCare becomes a cleared care bit).
PackedSignature pack_signature(const Signature& s);

/// Fraction of don't-care bits in a signature.
double dont_care_fraction(const Signature& s);

/// Ternary-aware Hamming distance (X matches everything).
std::size_t signature_distance(const Signature& a, const Signature& b);

/// Packed overload — identical result to the digit-wise version.
std::size_t signature_distance(const PackedSignature& a, const PackedSignature& b);

/// Software (ideal) LSH: dense Gaussian random projection.
class SoftwareLsh {
 public:
  SoftwareLsh(std::size_t input_dim, std::size_t bits, Rng& rng);

  std::size_t bits() const noexcept { return bits_; }

  /// Binary signature: sign of each projection.
  Signature hash(const std::vector<double>& x) const;

  /// Ternary signature: bits with |projection| < margin * sigma_proj become X,
  /// where sigma_proj is the projection's scale for this input.
  Signature hash_ternary(const std::vector<double>& x, double margin) const;

  /// Raw projection values (for correlation studies).
  std::vector<double> project(const std::vector<double>& x) const;

  /// Centre the effective projection: subtract mean(x) * (column sums of R)
  /// from every projection — the software analogue of the crossbar's
  /// all-ones calibration.
  void calibrate_centering();
  bool centering_calibrated() const noexcept { return !ones_response_.empty(); }

 private:
  std::size_t input_dim_;
  std::size_t bits_;
  MatrixD r_;  ///< [input_dim x bits]
  std::vector<double> ones_response_;
};

/// RRAM-crossbar LSH: stochastic HRS conductances + adjacent-column
/// differencing.  Signature bit i compares physical columns 2i and 2i+1.
class CrossbarLsh {
 public:
  /// `bits` signature bits need 2*bits physical columns; the config's
  /// rows must equal the input dimensionality.  Tiles are not supported —
  /// the paper's prototype used single 64x64 arrays per hash block, and a
  /// block's columns must share an array for the differencing to cancel
  /// common-mode IR drop.
  CrossbarLsh(xbar::CrossbarConfig config, std::size_t bits, Rng& rng);

  std::size_t bits() const noexcept { return bits_; }
  xbar::Crossbar& crossbar() noexcept { return xbar_; }
  const xbar::Crossbar& crossbar() const noexcept { return xbar_; }

  Signature hash(const std::vector<double>& x) const;

  /// Batched hashing: xs is [batch x input_dim]; entry b is bit-identical to
  /// hash(row b) issued sequentially.  All rows share the crossbar's cached
  /// nodal factorization (kNodal mode), so hashing an episode's worth of
  /// vectors costs one factorization plus cheap per-row substitutions.
  std::vector<Signature> hash_batch(const MatrixD& xs) const;

  /// Batched projection (see hash_batch): row b of the result equals
  /// project(row b).
  MatrixD project_batch(const MatrixD& xs) const;

  /// TLSH: X when |I_{2i} - I_{2i+1}| < threshold_fraction * median(|diff|)
  /// measured on this input.
  Signature hash_ternary(const std::vector<double>& x, double threshold_fraction) const;

  /// Fixed-count TLSH: exactly the `n_dont_care` least-confident bits become
  /// X.  Keeping the X count identical across stored rows removes the
  /// distance bias a TCAM would otherwise see between rows with different
  /// don't-care populations.
  Signature hash_ternary_fixed(const std::vector<double>& x, std::size_t n_dont_care) const;

  /// One-time calibration: measure the array's response to the all-ones
  /// input and subtract mean(x) * that response from every projection.
  /// This centres the effective projection (P(x - x_bar * 1)), recovering
  /// angular resolution for non-negative, angle-compressed inputs (post-ReLU
  /// feature vectors) at the cost of one extra stored current vector.
  void calibrate_centering();
  bool centering_calibrated() const noexcept { return !ones_response_.empty(); }

  /// Column-current differences (the analog pre-sign values).
  std::vector<double> project(const std::vector<double>& x) const;

  /// Apply conductance relaxation (destabilises near-plane bits).
  void age(double dt);

  xbar::MvmCost hash_cost() const { return xbar_.mvm_cost(); }

 private:
  std::size_t bits_;
  xbar::Crossbar xbar_;
  std::vector<double> ones_response_;  ///< per-bit diff for the all-ones input
};

}  // namespace xlds::mann
