// Network container: a layer stack with softmax-cross-entropy training and
// convenience builders for the MLP / small-CNN configurations used by the
// case studies.
#pragma once

#include <memory>
#include <vector>

#include "nn/layer.hpp"
#include "util/rng.hpp"

namespace xlds::nn {

std::vector<double> softmax(const std::vector<double>& logits);

class Network {
 public:
  Network() = default;

  /// Append a layer; returns *this for chaining.
  Network& add(std::unique_ptr<Layer> layer);

  /// Forward through all layers; returns the logits.
  std::vector<double> forward(const std::vector<double>& input);

  /// Index of the highest logit.
  std::size_t predict(const std::vector<double>& input);

  /// One SGD step on a single example with softmax-cross-entropy loss;
  /// returns the loss value.
  double train_step(const std::vector<double>& input, std::size_t label, double learning_rate,
                    double momentum = 0.9, double weight_decay = 0.0);

  /// One epoch over a dataset (shuffled); returns the mean loss.
  double train_epoch(const std::vector<std::vector<double>>& inputs,
                     const std::vector<std::size_t>& labels, double learning_rate, Rng& rng,
                     double momentum = 0.9, double weight_decay = 0.0);

  /// Classification accuracy over a dataset.
  double accuracy(const std::vector<std::vector<double>>& inputs,
                  const std::vector<std::size_t>& labels);

  /// Output of the layer stack up to (and excluding) layer `n_last` — used to
  /// extract embeddings/feature vectors from a trained classifier.
  std::vector<double> forward_until(const std::vector<double>& input, std::size_t n_last);

  LayerCounts total_counts() const;
  std::size_t layer_count() const noexcept { return layers_.size(); }

  /// Access a layer by stack index (bounds-checked) — the crossbar layer
  /// mapper pulls trained dense-layer weights out of a network with this.
  const Layer& layer(std::size_t i) const { return *layers_.at(i); }
  Layer& layer(std::size_t i) { return *layers_.at(i); }

  /// Visit every trainable weight across all layers (fault injection,
  /// quantised export, weight statistics).
  void visit_weights(const std::function<void(double&)>& fn);

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

/// MLP: input -> hidden(ReLU) x N -> classes logits.
Network make_mlp(std::size_t input, const std::vector<std::size_t>& hidden, std::size_t classes,
                 Rng& rng);

/// Small CNN for [1 x side x side] images: conv(k5) -> pool -> conv(k3) ->
/// pool -> dense(embedding) -> ReLU -> dense(classes).  The dense(embedding)
/// output is the feature vector the MANN pipeline hashes.
Network make_small_cnn(std::size_t side, std::size_t classes, std::size_t embedding, Rng& rng);

}  // namespace xlds::nn
