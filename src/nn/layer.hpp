// Minimal trainable neural-network substrate.
//
// The paper's case studies need small nets, trained from scratch on synthetic
// data: MLP baselines for Fig. 3H, and the CNN feature extractor of the MANN
// pipeline (Sec. IV).  The substrate is a classic layer stack with explicit
// forward/backward; no autograd, no BLAS — network sizes here are tiny and
// the priority is dependable, inspectable numerics.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "util/matrix.hpp"
#include "util/rng.hpp"

namespace xlds::nn {

/// Static cost of a layer, consumed by the architecture models (Sec. V/VI
/// need MAC counts and parameter counts to estimate platform latencies).
struct LayerCounts {
  std::size_t macs = 0;
  std::size_t params = 0;
};

class Layer {
 public:
  virtual ~Layer() = default;

  /// Forward pass; implementations cache what backward() needs.
  virtual std::vector<double> forward(const std::vector<double>& input) = 0;

  /// Backward pass: gradient wrt input given gradient wrt output; accumulates
  /// parameter gradients internally.
  virtual std::vector<double> backward(const std::vector<double>& grad_output) = 0;

  /// Apply accumulated gradients (SGD + momentum + L2 weight decay) and
  /// clear them.
  virtual void update(double learning_rate, double momentum, double weight_decay) = 0;

  virtual LayerCounts counts() const = 0;
  virtual std::size_t output_size() const = 0;

  /// Visit every trainable weight (not biases) — the hook fault-injection
  /// and weight-export tooling (the NVMExplorer lane) uses.
  virtual void visit_weights(const std::function<void(double&)>& fn) { (void)fn; }
};

class DenseLayer final : public Layer {
 public:
  DenseLayer(std::size_t in, std::size_t out, Rng& rng);

  std::vector<double> forward(const std::vector<double>& input) override;
  std::vector<double> backward(const std::vector<double>& grad_output) override;
  void update(double learning_rate, double momentum, double weight_decay) override;
  LayerCounts counts() const override;
  std::size_t output_size() const override { return out_; }

  const MatrixD& weights() const noexcept { return w_; }
  MatrixD& mutable_weights() noexcept { return w_; }

  void visit_weights(const std::function<void(double&)>& fn) override {
    for (double& w : w_.data()) fn(w);
  }

 private:
  std::size_t in_, out_;
  MatrixD w_;   ///< [in x out]
  std::vector<double> b_;
  MatrixD gw_;
  std::vector<double> gb_;
  MatrixD vw_;  ///< momentum buffers
  std::vector<double> vb_;
  std::vector<double> last_input_;
};

class ReluLayer final : public Layer {
 public:
  explicit ReluLayer(std::size_t size) : size_(size) {}

  std::vector<double> forward(const std::vector<double>& input) override;
  std::vector<double> backward(const std::vector<double>& grad_output) override;
  void update(double, double, double) override {}
  LayerCounts counts() const override { return {}; }
  std::size_t output_size() const override { return size_; }

 private:
  std::size_t size_;
  std::vector<double> last_input_;
};

/// 2-D convolution over [channels x height x width] flattened input, valid
/// padding, square kernel, stride 1.
class Conv2dLayer final : public Layer {
 public:
  Conv2dLayer(std::size_t in_c, std::size_t in_h, std::size_t in_w, std::size_t out_c,
              std::size_t kernel, Rng& rng);

  std::vector<double> forward(const std::vector<double>& input) override;
  std::vector<double> backward(const std::vector<double>& grad_output) override;
  void update(double learning_rate, double momentum, double weight_decay) override;
  LayerCounts counts() const override;
  std::size_t output_size() const override { return out_c_ * out_h_ * out_w_; }

  std::size_t out_h() const noexcept { return out_h_; }
  std::size_t out_w() const noexcept { return out_w_; }
  std::size_t out_c() const noexcept { return out_c_; }

  void visit_weights(const std::function<void(double&)>& fn) override {
    for (double& w : w_) fn(w);
  }

 private:
  double& kernel_at(std::size_t oc, std::size_t ic, std::size_t ky, std::size_t kx);
  double kernel_at(std::size_t oc, std::size_t ic, std::size_t ky, std::size_t kx) const;

  std::size_t in_c_, in_h_, in_w_, out_c_, k_;
  std::size_t out_h_, out_w_;
  std::vector<double> w_;  ///< [out_c][in_c][k][k]
  std::vector<double> b_;
  std::vector<double> gw_, gb_, vw_, vb_;
  std::vector<double> last_input_;
};

/// 2x2 max pooling, stride 2, over [channels x height x width].
class MaxPoolLayer final : public Layer {
 public:
  MaxPoolLayer(std::size_t channels, std::size_t in_h, std::size_t in_w);

  std::vector<double> forward(const std::vector<double>& input) override;
  std::vector<double> backward(const std::vector<double>& grad_output) override;
  void update(double, double, double) override {}
  LayerCounts counts() const override { return {}; }
  std::size_t output_size() const override { return c_ * out_h_ * out_w_; }

 private:
  std::size_t c_, in_h_, in_w_, out_h_, out_w_;
  std::vector<std::size_t> argmax_;
};

}  // namespace xlds::nn
