#include "nn/layer.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace xlds::nn {

// ---- DenseLayer -----------------------------------------------------------

DenseLayer::DenseLayer(std::size_t in, std::size_t out, Rng& rng)
    : in_(in),
      out_(out),
      w_(in, out),
      b_(out, 0.0),
      gw_(in, out),
      gb_(out, 0.0),
      vw_(in, out),
      vb_(out, 0.0) {
  XLDS_REQUIRE(in >= 1 && out >= 1);
  // He initialisation, appropriate for the ReLU nets we build.
  const double scale = std::sqrt(2.0 / static_cast<double>(in));
  for (double& w : w_.data()) w = rng.normal(0.0, scale);
}

std::vector<double> DenseLayer::forward(const std::vector<double>& input) {
  XLDS_REQUIRE_MSG(input.size() == in_, "dense: input " << input.size() << " != " << in_);
  last_input_ = input;
  std::vector<double> out = w_.matvec_transposed(input);
  for (std::size_t j = 0; j < out_; ++j) out[j] += b_[j];
  return out;
}

std::vector<double> DenseLayer::backward(const std::vector<double>& grad_output) {
  XLDS_REQUIRE(grad_output.size() == out_);
  XLDS_REQUIRE_MSG(!last_input_.empty(), "backward before forward");
  for (std::size_t i = 0; i < in_; ++i) {
    const double x = last_input_[i];
    double* grow = gw_.row_data(i);
    for (std::size_t j = 0; j < out_; ++j) grow[j] += x * grad_output[j];
  }
  for (std::size_t j = 0; j < out_; ++j) gb_[j] += grad_output[j];
  return w_.matvec(grad_output);
}

void DenseLayer::update(double learning_rate, double momentum, double weight_decay) {
  for (std::size_t i = 0; i < w_.size(); ++i) {
    const double grad = gw_.data()[i] + weight_decay * w_.data()[i];
    vw_.data()[i] = momentum * vw_.data()[i] - learning_rate * grad;
    w_.data()[i] += vw_.data()[i];
    gw_.data()[i] = 0.0;
  }
  for (std::size_t j = 0; j < out_; ++j) {
    vb_[j] = momentum * vb_[j] - learning_rate * gb_[j];
    b_[j] += vb_[j];
    gb_[j] = 0.0;
  }
}

LayerCounts DenseLayer::counts() const { return {in_ * out_, in_ * out_ + out_}; }

// ---- ReluLayer ------------------------------------------------------------

std::vector<double> ReluLayer::forward(const std::vector<double>& input) {
  XLDS_REQUIRE(input.size() == size_);
  last_input_ = input;
  std::vector<double> out(input.size());
  for (std::size_t i = 0; i < input.size(); ++i) out[i] = std::max(0.0, input[i]);
  return out;
}

std::vector<double> ReluLayer::backward(const std::vector<double>& grad_output) {
  XLDS_REQUIRE(grad_output.size() == size_);
  std::vector<double> grad(grad_output.size());
  for (std::size_t i = 0; i < grad.size(); ++i)
    grad[i] = last_input_[i] > 0.0 ? grad_output[i] : 0.0;
  return grad;
}

// ---- Conv2dLayer ----------------------------------------------------------

Conv2dLayer::Conv2dLayer(std::size_t in_c, std::size_t in_h, std::size_t in_w, std::size_t out_c,
                         std::size_t kernel, Rng& rng)
    : in_c_(in_c), in_h_(in_h), in_w_(in_w), out_c_(out_c), k_(kernel) {
  XLDS_REQUIRE(in_h >= kernel && in_w >= kernel && kernel >= 1);
  out_h_ = in_h_ - k_ + 1;
  out_w_ = in_w_ - k_ + 1;
  const std::size_t n_w = out_c_ * in_c_ * k_ * k_;
  w_.resize(n_w);
  b_.assign(out_c_, 0.0);
  gw_.assign(n_w, 0.0);
  gb_.assign(out_c_, 0.0);
  vw_.assign(n_w, 0.0);
  vb_.assign(out_c_, 0.0);
  const double scale = std::sqrt(2.0 / static_cast<double>(in_c_ * k_ * k_));
  for (double& w : w_) w = rng.normal(0.0, scale);
}

double& Conv2dLayer::kernel_at(std::size_t oc, std::size_t ic, std::size_t ky, std::size_t kx) {
  return w_[((oc * in_c_ + ic) * k_ + ky) * k_ + kx];
}
double Conv2dLayer::kernel_at(std::size_t oc, std::size_t ic, std::size_t ky,
                              std::size_t kx) const {
  return w_[((oc * in_c_ + ic) * k_ + ky) * k_ + kx];
}

std::vector<double> Conv2dLayer::forward(const std::vector<double>& input) {
  XLDS_REQUIRE_MSG(input.size() == in_c_ * in_h_ * in_w_,
                   "conv: input " << input.size() << " != " << in_c_ * in_h_ * in_w_);
  last_input_ = input;
  std::vector<double> out(output_size(), 0.0);
  for (std::size_t oc = 0; oc < out_c_; ++oc) {
    for (std::size_t oy = 0; oy < out_h_; ++oy) {
      for (std::size_t ox = 0; ox < out_w_; ++ox) {
        double acc = b_[oc];
        for (std::size_t ic = 0; ic < in_c_; ++ic) {
          for (std::size_t ky = 0; ky < k_; ++ky) {
            for (std::size_t kx = 0; kx < k_; ++kx) {
              acc += kernel_at(oc, ic, ky, kx) *
                     input[(ic * in_h_ + oy + ky) * in_w_ + ox + kx];
            }
          }
        }
        out[(oc * out_h_ + oy) * out_w_ + ox] = acc;
      }
    }
  }
  return out;
}

std::vector<double> Conv2dLayer::backward(const std::vector<double>& grad_output) {
  XLDS_REQUIRE(grad_output.size() == output_size());
  XLDS_REQUIRE_MSG(!last_input_.empty(), "backward before forward");
  std::vector<double> grad_in(last_input_.size(), 0.0);
  for (std::size_t oc = 0; oc < out_c_; ++oc) {
    for (std::size_t oy = 0; oy < out_h_; ++oy) {
      for (std::size_t ox = 0; ox < out_w_; ++ox) {
        const double go = grad_output[(oc * out_h_ + oy) * out_w_ + ox];
        if (go == 0.0) continue;
        gb_[oc] += go;
        for (std::size_t ic = 0; ic < in_c_; ++ic) {
          for (std::size_t ky = 0; ky < k_; ++ky) {
            for (std::size_t kx = 0; kx < k_; ++kx) {
              const std::size_t in_idx = (ic * in_h_ + oy + ky) * in_w_ + ox + kx;
              gw_[((oc * in_c_ + ic) * k_ + ky) * k_ + kx] += go * last_input_[in_idx];
              grad_in[in_idx] += go * kernel_at(oc, ic, ky, kx);
            }
          }
        }
      }
    }
  }
  return grad_in;
}

void Conv2dLayer::update(double learning_rate, double momentum, double weight_decay) {
  for (std::size_t i = 0; i < w_.size(); ++i) {
    vw_[i] = momentum * vw_[i] - learning_rate * (gw_[i] + weight_decay * w_[i]);
    w_[i] += vw_[i];
    gw_[i] = 0.0;
  }
  for (std::size_t j = 0; j < out_c_; ++j) {
    vb_[j] = momentum * vb_[j] - learning_rate * gb_[j];
    b_[j] += vb_[j];
    gb_[j] = 0.0;
  }
}

LayerCounts Conv2dLayer::counts() const {
  LayerCounts c;
  c.params = w_.size() + b_.size();
  c.macs = out_c_ * out_h_ * out_w_ * in_c_ * k_ * k_;
  return c;
}

// ---- MaxPoolLayer ---------------------------------------------------------

MaxPoolLayer::MaxPoolLayer(std::size_t channels, std::size_t in_h, std::size_t in_w)
    : c_(channels), in_h_(in_h), in_w_(in_w), out_h_(in_h / 2), out_w_(in_w / 2) {
  XLDS_REQUIRE(in_h >= 2 && in_w >= 2);
}

std::vector<double> MaxPoolLayer::forward(const std::vector<double>& input) {
  XLDS_REQUIRE(input.size() == c_ * in_h_ * in_w_);
  std::vector<double> out(output_size());
  argmax_.assign(output_size(), 0);
  for (std::size_t ch = 0; ch < c_; ++ch) {
    for (std::size_t oy = 0; oy < out_h_; ++oy) {
      for (std::size_t ox = 0; ox < out_w_; ++ox) {
        double best = -HUGE_VAL;
        std::size_t best_idx = 0;
        for (std::size_t dy = 0; dy < 2; ++dy) {
          for (std::size_t dx = 0; dx < 2; ++dx) {
            const std::size_t idx = (ch * in_h_ + 2 * oy + dy) * in_w_ + 2 * ox + dx;
            if (input[idx] > best) {
              best = input[idx];
              best_idx = idx;
            }
          }
        }
        const std::size_t out_idx = (ch * out_h_ + oy) * out_w_ + ox;
        out[out_idx] = best;
        argmax_[out_idx] = best_idx;
      }
    }
  }
  return out;
}

std::vector<double> MaxPoolLayer::backward(const std::vector<double>& grad_output) {
  XLDS_REQUIRE(grad_output.size() == output_size());
  XLDS_REQUIRE_MSG(!argmax_.empty(), "backward before forward");
  std::vector<double> grad_in(c_ * in_h_ * in_w_, 0.0);
  for (std::size_t i = 0; i < grad_output.size(); ++i) grad_in[argmax_[i]] += grad_output[i];
  return grad_in;
}

}  // namespace xlds::nn
