#include "nn/network.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace xlds::nn {

std::vector<double> softmax(const std::vector<double>& logits) {
  XLDS_REQUIRE(!logits.empty());
  const double m = *std::max_element(logits.begin(), logits.end());
  std::vector<double> p(logits.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < logits.size(); ++i) {
    p[i] = std::exp(logits[i] - m);
    sum += p[i];
  }
  for (double& x : p) x /= sum;
  return p;
}

Network& Network::add(std::unique_ptr<Layer> layer) {
  XLDS_REQUIRE(layer != nullptr);
  layers_.push_back(std::move(layer));
  return *this;
}

std::vector<double> Network::forward(const std::vector<double>& input) {
  XLDS_REQUIRE_MSG(!layers_.empty(), "empty network");
  std::vector<double> x = input;
  for (auto& layer : layers_) x = layer->forward(x);
  return x;
}

std::vector<double> Network::forward_until(const std::vector<double>& input, std::size_t n_last) {
  XLDS_REQUIRE_MSG(n_last < layers_.size(), "cannot drop " << n_last << " of " << layers_.size());
  std::vector<double> x = input;
  for (std::size_t i = 0; i + n_last < layers_.size(); ++i) x = layers_[i]->forward(x);
  return x;
}

std::size_t Network::predict(const std::vector<double>& input) {
  const std::vector<double> logits = forward(input);
  return static_cast<std::size_t>(std::max_element(logits.begin(), logits.end()) -
                                  logits.begin());
}

double Network::train_step(const std::vector<double>& input, std::size_t label,
                           double learning_rate, double momentum, double weight_decay) {
  const std::vector<double> logits = forward(input);
  XLDS_REQUIRE(label < logits.size());
  const std::vector<double> p = softmax(logits);
  const double loss = -std::log(std::max(p[label], 1e-12));
  std::vector<double> grad = p;
  grad[label] -= 1.0;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) grad = (*it)->backward(grad);
  for (auto& layer : layers_) layer->update(learning_rate, momentum, weight_decay);
  return loss;
}

double Network::train_epoch(const std::vector<std::vector<double>>& inputs,
                            const std::vector<std::size_t>& labels, double learning_rate,
                            Rng& rng, double momentum, double weight_decay) {
  XLDS_REQUIRE(inputs.size() == labels.size());
  XLDS_REQUIRE(!inputs.empty());
  const std::vector<std::size_t> order = rng.permutation(inputs.size());
  double total = 0.0;
  for (std::size_t idx : order)
    total += train_step(inputs[idx], labels[idx], learning_rate, momentum, weight_decay);
  return total / static_cast<double>(inputs.size());
}

double Network::accuracy(const std::vector<std::vector<double>>& inputs,
                         const std::vector<std::size_t>& labels) {
  XLDS_REQUIRE(inputs.size() == labels.size());
  XLDS_REQUIRE(!inputs.empty());
  std::size_t correct = 0;
  for (std::size_t i = 0; i < inputs.size(); ++i)
    if (predict(inputs[i]) == labels[i]) ++correct;
  return static_cast<double>(correct) / static_cast<double>(inputs.size());
}

void Network::visit_weights(const std::function<void(double&)>& fn) {
  for (auto& layer : layers_) layer->visit_weights(fn);
}

LayerCounts Network::total_counts() const {
  LayerCounts total;
  for (const auto& layer : layers_) {
    const LayerCounts c = layer->counts();
    total.macs += c.macs;
    total.params += c.params;
  }
  return total;
}

Network make_mlp(std::size_t input, const std::vector<std::size_t>& hidden, std::size_t classes,
                 Rng& rng) {
  Network net;
  std::size_t prev = input;
  for (std::size_t h : hidden) {
    net.add(std::make_unique<DenseLayer>(prev, h, rng));
    net.add(std::make_unique<ReluLayer>(h));
    prev = h;
  }
  net.add(std::make_unique<DenseLayer>(prev, classes, rng));
  return net;
}

Network make_small_cnn(std::size_t side, std::size_t classes, std::size_t embedding, Rng& rng) {
  XLDS_REQUIRE(side >= 12);
  Network net;
  auto conv1 = std::make_unique<Conv2dLayer>(1, side, side, 4, 5, rng);
  const std::size_t h1 = conv1->out_h(), w1 = conv1->out_w();
  net.add(std::move(conv1));
  net.add(std::make_unique<ReluLayer>(4 * h1 * w1));
  net.add(std::make_unique<MaxPoolLayer>(4, h1, w1));
  const std::size_t h1p = h1 / 2, w1p = w1 / 2;
  auto conv2 = std::make_unique<Conv2dLayer>(4, h1p, w1p, 8, 3, rng);
  const std::size_t h2 = conv2->out_h(), w2 = conv2->out_w();
  net.add(std::move(conv2));
  net.add(std::make_unique<ReluLayer>(8 * h2 * w2));
  net.add(std::make_unique<MaxPoolLayer>(8, h2, w2));
  const std::size_t flat = 8 * (h2 / 2) * (w2 / 2);
  net.add(std::make_unique<DenseLayer>(flat, embedding, rng));
  net.add(std::make_unique<ReluLayer>(embedding));
  net.add(std::make_unique<DenseLayer>(embedding, classes, rng));
  return net;
}

}  // namespace xlds::nn
