#include "surrogate/model.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/error.hpp"

namespace xlds::surrogate {

namespace {

template <class Kind>
std::size_t ordinal_of(const std::vector<Kind>& all, Kind k) {
  for (std::size_t i = 0; i < all.size(); ++i)
    if (all[i] == k) return i;
  XLDS_REQUIRE_MSG(false, "design-point coordinate outside the known kinds");
  return 0;
}

std::uint64_t fnv1a64(const void* data, std::size_t n,
                      std::uint64_t h = 14695981039346656037ull) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

SurrogateModel::SurrogateModel(SurrogateConfig config)
    : config_(config),
      forest_(ForestConfig{config.trees, 2, 16, 0, config.fit_seed}) {
  XLDS_REQUIRE(config_.min_history >= 2);
  XLDS_REQUIRE(config_.refit_every >= 1);
  XLDS_REQUIRE(config_.queries_per_charge >= 1);
  XLDS_REQUIRE(config_.promote_uncertainty >= 0.0);
  XLDS_REQUIRE(config_.disagree_rel > 0.0);
}

std::vector<double> SurrogateModel::encode(const core::DesignPoint& p,
                                           std::uint32_t tier) const {
  const auto& devices = device::all_device_kinds();
  const auto& archs = core::all_arch_kinds();
  const auto& algos = core::all_algo_kinds();
  const std::size_t di = ordinal_of(devices, p.device);
  const std::size_t ai = ordinal_of(archs, p.arch);
  const std::size_t gi = ordinal_of(algos, p.algo);

  // Ordinals let a split carve several kinds off in one cut; one-hots let a
  // single kind be isolated regardless of enumeration order.  Both encodings
  // are cheap at this dimensionality, so the forest gets both.
  std::vector<double> x;
  x.reserve(4 + devices.size() + archs.size() + algos.size());
  x.push_back(static_cast<double>(di));
  x.push_back(static_cast<double>(ai));
  x.push_back(static_cast<double>(gi));
  x.push_back(static_cast<double>(tier));
  for (std::size_t i = 0; i < devices.size(); ++i) x.push_back(i == di ? 1.0 : 0.0);
  for (std::size_t i = 0; i < archs.size(); ++i) x.push_back(i == ai ? 1.0 : 0.0);
  for (std::size_t i = 0; i < algos.size(); ++i) x.push_back(i == gi ? 1.0 : 0.0);
  return x;
}

void SurrogateModel::add(const core::DesignPoint& p, std::uint32_t tier,
                         const core::Fom& fom) {
  Sample s;
  s.x = encode(p, tier);
  s.y = {fom.latency, fom.energy, fom.area_mm2, fom.accuracy, fom.feasible ? 1.0 : 0.0};
  samples_.push_back(std::move(s));
}

bool SurrogateModel::refit_due() const {
  if (samples_.size() < config_.min_history) return false;
  if (!forest_.fitted() || force_refit_) return true;
  return samples_.size() - fitted_at_ >= config_.refit_every;
}

bool SurrogateModel::refit_if_due() {
  if (!refit_due()) return false;
  forest_.fit(samples_);
  fitted_at_ = samples_.size();
  force_refit_ = false;
  ++refits_;
  return true;
}

SurrogatePrediction SurrogateModel::predict(const core::DesignPoint& p,
                                            std::uint32_t tier) const {
  XLDS_REQUIRE_MSG(ready(), "surrogate predict() before the first fit");
  const RegressionForest::Prediction raw = forest_.predict(encode(p, tier));

  SurrogatePrediction out;
  out.fom.latency = raw.mean[0];
  out.fom.energy = raw.mean[1];
  out.fom.area_mm2 = raw.mean[2];
  out.fom.accuracy = raw.mean[3];
  out.fom.feasible = raw.mean[4] >= 0.5;
  // Worst-target relative spread: a point the trees disagree about on *any*
  // objective (feasibility included — an ambivalent 0.5 vote reads as 100%)
  // is a point the promotion policy should buy real physics for.
  constexpr double kTiny = 1e-12;
  for (std::size_t k = 0; k < raw.mean.size(); ++k)
    out.rel_std = std::max(out.rel_std, raw.std[k] / (std::fabs(raw.mean[k]) + kTiny));

  char note[64];
  std::snprintf(note, sizeof note, "surrogate fit#%zu u %.1f %%", refits_,
                100.0 * out.rel_std);
  out.fom.note = note;
  return out;
}

std::uint64_t SurrogateModel::state_hash() const {
  std::uint64_t h = forest_.state_hash();
  const std::uint64_t book[3] = {samples_.size(), fitted_at_, refits_};
  return fnv1a64(book, sizeof book, h);
}

}  // namespace xlds::surrogate
