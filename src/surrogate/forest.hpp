// Deterministic extra-trees regression forest — the learned tier-0 cost
// model under the DSE fidelity ladder.
//
// LASANA and NeuroScalar (PAPERS.md) both show that a trained predictor can
// stand in for expensive evaluation at scale; what they do not need, and we
// do, is *bit-exact reproducibility*: the DSE engine's determinism contract
// (dse/engine.hpp) promises identical trajectories at any XLDS_THREADS and
// across kill/resume, and once model predictions feed search decisions the
// model itself must honour that contract.  Three rules make it hold:
//
//   1. Every random draw comes from per-tree Rng streams constructed as
//      Rng(seed, tree_index) — never from a shared sequential generator —
//      so a tree's structure is a pure function of (config, samples, index).
//   2. Trees are fitted with parallel_map (index-ordered output) and reduced
//      in fixed tree order; all variance/mean accumulations are fixed-order
//      left-to-right sums.
//   3. Split selection ties break on (feature index, threshold), never on
//      iteration order of a hash container.
//
// The forest is multi-output (one response vector per sample, e.g. latency /
// energy / area / accuracy / feasibility) and reports a per-tree-variance
// uncertainty next to every prediction: trees grown with randomised feature
// subsets and split thresholds agree on memorised regions of a small
// categorical space and disagree where they extrapolate, which is exactly
// the signal the engine's uncertainty-aware promotion policy needs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace xlds::surrogate {

/// One training observation: feature vector -> response vector.  All samples
/// passed to one fit() must agree on both dimensionalities.
struct Sample {
  std::vector<double> x;
  std::vector<double> y;
};

struct ForestConfig {
  /// Ensemble width.  More trees sharpen the uncertainty estimate (and the
  /// mean) at linear fit/predict cost.
  std::size_t trees = 48;
  /// Nodes with fewer samples than this become leaves.
  std::size_t min_split = 2;
  /// Maximum tree depth (root = depth 0); a hard bound on predict cost.
  std::size_t max_depth = 16;
  /// Random feature candidates inspected per split; 0 = ceil(n_features/3).
  /// Subsampling features (not just thresholds) is what de-correlates trees
  /// on one-hot/ordinal categorical inputs, where every threshold in a gap
  /// induces the same partition.
  std::size_t features_per_split = 0;
  /// Fit stream.  Deliberately independent of any search seed: the model for
  /// a given history must not change when only the search trajectory does.
  std::uint64_t seed = 71;
};

class RegressionForest {
 public:
  explicit RegressionForest(ForestConfig config = {});

  const ForestConfig& config() const noexcept { return config_; }

  /// Fit on `samples` (>= 1, consistent dims).  Replaces any previous fit.
  /// Bit-identical at any thread count and across processes for the same
  /// (config, samples) — see the file header for why.
  void fit(const std::vector<Sample>& samples);

  bool fitted() const noexcept { return !trees_.empty(); }
  std::size_t n_features() const noexcept { return n_features_; }
  std::size_t n_outputs() const noexcept { return n_outputs_; }

  struct Prediction {
    std::vector<double> mean;  ///< per-output ensemble mean (tree order)
    std::vector<double> std;   ///< per-output population std across trees
  };

  /// Predict one point (x.size() == n_features()).  PreconditionError when
  /// not fitted.
  Prediction predict(const std::vector<double>& x) const;

  /// FNV-1a over every node of every tree — the bit-identity witness the
  /// determinism tests compare across thread counts and resume boundaries.
  std::uint64_t state_hash() const;

 private:
  struct Node {
    /// Split feature, or -1 for a leaf.
    std::int32_t feature = -1;
    double threshold = 0.0;
    /// Children as indices into the tree's node vector (split nodes only).
    std::uint32_t left = 0;
    std::uint32_t right = 0;
    /// Leaf response (leaf nodes only), n_outputs values.
    std::vector<double> value;
  };
  struct Tree {
    std::vector<Node> nodes;
  };

  Tree fit_tree(const std::vector<Sample>& samples, std::uint64_t stream) const;
  const std::vector<double>& tree_value(const Tree& tree, const std::vector<double>& x) const;

  ForestConfig config_;
  std::size_t n_features_ = 0;
  std::size_t n_outputs_ = 0;
  std::vector<Tree> trees_;
};

}  // namespace xlds::surrogate
