// The DSE-facing surrogate: a RegressionForest trained on the engine's
// journaled (DesignPoint, tier, Fom) history, predicting all four FOM
// objectives plus feasibility with a per-tree-variance uncertainty.
//
// The model layer owns the feature/target encoding and the refit policy;
// it knows nothing about budgets, journals or drivers — the engine decides
// *when* to query and what to do with the uncertainty.  Tiers are plain
// integers here (the dse::Fidelity values) so this library sits below dse
// in the link order.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/design_space.hpp"
#include "core/evaluate.hpp"
#include "surrogate/forest.hpp"

namespace xlds::surrogate {

struct SurrogateConfig {
  /// Master switch (engine-level; the model itself ignores it).
  bool enabled = false;
  /// Forest width.
  std::size_t trees = 48;
  /// No fit before this many real-tier observations: a forest grown on a
  /// handful of points predicts its own training noise.
  std::size_t min_history = 10;
  /// Refit after this many new observations since the last fit.
  std::size_t refit_every = 8;
  /// Engine promotion threshold: points whose predicted relative std
  /// exceeds this pay for a real-tier evaluation.
  double promote_uncertainty = 0.25;
  /// Engine disagreement threshold: a real analytic FOM differing from the
  /// stored prediction by more than this relative error forces a refit.
  double disagree_rel = 0.2;
  /// Budget exchange rate: this many surrogate queries cost one ladder
  /// charge ("near-zero", not free — a run cannot query unboundedly).
  std::size_t queries_per_charge = 100;
  /// Fit stream.  Independent of the search seed: the model for a given
  /// history must not depend on which strategy produced that history.
  std::uint64_t fit_seed = 71;
};

struct SurrogatePrediction {
  core::Fom fom;
  /// Max over targets of (per-tree std / |ensemble mean|): the scalar the
  /// promotion policy thresholds.  0 at memorised training points.
  double rel_std = 0.0;
};

class SurrogateModel {
 public:
  explicit SurrogateModel(SurrogateConfig config = {});

  const SurrogateConfig& config() const noexcept { return config_; }

  /// Record one real-tier observation.  Call order defines the history and
  /// therefore the fit — callers must feed observations in a deterministic
  /// order (the engine uses charge order, identical across resume).
  void add(const core::DesignPoint& p, std::uint32_t tier, const core::Fom& fom);

  std::size_t history() const noexcept { return samples_.size(); }
  bool ready() const noexcept { return forest_.fitted(); }
  std::size_t refits() const noexcept { return refits_; }

  /// True when refit_if_due() would fit: enough history and either never
  /// fitted, refit_every new observations since the last fit, or a forced
  /// refit is pending.
  bool refit_due() const;

  /// Fit when due; returns whether a fit happened.
  bool refit_if_due();

  /// Request a refit at the next refit_if_due() regardless of cadence (the
  /// engine calls this on model/ladder disagreement).
  void force_refit() noexcept { force_refit_ = true; }

  /// Predict the FOM of `p` at ladder tier `tier`.  Requires ready().
  SurrogatePrediction predict(const core::DesignPoint& p, std::uint32_t tier) const;

  /// Bit-identity witness over the fitted forest + fit bookkeeping.
  std::uint64_t state_hash() const;

 private:
  std::vector<double> encode(const core::DesignPoint& p, std::uint32_t tier) const;

  SurrogateConfig config_;
  std::vector<Sample> samples_;
  RegressionForest forest_;
  std::size_t fitted_at_ = 0;  ///< history size at the last fit
  std::size_t refits_ = 0;
  bool force_refit_ = false;
};

}  // namespace xlds::surrogate
