#include "surrogate/forest.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace xlds::surrogate {

namespace {

// Local FNV-1a (dse::fnv1a64 lives above this library in the link order).
std::uint64_t fnv1a64(const void* data, std::size_t n,
                      std::uint64_t h = 14695981039346656037ull) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

/// Fixed-order per-output mean of the rows in `rows` (indices into samples).
std::vector<double> mean_response(const std::vector<Sample>& samples,
                                  const std::vector<std::size_t>& rows,
                                  std::size_t n_outputs) {
  std::vector<double> mean(n_outputs, 0.0);
  for (const std::size_t r : rows)
    for (std::size_t k = 0; k < n_outputs; ++k) mean[k] += samples[r].y[k];
  const double inv = 1.0 / static_cast<double>(rows.size());
  for (double& m : mean) m *= inv;
  return mean;
}

/// Fixed-order per-output variance (population) of the rows.
std::vector<double> variance_response(const std::vector<Sample>& samples,
                                      const std::vector<std::size_t>& rows,
                                      const std::vector<double>& mean) {
  std::vector<double> var(mean.size(), 0.0);
  for (const std::size_t r : rows)
    for (std::size_t k = 0; k < mean.size(); ++k) {
      const double d = samples[r].y[k] - mean[k];
      var[k] += d * d;
    }
  const double inv = 1.0 / static_cast<double>(rows.size());
  for (double& v : var) v *= inv;
  return var;
}

}  // namespace

RegressionForest::RegressionForest(ForestConfig config) : config_(config) {
  XLDS_REQUIRE(config_.trees > 0);
  XLDS_REQUIRE(config_.min_split >= 2);
}

void RegressionForest::fit(const std::vector<Sample>& samples) {
  XLDS_REQUIRE_MSG(!samples.empty(), "cannot fit a forest on an empty history");
  n_features_ = samples.front().x.size();
  n_outputs_ = samples.front().y.size();
  XLDS_REQUIRE(n_features_ > 0 && n_outputs_ > 0);
  for (const Sample& s : samples)
    XLDS_REQUIRE_MSG(s.x.size() == n_features_ && s.y.size() == n_outputs_,
                     "inconsistent sample dimensions in forest history");

  // One stream per tree, derived from (seed, tree index) — not forked
  // sequentially — so the trees can be grown in any order on any number of
  // threads and still come out bit-identical.
  trees_ = parallel_map<Tree>(config_.trees, [&](std::size_t t) {
    return fit_tree(samples, static_cast<std::uint64_t>(t));
  });
}

RegressionForest::Tree RegressionForest::fit_tree(const std::vector<Sample>& samples,
                                                  std::uint64_t stream) const {
  Rng rng(config_.seed, stream);
  const std::size_t k_default =
      (n_features_ + 2) / 3;  // ceil(n_features / 3), >= 1 for n_features >= 1
  const std::size_t k_features =
      config_.features_per_split != 0
          ? std::min(config_.features_per_split, n_features_)
          : std::max<std::size_t>(1, k_default);

  Tree tree;
  // Explicit work stack instead of recursion: node indices stay dense and
  // allocation order is a pure function of the split sequence.
  struct Pending {
    std::uint32_t node = 0;
    std::vector<std::size_t> rows;
    std::size_t depth = 0;
  };
  std::vector<Pending> stack;

  std::vector<std::size_t> all_rows(samples.size());
  for (std::size_t i = 0; i < samples.size(); ++i) all_rows[i] = i;
  tree.nodes.emplace_back();
  stack.push_back({0, std::move(all_rows), 0});

  while (!stack.empty()) {
    Pending task = std::move(stack.back());
    stack.pop_back();
    const std::vector<std::size_t>& rows = task.rows;

    const std::vector<double> mean = mean_response(samples, rows, n_outputs_);
    if (rows.size() < config_.min_split || task.depth >= config_.max_depth) {
      tree.nodes[task.node].value = mean;
      continue;
    }
    const std::vector<double> parent_var = variance_response(samples, rows, mean);
    double total_var = 0.0;
    for (const double v : parent_var) total_var += v;
    if (total_var <= 0.0) {  // pure node: every response identical
      tree.nodes[task.node].value = mean;
      continue;
    }

    // Extra-trees split: K random feature candidates, ONE uniform random
    // threshold each, best normalised variance reduction wins.  Candidate
    // features are visited in ascending index order (the draw is sorted) so
    // ties break on feature index, never on sampling order.
    std::vector<std::size_t> feats = rng.sample_without_replacement(n_features_, k_features);
    std::sort(feats.begin(), feats.end());

    constexpr double kVarEps = 1e-30;
    double best_score = 0.0;
    std::int32_t best_feature = -1;
    double best_threshold = 0.0;
    for (const std::size_t f : feats) {
      double lo = samples[rows.front()].x[f], hi = lo;
      for (const std::size_t r : rows) {
        lo = std::min(lo, samples[r].x[f]);
        hi = std::max(hi, samples[r].x[f]);
      }
      // Always consume the draw, valid feature or not: the stream position
      // must be a pure function of the candidate list, not of the data.
      const double threshold = rng.uniform(lo, hi);
      if (!(hi > lo)) continue;  // constant feature on this node

      std::vector<std::size_t> left, right;
      for (const std::size_t r : rows)
        (samples[r].x[f] < threshold ? left : right).push_back(r);
      if (left.empty() || right.empty()) continue;

      const std::vector<double> lm = mean_response(samples, left, n_outputs_);
      const std::vector<double> rm = mean_response(samples, right, n_outputs_);
      const std::vector<double> lv = variance_response(samples, left, lm);
      const std::vector<double> rv = variance_response(samples, right, rm);
      const double wl = static_cast<double>(left.size()) / static_cast<double>(rows.size());
      const double wr = 1.0 - wl;
      // Per-output normalised reduction, summed in output order, so every
      // objective contributes on its own scale (latency in seconds and
      // accuracy in [0,1] would otherwise never share a split decision).
      double score = 0.0;
      for (std::size_t k = 0; k < n_outputs_; ++k)
        score += (parent_var[k] - wl * lv[k] - wr * rv[k]) / (parent_var[k] + kVarEps);
      if (score > best_score) {
        best_score = score;
        best_feature = static_cast<std::int32_t>(f);
        best_threshold = threshold;
      }
    }

    if (best_feature < 0) {  // no candidate produced a real partition
      tree.nodes[task.node].value = mean;
      continue;
    }

    std::vector<std::size_t> left, right;
    for (const std::size_t r : rows)
      (samples[r].x[static_cast<std::size_t>(best_feature)] < best_threshold ? left : right)
          .push_back(r);

    const auto li = static_cast<std::uint32_t>(tree.nodes.size());
    tree.nodes.emplace_back();
    const auto ri = static_cast<std::uint32_t>(tree.nodes.size());
    tree.nodes.emplace_back();
    Node& node = tree.nodes[task.node];
    node.feature = best_feature;
    node.threshold = best_threshold;
    node.left = li;
    node.right = ri;
    // Right pushed first so the left child is processed (and numbered) next —
    // the conventional depth-first layout.
    stack.push_back({ri, std::move(right), task.depth + 1});
    stack.push_back({li, std::move(left), task.depth + 1});
  }
  return tree;
}

const std::vector<double>& RegressionForest::tree_value(const Tree& tree,
                                                        const std::vector<double>& x) const {
  std::size_t n = 0;
  while (tree.nodes[n].feature >= 0) {
    const Node& node = tree.nodes[n];
    n = x[static_cast<std::size_t>(node.feature)] < node.threshold ? node.left : node.right;
  }
  return tree.nodes[n].value;
}

RegressionForest::Prediction RegressionForest::predict(const std::vector<double>& x) const {
  XLDS_REQUIRE_MSG(fitted(), "predict() before fit()");
  XLDS_REQUIRE(x.size() == n_features_);
  Prediction p;
  p.mean.assign(n_outputs_, 0.0);
  p.std.assign(n_outputs_, 0.0);
  // Welford-free two-pass in fixed tree order: sums first, then squared
  // deviations, both left-to-right — bit-identical everywhere.
  std::vector<const std::vector<double>*> leaf(trees_.size());
  for (std::size_t t = 0; t < trees_.size(); ++t) {
    leaf[t] = &tree_value(trees_[t], x);
    for (std::size_t k = 0; k < n_outputs_; ++k) p.mean[k] += (*leaf[t])[k];
  }
  const double inv = 1.0 / static_cast<double>(trees_.size());
  for (double& m : p.mean) m *= inv;
  for (std::size_t t = 0; t < trees_.size(); ++t)
    for (std::size_t k = 0; k < n_outputs_; ++k) {
      const double d = (*leaf[t])[k] - p.mean[k];
      p.std[k] += d * d;
    }
  for (double& s : p.std) s = std::sqrt(s * inv);
  return p;
}

std::uint64_t RegressionForest::state_hash() const {
  std::uint64_t h = fnv1a64("xlds-forest-v1", 14);
  const auto mix = [&h](const void* p, std::size_t n) { h = fnv1a64(p, n, h); };
  const std::uint64_t dims[2] = {n_features_, n_outputs_};
  mix(dims, sizeof dims);
  for (const Tree& tree : trees_) {
    const std::uint64_t n = tree.nodes.size();
    mix(&n, sizeof n);
    for (const Node& node : tree.nodes) {
      mix(&node.feature, sizeof node.feature);
      mix(&node.threshold, sizeof node.threshold);
      mix(&node.left, sizeof node.left);
      mix(&node.right, sizeof node.right);
      if (!node.value.empty()) mix(node.value.data(), node.value.size() * sizeof(double));
    }
  }
  return h;
}

}  // namespace xlds::surrogate
