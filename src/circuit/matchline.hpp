// Matchline discharge model (Fig. 2A mechanism).
//
// A NOR-type CAM matchline is precharged to V_pre; every mismatching cell
// adds a pull-down conductance, and the line discharges exponentially with
// time constant C_ml / G_total.  Everything the paper's CAM analysis needs
// derives from this single RC picture:
//   * EX match      — "did the line discharge before the sense time?"
//   * BE / TH match — "how fast did it discharge?" (discharge rate encodes
//     the Hamming / SE distance, Sec. II-B1)
//   * sense margin  — the voltage separation at sense time between k and
//     k+1 mismatches, which sets the mismatch limit and the maximum number
//     of columns per matchline (Sec. VI, Eva-CAM extension discussion).
#pragma once

#include <cstddef>

#include "circuit/wire.hpp"
#include "device/technology.hpp"

namespace xlds::circuit {

struct MatchlineParams {
  double v_precharge = 1.0;    ///< V
  double v_sense = 0.5;        ///< sense threshold voltage, V
  double cell_drain_cap = 0.0; ///< per-cell drain-junction load on the line, F
  double leak_conductance_per_cell = 1e-9;  ///< S, off-state leakage per cell
};

class MatchlineModel {
 public:
  MatchlineModel(MatchlineParams params, const WireModel& wire, std::size_t columns);

  /// Total matchline capacitance (wire + cell drains).
  double capacitance() const noexcept { return c_total_; }

  /// Total pull-down conductance for `mismatch_conductance` summed over the
  /// mismatching cells plus leakage of all columns.
  double total_conductance(double mismatch_conductance_sum) const;

  /// Time for the line to fall from V_pre to V_sense given a total pull-down
  /// conductance.  Infinite (returns a large sentinel via HUGE_VAL) when the
  /// conductance is zero.
  double discharge_time(double conductance_total) const;

  /// Matchline voltage at time t for a total pull-down conductance.
  double voltage_at(double time, double conductance_total) const;

  /// Energy of one search on this line: precharge CV^2 (the standard CAM
  /// search-energy accounting; the paper's numbers are dominated by it).
  double search_energy() const;

  /// Voltage-domain sense margin at time `t_sense` between two mismatch
  /// counts k1 < k2 with per-mismatch conductance g_mis: V_k1(t) - V_k2(t).
  double sense_margin(std::size_t k1, std::size_t k2, double g_mis, double t_sense) const;

  /// Largest mismatch count k such that the margin between k and k+1 at the
  /// optimal sense time still exceeds `min_margin_v` — the paper's "mismatch
  /// limit".  Returns 0 if even 0-vs-1 cannot be distinguished.
  std::size_t mismatch_limit(double g_mis, double min_margin_v) const;

  std::size_t columns() const noexcept { return columns_; }
  const MatchlineParams& params() const noexcept { return params_; }

 private:
  MatchlineParams params_;
  std::size_t columns_;
  double c_total_;
  double g_leak_total_;
};

}  // namespace xlds::circuit
