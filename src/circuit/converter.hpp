// Data-converter and driver models for analog in-memory compute.
//
// Crossbar MVM (Fig. 2D) needs a DAC per active row, an ADC per sensed
// column, and row drivers strong enough to hold the line voltage.  ADC cost
// is the dominant peripheral overhead of analog IMC, so its scaling with
// resolution is modelled explicitly (SAR-style: energy roughly doubles per
// bit; latency linear in bits).
#pragma once

#include <cstddef>

namespace xlds::circuit {

struct AdcParams {
  int bits = 8;
  double base_energy = 2.0e-14;   ///< J at 1 bit
  double energy_per_bit_factor = 2.0;  ///< multiplicative per extra bit
  double base_latency = 0.1e-9;   ///< s
  double latency_per_bit = 0.1e-9;  ///< s per bit (SAR cycles)
  double area_m2 = 50e-12;        ///< silicon area per ADC instance
};

class AdcModel {
 public:
  explicit AdcModel(AdcParams params);

  int bits() const noexcept { return params_.bits; }
  double energy_per_conversion() const;
  double latency_per_conversion() const;
  double area() const noexcept { return params_.area_m2; }

  /// Quantise `x` in [lo, hi] to the ADC grid (mid-rise, clamped).
  double quantise(double x, double lo, double hi) const;

  /// Integer code for `x` in [lo, hi], in [0, 2^bits - 1].
  std::size_t code(double x, double lo, double hi) const;

 private:
  AdcParams params_;
};

struct DacParams {
  int bits = 4;
  double energy_per_conversion = 5.0e-15;  ///< J
  double latency = 0.05e-9;                ///< s
  double area_m2 = 5e-12;
};

class DacModel {
 public:
  explicit DacModel(DacParams params);

  int bits() const noexcept { return params_.bits; }
  double energy_per_conversion() const noexcept { return params_.energy_per_conversion; }
  double latency() const noexcept { return params_.latency; }
  double area() const noexcept { return params_.area_m2; }

  /// Representable output for code k out of 2^bits codes over [lo, hi].
  double level(std::size_t k, double lo, double hi) const;

  /// Quantise an analog target to the nearest representable level.
  double quantise(double x, double lo, double hi) const;

 private:
  DacParams params_;
};

/// Row/search-line driver: CV^2 switching energy and RC-limited rise time.
struct DriverModel {
  double load_capacitance = 0.0;  ///< F, line being driven
  double drive_resistance = 1.0e3;  ///< ohm
  double swing = 1.0;             ///< V

  double energy() const { return load_capacitance * swing * swing; }
  double latency() const { return 2.2 * drive_resistance * load_capacitance; }  // 10-90 % rise
};

}  // namespace xlds::circuit
