#include "circuit/wire.hpp"

#include "util/error.hpp"

namespace xlds::circuit {

WireModel::WireModel(const device::TechNode& node, double cell_pitch_f)
    : pitch_m_(cell_pitch_f * node.feature_m),
      r_per_m_(node.wire_r_per_m),
      c_per_m_(node.wire_c_per_m) {
  XLDS_REQUIRE(cell_pitch_f > 0.0);
}

WireSegment WireModel::span(std::size_t cells) const {
  const double len = pitch_m_ * static_cast<double>(cells);
  return WireSegment{r_per_m_ * len, c_per_m_ * len};
}

WireSegment WireModel::per_cell() const { return span(1); }

double WireModel::elmore_delay(std::size_t cells) const {
  const WireSegment s = span(cells);
  return 0.5 * s.resistance * s.capacitance;
}

}  // namespace xlds::circuit
