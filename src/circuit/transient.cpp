#include "circuit/transient.hpp"

#include <cmath>

#include "util/error.hpp"

namespace xlds::circuit {

TransientResult simulate_discharge(const TransientConfig& config, const CurrentLaw& pulldown) {
  XLDS_REQUIRE(config.capacitance > 0.0);
  XLDS_REQUIRE(config.t_end > 0.0 && config.dt > 0.0 && config.dt < config.t_end);
  XLDS_REQUIRE(config.store_every >= 1);
  XLDS_REQUIRE(pulldown != nullptr);

  const auto dvdt = [&](double v) { return -pulldown(v) / config.capacitance; };

  TransientResult result;
  result.crossing_time = HUGE_VAL;
  double v = config.v_initial;
  double t = 0.0;
  std::size_t i = 0;
  result.time.push_back(t);
  result.voltage.push_back(v);
  while (t < config.t_end) {
    // Classic RK4 step.
    const double k1 = dvdt(v);
    const double k2 = dvdt(v + 0.5 * config.dt * k1);
    const double k3 = dvdt(v + 0.5 * config.dt * k2);
    const double k4 = dvdt(v + config.dt * k3);
    const double v_next = v + config.dt / 6.0 * (k1 + 2.0 * k2 + 2.0 * k3 + k4);
    const double t_next = t + config.dt;
    ++result.steps;

    if (result.crossing_time == HUGE_VAL && v > config.v_target && v_next <= config.v_target) {
      // Linear interpolation inside the step.
      const double frac = (v - config.v_target) / (v - v_next);
      result.crossing_time = t + frac * config.dt;
    }
    v = v_next;
    t = t_next;
    if (++i % config.store_every == 0) {
      result.time.push_back(t);
      result.voltage.push_back(v);
    }
  }
  if (result.time.back() != t) {
    result.time.push_back(t);
    result.voltage.push_back(v);
  }
  return result;
}

double transient_crossing_time(const TransientConfig& config, const CurrentLaw& pulldown) {
  TransientConfig cheap = config;
  cheap.store_every = 1u << 20;  // keep essentially nothing
  return simulate_discharge(cheap, pulldown).crossing_time;
}

}  // namespace xlds::circuit
