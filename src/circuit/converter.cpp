#include "circuit/converter.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace xlds::circuit {

AdcModel::AdcModel(AdcParams params) : params_(params) {
  XLDS_REQUIRE(params_.bits >= 1 && params_.bits <= 16);
  XLDS_REQUIRE(params_.base_energy > 0.0);
  XLDS_REQUIRE(params_.energy_per_bit_factor >= 1.0);
}

double AdcModel::energy_per_conversion() const {
  return params_.base_energy * std::pow(params_.energy_per_bit_factor, params_.bits - 1);
}

double AdcModel::latency_per_conversion() const {
  return params_.base_latency + params_.latency_per_bit * params_.bits;
}

std::size_t AdcModel::code(double x, double lo, double hi) const {
  XLDS_REQUIRE(hi > lo);
  const auto n_codes = static_cast<std::size_t>(1) << params_.bits;
  const double t = (x - lo) / (hi - lo);
  const auto k = static_cast<long long>(std::floor(t * static_cast<double>(n_codes)));
  return static_cast<std::size_t>(
      std::clamp<long long>(k, 0, static_cast<long long>(n_codes) - 1));
}

double AdcModel::quantise(double x, double lo, double hi) const {
  const auto n_codes = static_cast<std::size_t>(1) << params_.bits;
  const std::size_t k = code(x, lo, hi);
  // Mid-rise reconstruction: centre of the code bucket.
  return lo + (static_cast<double>(k) + 0.5) * (hi - lo) / static_cast<double>(n_codes);
}

DacModel::DacModel(DacParams params) : params_(params) {
  XLDS_REQUIRE(params_.bits >= 1 && params_.bits <= 16);
}

double DacModel::level(std::size_t k, double lo, double hi) const {
  XLDS_REQUIRE(hi > lo);
  const auto n = (static_cast<std::size_t>(1) << params_.bits) - 1;
  XLDS_REQUIRE(k <= n);
  return lo + (hi - lo) * static_cast<double>(k) / static_cast<double>(n);
}

double DacModel::quantise(double x, double lo, double hi) const {
  XLDS_REQUIRE(hi > lo);
  const auto n = (static_cast<std::size_t>(1) << params_.bits) - 1;
  const double t = std::clamp((x - lo) / (hi - lo), 0.0, 1.0);
  const auto k = static_cast<std::size_t>(std::lround(t * static_cast<double>(n)));
  return level(k, lo, hi);
}

}  // namespace xlds::circuit
