#include "circuit/matchline.hpp"

#include <cmath>

#include "util/error.hpp"

namespace xlds::circuit {

MatchlineModel::MatchlineModel(MatchlineParams params, const WireModel& wire, std::size_t columns)
    : params_(params), columns_(columns) {
  XLDS_REQUIRE(columns >= 1);
  XLDS_REQUIRE(params_.v_precharge > params_.v_sense);
  XLDS_REQUIRE(params_.v_sense > 0.0);
  const WireSegment seg = wire.span(columns);
  c_total_ = seg.capacitance + params_.cell_drain_cap * static_cast<double>(columns);
  g_leak_total_ = params_.leak_conductance_per_cell * static_cast<double>(columns);
}

double MatchlineModel::total_conductance(double mismatch_conductance_sum) const {
  XLDS_REQUIRE(mismatch_conductance_sum >= 0.0);
  return mismatch_conductance_sum + g_leak_total_;
}

double MatchlineModel::discharge_time(double conductance_total) const {
  if (conductance_total <= 0.0) return HUGE_VAL;
  const double tau = c_total_ / conductance_total;
  return tau * std::log(params_.v_precharge / params_.v_sense);
}

double MatchlineModel::voltage_at(double time, double conductance_total) const {
  XLDS_REQUIRE(time >= 0.0);
  if (conductance_total <= 0.0) return params_.v_precharge;
  return params_.v_precharge * std::exp(-time * conductance_total / c_total_);
}

double MatchlineModel::search_energy() const {
  return c_total_ * params_.v_precharge * params_.v_precharge;
}

double MatchlineModel::sense_margin(std::size_t k1, std::size_t k2, double g_mis,
                                    double t_sense) const {
  XLDS_REQUIRE(k1 < k2);
  XLDS_REQUIRE(g_mis > 0.0);
  const double g1 = total_conductance(static_cast<double>(k1) * g_mis);
  const double g2 = total_conductance(static_cast<double>(k2) * g_mis);
  return voltage_at(t_sense, g1) - voltage_at(t_sense, g2);
}

std::size_t MatchlineModel::mismatch_limit(double g_mis, double min_margin_v) const {
  XLDS_REQUIRE(g_mis > 0.0);
  XLDS_REQUIRE(min_margin_v > 0.0);
  // For adjacent counts k, k+1 the margin V_k(t) - V_{k+1}(t) is maximised at
  //   t* = C / g_mis * ln((k+1)g + L) / ... — rather than deriving the exact
  // stationary point of the two-exponential difference, scan sense times
  // around the k+1 discharge time; the optimum is bracketed by the two
  // discharge times and the function is smooth and unimodal there.
  std::size_t k = 0;
  while (k < columns_) {
    const double g1 = total_conductance(static_cast<double>(k) * g_mis);
    const double g2 = total_conductance(static_cast<double>(k + 1) * g_mis);
    const double t_lo = discharge_time(g2);
    const double t_hi = std::isinf(discharge_time(g1)) ? 4.0 * t_lo : discharge_time(g1);
    double best = 0.0;
    constexpr int kSteps = 64;
    for (int i = 0; i <= kSteps; ++i) {
      const double t = t_lo + (t_hi - t_lo) * static_cast<double>(i) / kSteps;
      const double margin = voltage_at(t, g1) - voltage_at(t, g2);
      if (margin > best) best = margin;
    }
    if (best < min_margin_v) break;
    ++k;
  }
  return k;
}

}  // namespace xlds::circuit
