// Interconnect parasitics for array rows/columns (matchlines, searchlines,
// bitlines, word lines).  Wire RC is the array-size lever: it is what couples
// the number of columns on a matchline to discharge speed and sense margin,
// and what produces IR drop across crossbar rows.
#pragma once

#include "device/technology.hpp"

namespace xlds::circuit {

struct WireSegment {
  double resistance = 0.0;   ///< ohm
  double capacitance = 0.0;  ///< F
};

class WireModel {
 public:
  /// `cell_pitch_f` is the per-cell pitch along the wire in feature sizes F
  /// (e.g. a 2T2R CAM cell spans ~8 F along the matchline).
  WireModel(const device::TechNode& node, double cell_pitch_f);

  /// Parasitics of a wire spanning `cells` cells.
  WireSegment span(std::size_t cells) const;

  /// Per-cell parasitics (one pitch of wire).
  WireSegment per_cell() const;

  /// Elmore delay of a distributed RC line of `cells` cells driven from one
  /// end: 0.5 * R_total * C_total.
  double elmore_delay(std::size_t cells) const;

  double pitch_m() const noexcept { return pitch_m_; }

 private:
  double pitch_m_;
  double r_per_m_;
  double c_per_m_;
};

}  // namespace xlds::circuit
