// SPICE-lite transient solver (Sec. VI's framing: "SPICE-based circuit
// simulations are accurate, they are also time-consuming and have poor
// scalability" — the analytical models exist to replace them for sweeps).
//
// A fixed-step RK4 integrator for a single-node capacitor discharged by an
// arbitrary (possibly nonlinear) pull-down current: exactly the matchline
// problem, including the square-law FeFET pull-downs the exponential
// analytical model linearises away.  Used to validate the analytical
// matchline numbers and to measure the speed gap the paper argues motivates
// analytical tooling.
#pragma once

#include <functional>
#include <vector>

namespace xlds::circuit {

/// Pull-down current as a function of node voltage: I(V) in amps.
using CurrentLaw = std::function<double(double)>;

struct TransientResult {
  std::vector<double> time;     ///< s
  std::vector<double> voltage;  ///< V
  std::size_t steps = 0;
  /// First time the node crossed `v_target` (HUGE_VAL if never).
  double crossing_time = 0.0;
};

struct TransientConfig {
  double capacitance = 10e-15;  ///< F
  double v_initial = 1.0;       ///< V (precharge)
  double v_target = 0.5;        ///< report the crossing of this level
  double t_end = 20e-9;         ///< s
  double dt = 1e-12;            ///< s, fixed RK4 step
  /// Keep every k-th sample in the waveform (1 = all; larger = cheaper).
  std::size_t store_every = 8;
};

/// Integrate C dV/dt = -I(V) from v_initial to t_end.
TransientResult simulate_discharge(const TransientConfig& config, const CurrentLaw& pulldown);

/// Convenience: crossing time only (no waveform storage).
double transient_crossing_time(const TransientConfig& config, const CurrentLaw& pulldown);

}  // namespace xlds::circuit
