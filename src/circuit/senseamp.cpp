#include "circuit/senseamp.hpp"

#include <cmath>

#include "util/error.hpp"

namespace xlds::circuit {

SenseAmp::SenseAmp(SenseAmpParams params) : params_(params) {
  XLDS_REQUIRE(params_.min_margin_v > 0.0);
  XLDS_REQUIRE(params_.latency >= 0.0 && params_.energy >= 0.0);
  XLDS_REQUIRE(params_.time_resolution > 0.0);
}

bool SenseAmp::resolves_voltage(double delta_v) const {
  return std::abs(delta_v) >= params_.min_margin_v;
}

bool SenseAmp::resolves_time(double delta_t) const {
  return std::abs(delta_t) >= params_.time_resolution;
}

bool SenseAmp::compare(double v_in, double v_ref, double sampled_offset) const {
  return (v_in + sampled_offset) > v_ref;
}

double WinnerTakeAll::latency(std::size_t rows) const {
  XLDS_REQUIRE(rows >= 1);
  const double stages = std::ceil(std::log2(static_cast<double>(rows == 1 ? 2 : rows)));
  return stage_latency * stages;
}

double WinnerTakeAll::energy(std::size_t rows) const {
  XLDS_REQUIRE(rows >= 1);
  // One comparison node per internal tree node: rows - 1 of them.
  return stage_energy * static_cast<double>(rows > 1 ? rows - 1 : 1);
}

}  // namespace xlds::circuit
