// Sense-amplifier and distance-sensing models.
//
// Two sensing regimes appear in the paper's CAM designs:
//   * binary sensing (EX match): a clocked latch resolves "above / below
//     V_sense" — characterised by offset voltage, latency and energy;
//   * distance sensing (BE / TH match): the discharge *rate* is digitised,
//     e.g. by sampling the matchline against a reference ramp or by counting
//     clock edges until discharge.  Its resolution (minimum distinguishable
//     voltage or time difference) is what limits array width — Eva-CAM
//     compares the matchline sense margin against the sensing-circuit margin
//     to derive the maximum columns per subarray (Sec. VI).
#pragma once

#include <cstddef>

#include "device/technology.hpp"

namespace xlds::circuit {

struct SenseAmpParams {
  double offset_sigma_v = 0.01;   ///< input-referred offset sigma, V
  double min_margin_v = 0.05;     ///< margin required for reliable resolution, V
  double latency = 0.2e-9;        ///< regeneration latency, s
  double energy = 2.0e-15;        ///< energy per evaluation, J
  double time_resolution = 0.05e-9;  ///< for time-domain distance sensing, s
};

class SenseAmp {
 public:
  explicit SenseAmp(SenseAmpParams params);

  const SenseAmpParams& params() const noexcept { return params_; }

  /// Can the amp reliably resolve a voltage difference `delta_v`?
  bool resolves_voltage(double delta_v) const;

  /// Can a time-domain scheme reliably resolve a discharge-time difference?
  bool resolves_time(double delta_t) const;

  /// Sense decision with offset noise: returns true when v_in (plus a given
  /// sampled offset) exceeds v_ref.
  bool compare(double v_in, double v_ref, double sampled_offset = 0.0) const;

  double latency() const noexcept { return params_.latency; }
  double energy() const noexcept { return params_.energy; }

 private:
  SenseAmpParams params_;
};

/// Winner-take-all / priority encoder over N matchlines used for BEST match:
/// latency and energy grow logarithmically with the number of rows (tree
/// arbitration).  `rows` is the subarray height.
struct WinnerTakeAll {
  double stage_latency = 0.1e-9;
  double stage_energy = 1.0e-15;

  double latency(std::size_t rows) const;
  double energy(std::size_t rows) const;
};

}  // namespace xlds::circuit
