#include "evacam/evacam.hpp"

#include <algorithm>
#include <cmath>
#include <functional>

#include "circuit/converter.hpp"
#include "circuit/wire.hpp"
#include "device/fefet.hpp"
#include "device/technology.hpp"
#include "util/error.hpp"

namespace xlds::evacam {

namespace {

// Peripheral area constants (F^2), NVSim-CAM-class defaults.
constexpr double kSenseAmpAreaF2PerRow = 420.0;
constexpr double kSlDriverAreaF2PerCol = 140.0;   // two drivers per column
constexpr double kDecoderAreaF2PerRow = 40.0;
constexpr double kMatAreaOverhead = 0.04;         // routing margin per mat
constexpr double kLeakagePerMatW = 1.5e-6;
constexpr double kLeakagePerRowW = 4.0e-9;

int devices_on_matchline(CellType cell) {
  switch (cell) {
    case CellType::k2T2R: return 2;
    case CellType::k4T2R: return 2;   // the compare stack; the other 2T buffer
    case CellType::k2FeFET: return 2;
    case CellType::k16T: return 2;    // pull-down stack drains
  }
  return 2;
}

/// Find the sense time maximising the match-vs-(k+1 mismatch) margin and
/// return {margin, time}.
struct MarginPoint {
  double margin = 0.0;
  double time = 0.0;
};

MarginPoint peak_margin_between(const circuit::MatchlineModel& ml, double g_fast_total,
                                double g_slow_total) {
  const double t_lo = ml.discharge_time(g_fast_total) * 0.05;
  const double t_hi = ml.discharge_time(g_slow_total) * 4.0;
  MarginPoint best;
  constexpr int kSteps = 96;
  for (int i = 0; i <= kSteps; ++i) {
    const double t = t_lo + (t_hi - t_lo) * static_cast<double>(i) / kSteps;
    const double m = ml.voltage_at(t, g_slow_total) - ml.voltage_at(t, g_fast_total);
    if (m > best.margin) {
      best.margin = m;
      best.time = t;
    }
  }
  return best;
}

MarginPoint peak_margin(const circuit::MatchlineModel& ml, double g_mis, std::size_t k) {
  const double g1 = ml.total_conductance(static_cast<double>(k) * g_mis);
  const double g2 = ml.total_conductance(static_cast<double>(k + 1) * g_mis);
  return peak_margin_between(ml, g2, g1);
}

/// The Sec.-VI extension: largest k whose k-vs-(k+1) margin survives when
/// each row's conductance is shifted `conf` sigmas the wrong way (the
/// k-mismatch row fast, the (k+1)-mismatch row slow).  Row-sum sigma scales
/// with sqrt(cells involved).
std::size_t mismatch_limit_with_variation(const circuit::MatchlineModel& ml, double g_mis,
                                          double sigma_rel, double conf, double min_margin_v) {
  const double sigma_g = sigma_rel * g_mis;
  std::size_t k = 0;
  while (k < 4096) {
    const auto kd = static_cast<double>(k);
    const double g_slow_mis = kd * g_mis + conf * sigma_g * std::sqrt(std::max(kd, 1.0));
    const double g_fast_mis = (kd + 1.0) * g_mis - conf * sigma_g * std::sqrt(kd + 1.0);
    if (g_fast_mis <= g_slow_mis) break;  // distributions overlap: done
    const double g_slow = ml.total_conductance(g_slow_mis);
    const double g_fast = ml.total_conductance(g_fast_mis);
    if (peak_margin_between(ml, g_fast, g_slow).margin < min_margin_v) break;
    ++k;
  }
  return k;
}

}  // namespace

namespace {

bool traits_equal(const device::DeviceTraits& a, const device::DeviceTraits& b) {
  return a.kind == b.kind && a.terminals == b.terminals && a.nonvolatile == b.nonvolatile &&
         a.cell_area_f2 == b.cell_area_f2 && a.max_bits_per_cell == b.max_bits_per_cell &&
         a.read_voltage == b.read_voltage && a.write_voltage == b.write_voltage &&
         a.write_latency == b.write_latency && a.write_energy == b.write_energy &&
         a.read_latency == b.read_latency && a.on_resistance == b.on_resistance &&
         a.off_resistance == b.off_resistance && a.endurance_cycles == b.endurance_cycles &&
         a.retention_s == b.retention_s;
}

bool sense_equal(const circuit::SenseAmpParams& a, const circuit::SenseAmpParams& b) {
  return a.offset_sigma_v == b.offset_sigma_v && a.min_margin_v == b.min_margin_v &&
         a.latency == b.latency && a.energy == b.energy &&
         a.time_resolution == b.time_resolution;
}

void hash_combine(std::size_t& seed, std::size_t h) {
  seed ^= h + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2);
}

void hash_double(std::size_t& seed, double v) { hash_combine(seed, std::hash<double>{}(v)); }

void hash_traits(std::size_t& seed, const device::DeviceTraits& t) {
  hash_combine(seed, static_cast<std::size_t>(t.kind));
  hash_combine(seed, static_cast<std::size_t>(t.terminals));
  hash_combine(seed, t.nonvolatile ? 1u : 0u);
  hash_double(seed, t.cell_area_f2);
  hash_combine(seed, static_cast<std::size_t>(t.max_bits_per_cell));
  hash_double(seed, t.read_voltage);
  hash_double(seed, t.write_voltage);
  hash_double(seed, t.write_latency);
  hash_double(seed, t.write_energy);
  hash_double(seed, t.read_latency);
  hash_double(seed, t.on_resistance);
  hash_double(seed, t.off_resistance);
  hash_double(seed, t.endurance_cycles);
  hash_double(seed, t.retention_s);
}

}  // namespace

bool operator==(const CamDesignSpec& a, const CamDesignSpec& b) {
  if (a.device != b.device || a.cell != b.cell || a.match != b.match || a.tech != b.tech ||
      a.words != b.words || a.bits != b.bits || a.bits_per_cell != b.bits_per_cell ||
      a.subarray_rows != b.subarray_rows || a.subarray_cols != b.subarray_cols ||
      a.cell_area_f2 != b.cell_area_f2 || a.cell_pitch_f != b.cell_pitch_f ||
      a.v_search != b.v_search || a.sl_activity != b.sl_activity ||
      a.access_tx_width_um != b.access_tx_width_um ||
      a.min_distinguishable_steps != b.min_distinguishable_steps ||
      a.sensing_clock_phases != b.sensing_clock_phases || a.clock_period != b.clock_period ||
      a.device_sigma_rel != b.device_sigma_rel || a.sigma_confidence != b.sigma_confidence)
    return false;
  if (!sense_equal(a.sense, b.sense)) return false;
  if (a.device_override.has_value() != b.device_override.has_value()) return false;
  return !a.device_override || traits_equal(*a.device_override, *b.device_override);
}

std::size_t CamSpecHash::operator()(const CamDesignSpec& spec) const {
  std::size_t seed = 0;
  hash_combine(seed, static_cast<std::size_t>(spec.device));
  hash_combine(seed, static_cast<std::size_t>(spec.cell));
  hash_combine(seed, static_cast<std::size_t>(spec.match));
  hash_combine(seed, std::hash<std::string>{}(spec.tech));
  hash_combine(seed, spec.words);
  hash_combine(seed, spec.bits);
  hash_combine(seed, static_cast<std::size_t>(spec.bits_per_cell));
  hash_combine(seed, spec.subarray_rows);
  hash_combine(seed, spec.subarray_cols);
  hash_double(seed, spec.cell_area_f2);
  hash_double(seed, spec.cell_pitch_f);
  hash_double(seed, spec.v_search);
  hash_double(seed, spec.sl_activity);
  hash_double(seed, spec.access_tx_width_um);
  hash_combine(seed, spec.min_distinguishable_steps);
  hash_combine(seed, spec.sensing_clock_phases);
  hash_double(seed, spec.clock_period);
  hash_double(seed, spec.device_sigma_rel);
  hash_double(seed, spec.sigma_confidence);
  hash_double(seed, spec.sense.offset_sigma_v);
  hash_double(seed, spec.sense.min_margin_v);
  hash_double(seed, spec.sense.latency);
  hash_double(seed, spec.sense.energy);
  hash_double(seed, spec.sense.time_resolution);
  if (spec.device_override) hash_traits(seed, *spec.device_override);
  return seed;
}

std::string to_string(CellType t) {
  switch (t) {
    case CellType::k2T2R: return "2T2R";
    case CellType::k4T2R: return "4T2R";
    case CellType::k2FeFET: return "2FeFET";
    case CellType::k16T: return "16T";
  }
  return "?";
}

EvaCam::EvaCam(CamDesignSpec spec) : spec_(spec) {
  XLDS_REQUIRE(spec_.words >= 1 && spec_.bits >= 1);
  XLDS_REQUIRE(spec_.subarray_rows >= 1 && spec_.subarray_cols >= 1);
  XLDS_REQUIRE(spec_.sl_activity >= 0.0 && spec_.sl_activity <= 1.0);
  const bool resistive = spec_.cell == CellType::k2T2R || spec_.cell == CellType::k4T2R;
  const bool two_terminal_device = device::traits(spec_.device).terminals == 2;
  XLDS_REQUIRE_MSG(!resistive || two_terminal_device,
                   "cell " << to_string(spec_.cell) << " needs a two-terminal device, got "
                           << device::to_string(spec_.device));
  if (spec_.cell == CellType::k2FeFET)
    XLDS_REQUIRE_MSG(spec_.device == device::DeviceKind::kFeFet ||
                         spec_.device == device::DeviceKind::kFlash,
                     "2FeFET cells need a three-terminal FeFET/flash device");
  XLDS_REQUIRE(spec_.bits_per_cell >= 1);
  switch (spec_.cell) {
    case CellType::k2FeFET:
      XLDS_REQUIRE_MSG(spec_.bits_per_cell <= device::traits(spec_.device).max_bits_per_cell,
                       device::to_string(spec_.device)
                           << " stores at most "
                           << device::traits(spec_.device).max_bits_per_cell << " bits/cell");
      break;
    case CellType::k2T2R:
      XLDS_REQUIRE_MSG(spec_.bits_per_cell <= 2,
                       "2T2R supports at most two-bit encoding per cell");
      break;
    default:
      XLDS_REQUIRE_MSG(spec_.bits_per_cell == 1,
                       to_string(spec_.cell) << " cells are single-bit");
      break;
  }
}

double EvaCam::default_cell_area_f2(CellType cell) {
  switch (cell) {
    case CellType::k2T2R: return 190.0;
    case CellType::k4T2R: return 125.0;
    case CellType::k2FeFET: return 80.0;
    case CellType::k16T: return 430.0;
  }
  return 190.0;
}

double EvaCam::resolved_cell_area_f2() const {
  return spec_.cell_area_f2 > 0.0 ? spec_.cell_area_f2 : default_cell_area_f2(spec_.cell);
}

double EvaCam::resolved_pitch_f() const {
  return spec_.cell_pitch_f > 0.0 ? spec_.cell_pitch_f : std::sqrt(resolved_cell_area_f2());
}

double EvaCam::resolved_v_search() const {
  return spec_.v_search > 0.0 ? spec_.v_search : device::tech_node(spec_.tech).vdd;
}

double EvaCam::access_resistance() const {
  const auto& node = device::tech_node(spec_.tech);
  const double w = spec_.access_tx_width_um > 0.0 ? spec_.access_tx_width_um
                                                  : 2.0 * node.min_tx_width_um;
  return node.tx_on_resistance(w);
}

double EvaCam::mismatch_conductance() const {
  const auto& dev = spec_.resolved_traits();
  switch (spec_.cell) {
    case CellType::k2T2R: {
      const double g_on = 1.0 / (dev.on_resistance + access_resistance());
      if (spec_.bits_per_cell == 1) return g_on;
      // Two-bit encoding: intermediate resistance states split the window.
      const double g_off = 1.0 / (dev.off_resistance + access_resistance());
      const auto levels = static_cast<double>(1 << spec_.bits_per_cell);
      return g_off + (g_on - g_off) / (levels - 1.0);
    }
    case CellType::k4T2R: return 1.0 / (dev.on_resistance + access_resistance());
    case CellType::k2FeFET: {
      // Square-law (M)CAM: a one-level-step mismatch conducts at the single
      // step's overdrive, from the FeFET device model at this precision —
      // one consistent anchor across bits/cell so the density/sensing trade
      // is apples-to-apples.
      device::FeFetParams p;
      p.bits = spec_.bits_per_cell;
      const device::FeFetModel fefet(p);
      return fefet.conductance(fefet.search_voltage(1), fefet.level_vth(0));
    }
    case CellType::k16T: return 1.0 / (2.0 * access_resistance());
  }
  return 0.0;
}

double EvaCam::match_leak_conductance() const {
  const auto& dev = spec_.resolved_traits();
  switch (spec_.cell) {
    case CellType::k2T2R:
    case CellType::k4T2R: return 1.0 / (dev.off_resistance + access_resistance());
    case CellType::k2FeFET: return 1.0 / dev.off_resistance;
    case CellType::k16T: return 1.0e-9;  // junction leakage
  }
  return 0.0;
}

std::size_t EvaCam::cells_per_word() const {
  const auto bpc = static_cast<std::size_t>(spec_.bits_per_cell);
  return (spec_.bits + bpc - 1) / bpc;
}

std::size_t EvaCam::mat_count() const {
  const std::size_t cells_per_mat = spec_.subarray_rows * spec_.subarray_cols;
  const std::size_t total_cells = spec_.words * cells_per_word();
  return (total_cells + cells_per_mat - 1) / cells_per_mat;
}

CamFom EvaCam::evaluate() const {
  const auto& node = device::tech_node(spec_.tech);
  const auto& dev = spec_.resolved_traits();
  const double f2 = node.feature_m * node.feature_m;
  const circuit::WireModel wire(node, resolved_pitch_f());
  const circuit::SenseAmp sa(spec_.sense);

  const double w_access =
      spec_.access_tx_width_um > 0.0 ? spec_.access_tx_width_um : 2.0 * node.min_tx_width_um;
  circuit::MatchlineParams mlp;
  mlp.v_precharge = node.vdd;
  mlp.v_sense = node.vdd / 2.0;
  mlp.cell_drain_cap =
      static_cast<double>(devices_on_matchline(spec_.cell)) * node.tx_drain_cap(w_access);
  mlp.leak_conductance_per_cell = match_leak_conductance();
  const circuit::MatchlineModel ml(mlp, wire, spec_.subarray_cols);

  const double g_mis = mismatch_conductance();

  // --- area -----------------------------------------------------------------
  const double cells_area =
      resolved_cell_area_f2() * f2 * static_cast<double>(spec_.subarray_rows * spec_.subarray_cols);
  const double periph_area =
      (kSenseAmpAreaF2PerRow * static_cast<double>(spec_.subarray_rows) +
       kSlDriverAreaF2PerCol * static_cast<double>(spec_.subarray_cols) +
       kDecoderAreaF2PerRow * static_cast<double>(spec_.subarray_rows)) *
      f2;
  const double mat_area = (cells_area + periph_area) * (1.0 + kMatAreaOverhead);
  const auto mats = static_cast<double>(mat_count());

  CamFom fom;
  fom.area_m2 = mat_area * mats;

  // --- search latency ---------------------------------------------------
  // Search-line drive: each SL spans the subarray rows, loading one gate per
  // row; driver is a sized buffer.
  const circuit::WireSegment sl = wire.span(spec_.subarray_rows);
  circuit::DriverModel sl_driver;
  sl_driver.load_capacitance = sl.capacitance + static_cast<double>(spec_.subarray_rows) *
                                                    node.tx_gate_cap(w_access);
  sl_driver.drive_resistance = node.tx_on_resistance(20.0 * node.min_tx_width_um);
  sl_driver.swing = resolved_v_search();

  // Matchline development: sense at the time of peak margin between a full
  // match and one mismatch unit.
  const MarginPoint mp = peak_margin(ml, g_mis, 0);
  // When the available margin is below what the SA needs, the (self-
  // referenced) sensing integrates proportionally longer — the low on/off
  // ratio penalty (e.g. MRAM).
  const double sa_stretch = mp.margin > 0.0
                                ? std::max(1.0, spec_.sense.min_margin_v / mp.margin)
                                : 16.0;
  const double t_sense = sa.latency() * sa_stretch;

  const double die_edge = std::sqrt(fom.area_m2);
  const double broadcast = 100e-12 * (die_edge / 2.0) / 1e-3;  // ~100 ps/mm

  fom.search_latency = broadcast + sl_driver.latency() + mp.time + t_sense +
                       static_cast<double>(spec_.sensing_clock_phases) * spec_.clock_period;
  if (spec_.match == cam::MatchType::kBest) {
    const circuit::WinnerTakeAll wta;
    fom.search_latency += wta.latency(spec_.subarray_rows);
  }

  // --- search energy (whole memory: every mat participates) ---------------
  const double e_ml = static_cast<double>(spec_.subarray_rows) * ml.search_energy();
  const double e_sl = spec_.sl_activity * 2.0 * static_cast<double>(spec_.subarray_cols) *
                      sl_driver.energy();
  const double e_sa = static_cast<double>(spec_.subarray_rows) * sa.energy() * sa_stretch;
  double e_mat = e_ml + e_sl + e_sa;
  if (spec_.match == cam::MatchType::kBest) {
    const circuit::WinnerTakeAll wta;
    e_mat += wta.energy(spec_.subarray_rows);
  }
  const double e_broadcast = 0.5 * die_edge * node.wire_c_per_m * node.vdd * node.vdd *
                             static_cast<double>(spec_.bits);
  fom.search_energy = e_mat * mats + e_broadcast;

  // --- write ----------------------------------------------------------------
  // A word write programs both devices of every cell in the row.
  const auto word_cells = static_cast<double>(cells_per_word());
  fom.write_latency = dev.write_latency + sl_driver.latency();
  fom.write_energy =
      word_cells * 2.0 * dev.write_energy + 2.0 * word_cells * sl_driver.energy();

  // --- leakage ----------------------------------------------------------------
  fom.leakage_power =
      mats * (kLeakagePerMatW + kLeakagePerRowW * static_cast<double>(spec_.subarray_rows));

  // --- sensing limits ---------------------------------------------------------
  fom.mismatch_limit = ml.mismatch_limit(g_mis, spec_.sense.min_margin_v);
  fom.mismatch_limit_with_variation =
      spec_.device_sigma_rel > 0.0
          ? mismatch_limit_with_variation(ml, g_mis, spec_.device_sigma_rel,
                                          spec_.sigma_confidence, spec_.sense.min_margin_v)
          : fom.mismatch_limit;

  // Max matchline width: largest column count at which the sensing can still
  // distinguish `min_distinguishable_steps` adjacent mismatch counts —
  // nominally, and with the device-variation distributions folded in (the
  // Sec.-VI "array size and mismatch limit prediction" extension).
  auto max_columns = [&](bool with_variation) {
    std::size_t lo = 1, hi = 4096, best_cols = 0;
    while (lo <= hi) {
      const std::size_t mid = (lo + hi) / 2;
      const circuit::MatchlineModel trial(mlp, wire, mid);
      const std::size_t limit =
          with_variation
              ? mismatch_limit_with_variation(trial, g_mis, spec_.device_sigma_rel,
                                              spec_.sigma_confidence, spec_.sense.min_margin_v)
              : trial.mismatch_limit(g_mis, spec_.sense.min_margin_v);
      if (limit >= spec_.min_distinguishable_steps) {
        best_cols = mid;
        lo = mid + 1;
      } else {
        if (mid == 0) break;
        hi = mid - 1;
      }
    }
    return best_cols;
  };
  fom.max_ml_columns = max_columns(false);
  fom.max_ml_columns_with_variation =
      spec_.device_sigma_rel > 0.0 ? max_columns(true) : fom.max_ml_columns;
  return fom;
}

CamFom evaluate_with_variation(CamDesignSpec spec, double sigma_rel) {
  XLDS_REQUIRE(sigma_rel >= 0.0);
  spec.device_sigma_rel = sigma_rel;
  return EvaCam(std::move(spec)).evaluate();
}

}  // namespace xlds::evacam
