#include "evacam/presets.hpp"

#include "util/error.hpp"

namespace xlds::evacam {

namespace {

// RRAM 2T2R TCAM at 40 nm (Fig. 5 row 1).  Published: area 98000 um^2
// (array + peripherals only), search latency >= 5 ns (silicon) / 2-4.4 ns
// (tool), search energy 270 pJ.  We model a 256 Kb macro (2048 words x 128
// bits) of 2T2R cells; the ~190 F^2 cell footprint follows 40 nm 2T2R TCAM
// publications.
ValidationChip rram_chip() {
  ValidationChip chip;
  chip.name = "RRAM 2T2R 40nm";
  CamDesignSpec s;
  s.device = device::DeviceKind::kRram;
  s.cell = CellType::k2T2R;
  s.match = cam::MatchType::kExact;
  s.tech = "40nm";
  s.words = 2048;
  s.bits = 128;
  s.subarray_rows = 256;
  s.subarray_cols = 128;
  s.access_tx_width_um = 0.24;  // wide access devices, low series resistance
  s.sl_activity = 1.0;          // differential SL pairs toggle every search
  s.sensing_clock_phases = 2;   // clocked self-referenced sensing
  chip.spec = s;
  chip.area_um2 = {98000.0, 86600.0};
  chip.search_latency_ns = {5.0, 3.2};  // paper prints the tool range 2-4.4
  chip.search_energy_pj = {270.0, 268.5};
  chip.note = "actual area includes RRAM array and peripherals only";
  return chip;
}

// PCM 2T2R TCAM at 90 nm (Fig. 5 row 2).  Only search latency is published:
// 1.9 ns silicon, 2.1 ns tool.  1 Mb macro with two-bit-encoded 2T-2R cells.
ValidationChip pcm_chip() {
  ValidationChip chip;
  chip.name = "PCM 2T2R 90nm";
  CamDesignSpec s;
  s.device = device::DeviceKind::kPcm;
  s.cell = CellType::k2T2R;
  s.match = cam::MatchType::kExact;
  s.tech = "90nm";
  s.words = 16384;
  s.bits = 64;
  s.subarray_rows = 512;
  s.subarray_cols = 64;
  s.access_tx_width_um = 0.5;  // 90 nm: wide access devices
  s.sensing_clock_phases = 1;  // single-phase clocked self-reference
  chip.spec = s;
  chip.search_latency_ns = {1.9, 2.1};
  chip.note = "only latency published";
  return chip;
}

// MRAM 4T2R CAM at 90 nm (Fig. 5 row 3).  Published: area 17200 um^2 /
// 18270 um^2, latency 2.5 / 2.72 (the table prints "ps"; the 8.6 % error
// column is consistent with either unit — we read ns, as a sub-3 ps CAM
// search is not physical).  Modelled as a 16 Kb macro; the small MTJ on/off
// ratio is what stretches the self-referenced sensing.
ValidationChip mram_chip() {
  ValidationChip chip;
  chip.name = "MRAM 4T2R 90nm";
  CamDesignSpec s;
  s.device = device::DeviceKind::kMram;
  s.cell = CellType::k4T2R;
  s.match = cam::MatchType::kExact;
  s.tech = "90nm";
  s.words = 128;
  s.bits = 128;
  s.subarray_rows = 128;
  s.subarray_cols = 128;
  chip.spec = s;
  chip.area_um2 = {17200.0, 18270.0};
  chip.search_latency_ns = {2.5, 2.72};
  chip.note = "latency unit printed as ps in Fig. 5; read as ns";
  return chip;
}

}  // namespace

const std::vector<ValidationChip>& fig5_chips() {
  static const std::vector<ValidationChip> chips = {rram_chip(), pcm_chip(), mram_chip()};
  return chips;
}

CamDesignSpec preset_spec(const std::string& name) {
  if (name == "rram-2t2r-40nm") return rram_chip().spec;
  if (name == "pcm-2t2r-90nm") return pcm_chip().spec;
  if (name == "mram-4t2r-90nm") return mram_chip().spec;
  if (name == "fefet-2t-28nm") {
    CamDesignSpec s;
    s.device = device::DeviceKind::kFeFet;
    s.cell = CellType::k2FeFET;
    s.match = cam::MatchType::kBest;
    s.tech = "28nm";
    s.words = 1024;
    s.bits = 64;
    s.subarray_rows = 64;
    s.subarray_cols = 64;
    // BE-match sensing: the adjacent-count margin shrinks ~1/k, so 4
    // distinguishable steps is what a 50 mV sense amp supports.
    s.min_distinguishable_steps = 4;
    return s;
  }
  XLDS_REQUIRE_MSG(false, "unknown Eva-CAM preset '" << name << "'");
}

}  // namespace xlds::evacam
