// Eva-CAM: circuit/architecture-level analytical evaluation of NV-CAMs
// (Sec. VI, Fig. 1F, Fig. 5).
//
// Given a CAM design — device technology, cell topology (2T2R / 4T2R /
// 2FeFET), match type, capacity and subarray organisation — the tool
// projects area, search latency, search energy, write cost and leakage, and
// derives the *mismatch limit* and maximum matchline width from the sense
// margin analysis (the Eva-CAM extension the paper describes: comparing the
// matchline's sense margin against the sensing circuit's margin).
//
// Like the original tool, projections aim at the ±20 % band against
// fabricated chips (Fig. 5); presets.hpp carries the published reference
// points used for validation.
#pragma once

#include <cstddef>
#include <optional>
#include <string>

#include "cam/types.hpp"
#include "circuit/matchline.hpp"
#include "circuit/senseamp.hpp"
#include "device/device.hpp"
#include "device/fefet.hpp"

namespace xlds::evacam {

/// Cell topology.  The transistor count sets area and matchline loading; the
/// storage element sets the pull-down/leak conductances.
enum class CellType {
  k2T2R,    ///< two access transistors + two resistive devices (RRAM/PCM)
  k4T2R,    ///< four transistors + two MTJs (MRAM-style, self-referenced)
  k2FeFET,  ///< two FeFETs, no access devices (three-terminal cell)
  k16T,     ///< CMOS SRAM TCAM reference cell
};

std::string to_string(CellType t);

struct CamDesignSpec {
  device::DeviceKind device = device::DeviceKind::kRram;
  CellType cell = CellType::k2T2R;
  cam::MatchType match = cam::MatchType::kExact;
  std::string tech = "40nm";
  std::size_t words = 2048;        ///< total entries
  std::size_t bits = 128;          ///< bits per entry
  /// Multi-bit (MCAM) cells: bits stored per cell.  1 = TCAM.  Supported:
  /// up to the device's multi-level capability for 2FeFET cells, up to 2 for
  /// 2T2R (the two-bit-encoded macros), 1 elsewhere.  Denser words, but the
  /// one-step mismatch conductance shrinks with the level count, stressing
  /// the sense margin (the Fig. 3B window-vs-levels trade).
  int bits_per_cell = 1;
  std::size_t subarray_rows = 256; ///< rows per mat
  std::size_t subarray_cols = 128; ///< matchline width per mat
  /// Cell area in F^2; 0 selects the per-topology default.
  double cell_area_f2 = 0.0;
  /// Matchline pitch per cell in F; 0 selects sqrt(cell_area_f2).
  double cell_pitch_f = 0.0;
  /// Search-line voltage swing; 0 selects the node Vdd.
  double v_search = 0.0;
  /// Fraction of search lines toggling per search.
  double sl_activity = 0.5;
  /// Access-transistor width (um); 0 selects 2x the node minimum.
  double access_tx_width_um = 0.0;
  /// For BE/TH matches: how many adjacent mismatch counts the sensing must
  /// still distinguish when deriving max_ml_columns (EX needs only 0-vs-1).
  std::size_t min_distinguishable_steps = 1;
  /// Clocked self-referenced sensing phases (e.g. the 2T2R TCAM macros use a
  /// two-phase clocked self-reference): each adds one clock period to the
  /// search latency.  0 = purely asynchronous sensing.
  std::size_t sensing_clock_phases = 0;
  double clock_period = 1.0e-9;  ///< s
  /// Device-variation integration (the Sec.-VI Eva-CAM extension): relative
  /// sigma of the cell's mismatch conductance (device-to-device + programming
  /// spread).  0 disables the variation-aware analysis.
  double device_sigma_rel = 0.0;
  /// Design margin in sigmas: the matchline's worst row is assumed to sit
  /// this many sigmas away from nominal when sizing the array.
  double sigma_confidence = 3.0;
  circuit::SenseAmpParams sense;
  /// What-if device: overrides the canonical trait preset (the Fig. 6
  /// materials-lever hook).
  std::optional<device::DeviceTraits> device_override;

  const device::DeviceTraits& resolved_traits() const {
    return device_override ? *device_override : device::traits(device);
  }
};

/// Field-wise equality / hashing so CamDesignSpec can key a memo cache:
/// EvaCam::evaluate() is a pure function of the spec, and design-space sweeps
/// re-request the same handful of specs thousands of times.
bool operator==(const CamDesignSpec& a, const CamDesignSpec& b);
inline bool operator!=(const CamDesignSpec& a, const CamDesignSpec& b) { return !(a == b); }

struct CamSpecHash {
  std::size_t operator()(const CamDesignSpec& spec) const;
};

/// Projected figures of merit (SI units).
struct CamFom {
  double area_m2 = 0.0;
  double search_latency = 0.0;
  double search_energy = 0.0;  ///< per search of the whole memory
  double write_latency = 0.0;  ///< per word
  double write_energy = 0.0;   ///< per word
  double leakage_power = 0.0;
  std::size_t mismatch_limit = 0;   ///< distinguishable distance steps per matchline
  std::size_t max_ml_columns = 0;   ///< sense-margin-limited matchline width
  /// As above but with device variation folded into the margins (equal to
  /// the nominal values when device_sigma_rel == 0).
  std::size_t mismatch_limit_with_variation = 0;
  std::size_t max_ml_columns_with_variation = 0;
};

class EvaCam {
 public:
  explicit EvaCam(CamDesignSpec spec);

  const CamDesignSpec& spec() const noexcept { return spec_; }

  /// Full projection for the configured design.
  CamFom evaluate() const;

  /// Effective cell pull-down conductance of a *one-step* mismatch (S) —
  /// the full on-state for single-bit cells, the single-level step for
  /// multi-bit cells.
  double mismatch_conductance() const;

  /// Per-cell leakage conductance on a matching cell (S).
  double match_leak_conductance() const;

  /// Cells needed to store one entry (bits / bits_per_cell, rounded up).
  std::size_t cells_per_word() const;

  /// Number of subarrays (mats) in the memory.
  std::size_t mat_count() const;

  /// Default cell area for a topology, in F^2.
  static double default_cell_area_f2(CellType cell);

 private:
  double resolved_cell_area_f2() const;
  double resolved_pitch_f() const;
  double resolved_v_search() const;
  double access_resistance() const;

  CamDesignSpec spec_;
};

/// Fidelity-ladder adapter (DSE tier 1): re-project the design with
/// device-to-device variation folded into the sense-margin analysis at
/// `sigma_rel` relative conductance spread.  Returns the variation-aware
/// figures of merit; the *_with_variation margin fields are the ones the
/// ladder compares against the nominal projection to decide whether a
/// triage-level winner survives a realistic programming spread.
CamFom evaluate_with_variation(CamDesignSpec spec, double sigma_rel);

}  // namespace xlds::evacam
