// Validation presets: the fabricated CAM chips Eva-CAM was validated
// against in Fig. 5 of the paper, with the published reference numbers.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "evacam/evacam.hpp"

namespace xlds::evacam {

/// One published reference value with the unit used in Fig. 5.
struct Reference {
  std::optional<double> actual;        ///< measured silicon (as printed)
  std::optional<double> paper_evacam;  ///< the paper tool's projection
};

struct ValidationChip {
  std::string name;        ///< e.g. "RRAM 2T2R 40nm"
  CamDesignSpec spec;      ///< our modelled design for that chip
  Reference area_um2;
  Reference search_latency_ns;
  Reference search_energy_pj;
  std::string note;
};

/// The three Fig. 5 chips.  Notes record where the printed table is
/// ambiguous (the MRAM row prints "ps", which we — like the error column —
/// read as ns).
const std::vector<ValidationChip>& fig5_chips();

/// Convenience: preset spec by name ("rram-2t2r-40nm", "pcm-2t2r-90nm",
/// "mram-4t2r-90nm", "fefet-2t-28nm").
CamDesignSpec preset_spec(const std::string& name);

}  // namespace xlds::evacam
