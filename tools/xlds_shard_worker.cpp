// xlds-shard-worker: a standalone evaluation shard.
//
//   xlds-shard-worker --fd N
//
// Speaks the shard wire protocol (src/shard/protocol.hpp) on an inherited
// stream fd: reads the Hello, rebuilds the fidelity ladder from the job-spec
// JSON it carries, acks with the job hash *this binary* derives (a mismatch
// with the parent's hash aborts before any evaluation — the guard against a
// stale worker binary pricing a different physics), then serves EvalRequests
// until Shutdown or EOF.
//
// The default ShardPool path forks the parent instead of exec'ing this tool
// (inheriting the evaluator closure and warm caches for free); this binary
// exists to prove the protocol carries everything a fresh process needs —
// the stepping stone to running shards on other machines.
#include <cstdio>
#include <memory>
#include <string>

#include <signal.h>

#include "dse/engine.hpp"
#include "dse/fidelity.hpp"
#include "dse/jobspec.hpp"
#include "dse/space.hpp"
#include "shard/worker.hpp"
#include "util/argparse.hpp"

int main(int argc, char** argv) {
  using namespace xlds;
  util::ArgParse args("xlds-shard-worker",
                      "Evaluation shard serving the XLDS wire protocol on an inherited fd");
  args.add_option("fd", "stream file descriptor to serve (required)");
  if (!args.parse(argc, argv)) return args.help_requested() ? 0 : 2;
  if (!args.provided("fd")) {
    std::fprintf(stderr, "xlds-shard-worker: --fd is required (see --help)\n");
    return 2;
  }
  ::signal(SIGPIPE, SIG_IGN);  // a dead parent must surface as a write error

  shard::WorkerInit init;
  init.factory = [](const shard::Hello& hello) {
    const dse::EngineConfig config = dse::config_from_spec_text(hello.job_json);
    // Shared so the evaluator closure keeps them alive for the serve loop.
    const auto space = std::make_shared<dse::SearchSpace>(config.axes, config.application);
    const auto ladder = std::make_shared<dse::FidelityLadder>(
        config.fidelity, core::profile_for(config.application));
    shard::WorkerJob job;
    job.application = config.application;
    job.job_hash = dse::job_hash(*space, *ladder);
    job.evaluate = [ladder](const core::DesignPoint& p, std::uint32_t tier) {
      return ladder->evaluate(p, static_cast<dse::Fidelity>(tier));
    };
    return job;
  };
  return shard::serve_worker(static_cast<int>(args.uinteger("fd")), init);
}
