// xlds-dse: budgeted design-space exploration from a JSON job spec.
//
//   xlds-dse --spec job.json [--out result.json] [--csv result.csv]
//            [--journal path] [--seed N] [--budget N] [--strategy name]
//            [--surrogate on|off] [--surrogate-refit N] [--surrogate-uncertainty X]
//            [--surrogate-qpc N] [--shards N] [--cache path]
//            [--threads N] [--sched steal|static] [--no-stats]
//
// The spec carries the full job description (see src/dse/jobspec.hpp);
// command-line options override the matching spec fields so a CI matrix can
// reuse one spec across strategies/seeds.  With --journal, a killed run
// resumes from the journal on the next invocation and finishes with results
// bit-identical to a run that was never interrupted.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "dse/engine.hpp"
#include "dse/jobspec.hpp"
#include "util/argparse.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"

namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  XLDS_REQUIRE_MSG(in.is_open(), "cannot read spec file '" << path << "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void write_file(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary);
  XLDS_REQUIRE_MSG(out.is_open(), "cannot write '" << path << "'");
  out << contents;
  XLDS_REQUIRE_MSG(out.good(), "write to '" << path << "' failed");
}

}  // namespace

int main(int argc, char** argv) {
  using xlds::util::ArgParse;
  ArgParse args("xlds-dse", "Budgeted design-space exploration over the XLDS grid");
  args.add_option("spec", "JSON job spec path (required)");
  args.add_option("strategy", "override spec strategy: random | lhs | nsga2 | halving");
  args.add_option("budget", "override spec budget (unique point/tier charges; 0 = viable space)");
  args.add_option("journal", "override spec journal path (enables crash-safe resume)");
  args.add_option("csv", "also write per-point CSV to this path");
  args.add_option("surrogate",
                  "learned tier-0 rung: on | off (overrides the spec's surrogate.enabled)");
  args.add_option("surrogate-refit", "refit the forest every N new observations");
  args.add_option("surrogate-uncertainty",
                  "promote predictions with relative std above this threshold");
  args.add_option("surrogate-qpc", "surrogate queries exchanged per ladder budget charge");
  args.add_option("shards",
                  "evaluation shard processes: 1 = in-process (default: XLDS_SHARDS or 1); "
                  "speed-only, results are bit-identical at any count");
  args.add_option("cache",
                  "persistent cross-run result cache file (overrides the spec's \"cache\")");
  args.add_flag("no-stats", "omit run statistics from the JSON (resume-comparable output)");
  xlds::util::add_bench_options(args, /*default_seed=*/0);

  if (!args.parse(argc, argv)) return args.help_requested() ? 0 : 2;

  try {
    XLDS_REQUIRE_MSG(args.provided("spec"), "--spec is required (see --help)");
    xlds::dse::EngineConfig config =
        xlds::dse::config_from_spec_text(read_file(args.str("spec")));
    if (args.provided("strategy")) config.strategy = args.str("strategy");
    if (args.provided("budget")) config.budget = args.uinteger("budget");
    if (args.provided("journal")) config.journal_path = args.str("journal");
    if (args.provided("seed")) config.seed = args.uinteger("seed");
    if (args.provided("surrogate")) {
      const std::string mode = args.str("surrogate");
      XLDS_REQUIRE_MSG(mode == "on" || mode == "off", "--surrogate takes on | off");
      config.surrogate.enabled = mode == "on";
    }
    if (args.provided("surrogate-refit"))
      config.surrogate.refit_every = args.uinteger("surrogate-refit");
    if (args.provided("surrogate-uncertainty"))
      config.surrogate.promote_uncertainty = args.num("surrogate-uncertainty");
    if (args.provided("surrogate-qpc"))
      config.surrogate.queries_per_charge = args.uinteger("surrogate-qpc");
    if (args.provided("shards")) {
      config.shards = args.uinteger("shards");
      XLDS_REQUIRE_MSG(config.shards >= 1, "--shards takes a positive count");
    }
    if (args.provided("cache")) config.cache_path = args.str("cache");
    xlds::util::apply_bench_options(args);

    const xlds::dse::ExplorationResult result = xlds::dse::explore(config);
    const std::string json =
        xlds::dse::result_to_json(result, !args.flag("no-stats")).dump(2) + "\n";
    if (args.provided("out"))
      write_file(args.str("out"), json);
    else
      std::cout << json;
    if (args.provided("csv")) write_file(args.str("csv"), xlds::dse::result_to_csv(result));

    std::cerr << "xlds-dse: " << result.strategy << " charged " << result.stats.charges
              << "/" << result.budget << " (computed " << result.stats.computed
              << ", journal hits " << result.stats.journal_hits << "), front "
              << result.front.size() << " of " << result.evaluated.size()
              << " evaluated\n";
    if (config.surrogate.enabled) {
      const auto& s = result.stats;
      std::cerr << "xlds-dse: surrogate: " << s.surrogate_queries << " queries ("
                << s.surrogate_budget_units << " budget units), " << s.surrogate_promotions
                << " promoted, " << s.surrogate_hits << " screened out, "
                << s.surrogate_refits << " refits, " << s.surrogate_disagreements
                << " disagreements\n";
    }
    if (result.stats.shards_used > 1 || !config.cache_path.empty()) {
      const auto& s = result.stats;
      std::cerr << "xlds-dse: shards: " << s.shards_used << " workers, " << s.shard_requests
                << " requests (" << s.shard_redispatches << " redispatched, "
                << s.shard_respawns << " respawns); cache: " << s.cache_hits << " hits, "
                << s.cache_appends << " appends\n";
    }
    const auto& nodal = result.stats.nodal;
    std::cerr << "xlds-dse: nodal solver work: " << nodal.factorizations
              << " factorizations, " << nodal.incremental_updates << " incremental updates ("
              << nodal.updated_cells << " cells, " << nodal.update_declines << " declined), "
              << nodal.drift_refactorizations << " drift rebuilds, " << nodal.direct_solves
              << " direct / " << nodal.gs_solves << " GS solves\n";
    const auto& sched = result.stats.scheduler;
    std::cerr << "xlds-dse: scheduler ("
              << (xlds::parallel_scheduler() == xlds::SchedulerMode::kWorkStealing
                      ? "work-stealing"
                      : "static")
              << ", " << xlds::parallel_thread_count() << " lanes): "
              << sched.counts.jobs << " jobs (" << sched.counts.inline_jobs << " inline), "
              << sched.counts.tasks << " tasks + " << sched.counts.stolen_tasks
              << " stolen, " << sched.counts.nested_cooperative << " nested cooperative / "
              << sched.counts.nested_inlined << " inlined; busy s/tier [surrogate "
              << sched.tier_busy_s[0] << ", analytic " << sched.tier_busy_s[1] << ", nodal "
              << sched.tier_busy_s[2] << ", mc " << sched.tier_busy_s[3] << "]\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "xlds-dse: error: " << e.what() << "\n";
    return 1;
  }
}
