// xlds-journal: inspect and export crash-safe DSE journals.
//
//   xlds-journal --file run.xjl                 # integrity + per-tier summary
//   xlds-journal --file run.xjl --csv out.csv   # (point, tier, FOM) dump
//   xlds-journal --file run.xjl --json out.json # same, as a JSON document
//   xlds-journal cache --file results.xrc       # persistent result cache:
//                                               #   records, tiers, job spaces,
//                                               #   per-session hit rates
//   xlds-journal cache --file results.xrc --csv out.csv
//
// The journal is the surrogate model's training set — every (point, tier,
// FOM) the engine ever paid for — so being able to audit it matters twice:
// once for trust (is the file intact? which job wrote it? how much of a torn
// tail would a resume drop?) and once for analysis (dump the history a forest
// was fitted on).  The inspection is strictly read-only: unlike opening a
// journal for resume, it never truncates a torn tail or upgrades a legacy
// file, so it is safe to point at a journal another run is appending to.
#include <array>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>

#include <map>
#include <set>

#include "dse/fidelity.hpp"
#include "dse/journal.hpp"
#include "shard/result_cache.hpp"
#include "util/argparse.hpp"
#include "util/error.hpp"
#include "util/json.hpp"

namespace {

std::string format_g(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

std::string format_hex64(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

void write_file(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary);
  XLDS_REQUIRE_MSG(out.is_open(), "cannot write '" << path << "'");
  out << contents;
  XLDS_REQUIRE_MSG(out.good(), "write to '" << path << "' failed");
}

/// The `cache` subcommand: read-only inspection of a persistent cross-run
/// result cache (shard::ResultCache) — record counts by tier, the distinct
/// job spaces sharing the file, and the hit-rate history its session
/// records accumulated.  Like the journal inspection, never truncates.
int run_cache_subcommand(int argc, char** argv) {
  using namespace xlds;
  util::ArgParse args("xlds-journal cache",
                      "Inspect and export persistent cross-run result caches");
  args.add_option("file", "result cache path (required)");
  args.add_option("csv", "dump result records as CSV to this path");
  args.add_flag("quiet", "suppress the summary (dumps only)");
  if (!args.parse(argc, argv)) return args.help_requested() ? 0 : 2;

  try {
    XLDS_REQUIRE_MSG(args.provided("file"), "--file is required (see --help)");
    const std::string path = args.str("file");
    const shard::ResultCache::InspectInfo info = shard::ResultCache::inspect(path);

    std::array<std::size_t, dse::kFidelityTiers> by_tier{};
    std::set<std::uint64_t> spaces;
    std::size_t feasible = 0;
    for (const shard::ResultCache::ResultRecord& r : info.results) {
      XLDS_REQUIRE_MSG(r.tier < dse::kFidelityTiers,
                       "record carries unknown fidelity tier " << r.tier);
      ++by_tier[r.tier];
      spaces.insert(r.space_hash);
      if (r.fom.feasible) ++feasible;
    }

    if (!args.flag("quiet")) {
      std::cout << "cache:    " << path << "\n"
                << "version:  " << info.version << "\n"
                << "records:  " << info.results.size() << " intact (" << feasible
                << " feasible) across " << spaces.size() << " job space"
                << (spaces.size() == 1 ? "" : "s") << "\n";
      for (std::size_t t = 0; t < dse::kFidelityTiers; ++t)
        std::cout << "  " << dse::to_string(static_cast<dse::Fidelity>(t)) << ": "
                  << by_tier[t] << "\n";
      std::cout << "sessions: " << info.sessions.size() << "\n";
      std::uint64_t hits = 0;
      std::uint64_t misses = 0;
      for (const shard::ResultCache::SessionRecord& s : info.sessions) {
        hits += s.hits;
        misses += s.misses;
      }
      if (hits + misses > 0) {
        char rate[16];
        std::snprintf(rate, sizeof rate, "%.1f%%",
                      100.0 * static_cast<double>(hits) / static_cast<double>(hits + misses));
        std::cout << "hit rate: " << rate << " lifetime (" << hits << " hits / "
                  << misses << " misses)\n";
      }
      if (info.dropped_bytes > 0)
        std::cout << "torn tail: " << info.dropped_bytes
                  << " bytes (the next open truncates these)\n";
      else
        std::cout << "torn tail: none\n";
    }

    if (args.provided("csv")) {
      std::string csv = "space_hash,point_hash,tier,feasible,latency_s,energy_j,area_mm2,accuracy\n";
      for (const shard::ResultCache::ResultRecord& r : info.results)
        csv += format_hex64(r.space_hash) + ',' + format_hex64(r.point_hash) + ',' +
               dse::to_string(static_cast<dse::Fidelity>(r.tier)) + ',' +
               (r.fom.feasible ? "1," : "0,") + format_g(r.fom.latency) + ',' +
               format_g(r.fom.energy) + ',' + format_g(r.fom.area_mm2) + ',' +
               format_g(r.fom.accuracy) + '\n';
      write_file(args.str("csv"), csv);
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "xlds-journal: error: " << e.what() << "\n";
    return 1;
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace xlds;
  using xlds::util::ArgParse;
  if (argc > 1 && std::string(argv[1]) == "cache") {
    argv[1] = argv[0];  // shift: the subcommand parses its own flags
    return run_cache_subcommand(argc - 1, argv + 1);
  }
  ArgParse args("xlds-journal", "Inspect and export crash-safe DSE result journals");
  args.add_option("file", "journal path (required)");
  args.add_option("csv", "dump records as CSV to this path");
  args.add_option("json", "dump records as JSON to this path");
  args.add_flag("quiet", "suppress the summary (dumps only)");

  if (!args.parse(argc, argv)) return args.help_requested() ? 0 : 2;

  try {
    XLDS_REQUIRE_MSG(args.provided("file"), "--file is required (see --help)");
    const std::string path = args.str("file");
    const dse::Journal::InspectInfo info = dse::Journal::inspect(path);

    std::array<std::size_t, dse::kFidelityTiers> by_tier{};
    std::size_t feasible = 0;
    for (const dse::Journal::Record& r : info.records) {
      XLDS_REQUIRE_MSG(r.fidelity < dse::kFidelityTiers,
                       "record carries unknown fidelity tier " << r.fidelity);
      ++by_tier[r.fidelity];
      if (r.fom.feasible) ++feasible;
    }

    if (!args.flag("quiet")) {
      std::cout << "journal:  " << path << "\n"
                << "version:  " << info.version
                << (info.version == 1 ? " (legacy 3-tier; upgraded on next resume)" : "")
                << "\n"
                << "job hash: " << format_hex64(info.job_hash) << "\n"
                << "records:  " << info.records.size() << " intact (" << feasible
                << " feasible)\n";
      for (std::size_t t = 0; t < dse::kFidelityTiers; ++t)
        std::cout << "  " << dse::to_string(static_cast<dse::Fidelity>(t)) << ": "
                  << by_tier[t] << "\n";
      if (info.dropped_bytes > 0)
        std::cout << "torn tail: " << info.dropped_bytes
                  << " bytes (a resume would truncate these)\n";
      else
        std::cout << "torn tail: none\n";
    }

    if (args.provided("csv")) {
      std::string csv =
          "key,tier,feasible,latency_s,energy_j,area_mm2,accuracy,uncertainty,note\n";
      for (const dse::Journal::Record& r : info.records) {
        std::string note = r.fom.note;
        for (char& c : note)
          if (c == ',' || c == '\n') c = ';';
        csv += std::to_string(r.key) + ',' +
               dse::to_string(static_cast<dse::Fidelity>(r.fidelity)) + ',' +
               (r.fom.feasible ? "1," : "0,") + format_g(r.fom.latency) + ',' +
               format_g(r.fom.energy) + ',' + format_g(r.fom.area_mm2) + ',' +
               format_g(r.fom.accuracy) + ',' + format_g(r.uncertainty) + ',' + note + '\n';
      }
      write_file(args.str("csv"), csv);
    }

    if (args.provided("json")) {
      util::Json doc = util::Json::object();
      doc.set("version", static_cast<std::size_t>(info.version));
      doc.set("job_hash", format_hex64(info.job_hash));
      doc.set("dropped_bytes", info.dropped_bytes);
      util::Json records = util::Json::array();
      for (const dse::Journal::Record& r : info.records) {
        util::Json entry = util::Json::object();
        entry.set("key", static_cast<std::size_t>(r.key));
        entry.set("tier", dse::to_string(static_cast<dse::Fidelity>(r.fidelity)));
        entry.set("feasible", r.fom.feasible);
        entry.set("latency_s", r.fom.latency);
        entry.set("energy_j", r.fom.energy);
        entry.set("area_mm2", r.fom.area_mm2);
        entry.set("accuracy", r.fom.accuracy);
        entry.set("uncertainty", r.uncertainty);
        if (!r.fom.note.empty()) entry.set("note", r.fom.note);
        records.push_back(std::move(entry));
      }
      doc.set("records", std::move(records));
      write_file(args.str("json"), doc.dump(2) + "\n");
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "xlds-journal: error: " << e.what() << "\n";
    return 1;
  }
}
