// Unit tests for the circuit models: wires, matchline discharge, sense
// amplifiers and data converters.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "circuit/converter.hpp"
#include "circuit/matchline.hpp"
#include "circuit/senseamp.hpp"
#include "circuit/transient.hpp"
#include "circuit/wire.hpp"
#include "device/technology.hpp"
#include "util/error.hpp"

namespace xlds::circuit {
namespace {

const device::TechNode& node40() { return device::tech_node("40nm"); }

// ---- WireModel -------------------------------------------------------------

TEST(WireModel, ParasiticsScaleLinearly) {
  WireModel w(node40(), 10.0);
  const WireSegment one = w.span(1);
  const WireSegment hundred = w.span(100);
  EXPECT_NEAR(hundred.resistance, 100.0 * one.resistance, 1e-9);
  EXPECT_NEAR(hundred.capacitance, 100.0 * one.capacitance, 1e-20);
}

TEST(WireModel, ElmoreQuadraticInLength) {
  WireModel w(node40(), 10.0);
  EXPECT_NEAR(w.elmore_delay(200) / w.elmore_delay(100), 4.0, 1e-9);
}

TEST(WireModel, FinerNodesHaveHigherResistancePerCell) {
  WireModel coarse(device::tech_node("90nm"), 10.0);
  WireModel fine(device::tech_node("22nm"), 10.0);
  // Same pitch in F, but F shrinks faster than R/m grows? No: R/m grows ~1/F^2
  // while length shrinks ~F, so per-cell resistance grows at finer nodes.
  EXPECT_GT(fine.per_cell().resistance, coarse.per_cell().resistance);
}

// ---- MatchlineModel -------------------------------------------------------

MatchlineParams ml_params() {
  MatchlineParams p;
  p.v_precharge = 1.0;
  p.v_sense = 0.5;
  p.cell_drain_cap = 0.1e-15;
  p.leak_conductance_per_cell = 1e-9;
  return p;
}

TEST(Matchline, DischargeTimeInverselyProportionalToConductance) {
  WireModel w(node40(), 10.0);
  MatchlineModel ml(ml_params(), w, 64);
  const double t1 = ml.discharge_time(10e-6);
  const double t2 = ml.discharge_time(20e-6);
  EXPECT_NEAR(t1 / t2, 2.0, 1e-9);
}

TEST(Matchline, ZeroConductanceNeverDischarges) {
  WireModel w(node40(), 10.0);
  MatchlineModel ml(ml_params(), w, 64);
  EXPECT_TRUE(std::isinf(ml.discharge_time(0.0)));
}

TEST(Matchline, VoltageDecaysExponentially) {
  WireModel w(node40(), 10.0);
  MatchlineModel ml(ml_params(), w, 64);
  const double g = 10e-6;
  const double tau = ml.capacitance() / g;
  EXPECT_NEAR(ml.voltage_at(tau, g), 1.0 / std::numbers::e, 1e-9);
  EXPECT_DOUBLE_EQ(ml.voltage_at(0.0, g), 1.0);
}

TEST(Matchline, DischargeTimeConsistentWithVoltage) {
  WireModel w(node40(), 10.0);
  MatchlineModel ml(ml_params(), w, 64);
  const double g = 5e-6;
  EXPECT_NEAR(ml.voltage_at(ml.discharge_time(g), g), 0.5, 1e-9);
}

TEST(Matchline, CapacitanceGrowsWithColumns) {
  WireModel w(node40(), 10.0);
  MatchlineModel small(ml_params(), w, 32);
  MatchlineModel large(ml_params(), w, 256);
  EXPECT_GT(large.capacitance(), small.capacitance());
  EXPECT_GT(large.search_energy(), small.search_energy());
}

TEST(Matchline, SenseMarginPositiveAndPeaks) {
  WireModel w(node40(), 10.0);
  MatchlineModel ml(ml_params(), w, 64);
  const double g = 40e-6;
  const double t = ml.discharge_time(ml.total_conductance(2.0 * g));
  EXPECT_GT(ml.sense_margin(1, 2, g, t), 0.0);
}

TEST(Matchline, MismatchLimitShrinksWithRequiredMargin) {
  WireModel w(node40(), 10.0);
  MatchlineModel ml(ml_params(), w, 64);
  const double g = 40e-6;
  const std::size_t loose = ml.mismatch_limit(g, 0.01);
  const std::size_t tight = ml.mismatch_limit(g, 0.15);
  EXPECT_GE(loose, tight);
  EXPECT_GE(loose, 1u);
}

TEST(Matchline, MismatchLimitShrinksWithLeakage) {
  WireModel w(node40(), 10.0);
  MatchlineParams leaky = ml_params();
  leaky.leak_conductance_per_cell = 5e-6;  // MRAM-like tiny on/off ratio
  MatchlineModel clean(ml_params(), w, 64);
  MatchlineModel dirty(leaky, w, 64);
  const double g = 40e-6;
  EXPECT_LT(dirty.mismatch_limit(g, 0.05), clean.mismatch_limit(g, 0.05));
}

// Property sweep: the discharge time is strictly decreasing in the number of
// mismatching cells, the physical basis of distance sensing (Fig. 2A).
class MatchlineMonotonicity : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MatchlineMonotonicity, DischargeFasterWithMoreMismatches) {
  WireModel w(node40(), 10.0);
  MatchlineModel ml(ml_params(), w, GetParam());
  const double g = 40e-6;
  double prev = ml.discharge_time(ml.total_conductance(0.0));
  for (std::size_t k = 1; k <= GetParam(); ++k) {
    const double t = ml.discharge_time(ml.total_conductance(static_cast<double>(k) * g));
    EXPECT_LT(t, prev) << "k=" << k;
    prev = t;
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, MatchlineMonotonicity, ::testing::Values(8, 32, 64, 128));

// ---- SenseAmp -----------------------------------------------------------

TEST(SenseAmp, ResolvesAboveMargin) {
  SenseAmp sa(SenseAmpParams{});
  EXPECT_TRUE(sa.resolves_voltage(0.10));
  EXPECT_FALSE(sa.resolves_voltage(0.01));
  EXPECT_TRUE(sa.resolves_time(1e-9));
  EXPECT_FALSE(sa.resolves_time(1e-12));
}

TEST(SenseAmp, CompareWithOffset) {
  SenseAmp sa(SenseAmpParams{});
  EXPECT_TRUE(sa.compare(0.6, 0.5));
  EXPECT_FALSE(sa.compare(0.4, 0.5));
  EXPECT_TRUE(sa.compare(0.45, 0.5, 0.1));  // offset flips the decision
}

TEST(WinnerTakeAll, LogarithmicLatencyLinearEnergy) {
  WinnerTakeAll wta;
  EXPECT_NEAR(wta.latency(1024) / wta.latency(32), 2.0, 1e-9);
  EXPECT_NEAR(wta.energy(1025) / wta.energy(129), 8.0, 1e-9);
  EXPECT_GT(wta.latency(1), 0.0);
}

// ---- ADC / DAC ----------------------------------------------------------

TEST(Adc, CodeCoversRangeAndClamps) {
  AdcModel adc(AdcParams{.bits = 4});
  EXPECT_EQ(adc.code(-10.0, 0.0, 1.0), 0u);
  EXPECT_EQ(adc.code(10.0, 0.0, 1.0), 15u);
  EXPECT_EQ(adc.code(0.5, 0.0, 1.0), 8u);
}

TEST(Adc, QuantisationErrorBounded) {
  AdcModel adc(AdcParams{.bits = 6});
  const double step = 1.0 / 64.0;
  for (double x = 0.0; x < 1.0; x += 0.013) {
    EXPECT_LE(std::abs(adc.quantise(x, 0.0, 1.0) - x), step / 2.0 + 1e-12) << x;
  }
}

TEST(Adc, EnergyDoublesPerBit) {
  AdcModel a4(AdcParams{.bits = 4});
  AdcModel a5(AdcParams{.bits = 5});
  EXPECT_NEAR(a5.energy_per_conversion() / a4.energy_per_conversion(), 2.0, 1e-9);
  EXPECT_GT(a5.latency_per_conversion(), a4.latency_per_conversion());
}

TEST(Dac, LevelsSpanRangeInclusive) {
  DacModel dac(DacParams{.bits = 3});
  EXPECT_DOUBLE_EQ(dac.level(0, 0.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(dac.level(7, 0.0, 1.0), 1.0);
  EXPECT_THROW(dac.level(8, 0.0, 1.0), PreconditionError);
}

TEST(Dac, QuantiseSnapsToNearest) {
  DacModel dac(DacParams{.bits = 2});  // levels at 0, 1/3, 2/3, 1
  EXPECT_NEAR(dac.quantise(0.30, 0.0, 1.0), 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(dac.quantise(0.95, 0.0, 1.0), 1.0, 1e-12);
  EXPECT_NEAR(dac.quantise(-0.5, 0.0, 1.0), 0.0, 1e-12);
}

// ---- SPICE-lite transient solver ---------------------------------------------

TEST(Transient, LinearDischargeMatchesAnalyticExponential) {
  // Constant conductance G: V(t) = V0 exp(-tG/C); crossing of V0/2 at
  // t = C/G ln 2 — the analytical matchline formula.
  TransientConfig cfg;
  cfg.capacitance = 10e-15;
  cfg.v_initial = 1.0;
  cfg.v_target = 0.5;
  cfg.t_end = 5e-9;
  cfg.dt = 0.5e-12;
  const double g = 20e-6;
  const double t_cross = transient_crossing_time(cfg, [g](double v) { return g * v; });
  const double analytic = cfg.capacitance / g * std::log(2.0);
  EXPECT_NEAR(t_cross, analytic, 0.01 * analytic);
}

TEST(Transient, WaveformMonotoneAndBounded) {
  TransientConfig cfg;
  cfg.t_end = 2e-9;
  const TransientResult res =
      simulate_discharge(cfg, [](double v) { return 50e-6 * v * v; });  // nonlinear
  ASSERT_GT(res.voltage.size(), 10u);
  for (std::size_t i = 1; i < res.voltage.size(); ++i) {
    EXPECT_LE(res.voltage[i], res.voltage[i - 1] + 1e-12);
    EXPECT_GE(res.voltage[i], -1e-9);
  }
  EXPECT_GT(res.steps, 100u);
}

TEST(Transient, ConstantCurrentDischargeIsLinear) {
  TransientConfig cfg;
  cfg.capacitance = 10e-15;
  cfg.v_initial = 1.0;
  cfg.v_target = 0.5;
  cfg.t_end = 10e-9;
  // Constant 2 uA: dV/dt = -I/C, crossing at C*dV/I = 2.5 ns.
  const double t_cross = transient_crossing_time(cfg, [](double) { return 2e-6; });
  EXPECT_NEAR(t_cross, 2.5e-9, 0.02e-9);
}

TEST(Transient, NoCrossingReportsInfinity) {
  TransientConfig cfg;
  cfg.t_end = 1e-9;
  cfg.v_target = 0.0;  // leakless floor never reached
  const double t = transient_crossing_time(cfg, [](double v) { return 1e-9 * v; });
  EXPECT_TRUE(std::isinf(t));
}

TEST(Transient, MatchlineAnalyticWithinBandOfTransient) {
  // The validation the analytical lane rests on: the matchline model's
  // discharge time vs the 'SPICE' integration of the same RC.
  WireModel w(node40(), 10.0);
  MatchlineModel ml(ml_params(), w, 64);
  const double g = ml.total_conductance(40e-6);
  TransientConfig cfg;
  cfg.capacitance = ml.capacitance();
  cfg.v_initial = ml.params().v_precharge;
  cfg.v_target = ml.params().v_sense;
  cfg.t_end = 50e-9;
  cfg.dt = 1e-12;
  const double spice = transient_crossing_time(cfg, [g](double v) { return g * v; });
  EXPECT_NEAR(ml.discharge_time(g), spice, 0.02 * spice);
}

TEST(Driver, EnergyAndLatencyScaleWithLoad) {
  DriverModel d1{.load_capacitance = 1e-15, .drive_resistance = 1e3, .swing = 1.0};
  DriverModel d2{.load_capacitance = 2e-15, .drive_resistance = 1e3, .swing = 1.0};
  EXPECT_NEAR(d2.energy() / d1.energy(), 2.0, 1e-9);
  EXPECT_NEAR(d2.latency() / d1.latency(), 2.0, 1e-9);
}

}  // namespace
}  // namespace xlds::circuit
