// Unit tests for the NVSim-lane RAM array model.
#include <gtest/gtest.h>

#include "nvsim/explorer.hpp"
#include "nvsim/nvram.hpp"
#include "util/error.hpp"
#include "util/units.hpp"

namespace xlds::nvsim {
namespace {

NvRamConfig base_config() {
  NvRamConfig cfg;
  cfg.device = device::DeviceKind::kRram;
  cfg.tech = "40nm";
  cfg.capacity_bits = 8ull * 1024 * 1024;
  return cfg;
}

TEST(NvRam, SubarrayCountCeils) {
  NvRamConfig cfg = base_config();
  cfg.subarray_rows = 256;
  cfg.subarray_cols = 256;
  NvRamModel m(cfg);
  EXPECT_EQ(m.subarray_count(), 128u);  // 8 Mb / 64 Kb
  cfg.capacity_bits += 1;
  EXPECT_EQ(NvRamModel(cfg).subarray_count(), 129u);
}

TEST(NvRam, AllFomsPositive) {
  NvRamModel m(base_config());
  const ArrayFom f = m.evaluate();
  EXPECT_GT(f.area_m2, 0.0);
  EXPECT_GT(f.read_latency, 0.0);
  EXPECT_GT(f.write_latency, 0.0);
  EXPECT_GT(f.read_energy, 0.0);
  EXPECT_GT(f.write_energy, 0.0);
  EXPECT_GT(f.leakage_power, 0.0);
}

TEST(NvRam, AreaScalesWithCapacity) {
  NvRamConfig small = base_config();
  NvRamConfig big = base_config();
  big.capacity_bits *= 4;
  const double ratio = NvRamModel(big).evaluate().area_m2 / NvRamModel(small).evaluate().area_m2;
  EXPECT_NEAR(ratio, 4.0, 0.2);
}

TEST(NvRam, MultiLevelCellsShrinkArray) {
  NvRamConfig slc = base_config();
  NvRamConfig mlc = base_config();
  mlc.bits_per_cell = 2;
  EXPECT_LT(NvRamModel(mlc).evaluate().area_m2, NvRamModel(slc).evaluate().area_m2);
  EXPECT_LT(NvRamModel(mlc).subarray_count(), NvRamModel(slc).subarray_count());
}

TEST(NvRam, UnsupportedMlcThrows) {
  NvRamConfig cfg = base_config();
  cfg.device = device::DeviceKind::kMram;  // 1 bit/cell max
  cfg.bits_per_cell = 2;
  EXPECT_THROW(NvRamModel{cfg}, PreconditionError);
}

TEST(NvRam, TechnologyOrderings) {
  // The paper's lane-1 question: how does a new cell compare in a
  // conventional organisation?  SRAM reads fastest; flash writes slowest and
  // biggest write energy; RRAM denser than SRAM.
  NvRamConfig cfg = base_config();
  cfg.device = device::DeviceKind::kSram;
  const ArrayFom sram = NvRamModel(cfg).evaluate();
  cfg.device = device::DeviceKind::kRram;
  const ArrayFom rram = NvRamModel(cfg).evaluate();
  cfg.device = device::DeviceKind::kFlash;
  const ArrayFom flash = NvRamModel(cfg).evaluate();

  EXPECT_LT(sram.read_latency, flash.read_latency);
  EXPECT_LT(rram.area_m2, sram.area_m2);
  EXPECT_GT(flash.write_latency, rram.write_latency);
  EXPECT_GT(flash.write_latency, 1e-6);  // the "ill-suited as main memory" cull
  EXPECT_GT(flash.write_energy, rram.write_energy);
}

TEST(NvRam, BiggerSubarraysSlowTheArray) {
  NvRamConfig small = base_config();
  small.subarray_rows = 128;
  small.subarray_cols = 128;
  NvRamConfig big = base_config();
  big.subarray_rows = 1024;
  big.subarray_cols = 1024;
  EXPECT_LT(NvRamModel(small).subarray_fom().read_latency,
            NvRamModel(big).subarray_fom().read_latency);
}

TEST(NvRam, FinerNodeShrinksArea) {
  NvRamConfig n40 = base_config();
  NvRamConfig n16 = base_config();
  n16.tech = "16nm";
  EXPECT_LT(NvRamModel(n16).evaluate().area_m2, NvRamModel(n40).evaluate().area_m2);
}

TEST(NvRam3d, StackingShrinksAreaMonotonically) {
  NvRamConfig cfg = base_config();
  double prev_area = 1e9;
  for (std::size_t layers : {1u, 2u, 4u, 8u}) {
    cfg.layers_3d = layers;
    const ArrayFom f = NvRamModel(cfg).evaluate();
    EXPECT_LT(f.area_m2, prev_area) << layers << " layers";
    prev_area = f.area_m2;
  }
}

TEST(NvRam3d, ViaPenaltySlowsAccess) {
  NvRamConfig planar = base_config();
  NvRamConfig stacked = base_config();
  stacked.layers_3d = 8;
  EXPECT_GT(NvRamModel(stacked).evaluate().read_latency,
            NvRamModel(planar).evaluate().read_latency);
  EXPECT_GT(NvRamModel(stacked).evaluate().write_energy,
            NvRamModel(planar).evaluate().write_energy);
}

TEST(NvRam3d, OnlyBeolDevicesStack) {
  NvRamConfig cfg = base_config();
  cfg.layers_3d = 4;
  cfg.device = device::DeviceKind::kSram;
  EXPECT_THROW(NvRamModel{cfg}, PreconditionError);
  cfg.device = device::DeviceKind::kFeFet;
  EXPECT_THROW(NvRamModel{cfg}, PreconditionError);
  cfg.device = device::DeviceKind::kPcm;
  EXPECT_NO_THROW(NvRamModel{cfg});
}

TEST(NvRam3d, AreaFloorIsPeripheryBound) {
  // Stacking only the cells: the area saving saturates toward the periphery
  // footprint.
  NvRamConfig cfg = base_config();
  cfg.layers_3d = 2;
  const double a2 = NvRamModel(cfg).evaluate().area_m2;
  cfg.layers_3d = 16;
  const double a16 = NvRamModel(cfg).evaluate().area_m2;
  EXPECT_GT(a16, 0.1 * a2);  // far from 8x shrink: periphery does not stack
}

// ---- NVMExplorer lane ---------------------------------------------------------

TEST(NvmExplorer, BerGrowsWithAgeAndWrites) {
  const nvsim::FaultModel fm;
  const auto& rram = device::traits(device::DeviceKind::kRram);
  const double fresh = fm.bit_error_rate(rram, 0.0, 0.0);
  const double old_age = fm.bit_error_rate(rram, rram.retention_s, 0.0);
  const double worn = fm.bit_error_rate(rram, 0.0, rram.endurance_cycles);
  EXPECT_NEAR(fresh, fm.base_ber, 1e-12);
  EXPECT_GT(old_age, 100.0 * fresh);
  EXPECT_GT(worn, 100.0 * fresh);
  // Saturates at 0.5 (a fully random bit).
  EXPECT_LE(fm.bit_error_rate(rram, 100.0 * rram.retention_s, 0.0), 0.5);
}

TEST(NvmExplorer, LifetimeScalesInverselyWithTraffic) {
  NvRamConfig mem = base_config();
  nvsim::TrafficProfile light{.write_bytes_per_s = 1e3, .read_bytes_per_s = 1e6};
  nvsim::TrafficProfile heavy{.write_bytes_per_s = 1e6, .read_bytes_per_s = 1e6};
  const double t_light = nvsim::NvmExplorer(mem, {}, light).report().lifetime_s;
  const double t_heavy = nvsim::NvmExplorer(mem, {}, heavy).report().lifetime_s;
  EXPECT_NEAR(t_light / t_heavy, 1000.0, 1.0);
}

TEST(NvmExplorer, FlashWearsOutFirst) {
  NvRamConfig mem = base_config();
  nvsim::TrafficProfile traffic{.write_bytes_per_s = 50e3, .read_bytes_per_s = 1e6};
  mem.device = device::DeviceKind::kFlash;
  const double t_flash = nvsim::NvmExplorer(mem, {}, traffic).report().lifetime_s;
  mem.device = device::DeviceKind::kMram;
  const double t_mram = nvsim::NvmExplorer(mem, {}, traffic).report().lifetime_s;
  EXPECT_LT(t_flash * 1e6, t_mram);
}

TEST(NvmExplorer, WeightFaultInjectionFlipsAndDegrades) {
  Rng rng(40);
  nn::Network net = nn::make_mlp(8, {16}, 3, rng);
  // Zero BER: no flips, identical behaviour.
  EXPECT_EQ(nvsim::inject_weight_faults(net, 0.0, rng), 0u);
  // Heavy BER: many flips.
  std::vector<double> before;
  net.visit_weights([&](double& w) { before.push_back(w); });
  const std::size_t flips = nvsim::inject_weight_faults(net, 0.1, rng);
  EXPECT_GT(flips, 50u);
  std::size_t changed = 0, i = 0;
  net.visit_weights([&](double& w) {
    if (w != before[i++]) ++changed;
  });
  EXPECT_GT(changed, 20u);
}

TEST(NvmExplorer, DnnAccuracyRestoresWeights) {
  Rng rng(41);
  nn::Network net = nn::make_mlp(6, {12}, 2, rng);
  std::vector<std::vector<double>> xs = {{0.1, 0.2, 0.3, 0.4, 0.5, 0.6},
                                         {0.6, 0.5, 0.4, 0.3, 0.2, 0.1}};
  std::vector<std::size_t> ys = {0, 1};
  std::vector<double> before;
  net.visit_weights([&](double& w) { before.push_back(w); });

  NvRamConfig mem = base_config();
  nvsim::TrafficProfile traffic{.write_bytes_per_s = 1e3, .read_bytes_per_s = 1e6};
  nvsim::NvmExplorer explorer(mem, {}, traffic);
  (void)explorer.dnn_accuracy_at(net, xs, ys, 20.0 * 365 * 24 * 3600, rng);

  std::size_t i = 0;
  bool identical = true;
  net.visit_weights([&](double& w) { identical = identical && w == before[i++]; });
  EXPECT_TRUE(identical);  // evaluation must not leave corruption behind
}

TEST(NvRam, ReadBandwidthSane) {
  const ArrayFom f = NvRamModel(base_config()).evaluate();
  const double bw = f.read_bandwidth(64);
  EXPECT_GT(bw, 1e9);   // > ~1 Gb/s
  EXPECT_LT(bw, 1e13);  // < 10 Tb/s
}

}  // namespace
}  // namespace xlds::nvsim
