// Cross-cutting property tests: randomized invariants checked against
// reference implementations, and parameterised sweeps over the design knobs
// the benches exercise.  These guard the *model properties* the paper's
// conclusions rest on, independent of any particular calibration.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <list>
#include <map>

#include "cam/fefet_cam.hpp"
#include "cam/processor.hpp"
#include "core/pareto.hpp"
#include "device/fefet.hpp"
#include "device/rram.hpp"
#include "evacam/evacam.hpp"
#include "hdc/model.hpp"
#include "sim/cache.hpp"
#include "sim/event.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "workload/dataset.hpp"
#include "xbar/crossbar.hpp"

namespace xlds {
namespace {

// ---- cache vs reference LRU model -------------------------------------------

/// Naive reference: a set-associative LRU cache as an std::map of lists.
class ReferenceLru {
 public:
  ReferenceLru(std::size_t sets, std::size_t ways, std::size_t line)
      : sets_(sets), ways_(ways), line_(line) {}

  bool access(sim::Addr addr) {
    const sim::Addr lineaddr = addr / line_;
    const std::size_t set = static_cast<std::size_t>(lineaddr) % sets_;
    auto& entries = sets_map_[set];
    const auto it = std::find(entries.begin(), entries.end(), lineaddr);
    if (it != entries.end()) {
      entries.erase(it);
      entries.push_front(lineaddr);  // most-recently used at the front
      return true;
    }
    entries.push_front(lineaddr);
    if (entries.size() > ways_) entries.pop_back();
    return false;
  }

 private:
  std::size_t sets_, ways_, line_;
  std::map<std::size_t, std::list<sim::Addr>> sets_map_;
};

TEST(Property, CacheMatchesReferenceLru) {
  sim::CacheConfig cfg;
  cfg.size_bytes = 4096;
  cfg.line_bytes = 64;
  cfg.ways = 4;
  sim::Cache cache(cfg);
  ReferenceLru ref(4096 / (64 * 4), 4, 64);

  Rng rng(99);
  for (int i = 0; i < 20000; ++i) {
    // Mixed pattern: mostly a hot working set, occasionally a cold address.
    const sim::Addr addr = rng.bernoulli(0.8)
                               ? static_cast<sim::Addr>(rng.uniform_u32(8192))
                               : static_cast<sim::Addr>(rng.next_u32());
    ASSERT_EQ(cache.access(addr), ref.access(addr)) << "access " << i << " addr " << addr;
  }
  EXPECT_GT(cache.stats().hits, 0u);
  EXPECT_GT(cache.stats().misses, 0u);
}

// ---- event queue ordering property -----------------------------------------

TEST(Property, EventQueueIsStableAndOrdered) {
  sim::EventQueue q;
  Rng rng(100);
  std::vector<std::pair<sim::Tick, int>> fired;
  int seq = 0;
  for (int i = 0; i < 500; ++i) {
    const sim::Tick when = rng.uniform_u32(1000);
    const int id = seq++;
    q.schedule(when, [&fired, when, id] { fired.push_back({when, id}); });
  }
  q.run();
  ASSERT_EQ(fired.size(), 500u);
  for (std::size_t i = 1; i < fired.size(); ++i) {
    EXPECT_LE(fired[i - 1].first, fired[i].first);
    if (fired[i - 1].first == fired[i].first) {
      EXPECT_LT(fired[i - 1].second, fired[i].second);  // stable ties
    }
  }
}

// ---- Pareto front vs brute force --------------------------------------------

bool ref_dominates(const core::Fom& a, const core::Fom& b) {
  const bool no_worse = a.latency <= b.latency && a.energy <= b.energy &&
                        a.area_mm2 <= b.area_mm2 && a.accuracy >= b.accuracy;
  const bool better = a.latency < b.latency || a.energy < b.energy ||
                      a.area_mm2 < b.area_mm2 || a.accuracy > b.accuracy;
  return no_worse && better;
}

TEST(Property, ParetoFrontMatchesBruteForceOnRandomClouds) {
  Rng rng(101);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<core::ScoredPoint> points(40);
    for (auto& sp : points) {
      sp.fom.latency = rng.uniform(0.1, 10.0);
      sp.fom.energy = rng.uniform(0.1, 10.0);
      sp.fom.area_mm2 = rng.uniform(0.0, 5.0);
      sp.fom.accuracy = rng.uniform(0.5, 1.0);
      sp.fom.feasible = rng.bernoulli(0.9);
    }
    const auto front = core::pareto_front(points);
    for (std::size_t i = 0; i < points.size(); ++i) {
      if (!points[i].fom.feasible) {
        EXPECT_EQ(std::count(front.begin(), front.end(), i), 0);
        continue;
      }
      bool dominated = false;
      for (std::size_t j = 0; j < points.size(); ++j)
        if (j != i && points[j].fom.feasible && ref_dominates(points[j].fom, points[i].fom))
          dominated = true;
      const bool on_front = std::count(front.begin(), front.end(), i) > 0;
      EXPECT_EQ(on_front, !dominated) << "trial " << trial << " point " << i;
    }
  }
}

// ---- FeFET model properties across precisions ------------------------------

class FeFetBitsSweep : public ::testing::TestWithParam<int> {};

TEST_P(FeFetBitsSweep, ErrorProbabilityMonotoneInSigma) {
  device::FeFetParams p;
  p.bits = GetParam();
  double prev = -1.0;
  for (double sigma : {0.02, 0.05, 0.094, 0.15, 0.25}) {
    p.sigma_program = sigma;
    const device::FeFetModel m(p);
    const double err = m.level_error_probability(p.levels() / 2);
    EXPECT_GE(err, prev);
    prev = err;
  }
}

TEST_P(FeFetBitsSweep, SearchVoltagesAreMonotoneAndSubthreshold) {
  device::FeFetParams p;
  p.bits = GetParam();
  const device::FeFetModel m(p);
  double prev = -1e9;
  for (int l = 0; l < p.levels(); ++l) {
    const double v = m.search_voltage(l);
    EXPECT_GT(v, prev);
    EXPECT_LT(v, m.level_vth(l));  // matching device stays off
    prev = v;
  }
}

TEST_P(FeFetBitsSweep, MismatchConductanceGrowsWithDistance) {
  device::FeFetParams p;
  p.bits = GetParam();
  const device::FeFetModel m(p);
  const int L = p.levels();
  // Stored mid-level; conductance of the 'A' device grows with query level
  // beyond the stored one.
  const int stored = L / 2;
  double prev = 0.0;
  for (int q = stored + 1; q < L; ++q) {
    const double g = m.conductance(m.search_voltage(q), m.level_vth(stored));
    EXPECT_GT(g, prev) << "q=" << q;
    prev = g;
  }
}

INSTANTIATE_TEST_SUITE_P(Bits, FeFetBitsSweep, ::testing::Values(1, 2, 3, 4));

// ---- RRAM program-verify across the conductance range ----------------------

class RramTargetSweep : public ::testing::TestWithParam<double> {};

TEST_P(RramTargetSweep, VerifyNeverWorseThanOpenLoop) {
  device::RramParams params;
  const device::RramModel m(params);
  const double target =
      params.g_min + GetParam() * (params.g_max - params.g_min);
  Rng rng(200);
  RunningStats open_loop, closed_loop;
  for (int i = 0; i < 2000; ++i) {
    open_loop.add(std::abs(m.program_once(target, rng) - target));
    closed_loop.add(std::abs(m.program_verify(target, rng) - target));
  }
  EXPECT_LE(closed_loop.mean(), open_loop.mean() + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Targets, RramTargetSweep, ::testing::Values(0.0, 0.25, 0.5, 0.75, 1.0));

// ---- crossbar MVM fidelity across sizes -------------------------------------

class XbarSizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(XbarSizeSweep, IdealAnalogErrorScalesWithQuantisation) {
  const std::size_t n = GetParam();
  xbar::CrossbarConfig cfg;
  cfg.rows = n;
  cfg.cols = n;
  cfg.apply_variation = false;
  cfg.read_noise_rel = 0.0;
  cfg.ir_drop = xbar::IrDropMode::kNone;
  cfg.adc.bits = 12;
  cfg.dac.bits = 8;
  Rng rng(300);
  xbar::Crossbar xb(cfg, rng);
  MatrixD w(n, n / 2);
  Rng data(301);
  for (double& v : w.data()) v = data.uniform(-1.0, 1.0);
  xb.program_weights(w);
  std::vector<double> x(n);
  for (double& v : x) v = data.uniform();
  const auto analog = xb.mvm(x);
  const auto ideal = xb.ideal_mvm(x);
  // Error scales with accumulation depth through the ADC full scale.
  const double bound = static_cast<double>(n) * 0.02;
  for (std::size_t j = 0; j < analog.size(); ++j)
    EXPECT_NEAR(analog[j], ideal[j], bound) << "col " << j;
}

TEST_P(XbarSizeSweep, NodalSolveConservesCurrent) {
  // Kirchhoff sanity: with ideal wires the nodal solver must reproduce the
  // ideal column currents almost exactly (tiny wire resistance).
  const std::size_t n = GetParam();
  xbar::CrossbarConfig cfg;
  cfg.rows = n;
  cfg.cols = n;
  cfg.apply_variation = false;
  cfg.read_noise_rel = 0.0;
  cfg.tech = "90nm";  // low wire resistance per cell
  cfg.ir_drop = xbar::IrDropMode::kNodal;
  Rng rng(302);
  xbar::Crossbar nodal(cfg, rng);
  cfg.ir_drop = xbar::IrDropMode::kNone;
  Rng rng2(302);
  xbar::Crossbar ideal(cfg, rng2);
  MatrixD g(n, n, 10e-6);
  nodal.program_conductances(g);
  ideal.program_conductances(g);
  const std::vector<double> x(n, 1.0);
  const auto in = nodal.column_currents(x);
  const auto ii = ideal.column_currents(x);
  for (std::size_t c = 0; c < n; ++c) EXPECT_NEAR(in[c], ii[c], 0.03 * ii[c]);
}

INSTANTIATE_TEST_SUITE_P(Sizes, XbarSizeSweep, ::testing::Values(8, 16, 32, 64));

// ---- Eva-CAM monotonicities across nodes ------------------------------------

class EvaCamNodeSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(EvaCamNodeSweep, AreaShrinksWithFeatureSize) {
  evacam::CamDesignSpec spec;
  spec.device = device::DeviceKind::kRram;
  spec.cell = evacam::CellType::k2T2R;
  spec.tech = GetParam();
  spec.words = 1024;
  spec.bits = 64;
  spec.subarray_rows = 256;
  spec.subarray_cols = 64;
  const evacam::CamFom fom = evacam::EvaCam(spec).evaluate();
  EXPECT_GT(fom.area_m2, 0.0);

  // Compare against the coarsest node as the anchor.
  evacam::CamDesignSpec anchor = spec;
  anchor.tech = "130nm";
  if (spec.tech != "130nm") {
    EXPECT_LT(fom.area_m2, evacam::EvaCam(anchor).evaluate().area_m2);
  }
}

INSTANTIATE_TEST_SUITE_P(Nodes, EvaCamNodeSweep,
                         ::testing::Values("130nm", "90nm", "65nm", "40nm", "22nm"));

// ---- HDC accuracy monotone in hypervector dimensionality --------------------

TEST(Property, HdcAccuracyImprovesWithDimensionality) {
  workload::GaussianClustersSpec spec;
  spec.n_classes = 10;
  spec.dim = 64;
  spec.train_per_class = 15;
  spec.test_per_class = 10;
  spec.separation = 4.0;
  const auto ds = workload::make_gaussian_clusters(spec, 400);

  double sum_small = 0.0, sum_large = 0.0;
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    Rng rng_a(500 + seed), rng_b(500 + seed);
    hdc::HdcConfig small;
    small.hv_dim = 64;
    small.element_bits = 2;
    hdc::HdcConfig large = small;
    large.hv_dim = 2048;
    hdc::HdcModel ms(small, ds.dim, ds.n_classes, rng_a);
    hdc::HdcModel ml(large, ds.dim, ds.n_classes, rng_b);
    ms.train(ds.train_x, ds.train_y);
    ml.train(ds.train_x, ds.train_y);
    sum_small += ms.accuracy(ds.test_x, ds.test_y);
    sum_large += ml.accuracy(ds.test_x, ds.test_y);
  }
  EXPECT_GT(sum_large, sum_small);
}

// ---- CAM sensing: sensed distance is a monotone function of ideal ----------

TEST(Property, CamSensedDistanceMonotoneUnderIdealConditions) {
  cam::FeFetCamConfig cfg;
  cfg.fefet.bits = 2;
  cfg.rows = 16;
  cfg.cols = 16;
  cfg.apply_variation = false;
  cfg.sense_noise_rel = 0.0;
  cfg.sense_levels = 512;
  Rng rng(600);
  cam::FeFetCamArray cam(cfg, rng);
  Rng data(601);
  std::vector<int> base(16);
  for (int& d : base) d = static_cast<int>(data.uniform_u32(4));
  // Rows at increasing ideal distance from the query.
  std::vector<int> word = base;
  for (std::size_t r = 0; r < 16; ++r) {
    cam.write_word(r, word);
    // Perturb one more cell for the next row.
    if (r < 15) word[r] = (word[r] + 1) % 4;
  }
  const cam::SearchResult res = cam.search(base);
  for (std::size_t r = 1; r < 16; ++r)
    EXPECT_GE(res.sensed_distance[r], res.sensed_distance[r - 1]) << "row " << r;
  EXPECT_EQ(res.best_row, 0u);
}

// ---- CAM processor vs reference boolean evaluation ---------------------------

TEST(Property, CamProcessorMatchesReferenceOnRandomTruthTables) {
  cam::RramTcamConfig cfg;
  cfg.rows = 24;
  cfg.cols = 8;
  cfg.apply_variation = false;
  cfg.sense_noise_rel = 0.0;
  cfg.sense_levels = 256;
  Rng rng(800);
  cam::CamProcessor proc(cfg, rng);

  Rng data(801);
  std::vector<std::vector<int>> rows(24, std::vector<int>(8, 0));
  for (auto& row : rows) {
    for (std::size_t c = 0; c < 3; ++c) row[c] = data.bernoulli(0.5) ? 1 : 0;
    // columns 3..7 start at 0 (destinations)
  }
  for (std::size_t r = 0; r < rows.size(); ++r) proc.load_row(r, rows[r]);

  for (int trial = 0; trial < 12; ++trial) {
    // Random 3-input truth table into a random destination column (3..7).
    std::vector<int> tt(8);
    for (int& v : tt) v = data.bernoulli(0.5) ? 1 : 0;
    const std::size_t dst = 3 + data.uniform_u32(5);
    proc.apply(dst, {0, 1, 2}, tt);
    for (std::size_t r = 0; r < rows.size(); ++r) {
      const std::size_t idx = static_cast<std::size_t>(proc.bit(r, 0)) |
                              (static_cast<std::size_t>(proc.bit(r, 1)) << 1) |
                              (static_cast<std::size_t>(proc.bit(r, 2)) << 2);
      EXPECT_EQ(proc.bit(r, dst), tt[idx]) << "trial " << trial << " row " << r;
    }
  }
}

// ---- dataset generator statistics ------------------------------------------

TEST(Property, DatasetSeparationControlsCentroidDistance) {
  // The advertised semantics: expected distance between class means is
  // separation * within_sigma.
  workload::GaussianClustersSpec spec;
  spec.n_classes = 12;
  spec.dim = 64;
  spec.train_per_class = 40;
  spec.test_per_class = 1;
  spec.separation = 6.0;
  spec.within_sigma = 0.05;
  const auto ds = workload::make_gaussian_clusters(spec, 700);

  // Estimate class means from the training split.
  std::vector<std::vector<double>> means(spec.n_classes, std::vector<double>(spec.dim, 0.0));
  std::vector<double> counts(spec.n_classes, 0.0);
  for (std::size_t i = 0; i < ds.train_x.size(); ++i) {
    for (std::size_t d = 0; d < spec.dim; ++d) means[ds.train_y[i]][d] += ds.train_x[i][d];
    counts[ds.train_y[i]] += 1.0;
  }
  for (std::size_t c = 0; c < spec.n_classes; ++c)
    for (std::size_t d = 0; d < spec.dim; ++d) means[c][d] /= counts[c];

  RunningStats pairwise;
  for (std::size_t a = 0; a < spec.n_classes; ++a) {
    for (std::size_t b = a + 1; b < spec.n_classes; ++b) {
      double d2 = 0.0;
      for (std::size_t d = 0; d < spec.dim; ++d) {
        const double delta = means[a][d] - means[b][d];
        d2 += delta * delta;
      }
      pairwise.add(std::sqrt(d2));
    }
  }
  const double expected = spec.separation * spec.within_sigma;
  EXPECT_NEAR(pairwise.mean(), expected, 0.35 * expected);
}

}  // namespace
}  // namespace xlds
