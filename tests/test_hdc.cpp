// Unit tests for the HDC module: encoder, quantiser, model training and
// CAM-mapped inference.  Dimensions are kept small so the suite stays fast;
// the benches sweep the paper-scale configurations.
#include <gtest/gtest.h>

#include <cmath>

#include "hdc/cam_inference.hpp"
#include "hdc/encoder.hpp"
#include "hdc/model.hpp"
#include "util/error.hpp"
#include "workload/dataset.hpp"

namespace xlds::hdc {
namespace {

workload::Dataset small_dataset(std::uint64_t seed = 1) {
  workload::GaussianClustersSpec spec;
  spec.n_classes = 6;
  spec.dim = 48;
  spec.train_per_class = 20;
  spec.test_per_class = 15;
  spec.separation = 5.5;
  return workload::make_gaussian_clusters(spec, seed);
}

HdcConfig small_config(int bits = 3) {
  HdcConfig cfg;
  cfg.hv_dim = 512;
  cfg.element_bits = bits;
  cfg.retrain_epochs = 3;
  return cfg;
}

// ---- encoder ----------------------------------------------------------------

TEST(Encoder, ProjectionIsBipolar) {
  Rng rng(1);
  HdcEncoder enc(16, 64, rng);
  for (double v : enc.projection().data()) EXPECT_TRUE(v == 1.0 || v == -1.0);
  EXPECT_EQ(enc.macs(), 16u * 64u);
}

TEST(Encoder, EncodeIsLinear) {
  Rng rng(2);
  HdcEncoder enc(8, 32, rng);
  std::vector<double> x(8, 0.5);
  const auto y1 = enc.encode(x);
  for (double& v : x) v = 1.0;
  const auto y2 = enc.encode(x);
  for (std::size_t d = 0; d < 32; ++d) EXPECT_NEAR(y2[d], 2.0 * y1[d], 1e-12);
}

TEST(Encoder, SimilarInputsSimilarHypervectors) {
  Rng rng(3);
  HdcEncoder enc(32, 256, rng);
  Rng data(4);
  std::vector<double> a(32), far(32);
  for (std::size_t i = 0; i < 32; ++i) {
    a[i] = data.uniform();
    far[i] = data.uniform();
  }
  std::vector<double> near = a;
  near[0] += 0.01;
  auto dist = [&](const std::vector<double>& u, const std::vector<double>& v) {
    double d = 0.0;
    const auto eu = enc.encode(u), ev = enc.encode(v);
    for (std::size_t i = 0; i < eu.size(); ++i) d += (eu[i] - ev[i]) * (eu[i] - ev[i]);
    return d;
  };
  EXPECT_LT(dist(a, near), dist(a, far));
}

// ---- IdLevelEncoder (record-based scheme) ------------------------------------

TEST(IdLevelEncoder, LevelSimilarityDecaysWithDistance) {
  Rng rng(30);
  IdLevelEncoder enc(8, 1024, 16, rng);
  // Neighbouring levels nearly identical; extremes near-orthogonal (~0.5).
  EXPECT_GT(enc.level_similarity(7, 8), 0.9);
  EXPECT_NEAR(enc.level_similarity(0, 15), 0.5, 0.1);
  double prev = 1.1;
  for (std::size_t l : {0u, 4u, 8u, 12u, 15u}) {
    const double s = enc.level_similarity(0, l);
    EXPECT_LT(s, prev) << "level " << l;
    prev = s;
  }
}

TEST(IdLevelEncoder, LevelOfClampsAndQuantises) {
  Rng rng(31);
  IdLevelEncoder enc(4, 256, 8, rng, 0.0, 1.0);
  EXPECT_EQ(enc.level_of(-1.0), 0u);
  EXPECT_EQ(enc.level_of(0.0), 0u);
  EXPECT_EQ(enc.level_of(0.999), 7u);
  EXPECT_EQ(enc.level_of(2.0), 7u);
  EXPECT_LT(enc.level_of(0.3), enc.level_of(0.9));
}

TEST(IdLevelEncoder, SimilarInputsSimilarHypervectors) {
  Rng rng(32);
  IdLevelEncoder enc(32, 1024, 16, rng);
  Rng data(33);
  std::vector<double> a(32), far(32);
  for (std::size_t i = 0; i < 32; ++i) {
    a[i] = data.uniform();
    far[i] = data.uniform();
  }
  std::vector<double> near = a;
  near[0] = std::min(1.0, near[0] + 0.03);
  auto dist = [&](const std::vector<double>& u, const std::vector<double>& v) {
    const auto eu = enc.encode(u), ev = enc.encode(v);
    double d = 0.0;
    for (std::size_t i = 0; i < eu.size(); ++i) d += (eu[i] - ev[i]) * (eu[i] - ev[i]);
    return d;
  };
  EXPECT_LT(dist(a, near), dist(a, far));
}

TEST(IdLevelEncoder, ModelTrainsAboveChanceWithRecordEncoding) {
  const auto ds = small_dataset(9);
  Rng rng(34);
  HdcConfig cfg = small_config(4);
  cfg.encoder = EncoderKind::kIdLevel;
  cfg.hv_dim = 1024;
  HdcModel model(cfg, ds.dim, ds.n_classes, rng);
  model.train(ds.train_x, ds.train_y);
  EXPECT_GT(model.accuracy(ds.test_x, ds.test_y), 0.6);
}

// ---- quantiser -------------------------------------------------------------

TEST(Quantiser, DigitsCoverRangeAndClamp) {
  ElementQuantiser q(3, 1.0);
  EXPECT_EQ(q.levels(), 8);
  EXPECT_EQ(q.digit(-5.0), 0);
  EXPECT_EQ(q.digit(5.0), 7);
  EXPECT_EQ(q.digit(-0.999), 0);
  EXPECT_EQ(q.digit(0.999), 7);
}

TEST(Quantiser, RoundTripErrorBounded) {
  ElementQuantiser q(4, 2.0);
  const double bucket = 4.0 / 16.0;
  for (double v = -2.0; v <= 2.0; v += 0.037) {
    EXPECT_LE(std::abs(q.value(q.digit(v)) - v), bucket / 2.0 + 1e-12) << v;
  }
}

TEST(Quantiser, MonotoneDigits) {
  ElementQuantiser q(2, 1.0);
  int prev = -1;
  for (double v = -1.0; v <= 1.0; v += 0.01) {
    const int d = q.digit(v);
    EXPECT_GE(d, prev);
    prev = d;
  }
}

// ---- model ------------------------------------------------------------------

TEST(HdcModel, TrainsAboveChance) {
  const auto ds = small_dataset();
  Rng rng(5);
  HdcModel model(small_config(), ds.dim, ds.n_classes, rng);
  model.train(ds.train_x, ds.train_y);
  EXPECT_GT(model.accuracy(ds.test_x, ds.test_y), 0.8);
}

TEST(HdcModel, ClassifyBeforeTrainThrows) {
  Rng rng(6);
  HdcModel model(small_config(), 48, 6, rng);
  EXPECT_THROW(model.classify(std::vector<double>(48, 0.5)), PreconditionError);
  EXPECT_THROW(model.class_digits(0), PreconditionError);
}

TEST(HdcModel, DigitsWithinLevelRange) {
  const auto ds = small_dataset();
  Rng rng(7);
  HdcModel model(small_config(2), ds.dim, ds.n_classes, rng);
  model.train(ds.train_x, ds.train_y);
  for (std::size_t cls = 0; cls < ds.n_classes; ++cls)
    for (int d : model.class_digits(cls)) {
      EXPECT_GE(d, 0);
      EXPECT_LT(d, 4);
    }
  for (int d : model.query_digits(ds.test_x[0])) {
    EXPECT_GE(d, 0);
    EXPECT_LT(d, 4);
  }
}

TEST(HdcModel, CosineRealAtLeastAsGoodAsOneBit) {
  const auto ds = small_dataset(2);
  Rng rng_a(8), rng_b(8);
  HdcConfig real_cfg = small_config(8);
  real_cfg.similarity = Similarity::kCosineReal;
  HdcModel real_model(real_cfg, ds.dim, ds.n_classes, rng_a);
  HdcConfig one_bit = small_config(1);
  HdcModel low_model(one_bit, ds.dim, ds.n_classes, rng_b);
  real_model.train(ds.train_x, ds.train_y);
  low_model.train(ds.train_x, ds.train_y);
  EXPECT_GE(real_model.accuracy(ds.test_x, ds.test_y) + 0.02,
            low_model.accuracy(ds.test_x, ds.test_y));
}

TEST(HdcModel, LongerHypervectorsHelpAtLowPrecision) {
  workload::GaussianClustersSpec spec;
  spec.n_classes = 10;
  spec.dim = 48;
  spec.train_per_class = 15;
  spec.test_per_class = 10;
  spec.separation = 3.0;  // hard enough that dimensionality matters
  const auto ds = workload::make_gaussian_clusters(spec, 3);
  double acc_short_sum = 0.0, acc_long_sum = 0.0;
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    Rng rng_s(9 + seed), rng_l(9 + seed);
    HdcConfig short_cfg = small_config(1);
    short_cfg.hv_dim = 64;
    HdcConfig long_cfg = small_config(1);
    long_cfg.hv_dim = 1024;
    HdcModel short_model(short_cfg, ds.dim, ds.n_classes, rng_s);
    HdcModel long_model(long_cfg, ds.dim, ds.n_classes, rng_l);
    short_model.train(ds.train_x, ds.train_y);
    long_model.train(ds.train_x, ds.train_y);
    acc_short_sum += short_model.accuracy(ds.test_x, ds.test_y);
    acc_long_sum += long_model.accuracy(ds.test_x, ds.test_y);
  }
  EXPECT_GT(acc_long_sum, acc_short_sum);
}

TEST(HdcModel, SimilarityVariantsAllWork) {
  const auto ds = small_dataset(4);
  for (Similarity sim : {Similarity::kCosineReal, Similarity::kCosineQuantised,
                         Similarity::kSquaredEuclideanDigits}) {
    Rng rng(10);
    HdcConfig cfg = small_config(3);
    cfg.similarity = sim;
    HdcModel model(cfg, ds.dim, ds.n_classes, rng);
    model.train(ds.train_x, ds.train_y);
    EXPECT_GT(model.accuracy(ds.test_x, ds.test_y), 0.6)
        << "similarity variant " << static_cast<int>(sim);
  }
}

// ---- CAM-mapped inference --------------------------------------------------

cam::FeFetCamConfig cam_subarray(int bits, std::size_t cols) {
  cam::FeFetCamConfig cfg;
  cfg.fefet.bits = bits;
  cfg.cols = cols;
  cfg.apply_variation = false;
  cfg.sense_noise_rel = 0.0;
  cfg.sense_levels = 128;
  return cfg;
}

TEST(CamInference, MatchesSoftwareAccuracyWithoutNonidealities) {
  const auto ds = small_dataset(5);
  Rng rng(11);
  HdcModel model(small_config(3), ds.dim, ds.n_classes, rng);
  model.train(ds.train_x, ds.train_y);
  CamInferenceConfig cfg;
  cfg.subarray = cam_subarray(3, 128);
  cfg.aggregation = cam::Aggregation::kSumSensed;
  HdcCamInference cam_inf(model, cfg, rng);
  const double sw = model.accuracy(ds.test_x, ds.test_y);
  const double hw = cam_inf.accuracy(ds.test_x, ds.test_y);
  EXPECT_NEAR(hw, sw, 0.08);
}

TEST(CamInference, BitWidthMismatchThrows) {
  const auto ds = small_dataset(6);
  Rng rng(12);
  HdcModel model(small_config(3), ds.dim, ds.n_classes, rng);
  model.train(ds.train_x, ds.train_y);
  CamInferenceConfig cfg;
  cfg.subarray = cam_subarray(2, 64);  // cell bits != model bits
  EXPECT_THROW(HdcCamInference(model, cfg, rng), PreconditionError);
}

TEST(CamInference, SegmentsCoverHvDim) {
  const auto ds = small_dataset(7);
  Rng rng(13);
  HdcModel model(small_config(2), ds.dim, ds.n_classes, rng);
  model.train(ds.train_x, ds.train_y);
  CamInferenceConfig cfg;
  cfg.subarray = cam_subarray(2, 64);
  HdcCamInference cam_inf(model, cfg, rng);
  EXPECT_EQ(cam_inf.segments(), 512u / 64u);
  EXPECT_GT(cam_inf.search_cost().latency, 0.0);
  EXPECT_GT(cam_inf.search_cost().energy, 0.0);
}

TEST(CamInference, AnalogEncodeMatchesSoftwareEncode) {
  const auto ds = small_dataset(10);
  Rng rng(15);
  HdcModel model(small_config(3), ds.dim, ds.n_classes, rng);
  model.train(ds.train_x, ds.train_y);

  CamInferenceConfig sw_cfg;
  sw_cfg.subarray = cam_subarray(3, 128);
  sw_cfg.aggregation = cam::Aggregation::kSumSensed;
  Rng rng_sw(16);
  HdcCamInference software(model, sw_cfg, rng_sw);

  CamInferenceConfig hw_cfg = sw_cfg;
  hw_cfg.analog_encode = true;
  hw_cfg.encoder_tiles.tile.rows = 48;
  hw_cfg.encoder_tiles.tile.cols = 64;
  hw_cfg.encoder_tiles.tile.apply_variation = false;
  hw_cfg.encoder_tiles.tile.read_noise_rel = 0.0;
  hw_cfg.encoder_tiles.tile.ir_drop = xbar::IrDropMode::kNone;
  hw_cfg.encoder_tiles.tile.adc.bits = 12;
  Rng rng_hw(16);
  HdcCamInference analog(model, hw_cfg, rng_hw);
  EXPECT_TRUE(analog.analog_encode());
  EXPECT_GT(analog.encode_cost().latency, 0.0);
  EXPECT_EQ(software.encode_cost().latency, 0.0);

  const double sw_acc = software.accuracy(ds.test_x, ds.test_y);
  const double hw_acc = analog.accuracy(ds.test_x, ds.test_y);
  EXPECT_NEAR(hw_acc, sw_acc, 0.08);
}

TEST(CamInference, AnalogEncodeRejectsRecordEncoder) {
  const auto ds = small_dataset(11);
  Rng rng(17);
  HdcConfig cfg = small_config(3);
  cfg.encoder = EncoderKind::kIdLevel;
  cfg.hv_dim = 1024;
  HdcModel model(cfg, ds.dim, ds.n_classes, rng);
  model.train(ds.train_x, ds.train_y);
  CamInferenceConfig hw;
  hw.subarray = cam_subarray(3, 128);
  hw.analog_encode = true;
  EXPECT_THROW(HdcCamInference(model, hw, rng), PreconditionError);
}

TEST(CamInference, ProgrammingVariationDegradesGracefullyAtPaperSigma) {
  const auto ds = small_dataset(8);
  Rng rng(14);
  HdcModel model(small_config(3), ds.dim, ds.n_classes, rng);
  model.train(ds.train_x, ds.train_y);

  CamInferenceConfig clean_cfg;
  clean_cfg.subarray = cam_subarray(3, 128);
  HdcCamInference clean(model, clean_cfg, rng);

  CamInferenceConfig noisy_cfg = clean_cfg;
  noisy_cfg.subarray.apply_variation = true;
  noisy_cfg.subarray.fefet.sigma_program = 0.094;  // the paper's measured sigma
  HdcCamInference noisy(model, noisy_cfg, rng);

  const double acc_clean = clean.accuracy(ds.test_x, ds.test_y);
  const double acc_noisy = noisy.accuracy(ds.test_x, ds.test_y);
  // Fig. 3G-ii: at 94 mV there is no meaningful degradation.
  EXPECT_NEAR(acc_noisy, acc_clean, 0.06);
}

}  // namespace
}  // namespace xlds::hdc
